/**
 * @file
 * Ablations beyond the paper: design choices DESIGN.md calls out.
 *
 *  - write-buffer depth sweep (the paper fixes 4x4W / 8x1W);
 *  - streamed-drain latency overlap on/off (Section 6 assumes a
 *    stream of writes overlaps one or both latency cycles);
 *  - page colouring vs random placement (Section 2 relies on
 *    colouring for consistent virtual/physical indexing);
 *  - TLB miss penalty sensitivity (the paper folds translation into
 *    the base machine; what if it could not?).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Ablations", "write buffer depth, drain overlap, "
                               "page colouring, TLB penalty");

    // Each table enqueues its whole ladder and runs it as one
    // parallel sweep before tabulating.
    bench::Sweep sweep;

    {
        stats::Table t({"WB depth", "CPI", "WB-wait CPI",
                        "full-stall pushes"});
        t.setTitle("Write-buffer depth (write-only policy, 1W "
                   "entries)");
        const unsigned depths[] = {1u, 2u, 4u, 8u, 16u, 32u};
        for (unsigned depth : depths) {
            auto cfg = core::afterWritePolicy();
            cfg.wbDepth = depth;
            sweep.add(cfg);
        }
        const auto results = sweep.run();
        std::size_t job = 0;
        for (unsigned depth : depths) {
            const auto &out = results[job++];
            const auto &res = out.result;
            t.newRow()
                .cell(static_cast<std::uint64_t>(depth))
                .cell(bench::cell(out, res.cpi(), 4))
                .cell(bench::cell(
                    out, res.perInstruction(res.comp.wbWait), 4))
                .cell(res.sys.wb.fullStalls);
        }
        bench::emit(t, "ablation_wb_depth");
    }

    {
        stats::Table t({"drain overlap (cycles)", "CPI",
                        "WB-wait CPI"});
        t.setTitle("Streamed-drain latency overlap (write-only "
                   "policy, 6-cycle L2)");
        const Cycles overlaps[] = {0u, 1u, 2u, 3u};
        for (Cycles overlap : overlaps) {
            auto cfg = core::afterWritePolicy();
            cfg.wbStreamOverlap = overlap;
            sweep.add(cfg);
        }
        const auto results = sweep.run();
        std::size_t job = 0;
        for (Cycles overlap : overlaps) {
            const auto &out = results[job++];
            const auto &res = out.result;
            t.newRow()
                .cell(static_cast<std::uint64_t>(overlap))
                .cell(bench::cell(out, res.cpi(), 4))
                .cell(bench::cell(
                    out, res.perInstruction(res.comp.wbWait), 4));
        }
        bench::emit(t, "ablation_drain_overlap");
    }

    {
        stats::Table t({"placement", "CPI", "L1-D miss/instr",
                        "L2 miss ratio"});
        t.setTitle("Page colouring vs random page placement "
                   "(base architecture)");
        const bool colorings[] = {true, false};
        for (bool coloring : colorings) {
            auto cfg = core::baseline();
            cfg.mmu.pageTable.coloring = coloring;
            sweep.add(cfg);
        }
        const auto results = sweep.run();
        std::size_t job = 0;
        for (bool coloring : colorings) {
            const auto &out = results[job++];
            const auto &res = out.result;
            const double miss_per_instr =
                res.instructions > 0
                    ? static_cast<double>(res.sys.l1dReadMisses +
                                          res.sys.l1dWriteMisses) /
                          static_cast<double>(res.instructions)
                    : 0.0;
            t.newRow()
                .cell(coloring ? "page colouring" : "random")
                .cell(bench::cell(out, res.cpi(), 4))
                .cell(bench::cell(out, miss_per_instr, 4))
                .cell(bench::cell(out, res.sys.l2MissRatio(), 4));
        }
        bench::emit(t, "ablation_page_coloring");
    }

    {
        stats::Table t({"TLB miss penalty (cycles)", "CPI",
                        "ITLB miss ratio", "DTLB miss ratio"});
        t.setTitle("TLB miss penalty sensitivity (base "
                   "architecture)");
        const Cycles penalties[] = {0u, 10u, 20u, 40u};
        for (Cycles penalty : penalties) {
            auto cfg = core::baseline();
            cfg.mmu.tlbMissPenalty = penalty;
            sweep.add(cfg);
        }
        const auto results = sweep.run();
        std::size_t job = 0;
        for (Cycles penalty : penalties) {
            const auto &out = results[job++];
            const auto &res = out.result;
            t.newRow()
                .cell(static_cast<std::uint64_t>(penalty))
                .cell(bench::cell(out, res.cpi(), 4))
                .cell(bench::cell(out, res.sys.itlb.missRatio(), 5))
                .cell(bench::cell(out, res.sys.dtlb.missRatio(), 5));
        }
        bench::emit(t, "ablation_tlb_penalty");
    }

    {
        // Section 6's closing remark: "the L2 access time at which
        // a write-back policy becomes the better choice grows with
        // L1 cache size because larger L1 caches have fewer read
        // and write misses."
        stats::Table t({"L1 size", "policy", "CPI @6cy",
                        "CPI @10cy", "CPI @14cy"});
        t.setTitle("Write-policy trade-off vs L1 size (the "
                   "crossover access time grows with L1)");
        const std::uint64_t l1Sizes[] = {2u * 1024, 4u * 1024,
                                         8u * 1024};
        const core::WritePolicy policies[] = {
            core::WritePolicy::WriteBack,
            core::WritePolicy::WriteOnly};
        const Cycles accessTimes[] = {6u, 10u, 14u};
        for (std::uint64_t l1 : l1Sizes) {
            for (auto policy : policies) {
                for (Cycles access : accessTimes) {
                    auto cfg = core::withWritePolicy(
                        core::baseline(), policy);
                    cfg.l1i.sizeWords = cfg.l1d.sizeWords = l1;
                    cfg.l2.accessTime = access;
                    sweep.add(cfg);
                }
            }
        }
        const auto results = sweep.run();
        std::size_t job = 0;
        for (std::uint64_t l1 : l1Sizes) {
            for (auto policy : policies) {
                t.newRow()
                    .cell(std::to_string(l1 / 1024) + "KW")
                    .cell(core::writePolicyName(policy));
                for (Cycles access : accessTimes) {
                    (void)access;
                    const auto &out = results[job++];
                    t.cell(bench::cell(out, out.result.cpi(), 4));
                }
            }
        }
        bench::emit(t, "ablation_writepolicy_l1size");
    }

    std::cout << "done\n";
    return bench::exitCode();
}
