#include "bench_common.hh"

#include <cctype>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <limits>
#include <optional>
#include <iostream>
#include <sstream>

#include "core/journal.hh"
#include "core/stats_dump.hh"
#include "obs/json.hh"
#include "proc/executor.hh"
#include "util/env.hh"
#include "util/fault.hh"
#include "util/file_io.hh"
#include "util/logging.hh"

namespace gaas::bench
{

namespace
{

/** Shared command-line state (set once by init()). */
struct Options
{
    bool progress = false;
    bool sample = false;
    std::string statsJsonDir;
    std::string resumeDir;

    /** --mproc N given (overrides GAAS_BENCH_MPROC). */
    bool mprocSet = false;
    unsigned mproc = 0;

    /** statsJsonDir failed its init() probe: dumps are off and Ok
     *  points are downgraded to Degraded. */
    bool statsDirBroken = false;
};

Options options;

/** Finished points so far, process-wide (JSON filename prefix). */
std::size_t pointCounter = 0;

/** Finished sweeps so far, process-wide (sweep-NNN.json prefix). */
std::size_t sweepCounter = 0;

/** Failed points so far, process-wide (drives exitCode()). */
std::size_t failedPoints = 0;

std::string
csvDir()
{
    const char *dir = std::getenv("GAAS_BENCH_CSV_DIR");
    return dir && *dir ? dir : "bench_out";
}

[[noreturn]] void
usage(const char *prog, int exit_code)
{
    (exit_code == 0 ? std::cout : std::cerr)
        << "usage: " << prog
        << " [--progress] [--stats-json DIR] [--resume DIR]"
        << " [--sample] [--mproc N]\n"
        << "  --progress        stderr line per finished point\n"
        << "  --stats-json DIR  one JSON stats dump per point\n"
        << "  --resume DIR      journal points into DIR and skip\n"
        << "                    points an earlier run completed\n"
        << "  --sample          sampled simulation: each point\n"
        << "                    measures systematic intervals and\n"
        << "                    reports CPI with a 95% confidence\n"
        << "                    interval (GAAS_BENCH_SAMPLE_* knobs)\n"
        << "  --mproc N         run sweeps across N forked worker\n"
        << "                    processes instead of threads: a\n"
        << "                    crashed or hung worker costs one\n"
        << "                    requeue, not the run (0 disables;\n"
        << "                    GAAS_MPROC_* supervision knobs)\n";
    std::exit(exit_code);
}

/** Config names become filename stems; keep them path-safe. */
std::string
sanitizeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (!std::isalnum(u) && c != '-' && c != '_' && c != '.')
            c = '-';
    }
    return out.empty() ? std::string("unnamed") : out;
}

/** First line of a (possibly multi-line) gaas_error message. */
std::string
firstLine(const std::string &text)
{
    const std::size_t nl = text.find('\n');
    return nl == std::string::npos ? text : text.substr(0, nl);
}

/**
 * Create-if-missing + probe-write the stats dump directory, once,
 * so a sweep never sprays one stderr line per point at a dead
 * filesystem.  Emits the single structured warning on failure.
 */
void
validateStatsDir()
{
    const std::string dir = statsJsonDir();
    if (dir.empty())
        return;

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::string error;
    if (ec) {
        error = "cannot create " + dir + " (" + ec.message() + ")";
    } else if (!util::writeFileAtomic(dir + "/.probe", "", &error)) {
        // error already set by the probe write
    } else {
        std::remove((dir + "/.probe").c_str());
        return;
    }
    options.statsDirBroken = true;
    warn("stats dumps disabled [stats-io]: ", error,
         "; simulation continues, points will be marked degraded");
}

/**
 * SIGTERM/SIGINT: request a graceful drain.  The handler body is a
 * lone lock-free atomic store (async-signal-safe); the sweep engine
 * fails not-yet-started points with the stable `cancelled` code,
 * lets in-flight ones finish and journal, and the figure still
 * emits its (partial) CSVs before main() returns exitCode() == 3.
 */
extern "C" void
cancelSignalHandler(int)
{
    core::requestSweepCancel();
}

} // namespace

void
init(int argc, char **argv)
{
    const char *prog = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help") {
            usage(prog, 0);
        } else if (arg == "--progress") {
            options.progress = true;
        } else if (arg == "--sample") {
            options.sample = true;
        } else if (arg == "--stats-json") {
            if (i + 1 >= argc) {
                std::cerr << prog << ": --stats-json needs a "
                          << "directory argument\n";
                usage(prog, 2);
            }
            options.statsJsonDir = argv[++i];
        } else if (arg == "--resume") {
            if (i + 1 >= argc) {
                std::cerr << prog << ": --resume needs a "
                          << "directory argument\n";
                usage(prog, 2);
            }
            options.resumeDir = argv[++i];
        } else if (arg == "--mproc") {
            if (i + 1 >= argc) {
                std::cerr << prog
                          << ": --mproc needs a worker count\n";
                usage(prog, 2);
            }
            const std::optional<std::uint64_t> parsed =
                parseU64(argv[++i]);
            if (!parsed ||
                *parsed > std::numeric_limits<unsigned>::max()) {
                std::cerr << prog << ": --mproc: '" << argv[i]
                          << "' is not a valid worker count\n";
                usage(prog, 2);
            }
            options.mprocSet = true;
            options.mproc = static_cast<unsigned>(*parsed);
        } else {
            std::cerr << prog << ": unknown argument '" << arg
                      << "'\n";
            usage(prog, 2);
        }
    }
    std::signal(SIGTERM, cancelSignalHandler);
    std::signal(SIGINT, cancelSignalHandler);
    validateStatsDir();
}

unsigned
mprocWorkerCount()
{
    return options.mprocSet ? options.mproc : proc::mprocWorkers();
}

bool
progressEnabled()
{
    if (options.progress)
        return true;
    const char *env = std::getenv("GAAS_BENCH_PROGRESS");
    return env && *env && std::string_view(env) != "0";
}

std::string
statsJsonDir()
{
    if (!options.statsJsonDir.empty())
        return options.statsJsonDir;
    const char *env = std::getenv("GAAS_BENCH_STATS_DIR");
    return env && *env ? env : "";
}

std::string
resumeDir()
{
    if (!options.resumeDir.empty())
        return options.resumeDir;
    const char *env = std::getenv("GAAS_BENCH_RESUME");
    return env && *env ? env : "";
}

Cycles
watchdogBudget()
{
    return envU64("GAAS_BENCH_WATCHDOG", 0);
}

core::SamplingConfig
samplingPlan()
{
    core::SamplingConfig plan;
    if (!options.sample) {
        const char *env = std::getenv("GAAS_BENCH_SAMPLE");
        if (!env || !*env || std::string_view(env) == "0")
            return plan; // disabled: full-detail simulation
    }
    plan.enabled = true;
    plan.measureInstructions = envU64("GAAS_BENCH_SAMPLE_MEASURE",
                                      plan.measureInstructions);
    plan.headInstructions =
        envU64("GAAS_BENCH_SAMPLE_HEAD", plan.headInstructions);
    plan.warmInstructions =
        envU64("GAAS_BENCH_SAMPLE_WARM", plan.warmInstructions);
    plan.minIntervals =
        envU64("GAAS_BENCH_SAMPLE_MIN", plan.minIntervals);
    plan.maxIntervals =
        envU64("GAAS_BENCH_SAMPLE_MAX", plan.maxIntervals);
    plan.targetRelHalfWidth = envDouble("GAAS_BENCH_SAMPLE_TARGET",
                                        plan.targetRelHalfWidth);
    plan.warmingBiasRel =
        envDouble("GAAS_BENCH_SAMPLE_BIAS", plan.warmingBiasRel);
    return plan;
}

int
exitCode()
{
    if (core::sweepCancelRequested())
        return 3; // graceful SIGTERM/SIGINT drain
    return failedPoints > 0 ? 1 : 0;
}

void
notePoint(core::SweepOutcome &outcome)
{
    // Test hook: simulate SIGKILL mid-sweep (no destructors, no
    // flushes) to prove the journal's per-record durability.
    if (fault::shouldFail("bench-kill"))
        std::_Exit(9);

    const std::size_t point = pointCounter++;
    const core::SimResult &result = outcome.result;

    if (outcome.status == core::PointStatus::Failed) {
        ++failedPoints;
        warn("point ", point, " (", result.configName, ") failed [",
             errorCodeName(outcome.errorCode),
             "]: ", firstLine(outcome.error));
        const std::string dir = statsJsonDir();
        if (!dir.empty() && !options.statsDirBroken) {
            obs::JsonValue doc = obs::JsonValue::object();
            doc.members.emplace_back(
                "config", obs::JsonValue::string(result.configName));
            doc.members.emplace_back(
                "status", obs::JsonValue::string("failed"));
            doc.members.emplace_back(
                "code", obs::JsonValue::string(
                            errorCodeName(outcome.errorCode)));
            doc.members.emplace_back(
                "error", obs::JsonValue::string(outcome.error));
            std::ostringstream name;
            name << std::setw(3) << std::setfill('0') << point << '-'
                 << sanitizeName(result.configName) << ".failed.json";
            std::string error;
            if (!util::writeFileAtomicRetry(
                    dir + "/" + name.str(), obs::writeJsonString(doc),
                    &error))
                warn("failure record: ", error);
        }
        return;
    }

    if (progressEnabled()) {
        std::ostringstream line;
        line << "[point " << std::setw(3) << std::setfill('0')
             << point << std::setfill(' ') << ' '
             << result.configName << ": cpi " << std::fixed
             << std::setprecision(4) << result.cpi();
        if (result.sampling.enabled()) {
            line << " (sampled " << result.sampling.cpiMean
                 << " +/- " << result.sampling.cpiHalfWidth << ", "
                 << result.sampling.intervals << " intervals)";
        }
        if (outcome.reused) {
            line << ", reused from journal";
        } else {
            line << ", sim " << std::setprecision(2)
                 << outcome.stats.simSeconds << " s, build "
                 << outcome.stats.buildSeconds << " s, queue "
                 << outcome.stats.queueWaitSeconds << " s, worker "
                 << outcome.stats.worker;
        }
        line << "]\n";
        std::cerr << line.str();
    }

    const std::string dir = statsJsonDir();
    if (!dir.empty()) {
        std::ostringstream name;
        name << std::setw(3) << std::setfill('0') << point << '-'
             << sanitizeName(result.configName) << ".json";
        const bool written =
            !options.statsDirBroken &&
            core::dumpStatsJsonFile(result, dir + "/" + name.str());
        if (!written && outcome.status == core::PointStatus::Ok)
            outcome.status = core::PointStatus::Degraded;
    }
}

std::string
cell(const core::SweepOutcome &outcome, double value, int precision)
{
    if (outcome.status == core::PointStatus::Failed) {
        return std::string("failed:") +
               errorCodeName(outcome.errorCode);
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

Count
instructionBudget()
{
    return envU64("GAAS_BENCH_INSTRUCTIONS", 4'000'000);
}

unsigned
mpLevel()
{
    return static_cast<unsigned>(envU64("GAAS_BENCH_MP", 8));
}

core::SimResult
run(const core::SystemConfig &config)
{
    return run(config, mpLevel());
}

Count
warmupBudget()
{
    return envU64("GAAS_BENCH_WARMUP", instructionBudget() / 2);
}

namespace
{

/**
 * The immediate-run path shares the sweep engine's fault isolation:
 * one job, serially, failure noted instead of thrown.  A failed run
 * returns the zeroed result (every derived ratio guards division by
 * zero) so the figure can finish its other points.
 */
core::SimResult
runOne(core::SweepJob job)
{
    job.watchdogCycles = watchdogBudget();
    job.sampling = samplingPlan();
    std::vector<core::SweepOutcome> outcomes =
        core::runSweepOutcomes({std::move(job)}, 1);
    notePoint(outcomes.front());
    return std::move(outcomes.front().result);
}

} // namespace

core::SimResult
run(const core::SystemConfig &config, unsigned mp_level)
{
    core::SweepJob job;
    job.config = config;
    job.mpLevel = mp_level;
    job.instructions = instructionBudget();
    job.warmup = warmupBudget();
    return runOne(std::move(job));
}

core::SimResult
runScaled(const core::SystemConfig &config, unsigned factor)
{
    core::SweepJob job;
    job.config = config;
    job.mpLevel = mpLevel();
    job.instructions = instructionBudget() * factor;
    job.warmup = warmupBudget() * factor;
    return runOne(std::move(job));
}

std::size_t
Sweep::add(const core::SystemConfig &config)
{
    return add(config, mpLevel());
}

std::size_t
Sweep::add(const core::SystemConfig &config, unsigned mp_level)
{
    core::SweepJob job;
    job.config = config;
    job.mpLevel = mp_level;
    job.instructions = instructionBudget();
    job.warmup = warmupBudget();
    job.watchdogCycles = watchdogBudget();
    job.sampling = samplingPlan();
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

std::size_t
Sweep::addScaled(const core::SystemConfig &config, unsigned factor)
{
    core::SweepJob job;
    job.config = config;
    job.mpLevel = mpLevel();
    job.instructions = instructionBudget() * factor;
    job.warmup = warmupBudget() * factor;
    job.watchdogCycles = watchdogBudget();
    job.sampling = samplingPlan();
    jobs.push_back(std::move(job));
    return jobs.size() - 1;
}

namespace
{

/**
 * Write `<statsJsonDir()>/sweep-NNN.json`: the sweep-level telemetry
 * (wall clock, dispositions, arena activity) next to the per-point
 * dumps.  Timings and arena hit counts are host-dependent, so resume
 * comparisons must exclude these files (tests diff with
 * `-x 'sweep-*.json'`).  A failed write only warns -- the sweep's
 * simulation results are untouched.
 */
void
dumpSweepStats(const core::SweepStats &stats)
{
    const std::string dir = statsJsonDir();
    if (dir.empty() || options.statsDirBroken)
        return;
    const std::size_t sweep = sweepCounter++;

    auto num = [](double v) { return obs::JsonValue::number(v); };
    obs::JsonValue doc = obs::JsonValue::object();
    doc.members.emplace_back(
        "jobs", num(static_cast<double>(stats.jobs)));
    doc.members.emplace_back(
        "workers", num(static_cast<double>(stats.workers)));
    doc.members.emplace_back("wall_seconds",
                             num(stats.wallSeconds));
    doc.members.emplace_back(
        "references", num(static_cast<double>(stats.references)));
    doc.members.emplace_back("refs_per_second",
                             num(stats.refsPerSecond()));
    doc.members.emplace_back(
        "ok_points", num(static_cast<double>(stats.okPoints)));
    doc.members.emplace_back(
        "failed_points",
        num(static_cast<double>(stats.failedPoints)));
    doc.members.emplace_back(
        "degraded_points",
        num(static_cast<double>(stats.degradedPoints)));
    doc.members.emplace_back(
        "reused_points",
        num(static_cast<double>(stats.reusedPoints)));
    doc.members.emplace_back("mproc",
                             num(stats.mproc ? 1.0 : 0.0));
    doc.members.emplace_back(
        "worker_respawns",
        num(static_cast<double>(stats.workerRespawns)));
    doc.members.emplace_back(
        "requeued_jobs",
        num(static_cast<double>(stats.requeuedJobs)));

    obs::JsonValue arena = obs::JsonValue::object();
    arena.members.emplace_back(
        "streams_generated",
        num(static_cast<double>(stats.arenaStreamsGenerated)));
    arena.members.emplace_back(
        "streams_reused",
        num(static_cast<double>(stats.arenaStreamsReused)));
    arena.members.emplace_back(
        "refs_generated",
        num(static_cast<double>(stats.arenaRefsGenerated)));
    arena.members.emplace_back("gen_seconds",
                               num(stats.arenaGenSeconds));
    arena.members.emplace_back(
        "bytes", num(static_cast<double>(stats.arenaBytes)));
    doc.members.emplace_back("arena", std::move(arena));

    std::ostringstream name;
    name << "sweep-" << std::setw(3) << std::setfill('0') << sweep
         << ".json";
    std::string error;
    if (!util::writeFileAtomicRetry(dir + "/" + name.str(),
                                    obs::writeJsonString(doc),
                                    &error))
        warn("sweep stats dump: ", error);
}

} // namespace

std::vector<core::SweepOutcome>
Sweep::run()
{
    core::RunJournal journal;
    core::RunJournal *journal_ptr = nullptr;
    const std::string dir = resumeDir();
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        std::string error;
        bool opened = false;
        try {
            opened = journal.open(dir + "/sweep_journal.jsonl",
                                  &error);
        } catch (const SimError &e) {
            // Another live process holds this resume directory
            // (flock).  Two writers would interleave journal
            // records; refuse loudly with a distinct exit code
            // instead of corrupting a resumable run.
            warn("resume refused [", errorCodeName(e.code()),
                 "]: ", firstLine(e.what()));
            std::exit(4);
        }
        if (opened) {
            journal_ptr = &journal;
            if (journal.loadedRecords() > 0) {
                std::cout << "[resume: " << journal.loadedRecords()
                          << " journaled point(s) in " << dir
                          << "]\n";
            }
        } else {
            warn("resume disabled [stats-io]: ", error);
        }
    }

    core::SweepStats stats;
    const core::SweepProgress note =
        [](std::size_t, core::SweepOutcome &outcome) {
            notePoint(outcome);
        };
    const unsigned mproc = mprocWorkerCount();
    std::vector<core::SweepOutcome> outcomes;
    if (mproc > 0) {
        proc::MprocOptions opts = proc::MprocOptions::fromEnv();
        opts.workers = mproc;
        outcomes = proc::runSweepMproc(jobs, opts, &stats, note,
                                       journal_ptr);
    } else {
        outcomes = core::runSweepOutcomes(jobs, 0, &stats, note,
                                          journal_ptr);
    }
    jobs.clear();
    std::cout << "[sweep: " << stats.jobs << " configs on "
              << stats.workers
              << (stats.mproc ? " worker process(es), "
                              : " worker(s), ")
              << std::fixed
              << std::setprecision(2) << stats.wallSeconds
              << " s wall, " << std::setprecision(0)
              << stats.refsPerSecond() << " refs/s aggregate; "
              << stats.okPoints << " ok, " << stats.failedPoints
              << " failed, " << stats.degradedPoints
              << " degraded, " << stats.reusedPoints << " reused";
    if (stats.mproc) {
        std::cout << "; " << stats.workerRespawns << " respawn(s), "
                  << stats.requeuedJobs << " requeue(s)";
    }
    if (stats.arenaStreamsGenerated + stats.arenaStreamsReused > 0) {
        std::cout << "; arena " << stats.arenaStreamsGenerated
                  << " gen / " << stats.arenaStreamsReused
                  << " reused, " << std::setprecision(1)
                  << static_cast<double>(stats.arenaBytes) /
                         (1024.0 * 1024.0)
                  << " MB, " << std::setprecision(2)
                  << stats.arenaGenSeconds << " s gen";
    }
    std::cout << "]\n" << std::defaultfloat << '\n';
    dumpSweepStats(stats);
    return outcomes;
}

void
emit(const stats::Table &table, const std::string &name)
{
    table.print(std::cout);
    // writeCsv creates the parent directory itself; a failed write
    // must be loud on stdout (not just a suppressible warn) -- the
    // CSVs are the figures' product, and a silently missing one
    // reads as "nothing changed" to any diff-based consumer.
    const std::string path = csvDir() + "/" + name + ".csv";
    if (table.writeCsv(path))
        std::cout << "[csv: " << path << "]\n";
    else
        std::cout << "[csv FAILED: " << path << "]\n";
    std::cout << '\n';
}

void
banner(const std::string &figure, const std::string &caption)
{
    std::cout << "=== " << figure << ": " << caption << " ===\n"
              << "workload: MP level " << mpLevel() << ", "
              << instructionBudget() << " instructions per point, "
              << core::sweepWorkers() << " sweep worker(s)\n\n";
}

} // namespace gaas::bench
