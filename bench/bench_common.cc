#include "bench_common.hh"

#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/stats_dump.hh"
#include "util/env.hh"
#include "util/logging.hh"

namespace gaas::bench
{

namespace
{

/** Shared command-line state (set once by init()). */
struct Options
{
    bool progress = false;
    std::string statsJsonDir;
};

Options options;

/** Finished points so far, process-wide (JSON filename prefix). */
std::size_t pointCounter = 0;

std::string
csvDir()
{
    const char *dir = std::getenv("GAAS_BENCH_CSV_DIR");
    return dir && *dir ? dir : "bench_out";
}

[[noreturn]] void
usage(const char *prog, int exit_code)
{
    (exit_code == 0 ? std::cout : std::cerr)
        << "usage: " << prog << " [--progress] [--stats-json DIR]\n"
        << "  --progress        stderr line per finished point\n"
        << "  --stats-json DIR  one JSON stats dump per point\n";
    std::exit(exit_code);
}

/** Config names become filename stems; keep them path-safe. */
std::string
sanitizeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (!std::isalnum(u) && c != '-' && c != '_' && c != '.')
            c = '-';
    }
    return out.empty() ? std::string("unnamed") : out;
}

} // namespace

void
init(int argc, char **argv)
{
    const char *prog = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help") {
            usage(prog, 0);
        } else if (arg == "--progress") {
            options.progress = true;
        } else if (arg == "--stats-json") {
            if (i + 1 >= argc) {
                std::cerr << prog << ": --stats-json needs a "
                          << "directory argument\n";
                usage(prog, 2);
            }
            options.statsJsonDir = argv[++i];
        } else {
            std::cerr << prog << ": unknown argument '" << arg
                      << "'\n";
            usage(prog, 2);
        }
    }
}

bool
progressEnabled()
{
    if (options.progress)
        return true;
    const char *env = std::getenv("GAAS_BENCH_PROGRESS");
    return env && *env && std::string_view(env) != "0";
}

std::string
statsJsonDir()
{
    if (!options.statsJsonDir.empty())
        return options.statsJsonDir;
    const char *env = std::getenv("GAAS_BENCH_STATS_DIR");
    return env && *env ? env : "";
}

void
notePoint(const core::SimResult &result,
          const core::SweepJobStats &stats)
{
    const std::size_t point = pointCounter++;

    if (progressEnabled()) {
        std::ostringstream line;
        line << "[point " << std::setw(3) << std::setfill('0')
             << point << std::setfill(' ') << ' '
             << result.configName << ": cpi " << std::fixed
             << std::setprecision(4) << result.cpi() << ", sim "
             << std::setprecision(2) << stats.simSeconds
             << " s, build " << stats.buildSeconds << " s, queue "
             << stats.queueWaitSeconds << " s, worker "
             << stats.worker << "]\n";
        std::cerr << line.str();
    }

    const std::string dir = statsJsonDir();
    if (!dir.empty()) {
        std::ostringstream name;
        name << std::setw(3) << std::setfill('0') << point << '-'
             << sanitizeName(result.configName) << ".json";
        core::dumpStatsJsonFile(result, dir + "/" + name.str());
    }
}

Count
instructionBudget()
{
    return envU64("GAAS_BENCH_INSTRUCTIONS", 4'000'000);
}

unsigned
mpLevel()
{
    return static_cast<unsigned>(envU64("GAAS_BENCH_MP", 8));
}

core::SimResult
run(const core::SystemConfig &config)
{
    return run(config, mpLevel());
}

Count
warmupBudget()
{
    return envU64("GAAS_BENCH_WARMUP", instructionBudget() / 2);
}

core::SimResult
run(const core::SystemConfig &config, unsigned mp_level)
{
    const core::SweepJob job{config, mp_level, instructionBudget(),
                             warmupBudget(), {}};
    core::SweepJobStats stats;
    core::SimResult result = core::runSweepJob(job, &stats);
    notePoint(result, stats);
    return result;
}

core::SimResult
runScaled(const core::SystemConfig &config, unsigned factor)
{
    const core::SweepJob job{config, mpLevel(),
                             instructionBudget() * factor,
                             warmupBudget() * factor, {}};
    core::SweepJobStats stats;
    core::SimResult result = core::runSweepJob(job, &stats);
    notePoint(result, stats);
    return result;
}

std::size_t
Sweep::add(const core::SystemConfig &config)
{
    return add(config, mpLevel());
}

std::size_t
Sweep::add(const core::SystemConfig &config, unsigned mp_level)
{
    jobs.push_back(core::SweepJob{config, mp_level,
                                  instructionBudget(),
                                  warmupBudget(), {}});
    return jobs.size() - 1;
}

std::size_t
Sweep::addScaled(const core::SystemConfig &config, unsigned factor)
{
    jobs.push_back(core::SweepJob{config, mpLevel(),
                                  instructionBudget() * factor,
                                  warmupBudget() * factor, {}});
    return jobs.size() - 1;
}

std::vector<core::SimResult>
Sweep::run()
{
    core::SweepStats stats;
    auto results = core::runSweep(
        jobs, 0, &stats,
        [](std::size_t, const core::SimResult &result,
           const core::SweepJobStats &job_stats) {
            notePoint(result, job_stats);
        });
    jobs.clear();
    std::cout << "[sweep: " << stats.jobs << " configs on "
              << stats.workers << " worker(s), " << std::fixed
              << std::setprecision(2) << stats.wallSeconds
              << " s wall, " << std::setprecision(0)
              << stats.refsPerSecond() << " refs/s aggregate]\n"
              << std::defaultfloat << '\n';
    return results;
}

void
emit(const stats::Table &table, const std::string &name)
{
    table.print(std::cout);
    // writeCsv creates the parent directory itself; a failed write
    // must be loud on stdout (not just a suppressible warn) -- the
    // CSVs are the figures' product, and a silently missing one
    // reads as "nothing changed" to any diff-based consumer.
    const std::string path = csvDir() + "/" + name + ".csv";
    if (table.writeCsv(path))
        std::cout << "[csv: " << path << "]\n";
    else
        std::cout << "[csv FAILED: " << path << "]\n";
    std::cout << '\n';
}

void
banner(const std::string &figure, const std::string &caption)
{
    std::cout << "=== " << figure << ": " << caption << " ===\n"
              << "workload: MP level " << mpLevel() << ", "
              << instructionBudget() << " instructions per point, "
              << core::sweepWorkers() << " sweep worker(s)\n\n";
}

} // namespace gaas::bench
