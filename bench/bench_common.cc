#include "bench_common.hh"

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "util/logging.hh"

namespace gaas::bench
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const std::uint64_t parsed = std::strtoull(value, &end, 10);
    if (end == value || parsed == 0) {
        std::cerr << "warn: ignoring bad " << name << "=" << value
                  << '\n';
        return fallback;
    }
    return parsed;
}

std::string
csvDir()
{
    const char *dir = std::getenv("GAAS_BENCH_CSV_DIR");
    return dir && *dir ? dir : "bench_out";
}

} // namespace

Count
instructionBudget()
{
    return envU64("GAAS_BENCH_INSTRUCTIONS", 4'000'000);
}

unsigned
mpLevel()
{
    return static_cast<unsigned>(envU64("GAAS_BENCH_MP", 8));
}

core::SimResult
run(const core::SystemConfig &config)
{
    return run(config, mpLevel());
}

Count
warmupBudget()
{
    return envU64("GAAS_BENCH_WARMUP", instructionBudget() / 2);
}

core::SimResult
run(const core::SystemConfig &config, unsigned mp_level)
{
    return core::runStandard(config, instructionBudget(), mp_level,
                             warmupBudget());
}

core::SimResult
runScaled(const core::SystemConfig &config, unsigned factor)
{
    return core::runStandard(config, instructionBudget() * factor,
                             mpLevel(), warmupBudget() * factor);
}

std::size_t
Sweep::add(const core::SystemConfig &config)
{
    return add(config, mpLevel());
}

std::size_t
Sweep::add(const core::SystemConfig &config, unsigned mp_level)
{
    jobs.push_back(core::SweepJob{config, mp_level,
                                  instructionBudget(),
                                  warmupBudget(), {}});
    return jobs.size() - 1;
}

std::size_t
Sweep::addScaled(const core::SystemConfig &config, unsigned factor)
{
    jobs.push_back(core::SweepJob{config, mpLevel(),
                                  instructionBudget() * factor,
                                  warmupBudget() * factor, {}});
    return jobs.size() - 1;
}

std::vector<core::SimResult>
Sweep::run()
{
    core::SweepStats stats;
    auto results = core::runSweep(jobs, 0, &stats);
    jobs.clear();
    std::cout << "[sweep: " << stats.jobs << " configs on "
              << stats.workers << " worker(s), " << std::fixed
              << std::setprecision(2) << stats.wallSeconds
              << " s wall, " << std::setprecision(0)
              << stats.refsPerSecond() << " refs/s aggregate]\n"
              << std::defaultfloat << '\n';
    return results;
}

void
emit(const stats::Table &table, const std::string &name)
{
    table.print(std::cout);
    // writeCsv creates the parent directory itself; a failed write
    // must be loud on stdout (not just a suppressible warn) -- the
    // CSVs are the figures' product, and a silently missing one
    // reads as "nothing changed" to any diff-based consumer.
    const std::string path = csvDir() + "/" + name + ".csv";
    if (table.writeCsv(path))
        std::cout << "[csv: " << path << "]\n";
    else
        std::cout << "[csv FAILED: " << path << "]\n";
    std::cout << '\n';
}

void
banner(const std::string &figure, const std::string &caption)
{
    std::cout << "=== " << figure << ": " << caption << " ===\n"
              << "workload: MP level " << mpLevel() << ", "
              << instructionBudget() << " instructions per point, "
              << core::sweepWorkers() << " sweep worker(s)\n\n";
}

} // namespace gaas::bench
