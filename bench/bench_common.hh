/**
 * @file
 * Shared plumbing for the figure/table bench binaries: instruction
 * budgets (overridable via environment), timed simulation runs, and
 * CSV output placement.
 *
 * Environment knobs:
 *   GAAS_BENCH_INSTRUCTIONS  per-configuration instruction budget
 *                            (default 4,000,000; L2-size sweeps
 *                            scale it up further -- see runScaled)
 *   GAAS_BENCH_MP            multiprogramming level (default 8)
 *   GAAS_BENCH_CSV_DIR       where CSVs are written
 *                            (default ./bench_out)
 */

#ifndef GAAS_BENCH_COMMON_HH
#define GAAS_BENCH_COMMON_HH

#include <string>

#include "core/config.hh"
#include "core/simulator.hh"
#include "stats/table.hh"
#include "util/types.hh"

namespace gaas::bench
{

/** Per-configuration instruction budget. */
Count instructionBudget();

/** Warmup instructions before measurement (GAAS_BENCH_WARMUP,
 *  default half the measurement budget). */
Count warmupBudget();

/** Multiprogramming level for workload construction. */
unsigned mpLevel();

/** Run @p config on the standard workload for the budget. */
core::SimResult run(const core::SystemConfig &config);

/** Run @p config at an explicit multiprogramming level. */
core::SimResult run(const core::SystemConfig &config,
                    unsigned mp_level);

/**
 * Run with the budget scaled by @p factor.  The L2-sweep figures
 * (6, 7, 8 / Table 2) need several-times-longer traces than the CPI
 * ladders: short windows overstate large-cache miss ratios with
 * unamortised first-touch misses (the [BKW90] long-trace effect the
 * paper discusses in Section 3).
 */
core::SimResult runScaled(const core::SystemConfig &config,
                          unsigned factor);

/** Print @p table to stdout and write bench_out/<name>.csv. */
void emit(const stats::Table &table, const std::string &name);

/** Standard banner: figure id + paper caption + knob values. */
void banner(const std::string &figure, const std::string &caption);

} // namespace gaas::bench

#endif // GAAS_BENCH_COMMON_HH
