/**
 * @file
 * Shared plumbing for the figure/table bench binaries: instruction
 * budgets (overridable via environment), timed simulation runs, the
 * parallel sweep front end, CSV output placement, and per-point
 * observability (progress lines, JSON stats dumps).
 *
 * Environment knobs:
 *   GAAS_BENCH_INSTRUCTIONS  per-configuration instruction budget
 *                            (default 4,000,000; L2-size sweeps
 *                            scale it up further -- see runScaled)
 *   GAAS_BENCH_MP            multiprogramming level (default 8)
 *   GAAS_BENCH_JOBS          sweep worker threads (default
 *                            hardware_concurrency)
 *   GAAS_BENCH_CSV_DIR       where CSVs are written
 *                            (default ./bench_out)
 *   GAAS_BENCH_PROGRESS      any value but "0": stderr progress line
 *                            per finished point (same as --progress)
 *   GAAS_BENCH_STATS_DIR     write one JSON stats dump per point
 *                            into this directory (same as
 *                            --stats-json DIR)
 *
 * All numeric knobs parse strictly (util/env.hh): trailing garbage,
 * signs, zero and overflow are rejected with a warning.
 */

#ifndef GAAS_BENCH_COMMON_HH
#define GAAS_BENCH_COMMON_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "util/types.hh"

namespace gaas::bench
{

/**
 * Parse the bench binaries' shared command line.  Recognised flags:
 *
 *   --progress         stderr line per finished point
 *   --stats-json DIR   one JSON stats dump per point into DIR
 *   --help             print usage and exit 0
 *
 * Anything else prints usage to stderr and exits 2.  Call first in
 * every figure main().
 */
void init(int argc, char **argv);

/** True when --progress or GAAS_BENCH_PROGRESS (not "0") is set. */
bool progressEnabled();

/** JSON dump directory (--stats-json / GAAS_BENCH_STATS_DIR);
 *  empty when per-point dumps are disabled. */
std::string statsJsonDir();

/**
 * Record one finished simulation point: bumps the process-wide point
 * counter, emits the stderr progress line when enabled, and writes
 * `<statsJsonDir()>/NNN-<config>.json` when a dump directory is
 * configured.  The counter makes filenames collision-free even when
 * a figure runs the same configuration at several workload levels.
 */
void notePoint(const core::SimResult &result,
               const core::SweepJobStats &stats);

/** Per-configuration instruction budget. */
Count instructionBudget();

/** Warmup instructions before measurement (GAAS_BENCH_WARMUP,
 *  default half the measurement budget). */
Count warmupBudget();

/** Multiprogramming level for workload construction. */
unsigned mpLevel();

/** Run @p config on the standard workload for the budget. */
core::SimResult run(const core::SystemConfig &config);

/** Run @p config at an explicit multiprogramming level. */
core::SimResult run(const core::SystemConfig &config,
                    unsigned mp_level);

/**
 * Run with the budget scaled by @p factor.  The L2-sweep figures
 * (6, 7, 8 / Table 2) need several-times-longer traces than the CPI
 * ladders: short windows overstate large-cache miss ratios with
 * unamortised first-touch misses (the [BKW90] long-trace effect the
 * paper discusses in Section 3).
 */
core::SimResult runScaled(const core::SystemConfig &config,
                          unsigned factor);

/**
 * Deferred-execution front end to core::runSweep: a figure binary
 * enqueues its whole configuration ladder up front, then reads the
 * results back in enqueue order -- turning the figure's wall clock
 * from the sum of its configurations into (roughly) the max.
 *
 * The add() overloads mirror the immediate run()/runScaled() calls
 * they replace and return the job's index into run()'s result
 * vector.  Results are bit-identical to the serial path.
 */
class Sweep
{
  public:
    /** Enqueue @p config at the standard budget and MP level. */
    std::size_t add(const core::SystemConfig &config);

    /** Enqueue at an explicit multiprogramming level. */
    std::size_t add(const core::SystemConfig &config,
                    unsigned mp_level);

    /** Enqueue with the budget scaled by @p factor (see
     *  runScaled). */
    std::size_t addScaled(const core::SystemConfig &config,
                          unsigned factor);

    /** Number of jobs enqueued so far. */
    std::size_t size() const { return jobs.size(); }

    /**
     * Run every enqueued job across GAAS_BENCH_JOBS workers, print a
     * one-line wall-clock/throughput summary, and return the results
     * in enqueue order.  Every finished point flows through
     * notePoint() (in enqueue order, on this thread).  The queue is
     * cleared so the Sweep can be reused (the ablations binary runs
     * one sweep per table).
     */
    std::vector<core::SimResult> run();

  private:
    std::vector<core::SweepJob> jobs;
};

/** Print @p table to stdout and write bench_out/<name>.csv. */
void emit(const stats::Table &table, const std::string &name);

/** Standard banner: figure id + paper caption + knob values. */
void banner(const std::string &figure, const std::string &caption);

} // namespace gaas::bench

#endif // GAAS_BENCH_COMMON_HH
