/**
 * @file
 * Shared plumbing for the figure/table bench binaries: instruction
 * budgets (overridable via environment), timed simulation runs, the
 * parallel sweep front end, and CSV output placement.
 *
 * Environment knobs:
 *   GAAS_BENCH_INSTRUCTIONS  per-configuration instruction budget
 *                            (default 4,000,000; L2-size sweeps
 *                            scale it up further -- see runScaled)
 *   GAAS_BENCH_MP            multiprogramming level (default 8)
 *   GAAS_BENCH_JOBS          sweep worker threads (default
 *                            hardware_concurrency)
 *   GAAS_BENCH_CSV_DIR       where CSVs are written
 *                            (default ./bench_out)
 */

#ifndef GAAS_BENCH_COMMON_HH
#define GAAS_BENCH_COMMON_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "util/types.hh"

namespace gaas::bench
{

/** Per-configuration instruction budget. */
Count instructionBudget();

/** Warmup instructions before measurement (GAAS_BENCH_WARMUP,
 *  default half the measurement budget). */
Count warmupBudget();

/** Multiprogramming level for workload construction. */
unsigned mpLevel();

/** Run @p config on the standard workload for the budget. */
core::SimResult run(const core::SystemConfig &config);

/** Run @p config at an explicit multiprogramming level. */
core::SimResult run(const core::SystemConfig &config,
                    unsigned mp_level);

/**
 * Run with the budget scaled by @p factor.  The L2-sweep figures
 * (6, 7, 8 / Table 2) need several-times-longer traces than the CPI
 * ladders: short windows overstate large-cache miss ratios with
 * unamortised first-touch misses (the [BKW90] long-trace effect the
 * paper discusses in Section 3).
 */
core::SimResult runScaled(const core::SystemConfig &config,
                          unsigned factor);

/**
 * Deferred-execution front end to core::runSweep: a figure binary
 * enqueues its whole configuration ladder up front, then reads the
 * results back in enqueue order -- turning the figure's wall clock
 * from the sum of its configurations into (roughly) the max.
 *
 * The add() overloads mirror the immediate run()/runScaled() calls
 * they replace and return the job's index into run()'s result
 * vector.  Results are bit-identical to the serial path.
 */
class Sweep
{
  public:
    /** Enqueue @p config at the standard budget and MP level. */
    std::size_t add(const core::SystemConfig &config);

    /** Enqueue at an explicit multiprogramming level. */
    std::size_t add(const core::SystemConfig &config,
                    unsigned mp_level);

    /** Enqueue with the budget scaled by @p factor (see
     *  runScaled). */
    std::size_t addScaled(const core::SystemConfig &config,
                          unsigned factor);

    /** Number of jobs enqueued so far. */
    std::size_t size() const { return jobs.size(); }

    /**
     * Run every enqueued job across GAAS_BENCH_JOBS workers, print a
     * one-line wall-clock/throughput summary, and return the results
     * in enqueue order.  The queue is cleared so the Sweep can be
     * reused (the ablations binary runs one sweep per table).
     */
    std::vector<core::SimResult> run();

  private:
    std::vector<core::SweepJob> jobs;
};

/** Print @p table to stdout and write bench_out/<name>.csv. */
void emit(const stats::Table &table, const std::string &name);

/** Standard banner: figure id + paper caption + knob values. */
void banner(const std::string &figure, const std::string &caption);

} // namespace gaas::bench

#endif // GAAS_BENCH_COMMON_HH
