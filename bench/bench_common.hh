/**
 * @file
 * Shared plumbing for the figure/table bench binaries: instruction
 * budgets (overridable via environment), timed simulation runs, the
 * parallel sweep front end, CSV output placement, and per-point
 * observability (progress lines, JSON stats dumps).
 *
 * Environment knobs:
 *   GAAS_BENCH_INSTRUCTIONS  per-configuration instruction budget
 *                            (default 4,000,000; L2-size sweeps
 *                            scale it up further -- see runScaled)
 *   GAAS_BENCH_MP            multiprogramming level (default 8)
 *   GAAS_BENCH_JOBS          sweep worker threads (default
 *                            hardware_concurrency)
 *   GAAS_BENCH_MPROC         run sweeps across N forked worker
 *                            *processes* (0/unset: threads); a
 *                            worker crash or hang is requeued, not
 *                            fatal (same as --mproc N; supervision
 *                            knobs GAAS_MPROC_RETRIES,
 *                            GAAS_MPROC_HEARTBEAT_MS,
 *                            GAAS_MPROC_HEARTBEAT_MISS,
 *                            GAAS_MPROC_BACKOFF_MS -- see
 *                            proc/executor.hh)
 *   GAAS_BENCH_CSV_DIR       where CSVs are written
 *                            (default ./bench_out)
 *   GAAS_BENCH_PROGRESS      any value but "0": stderr progress line
 *                            per finished point (same as --progress)
 *   GAAS_BENCH_STATS_DIR     write one JSON stats dump per point
 *                            into this directory (same as
 *                            --stats-json DIR)
 *   GAAS_BENCH_RESUME        journal sweep points into this
 *                            directory and skip points already
 *                            journaled by an earlier (killed) run
 *                            (same as --resume DIR)
 *   GAAS_BENCH_WATCHDOG      per-instruction cycle budget for the
 *                            zero-progress watchdog (default 0: off)
 *   GAAS_BENCH_SAMPLE        any value but "0": run every point under
 *                            SMARTS-style sampled simulation (same as
 *                            --sample); CPI gains a 95% CI, wall
 *                            clock drops 10-50x
 *   GAAS_BENCH_SAMPLE_MEASURE  body-window instructions per episode
 *   GAAS_BENCH_SAMPLE_HEAD     head (switch-in transient) window
 *                              instructions per episode
 *   GAAS_BENCH_SAMPLE_WARM     functionally warmed instructions
 *                              before each episode
 *   GAAS_BENCH_SAMPLE_MIN      intervals in the first sizing pass
 *   GAAS_BENCH_SAMPLE_MAX      interval cap per pass
 *   GAAS_BENCH_SAMPLE_TARGET   relative 95% half-width target for
 *                              the sampling term (default 0.03)
 *   GAAS_BENCH_SAMPLE_BIAS     relative systematic allowance for
 *                              finite warming depth, added to the
 *                              reported half-width (default 0.03)
 *
 * All numeric knobs parse strictly (util/env.hh): trailing garbage,
 * signs, zero and overflow are rejected with a warning.
 *
 * Failure model: a sweep point that throws becomes a Failed
 * SweepOutcome; the figure keeps running, renders the point as
 * `failed:<code>` (see cell()), and main() reports it through
 * exitCode() -- nonzero only after the whole ladder drained.  Under
 * --mproc even a worker-process crash or hang only costs a requeue
 * (proc/executor.hh).  SIGTERM/SIGINT request a graceful drain:
 * in-flight points finish and journal, queued ones fail with the
 * stable `cancelled` code, the partial CSVs are still written
 * atomically, and exitCode() becomes 3.
 */

#ifndef GAAS_BENCH_COMMON_HH
#define GAAS_BENCH_COMMON_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "stats/table.hh"
#include "util/types.hh"

namespace gaas::bench
{

/**
 * Parse the bench binaries' shared command line.  Recognised flags:
 *
 *   --progress         stderr line per finished point
 *   --stats-json DIR   one JSON stats dump per point into DIR
 *   --resume DIR       journal points into DIR; skip points already
 *                      journaled by an earlier (killed) run
 *   --sample           sampled simulation with confidence intervals
 *                      instead of full-detail runs (see
 *                      core/sampling.hh; knobs via
 *                      GAAS_BENCH_SAMPLE_*)
 *   --mproc N          run sweeps across N forked worker processes
 *                      (overrides GAAS_BENCH_MPROC; 0 = threads)
 *   --help             print usage and exit 0
 *
 * Anything else prints usage to stderr and exits 2.  Call first in
 * every figure main().
 *
 * The stats-dump directory is validated here, once: created if
 * missing and probe-written.  If it is unusable a single structured
 * warning is emitted, dumps are disabled, and every subsequent Ok
 * point is downgraded to Degraded -- the simulation itself never
 * stops over an unwritable stats directory.
 */
void init(int argc, char **argv);

/** True when --progress or GAAS_BENCH_PROGRESS (not "0") is set. */
bool progressEnabled();

/** JSON dump directory (--stats-json / GAAS_BENCH_STATS_DIR);
 *  empty when per-point dumps are disabled. */
std::string statsJsonDir();

/** Resume/journal directory (--resume / GAAS_BENCH_RESUME);
 *  empty when checkpointing is disabled. */
std::string resumeDir();

/** Watchdog budget for every enqueued job (GAAS_BENCH_WATCHDOG). */
Cycles watchdogBudget();

/**
 * The sampled-simulation plan every enqueued job gets: disabled
 * unless --sample / GAAS_BENCH_SAMPLE is set, knobs from the
 * GAAS_BENCH_SAMPLE_* environment (defaults from SamplingConfig).
 */
core::SamplingConfig samplingPlan();

/**
 * Worker-process count for sweeps: --mproc if given, else
 * GAAS_BENCH_MPROC; 0 = in-process threads.
 */
unsigned mprocWorkerCount();

/**
 * Process exit status for main(): 3 after a SIGTERM/SIGINT drain,
 * else 1 if any point Failed (or a fatal setup error was noted),
 * else 0.  Reading it does not reset it.
 */
int exitCode();

/**
 * Record one finished simulation point: bumps the process-wide point
 * counter, warns (with the stable error code) if the point Failed,
 * emits the stderr progress line when enabled, and writes
 * `<statsJsonDir()>/NNN-<config>.json` when a dump directory is
 * configured.  The counter makes filenames collision-free even when
 * a figure runs the same configuration at several workload levels.
 *
 * Mutates @p outcome: an Ok point whose stats dump could not be
 * written is downgraded to Degraded (so the sweep journals the
 * loss), and failed points feed exitCode().
 */
void notePoint(core::SweepOutcome &outcome);

/**
 * Table-cell text for one sweep point: @p value formatted at
 * @p precision for Ok/Degraded points, `failed:<code>` for Failed
 * ones -- the explicit row every figure CSV emits instead of
 * silently dropping a dead point.
 */
std::string cell(const core::SweepOutcome &outcome, double value,
                 int precision = 4);

/** Per-configuration instruction budget. */
Count instructionBudget();

/** Warmup instructions before measurement (GAAS_BENCH_WARMUP,
 *  default half the measurement budget). */
Count warmupBudget();

/** Multiprogramming level for workload construction. */
unsigned mpLevel();

/** Run @p config on the standard workload for the budget. */
core::SimResult run(const core::SystemConfig &config);

/** Run @p config at an explicit multiprogramming level. */
core::SimResult run(const core::SystemConfig &config,
                    unsigned mp_level);

/**
 * Run with the budget scaled by @p factor.  The L2-sweep figures
 * (6, 7, 8 / Table 2) need several-times-longer traces than the CPI
 * ladders: short windows overstate large-cache miss ratios with
 * unamortised first-touch misses (the [BKW90] long-trace effect the
 * paper discusses in Section 3).
 */
core::SimResult runScaled(const core::SystemConfig &config,
                          unsigned factor);

/**
 * Deferred-execution front end to core::runSweep: a figure binary
 * enqueues its whole configuration ladder up front, then reads the
 * results back in enqueue order -- turning the figure's wall clock
 * from the sum of its configurations into (roughly) the max.
 *
 * The add() overloads mirror the immediate run()/runScaled() calls
 * they replace and return the job's index into run()'s result
 * vector.  Results are bit-identical to the serial path.
 */
class Sweep
{
  public:
    /** Enqueue @p config at the standard budget and MP level. */
    std::size_t add(const core::SystemConfig &config);

    /** Enqueue at an explicit multiprogramming level. */
    std::size_t add(const core::SystemConfig &config,
                    unsigned mp_level);

    /** Enqueue with the budget scaled by @p factor (see
     *  runScaled). */
    std::size_t addScaled(const core::SystemConfig &config,
                          unsigned factor);

    /** Number of jobs enqueued so far. */
    std::size_t size() const { return jobs.size(); }

    /**
     * Run every enqueued job across GAAS_BENCH_JOBS workers -- or,
     * when mprocWorkerCount() > 0, across that many forked worker
     * processes (proc::runSweepMproc: bit-identical results, but a
     * worker crash or hang is requeued instead of fatal) -- print a
     * one-line wall-clock/throughput summary (with ok/failed/
     * degraded/reused disposition counts), and return the outcomes
     * in enqueue order.  A throwing job becomes a Failed outcome;
     * the other points still run.  When resumeDir() is set, points
     * are journaled as they finish and points already journaled by
     * an earlier run are reused without simulating.  Every finished
     * point flows through notePoint() (in enqueue order, on this
     * thread).  The queue is cleared so the Sweep can be reused (the
     * ablations binary runs one sweep per table).
     */
    std::vector<core::SweepOutcome> run();

  private:
    std::vector<core::SweepJob> jobs;
};

/** Print @p table to stdout and write bench_out/<name>.csv. */
void emit(const stats::Table &table, const std::string &name);

/** Standard banner: figure id + paper caption + knob values. */
void banner(const std::string &figure, const std::string &caption);

} // namespace gaas::bench

#endif // GAAS_BENCH_COMMON_HH
