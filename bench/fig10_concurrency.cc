/**
 * @file
 * Figure 10: memory-system concurrency.
 *
 * Starting from the Fig. 9 outcome (write-only policy, split L2, 8W
 * fetch), three concurrency features are layered on:
 *  (1) refill L1-I from L2-I while the write buffer drains into
 *      L2-D: -0.011 CPI;
 *  (2) loads pass stores.  The paper compares full associative
 *      matching in the write buffer against its cheap scheme (an
 *      extra dirty bit on L1-D lines; flush only when a dirty line
 *      is replaced): the dirty-bit scheme achieves 95% of the
 *      associative scheme's gain, which is itself only -0.008 CPI;
 *  (3) a single 32W dirty buffer behind L2-D so the requested line
 *      is read before the dirty victim is written back: -0.008 CPI.
 *
 * The paper's conclusion: these gains (totalling -0.027 CPI) are
 * small next to the size/organisation/speed optimisations, and the
 * last two are of questionable value given their hardware cost.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 10", "gains from memory-system concurrency");

    auto assoc_bypass = core::afterConcurrentIRefill();
    assoc_bypass.name = "assoc-WB-bypass";
    assoc_bypass.loadBypass = core::LoadBypass::Associative;

    const core::SystemConfig steps[] = {
        core::afterFetchSize(),        // Fig. 9 end point
        core::afterConcurrentIRefill(),
        assoc_bypass,                  // comparison point
        core::afterLoadBypass(),       // the cheap dirty-bit scheme
        core::optimized(),             // + L2-D dirty buffer
    };

    stats::Table t({"configuration", "CPI", "delta vs prev step"});
    t.setTitle("Concurrency ladder (assoc-WB-bypass is the "
               "comparison for the dirty-bit scheme)");

    bench::Sweep sweep;
    for (const auto &cfg : steps)
        sweep.addScaled(cfg, 3);
    const auto results = sweep.run();

    double cpi_base = 0, cpi_irefill = 0, cpi_assoc = 0;
    double cpi_dirtybit = 0, cpi_full = 0;
    int col = 0;
    double prev = 0;
    for (const auto &cfg : steps) {
        const auto &out = results[static_cast<std::size_t>(col)];
        const auto &res = out.result;
        t.newRow()
            .cell(cfg.name)
            .cell(bench::cell(out, res.cpi(), 4))
            .cell(bench::cell(out, col == 0 ? 0.0 : prev - res.cpi(),
                              4));
        switch (col) {
          case 0: cpi_base = res.cpi(); break;
          case 1: cpi_irefill = res.cpi(); break;
          case 2: cpi_assoc = res.cpi(); break;
          case 3: cpi_dirtybit = res.cpi(); break;
          case 4: cpi_full = res.cpi(); break;
        }
        // The associative row is a side comparison, not a ladder
        // step: deltas chain base -> irefill -> dirtybit -> full.
        if (col != 2)
            prev = res.cpi();
        ++col;
    }
    bench::emit(t, "fig10_concurrency");

    const double gain_assoc = cpi_irefill - cpi_assoc;
    const double gain_dirty = cpi_irefill - cpi_dirtybit;
    std::cout << "concurrent I-refill: " << cpi_base - cpi_irefill
              << " CPI (paper: 0.011)\n"
              << "loads-pass-stores, dirty-bit scheme: " << gain_dirty
              << " CPI (paper: 0.008), which is "
              << (gain_assoc > 0 ? 100.0 * gain_dirty / gain_assoc
                                 : 0.0)
              << "% of associative matching (paper: 95%)\n"
              << "L2-D dirty buffer: " << cpi_dirtybit - cpi_full
              << " CPI (paper: 0.008)\n"
              << "total concurrency gain: " << cpi_base - cpi_full
              << " CPI (paper: 0.027)\n";
    return bench::exitCode();
}
