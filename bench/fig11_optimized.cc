/**
 * @file
 * Figure 11 + conclusions: the optimized architecture.
 *
 * The end point of the design study: write-only L1-D policy, 8W
 * lines, a 32KW 2-cycle L2-I on the MCM, a 256KW 6-cycle L2-D off
 * it, concurrent I-refill, loads passing stores via the dirty-bit
 * scheme, and an L2-D dirty buffer.  The paper reports a 54.5%
 * memory-system improvement and a 13.7% total improvement over the
 * base architecture.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 11", "the optimized architecture");

    const auto base = bench::runScaled(core::baseline(), 3);
    const auto opt_cfg = core::optimized();
    const auto opt = bench::runScaled(opt_cfg, 3);

    std::cout << opt_cfg.describe() << "\n\n";

    stats::Table t({"metric", "base", "optimized"});
    t.setTitle("Base vs optimized architecture");
    auto row = [&](const char *name, double b, double o) {
        t.newRow().cell(name).cell(b, 4).cell(o, 4);
    };
    row("CPI", base.cpi(), opt.cpi());
    row("memory CPI", base.memCpi(), opt.memCpi());
    row("L1-I miss/instr",
        static_cast<double>(base.sys.l1iMisses) /
            static_cast<double>(base.instructions),
        static_cast<double>(opt.sys.l1iMisses) /
            static_cast<double>(opt.instructions));
    row("L1-D miss/instr",
        static_cast<double>(base.sys.l1dReadMisses +
                            base.sys.l1dWriteMisses) /
            static_cast<double>(base.instructions),
        static_cast<double>(opt.sys.l1dReadMisses +
                            opt.sys.l1dWriteMisses) /
            static_cast<double>(opt.instructions));
    row("L2-I miss ratio", base.sys.l2iMissRatio(),
        opt.sys.l2iMissRatio());
    row("L2-D miss ratio", base.sys.l2dMissRatio(),
        opt.sys.l2dMissRatio());
    bench::emit(t, "fig11_optimized");

    std::cout << opt.formatBreakdown() << '\n'
              << "memory-system improvement: "
              << 100.0 * (1.0 - opt.memCpi() / base.memCpi())
              << "% (paper: 54.5%)\n"
              << "total improvement:         "
              << 100.0 * (1.0 - opt.cpi() / base.cpi())
              << "% (paper: 13.7%)\n";
    return bench::exitCode();
}
