/**
 * @file
 * Figure 2: the effect of multiprogramming level on cache
 * performance (500k-cycle time slice).
 *
 * The paper's findings: the L1-I miss ratio does not change with the
 * multiprogramming level, the L1-D miss ratio changes by only ~2%,
 * the L2 miss ratio changes by ~70% (of a very small number), and
 * CPI degrades only slightly; performance is essentially unaffected
 * beyond level 8.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 2", "effect of multiprogramming level on "
                            "cache performance");

    stats::Table t({"MP level", "L1-I miss ratio", "L1-D miss ratio",
                    "L2 miss ratio", "CPI"});
    t.setTitle("Base architecture, 500k-cycle time slice "
               "(level n runs the first n suite benchmarks, so the "
               "instruction mix shifts with n)");

    double l2_first = 0.0, l2_last = 0.0;
    double l1i_first = 0.0, l1i_last = 0.0;
    for (unsigned mp : {1u, 2u, 4u, 8u, 16u}) {
        const auto res = bench::run(core::baseline(), mp);
        const auto &s = res.sys;
        const double instr = static_cast<double>(res.instructions);
        const double l1i = static_cast<double>(s.l1iMisses) / instr;
        const double l1d =
            static_cast<double>(s.l1dReadMisses + s.l1dWriteMisses) /
            instr;
        const double l2 = s.l2MissRatio();
        if (mp == 1) {
            l2_first = l2;
            l1i_first = l1i;
        }
        l2_last = l2;
        l1i_last = l1i;
        t.newRow()
            .cell(static_cast<std::uint64_t>(mp))
            .cell(l1i, 4)
            .cell(l1d, 4)
            .cell(l2, 4)
            .cell(res.cpi(), 4);
    }
    bench::emit(t, "fig2_multiprogramming");

    std::cout << "L1-I miss ratio change 1 -> 16: "
              << (l1i_first > 0
                      ? 100.0 * (l1i_last - l1i_first) / l1i_first
                      : 0.0)
              << "%  (paper: ~0%)\n"
              << "L2 miss ratio change 1 -> 16:   "
              << (l2_first > 0
                      ? 100.0 * (l2_last - l2_first) / l2_first
                      : 0.0)
              << "%  (paper: ~70%, of a very small number)\n";
    return bench::exitCode();
}
