/**
 * @file
 * Figure 3: the effect of the context-switch interval on cache
 * performance (multiprogramming level 8).
 *
 * The paper sweeps the time slice from ~10k to ~10M cycles and shows
 * performance improving markedly with longer slices (more
 * opportunity to reuse lines brought into the caches); it settles on
 * 500k cycles as a realistic compromise, which together with syscall
 * switches yields an average of ~310k cycles between switches.
 */

#include <iostream>

#include <algorithm>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 3", "effect of context-switch interval on "
                            "cache performance");

    stats::Table t({"time slice (cycles)", "L1-I miss ratio",
                    "L1-D miss ratio", "L2 miss ratio", "CPI",
                    "avg cycles/switch"});
    t.setTitle("Base architecture, MP=8 "
               "(slice in cycles; paper's x-axis is 10k..10M)");

    for (Cycles slice : {10'000ull, 50'000ull, 100'000ull,
                         500'000ull, 1'000'000ull, 5'000'000ull,
                         10'000'000ull}) {
        auto cfg = core::baseline();
        cfg.timeSliceCycles = slice;
        // A fair measurement must cover several full rotations of
        // the 8-process round robin, so the budget grows with the
        // slice (10M-cycle slices need ~50M+ instructions).
        const Count budget = std::max<Count>(
            bench::instructionBudget(), 8 * slice);
        const auto res = core::runStandard(cfg, budget,
                                           bench::mpLevel(),
                                           budget / 2);
        const auto &s = res.sys;
        const double instr = static_cast<double>(res.instructions);
        t.newRow()
            .cell(static_cast<std::uint64_t>(slice))
            .cell(static_cast<double>(s.l1iMisses) / instr, 4)
            .cell(static_cast<double>(s.l1dReadMisses +
                                      s.l1dWriteMisses) /
                      instr,
                  4)
            .cell(s.l2MissRatio(), 4)
            .cell(res.cpi(), 4)
            .cell(res.contextSwitches
                      ? static_cast<std::uint64_t>(
                            res.cycles / res.contextSwitches)
                      : 0);
    }
    bench::emit(t, "fig3_timeslice");
    std::cout << "expected: CPI falls as the slice grows (line reuse); "
                 "at 500k cycles the average interval including "
                 "syscall switches is ~310k cycles\n";
    return bench::exitCode();
}
