/**
 * @file
 * Figure 4: performance losses of the base architecture.
 *
 * The paper's histogram stacks the CPI contribution of each memory-
 * system loss source on top of the 1.238 CPU floor, reaching about
 * 1.65 CPI, with writes (L1 writes + WB) accounting for 24% of the
 * memory-system loss.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 4",
                  "performance losses of the base architecture");

    const auto res = bench::run(core::baseline());

    stats::Table t({"component", "CPI contribution", "cumulative"});
    t.setTitle("Base architecture CPI breakdown (paper: 1.238 floor, "
               "~1.65 total)");
    double cum = res.baseCpi();
    t.newRow().cell("base machine").cell(res.baseCpi(), 4).cell(cum, 4);
    auto add = [&](const char *label, double value) {
        cum += value;
        t.newRow().cell(label).cell(value, 4).cell(cum, 4);
    };
    add("L1-I miss", res.perInstruction(res.comp.l1iMiss));
    add("L1-D miss", res.perInstruction(res.comp.l1dMiss));
    add("L1 writes", res.perInstruction(res.comp.l1Writes));
    add("WB", res.perInstruction(res.comp.wbWait));
    add("L2-I miss", res.perInstruction(res.comp.l2iMiss));
    add("L2-D miss", res.perInstruction(res.comp.l2dMiss));
    bench::emit(t, "fig4_base_breakdown");

    const double writes = res.perInstruction(res.comp.l1Writes) +
                          res.perInstruction(res.comp.wbWait);
    std::cout << "total CPI: " << res.cpi() << "\n"
              << "memory CPI: " << res.memCpi() << "\n"
              << "writes share of memory loss: "
              << 100.0 * writes / res.memCpi()
              << "%  (paper: 24%)\n";
    return bench::exitCode();
}
