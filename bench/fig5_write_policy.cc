/**
 * @file
 * Figure 5: write policy vs. effective L2 access time.
 *
 * The paper's findings for the base architecture (4KW L1-D):
 *  - write-through policies win for L2 access times < 8 cycles;
 *    write-back wins above 8 cycles (the trade-off comes from
 *    write-buffer drain waits growing with the access time);
 *  - the write-back curve carries a constant ~0.071 CPI of 2-cycle
 *    write hits (98% write hit ratio);
 *  - in the 4-6 cycle region, the new write-only policy performs
 *    almost as well as subblock placement (over 80% of subblock's
 *    gain comes from write misses turning later writes into hits).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 5", "write policy vs. L2 access time "
                            "trade-off");

    const core::WritePolicy policies[] = {
        core::WritePolicy::WriteBack,
        core::WritePolicy::WriteMissInvalidate,
        core::WritePolicy::WriteOnly,
        core::WritePolicy::SubblockPlacement,
    };

    stats::Table t({"L2 access (cycles)", "write-back",
                    "write-miss-inv", "write-only", "subblock"});
    t.setTitle("CPI by write policy and L2 access time "
               "(base architecture)");

    // CPI at 6 cycles for the crossover commentary.
    double cpi_wb_6 = 0, cpi_wo_6 = 0, cpi_sb_6 = 0, cpi_wmi_6 = 0;
    double crossover = 0;
    double prev_delta = 0;

    const Cycles accessTimes[] = {2u, 4u, 6u, 8u, 10u};
    bench::Sweep sweep;
    for (Cycles access : accessTimes) {
        for (const auto policy : policies) {
            auto cfg = core::withWritePolicy(core::baseline(), policy);
            cfg.l2.accessTime = access;
            sweep.add(cfg);
        }
    }
    const auto results = sweep.run();

    std::size_t job = 0;
    for (Cycles access : accessTimes) {
        t.newRow().cell(static_cast<std::uint64_t>(access));
        double cpi_wb = 0, cpi_wo = 0;
        for (const auto policy : policies) {
            const auto &out = results[job++];
            const auto &res = out.result;
            t.cell(bench::cell(out, res.cpi(), 4));
            if (policy == core::WritePolicy::WriteBack)
                cpi_wb = res.cpi();
            if (policy == core::WritePolicy::WriteOnly)
                cpi_wo = res.cpi();
            if (access == 6) {
                switch (policy) {
                  case core::WritePolicy::WriteBack:
                    cpi_wb_6 = res.cpi();
                    break;
                  case core::WritePolicy::WriteMissInvalidate:
                    cpi_wmi_6 = res.cpi();
                    break;
                  case core::WritePolicy::WriteOnly:
                    cpi_wo_6 = res.cpi();
                    break;
                  case core::WritePolicy::SubblockPlacement:
                    cpi_sb_6 = res.cpi();
                    break;
                }
            }
        }
        // Linear-interpolated crossover of write-back vs write-only.
        const double delta = cpi_wo - cpi_wb;
        if (crossover == 0 && delta > 0 && prev_delta < 0) {
            crossover = static_cast<double>(access) -
                        2.0 * delta / (delta - prev_delta);
        }
        prev_delta = delta;
    }
    bench::emit(t, "fig5_write_policy");

    std::cout << "write-only vs write-back at 6 cycles: "
              << cpi_wo_6 - cpi_wb_6
              << " CPI (paper: write-through better below 8 "
                 "cycles)\n";
    if (crossover > 0) {
        std::cout << "write-back/write-only crossover near "
                  << crossover << " cycles (paper: ~8)\n";
    }
    if (cpi_wmi_6 > cpi_sb_6) {
        std::cout << "write-only captures "
                  << 100.0 * (cpi_wmi_6 - cpi_wo_6) /
                         (cpi_wmi_6 - cpi_sb_6)
                  << "% of subblock placement's gain over "
                     "write-miss-invalidate at 6 cycles (paper: "
                     ">80%)\n";
    }
    return bench::exitCode();
}
