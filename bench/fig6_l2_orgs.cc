/**
 * @file
 * Figure 6 + Table 2: secondary cache size and organisation.
 *
 * Four organisations -- unified/split x direct-mapped/2-way -- over
 * sizes 16KW..1024KW.  Making a cache 2-way adds one cycle of access
 * time (6 -> 7).  The paper's findings:
 *  - splitting improves *direct-mapped* caches of 64KW or more;
 *  - for 2-way caches the benefit of splitting only appears at
 *    512KW;
 *  - Table 2: split caches' miss ratios keep falling with size while
 *    the unified direct-mapped curve flattens (conflicts).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 6 / Table 2", "L2 size and organisation");

    struct Org
    {
        const char *name;
        core::L2Org org;
        unsigned assoc;
        Cycles accessTime;
    };
    const Org orgs[] = {
        {"unified 1-way", core::L2Org::Unified, 1, 6},
        {"unified 2-way", core::L2Org::Unified, 2, 7},
        {"split 1-way", core::L2Org::LogicalSplit, 1, 6},
        {"split 2-way", core::L2Org::LogicalSplit, 2, 7},
    };

    stats::Table cpi({"L2 size", "unified 1-way", "unified 2-way",
                      "split 1-way", "split 2-way"});
    cpi.setTitle("Fig. 6: CPI (1-way @6 cycles, 2-way @7 cycles; "
                 "write-only L1 policy)");
    stats::Table mr({"size (words)", "unified 1-way", "unified 2-way",
                     "split 1-way", "split 2-way"});
    mr.setTitle("Table 2: L2 miss ratios");

    double uni_cpi_64 = 0, split_cpi_64 = 0;
    double uni_cpi_1024 = 0, split_cpi_1024 = 0;
    double uni_mr_1024 = 0, split_mr_1024 = 0;

    // Enqueue the whole 28-configuration ladder, run it across the
    // sweep workers, then tabulate in the same nested order.
    bench::Sweep sweep;
    for (std::uint64_t size = 16 * 1024; size <= 1024 * 1024;
         size *= 2) {
        for (const auto &org : orgs) {
            auto cfg = core::afterWritePolicy();
            cfg.l2Org = org.org;
            cfg.l2.cache.sizeWords = size;
            cfg.l2.cache.assoc = org.assoc;
            cfg.l2.accessTime = org.accessTime;
            sweep.addScaled(cfg, 4);
        }
    }
    const auto results = sweep.run();

    std::size_t job = 0;
    for (std::uint64_t size = 16 * 1024; size <= 1024 * 1024;
         size *= 2) {
        const std::string label = std::to_string(size / 1024) + "K";
        cpi.newRow().cell(label);
        mr.newRow().cell(label);
        for (const auto &org : orgs) {
            const auto &out = results[job++];
            const auto &res = out.result;
            cpi.cell(bench::cell(out, res.cpi(), 4));
            mr.cell(bench::cell(out, res.sys.l2MissRatio(), 4));

            if (size == 64 * 1024 && org.assoc == 1) {
                (org.org == core::L2Org::Unified ? uni_cpi_64
                                                 : split_cpi_64) =
                    res.cpi();
            }
            if (size == 1024 * 1024 && org.assoc == 1) {
                if (org.org == core::L2Org::Unified) {
                    uni_cpi_1024 = res.cpi();
                    uni_mr_1024 = res.sys.l2MissRatio();
                } else {
                    split_cpi_1024 = res.cpi();
                    split_mr_1024 = res.sys.l2MissRatio();
                }
            }
        }
    }
    bench::emit(cpi, "fig6_l2_cpi");
    bench::emit(mr, "table2_l2_miss_ratios");

    std::cout << "direct-mapped split vs unified at 64KW: "
              << uni_cpi_64 - split_cpi_64
              << " CPI in favour of split (paper: splitting helps "
                 "from 64KW up)\n"
              << "direct-mapped split vs unified at 1024KW: "
              << uni_cpi_1024 - split_cpi_1024 << " CPI; miss ratios "
              << uni_mr_1024 << " vs " << split_mr_1024
              << " (paper: 0.0102 vs 0.0042)\n";
    return bench::exitCode();
}
