/**
 * @file
 * Figure 7: the L2-I speed-size trade-off (4KW L1-I).
 *
 * With a split L2, the L2-I size is swept over 8KW..512KW for access
 * times of 1..9 cycles; the y-axis is the instruction side's
 * contribution to CPI (L1-I miss service + L2-I miss penalties).
 * The paper's curves run from ~0.19 CPI down to ~0.02 and are fairly
 * flat beyond 64KW -- instruction working sets are modest, so a
 * small-but-fast L2-I beats a big-but-slow one.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 7", "L2-I speed-size trade-off (CPI "
                            "contribution of the instruction side)");

    std::vector<std::string> headers = {"L2-I size"};
    for (unsigned at = 1; at <= 9; ++at)
        headers.push_back(std::to_string(at) + "cy");
    stats::Table t(std::move(headers));
    t.setTitle("Instruction-side CPI contribution "
               "(paper: 0.19 .. 0.02, flat beyond 64KW)");

    bench::Sweep sweep;
    for (std::uint64_t size = 8 * 1024; size <= 512 * 1024;
         size *= 2) {
        for (unsigned at = 1; at <= 9; ++at) {
            auto cfg = core::afterSplitL2();
            cfg.l2i.cache.sizeWords = size;
            cfg.l2i.accessTime = at;
            sweep.addScaled(cfg, 3);
        }
    }
    const auto results = sweep.run();

    double best_small_fast = 1e9, best_large_slow = 1e9;
    std::size_t job = 0;
    for (std::uint64_t size = 8 * 1024; size <= 512 * 1024;
         size *= 2) {
        t.newRow().cell(std::to_string(size / 1024) + "K");
        for (unsigned at = 1; at <= 9; ++at) {
            const auto &out = results[job++];
            const auto &res = out.result;
            const double contrib = res.perInstruction(
                res.comp.l1iMiss + res.comp.l2iMiss);
            t.cell(bench::cell(out, contrib, 4));
            if (size == 32 * 1024 && at == 2)
                best_small_fast = contrib;
            if (size == 512 * 1024 && at == 6)
                best_large_slow = contrib;
        }
    }
    bench::emit(t, "fig7_l2i_tradeoff");

    std::cout << "32KW @2 cycles: " << best_small_fast
              << " CPI vs 512KW @6 cycles: " << best_large_slow
              << " (paper: the small fast L2-I on the MCM wins)\n";
    return bench::exitCode();
}
