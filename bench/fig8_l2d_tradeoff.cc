/**
 * @file
 * Figure 8: the L2-D speed-size trade-off (4KW L1-D).
 *
 * The mirror of Fig. 7 on the data side, with the effect of writes
 * ignored to simplify the comparison.  The paper's curves run from
 * ~0.72 CPI down to ~0.06 and are *still decreasing at 512KW*: data
 * working sets are much larger, so the optimum L2-D is roughly 8x
 * the optimum L2-I and belongs off the MCM in dense (slower)
 * technology.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 8", "L2-D speed-size trade-off (CPI "
                            "contribution of the data side, writes "
                            "ignored)");

    std::vector<std::string> headers = {"L2-D size"};
    for (unsigned at = 1; at <= 9; ++at)
        headers.push_back(std::to_string(at) + "cy");
    stats::Table t(std::move(headers));
    t.setTitle("Data-side CPI contribution "
               "(paper: 0.72 .. 0.06, still falling at 512KW)");

    bench::Sweep sweep;
    for (std::uint64_t size = 8 * 1024; size <= 512 * 1024;
         size *= 2) {
        for (unsigned at = 1; at <= 9; ++at) {
            auto cfg = core::afterSplitL2();
            cfg.l2d.cache.sizeWords = size;
            cfg.l2d.accessTime = at;
            sweep.addScaled(cfg, 3);
        }
    }
    const auto results = sweep.run();

    std::vector<double> at6_curve;
    std::size_t job = 0;
    for (std::uint64_t size = 8 * 1024; size <= 512 * 1024;
         size *= 2) {
        t.newRow().cell(std::to_string(size / 1024) + "K");
        for (unsigned at = 1; at <= 9; ++at) {
            const auto &out = results[job++];
            const auto &res = out.result;
            const double contrib = res.perInstruction(
                res.comp.l1dMiss + res.comp.l2dMiss);
            t.cell(bench::cell(out, contrib, 4));
            if (at == 6)
                at6_curve.push_back(contrib);
        }
    }
    bench::emit(t, "fig8_l2d_tradeoff");

    if (at6_curve.size() >= 2) {
        const double last = at6_curve[at6_curve.size() - 1];
        const double prev = at6_curve[at6_curve.size() - 2];
        std::cout << "6-cycle curve, 256KW -> 512KW: " << prev
                  << " -> " << last
                  << " (paper: still decreasing at 512KW; the "
                     "optimum L2-D is ~8x the optimum L2-I)\n";
    }
    return bench::exitCode();
}
