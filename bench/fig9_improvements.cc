/**
 * @file
 * Figure 9: performance improvement from the split L2 and the larger
 * fetch size.
 *
 * Columns: (1) base + write-only policy; (2) + physically split L2
 * (32KW 2-cycle L2-I on the MCM, 256KW 6-cycle L2-D off it) -- the
 * paper reports a 34% memory-system improvement and memory CPI of
 * 0.242; (3) + 8W line/fetch in both L1s -- a further 0.026 CPI.
 * The paper also checks the exchanged configuration (sizes/speeds of
 * L2-I and L2-D swapped), which costs 21%: L2-I belongs on the MCM.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Fig. 9", "gains from the split L2 and the 8W "
                            "fetch size");

    const core::SystemConfig steps[] = {
        core::afterWritePolicy(),
        core::afterSplitL2(),
        core::afterFetchSize(),
        core::splitL2Exchanged(),
    };

    stats::Table t({"configuration", "CPI", "mem CPI",
                    "mem CPI vs prev"});
    t.setTitle("The Fig. 9 preset ladder (last row is the swap "
               "check, not a ladder step)");

    bench::Sweep sweep;
    for (const auto &cfg : steps)
        sweep.addScaled(cfg, 3);
    const auto results = sweep.run();

    double mem_prev = 0;
    double mem_col1 = 0, mem_col2 = 0, mem_swap = 0;
    double cpi_col2 = 0, cpi_col3 = 0;
    int col = 0;
    for (const auto &cfg : steps) {
        const auto &out = results[static_cast<std::size_t>(col)];
        const auto &res = out.result;
        const double mem = res.memCpi();
        t.newRow()
            .cell(cfg.name)
            .cell(bench::cell(out, res.cpi(), 4))
            .cell(bench::cell(out, mem, 4))
            .cell(bench::cell(
                out,
                col == 0 || col == 3
                    ? 0.0
                    : (mem_prev > 0 ? 100.0 * (1.0 - mem / mem_prev)
                                    : 0.0),
                1));
        switch (col) {
          case 0:
            mem_col1 = mem;
            break;
          case 1:
            cpi_col2 = res.cpi();
            mem_col2 = mem;
            break;
          case 2:
            cpi_col3 = res.cpi();
            break;
          case 3:
            mem_swap = mem;
            break;
        }
        mem_prev = mem;
        ++col;
    }
    bench::emit(t, "fig9_improvements");

    std::cout << "split-L2 memory improvement: "
              << (mem_col1 > 0 ? 100.0 * (1.0 - mem_col2 / mem_col1)
                               : 0.0)
              << "% (paper: 34%, memory CPI falling to 0.242)\n"
              << "fetch-size step: " << cpi_col2 - cpi_col3
              << " CPI (paper: 0.026)\n"
              << "exchanged sizes/speeds cost: "
              << (mem_col2 > 0 ? 100.0 * (mem_swap / mem_col2 - 1.0)
                               : 0.0)
              << "% memory CPI (paper: +21% -> L2-I goes on the "
                 "MCM)\n";
    return bench::exitCode();
}
