/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself.
 *
 * The paper quotes its simulator at 240,000 references/second on a
 * 15-20 MIPS MIPS RC3240 (Section 3); these benchmarks report this
 * implementation's throughput for the trace generator alone and for
 * full two-level simulations of the base and optimized
 * architectures.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <memory>
#include <vector>

#include "cache/tag_store.hh"
#include "core/config.hh"
#include "core/simulator.hh"
#include "mmu/mmu.hh"
#include "synth/suite.hh"
#include "trace/compose.hh"
#include "trace/v3.hh"
#include "util/random.hh"

namespace
{

using namespace gaas;

/** Pseudo-random word-aligned addresses covering @p span bytes. */
std::vector<Addr>
addressStream(std::size_t count, Addr span)
{
    Rng rng(0x5eed);
    std::vector<Addr> addrs(count);
    for (auto &a : addrs)
        a = (rng.next64() % span) & ~Addr{3};
    return addrs;
}

/**
 * Raw tag-probe kernel: the inner operation of every simulated
 * reference.  @p span sized at 4x the cache so roughly 3/4 of the
 * probes miss and the branch pattern is adversarial.
 */
void
findKernel(benchmark::State &state, const cache::CacheConfig &cfg)
{
    cache::TagStore store(cfg, "bench");
    const auto addrs =
        addressStream(1 << 16, Addr{4} * cfg.sizeBytes());
    cache::Eviction ev;
    for (const Addr a : addrs)
        store.allocate(a, ev);

    std::size_t i = 0;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const auto idx = store.lookup(addrs[i]);
        hits += idx != cache::TagStore::npos;
        if (++i == addrs.size())
            i = 0;
    }
    benchmark::DoNotOptimize(hits);
    state.counters["probes/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

/** find-or-allocate kernel: adds the replacement path. */
void
allocateKernel(benchmark::State &state,
               const cache::CacheConfig &cfg)
{
    cache::TagStore store(cfg, "bench");
    const auto addrs =
        addressStream(1 << 16, Addr{4} * cfg.sizeBytes());

    std::size_t i = 0;
    cache::Eviction ev;
    for (auto _ : state) {
        const Addr a = addrs[i];
        const auto idx = store.lookup(a);
        if (idx == cache::TagStore::npos)
            store.allocateIdx(a, ev);
        else
            store.touchIdx(idx);
        if (++i == addrs.size())
            i = 0;
    }
    benchmark::DoNotOptimize(ev.lineAddr);
    state.counters["ops/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

void
BM_TagStoreFindDm(benchmark::State &state)
{
    findKernel(state, cache::directMapped(4 * 1024));
}
BENCHMARK(BM_TagStoreFindDm);

void
BM_TagStoreFindAssoc4(benchmark::State &state)
{
    findKernel(state, cache::setAssoc(4 * 1024, 4, 4));
}
BENCHMARK(BM_TagStoreFindAssoc4);

void
BM_TagStoreAllocateDm(benchmark::State &state)
{
    allocateKernel(state, cache::directMapped(4 * 1024));
}
BENCHMARK(BM_TagStoreAllocateDm);

void
BM_TagStoreAllocateAssoc4(benchmark::State &state)
{
    allocateKernel(state, cache::setAssoc(4 * 1024, 4, 4));
}
BENCHMARK(BM_TagStoreAllocateAssoc4);

void
BM_MmuTranslate(benchmark::State &state)
{
    mmu::Mmu unit{mmu::MmuConfig{}};
    // 8 processes x 1MB working sets, like the standard workload.
    const auto addrs = addressStream(1 << 16, Addr{1} << 20);
    std::size_t i = 0;
    Addr sum = 0;
    for (auto _ : state) {
        const auto pid = static_cast<Pid>(i & 7);
        sum += unit.translateData(pid, addrs[i]).paddr;
        if (++i == addrs.size())
            i = 0;
    }
    benchmark::DoNotOptimize(sum);
    state.counters["xlates/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MmuTranslate);

/**
 * The exact source composition Workload::standard hands the
 * Simulator: a looped synthetic benchmark consumed through the
 * TraceSource interface.  Benchmarking a bare SyntheticBenchmark
 * would let the compiler devirtualize and understate the real
 * per-reference cost the batch interface exists to amortise.
 */
std::unique_ptr<trace::TraceSource>
workloadSource()
{
    auto spec = synth::defaultSuite()[0];
    spec.simInstructions = 1ull << 40; // never exhausts mid-run
    return std::make_unique<trace::LoopSource>(
        synth::makeBenchmark(spec));
}

void
BM_TraceGeneration(benchmark::State &state)
{
    const std::unique_ptr<trace::TraceSource> src = workloadSource();
    trace::MemRef ref;
    for (auto _ : state) {
        src->next(ref);
        benchmark::DoNotOptimize(ref.addr);
    }
    // One next() per iteration: iterations() is the reference count.
    state.counters["refs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceGeneration);

void
BM_TraceGenerationBatched(benchmark::State &state)
{
    const std::unique_ptr<trace::TraceSource> src = workloadSource();
    std::array<trace::MemRef, 64> buffer; // the Simulator's kRefBatch
    for (auto _ : state) {
        const std::size_t got =
            src->nextBatch(buffer.data(), buffer.size());
        benchmark::DoNotOptimize(buffer.data());
        benchmark::DoNotOptimize(got);
    }
    state.counters["refs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * buffer.size(),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceGenerationBatched);

/**
 * One block of synthetic-workload records, the v3 codec's unit of
 * work.  Generated once per benchmark: the kernels below measure
 * encode/decode cost alone, not trace generation.
 */
std::vector<trace::MemRef>
v3BenchBlock(std::size_t records)
{
    auto spec = synth::defaultSuite()[0];
    spec.simInstructions = 1ull << 40;
    auto src = synth::makeBenchmark(spec);
    std::vector<trace::MemRef> refs(records);
    src->nextBatch(refs.data(), records);
    return refs;
}

void
BM_V3EncodeBlock(benchmark::State &state)
{
    const auto records = static_cast<std::size_t>(state.range(0));
    const auto refs = v3BenchBlock(records);
    std::vector<unsigned char> payload(records *
                                       trace::kV3MaxRecordBytes);
    std::size_t bytes = 0;
    for (auto _ : state) {
        bytes = trace::v3::encodeBlock(refs.data(), records,
                                       payload.data());
        benchmark::DoNotOptimize(payload.data());
    }
    benchmark::DoNotOptimize(bytes);
    state.counters["refs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(records),
        benchmark::Counter::kIsRate);
    state.counters["B/record"] =
        static_cast<double>(bytes) / static_cast<double>(records);
}
BENCHMARK(BM_V3EncodeBlock)->Arg(1 << 16);

void
BM_V3DecodeBlock(benchmark::State &state)
{
    const auto records = static_cast<std::size_t>(state.range(0));
    const auto refs = v3BenchBlock(records);
    std::vector<unsigned char> payload(records *
                                       trace::kV3MaxRecordBytes);
    const std::size_t bytes = trace::v3::encodeBlock(
        refs.data(), records, payload.data());
    std::vector<trace::MemRef> out(records);
    const trace::v3::BlockContext ctx{nullptr, 0, 0};
    for (auto _ : state) {
        trace::v3::decodeBlock(payload.data(), bytes, records,
                               out.data(), ctx);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["refs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(records),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_V3DecodeBlock)->Arg(1 << 16);

void
BM_V3DecodeBlockPacked(benchmark::State &state)
{
    // The streaming hot path: varint straight to packed u32 words,
    // no 16-byte MemRef round trip.
    const auto records = static_cast<std::size_t>(state.range(0));
    const auto refs = v3BenchBlock(records);
    std::vector<unsigned char> payload(records *
                                       trace::kV3MaxRecordBytes);
    const std::size_t bytes = trace::v3::encodeBlock(
        refs.data(), records, payload.data());
    std::vector<std::uint32_t> out(records);
    const trace::v3::BlockContext ctx{nullptr, 0, 0};
    for (auto _ : state) {
        trace::v3::decodeBlockPacked(payload.data(), bytes,
                                     records, out.data(), ctx);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["refs/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(records),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_V3DecodeBlockPacked)->Arg(1 << 16);

void
simulateConfig(benchmark::State &state,
               const core::SystemConfig &cfg)
{
    const auto instructions =
        static_cast<Count>(state.range(0));
    Count refs_per_run = 0;
    for (auto _ : state) {
        core::Simulator sim(cfg, core::Workload::standard(8));
        const auto res = sim.run(instructions);
        refs_per_run = res.references();
        benchmark::DoNotOptimize(res.cycles);
    }
    // Reference count per run is deterministic, so total refs is
    // iterations() * refs_per_run (the old hand-summed counter was
    // reset between benchmark's estimation passes and undercounted).
    const double refs = static_cast<double>(state.iterations()) *
                        static_cast<double>(refs_per_run);
    state.counters["refs/s"] =
        benchmark::Counter(refs, benchmark::Counter::kIsRate);
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}

void
BM_SimulateBaseline(benchmark::State &state)
{
    simulateConfig(state, core::baseline());
}
BENCHMARK(BM_SimulateBaseline)->Arg(200000)->Unit(
    benchmark::kMillisecond);

void
BM_SimulateOptimized(benchmark::State &state)
{
    simulateConfig(state, core::optimized());
}
BENCHMARK(BM_SimulateOptimized)->Arg(200000)->Unit(
    benchmark::kMillisecond);

void
BM_SimulateWriteOnly(benchmark::State &state)
{
    simulateConfig(state, core::afterWritePolicy());
}
BENCHMARK(BM_SimulateWriteOnly)->Arg(200000)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
