/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself.
 *
 * The paper quotes its simulator at 240,000 references/second on a
 * 15-20 MIPS MIPS RC3240 (Section 3); these benchmarks report this
 * implementation's throughput for the trace generator alone and for
 * full two-level simulations of the base and optimized
 * architectures.
 */

#include <benchmark/benchmark.h>

#include "core/config.hh"
#include "core/simulator.hh"
#include "synth/suite.hh"
#include "trace/compose.hh"

namespace
{

using namespace gaas;

void
BM_TraceGeneration(benchmark::State &state)
{
    auto spec = synth::defaultSuite()[0];
    spec.simInstructions = 1ull << 40; // never exhausts mid-run
    synth::SyntheticBenchmark bench(spec);
    trace::MemRef ref;
    Count refs = 0;
    for (auto _ : state) {
        bench.next(ref);
        benchmark::DoNotOptimize(ref.addr);
        ++refs;
    }
    state.counters["refs/s"] = benchmark::Counter(
        static_cast<double>(refs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceGeneration);

void
simulateConfig(benchmark::State &state,
               const core::SystemConfig &cfg)
{
    const auto instructions =
        static_cast<Count>(state.range(0));
    Count refs = 0;
    for (auto _ : state) {
        core::Simulator sim(cfg, core::Workload::standard(8));
        const auto res = sim.run(instructions);
        refs += res.sys.ifetches + res.sys.loads + res.sys.stores;
        benchmark::DoNotOptimize(res.cycles);
    }
    state.counters["refs/s"] = benchmark::Counter(
        static_cast<double>(refs), benchmark::Counter::kIsRate);
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}

void
BM_SimulateBaseline(benchmark::State &state)
{
    simulateConfig(state, core::baseline());
}
BENCHMARK(BM_SimulateBaseline)->Arg(200000)->Unit(
    benchmark::kMillisecond);

void
BM_SimulateOptimized(benchmark::State &state)
{
    simulateConfig(state, core::optimized());
}
BENCHMARK(BM_SimulateOptimized)->Arg(200000)->Unit(
    benchmark::kMillisecond);

void
BM_SimulateWriteOnly(benchmark::State &state)
{
    simulateConfig(state, core::afterWritePolicy());
}
BENCHMARK(BM_SimulateWriteOnly)->Arg(200000)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
