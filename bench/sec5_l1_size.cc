/**
 * @file
 * Section 5: why the primary caches stay at 4KW.
 *
 * The page-size constraint caps a virtually-indexed direct-mapped
 * L1-D at 4KW (16KB pages, synonyms allowed); the L1-I could grow,
 * and a set-associative L1-D is conceivable, but both cost cycle
 * time: an 8KW L1-I needs 6 more SRAMs plus virtual tags and address
 * translation in the fetch path, and an off-MMU set-associative
 * L1-D tag path nearly doubles the cycle.  This bench quantifies the
 * trade: raw CPI gains from bigger/associative L1s versus the same
 * configurations once the paper's cycle-time side-costs are charged
 * (execution time = CPI x cycle time).
 */

#include <iostream>

#include "bench_common.hh"
#include "core/config.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Sec. 5", "primary cache size and associativity "
                            "under cycle-time constraints");

    struct Variant
    {
        const char *name;
        std::uint64_t l1iWords, l1dWords;
        unsigned l1dAssoc;
        double cycleFactor; //!< relative cycle time (paper Sec. 5)
    };
    const Variant variants[] = {
        // 4ns CPU cycle; the baseline.
        {"4KW I / 4KW D (base)", 4096, 4096, 1, 1.00},
        // 8KW L1-I: +4 SRAMs for memory, +2 for virtual tags, plus
        // address translation before fetch -> longer cycle.
        {"8KW I / 4KW D", 8192, 4096, 1, 1.15},
        // Set-associative L1-D forces the tags off the MMU chip;
        // tag access + compare almost doubles the cycle.
        {"4KW I / 4KW D 2-way", 4096, 4096, 2, 1.80},
        // Both, for completeness.
        {"8KW I / 8KW D 2-way", 8192, 8192, 2, 1.85},
    };

    stats::Table t({"configuration", "CPI", "rel. cycle time",
                    "rel. execution time"});
    t.setTitle("CPI gains vs cycle-time cost "
               "(execution time = CPI x cycle)");

    bench::Sweep sweep;
    for (const auto &v : variants) {
        auto cfg = core::baseline();
        cfg.l1i.sizeWords = v.l1iWords;
        cfg.l1d.sizeWords = v.l1dWords;
        cfg.l1d.assoc = v.l1dAssoc;
        sweep.add(cfg);
    }
    const auto results = sweep.run();

    double base_cpi = 0;
    std::size_t job = 0;
    for (const auto &v : variants) {
        const auto &out = results[job++];
        const auto &res = out.result;
        if (base_cpi == 0)
            base_cpi = res.cpi();
        t.newRow()
            .cell(v.name)
            .cell(bench::cell(out, res.cpi(), 4))
            .cell(v.cycleFactor, 2)
            .cell(bench::cell(out,
                              base_cpi > 0 ? res.cpi() * v.cycleFactor /
                                                 base_cpi
                                           : 0.0,
                              4));
    }
    bench::emit(t, "sec5_l1_size");

    std::cout << "expected: every variant's relative execution time "
                 "exceeds 1.0 -- the CPI gain never pays for the "
                 "cycle-time loss, so the L1s stay at 4KW direct "
                 "mapped (paper Sec. 5)\n";
    return bench::exitCode();
}
