/**
 * @file
 * Table 1: the multiprogramming workload.
 *
 * The paper characterises each benchmark by instruction count, loads
 * and stores as a percentage of instructions, and the number of
 * voluntary system calls.  This binary plays each synthetic benchmark
 * standalone and reports the measured mix next to the paper-scale
 * column values the suite models.
 */

#include <iostream>

#include "bench_common.hh"
#include "synth/suite.hh"
#include "trace/compose.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;
    bench::init(argc, argv);
    bench::banner("Table 1", "benchmarks of the multiprogramming "
                             "workload");

    stats::Table t({"benchmark", "description", "type", "instr (M)",
                    "loads (%)", "stores (%)", "syscalls"});
    t.setTitle("Measured mix of each synthetic benchmark (paper-scale "
               "instruction counts)");

    Count total_refs = 0;
    for (const auto &spec : synth::defaultSuite()) {
        // Measure the mix over one (scaled) pass of the trace.
        trace::MixSource mix(synth::makeBenchmark(spec));
        trace::MemRef ref;
        while (mix.next(ref)) {
        }
        const auto &m = mix.mix();
        total_refs += m.total();

        // Scale measured counts back to the paper-scale run length.
        const double scale = spec.paperInstructionsM * 1e6 /
                             static_cast<double>(m.instructions);
        t.newRow()
            .cell(spec.name)
            .cell(spec.description)
            .cell(synth::arithClassTag(spec.arith))
            .cell(spec.paperInstructionsM, 0)
            .cell(100.0 * m.loadFraction(), 1)
            .cell(100.0 * m.storeFraction(), 1)
            .cell(static_cast<std::uint64_t>(
                static_cast<double>(m.syscalls) * scale));
    }
    bench::emit(t, "table1_workloads");

    double paper_minstr = 0;
    double paper_refs = 0;
    for (const auto &spec : synth::defaultSuite()) {
        paper_minstr += spec.paperInstructionsM;
        paper_refs += spec.paperInstructionsM *
                      (1.0 + spec.loadFrac + spec.storeFrac);
    }
    std::cout << "paper-scale suite size: " << paper_minstr / 1000.0
              << " billion instructions, " << paper_refs / 1000.0
              << " billion references (paper: ~2.5 billion "
                 "references)\n"
              << "scaled trace references this run: " << total_refs
              << "\n";
    return bench::exitCode();
}
