file(REMOVE_RECURSE
  "CMakeFiles/fig10_concurrency.dir/bench_common.cc.o"
  "CMakeFiles/fig10_concurrency.dir/bench_common.cc.o.d"
  "CMakeFiles/fig10_concurrency.dir/fig10_concurrency.cc.o"
  "CMakeFiles/fig10_concurrency.dir/fig10_concurrency.cc.o.d"
  "fig10_concurrency"
  "fig10_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
