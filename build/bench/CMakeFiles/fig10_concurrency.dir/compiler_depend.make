# Empty compiler generated dependencies file for fig10_concurrency.
# This may be replaced when dependencies are built.
