file(REMOVE_RECURSE
  "CMakeFiles/fig11_optimized.dir/bench_common.cc.o"
  "CMakeFiles/fig11_optimized.dir/bench_common.cc.o.d"
  "CMakeFiles/fig11_optimized.dir/fig11_optimized.cc.o"
  "CMakeFiles/fig11_optimized.dir/fig11_optimized.cc.o.d"
  "fig11_optimized"
  "fig11_optimized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
