# Empty compiler generated dependencies file for fig11_optimized.
# This may be replaced when dependencies are built.
