file(REMOVE_RECURSE
  "CMakeFiles/fig2_multiprogramming.dir/bench_common.cc.o"
  "CMakeFiles/fig2_multiprogramming.dir/bench_common.cc.o.d"
  "CMakeFiles/fig2_multiprogramming.dir/fig2_multiprogramming.cc.o"
  "CMakeFiles/fig2_multiprogramming.dir/fig2_multiprogramming.cc.o.d"
  "fig2_multiprogramming"
  "fig2_multiprogramming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_multiprogramming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
