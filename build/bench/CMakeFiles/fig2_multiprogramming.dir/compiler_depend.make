# Empty compiler generated dependencies file for fig2_multiprogramming.
# This may be replaced when dependencies are built.
