file(REMOVE_RECURSE
  "CMakeFiles/fig3_timeslice.dir/bench_common.cc.o"
  "CMakeFiles/fig3_timeslice.dir/bench_common.cc.o.d"
  "CMakeFiles/fig3_timeslice.dir/fig3_timeslice.cc.o"
  "CMakeFiles/fig3_timeslice.dir/fig3_timeslice.cc.o.d"
  "fig3_timeslice"
  "fig3_timeslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_timeslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
