# Empty dependencies file for fig3_timeslice.
# This may be replaced when dependencies are built.
