file(REMOVE_RECURSE
  "CMakeFiles/fig4_base_breakdown.dir/bench_common.cc.o"
  "CMakeFiles/fig4_base_breakdown.dir/bench_common.cc.o.d"
  "CMakeFiles/fig4_base_breakdown.dir/fig4_base_breakdown.cc.o"
  "CMakeFiles/fig4_base_breakdown.dir/fig4_base_breakdown.cc.o.d"
  "fig4_base_breakdown"
  "fig4_base_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_base_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
