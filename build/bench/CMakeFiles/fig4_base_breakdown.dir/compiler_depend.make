# Empty compiler generated dependencies file for fig4_base_breakdown.
# This may be replaced when dependencies are built.
