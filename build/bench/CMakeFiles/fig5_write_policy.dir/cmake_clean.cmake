file(REMOVE_RECURSE
  "CMakeFiles/fig5_write_policy.dir/bench_common.cc.o"
  "CMakeFiles/fig5_write_policy.dir/bench_common.cc.o.d"
  "CMakeFiles/fig5_write_policy.dir/fig5_write_policy.cc.o"
  "CMakeFiles/fig5_write_policy.dir/fig5_write_policy.cc.o.d"
  "fig5_write_policy"
  "fig5_write_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_write_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
