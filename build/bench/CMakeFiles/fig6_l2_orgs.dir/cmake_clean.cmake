file(REMOVE_RECURSE
  "CMakeFiles/fig6_l2_orgs.dir/bench_common.cc.o"
  "CMakeFiles/fig6_l2_orgs.dir/bench_common.cc.o.d"
  "CMakeFiles/fig6_l2_orgs.dir/fig6_l2_orgs.cc.o"
  "CMakeFiles/fig6_l2_orgs.dir/fig6_l2_orgs.cc.o.d"
  "fig6_l2_orgs"
  "fig6_l2_orgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_l2_orgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
