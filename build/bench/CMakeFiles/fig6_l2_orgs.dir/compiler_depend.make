# Empty compiler generated dependencies file for fig6_l2_orgs.
# This may be replaced when dependencies are built.
