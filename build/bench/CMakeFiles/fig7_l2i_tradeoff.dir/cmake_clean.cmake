file(REMOVE_RECURSE
  "CMakeFiles/fig7_l2i_tradeoff.dir/bench_common.cc.o"
  "CMakeFiles/fig7_l2i_tradeoff.dir/bench_common.cc.o.d"
  "CMakeFiles/fig7_l2i_tradeoff.dir/fig7_l2i_tradeoff.cc.o"
  "CMakeFiles/fig7_l2i_tradeoff.dir/fig7_l2i_tradeoff.cc.o.d"
  "fig7_l2i_tradeoff"
  "fig7_l2i_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_l2i_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
