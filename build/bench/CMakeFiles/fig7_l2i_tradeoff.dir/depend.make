# Empty dependencies file for fig7_l2i_tradeoff.
# This may be replaced when dependencies are built.
