file(REMOVE_RECURSE
  "CMakeFiles/fig8_l2d_tradeoff.dir/bench_common.cc.o"
  "CMakeFiles/fig8_l2d_tradeoff.dir/bench_common.cc.o.d"
  "CMakeFiles/fig8_l2d_tradeoff.dir/fig8_l2d_tradeoff.cc.o"
  "CMakeFiles/fig8_l2d_tradeoff.dir/fig8_l2d_tradeoff.cc.o.d"
  "fig8_l2d_tradeoff"
  "fig8_l2d_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_l2d_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
