# Empty compiler generated dependencies file for fig8_l2d_tradeoff.
# This may be replaced when dependencies are built.
