file(REMOVE_RECURSE
  "CMakeFiles/fig9_improvements.dir/bench_common.cc.o"
  "CMakeFiles/fig9_improvements.dir/bench_common.cc.o.d"
  "CMakeFiles/fig9_improvements.dir/fig9_improvements.cc.o"
  "CMakeFiles/fig9_improvements.dir/fig9_improvements.cc.o.d"
  "fig9_improvements"
  "fig9_improvements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_improvements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
