# Empty dependencies file for fig9_improvements.
# This may be replaced when dependencies are built.
