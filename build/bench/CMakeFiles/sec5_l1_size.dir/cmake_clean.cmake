file(REMOVE_RECURSE
  "CMakeFiles/sec5_l1_size.dir/bench_common.cc.o"
  "CMakeFiles/sec5_l1_size.dir/bench_common.cc.o.d"
  "CMakeFiles/sec5_l1_size.dir/sec5_l1_size.cc.o"
  "CMakeFiles/sec5_l1_size.dir/sec5_l1_size.cc.o.d"
  "sec5_l1_size"
  "sec5_l1_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_l1_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
