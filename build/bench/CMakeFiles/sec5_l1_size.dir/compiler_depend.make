# Empty compiler generated dependencies file for sec5_l1_size.
# This may be replaced when dependencies are built.
