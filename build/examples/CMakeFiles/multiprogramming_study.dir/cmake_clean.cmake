file(REMOVE_RECURSE
  "CMakeFiles/multiprogramming_study.dir/multiprogramming_study.cpp.o"
  "CMakeFiles/multiprogramming_study.dir/multiprogramming_study.cpp.o.d"
  "multiprogramming_study"
  "multiprogramming_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogramming_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
