# Empty dependencies file for multiprogramming_study.
# This may be replaced when dependencies are built.
