
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gaas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gaas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gaas_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gaas_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/gaas_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gaas_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gaas_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
