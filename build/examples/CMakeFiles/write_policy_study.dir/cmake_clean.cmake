file(REMOVE_RECURSE
  "CMakeFiles/write_policy_study.dir/write_policy_study.cpp.o"
  "CMakeFiles/write_policy_study.dir/write_policy_study.cpp.o.d"
  "write_policy_study"
  "write_policy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_policy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
