# Empty compiler generated dependencies file for write_policy_study.
# This may be replaced when dependencies are built.
