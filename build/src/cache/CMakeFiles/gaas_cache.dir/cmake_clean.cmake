file(REMOVE_RECURSE
  "CMakeFiles/gaas_cache.dir/config.cc.o"
  "CMakeFiles/gaas_cache.dir/config.cc.o.d"
  "CMakeFiles/gaas_cache.dir/tag_store.cc.o"
  "CMakeFiles/gaas_cache.dir/tag_store.cc.o.d"
  "libgaas_cache.a"
  "libgaas_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaas_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
