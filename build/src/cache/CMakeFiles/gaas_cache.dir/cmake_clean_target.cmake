file(REMOVE_RECURSE
  "libgaas_cache.a"
)
