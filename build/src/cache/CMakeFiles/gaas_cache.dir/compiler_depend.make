# Empty compiler generated dependencies file for gaas_cache.
# This may be replaced when dependencies are built.
