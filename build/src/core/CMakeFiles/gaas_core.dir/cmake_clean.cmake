file(REMOVE_RECURSE
  "CMakeFiles/gaas_core.dir/cache_system.cc.o"
  "CMakeFiles/gaas_core.dir/cache_system.cc.o.d"
  "CMakeFiles/gaas_core.dir/config.cc.o"
  "CMakeFiles/gaas_core.dir/config.cc.o.d"
  "CMakeFiles/gaas_core.dir/config_io.cc.o"
  "CMakeFiles/gaas_core.dir/config_io.cc.o.d"
  "CMakeFiles/gaas_core.dir/cpi.cc.o"
  "CMakeFiles/gaas_core.dir/cpi.cc.o.d"
  "CMakeFiles/gaas_core.dir/simulator.cc.o"
  "CMakeFiles/gaas_core.dir/simulator.cc.o.d"
  "CMakeFiles/gaas_core.dir/stats_dump.cc.o"
  "CMakeFiles/gaas_core.dir/stats_dump.cc.o.d"
  "CMakeFiles/gaas_core.dir/workload.cc.o"
  "CMakeFiles/gaas_core.dir/workload.cc.o.d"
  "libgaas_core.a"
  "libgaas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
