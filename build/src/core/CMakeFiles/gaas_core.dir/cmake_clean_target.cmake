file(REMOVE_RECURSE
  "libgaas_core.a"
)
