# Empty compiler generated dependencies file for gaas_core.
# This may be replaced when dependencies are built.
