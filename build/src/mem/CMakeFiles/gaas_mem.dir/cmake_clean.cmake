file(REMOVE_RECURSE
  "CMakeFiles/gaas_mem.dir/main_memory.cc.o"
  "CMakeFiles/gaas_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/gaas_mem.dir/write_buffer.cc.o"
  "CMakeFiles/gaas_mem.dir/write_buffer.cc.o.d"
  "libgaas_mem.a"
  "libgaas_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaas_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
