file(REMOVE_RECURSE
  "libgaas_mem.a"
)
