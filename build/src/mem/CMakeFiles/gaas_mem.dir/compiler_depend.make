# Empty compiler generated dependencies file for gaas_mem.
# This may be replaced when dependencies are built.
