file(REMOVE_RECURSE
  "CMakeFiles/gaas_mmu.dir/mmu.cc.o"
  "CMakeFiles/gaas_mmu.dir/mmu.cc.o.d"
  "CMakeFiles/gaas_mmu.dir/page_table.cc.o"
  "CMakeFiles/gaas_mmu.dir/page_table.cc.o.d"
  "CMakeFiles/gaas_mmu.dir/tlb.cc.o"
  "CMakeFiles/gaas_mmu.dir/tlb.cc.o.d"
  "libgaas_mmu.a"
  "libgaas_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaas_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
