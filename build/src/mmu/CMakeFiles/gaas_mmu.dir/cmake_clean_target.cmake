file(REMOVE_RECURSE
  "libgaas_mmu.a"
)
