# Empty dependencies file for gaas_mmu.
# This may be replaced when dependencies are built.
