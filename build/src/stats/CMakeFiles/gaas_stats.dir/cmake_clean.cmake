file(REMOVE_RECURSE
  "CMakeFiles/gaas_stats.dir/distribution.cc.o"
  "CMakeFiles/gaas_stats.dir/distribution.cc.o.d"
  "CMakeFiles/gaas_stats.dir/table.cc.o"
  "CMakeFiles/gaas_stats.dir/table.cc.o.d"
  "libgaas_stats.a"
  "libgaas_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaas_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
