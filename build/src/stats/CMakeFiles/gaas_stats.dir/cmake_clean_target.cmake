file(REMOVE_RECURSE
  "libgaas_stats.a"
)
