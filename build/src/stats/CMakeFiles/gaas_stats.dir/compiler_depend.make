# Empty compiler generated dependencies file for gaas_stats.
# This may be replaced when dependencies are built.
