
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/benchmark.cc" "src/synth/CMakeFiles/gaas_synth.dir/benchmark.cc.o" "gcc" "src/synth/CMakeFiles/gaas_synth.dir/benchmark.cc.o.d"
  "/root/repo/src/synth/code_model.cc" "src/synth/CMakeFiles/gaas_synth.dir/code_model.cc.o" "gcc" "src/synth/CMakeFiles/gaas_synth.dir/code_model.cc.o.d"
  "/root/repo/src/synth/data_model.cc" "src/synth/CMakeFiles/gaas_synth.dir/data_model.cc.o" "gcc" "src/synth/CMakeFiles/gaas_synth.dir/data_model.cc.o.d"
  "/root/repo/src/synth/suite.cc" "src/synth/CMakeFiles/gaas_synth.dir/suite.cc.o" "gcc" "src/synth/CMakeFiles/gaas_synth.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/gaas_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
