file(REMOVE_RECURSE
  "CMakeFiles/gaas_synth.dir/benchmark.cc.o"
  "CMakeFiles/gaas_synth.dir/benchmark.cc.o.d"
  "CMakeFiles/gaas_synth.dir/code_model.cc.o"
  "CMakeFiles/gaas_synth.dir/code_model.cc.o.d"
  "CMakeFiles/gaas_synth.dir/data_model.cc.o"
  "CMakeFiles/gaas_synth.dir/data_model.cc.o.d"
  "CMakeFiles/gaas_synth.dir/suite.cc.o"
  "CMakeFiles/gaas_synth.dir/suite.cc.o.d"
  "libgaas_synth.a"
  "libgaas_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaas_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
