file(REMOVE_RECURSE
  "libgaas_synth.a"
)
