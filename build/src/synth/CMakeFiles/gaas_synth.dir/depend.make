# Empty dependencies file for gaas_synth.
# This may be replaced when dependencies are built.
