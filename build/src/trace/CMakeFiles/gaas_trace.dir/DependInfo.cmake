
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/compose.cc" "src/trace/CMakeFiles/gaas_trace.dir/compose.cc.o" "gcc" "src/trace/CMakeFiles/gaas_trace.dir/compose.cc.o.d"
  "/root/repo/src/trace/file.cc" "src/trace/CMakeFiles/gaas_trace.dir/file.cc.o" "gcc" "src/trace/CMakeFiles/gaas_trace.dir/file.cc.o.d"
  "/root/repo/src/trace/patterns.cc" "src/trace/CMakeFiles/gaas_trace.dir/patterns.cc.o" "gcc" "src/trace/CMakeFiles/gaas_trace.dir/patterns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gaas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
