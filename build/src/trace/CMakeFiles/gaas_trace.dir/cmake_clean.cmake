file(REMOVE_RECURSE
  "CMakeFiles/gaas_trace.dir/compose.cc.o"
  "CMakeFiles/gaas_trace.dir/compose.cc.o.d"
  "CMakeFiles/gaas_trace.dir/file.cc.o"
  "CMakeFiles/gaas_trace.dir/file.cc.o.d"
  "CMakeFiles/gaas_trace.dir/patterns.cc.o"
  "CMakeFiles/gaas_trace.dir/patterns.cc.o.d"
  "libgaas_trace.a"
  "libgaas_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaas_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
