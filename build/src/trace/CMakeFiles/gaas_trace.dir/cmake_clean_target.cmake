file(REMOVE_RECURSE
  "libgaas_trace.a"
)
