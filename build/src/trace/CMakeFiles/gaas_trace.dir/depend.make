# Empty dependencies file for gaas_trace.
# This may be replaced when dependencies are built.
