file(REMOVE_RECURSE
  "CMakeFiles/gaas_util.dir/logging.cc.o"
  "CMakeFiles/gaas_util.dir/logging.cc.o.d"
  "CMakeFiles/gaas_util.dir/random.cc.o"
  "CMakeFiles/gaas_util.dir/random.cc.o.d"
  "libgaas_util.a"
  "libgaas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
