file(REMOVE_RECURSE
  "libgaas_util.a"
)
