# Empty dependencies file for gaas_util.
# This may be replaced when dependencies are built.
