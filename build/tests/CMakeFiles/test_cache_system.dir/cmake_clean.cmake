file(REMOVE_RECURSE
  "CMakeFiles/test_cache_system.dir/test_cache_system.cc.o"
  "CMakeFiles/test_cache_system.dir/test_cache_system.cc.o.d"
  "test_cache_system"
  "test_cache_system.pdb"
  "test_cache_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
