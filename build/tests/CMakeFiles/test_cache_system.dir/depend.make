# Empty dependencies file for test_cache_system.
# This may be replaced when dependencies are built.
