file(REMOVE_RECURSE
  "CMakeFiles/test_mmu.dir/test_mmu.cc.o"
  "CMakeFiles/test_mmu.dir/test_mmu.cc.o.d"
  "test_mmu"
  "test_mmu.pdb"
  "test_mmu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
