# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_mmu[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_cache_system[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_directed[1]_include.cmake")
include("/root/repo/build/tests/test_config_io[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
