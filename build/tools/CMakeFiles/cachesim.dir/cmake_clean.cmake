file(REMOVE_RECURSE
  "CMakeFiles/cachesim.dir/cachesim.cc.o"
  "CMakeFiles/cachesim.dir/cachesim.cc.o.d"
  "cachesim"
  "cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
