file(REMOVE_RECURSE
  "CMakeFiles/gaassim.dir/gaassim.cc.o"
  "CMakeFiles/gaassim.dir/gaassim.cc.o.d"
  "gaassim"
  "gaassim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaassim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
