# Empty compiler generated dependencies file for gaassim.
# This may be replaced when dependencies are built.
