/**
 * @file
 * Example: a small command-line front end over the whole design
 * space -- build any two-level configuration from flags and simulate
 * it on the standard workload.
 *
 * Usage:
 *   design_space_explorer [options]
 *     --instructions N     instruction budget (default 1,000,000)
 *     --mp N               multiprogramming level (default 8)
 *     --policy P           writeback | invalidate | writeonly |
 *                          subblock
 *     --l1 WORDS           L1 size in words (both I and D)
 *     --line WORDS         L1 line/fetch size in words
 *     --l2 WORDS           L2 size in words
 *     --l2-assoc N         L2 associativity
 *     --l2-access CYCLES   L2 access time
 *     --l2-org ORG         unified | logical | physical
 *     --concurrency        enable all Section-9 features
 *     --config FILE        load a saved configuration first
 *     --save-config FILE   write the assembled configuration
 *
 * Example:
 *   design_space_explorer --policy writeonly --l2-org physical \
 *       --concurrency
 *
 * Demonstrates: assembling a SystemConfig by hand, validation
 * errors, and the full SimResult surface.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "core/config.hh"
#include "core/config_io.hh"
#include "core/simulator.hh"
#include "util/logging.hh"

namespace
{

using namespace gaas;

[[noreturn]] void
usage(const char *msg)
{
    std::cerr << "design_space_explorer: " << msg
              << " (see the file comment for options)\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    Count instructions = 1'000'000;
    unsigned mp = 8;
    auto cfg = core::baseline();
    cfg.name = "explorer";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(("missing value for " + arg).c_str());
            return argv[i];
        };
        if (arg == "--config") {
            cfg = core::loadConfigFile(next());
        } else if (arg == "--save-config") {
            core::saveConfigFile(cfg, next());
            std::cout << "config saved\n";
        } else if (arg == "--instructions") {
            instructions = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--mp") {
            mp = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--policy") {
            const std::string p = next();
            if (p == "writeback")
                cfg.writePolicy = core::WritePolicy::WriteBack;
            else if (p == "invalidate")
                cfg.writePolicy =
                    core::WritePolicy::WriteMissInvalidate;
            else if (p == "writeonly")
                cfg.writePolicy = core::WritePolicy::WriteOnly;
            else if (p == "subblock")
                cfg.writePolicy =
                    core::WritePolicy::SubblockPlacement;
            else
                usage("unknown policy");
            cfg.applyPolicyDefaults();
        } else if (arg == "--l1") {
            const auto words =
                std::strtoull(next().c_str(), nullptr, 10);
            cfg.l1i.sizeWords = cfg.l1d.sizeWords = words;
        } else if (arg == "--line") {
            const auto words = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
            cfg.l1i.lineWords = cfg.l1i.fetchWords = words;
            cfg.l1d.lineWords = cfg.l1d.fetchWords = words;
        } else if (arg == "--l2") {
            cfg.l2.cache.sizeWords =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--l2-assoc") {
            cfg.l2.cache.assoc = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--l2-access") {
            cfg.l2.accessTime =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--l2-org") {
            const std::string org = next();
            if (org == "unified")
                cfg.l2Org = core::L2Org::Unified;
            else if (org == "logical")
                cfg.l2Org = core::L2Org::LogicalSplit;
            else if (org == "physical") {
                // Adopt the paper's physical partitioning.
                const auto split = core::afterSplitL2();
                cfg.l2Org = split.l2Org;
                cfg.l2i = split.l2i;
                cfg.l2d = split.l2d;
            } else {
                usage("unknown L2 organisation");
            }
        } else if (arg == "--concurrency") {
            if (!cfg.l2IsSplit() ||
                cfg.writePolicy != core::WritePolicy::WriteOnly) {
                usage("--concurrency needs --l2-org "
                      "logical/physical and --policy writeonly");
            }
            cfg.concurrentIRefill = true;
            cfg.loadBypass = core::LoadBypass::DirtyBit;
            cfg.l2DirtyBuffer = true;
        } else {
            usage(("unknown option " + arg).c_str());
        }
    }

    try {
        cfg.validate();
        std::cout << cfg.describe() << "\n\n";
        const auto res = core::runStandard(cfg, instructions, mp,
                                           instructions / 2);
        std::cout << res.formatBreakdown() << '\n'
                  << "L1-I miss ratio: " << res.sys.l1iMissRatio()
                  << "\nL1-D read miss ratio: "
                  << res.sys.l1dReadMissRatio()
                  << "\nL2 miss ratio: " << res.sys.l2MissRatio()
                  << "\ncontext switches: " << res.contextSwitches
                  << " (" << res.syscallSwitches << " via syscall)\n";
    } catch (const gaas::FatalError &err) {
        std::cerr << err.what() << '\n';
        return 1;
    }
    return 0;
}
