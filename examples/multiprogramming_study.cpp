/**
 * @file
 * Example: how multiprogramming level and scheduling quantum shape
 * cache behaviour (the Section 3 methodology study).
 *
 * Usage: multiprogramming_study [instructions]
 *
 * Demonstrates: building workloads at different multiprogramming
 * levels, overriding the time slice, and reading per-cache miss
 * ratios and context-switch statistics from SimResult.
 */

#include <cstdlib>
#include <iostream>

#include "core/config.hh"
#include "core/simulator.hh"
#include "stats/table.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;

    Count instructions = 1'000'000;
    if (argc > 1)
        instructions = std::strtoull(argv[1], nullptr, 10);

    try {
        {
            stats::Table t({"MP level", "CPI", "L2 miss ratio",
                            "ctx switches", "syscall switches"});
            // A 50k-cycle slice lets a modest instruction budget
            // cover many full rotations of the round robin; with
            // the paper's 500k slice this sweep needs tens of
            // millions of instructions to be meaningful.
            t.setTitle("Multiprogramming level (50k-cycle slice)");
            for (unsigned mp : {1u, 2u, 4u, 8u, 16u}) {
                auto cfg = core::baseline();
                cfg.timeSliceCycles = 50'000;
                const auto res = core::runStandard(
                    cfg, instructions, mp,
                    instructions / 2);
                t.newRow()
                    .cell(static_cast<std::uint64_t>(mp))
                    .cell(res.cpi(), 4)
                    .cell(res.sys.l2MissRatio(), 4)
                    .cell(res.contextSwitches)
                    .cell(res.syscallSwitches);
            }
            t.print(std::cout);
            std::cout << '\n';
        }
        {
            stats::Table t({"slice (cycles)", "CPI",
                            "avg cycles/switch"});
            t.setTitle("Scheduling quantum at MP=8 "
                       "(the paper picks 500k)");
            for (Cycles slice : {20'000u, 100'000u, 500'000u,
                                 2'000'000u}) {
                auto cfg = core::baseline();
                cfg.timeSliceCycles = slice;
                const auto res = core::runStandard(
                    cfg, instructions, 8, instructions / 2);
                t.newRow()
                    .cell(static_cast<std::uint64_t>(slice))
                    .cell(res.cpi(), 4)
                    .cell(res.contextSwitches
                              ? res.cycles / res.contextSwitches
                              : 0);
            }
            t.print(std::cout);
        }
        std::cout << "\nTwo effects to look for: CPI is nearly flat "
                     "in the multiprogramming level (PID-tagged "
                     "caches and TLBs are never flushed), and short "
                     "slices hurt because lines fetched during a "
                     "quantum are evicted before the process runs "
                     "again.\n";
    } catch (const FatalError &err) {
        std::cerr << err.what() << '\n';
        return 1;
    }
    return 0;
}
