/**
 * @file
 * Quickstart: simulate the paper's base architecture and its
 * optimized architecture on the standard multiprogramming workload
 * and print the CPI breakdowns side by side.
 *
 * Usage: quickstart [instructions]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/config.hh"
#include "core/simulator.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;

    Count instructions = 2'000'000;
    if (argc > 1)
        instructions = std::strtoull(argv[1], nullptr, 10);

    try {
        // The Section 2 base architecture: split 4KW L1, write-back,
        // unified 256KW L2.
        const core::SystemConfig base = core::baseline();
        std::cout << base.describe() << "\n\n";
        const core::SimResult base_res =
            core::runStandard(base, instructions);
        std::cout << base_res.formatBreakdown() << '\n';

        // The Fig. 11 optimized architecture: write-only policy,
        // physically split L2, 8W fetch, concurrency features.
        const core::SystemConfig opt = core::optimized();
        std::cout << opt.describe() << "\n\n";
        const core::SimResult opt_res =
            core::runStandard(opt, instructions);
        std::cout << opt_res.formatBreakdown() << '\n';

        const double mem_gain =
            1.0 - opt_res.memCpi() / base_res.memCpi();
        const double total_gain =
            1.0 - opt_res.cpi() / base_res.cpi();
        std::cout << "memory-system improvement: "
                  << static_cast<int>(mem_gain * 100 + 0.5)
                  << "%  (paper: 54.5%)\n"
                  << "total improvement:         "
                  << static_cast<int>(total_gain * 100 + 0.5)
                  << "%  (paper: 13.7%)\n";
    } catch (const FatalError &err) {
        std::cerr << err.what() << '\n';
        return 1;
    }
    return 0;
}
