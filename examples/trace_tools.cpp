/**
 * @file
 * Example: the trace substrate as a standalone tool -- generate
 * pixie-style binary traces from the synthetic suite and inspect
 * them.
 *
 * Usage:
 *   trace_tools gen <benchmark> <file> [instructions]
 *   trace_tools info <file>
 *   trace_tools sim <file> [instructions]
 *
 * Demonstrates: SyntheticBenchmark -> TraceFileWriter,
 * TraceFileReader -> MixSource, and driving the simulator from a
 * trace file instead of the built-in generator (the route you would
 * take with real externally captured traces).
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/config.hh"
#include "core/simulator.hh"
#include "synth/suite.hh"
#include "trace/compose.hh"
#include "trace/file.hh"
#include "util/logging.hh"

namespace
{

using namespace gaas;

int
generate(const std::string &name, const std::string &path,
         Count instructions)
{
    for (const auto &spec : synth::defaultSuite()) {
        if (spec.name != name)
            continue;
        auto scaled = spec;
        if (instructions)
            scaled.simInstructions = instructions;
        trace::TraceFileWriter writer(path);
        auto bench = synth::makeBenchmark(scaled);
        const auto n = writer.writeAll(*bench);
        writer.close();
        std::cout << "wrote " << n << " records ("
                  << n * trace::kTraceRecordBytes / 1024
                  << " KiB) for " << name << " to " << path << '\n';
        return 0;
    }
    std::cerr << "unknown benchmark '" << name << "'; choose from:";
    for (const auto &spec : synth::defaultSuite())
        std::cerr << ' ' << spec.name;
    std::cerr << '\n';
    return 1;
}

int
info(const std::string &path)
{
    trace::MixSource mix(
        std::make_unique<trace::TraceFileReader>(path));
    trace::MemRef ref;
    while (mix.next(ref)) {
    }
    const auto &m = mix.mix();
    std::cout << path << ":\n"
              << "  instructions: " << m.instructions << '\n'
              << "  loads:        " << m.loads << " ("
              << 100.0 * m.loadFraction() << "% of inst)\n"
              << "  stores:       " << m.stores << " ("
              << 100.0 * m.storeFraction() << "% of inst)\n"
              << "  syscalls:     " << m.syscalls << '\n'
              << "  partial-word stores: " << m.partialWordStores
              << '\n';
    return 0;
}

int
simulate(const std::string &path, Count instructions)
{
    core::Workload wl;
    wl.add(std::make_unique<trace::TraceFileReader>(path), 1.238,
           path);
    core::Simulator sim(core::baseline(), std::move(wl));
    const auto res = sim.run(instructions ? instructions
                                          : ~Count{0} >> 1);
    std::cout << res.formatBreakdown();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::cerr << "usage: trace_tools gen <benchmark> <file> "
                     "[instructions] | info <file> | sim <file> "
                     "[instructions]\n";
        return 1;
    }
    const std::string mode = argv[1];
    try {
        if (mode == "gen" && argc >= 4) {
            return generate(argv[2], argv[3],
                            argc > 4 ? std::strtoull(argv[4], nullptr,
                                                     10)
                                     : 0);
        }
        if (mode == "info")
            return info(argv[2]);
        if (mode == "sim") {
            return simulate(argv[2],
                            argc > 3 ? std::strtoull(argv[3], nullptr,
                                                     10)
                                     : 0);
        }
    } catch (const gaas::FatalError &err) {
        std::cerr << err.what() << '\n';
        return 1;
    }
    std::cerr << "bad arguments\n";
    return 1;
}
