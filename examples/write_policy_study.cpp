/**
 * @file
 * Example: explore the write-policy trade-off (the Section 6 study)
 * on your own grid of L2 access times.
 *
 * Usage: write_policy_study [instructions] [access times...]
 *   e.g. write_policy_study 2000000 3 5 7 9 11
 *
 * Demonstrates: building configurations with withWritePolicy(),
 * sweeping a parameter, and reading the CPI breakdown to see *where*
 * each policy loses cycles (write hits vs write-buffer waits).
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "stats/table.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace gaas;

    Count instructions = 1'000'000;
    std::vector<Cycles> access_times = {2, 4, 6, 8, 10};
    if (argc > 1)
        instructions = std::strtoull(argv[1], nullptr, 10);
    if (argc > 2) {
        access_times.clear();
        for (int i = 2; i < argc; ++i)
            access_times.push_back(std::strtoull(argv[i], nullptr,
                                                 10));
    }

    const core::WritePolicy policies[] = {
        core::WritePolicy::WriteBack,
        core::WritePolicy::WriteMissInvalidate,
        core::WritePolicy::WriteOnly,
        core::WritePolicy::SubblockPlacement,
    };

    try {
        stats::Table t({"policy", "L2 access", "CPI", "write CPI",
                        "WB-wait CPI", "write miss ratio"});
        t.setTitle("Write-policy study (base architecture, MP=8)");

        for (const Cycles access : access_times) {
            for (const auto policy : policies) {
                auto cfg = core::withWritePolicy(core::baseline(),
                                                 policy);
                cfg.l2.accessTime = access;
                const auto res = core::runStandard(
                    cfg, instructions, 8, instructions / 2);
                t.newRow()
                    .cell(core::writePolicyName(policy))
                    .cell(static_cast<std::uint64_t>(access))
                    .cell(res.cpi(), 4)
                    .cell(res.perInstruction(res.comp.l1Writes), 4)
                    .cell(res.perInstruction(res.comp.wbWait), 4)
                    .cell(res.sys.l1dWriteMissRatio(), 4);
            }
        }
        t.print(std::cout);

        std::cout << "\nReading the table: the write-back policy "
                     "pays a constant 'write CPI' for its 2-cycle "
                     "hits, while the write-through policies pay "
                     "growing 'WB-wait CPI' as L2 slows -- the "
                     "trade-off crosses near 8 cycles (Fig. 5).\n";
    } catch (const FatalError &err) {
        std::cerr << err.what() << '\n';
        return 1;
    }
    return 0;
}
