#include "config.hh"

#include <sstream>

#include "util/bitops.hh"
#include "util/error.hh"

namespace gaas::cache
{

void
CacheConfig::validate(const char *what) const
{
    if (!isPowerOf2(sizeWords))
        gaas_error(ErrorCode::Config, what, ": size (", sizeWords,
                   "W) must be a power of two");
    if (!isPowerOf2(lineWords))
        gaas_error(ErrorCode::Config, what, ": line size (", lineWords,
                   "W) must be a power of two");
    if (lineWords > 32)
        gaas_error(ErrorCode::Config, what, ": line size (", lineWords,
                   "W) exceeds the 32W subblock-mask limit");
    if (fetchWords != lineWords) {
        gaas_error(ErrorCode::Config, what, ": fetch size (", fetchWords,
                   "W) must equal line size (", lineWords,
                   "W) in this design study");
    }
    if (assoc == 0)
        gaas_error(ErrorCode::Config, what, ": associativity must be nonzero");
    if (sizeWords < static_cast<std::uint64_t>(lineWords) * assoc)
        gaas_error(ErrorCode::Config, what, ": size too small for one set");
    if (lines() % assoc != 0)
        gaas_error(ErrorCode::Config, what,
                   ": lines not divisible by associativity");
    if (!isPowerOf2(sets()))
        gaas_error(ErrorCode::Config, what,
                   ": set count must be a power of two");
}

std::string
CacheConfig::describe() const
{
    std::ostringstream os;
    if (sizeWords % 1024 == 0)
        os << sizeWords / 1024 << "KW";
    else
        os << sizeWords << "W";
    os << ' ' << assoc << "-way " << lineWords << "W lines";
    return os.str();
}

CacheConfig
directMapped(std::uint64_t size_words, unsigned line_words)
{
    return CacheConfig{size_words, 1, line_words, line_words};
}

CacheConfig
setAssoc(std::uint64_t size_words, unsigned assoc,
         unsigned line_words)
{
    return CacheConfig{size_words, assoc, line_words, line_words};
}

} // namespace gaas::cache
