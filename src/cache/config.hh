/**
 * @file
 * Geometry of a single cache (size, associativity, line/fetch size).
 *
 * Capacities are in 32-bit words to mirror the paper's units (a 4KW
 * cache is 16KB).
 */

#ifndef GAAS_CACHE_CONFIG_HH
#define GAAS_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace gaas::cache
{

/** Geometry of one cache array. */
struct CacheConfig
{
    /** Total capacity in words. */
    std::uint64_t sizeWords = 4 * 1024;

    /** Set associativity (1 = direct mapped). */
    unsigned assoc = 1;

    /** Line size in words. */
    unsigned lineWords = 4;

    /**
     * Fetch size in words.  In this design study the fetch size and
     * line size grow together (Section 8), so fetchWords must equal
     * lineWords; the field exists so configurations read like the
     * paper.
     */
    unsigned fetchWords = 4;

    /** @name Derived geometry */
    ///@{
    std::uint64_t lines() const { return sizeWords / lineWords; }
    std::uint64_t sets() const { return lines() / assoc; }
    unsigned lineBytes() const { return lineWords * kWordBytes; }
    std::uint64_t sizeBytes() const { return sizeWords * kWordBytes; }
    ///@}

    /** Throws FatalError if the geometry is inconsistent. */
    void validate(const char *what) const;

    /** e.g. "4KW 1-way 4W lines". */
    std::string describe() const;

    bool operator==(const CacheConfig &) const = default;
};

/** Convenience factory: @p size_words direct-mapped, 4W lines. */
CacheConfig directMapped(std::uint64_t size_words,
                         unsigned line_words = 4);

/** Convenience factory: @p size_words @p assoc-way, @p line_words. */
CacheConfig setAssoc(std::uint64_t size_words, unsigned assoc,
                     unsigned line_words = 4);

} // namespace gaas::cache

#endif // GAAS_CACHE_CONFIG_HH
