#include "tag_store.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::cache
{

TagStore::TagStore(const CacheConfig &config, const char *what)
    : cfg(config)
{
    cfg.validate(what);
    lineShift = floorLog2(cfg.lineBytes());
    lineMask = mask(lineShift);
    indexBits = floorLog2(cfg.sets());
    directMapped = cfg.assoc == 1;
    fullValidMask = static_cast<std::uint32_t>(mask(cfg.lineWords));
    lines.assign(cfg.sets() * cfg.assoc, LineState{});
}

std::uint64_t
TagStore::setIndex(Addr addr) const
{
    return bits(addr, lineShift, indexBits);
}

std::uint64_t
TagStore::tagOf(Addr addr) const
{
    return addr >> (lineShift + indexBits);
}

unsigned
TagStore::wordInLine(Addr addr) const
{
    return static_cast<unsigned>(bits(addr, kWordShift,
                                      lineShift - kWordShift));
}

LineState *
TagStore::setBase(std::uint64_t set)
{
    return &lines[set * cfg.assoc];
}

LineState *
TagStore::find(Addr addr)
{
    const std::uint64_t tag = tagOf(addr);
    LineState *base = setBase(setIndex(addr));
    if (directMapped)
        return (base->valid && base->tag == tag) ? base : nullptr;
    for (unsigned way = 0; way < cfg.assoc; ++way) {
        LineState &line = base[way];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const LineState *
TagStore::find(Addr addr) const
{
    return const_cast<TagStore *>(this)->find(addr);
}

LineState &
TagStore::victim(Addr addr)
{
    LineState *base = setBase(setIndex(addr));
    if (directMapped)
        return *base;
    LineState *victim = base;
    for (unsigned way = 0; way < cfg.assoc; ++way) {
        LineState &line = base[way];
        if (!line.valid)
            return line;
        if (line.lru < victim->lru)
            victim = &line;
    }
    return *victim;
}

LineState &
TagStore::allocate(Addr addr, Eviction &evicted)
{
    LineState &line = victim(addr);

    evicted = Eviction{};
    if (line.valid) {
        evicted.valid = true;
        evicted.dirty = line.dirty;
        evicted.lineAddr =
            (line.tag << (lineShift + indexBits)) |
            (setIndex(addr) << lineShift);
    }

    line.tag = tagOf(addr);
    line.valid = true;
    line.dirty = false;
    line.writeOnly = false;
    line.validMask = fullValidMask;
    touch(line);
    return line;
}

void
TagStore::invalidateAll()
{
    for (auto &line : lines)
        line = LineState{};
}

std::uint64_t
TagStore::validCount() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines)
        n += line.valid ? 1 : 0;
    return n;
}

std::uint64_t
TagStore::dirtyCount() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines)
        n += (line.valid && line.dirty) ? 1 : 0;
    return n;
}

} // namespace gaas::cache
