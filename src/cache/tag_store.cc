#include "tag_store.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::cache
{

TagStore::TagStore(const CacheConfig &config, const char *what)
    : cfg(config)
{
    cfg.validate(what);
    lineShift = floorLog2(cfg.lineBytes());
    lineMask = mask(lineShift);
    indexBits = floorLog2(cfg.sets());
    indexMask = mask(indexBits);
    assocWays = cfg.assoc;
    directMapped = cfg.assoc == 1;
    fullValidMask = static_cast<std::uint32_t>(mask(cfg.lineWords));

    const std::size_t n = cfg.sets() * cfg.assoc;
    tagArr.assign(n, kInvalidTag);
    stateArr.assign(n, 0);
    maskArr.assign(n, 0);
    lruArr.assign(n, 0);
}

TagStore::LineIndex
TagStore::allocateIdx(Addr addr, Eviction &evicted)
{
    const LineIndex idx = victimIdx(addr);

    evicted = Eviction{};
    if (stateArr[idx] & kValidBit) {
        evicted.valid = true;
        evicted.dirty = (stateArr[idx] & kDirtyBit) != 0;
        evicted.lineAddr =
            (tagArr[idx] << (lineShift + indexBits)) |
            (setIndex(addr) << lineShift);
    }

    const std::uint64_t tag = tagOf(addr);
    if (tag == kInvalidTag)
        gaas_fatal("address 0x", addr,
                   " maps to the reserved invalid tag word");
    tagArr[idx] = tag;
    stateArr[idx] = kValidBit;
    maskArr[idx] = fullValidMask;
    touchIdx(idx);
    return idx;
}

void
TagStore::invalidateAll()
{
    for (LineIndex idx = 0; idx < tagArr.size(); ++idx) {
        invalidateAt(idx);
        maskArr[idx] = 0;
        lruArr[idx] = 0;
    }
}

std::uint64_t
TagStore::validCount() const
{
    std::uint64_t n = 0;
    for (const std::uint8_t s : stateArr)
        n += s & kValidBit;
    return n;
}

std::uint64_t
TagStore::dirtyCount() const
{
    std::uint64_t n = 0;
    for (const std::uint8_t s : stateArr)
        n += (s & (kValidBit | kDirtyBit)) ==
                     (kValidBit | kDirtyBit)
                 ? 1
                 : 0;
    return n;
}

} // namespace gaas::cache
