/**
 * @file
 * Tag/state array of one cache.
 *
 * TagStore holds per-line state -- tag, valid, dirty, the write-only
 * mark of the paper's new write policy, and the per-word valid mask
 * of subblock placement -- and implements lookup, LRU victim
 * selection, and replacement.  It knows nothing about timing; the
 * core::CacheSystem charges cycles.
 *
 * Layout: struct-of-arrays.  One simulated reference probes exactly
 * one set, so the hot data is what a probe touches: the packed tag
 * words of the set.  They live in their own 64-byte-aligned array
 * (a whole set's tags share one host cache line for every geometry
 * the study uses), with the valid/dirty/writeOnly state byte, the
 * subblock valid mask and the LRU stamp in separate parallel arrays
 * that only the rarer state-changing operations touch.  Invalid
 * lines hold the reserved tag word kInvalidTag, so the way-compare
 * loop is a single integer compare per way -- no state byte load on
 * the hit path -- and vectorizes cleanly.
 */

#ifndef GAAS_CACHE_TAG_STORE_HH
#define GAAS_CACHE_TAG_STORE_HH

#include <cstdint>
#include <vector>

#include "cache/config.hh"
#include "util/aligned.hh"
#include "util/types.hh"

namespace gaas::cache
{

/** Result of a replacement: what was evicted, if anything. */
struct Eviction
{
    bool valid = false;    //!< a valid line was displaced
    bool dirty = false;    //!< ... and it was dirty
    Addr lineAddr = 0;     //!< its byte address
};

/** The tag/state array; see file comment. */
class TagStore
{
  public:
    /** Index of one line in the struct-of-arrays storage
     *  (set * assoc + way). */
    using LineIndex = std::uint64_t;

    /** lookup() result for a tag miss. */
    static constexpr LineIndex npos = ~LineIndex{0};

    /** @name Bits of the per-line state byte */
    ///@{
    static constexpr std::uint8_t kValidBit = 1u << 0;
    static constexpr std::uint8_t kDirtyBit = 1u << 1;
    /** The write-only mark of the paper's new policy (Section 6):
     *  reads that map to a write-only line miss. */
    static constexpr std::uint8_t kWriteOnlyBit = 1u << 2;
    ///@}

    /**
     * Nullable handle to one line of the store: the replacement for
     * the pointer-to-struct the array-of-structs layout used to hand
     * out.  A default-constructed Ref is "no line" (a tag miss); a
     * non-null Ref can still refer to an *invalid* line (victim() on
     * an empty set), exactly like the old pointer could.
     */
    class Ref
    {
      public:
        Ref() = default;

        explicit operator bool() const { return store != nullptr; }

        bool
        operator==(const Ref &other) const
        {
            return store == other.store && idx == other.idx;
        }

        bool valid() const { return store->stateAt(idx) & kValidBit; }
        bool dirty() const { return store->stateAt(idx) & kDirtyBit; }

        bool
        writeOnly() const
        {
            return store->stateAt(idx) & kWriteOnlyBit;
        }

        std::uint32_t validMask() const { return store->maskAt(idx); }
        std::uint64_t tag() const { return store->tagAt(idx); }

        void setDirty(bool d) { store->setDirtyAt(idx, d); }
        void setWriteOnly(bool w) { store->setWriteOnlyAt(idx, w); }
        void setValidMask(std::uint32_t m) { store->setMaskAt(idx, m); }
        void orValidMask(std::uint32_t m) { store->orMaskAt(idx, m); }

        /** Drop the line (restores the invalid-tag sentinel). */
        void invalidate() { store->invalidateAt(idx); }

        LineIndex index() const { return idx; }

      private:
        friend class TagStore;
        Ref(TagStore *s, LineIndex i) : store(s), idx(i) {}

        TagStore *store = nullptr;
        LineIndex idx = 0;
    };

    /** @param config validated geometry
     *  @param what   name used in diagnostics ("L1-I", ...) */
    TagStore(const CacheConfig &config, const char *what);

    /** @name Address dissection */
    ///@{
    Addr lineAddr(Addr addr) const { return addr & ~lineMask; }

    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr >> lineShift) & indexMask;
    }

    std::uint64_t
    tagOf(Addr addr) const
    {
        return addr >> (lineShift + indexBits);
    }

    unsigned
    wordInLine(Addr addr) const
    {
        return static_cast<unsigned>((addr >> kWordShift) &
                                     (cfg.lineWords - 1));
    }
    ///@}

    /** Bit in the subblock valid mask covering @p addr's word. */
    std::uint32_t
    wordBit(Addr addr) const
    {
        return std::uint32_t{1} << wordInLine(addr);
    }

    /** Mask with one bit per word of a (fully valid) line. */
    std::uint32_t fullMask() const { return fullValidMask; }

    /**
     * @name Index-level hot kernels
     * The specialized simulate loops work on raw line indices; the
     * Ref API below wraps these for everything else.  A hit is any
     * valid line with a matching tag, regardless of the write-only
     * mark or the subblock mask -- the policy layer decides whether
     * that counts as usable.
     */
    ///@{

    /** Direct-mapped probe: the caller promises assoc == 1. */
    LineIndex
    lookupDm(Addr addr) const
    {
        const LineIndex idx = setIndex(addr);
        return tagArr[idx] == tagOf(addr) ? idx : npos;
    }

    /** Set-associative probe (any assoc; way loop vectorizes). */
    LineIndex
    lookupAssoc(Addr addr) const
    {
        const std::uint64_t tag = tagOf(addr);
        const LineIndex base = setIndex(addr) * assocWays;
        for (unsigned way = 0; way < assocWays; ++way) {
            if (tagArr[base + way] == tag)
                return base + way;
        }
        return npos;
    }

    /** Generic probe: branches on the geometry at runtime. */
    LineIndex
    lookup(Addr addr) const
    {
        return directMapped ? lookupDm(addr) : lookupAssoc(addr);
    }

    /** Mark line @p idx most recently used.  A direct-mapped store
     *  skips the stamp entirely: victim selection never consults
     *  LRU when there is only one way, so the clock is pure dead
     *  work there (and this is the hot path's most-executed
     *  write). */
    void
    touchIdx(LineIndex idx)
    {
        if (!directMapped)
            lruArr[idx] = ++lruClock;
    }

    /**
     * The line that allocate() would displace for @p addr (invalid
     * way if any, else LRU).  Used by the dirty-bit load-bypass
     * scheme, which must inspect the victim before fetching.
     */
    LineIndex
    victimIdx(Addr addr)
    {
        const LineIndex base = setIndex(addr) * assocWays;
        if (directMapped)
            return base;
        LineIndex victim = base;
        for (unsigned way = 0; way < assocWays; ++way) {
            const LineIndex idx = base + way;
            if (!(stateArr[idx] & kValidBit))
                return idx;
            if (lruArr[idx] < lruArr[victim])
                victim = idx;
        }
        return victim;
    }

    /**
     * Replace the victim with a line for @p addr.
     *
     * The new line is valid, clean, not write-only, fully valid, and
     * most recently used; callers adjust state for their policy.
     *
     * @param addr     address being allocated
     * @param evicted  filled with what was displaced
     * @return the new line's index
     */
    LineIndex allocateIdx(Addr addr, Eviction &evicted);

    /** Prefetch the tag words (and state bytes) of @p addr's set
     *  into the host cache; used by the batched simulate loop. */
    void
    prefetchSet(Addr addr) const
    {
        const LineIndex base = setIndex(addr) * assocWays;
        __builtin_prefetch(&tagArr[base]);
        __builtin_prefetch(&stateArr[base]);
    }

    /** @name Per-index state accessors (Ref's backing store) */
    ///@{
    std::uint8_t stateAt(LineIndex idx) const { return stateArr[idx]; }
    std::uint64_t tagAt(LineIndex idx) const { return tagArr[idx]; }
    std::uint32_t maskAt(LineIndex idx) const { return maskArr[idx]; }

    void
    setDirtyAt(LineIndex idx, bool d)
    {
        if (d)
            stateArr[idx] |= kDirtyBit;
        else
            stateArr[idx] &= static_cast<std::uint8_t>(~kDirtyBit);
    }

    void
    setWriteOnlyAt(LineIndex idx, bool w)
    {
        if (w)
            stateArr[idx] |= kWriteOnlyBit;
        else
            stateArr[idx] &=
                static_cast<std::uint8_t>(~kWriteOnlyBit);
    }

    void setMaskAt(LineIndex idx, std::uint32_t m) { maskArr[idx] = m; }
    void orMaskAt(LineIndex idx, std::uint32_t m) { maskArr[idx] |= m; }

    void
    invalidateAt(LineIndex idx)
    {
        stateArr[idx] = 0;
        tagArr[idx] = kInvalidTag;
    }
    ///@}

    /** @name Ref-handle API (tests, slow paths, diagnostics) */
    ///@{

    /** Tag-match probe; @return a null Ref on a tag miss. */
    Ref
    find(Addr addr)
    {
        const LineIndex idx = lookup(addr);
        return idx == npos ? Ref{} : Ref{this, idx};
    }

    /** Mark @p line most recently used. */
    void touch(const Ref &line) { touchIdx(line.idx); }

    /** victimIdx() as a Ref (never null; may be an invalid line). */
    Ref victim(Addr addr) { return Ref{this, victimIdx(addr)}; }

    /** allocateIdx() as a Ref (never null). */
    Ref
    allocate(Addr addr, Eviction &evicted)
    {
        return Ref{this, allocateIdx(addr, evicted)};
    }
    ///@}

    /** Invalidate every line. */
    void invalidateAll();

    /** Number of valid lines (test/diagnostic helper). */
    std::uint64_t validCount() const;

    /** Number of valid dirty lines (test/diagnostic helper). */
    std::uint64_t dirtyCount() const;

    const CacheConfig &config() const { return cfg; }

  private:
    /**
     * Tag word stored for invalid lines.  tagOf() of a real address
     * can only produce this value for addresses within a line of
     * 2^64, far above the 40-bit PID-prefixed virtual and
     * demand-allocated physical spaces the simulator generates;
     * allocateIdx() rejects it defensively.
     */
    static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

    CacheConfig cfg;
    Addr lineMask;
    std::uint64_t indexMask;
    unsigned lineShift;
    unsigned indexBits;
    unsigned assocWays;
    /** assoc == 1: lookup()/victimIdx() skip the way loop entirely
     *  (the paper's most-simulated organisation). */
    bool directMapped;
    std::uint32_t fullValidMask;

    /** @name Struct-of-arrays line state, set-major (sets * assoc) */
    ///@{
    /** Packed tag words, 64-byte aligned; kInvalidTag when invalid. */
    std::vector<std::uint64_t, util::AlignedAllocator<std::uint64_t>>
        tagArr;
    /** kValidBit | kDirtyBit | kWriteOnlyBit per line. */
    std::vector<std::uint8_t> stateArr;
    /** Per-word valid bits for subblock placement; bit i covers word
     *  i of the line.  Fully-valid lines have all line-word bits
     *  set. */
    std::vector<std::uint32_t> maskArr;
    /** LRU stamps (line has been used at stamp N of lruClock). */
    std::vector<std::uint64_t> lruArr;
    ///@}

    std::uint64_t lruClock = 0;
};

} // namespace gaas::cache

#endif // GAAS_CACHE_TAG_STORE_HH
