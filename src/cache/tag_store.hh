/**
 * @file
 * Tag/state array of one cache.
 *
 * TagStore holds per-line state -- tag, valid, dirty, the write-only
 * mark of the paper's new write policy, and the per-word valid mask
 * of subblock placement -- and implements lookup, LRU victim
 * selection, and replacement.  It knows nothing about timing; the
 * core::CacheSystem charges cycles.
 */

#ifndef GAAS_CACHE_TAG_STORE_HH
#define GAAS_CACHE_TAG_STORE_HH

#include <cstdint>
#include <vector>

#include "cache/config.hh"
#include "util/types.hh"

namespace gaas::cache
{

/** State of one cache line. */
struct LineState
{
    std::uint64_t tag = 0;
    bool valid = false;

    /** Line has been written since allocation (write-back data, or
     *  the extra dirty bit Section 9 adds for the load-bypass
     *  scheme). */
    bool dirty = false;

    /** The write-only mark of the paper's new policy (Section 6):
     *  reads that map to a write-only line miss. */
    bool writeOnly = false;

    /** Per-word valid bits for subblock placement; bit i covers word
     *  i of the line.  Fully-valid lines have all line-word bits
     *  set. */
    std::uint32_t validMask = 0;

    std::uint64_t lru = 0;
};

/** Result of a replacement: what was evicted, if anything. */
struct Eviction
{
    bool valid = false;    //!< a valid line was displaced
    bool dirty = false;    //!< ... and it was dirty
    Addr lineAddr = 0;     //!< its byte address
};

/** The tag/state array; see file comment. */
class TagStore
{
  public:
    /** @param config validated geometry
     *  @param what   name used in diagnostics ("L1-I", ...) */
    TagStore(const CacheConfig &config, const char *what);

    /** @name Address dissection */
    ///@{
    Addr lineAddr(Addr addr) const { return addr & ~lineMask; }
    std::uint64_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    unsigned wordInLine(Addr addr) const;
    ///@}

    /** Bit in LineState::validMask covering @p addr's word. */
    std::uint32_t
    wordBit(Addr addr) const
    {
        return std::uint32_t{1} << wordInLine(addr);
    }

    /** Mask with one bit per word of a (fully valid) line. */
    std::uint32_t fullMask() const { return fullValidMask; }

    /**
     * Tag-match probe.  A hit is any valid line with a matching tag,
     * regardless of writeOnly/validMask -- the policy layer decides
     * whether that counts as usable.
     *
     * @return the line, or nullptr on a tag miss
     */
    LineState *find(Addr addr);
    const LineState *find(Addr addr) const;

    /** Mark @p line most recently used. */
    void touch(LineState &line) { line.lru = ++lruClock; }

    /**
     * The line that allocate() would displace for @p addr (invalid
     * way if any, else LRU).  Used by the dirty-bit load-bypass
     * scheme, which must inspect the victim before fetching.
     */
    LineState &victim(Addr addr);

    /**
     * Replace the victim with a line for @p addr.
     *
     * The new line is valid, clean, not write-only, fully valid, and
     * most recently used; callers adjust state for their policy.
     *
     * @param addr     address being allocated
     * @param evicted  filled with what was displaced
     * @return the new line
     */
    LineState &allocate(Addr addr, Eviction &evicted);

    /** Invalidate every line. */
    void invalidateAll();

    /** Number of valid lines (test/diagnostic helper). */
    std::uint64_t validCount() const;

    /** Number of valid dirty lines (test/diagnostic helper). */
    std::uint64_t dirtyCount() const;

    const CacheConfig &config() const { return cfg; }

  private:
    LineState *setBase(std::uint64_t set);

    CacheConfig cfg;
    Addr lineMask;
    unsigned lineShift;
    unsigned indexBits;
    /** assoc == 1: find()/victim() skip the way loop entirely (the
     *  paper's most-simulated organisation). */
    bool directMapped;
    std::uint32_t fullValidMask;
    std::vector<LineState> lines; //!< sets * assoc, set-major
    std::uint64_t lruClock = 0;
};

} // namespace gaas::cache

#endif // GAAS_CACHE_TAG_STORE_HH
