#include "cache_system.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::core
{

namespace
{

/** Build the write-buffer timing from the system config. */
mem::WriteBufferConfig
makeWbConfig(const SystemConfig &cfg)
{
    mem::WriteBufferConfig wb;
    wb.depth = cfg.wbDepth;
    wb.entryWords = cfg.wbEntryWords;
    // The buffer drains into the data side of L2 at its effective
    // access time.
    wb.drainCycles = cfg.l2DataSide().accessTime;
    // The stream overlap cannot exceed the drain time itself.
    wb.streamOverlap =
        std::min<Cycles>(cfg.wbStreamOverlap, wb.drainCycles - 1);
    return wb;
}

/** Build the memory config (the dirty buffer lives behind L2-D). */
mem::MainMemoryConfig
makeMemConfig(const SystemConfig &cfg)
{
    mem::MainMemoryConfig mc = cfg.memory;
    mc.dirtyBuffer = cfg.l2DirtyBuffer;
    return mc;
}

/** Halve a cache for the logical I/D split (high index bit). */
cache::CacheConfig
halfOf(const cache::CacheConfig &full)
{
    cache::CacheConfig half = full;
    half.sizeWords = full.sizeWords / 2;
    return half;
}

} // namespace

CacheSystem::CacheSystem(const SystemConfig &config)
    : cfg(config), mmuUnit((config.validate(), config.mmu)),
      l1i(config.l1i, "L1-I"), l1d(config.l1d, "L1-D"),
      wb(makeWbConfig(config)), memory(makeMemConfig(config))
{
    switch (cfg.l2Org) {
      case L2Org::Unified:
        l2u.emplace(cfg.l2.cache, "L2");
        break;
      case L2Org::LogicalSplit:
        // Splitting uses the high-order index bit to interleave the
        // instruction and data halves (Section 7): each half behaves
        // as an independent cache of half the capacity.
        l2is.emplace(halfOf(cfg.l2.cache), "L2-I(half)");
        l2ds.emplace(halfOf(cfg.l2.cache), "L2-D(half)");
        break;
      case L2Org::PhysicalSplit:
        l2is.emplace(cfg.l2i.cache, "L2-I");
        l2ds.emplace(cfg.l2d.cache, "L2-D");
        break;
    }
}

cache::TagStore &
CacheSystem::l2Store(bool is_inst)
{
    if (l2u)
        return *l2u;
    return is_inst ? *l2is : *l2ds;
}

const cache::TagStore &
CacheSystem::l2InstStore() const
{
    return l2u ? *l2u : *l2is;
}

const cache::TagStore &
CacheSystem::l2DataStore() const
{
    return l2u ? *l2u : *l2ds;
}

Cycles
CacheSystem::extraTransferCycles(unsigned fetch_words) const
{
    if (fetch_words <= 4)
        return 0;
    return divCeil(fetch_words - 4, cfg.transferWordsPerCycle);
}

CacheSystem::L2Result
CacheSystem::l2Access(bool is_inst, Addr paddr, Cycles now,
                      unsigned fetch_words)
{
    cache::TagStore &store = l2Store(is_inst);
    const L2SideConfig &side =
        is_inst ? cfg.l2InstSide() : cfg.l2DataSide();

    (is_inst ? st.l2iAccesses : st.l2dAccesses) += 1;

    L2Result res;
    res.access = side.accessTime + extraTransferCycles(fetch_words);

    if (cache::TagStore::Ref line = store.find(paddr)) {
        store.touch(line);
        return res;
    }

    (is_inst ? st.l2iMisses : st.l2dMisses) += 1;

    cache::Eviction evicted;
    store.allocate(paddr, evicted);
    const bool dirty_victim = evicted.valid && evicted.dirty;
    if (dirty_victim)
        ++st.l2DirtyMisses;

    res.memory = memory.fetchLine(now + res.access, dirty_victim);
    return res;
}

Cycles
CacheSystem::ifetchMiss(Cycles now, Cycles stall, Addr paddr)
{
    ++st.l1iMisses;

    // The base architecture makes both primary caches wait for the
    // write buffer to empty before processing a miss (Section 2).
    // With a split L2, the I-refill can proceed concurrently with
    // the drain into L2-D (Section 9).
    if (!cfg.concurrentIRefill) {
        const Cycles wait = wb.drainAll(now + stall);
        stall += wait;
        comp.wbWait += wait;
    }

    const L2Result r =
        l2Access(true, paddr, now + stall, cfg.l1i.fetchWords);
    stall += r.access + r.memory;
    comp.l1iMiss += r.access;
    comp.l2iMiss += r.memory;

    cache::Eviction evicted;
    l1i.allocate(paddr, evicted);
    return stall;
}

Cycles
CacheSystem::dataMissWriteBufferWait(Addr paddr, Cycles now)
{
    Cycles wait = 0;
    switch (cfg.loadBypass) {
      case LoadBypass::None:
        wait = wb.drainAll(now);
        break;
      case LoadBypass::Associative:
        wait = wb.drainLine(now, l1d.lineAddr(paddr),
                            cfg.l1d.lineBytes());
        break;
      case LoadBypass::DirtyBit: {
        // Only flush when the line being replaced is dirty; the
        // write-only policy guarantees every buffered write also
        // allocated (and dirtied) an L1-D line, so a clean victim
        // proves the buffer holds nothing this line needs
        // (Section 9).
        cache::TagStore::Ref line = l1d.find(paddr);
        const cache::TagStore::Ref victim =
            line ? line : l1d.victim(paddr);
        if (victim.valid() && victim.dirty())
            wait = wb.drainAll(now);
        else
            wb.noteBypass();
        break;
      }
    }
    comp.wbWait += wait;
    return wait;
}

cache::TagStore::Ref
CacheSystem::refillL1D(Addr paddr, Cycles now, Cycles &stall)
{
    // A read miss on a write-only (or partially valid) line with a
    // matching tag reallocates the same line in place.
    if (cache::TagStore::Ref line = l1d.find(paddr)) {
        line.setWriteOnly(false);
        line.setDirty(false);
        line.setValidMask(l1d.fullMask());
        l1d.touch(line);
        return line;
    }

    cache::Eviction evicted;
    cache::TagStore::Ref line = l1d.allocate(paddr, evicted);

    // Write-back: a displaced dirty line drains through the write
    // buffer as one full-line entry.
    if (cfg.writePolicy == WritePolicy::WriteBack && evicted.valid &&
        evicted.dirty) {
        const Cycles wait = wb.push(now + stall, evicted.lineAddr);
        stall += wait;
        comp.wbWait += wait;
        applyWriteToL2(evicted.lineAddr);
    }
    return line;
}

Cycles
CacheSystem::loadMiss(Cycles now, Cycles stall, Addr paddr,
                      cache::TagStore::LineIndex idx)
{
    if (idx != cache::TagStore::npos &&
        (l1d.stateAt(idx) & cache::TagStore::kWriteOnlyBit))
        ++st.writeOnlyReadMisses;
    ++st.l1dReadMisses;

    stall += dataMissWriteBufferWait(paddr, now + stall);

    const L2Result r =
        l2Access(false, paddr, now + stall, cfg.l1d.fetchWords);
    stall += r.access + r.memory;
    comp.l1dMiss += r.access;
    comp.l2dMiss += r.memory;

    refillL1D(paddr, now, stall);
    return stall;
}

void
CacheSystem::applyWriteToL2(Addr paddr)
{
    // State-only effect of a write-buffer entry reaching L2; the
    // *timing* of the drain is modelled by the write buffer itself.
    // L2 allocates on writes, so write-through traffic creates the
    // dirty L2-D lines whose replacement causes dirty misses.
    cache::TagStore &store = l2Store(false);
    if (cache::TagStore::Ref line = store.find(paddr)) {
        line.setDirty(true);
        store.touch(line);
        return;
    }
    ++st.l2WriteAllocates;
    cache::Eviction evicted;
    cache::TagStore::Ref line = store.allocate(paddr, evicted);
    line.setDirty(true);
    // A displaced dirty line is written back in the background; the
    // bus cost is folded into the effective drain time (DESIGN.md).
}

Cycles
CacheSystem::storeMissWriteBack(Cycles now, Cycles stall, Addr paddr)
{
    // Write-allocate: fetch the line like a read miss; the write
    // itself needs no extra cycle (Section 6).
    ++st.l1dWriteMisses;
    stall += dataMissWriteBufferWait(paddr, now + stall);
    const L2Result r =
        l2Access(false, paddr, now + stall, cfg.l1d.fetchWords);
    stall += r.access + r.memory;
    comp.l1dMiss += r.access;
    comp.l2dMiss += r.memory;
    cache::TagStore::Ref nl = refillL1D(paddr, now, stall);
    nl.setDirty(true);
    return stall;
}

Cycles
CacheSystem::storeMissInvalidate(Cycles stall, Addr paddr)
{
    ++st.l1dWriteMisses;
    // The data array was written while the tag mismatched; a second
    // cycle invalidates the corrupted line.  (Only meaningful for a
    // direct-mapped L1-D, where the way is implied; the design
    // study's L1-D is always direct mapped.)
    stall += 1;
    comp.l1Writes += 1;
    if (cfg.l1d.assoc == 1)
        l1d.victim(paddr).invalidate();
    return stall;
}

Cycles
CacheSystem::storeMissWriteOnly(Cycles stall, Addr paddr)
{
    ++st.l1dWriteMisses;
    // The second cycle updates the tag and marks the line
    // write-only; subsequent writes to it hit (Section 6).
    stall += 1;
    comp.l1Writes += 1;
    cache::Eviction evicted;
    cache::TagStore::Ref nl = l1d.allocate(paddr, evicted);
    nl.setWriteOnly(true);
    nl.setDirty(true);
    nl.setValidMask(0);
    return stall;
}

Cycles
CacheSystem::storeMissSubblock(Cycles stall, Addr paddr,
                               bool partial_word)
{
    ++st.l1dWriteMisses;
    // Second cycle: update the tag; only the written word (if a
    // full-word write) becomes valid.
    stall += 1;
    comp.l1Writes += 1;
    cache::Eviction evicted;
    cache::TagStore::Ref nl = l1d.allocate(paddr, evicted);
    nl.setDirty(true);
    nl.setValidMask(partial_word ? 0 : l1d.wordBit(paddr));
    return stall;
}

// Warm miss paths: state-only twins of the miss paths above.  They
// keep the same `now` plumbing so the write buffer's entry completion
// times and main memory's bus/dirty-buffer state evolve on the warm
// clock, but the stall cycles every call returns are discarded and no
// CPI bucket is charged.

void
CacheSystem::warmL2Touch(bool is_inst, Addr paddr, Cycles now)
{
    cache::TagStore &store = l2Store(is_inst);
    if (cache::TagStore::Ref line = store.find(paddr)) {
        store.touch(line);
        return;
    }
    cache::Eviction evicted;
    store.allocate(paddr, evicted);
    memory.fetchLine(now, evicted.valid && evicted.dirty);
}

void
CacheSystem::warmIfetchMiss(Cycles now, Addr paddr)
{
    if (!cfg.concurrentIRefill)
        wb.drainAll(now);
    warmL2Touch(true, paddr, now);
    cache::Eviction evicted;
    l1i.allocate(paddr, evicted);
}

void
CacheSystem::warmDataMissWbState(Addr paddr, Cycles now)
{
    switch (cfg.loadBypass) {
      case LoadBypass::None:
        wb.drainAll(now);
        break;
      case LoadBypass::Associative:
        wb.drainLine(now, l1d.lineAddr(paddr), cfg.l1d.lineBytes());
        break;
      case LoadBypass::DirtyBit: {
        cache::TagStore::Ref line = l1d.find(paddr);
        const cache::TagStore::Ref victim =
            line ? line : l1d.victim(paddr);
        if (victim.valid() && victim.dirty())
            wb.drainAll(now);
        break;
      }
    }
}

cache::TagStore::Ref
CacheSystem::warmRefillL1D(Addr paddr, Cycles now)
{
    if (cache::TagStore::Ref line = l1d.find(paddr)) {
        line.setWriteOnly(false);
        line.setDirty(false);
        line.setValidMask(l1d.fullMask());
        l1d.touch(line);
        return line;
    }
    cache::Eviction evicted;
    cache::TagStore::Ref line = l1d.allocate(paddr, evicted);
    if (cfg.writePolicy == WritePolicy::WriteBack && evicted.valid &&
        evicted.dirty) {
        wb.push(now, evicted.lineAddr);
        applyWriteToL2(evicted.lineAddr);
    }
    return line;
}

void
CacheSystem::warmLoadMiss(Cycles now, Addr paddr)
{
    warmDataMissWbState(paddr, now);
    warmL2Touch(false, paddr, now);
    warmRefillL1D(paddr, now);
}

void
CacheSystem::warmStoreMissWriteBack(Cycles now, Addr paddr)
{
    warmDataMissWbState(paddr, now);
    warmL2Touch(false, paddr, now);
    cache::TagStore::Ref nl = warmRefillL1D(paddr, now);
    nl.setDirty(true);
}

void
CacheSystem::warmStoreMissInvalidate(Addr paddr)
{
    if (cfg.l1d.assoc == 1)
        l1d.victim(paddr).invalidate();
}

void
CacheSystem::warmStoreMissWriteOnly(Addr paddr)
{
    cache::Eviction evicted;
    cache::TagStore::Ref nl = l1d.allocate(paddr, evicted);
    nl.setWriteOnly(true);
    nl.setDirty(true);
    nl.setValidMask(0);
}

void
CacheSystem::warmStoreMissSubblock(Addr paddr, bool partial_word)
{
    cache::Eviction evicted;
    cache::TagStore::Ref nl = l1d.allocate(paddr, evicted);
    nl.setDirty(true);
    nl.setValidMask(partial_word ? 0 : l1d.wordBit(paddr));
}

void
CacheSystem::resetStats()
{
    st = SysStats{};
    comp = CpiComponents{};
    wb.resetStats();
    memory.resetStats();
    mmuUnit.resetStats();
}

SysStats
CacheSystem::stats() const
{
    SysStats out = st;
    out.wb = wb.stats();
    out.memory = memory.stats();
    out.itlb = mmuUnit.itlbStats();
    out.dtlb = mmuUnit.dtlbStats();
    return out;
}

} // namespace gaas::core
