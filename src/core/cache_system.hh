/**
 * @file
 * The cycle-accounting two-level cache system: the reference
 * processor's memory side.
 *
 * CacheSystem ties together the L1 I/D tag stores, the secondary
 * cache (unified, logically split, or physically split), the write
 * buffer, the MMU, and main memory, and charges stall cycles
 * according to the timing rules of Sections 2 and 6-9 of the paper
 * (see DESIGN.md section 4 for the contract).
 *
 * Each of ifetch/load/store takes the current cycle and returns the
 * stall cycles the access adds beyond the instruction's base cost;
 * stalls are simultaneously attributed to the Fig. 4 CPI buckets.
 */

#ifndef GAAS_CORE_CACHE_SYSTEM_HH
#define GAAS_CORE_CACHE_SYSTEM_HH

#include <memory>
#include <optional>

#include "cache/tag_store.hh"
#include "core/config.hh"
#include "core/cpi.hh"
#include "mem/main_memory.hh"
#include "mem/write_buffer.hh"
#include "mmu/mmu.hh"

namespace gaas::core
{

/** The memory side of the machine; see file comment. */
class CacheSystem
{
  public:
    /** Validates @p config (throws FatalError if inconsistent). */
    explicit CacheSystem(const SystemConfig &config);

    /**
     * Fetch the instruction at @p vaddr for process @p pid.
     * @return stall cycles beyond the base instruction cost
     */
    Cycles ifetch(Cycles now, Pid pid, Addr vaddr);

    /** Execute a load; @return stall cycles. */
    Cycles load(Cycles now, Pid pid, Addr vaddr);

    /**
     * Execute a store.
     * @param partial_word the store writes less than a full word
     * @return stall cycles
     */
    Cycles store(Cycles now, Pid pid, Addr vaddr, bool partial_word);

    /** Event counters (TLB/WB/memory stats are folded in). */
    SysStats stats() const;

    /** Stall cycles by CPI bucket. */
    const CpiComponents &components() const { return comp; }

    /**
     * Zero every statistic while keeping all cache/TLB/write-buffer
     * state, so measurements can start from a warmed hierarchy (the
     * long-trace discipline of [BKW90] the paper follows).
     */
    void resetStats();

    const SystemConfig &config() const { return cfg; }

    /** @name Introspection for tests */
    ///@{
    const cache::TagStore &l1iStore() const { return l1i; }
    const cache::TagStore &l1dStore() const { return l1d; }
    const cache::TagStore &l2InstStore() const;
    const cache::TagStore &l2DataStore() const;
    const mem::WriteBuffer &writeBuffer() const { return wb; }
    const mem::MainMemory &mainMemory() const { return memory; }
    const mmu::Mmu &mmu() const { return mmuUnit; }
    ///@}

  private:
    struct L2Result
    {
        Cycles access = 0; //!< L2 array access + transfer cycles
        Cycles memory = 0; //!< main-memory cycles on an L2 miss
    };

    cache::TagStore &l2Store(bool is_inst);
    L2Result l2Access(bool is_inst, Addr paddr, Cycles now,
                      unsigned fetch_words);
    Cycles extraTransferCycles(unsigned fetch_words) const;
    Cycles dataMissWriteBufferWait(Addr paddr, Cycles now);
    void applyWriteToL2(Addr paddr);
    cache::LineState &refillL1D(Addr paddr, Cycles now,
                                Cycles &stall);

    SystemConfig cfg;
    mmu::Mmu mmuUnit;
    cache::TagStore l1i;
    cache::TagStore l1d;
    std::optional<cache::TagStore> l2u;  //!< unified
    std::optional<cache::TagStore> l2is; //!< split, instruction side
    std::optional<cache::TagStore> l2ds; //!< split, data side
    mem::WriteBuffer wb;
    mem::MainMemory memory;

    SysStats st;
    CpiComponents comp;
};

} // namespace gaas::core

#endif // GAAS_CORE_CACHE_SYSTEM_HH
