/**
 * @file
 * The cycle-accounting two-level cache system: the reference
 * processor's memory side.
 *
 * CacheSystem ties together the L1 I/D tag stores, the secondary
 * cache (unified, logically split, or physically split), the write
 * buffer, the MMU, and main memory, and charges stall cycles
 * according to the timing rules of Sections 2 and 6-9 of the paper
 * (see DESIGN.md section 4 for the contract).
 *
 * Each of ifetch/load/store takes the current cycle and returns the
 * stall cycles the access adds beyond the instruction's base cost;
 * stalls are simultaneously attributed to the Fig. 4 CPI buckets.
 *
 * Hot-core structure: the three access entry points are templates
 * over an AccessSpec that fixes the L1 geometry (direct-mapped or
 * set-associative) and the write policy at compile time, so the
 * specialized simulate loops carry no per-reference policy branches.
 * The L1 *hit* paths live here in the header and inline into the
 * simulate loop; every miss path is a non-inlined out-of-line call
 * (misses are rare and their code would otherwise crowd the hit
 * path out of the host I-cache).  GenericAccessSpec instantiates
 * the exact same code with runtime config reads, so the generic and
 * specialized paths are bit-identical by construction.
 */

#ifndef GAAS_CORE_CACHE_SYSTEM_HH
#define GAAS_CORE_CACHE_SYSTEM_HH

#include <memory>
#include <optional>

#include "cache/tag_store.hh"
#include "core/config.hh"
#include "core/cpi.hh"
#include "mem/main_memory.hh"
#include "mem/write_buffer.hh"
#include "mmu/mmu.hh"
#include "util/logging.hh"

namespace gaas::core
{

/**
 * Access-path spec that resolves nothing at compile time: geometry
 * and write policy are read from the runtime config, exactly as the
 * pre-specialization simulator did.  The reference path for the
 * equivalence tests, and the fallback for mixed L1 geometries.
 */
struct GenericAccessSpec
{
    static constexpr bool specialized = false;
    /** Unused when !specialized; present so the template compiles. */
    static constexpr bool dmL1 = false;
    static constexpr WritePolicy policy = WritePolicy::WriteBack;
};

/**
 * Fully specialized access path: both L1s share one geometry class
 * (@p DmL1: direct-mapped, else set-associative) and the write
 * policy is @p Policy.  The policy switch and the way-loop choice
 * constant-fold away.
 */
template <bool DmL1, WritePolicy Policy>
struct FastAccessSpec
{
    static constexpr bool specialized = true;
    static constexpr bool dmL1 = DmL1;
    static constexpr WritePolicy policy = Policy;
};

/** The memory side of the machine; see file comment. */
class CacheSystem
{
  public:
    /** Validates @p config (throws FatalError if inconsistent). */
    explicit CacheSystem(const SystemConfig &config);

    /**
     * Fetch the instruction at @p vaddr for process @p pid.
     * @return stall cycles beyond the base instruction cost
     */
    Cycles
    ifetch(Cycles now, Pid pid, Addr vaddr)
    {
        return ifetchT<GenericAccessSpec>(now, pid, vaddr);
    }

    /** Execute a load; @return stall cycles. */
    Cycles
    load(Cycles now, Pid pid, Addr vaddr)
    {
        return loadT<GenericAccessSpec>(now, pid, vaddr);
    }

    /**
     * Execute a store.
     * @param partial_word the store writes less than a full word
     * @return stall cycles
     */
    Cycles
    store(Cycles now, Pid pid, Addr vaddr, bool partial_word)
    {
        return storeT<GenericAccessSpec>(now, pid, vaddr,
                                         partial_word);
    }

    /** @name Specialized access paths (see file comment) */
    ///@{
    template <class Spec>
    Cycles ifetchT(Cycles now, Pid pid, Addr vaddr);

    template <class Spec>
    Cycles loadT(Cycles now, Pid pid, Addr vaddr);

    template <class Spec>
    Cycles storeT(Cycles now, Pid pid, Addr vaddr,
                  bool partial_word);
    ///@}

    /** @name Functional-warming paths (sampled simulation)
     *  Mirror every *state* mutation of ifetchT/loadT/storeT -- TLB
     *  fills, L1/L2 lookups/LRU touches/allocations, dirty and
     *  valid-mask updates, write-buffer pushes and drains, main
     *  memory's bus and dirty-buffer evolution -- without computing
     *  stall cycles or charging CPI-bucket losses.  The few event
     *  counters shared helpers do bump are cleared by the
     *  resetStats() that precedes every measurement interval, so
     *  warming is invisible in the measured statistics.  Defined
     *  after the class, next to the detailed paths they shadow.
     */
    ///@{
    template <class Spec>
    void warmIfetchT(Cycles now, Pid pid, Addr vaddr);

    template <class Spec>
    void warmLoadT(Cycles now, Pid pid, Addr vaddr);

    template <class Spec>
    void warmStoreT(Cycles now, Pid pid, Addr vaddr,
                    bool partial_word);
    ///@}

    /** Data-side L2 tag-set software prefetch, for the batched
     *  simulate loop: worth fetching ahead under write-through
     *  policies, where every store probes L2 (applyWriteToL2) and
     *  the L2 arrays are far too big for the host cache.  (The L1
     *  stores stay host-resident by themselves; prefetching them
     *  was measured a net loss.) */
    void
    prefetchL2Data(Addr vaddr) const
    {
        (l2u ? *l2u : *l2ds).prefetchSet(vaddr);
    }

    /** Event counters (TLB/WB/memory stats are folded in). */
    SysStats stats() const;

    /** Stall cycles by CPI bucket. */
    const CpiComponents &components() const { return comp; }

    /**
     * Zero every statistic while keeping all cache/TLB/write-buffer
     * state, so measurements can start from a warmed hierarchy (the
     * long-trace discipline of [BKW90] the paper follows).
     */
    void resetStats();

    const SystemConfig &config() const { return cfg; }

    /** @name Introspection for tests */
    ///@{
    const cache::TagStore &l1iStore() const { return l1i; }
    const cache::TagStore &l1dStore() const { return l1d; }
    const cache::TagStore &l2InstStore() const;
    const cache::TagStore &l2DataStore() const;
    const mem::WriteBuffer &writeBuffer() const { return wb; }
    const mem::MainMemory &mainMemory() const { return memory; }
    const mmu::Mmu &mmu() const { return mmuUnit; }
    ///@}

  private:
    struct L2Result
    {
        Cycles access = 0; //!< L2 array access + transfer cycles
        Cycles memory = 0; //!< main-memory cycles on an L2 miss
    };

    /** L1 probe under @p Spec: the way-loop choice constant-folds
     *  when the spec pins the geometry. */
    template <class Spec>
    static cache::TagStore::LineIndex
    l1Lookup(const cache::TagStore &store, Addr paddr)
    {
        if constexpr (Spec::specialized) {
            if constexpr (Spec::dmL1)
                return store.lookupDm(paddr);
            else
                return store.lookupAssoc(paddr);
        } else {
            return store.lookup(paddr);
        }
    }

    /** L1 LRU touch under @p Spec: touchIdx() is a no-op on a
     *  direct-mapped store (nothing reads the stamps), so the
     *  DM-pinned specs drop even its directMapped test. */
    template <class Spec>
    static void
    l1Touch(cache::TagStore &store, cache::TagStore::LineIndex idx)
    {
        if constexpr (Spec::specialized && Spec::dmL1)
            (void)store, (void)idx;
        else
            store.touchIdx(idx);
    }

    /** @name Out-of-line miss paths
     *  Kept out of the inlined hit paths on purpose: misses are the
     *  rare case, and the compiler would otherwise inline hundreds
     *  of instructions of drain/refill logic into every simulate
     *  loop specialization.
     */
    ///@{
    [[gnu::noinline]] Cycles ifetchMiss(Cycles now, Cycles stall,
                                        Addr paddr);
    [[gnu::noinline]] Cycles
    loadMiss(Cycles now, Cycles stall, Addr paddr,
             cache::TagStore::LineIndex idx);
    [[gnu::noinline]] Cycles storeMissWriteBack(Cycles now,
                                                Cycles stall,
                                                Addr paddr);
    [[gnu::noinline]] Cycles storeMissInvalidate(Cycles stall,
                                                 Addr paddr);
    [[gnu::noinline]] Cycles storeMissWriteOnly(Cycles stall,
                                                Addr paddr);
    [[gnu::noinline]] Cycles storeMissSubblock(Cycles stall,
                                               Addr paddr,
                                               bool partial_word);
    ///@}

    /** @name Out-of-line warm miss paths (state-only twins of the
     *  miss paths above; same rationale for staying out of line). */
    ///@{
    [[gnu::noinline]] void warmIfetchMiss(Cycles now, Addr paddr);
    [[gnu::noinline]] void warmLoadMiss(Cycles now, Addr paddr);
    [[gnu::noinline]] void warmStoreMissWriteBack(Cycles now,
                                                  Addr paddr);
    [[gnu::noinline]] void warmStoreMissInvalidate(Addr paddr);
    [[gnu::noinline]] void warmStoreMissWriteOnly(Addr paddr);
    [[gnu::noinline]] void warmStoreMissSubblock(Addr paddr,
                                                 bool partial_word);
    ///@}

    void warmL2Touch(bool is_inst, Addr paddr, Cycles now);
    void warmDataMissWbState(Addr paddr, Cycles now);
    cache::TagStore::Ref warmRefillL1D(Addr paddr, Cycles now);

    cache::TagStore &l2Store(bool is_inst);
    L2Result l2Access(bool is_inst, Addr paddr, Cycles now,
                      unsigned fetch_words);
    Cycles extraTransferCycles(unsigned fetch_words) const;
    Cycles dataMissWriteBufferWait(Addr paddr, Cycles now);
    void applyWriteToL2(Addr paddr);
    cache::TagStore::Ref refillL1D(Addr paddr, Cycles now,
                                   Cycles &stall);

    SystemConfig cfg;
    mmu::Mmu mmuUnit;
    cache::TagStore l1i;
    cache::TagStore l1d;
    std::optional<cache::TagStore> l2u;  //!< unified
    std::optional<cache::TagStore> l2is; //!< split, instruction side
    std::optional<cache::TagStore> l2ds; //!< split, data side
    mem::WriteBuffer wb;
    mem::MainMemory memory;

    SysStats st;
    CpiComponents comp;
};

// The hot paths.  Statistic increments, LRU touches, and write-buffer
// pushes happen in exactly the order of the original monolithic
// ifetch/load/store; the golden byte-identity harness depends on it.

template <class Spec>
Cycles
CacheSystem::ifetchT(Cycles now, Pid pid, Addr vaddr)
{
    ++st.ifetches;
    const auto tr = mmuUnit.translateInst(pid, vaddr);

    Cycles stall = 0;
    if (tr.tlbMiss && cfg.mmu.tlbMissPenalty) [[unlikely]] {
        stall += cfg.mmu.tlbMissPenalty;
        comp.tlb += cfg.mmu.tlbMissPenalty;
    }

    const cache::TagStore::LineIndex idx =
        l1Lookup<Spec>(l1i, tr.paddr);
    if (idx != cache::TagStore::npos) [[likely]] {
        l1Touch<Spec>(l1i, idx);
        return stall;
    }
    return ifetchMiss(now, stall, tr.paddr);
}

template <class Spec>
Cycles
CacheSystem::loadT(Cycles now, Pid pid, Addr vaddr)
{
    ++st.loads;
    const auto tr = mmuUnit.translateData(pid, vaddr);

    Cycles stall = 0;
    if (tr.tlbMiss && cfg.mmu.tlbMissPenalty) [[unlikely]] {
        stall += cfg.mmu.tlbMissPenalty;
        comp.tlb += cfg.mmu.tlbMissPenalty;
    }

    WritePolicy wp;
    if constexpr (Spec::specialized)
        wp = Spec::policy;
    else
        wp = cfg.writePolicy;

    const cache::TagStore::LineIndex idx =
        l1Lookup<Spec>(l1d, tr.paddr);
    bool usable = idx != cache::TagStore::npos &&
                  !(l1d.stateAt(idx) & cache::TagStore::kWriteOnlyBit);
    if (wp == WritePolicy::SubblockPlacement && usable)
        usable = (l1d.maskAt(idx) & l1d.wordBit(tr.paddr)) != 0;

    if (usable) [[likely]] {
        l1Touch<Spec>(l1d, idx);
        return stall;
    }
    return loadMiss(now, stall, tr.paddr, idx);
}

template <class Spec>
Cycles
CacheSystem::storeT(Cycles now, Pid pid, Addr vaddr,
                    bool partial_word)
{
    ++st.stores;
    const auto tr = mmuUnit.translateData(pid, vaddr);

    Cycles stall = 0;
    if (tr.tlbMiss && cfg.mmu.tlbMissPenalty) [[unlikely]] {
        stall += cfg.mmu.tlbMissPenalty;
        comp.tlb += cfg.mmu.tlbMissPenalty;
    }

    WritePolicy wp;
    if constexpr (Spec::specialized)
        wp = Spec::policy;
    else
        wp = cfg.writePolicy;

    const cache::TagStore::LineIndex idx =
        l1Lookup<Spec>(l1d, tr.paddr);

    if (wp == WritePolicy::WriteBack) {
        if (idx != cache::TagStore::npos) [[likely]] {
            // Write hits take two cycles: the tag is checked before
            // the write commits (Section 2).
            stall += 1;
            comp.l1Writes += 1;
            l1d.setDirtyAt(idx, true);
            l1Touch<Spec>(l1d, idx);
            return stall;
        }
        return storeMissWriteBack(now, stall, tr.paddr);
    }

    // Write-through family: every write enters the write buffer and
    // is applied to L2 when it drains.
    {
        const Cycles wait = wb.push(now + stall, tr.paddr);
        stall += wait;
        comp.wbWait += wait;
        applyWriteToL2(tr.paddr);
    }

    switch (wp) {
      case WritePolicy::WriteMissInvalidate:
        if (idx != cache::TagStore::npos) [[likely]] {
            // One-cycle hit: tag checked in parallel with the write.
            l1Touch<Spec>(l1d, idx);
            l1d.setDirtyAt(idx, true);
            return stall;
        }
        return storeMissInvalidate(stall, tr.paddr);

      case WritePolicy::WriteOnly:
        if (idx != cache::TagStore::npos) [[likely]] {
            // Hits -- including hits on write-only lines -- complete
            // in one cycle.
            l1Touch<Spec>(l1d, idx);
            l1d.setDirtyAt(idx, true);
            return stall;
        }
        return storeMissWriteOnly(stall, tr.paddr);

      case WritePolicy::SubblockPlacement:
        if (idx != cache::TagStore::npos) [[likely]] {
            l1Touch<Spec>(l1d, idx);
            l1d.setDirtyAt(idx, true);
            // Word writes validate their word; partial-word writes
            // leave the valid bits unchanged (Section 6).
            if (!partial_word)
                l1d.orMaskAt(idx, l1d.wordBit(tr.paddr));
            return stall;
        }
        return storeMissSubblock(stall, tr.paddr, partial_word);

      case WritePolicy::WriteBack:
        break; // handled above
    }
    gaas_panic("unreachable write policy");
}

// The warm twins.  Each repeats its detailed path's control flow with
// the cycle arithmetic and CPI attribution deleted; a state mutation
// here without a counterpart above (or vice versa) is a bug.

template <class Spec>
void
CacheSystem::warmIfetchT(Cycles now, Pid pid, Addr vaddr)
{
    const auto tr = mmuUnit.translateInst(pid, vaddr);
    const cache::TagStore::LineIndex idx =
        l1Lookup<Spec>(l1i, tr.paddr);
    if (idx != cache::TagStore::npos) [[likely]] {
        l1Touch<Spec>(l1i, idx);
        return;
    }
    warmIfetchMiss(now, tr.paddr);
}

template <class Spec>
void
CacheSystem::warmLoadT(Cycles now, Pid pid, Addr vaddr)
{
    const auto tr = mmuUnit.translateData(pid, vaddr);

    WritePolicy wp;
    if constexpr (Spec::specialized)
        wp = Spec::policy;
    else
        wp = cfg.writePolicy;

    const cache::TagStore::LineIndex idx =
        l1Lookup<Spec>(l1d, tr.paddr);
    bool usable = idx != cache::TagStore::npos &&
                  !(l1d.stateAt(idx) & cache::TagStore::kWriteOnlyBit);
    if (wp == WritePolicy::SubblockPlacement && usable)
        usable = (l1d.maskAt(idx) & l1d.wordBit(tr.paddr)) != 0;

    if (usable) [[likely]] {
        l1Touch<Spec>(l1d, idx);
        return;
    }
    warmLoadMiss(now, tr.paddr);
}

template <class Spec>
void
CacheSystem::warmStoreT(Cycles now, Pid pid, Addr vaddr,
                        bool partial_word)
{
    const auto tr = mmuUnit.translateData(pid, vaddr);

    WritePolicy wp;
    if constexpr (Spec::specialized)
        wp = Spec::policy;
    else
        wp = cfg.writePolicy;

    const cache::TagStore::LineIndex idx =
        l1Lookup<Spec>(l1d, tr.paddr);

    if (wp == WritePolicy::WriteBack) {
        if (idx != cache::TagStore::npos) [[likely]] {
            l1d.setDirtyAt(idx, true);
            l1Touch<Spec>(l1d, idx);
            return;
        }
        warmStoreMissWriteBack(now, tr.paddr);
        return;
    }

    // Write-through family: the buffer entry and the L2 write-state
    // update happen regardless of hit or miss, as in storeT.
    wb.push(now, tr.paddr);
    applyWriteToL2(tr.paddr);

    switch (wp) {
      case WritePolicy::WriteMissInvalidate:
        if (idx != cache::TagStore::npos) [[likely]] {
            l1Touch<Spec>(l1d, idx);
            l1d.setDirtyAt(idx, true);
            return;
        }
        warmStoreMissInvalidate(tr.paddr);
        return;

      case WritePolicy::WriteOnly:
        if (idx != cache::TagStore::npos) [[likely]] {
            l1Touch<Spec>(l1d, idx);
            l1d.setDirtyAt(idx, true);
            return;
        }
        warmStoreMissWriteOnly(tr.paddr);
        return;

      case WritePolicy::SubblockPlacement:
        if (idx != cache::TagStore::npos) [[likely]] {
            l1Touch<Spec>(l1d, idx);
            l1d.setDirtyAt(idx, true);
            if (!partial_word)
                l1d.orMaskAt(idx, l1d.wordBit(tr.paddr));
            return;
        }
        warmStoreMissSubblock(tr.paddr, partial_word);
        return;

      case WritePolicy::WriteBack:
        break; // handled above
    }
    gaas_panic("unreachable write policy");
}

} // namespace gaas::core

#endif // GAAS_CORE_CACHE_SYSTEM_HH
