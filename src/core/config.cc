#include "config.hh"

#include <sstream>

#include "util/error.hh"

namespace gaas::core
{

const char *
writePolicyName(WritePolicy policy)
{
    switch (policy) {
      case WritePolicy::WriteBack:
        return "write-back";
      case WritePolicy::WriteMissInvalidate:
        return "write-miss-invalidate";
      case WritePolicy::WriteOnly:
        return "write-only";
      case WritePolicy::SubblockPlacement:
        return "subblock-placement";
    }
    return "unknown";
}

const char *
l2OrgName(L2Org org)
{
    switch (org) {
      case L2Org::Unified:
        return "unified";
      case L2Org::LogicalSplit:
        return "logical-split";
      case L2Org::PhysicalSplit:
        return "physical-split";
    }
    return "unknown";
}

const char *
loadBypassName(LoadBypass bypass)
{
    switch (bypass) {
      case LoadBypass::None:
        return "none";
      case LoadBypass::Associative:
        return "associative";
      case LoadBypass::DirtyBit:
        return "dirty-bit";
    }
    return "unknown";
}

void
SystemConfig::applyPolicyDefaults()
{
    if (writePolicy == WritePolicy::WriteBack) {
        wbDepth = 4;
        wbEntryWords = 4;
    } else {
        wbDepth = 8;
        wbEntryWords = 1;
    }
}

const L2SideConfig &
SystemConfig::l2InstSide() const
{
    return l2Org == L2Org::PhysicalSplit ? l2i : l2;
}

const L2SideConfig &
SystemConfig::l2DataSide() const
{
    return l2Org == L2Org::PhysicalSplit ? l2d : l2;
}

void
SystemConfig::validate() const
{
    l1i.validate("L1-I");
    l1d.validate("L1-D");

    if (l2Org == L2Org::PhysicalSplit) {
        l2i.cache.validate("L2-I");
        l2d.cache.validate("L2-D");
    } else {
        l2.cache.validate("L2");
        if (l2Org == L2Org::LogicalSplit && l2.cache.sets() < 2) {
            gaas_error(ErrorCode::Config,
                       "logically split L2 needs at least two sets "
                       "to partition on the index high bit");
        }
    }

    const auto &iside = l2InstSide();
    const auto &dside = l2DataSide();
    if (iside.accessTime == 0 || dside.accessTime == 0)
        gaas_error(ErrorCode::Config, "L2 access times must be nonzero");
    if (iside.cache.lineWords < l1i.lineWords ||
        dside.cache.lineWords < l1d.lineWords) {
        gaas_error(ErrorCode::Config,
                   "L2 lines must be at least as large as L1 lines");
    }
    if (transferWordsPerCycle == 0)
        gaas_error(ErrorCode::Config, "transfer rate must be nonzero");
    if (wbDepth == 0 || wbEntryWords == 0)
        gaas_error(ErrorCode::Config, "write buffer geometry must be nonzero");

    if (writePolicy == WritePolicy::WriteBack &&
        wbEntryWords < l1d.lineWords) {
        gaas_error(ErrorCode::Config,
                   "write-back victims need write-buffer entries of "
                   "at least one L1-D line (",
                   l1d.lineWords, "W), got ", wbEntryWords, "W");
    }
    if (concurrentIRefill && !l2IsSplit()) {
        gaas_error(ErrorCode::Config,
                   "concurrent I-refill requires a split L2: with a "
                   "unified L2 the refill and the write-buffer drain "
                   "contend for the same array");
    }
    if (loadBypass == LoadBypass::DirtyBit &&
        writePolicy != WritePolicy::WriteOnly) {
        gaas_error(ErrorCode::Config,
                   "the dirty-bit load-bypass scheme relies on the "
                   "write-only policy allocating a line for every "
                   "write (Section 9)");
    }
    if (loadBypass != LoadBypass::None &&
        writePolicy == WritePolicy::WriteBack) {
        gaas_error(ErrorCode::Config,
                   "load bypass applies to write-through write "
                   "buffers; the write-back buffer holds whole "
                   "victim lines");
    }
    if (timeSliceCycles == 0)
        gaas_error(ErrorCode::Config, "time slice must be nonzero");
}

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << name << ":\n"
       << "  L1-I " << l1i.describe() << ", L1-D " << l1d.describe()
       << ", " << writePolicyName(writePolicy) << "\n";
    if (l2Org == L2Org::PhysicalSplit) {
        os << "  L2-I " << l2i.cache.describe() << " @"
           << l2i.accessTime << "cy, L2-D " << l2d.cache.describe()
           << " @" << l2d.accessTime << "cy (physical split)\n";
    } else {
        os << "  L2 " << l2.cache.describe() << " @" << l2.accessTime
           << "cy (" << l2OrgName(l2Org) << ")\n";
    }
    os << "  WB " << wbDepth << " x " << wbEntryWords
       << "W; concurrency: I-refill="
       << (concurrentIRefill ? "yes" : "no")
       << ", load-bypass=" << loadBypassName(loadBypass)
       << ", dirty-buffer=" << (l2DirtyBuffer ? "yes" : "no");
    return os.str();
}

SystemConfig
baseline()
{
    SystemConfig cfg;
    cfg.name = "base";
    // Section 2: 4KW direct-mapped split L1 with 4W lines,
    // write-back, unified 256KW direct-mapped L2 with 32W lines,
    // 6-cycle L1 miss penalty, 143/237-cycle L2 miss penalties,
    // 4-deep 4W write buffer.
    cfg.l1i = cache::CacheConfig{4 * 1024, 1, 4, 4};
    cfg.l1d = cache::CacheConfig{4 * 1024, 1, 4, 4};
    cfg.writePolicy = WritePolicy::WriteBack;
    cfg.l2Org = L2Org::Unified;
    cfg.l2.cache = cache::CacheConfig{256 * 1024, 1, 32, 32};
    cfg.l2.accessTime = 6;
    cfg.applyPolicyDefaults();
    return cfg;
}

SystemConfig
withWritePolicy(SystemConfig base, WritePolicy policy)
{
    base.writePolicy = policy;
    base.applyPolicyDefaults();
    base.name = std::string(base.name) + "+" +
                writePolicyName(policy);
    return base;
}

SystemConfig
afterWritePolicy()
{
    auto cfg = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    cfg.name = "base+write-only";
    return cfg;
}

SystemConfig
afterSplitL2()
{
    auto cfg = afterWritePolicy();
    cfg.name = "split-L2";
    cfg.l2Org = L2Org::PhysicalSplit;
    // Section 7: a 32KW L2-I built from the same 1K x 32 SRAMs as
    // the L1 caches, on the MCM, 2-cycle access; the base 256KW
    // BiCMOS array becomes the L2-D, 6-cycle access.
    cfg.l2i.cache = cache::CacheConfig{32 * 1024, 1, 32, 32};
    cfg.l2i.accessTime = 2;
    cfg.l2d.cache = cache::CacheConfig{256 * 1024, 1, 32, 32};
    cfg.l2d.accessTime = 6;
    return cfg;
}

SystemConfig
afterFetchSize()
{
    auto cfg = afterSplitL2();
    cfg.name = "fetch-8W";
    // Section 8: 8W line and fetch size for both primary caches.
    cfg.l1i.lineWords = cfg.l1i.fetchWords = 8;
    cfg.l1d.lineWords = cfg.l1d.fetchWords = 8;
    return cfg;
}

SystemConfig
afterConcurrentIRefill()
{
    auto cfg = afterFetchSize();
    cfg.name = "concurrent-I-refill";
    cfg.concurrentIRefill = true;
    return cfg;
}

SystemConfig
afterLoadBypass()
{
    auto cfg = afterConcurrentIRefill();
    cfg.name = "load-bypass";
    cfg.loadBypass = LoadBypass::DirtyBit;
    return cfg;
}

SystemConfig
optimized()
{
    auto cfg = afterLoadBypass();
    cfg.name = "optimized";
    cfg.l2DirtyBuffer = true;
    cfg.memory.dirtyBuffer = true;
    return cfg;
}

SystemConfig
splitL2Exchanged()
{
    auto cfg = afterSplitL2();
    cfg.name = "split-L2-exchanged";
    std::swap(cfg.l2i, cfg.l2d);
    return cfg;
}

} // namespace gaas::core
