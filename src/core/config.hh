/**
 * @file
 * SystemConfig: every knob of the paper's design space, plus the
 * preset ladder its evaluation walks (base architecture -> Fig. 11
 * optimized architecture).
 */

#ifndef GAAS_CORE_CONFIG_HH
#define GAAS_CORE_CONFIG_HH

#include <string>

#include "cache/config.hh"
#include "core/write_policy.hh"
#include "mem/main_memory.hh"
#include "mem/write_buffer.hh"
#include "mmu/mmu.hh"
#include "util/types.hh"

namespace gaas::core
{

/** How the secondary cache is organised (Section 7). */
enum class L2Org : std::uint8_t {
    /** One cache shared by instructions and data (base arch). */
    Unified,
    /** One physical array logically partitioned I/D by the high
     *  index bit: two half-size caches with the same access time. */
    LogicalSplit,
    /** Physically separate L2-I and L2-D with independent sizes and
     *  access times (the optimized architecture: 32KW 2-cycle L2-I
     *  on the MCM, 256KW 6-cycle L2-D off it). */
    PhysicalSplit,
};

/** @return display name for @p org. */
const char *l2OrgName(L2Org org);

/** How loads interact with pending stores in the write buffer
 *  (Section 9). */
enum class LoadBypass : std::uint8_t {
    /** Any L1 miss waits for the write buffer to empty (base). */
    None,
    /** All entries are associatively matched against the missed
     *  line; only a match (and entries ahead of it) must drain. */
    Associative,
    /** The paper's cheap scheme: an extra dirty bit on L1-D lines;
     *  only misses that replace a dirty line wait (valid with the
     *  write-only policy, which allocates a line for every write). */
    DirtyBit,
};

/** @return display name for @p bypass. */
const char *loadBypassName(LoadBypass bypass);

/** One side (or the whole) of the secondary cache. */
struct L2SideConfig
{
    cache::CacheConfig cache{256 * 1024, 1, 32, 32};

    /** Cycles to deliver a 4W refill to L1 (includes the 2-cycle
     *  latency for tag check + chip crossing). */
    Cycles accessTime = 6;
};

/** The full two-level system configuration. */
struct SystemConfig
{
    std::string name = "unnamed";

    /** @name Primary caches */
    ///@{
    cache::CacheConfig l1i{4 * 1024, 1, 4, 4};
    cache::CacheConfig l1d{4 * 1024, 1, 4, 4};
    WritePolicy writePolicy = WritePolicy::WriteBack;
    ///@}

    /** @name Secondary cache */
    ///@{
    L2Org l2Org = L2Org::Unified;
    /** Unified / LogicalSplit: the single array (logical split
     *  halves it).  PhysicalSplit: ignored. */
    L2SideConfig l2{};
    /** PhysicalSplit only. */
    L2SideConfig l2i{};
    L2SideConfig l2d{};
    /** Transfer rate for refill words beyond the first 4W. */
    unsigned transferWordsPerCycle = 4;
    ///@}

    /** @name Write buffer
     *  Depth/width defaults follow the policy: 4 x 4W for
     *  write-back, 8 x 1W for write-through (Section 6); call
     *  applyPolicyDefaults() after changing writePolicy. */
    ///@{
    unsigned wbDepth = 4;
    unsigned wbEntryWords = 4;
    Cycles wbStreamOverlap = 2;
    ///@}

    /** @name Memory-system concurrency (Section 9) */
    ///@{
    /** Refill L1-I from L2-I while the write buffer drains into
     *  L2-D (requires a split L2). */
    bool concurrentIRefill = false;
    LoadBypass loadBypass = LoadBypass::None;
    /** Single 32W dirty (victim) buffer behind L2-D. */
    bool l2DirtyBuffer = false;
    ///@}

    mem::MainMemoryConfig memory{};
    mmu::MmuConfig mmu{};

    /** Round-robin scheduling quantum (Section 3's 500k cycles). */
    Cycles timeSliceCycles = 500'000;

    /** Set wbDepth/wbEntryWords to the policy's default shape. */
    void applyPolicyDefaults();

    /** @return the L2 side used for instruction refills. */
    const L2SideConfig &l2InstSide() const;

    /** @return the L2 side used for data refills and WB drains. */
    const L2SideConfig &l2DataSide() const;

    /** @return true if I and D occupy separate (logical or physical)
     *  L2 partitions. */
    bool
    l2IsSplit() const
    {
        return l2Org != L2Org::Unified;
    }

    /** Throws FatalError on an inconsistent configuration. */
    void validate() const;

    /** Multi-line human-readable description. */
    std::string describe() const;
};

/** @name The paper's preset ladder
 *  Each step applies one optimisation of the evaluation narrative on
 *  top of the previous step, ending at the Fig. 11 architecture.
 */
///@{

/** Section 2's base architecture. */
SystemConfig baseline();

/** @p base with the write policy swapped (reshapes the write
 *  buffer per Section 6). */
SystemConfig withWritePolicy(SystemConfig base, WritePolicy policy);

/** Base + the write-only policy (the Section 6 outcome). */
SystemConfig afterWritePolicy();

/** + physically split L2: 32KW 2-cycle L2-I on the MCM, 256KW
 *  6-cycle L2-D off it (the Section 7 outcome; Fig. 9 column 2). */
SystemConfig afterSplitL2();

/** + 8W line/fetch in both primary caches (the Section 8 outcome;
 *  Fig. 9 column 3). */
SystemConfig afterFetchSize();

/** + concurrent L1-I refill (Fig. 10 column 2). */
SystemConfig afterConcurrentIRefill();

/** + loads pass stores via the dirty-bit scheme (Fig. 10 col. 3). */
SystemConfig afterLoadBypass();

/** + L2-D dirty buffer: the Fig. 11 optimized architecture. */
SystemConfig optimized();

/** The Fig. 9 "exchanged" check: L2-I and L2-D sizes/speeds
 *  swapped (shows L2-I belongs on the MCM). */
SystemConfig splitL2Exchanged();

///@}

} // namespace gaas::core

#endif // GAAS_CORE_CONFIG_HH
