#include "config_io.hh"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace gaas::core
{

namespace
{

const char *
policyKey(WritePolicy p)
{
    switch (p) {
      case WritePolicy::WriteBack:
        return "writeback";
      case WritePolicy::WriteMissInvalidate:
        return "invalidate";
      case WritePolicy::WriteOnly:
        return "writeonly";
      case WritePolicy::SubblockPlacement:
        return "subblock";
    }
    return "?";
}

WritePolicy
parsePolicy(const std::string &v)
{
    if (v == "writeback")
        return WritePolicy::WriteBack;
    if (v == "invalidate")
        return WritePolicy::WriteMissInvalidate;
    if (v == "writeonly")
        return WritePolicy::WriteOnly;
    if (v == "subblock")
        return WritePolicy::SubblockPlacement;
    gaas_fatal("unknown write policy '", v, "'");
}

const char *
orgKey(L2Org org)
{
    switch (org) {
      case L2Org::Unified:
        return "unified";
      case L2Org::LogicalSplit:
        return "logical";
      case L2Org::PhysicalSplit:
        return "physical";
    }
    return "?";
}

L2Org
parseOrg(const std::string &v)
{
    if (v == "unified")
        return L2Org::Unified;
    if (v == "logical")
        return L2Org::LogicalSplit;
    if (v == "physical")
        return L2Org::PhysicalSplit;
    gaas_fatal("unknown L2 organisation '", v, "'");
}

const char *
bypassKey(LoadBypass b)
{
    switch (b) {
      case LoadBypass::None:
        return "none";
      case LoadBypass::Associative:
        return "associative";
      case LoadBypass::DirtyBit:
        return "dirtybit";
    }
    return "?";
}

LoadBypass
parseBypass(const std::string &v)
{
    if (v == "none")
        return LoadBypass::None;
    if (v == "associative")
        return LoadBypass::Associative;
    if (v == "dirtybit")
        return LoadBypass::DirtyBit;
    gaas_fatal("unknown load-bypass scheme '", v, "'");
}

std::uint64_t
parseU64(const std::string &key, const std::string &v)
{
    std::size_t used = 0;
    std::uint64_t out = 0;
    try {
        out = std::stoull(v, &used, 0);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != v.size())
        gaas_fatal("bad numeric value for ", key, ": '", v, "'");
    return out;
}

bool
parseBool(const std::string &key, const std::string &v)
{
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    gaas_fatal("bad boolean value for ", key, ": '", v, "'");
}

std::string
trim(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

} // namespace

void
saveConfig(const SystemConfig &cfg, std::ostream &os)
{
    os << "# gaascache system configuration\n"
       << "name = " << cfg.name << '\n'
       << "l1i.size_words = " << cfg.l1i.sizeWords << '\n'
       << "l1i.assoc = " << cfg.l1i.assoc << '\n'
       << "l1i.line_words = " << cfg.l1i.lineWords << '\n'
       << "l1d.size_words = " << cfg.l1d.sizeWords << '\n'
       << "l1d.assoc = " << cfg.l1d.assoc << '\n'
       << "l1d.line_words = " << cfg.l1d.lineWords << '\n'
       << "write_policy = " << policyKey(cfg.writePolicy) << '\n'
       << "l2.org = " << orgKey(cfg.l2Org) << '\n'
       << "l2.size_words = " << cfg.l2.cache.sizeWords << '\n'
       << "l2.assoc = " << cfg.l2.cache.assoc << '\n'
       << "l2.line_words = " << cfg.l2.cache.lineWords << '\n'
       << "l2.access_time = " << cfg.l2.accessTime << '\n'
       << "l2i.size_words = " << cfg.l2i.cache.sizeWords << '\n'
       << "l2i.assoc = " << cfg.l2i.cache.assoc << '\n'
       << "l2i.line_words = " << cfg.l2i.cache.lineWords << '\n'
       << "l2i.access_time = " << cfg.l2i.accessTime << '\n'
       << "l2d.size_words = " << cfg.l2d.cache.sizeWords << '\n'
       << "l2d.assoc = " << cfg.l2d.cache.assoc << '\n'
       << "l2d.line_words = " << cfg.l2d.cache.lineWords << '\n'
       << "l2d.access_time = " << cfg.l2d.accessTime << '\n'
       << "transfer_words_per_cycle = " << cfg.transferWordsPerCycle
       << '\n'
       << "wb.depth = " << cfg.wbDepth << '\n'
       << "wb.entry_words = " << cfg.wbEntryWords << '\n'
       << "wb.stream_overlap = " << cfg.wbStreamOverlap << '\n'
       << "concurrent_i_refill = "
       << (cfg.concurrentIRefill ? "true" : "false") << '\n'
       << "load_bypass = " << bypassKey(cfg.loadBypass) << '\n'
       << "l2_dirty_buffer = "
       << (cfg.l2DirtyBuffer ? "true" : "false") << '\n'
       << "memory.clean_miss = " << cfg.memory.cleanMissPenalty
       << '\n'
       << "memory.dirty_miss = " << cfg.memory.dirtyMissPenalty
       << '\n'
       << "mmu.tlb_miss_penalty = " << cfg.mmu.tlbMissPenalty << '\n'
       << "mmu.page_colors = " << cfg.mmu.pageTable.colors << '\n'
       << "mmu.page_coloring = "
       << (cfg.mmu.pageTable.coloring ? "true" : "false") << '\n'
       << "time_slice_cycles = " << cfg.timeSliceCycles << '\n';
}

void
saveConfigFile(const SystemConfig &cfg, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        gaas_fatal("cannot write config to ", path);
    saveConfig(cfg, out);
    if (!out)
        gaas_fatal("I/O error writing config to ", path);
}

SystemConfig
loadConfig(std::istream &is)
{
    SystemConfig cfg = baseline();
    cfg.name = "loaded";

    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        const auto eq = text.find('=');
        if (eq == std::string::npos) {
            gaas_fatal("config line ", lineno,
                       ": expected 'key = value', got '", text, "'");
        }
        const std::string key = trim(text.substr(0, eq));
        const std::string value = trim(text.substr(eq + 1));

        auto setCache = [&](cache::CacheConfig &c,
                            const std::string &field) {
            if (field == "size_words") {
                c.sizeWords = parseU64(key, value);
            } else if (field == "assoc") {
                c.assoc =
                    static_cast<unsigned>(parseU64(key, value));
            } else if (field == "line_words") {
                c.lineWords = c.fetchWords =
                    static_cast<unsigned>(parseU64(key, value));
            } else {
                gaas_fatal("config line ", lineno, ": unknown key '",
                           key, "'");
            }
        };

        if (key == "name") {
            cfg.name = value;
        } else if (key.rfind("l1i.", 0) == 0) {
            setCache(cfg.l1i, key.substr(4));
        } else if (key.rfind("l1d.", 0) == 0) {
            setCache(cfg.l1d, key.substr(4));
        } else if (key == "write_policy") {
            cfg.writePolicy = parsePolicy(value);
            cfg.applyPolicyDefaults();
        } else if (key == "l2.org") {
            cfg.l2Org = parseOrg(value);
        } else if (key == "l2.access_time") {
            cfg.l2.accessTime = parseU64(key, value);
        } else if (key.rfind("l2.", 0) == 0) {
            setCache(cfg.l2.cache, key.substr(3));
        } else if (key == "l2i.access_time") {
            cfg.l2i.accessTime = parseU64(key, value);
        } else if (key.rfind("l2i.", 0) == 0) {
            setCache(cfg.l2i.cache, key.substr(4));
        } else if (key == "l2d.access_time") {
            cfg.l2d.accessTime = parseU64(key, value);
        } else if (key.rfind("l2d.", 0) == 0) {
            setCache(cfg.l2d.cache, key.substr(4));
        } else if (key == "transfer_words_per_cycle") {
            cfg.transferWordsPerCycle =
                static_cast<unsigned>(parseU64(key, value));
        } else if (key == "wb.depth") {
            cfg.wbDepth = static_cast<unsigned>(parseU64(key, value));
        } else if (key == "wb.entry_words") {
            cfg.wbEntryWords =
                static_cast<unsigned>(parseU64(key, value));
        } else if (key == "wb.stream_overlap") {
            cfg.wbStreamOverlap = parseU64(key, value);
        } else if (key == "concurrent_i_refill") {
            cfg.concurrentIRefill = parseBool(key, value);
        } else if (key == "load_bypass") {
            cfg.loadBypass = parseBypass(value);
        } else if (key == "l2_dirty_buffer") {
            cfg.l2DirtyBuffer = parseBool(key, value);
        } else if (key == "memory.clean_miss") {
            cfg.memory.cleanMissPenalty = parseU64(key, value);
        } else if (key == "memory.dirty_miss") {
            cfg.memory.dirtyMissPenalty = parseU64(key, value);
        } else if (key == "mmu.tlb_miss_penalty") {
            cfg.mmu.tlbMissPenalty = parseU64(key, value);
        } else if (key == "mmu.page_colors") {
            cfg.mmu.pageTable.colors =
                static_cast<unsigned>(parseU64(key, value));
        } else if (key == "mmu.page_coloring") {
            cfg.mmu.pageTable.coloring = parseBool(key, value);
        } else if (key == "time_slice_cycles") {
            cfg.timeSliceCycles = parseU64(key, value);
        } else {
            gaas_fatal("config line ", lineno, ": unknown key '",
                       key, "'");
        }
    }

    cfg.validate();
    return cfg;
}

SystemConfig
loadConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        gaas_fatal("cannot read config from ", path);
    return loadConfig(in);
}

} // namespace gaas::core
