#include "config_io.hh"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hh"

namespace gaas::core
{

namespace
{

const char *
policyKey(WritePolicy p)
{
    switch (p) {
      case WritePolicy::WriteBack:
        return "writeback";
      case WritePolicy::WriteMissInvalidate:
        return "invalidate";
      case WritePolicy::WriteOnly:
        return "writeonly";
      case WritePolicy::SubblockPlacement:
        return "subblock";
    }
    return "?";
}

/** One `key = value` line, collected before any state is touched. */
struct Entry
{
    std::string key;
    std::string value;
    unsigned lineno = 0;
};

WritePolicy
parsePolicy(const Entry &e)
{
    const std::string &v = e.value;
    if (v == "writeback")
        return WritePolicy::WriteBack;
    if (v == "invalidate")
        return WritePolicy::WriteMissInvalidate;
    if (v == "writeonly")
        return WritePolicy::WriteOnly;
    if (v == "subblock")
        return WritePolicy::SubblockPlacement;
    gaas_error(ErrorCode::Config, "config line ", e.lineno,
               ": unknown write policy '", v, "'");
}

const char *
orgKey(L2Org org)
{
    switch (org) {
      case L2Org::Unified:
        return "unified";
      case L2Org::LogicalSplit:
        return "logical";
      case L2Org::PhysicalSplit:
        return "physical";
    }
    return "?";
}

L2Org
parseOrg(const Entry &e)
{
    const std::string &v = e.value;
    if (v == "unified")
        return L2Org::Unified;
    if (v == "logical")
        return L2Org::LogicalSplit;
    if (v == "physical")
        return L2Org::PhysicalSplit;
    gaas_error(ErrorCode::Config, "config line ", e.lineno,
               ": unknown L2 organisation '", v, "'");
}

const char *
bypassKey(LoadBypass b)
{
    switch (b) {
      case LoadBypass::None:
        return "none";
      case LoadBypass::Associative:
        return "associative";
      case LoadBypass::DirtyBit:
        return "dirtybit";
    }
    return "?";
}

LoadBypass
parseBypass(const Entry &e)
{
    const std::string &v = e.value;
    if (v == "none")
        return LoadBypass::None;
    if (v == "associative")
        return LoadBypass::Associative;
    if (v == "dirtybit")
        return LoadBypass::DirtyBit;
    gaas_error(ErrorCode::Config, "config line ", e.lineno,
               ": unknown load-bypass scheme '", v, "'");
}

std::uint64_t
parseU64(const Entry &e)
{
    std::size_t used = 0;
    std::uint64_t out = 0;
    try {
        out = std::stoull(e.value, &used, 0);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != e.value.size()) {
        gaas_error(ErrorCode::Config, "config line ", e.lineno,
                   ": bad numeric value for ", e.key, ": '", e.value,
                   "'");
    }
    return out;
}

unsigned
parseU32(const Entry &e)
{
    return static_cast<unsigned>(parseU64(e));
}

bool
parseBool(const Entry &e)
{
    const std::string &v = e.value;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    gaas_error(ErrorCode::Config, "config line ", e.lineno,
               ": bad boolean value for ", e.key, ": '", v, "'");
}

std::string
trim(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

/**
 * The config schema: every legal key, in canonical apply order (the
 * same order saveConfig writes).
 *
 * loadConfig applies collected entries in THIS order, never in file
 * order, so a parse result is a pure function of the key/value set.
 * The one ordering subtlety the schema encodes: `write_policy` ranks
 * before `wb.depth` / `wb.entry_words`, so the policy's write-buffer
 * defaults (applyPolicyDefaults) always land first and an explicit
 * wb.* line always wins, wherever it appears in the file.
 */
struct SchemaKey
{
    const char *key;
    void (*apply)(SystemConfig &, const Entry &);
};

constexpr SchemaKey kSchema[] = {
    {"name",
     [](SystemConfig &c, const Entry &e) { c.name = e.value; }},
    {"l1i.size_words",
     [](SystemConfig &c, const Entry &e) {
         c.l1i.sizeWords = parseU64(e);
     }},
    {"l1i.assoc",
     [](SystemConfig &c, const Entry &e) {
         c.l1i.assoc = parseU32(e);
     }},
    {"l1i.line_words",
     [](SystemConfig &c, const Entry &e) {
         c.l1i.lineWords = c.l1i.fetchWords = parseU32(e);
     }},
    {"l1d.size_words",
     [](SystemConfig &c, const Entry &e) {
         c.l1d.sizeWords = parseU64(e);
     }},
    {"l1d.assoc",
     [](SystemConfig &c, const Entry &e) {
         c.l1d.assoc = parseU32(e);
     }},
    {"l1d.line_words",
     [](SystemConfig &c, const Entry &e) {
         c.l1d.lineWords = c.l1d.fetchWords = parseU32(e);
     }},
    {"write_policy",
     [](SystemConfig &c, const Entry &e) {
         c.writePolicy = parsePolicy(e);
         c.applyPolicyDefaults();
     }},
    {"l2.org",
     [](SystemConfig &c, const Entry &e) {
         c.l2Org = parseOrg(e);
     }},
    {"l2.size_words",
     [](SystemConfig &c, const Entry &e) {
         c.l2.cache.sizeWords = parseU64(e);
     }},
    {"l2.assoc",
     [](SystemConfig &c, const Entry &e) {
         c.l2.cache.assoc = parseU32(e);
     }},
    {"l2.line_words",
     [](SystemConfig &c, const Entry &e) {
         c.l2.cache.lineWords = c.l2.cache.fetchWords = parseU32(e);
     }},
    {"l2.access_time",
     [](SystemConfig &c, const Entry &e) {
         c.l2.accessTime = parseU64(e);
     }},
    {"l2i.size_words",
     [](SystemConfig &c, const Entry &e) {
         c.l2i.cache.sizeWords = parseU64(e);
     }},
    {"l2i.assoc",
     [](SystemConfig &c, const Entry &e) {
         c.l2i.cache.assoc = parseU32(e);
     }},
    {"l2i.line_words",
     [](SystemConfig &c, const Entry &e) {
         c.l2i.cache.lineWords = c.l2i.cache.fetchWords =
             parseU32(e);
     }},
    {"l2i.access_time",
     [](SystemConfig &c, const Entry &e) {
         c.l2i.accessTime = parseU64(e);
     }},
    {"l2d.size_words",
     [](SystemConfig &c, const Entry &e) {
         c.l2d.cache.sizeWords = parseU64(e);
     }},
    {"l2d.assoc",
     [](SystemConfig &c, const Entry &e) {
         c.l2d.cache.assoc = parseU32(e);
     }},
    {"l2d.line_words",
     [](SystemConfig &c, const Entry &e) {
         c.l2d.cache.lineWords = c.l2d.cache.fetchWords =
             parseU32(e);
     }},
    {"l2d.access_time",
     [](SystemConfig &c, const Entry &e) {
         c.l2d.accessTime = parseU64(e);
     }},
    {"transfer_words_per_cycle",
     [](SystemConfig &c, const Entry &e) {
         c.transferWordsPerCycle = parseU32(e);
     }},
    {"wb.depth",
     [](SystemConfig &c, const Entry &e) {
         c.wbDepth = parseU32(e);
     }},
    {"wb.entry_words",
     [](SystemConfig &c, const Entry &e) {
         c.wbEntryWords = parseU32(e);
     }},
    {"wb.stream_overlap",
     [](SystemConfig &c, const Entry &e) {
         c.wbStreamOverlap = parseU64(e);
     }},
    {"concurrent_i_refill",
     [](SystemConfig &c, const Entry &e) {
         c.concurrentIRefill = parseBool(e);
     }},
    {"load_bypass",
     [](SystemConfig &c, const Entry &e) {
         c.loadBypass = parseBypass(e);
     }},
    {"l2_dirty_buffer",
     [](SystemConfig &c, const Entry &e) {
         c.l2DirtyBuffer = parseBool(e);
     }},
    {"memory.clean_miss",
     [](SystemConfig &c, const Entry &e) {
         c.memory.cleanMissPenalty = parseU64(e);
     }},
    {"memory.dirty_miss",
     [](SystemConfig &c, const Entry &e) {
         c.memory.dirtyMissPenalty = parseU64(e);
     }},
    {"mmu.tlb_miss_penalty",
     [](SystemConfig &c, const Entry &e) {
         c.mmu.tlbMissPenalty = parseU64(e);
     }},
    {"mmu.page_colors",
     [](SystemConfig &c, const Entry &e) {
         c.mmu.pageTable.colors = parseU32(e);
     }},
    {"mmu.page_coloring",
     [](SystemConfig &c, const Entry &e) {
         c.mmu.pageTable.coloring = parseBool(e);
     }},
    {"time_slice_cycles",
     [](SystemConfig &c, const Entry &e) {
         c.timeSliceCycles = parseU64(e);
     }},
};

constexpr std::size_t kSchemaSize = std::size(kSchema);

/** @return the schema rank of @p key, or kSchemaSize if unknown. */
std::size_t
schemaRank(const std::string &key)
{
    for (std::size_t i = 0; i < kSchemaSize; ++i) {
        if (key == kSchema[i].key)
            return i;
    }
    return kSchemaSize;
}

} // namespace

void
saveConfig(const SystemConfig &cfg, std::ostream &os)
{
    os << "# gaascache system configuration\n"
       << "name = " << cfg.name << '\n'
       << "l1i.size_words = " << cfg.l1i.sizeWords << '\n'
       << "l1i.assoc = " << cfg.l1i.assoc << '\n'
       << "l1i.line_words = " << cfg.l1i.lineWords << '\n'
       << "l1d.size_words = " << cfg.l1d.sizeWords << '\n'
       << "l1d.assoc = " << cfg.l1d.assoc << '\n'
       << "l1d.line_words = " << cfg.l1d.lineWords << '\n'
       << "write_policy = " << policyKey(cfg.writePolicy) << '\n'
       << "l2.org = " << orgKey(cfg.l2Org) << '\n'
       << "l2.size_words = " << cfg.l2.cache.sizeWords << '\n'
       << "l2.assoc = " << cfg.l2.cache.assoc << '\n'
       << "l2.line_words = " << cfg.l2.cache.lineWords << '\n'
       << "l2.access_time = " << cfg.l2.accessTime << '\n'
       << "l2i.size_words = " << cfg.l2i.cache.sizeWords << '\n'
       << "l2i.assoc = " << cfg.l2i.cache.assoc << '\n'
       << "l2i.line_words = " << cfg.l2i.cache.lineWords << '\n'
       << "l2i.access_time = " << cfg.l2i.accessTime << '\n'
       << "l2d.size_words = " << cfg.l2d.cache.sizeWords << '\n'
       << "l2d.assoc = " << cfg.l2d.cache.assoc << '\n'
       << "l2d.line_words = " << cfg.l2d.cache.lineWords << '\n'
       << "l2d.access_time = " << cfg.l2d.accessTime << '\n'
       << "transfer_words_per_cycle = " << cfg.transferWordsPerCycle
       << '\n'
       << "wb.depth = " << cfg.wbDepth << '\n'
       << "wb.entry_words = " << cfg.wbEntryWords << '\n'
       << "wb.stream_overlap = " << cfg.wbStreamOverlap << '\n'
       << "concurrent_i_refill = "
       << (cfg.concurrentIRefill ? "true" : "false") << '\n'
       << "load_bypass = " << bypassKey(cfg.loadBypass) << '\n'
       << "l2_dirty_buffer = "
       << (cfg.l2DirtyBuffer ? "true" : "false") << '\n'
       << "memory.clean_miss = " << cfg.memory.cleanMissPenalty
       << '\n'
       << "memory.dirty_miss = " << cfg.memory.dirtyMissPenalty
       << '\n'
       << "mmu.tlb_miss_penalty = " << cfg.mmu.tlbMissPenalty << '\n'
       << "mmu.page_colors = " << cfg.mmu.pageTable.colors << '\n'
       << "mmu.page_coloring = "
       << (cfg.mmu.pageTable.coloring ? "true" : "false") << '\n'
       << "time_slice_cycles = " << cfg.timeSliceCycles << '\n';
}

void
saveConfigFile(const SystemConfig &cfg, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        gaas_error(ErrorCode::Config, "cannot write config to ", path);
    saveConfig(cfg, out);
    if (!out)
        gaas_error(ErrorCode::Config, "I/O error writing config to ", path);
}

SystemConfig
loadConfig(std::istream &is)
{
    // Phase 1: collect every key/value pair without touching any
    // config state.  Unknown keys, malformed lines, and duplicate
    // keys are fatal here, with the offending line number.
    std::vector<Entry> entries;
    std::map<std::string, unsigned> firstSeen;

    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        const auto eq = text.find('=');
        if (eq == std::string::npos) {
            gaas_error(ErrorCode::Config, "config line ", lineno,
                       ": expected 'key = value', got '", text, "'");
        }
        Entry e{trim(text.substr(0, eq)), trim(text.substr(eq + 1)),
                lineno};
        if (schemaRank(e.key) == kSchemaSize) {
            gaas_error(ErrorCode::Config, "config line ", lineno,
                       ": unknown key '", e.key, "'");
        }
        const auto [it, inserted] = firstSeen.emplace(e.key, lineno);
        if (!inserted) {
            gaas_error(ErrorCode::Config, "config line ", lineno,
                       ": duplicate key '", e.key,
                       "' (first set on line ", it->second, ")");
        }
        entries.push_back(std::move(e));
    }

    // Phase 2: apply in schema order, never in file order -- each
    // key appears at most once, so the result is a pure function of
    // the key/value set.  In particular write_policy (whose
    // applyPolicyDefaults resets the write-buffer shape) always
    // applies before any explicit wb.* override.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return schemaRank(a.key) < schemaRank(b.key);
              });

    SystemConfig cfg = baseline();
    cfg.name = "loaded";
    for (const auto &e : entries)
        kSchema[schemaRank(e.key)].apply(cfg, e);

    cfg.validate();
    return cfg;
}

SystemConfig
loadConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        gaas_error(ErrorCode::Config, "cannot read config from ", path);
    return loadConfig(in);
}

} // namespace gaas::core
