/**
 * @file
 * Text (de)serialization of SystemConfig: a simple `key = value`
 * format so design points can be saved, shared, and replayed from
 * the command line (see examples/design_space_explorer).
 */

#ifndef GAAS_CORE_CONFIG_IO_HH
#define GAAS_CORE_CONFIG_IO_HH

#include <iosfwd>
#include <string>

#include "core/config.hh"

namespace gaas::core
{

/** Write @p config as `key = value` lines. */
void saveConfig(const SystemConfig &config, std::ostream &os);

/** saveConfig to a file; throws FatalError on I/O failure. */
void saveConfigFile(const SystemConfig &config,
                    const std::string &path);

/**
 * Parse a configuration from `key = value` lines.
 *
 * Two-phase and order-independent: all pairs are collected first,
 * then applied in a fixed schema order (the order saveConfig
 * writes), so the result never depends on the line order of the
 * file.  Policy defaults triggered by `write_policy` are applied
 * before any explicit `wb.*` override, wherever those lines appear.
 *
 * Unknown keys, bad values, malformed lines, and duplicate keys are
 * fatal with the offending line number (a config file with a typo
 * must not silently fall back to a default).  Blank lines and lines
 * starting with '#' are ignored.  Keys not present keep the
 * baseline default.  The result is validated.
 */
SystemConfig loadConfig(std::istream &is);

/** loadConfig from a file; throws FatalError if unreadable. */
SystemConfig loadConfigFile(const std::string &path);

} // namespace gaas::core

#endif // GAAS_CORE_CONFIG_IO_HH
