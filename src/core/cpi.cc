#include "cpi.hh"

#include <iomanip>
#include <sstream>

#include "obs/metrics.hh"

namespace gaas::core
{

namespace
{

double
ratio(Count num, Count den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
}

} // namespace

void
CpiComponents::registerInto(obs::Registry &r) const
{
    r.beginSection("cpi breakdown (cycles)");
    r.counter("cpi.l1i_miss", l1iMiss,
              "L1-I misses: L2-I access cycles");
    r.counter("cpi.l1d_miss", l1dMiss,
              "L1-D misses: L2-D access cycles");
    r.counter("cpi.l1_writes", l1Writes,
              "extra write hit/miss cycles");
    r.counter("cpi.wb_wait", wbWait, "waiting on the write buffer");
    r.counter("cpi.l2i_miss", l2iMiss, "L2-I misses: memory cycles");
    r.counter("cpi.l2d_miss", l2dMiss, "L2-D misses: memory cycles");
    r.counter("cpi.tlb", tlb, "TLB miss penalty cycles");
}

void
SysStats::registerInto(obs::Registry &r) const
{
    r.beginSection("L1");
    r.counter("l1i.fetches", ifetches, "instruction fetches");
    r.counter("l1i.misses", l1iMisses, "L1-I misses");
    r.value("l1i.miss_ratio", l1iMissRatio(), "misses / fetches");
    r.counter("l1d.loads", loads, "loads");
    r.counter("l1d.read_misses", l1dReadMisses, "load misses");
    r.value("l1d.read_miss_ratio", l1dReadMissRatio(),
            "read misses / loads");
    r.counter("l1d.stores", stores, "stores");
    r.counter("l1d.write_misses", l1dWriteMisses, "store misses");
    r.value("l1d.write_miss_ratio", l1dWriteMissRatio(),
            "write misses / stores");
    r.counter("l1d.write_only_read_misses", writeOnlyReadMisses,
              "reads that hit a write-only tag");

    r.beginSection("L2");
    r.counter("l2i.accesses", l2iAccesses,
              "instruction-side refills");
    r.counter("l2i.misses", l2iMisses, "instruction-side misses");
    r.value("l2i.miss_ratio", l2iMissRatio(), "misses / accesses");
    r.counter("l2d.accesses", l2dAccesses, "data-side refills");
    r.counter("l2d.misses", l2dMisses, "data-side misses");
    r.value("l2d.miss_ratio", l2dMissRatio(), "misses / accesses");
    r.value("l2.miss_ratio", l2MissRatio(), "combined local ratio");
    r.counter("l2.dirty_misses", l2DirtyMisses,
              "misses evicting a dirty line");
    r.counter("l2.write_allocates", l2WriteAllocates,
              "write-buffer drains that allocated");

    wb.registerInto(r);
    memory.registerInto(r);
    itlb.registerInto(r, "itlb", "ITLB");
    dtlb.registerInto(r, "dtlb", "DTLB");
}

double
SysStats::l1iMissRatio() const
{
    return ratio(l1iMisses, ifetches);
}

double
SysStats::l1dReadMissRatio() const
{
    return ratio(l1dReadMisses, loads);
}

double
SysStats::l1dWriteMissRatio() const
{
    return ratio(l1dWriteMisses, stores);
}

double
SysStats::l2MissRatio() const
{
    return ratio(l2iMisses + l2dMisses, l2iAccesses + l2dAccesses);
}

double
SysStats::l2iMissRatio() const
{
    return ratio(l2iMisses, l2iAccesses);
}

double
SysStats::l2dMissRatio() const
{
    return ratio(l2dMisses, l2dAccesses);
}

Count
SimResult::references() const
{
    return sys.ifetches + sys.loads + sys.stores;
}

double
SimResult::refsPerSecond() const
{
    return hostSeconds > 0.0
               ? static_cast<double>(references()) / hostSeconds
               : 0.0;
}

double
SimResult::cpi() const
{
    return ratio(cycles, instructions);
}

double
SimResult::baseCpi() const
{
    return instructions
               ? 1.0 + static_cast<double>(cpuStallCycles) /
                           static_cast<double>(instructions)
               : 0.0;
}

double
SimResult::memCpi() const
{
    return perInstruction(comp.total());
}

double
SimResult::perInstruction(Cycles bucket_cycles) const
{
    return ratio(bucket_cycles, instructions);
}

std::string
SimResult::formatBreakdown() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(4);
    auto row = [&](const char *label, double value) {
        os << "  " << std::left << std::setw(16) << label
           << std::right << std::setw(8) << value << "\n";
    };
    os << configName << " CPI breakdown (" << instructions
       << " instructions):\n";
    row("base (CPU)", baseCpi());
    row("L1-I miss", perInstruction(comp.l1iMiss));
    row("L1-D miss", perInstruction(comp.l1dMiss));
    row("L1 writes", perInstruction(comp.l1Writes));
    row("WB", perInstruction(comp.wbWait));
    row("L2-I miss", perInstruction(comp.l2iMiss));
    row("L2-D miss", perInstruction(comp.l2dMiss));
    if (comp.tlb)
        row("TLB", perInstruction(comp.tlb));
    row("total", cpi());
    return os.str();
}

} // namespace gaas::core
