#include "cpi.hh"

#include <iomanip>
#include <sstream>

namespace gaas::core
{

namespace
{

double
ratio(Count num, Count den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
}

} // namespace

double
SysStats::l1iMissRatio() const
{
    return ratio(l1iMisses, ifetches);
}

double
SysStats::l1dReadMissRatio() const
{
    return ratio(l1dReadMisses, loads);
}

double
SysStats::l1dWriteMissRatio() const
{
    return ratio(l1dWriteMisses, stores);
}

double
SysStats::l2MissRatio() const
{
    return ratio(l2iMisses + l2dMisses, l2iAccesses + l2dAccesses);
}

double
SysStats::l2iMissRatio() const
{
    return ratio(l2iMisses, l2iAccesses);
}

double
SysStats::l2dMissRatio() const
{
    return ratio(l2dMisses, l2dAccesses);
}

Count
SimResult::references() const
{
    return sys.ifetches + sys.loads + sys.stores;
}

double
SimResult::refsPerSecond() const
{
    return hostSeconds > 0.0
               ? static_cast<double>(references()) / hostSeconds
               : 0.0;
}

double
SimResult::cpi() const
{
    return ratio(cycles, instructions);
}

double
SimResult::baseCpi() const
{
    return instructions
               ? 1.0 + static_cast<double>(cpuStallCycles) /
                           static_cast<double>(instructions)
               : 0.0;
}

double
SimResult::memCpi() const
{
    return perInstruction(comp.total());
}

double
SimResult::perInstruction(Cycles bucket_cycles) const
{
    return ratio(bucket_cycles, instructions);
}

std::string
SimResult::formatBreakdown() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(4);
    auto row = [&](const char *label, double value) {
        os << "  " << std::left << std::setw(16) << label
           << std::right << std::setw(8) << value << "\n";
    };
    os << configName << " CPI breakdown (" << instructions
       << " instructions):\n";
    row("base (CPU)", baseCpi());
    row("L1-I miss", perInstruction(comp.l1iMiss));
    row("L1-D miss", perInstruction(comp.l1dMiss));
    row("L1 writes", perInstruction(comp.l1Writes));
    row("WB", perInstruction(comp.wbWait));
    row("L2-I miss", perInstruction(comp.l2iMiss));
    row("L2-D miss", perInstruction(comp.l2dMiss));
    if (comp.tlb)
        row("TLB", perInstruction(comp.tlb));
    row("total", cpi());
    return os.str();
}

} // namespace gaas::core
