/**
 * @file
 * CPI accounting: the Fig. 4 loss breakdown and the SimResult every
 * simulation run returns.
 *
 * CPI = 1 + cpu_stall_cycles/instructions
 *         + memory_stall_cycles/instructions     (Section 3)
 *
 * Memory stall cycles are attributed to the buckets the paper's
 * Fig. 4 histogram uses: L1-I miss, L1-D miss, L1 writes, write
 * buffer, L2-I miss, L2-D miss (plus a TLB bucket, zero under the
 * paper's accounting).
 */

#ifndef GAAS_CORE_CPI_HH
#define GAAS_CORE_CPI_HH

#include <string>

#include "mem/main_memory.hh"
#include "mem/write_buffer.hh"
#include "mmu/tlb.hh"
#include "util/types.hh"

namespace gaas::obs
{
class Registry;
} // namespace gaas::obs

namespace gaas::core
{

/** Memory stall cycles by loss source (the Fig. 4 buckets). */
struct CpiComponents
{
    Cycles l1iMiss = 0;  //!< L1-I misses: cycles accessing L2-I
    Cycles l1dMiss = 0;  //!< L1-D misses: cycles accessing L2-D
    Cycles l1Writes = 0; //!< extra write-hit/miss cycles in L1-D
    Cycles wbWait = 0;   //!< waiting on the write buffer
    Cycles l2iMiss = 0;  //!< L2-I misses: memory cycles (I side)
    Cycles l2dMiss = 0;  //!< L2-D misses: memory cycles (D side)
    Cycles tlb = 0;      //!< TLB miss penalty (0 by default)

    Cycles
    total() const
    {
        return l1iMiss + l1dMiss + l1Writes + wbWait + l2iMiss +
               l2dMiss + tlb;
    }

    /** Register the per-loss-source cycle buckets as `cpi.*`. */
    void registerInto(obs::Registry &r) const;
};

/** Event counters the cache system gathers. */
struct SysStats
{
    /** @name L1 */
    ///@{
    Count ifetches = 0;
    Count l1iMisses = 0;
    Count loads = 0;
    Count l1dReadMisses = 0;
    Count stores = 0;
    Count l1dWriteMisses = 0;
    Count writeOnlyReadMisses = 0; //!< reads that hit a write-only tag
    ///@}

    /** @name L2 (per requester side; unified sums both) */
    ///@{
    Count l2iAccesses = 0;
    Count l2iMisses = 0;
    Count l2dAccesses = 0;
    Count l2dMisses = 0;
    Count l2DirtyMisses = 0; //!< misses that evicted a dirty L2 line
    /** Write-buffer drains that allocated a fresh L2 line. */
    Count l2WriteAllocates = 0;
    ///@}

    mem::WriteBufferStats wb{};
    mem::MainMemoryStats memory{};
    mmu::TlbStats itlb{};
    mmu::TlbStats dtlb{};

    /** @name Derived ratios */
    ///@{
    double l1iMissRatio() const;
    /** L1-D read misses per load. */
    double l1dReadMissRatio() const;
    /** L1-D write misses per store. */
    double l1dWriteMissRatio() const;
    /** Combined L2 local miss ratio (misses / accesses). */
    double l2MissRatio() const;
    double l2iMissRatio() const;
    double l2dMissRatio() const;
    ///@}

    /** Register every counter and ratio (`l1i.*`, `l1d.*`, `l2*.*`,
     *  then the folded-in WB/memory/TLB statistics). */
    void registerInto(obs::Registry &r) const;
};

/**
 * Summary of a sampled (SMARTS-style) run, carried in SimResult.
 * All-zero when the run simulated every reference at full detail.
 */
struct SamplingInfo
{
    /** Controller passes run (0 = not a sampled run). */
    Count passes = 0;

    /** Measurement intervals in the final pass.  0 with passes > 0
     *  means the budget was too small for the interval schedule and
     *  the controller fell back to a full-detail run. */
    Count intervals = 0;

    /** @name Instruction disposition of the final pass */
    ///@{
    Count measuredInstructions = 0;
    Count warmedInstructions = 0;
    Count skippedInstructions = 0;
    ///@}

    /** Mean of the per-interval CPIs (the point estimate). */
    double cpiMean = 0.0;

    /** Standard error of cpiMean, from the unbiased sample
     *  variance of the interval CPIs. */
    double cpiStdError = 0.0;

    /** Half-width of the confidence interval:
     *  t(confidence, n-1) * cpiStdError. */
    double cpiHalfWidth = 0.0;

    /** Confidence level of the interval (0.95), 0 when unsampled. */
    double confidence = 0.0;

    bool enabled() const { return passes > 0; }
};

/** Everything a simulation run produces. */
struct SimResult
{
    std::string configName;
    Count instructions = 0;
    Cycles cycles = 0;
    Cycles cpuStallCycles = 0; //!< load/branch/FP stalls (base CPI)
    Count contextSwitches = 0;
    Count syscallSwitches = 0;

    /**
     * Host wall-clock seconds spent inside Simulator::run (warmup
     * included).  Timing only: like hostStatsSeconds this is NOT
     * deterministic, so equality comparisons (the sweep-engine
     * determinism tests) must exclude it; neither appears in any
     * stats dump.
     */
    double hostSeconds = 0.0;

    /** Host seconds Simulator::run spent assembling this result
     *  after the simulation loop ended (non-deterministic). */
    double hostStatsSeconds = 0.0;

    CpiComponents comp{};
    SysStats sys{};
    SamplingInfo sampling{};

    /** Total simulated references (ifetches + loads + stores). */
    Count references() const;

    /** Simulator throughput: references() / hostSeconds.  The paper
     *  quotes its own simulator at ~240,000 refs/s (Section 3). */
    double refsPerSecond() const;

    /** Total cycles per instruction. */
    double cpi() const;

    /** The CPU-only floor (1 + cpu stalls); the paper's 1.238. */
    double baseCpi() const;

    /** Memory-system contribution to CPI (sum of the buckets). */
    double memCpi() const;

    /** One bucket as CPI. */
    double perInstruction(Cycles bucket_cycles) const;

    /** Multi-line breakdown in the style of Fig. 4. */
    std::string formatBreakdown() const;
};

} // namespace gaas::core

#endif // GAAS_CORE_CPI_HH
