#include "journal.hh"

#include <cerrno>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>

#if defined(_WIN32)
#include <io.h>
#else
#include <sys/file.h>
#include <unistd.h>
#endif

#include "core/config_io.hh"
#include "core/result_io.hh"
#include "obs/json.hh"
#include "trace/v3.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/file_io.hh"
#include "util/hash.hh"

namespace gaas::core
{

namespace
{

using util::Fnv1a;

/** Decode one journal line; throws FatalError on malformed input. */
JournalRecord
decodeRecord(const obs::JsonValue &v, std::string &key)
{
    const obs::JsonValue *key_m = v.member("key");
    const obs::JsonValue *status_m = v.member("status");
    if (!key_m || key_m->type != obs::JsonValue::Type::String ||
        !status_m || status_m->type != obs::JsonValue::Type::String)
        gaas_error(ErrorCode::StatsIO,
                   "journal record lacks key/status strings");
    key = key_m->scalar;

    JournalRecord rec;
    if (!parsePointStatus(status_m->scalar, rec.status))
        gaas_error(ErrorCode::StatsIO,
                   "journal record has unknown status '",
                   status_m->scalar, "'");

    if (rec.status == PointStatus::Failed) {
        const obs::JsonValue *code_m = v.member("code");
        if (!code_m ||
            code_m->type != obs::JsonValue::Type::String ||
            !parseErrorCode(code_m->scalar, rec.errorCode))
            gaas_error(ErrorCode::StatsIO,
                       "failed journal record lacks a valid code");
        if (const obs::JsonValue *err_m = v.member("error"))
            rec.error = err_m->scalar;
    } else {
        const obs::JsonValue *result_m = v.member("result");
        if (!result_m)
            gaas_error(ErrorCode::StatsIO,
                       "journal record lacks its result");
        rec.result = resultFromJson(*result_m);
    }
    return rec;
}

obs::JsonValue
encodeRecord(const std::string &key, const JournalRecord &record)
{
    obs::JsonValue v = obs::JsonValue::object();
    v.members.emplace_back("key", obs::JsonValue::string(key));
    v.members.emplace_back(
        "status",
        obs::JsonValue::string(pointStatusName(record.status)));
    if (record.status == PointStatus::Failed) {
        v.members.emplace_back(
            "code", obs::JsonValue::string(
                        errorCodeName(record.errorCode)));
        v.members.emplace_back(
            "error", obs::JsonValue::string(record.error));
    } else {
        v.members.emplace_back("result",
                               resultToJson(record.result));
    }
    return v;
}

bool
truncateTo(std::FILE *file, std::int64_t size)
{
#if defined(_WIN32)
    return ::_chsize_s(::_fileno(file), size) == 0;
#else
    return ::ftruncate(::fileno(file), static_cast<off_t>(size)) ==
           0;
#endif
}

} // namespace

std::string
sweepJobKey(const SweepJob &job)
{
    if (job.workload)
        return "";
    std::ostringstream cfg;
    saveConfig(job.config, cfg);
    Fnv1a digest;
    digest.feed(cfg.str());
    digest.feed("|");
    digest.feedNumber(job.mpLevel);
    digest.feedNumber(job.instructions);
    digest.feedNumber(job.warmup);
    digest.feedNumber(job.watchdogCycles);
    if (!job.traceFiles.empty()) {
        // Trace-file jobs key on *content* (the v3 content digest
        // plus record count), not the path, so a renamed or re-packed
        // copy of the same trace still resumes.  The streaming flag
        // deliberately stays out of the key: streamed and in-memory
        // replay are bit-identical by contract, so either mode may
        // satisfy the other's journal entry.  An unreadable file
        // makes the job opaque (never journaled) -- the open error
        // surfaces when the job actually runs.
        digest.feed("trace|");
        for (const std::string &path : job.traceFiles) {
            trace::V3FileInfo info;
            try {
                info = trace::v3FileInfo(path);
            } catch (const FatalError &) {
                return "";
            }
            digest.feedNumber(info.digest);
            digest.feedNumber(info.records);
        }
    }
    if (job.sampling.enabled) {
        // A sampled point must never satisfy (or be satisfied by) a
        // full-detail key, and every sampling knob changes the
        // estimate.  Unsampled jobs keep their pre-sampling keys, so
        // existing journals stay resumable.
        digest.feed("sampled|");
        digest.feedNumber(job.sampling.measureInstructions);
        digest.feedNumber(job.sampling.headInstructions);
        digest.feedNumber(job.sampling.warmInstructions);
        digest.feedNumber(job.sampling.minIntervals);
        digest.feedNumber(job.sampling.maxIntervals);
        digest.feed(obs::formatDouble(job.sampling.targetRelHalfWidth));
        digest.feed("|");
        digest.feed(obs::formatDouble(job.sampling.warmingBiasRel));
        digest.feed("|");
    }
    return digest.hex();
}

bool
RunJournal::open(const std::string &path, std::string *error)
{
    close();
    records.clear();

    // Load whatever a previous (possibly killed) run left behind.
    // The file legitimately may not exist yet.
    std::ifstream in(path, std::ios::binary);
    if (in) {
        std::string line;
        while (std::getline(in, line)) {
            // getline strips the '\n'; a line at EOF *without* one
            // is the torn tail of a killed append -- skip it (its
            // point simply re-simulates).
            if (in.eof() && !in.bad())
                break;
            if (line.empty())
                continue;
            try {
                std::string key;
                JournalRecord rec =
                    decodeRecord(obs::parseJson(line), key);
                records[key] = std::move(rec); // last record wins
            } catch (const FatalError &e) {
                if (error) {
                    *error = "journal " + path +
                             " is corrupt: " + e.what();
                }
                return false;
            }
        }
    }

    file = std::fopen(path.c_str(), "ab");
    if (!file) {
        if (error)
            *error = "cannot open journal " + path + " for append";
        return false;
    }

#if !defined(_WIN32)
    // Exclusive advisory lock for the life of the journal: two
    // concurrent `--resume DIR` runs would interleave appends (and
    // race the record map), so the second opener must fail hard --
    // not silently corrupt the first run's checkpoint stream.  The
    // lock dies with the process (including SIGKILL), so a crashed
    // holder never wedges later resumes.
    while (::flock(::fileno(file), LOCK_EX | LOCK_NB) != 0) {
        if (errno == EINTR)
            continue;
        const bool held = errno == EWOULDBLOCK || errno == EAGAIN;
        std::fclose(file);
        file = nullptr;
        if (held) {
            gaas_error(ErrorCode::Locked, "resume journal ", path,
                       " is locked by another live process; "
                       "concurrent --resume runs on one directory "
                       "would interleave appends");
        }
        if (error)
            *error = "cannot lock journal " + path;
        return false;
    }
#endif
    return true;
}

const JournalRecord *
RunJournal::find(const std::string &key) const
{
    const auto it = records.find(key);
    return it == records.end() ? nullptr : &it->second;
}

bool
RunJournal::append(const std::string &key,
                   const JournalRecord &record)
{
    if (!file || key.empty())
        return false;
    if (fault::shouldFail("journal-write"))
        return false;

    const std::string line =
        obs::writeJsonCompact(encodeRecord(key, record)) + "\n";
    // File size, not tellPos: in append mode the position before the
    // first write is implementation-defined, but writes always land
    // at end-of-file.
    const std::int64_t before = util::fileSizeBytes(file);
    if (!util::writeBytes(file, line.data(), line.size()) ||
        !util::flushAndSync(file)) {
        // Roll the file back to the last good record so a partial
        // line cannot poison the records that follow it.
        if (before < 0 || !truncateTo(file, before))
            close();
        return false;
    }
    records[key] = record;
    return true;
}

void
RunJournal::close()
{
    if (file) {
        std::fclose(file);
        file = nullptr;
    }
}

} // namespace gaas::core
