/**
 * @file
 * The append-only sweep journal behind `--resume`.
 *
 * A figure binary opens one journal (`sweep_journal.jsonl`) in its
 * stats directory and the sweep engine appends one record -- a
 * single compact-JSON line, fsynced before append() returns -- per
 * completed point.  Records are keyed by a digest of everything that
 * determines the point's result (the full saved configuration text,
 * the multiprogramming level, the instruction and warmup budgets),
 * so a journal written by a killed run can be replayed by any later
 * run of the same ladder: points journaled Ok or Degraded are reused
 * without simulating, Failed and missing points run again.
 *
 * Because each record carries the complete SimResult via
 * core/result_io (bit-exact round-trip), a resumed run re-tabulates
 * its CSVs and per-point JSON dumps byte-identically to an
 * uninterrupted one.
 *
 * Loading tolerates a torn trailing line (the record being written
 * when the process died) and takes the last record per key, so
 * re-running after repeated kills just keeps appending.
 */

#ifndef GAAS_CORE_JOURNAL_HH
#define GAAS_CORE_JOURNAL_HH

#include <cstdio>
#include <map>
#include <string>

#include "core/sweep.hh"

namespace gaas::core
{

/**
 * The resume key of @p job: a 64-bit FNV-1a digest (16 hex digits)
 * over the saved configuration text and the mpLevel/instructions/
 * warmup budgets.
 *
 * @return "" for jobs with a custom workload builder -- the builder
 *         cannot be digested, so such jobs are never journaled
 */
std::string sweepJobKey(const SweepJob &job);

/** One journal line, decoded. */
struct JournalRecord
{
    PointStatus status = PointStatus::Ok;

    /** Valid when status != Failed. */
    SimResult result;

    /** @name Failure details (status == Failed only) */
    ///@{
    ErrorCode errorCode = ErrorCode::Internal;
    std::string error;
    ///@}
};

/** Append-only journal file; see file comment. */
class RunJournal
{
  public:
    RunJournal() = default;
    ~RunJournal() { close(); }

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /**
     * Load existing records from @p path (absent file = empty
     * journal), open it for appending and take an exclusive
     * advisory lock (flock) on it for the journal's lifetime.
     *
     * @return false (with @p error set) if the file cannot be
     *         decoded or opened; the caller typically warns and
     *         sweeps without resume
     * @throws SimError(ErrorCode::Locked) if another live process
     *         holds the journal -- concurrent `--resume DIR` runs
     *         on the same directory would interleave appends, so
     *         the second opener must fail, not degrade
     */
    bool open(const std::string &path, std::string *error = nullptr);

    /** The last record journaled under @p key; nullptr if none. */
    const JournalRecord *find(const std::string &key) const;

    /**
     * Append one record and fsync it.  A failure (disk full,
     * injected "journal-write" fault) leaves the journal usable for
     * later appends.
     *
     * @return false on write failure; the sweep downgrades the
     *         point to Degraded rather than aborting
     */
    bool append(const std::string &key, const JournalRecord &record);

    /** Records loaded at open() time. */
    std::size_t loadedRecords() const { return records.size(); }

    bool isOpen() const { return file != nullptr; }

    void close();

  private:
    std::map<std::string, JournalRecord> records;
    std::FILE *file = nullptr;
};

} // namespace gaas::core

#endif // GAAS_CORE_JOURNAL_HH
