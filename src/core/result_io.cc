#include "result_io.hh"

#include <algorithm>
#include <charconv>
#include <utility>
#include <vector>

#include "util/error.hh"

namespace gaas::core
{

namespace
{

/**
 * Apply @p f("dotted.name", field) to every u64 counter of a
 * SimResult, in a fixed order.  Instantiated once over `SimResult &`
 * (parsing) and once over `const SimResult &` (serializing), so the
 * two directions can never disagree about the field list.
 */
template <typename Result, typename Fn>
void
visitCounters(Result &r, Fn &&f)
{
    f("instructions", r.instructions);
    f("cycles", r.cycles);
    f("cpu_stall_cycles", r.cpuStallCycles);
    f("context_switches", r.contextSwitches);
    f("syscall_switches", r.syscallSwitches);

    f("comp.l1i_miss", r.comp.l1iMiss);
    f("comp.l1d_miss", r.comp.l1dMiss);
    f("comp.l1_writes", r.comp.l1Writes);
    f("comp.wb_wait", r.comp.wbWait);
    f("comp.l2i_miss", r.comp.l2iMiss);
    f("comp.l2d_miss", r.comp.l2dMiss);
    f("comp.tlb", r.comp.tlb);

    f("sys.ifetches", r.sys.ifetches);
    f("sys.l1i_misses", r.sys.l1iMisses);
    f("sys.loads", r.sys.loads);
    f("sys.l1d_read_misses", r.sys.l1dReadMisses);
    f("sys.stores", r.sys.stores);
    f("sys.l1d_write_misses", r.sys.l1dWriteMisses);
    f("sys.write_only_read_misses", r.sys.writeOnlyReadMisses);
    f("sys.l2i_accesses", r.sys.l2iAccesses);
    f("sys.l2i_misses", r.sys.l2iMisses);
    f("sys.l2d_accesses", r.sys.l2dAccesses);
    f("sys.l2d_misses", r.sys.l2dMisses);
    f("sys.l2_dirty_misses", r.sys.l2DirtyMisses);
    f("sys.l2_write_allocates", r.sys.l2WriteAllocates);

    f("sys.wb.pushes", r.sys.wb.pushes);
    f("sys.wb.full_stalls", r.sys.wb.fullStalls);
    f("sys.wb.full_stall_cycles", r.sys.wb.fullStallCycles);
    f("sys.wb.drain_waits", r.sys.wb.drainWaits);
    f("sys.wb.drain_wait_cycles", r.sys.wb.drainWaitCycles);
    f("sys.wb.bypasses", r.sys.wb.bypasses);
    f("sys.wb.max_occupancy", r.sys.wb.maxOccupancy);

    f("sys.mem.reads", r.sys.memory.reads);
    f("sys.mem.dirty_writebacks", r.sys.memory.dirtyWritebacks);
    f("sys.mem.bus_wait_cycles", r.sys.memory.busWaitCycles);
    f("sys.mem.bus_waits", r.sys.memory.busWaits);

    f("sys.itlb.accesses", r.sys.itlb.accesses);
    f("sys.itlb.misses", r.sys.itlb.misses);
    f("sys.dtlb.accesses", r.sys.dtlb.accesses);
    f("sys.dtlb.misses", r.sys.dtlb.misses);
}

/** The host-timing doubles, same single-field-table idea. */
template <typename Result, typename Fn>
void
visitDoubles(Result &r, Fn &&f)
{
    f("host_seconds", r.hostSeconds);
    f("host_stats_seconds", r.hostStatsSeconds);
}

/**
 * @name Sampling summary fields (core/sampling.hh)
 * Kept in their own tables because parsing treats them as optional:
 * journals written before sampled simulation existed lack them, and
 * an unsampled record parses to the all-zero SamplingInfo either way.
 */
///@{
template <typename Result, typename Fn>
void
visitSamplingCounters(Result &r, Fn &&f)
{
    f("sampling.passes", r.sampling.passes);
    f("sampling.intervals", r.sampling.intervals);
    f("sampling.measured_instructions",
      r.sampling.measuredInstructions);
    f("sampling.warmed_instructions", r.sampling.warmedInstructions);
    f("sampling.skipped_instructions",
      r.sampling.skippedInstructions);
}

template <typename Result, typename Fn>
void
visitSamplingDoubles(Result &r, Fn &&f)
{
    f("sampling.cpi_mean", r.sampling.cpiMean);
    f("sampling.cpi_std_error", r.sampling.cpiStdError);
    f("sampling.cpi_half_width", r.sampling.cpiHalfWidth);
    f("sampling.confidence", r.sampling.confidence);
}
///@}

[[noreturn]] void
badField(const char *name, const char *what)
{
    gaas_error(ErrorCode::StatsIO, "journal result record: field '",
               name, "' ", what);
}

} // namespace

obs::JsonValue
resultToJson(const SimResult &result)
{
    obs::JsonValue root = obs::JsonValue::object();
    root.members.emplace_back(
        "config", obs::JsonValue::string(result.configName));
    visitCounters(result, [&root](const char *name, Count v) {
        root.members.emplace_back(name, obs::JsonValue::number(v));
    });
    visitDoubles(result, [&root](const char *name, double v) {
        root.members.emplace_back(name, obs::JsonValue::number(v));
    });
    visitSamplingCounters(result, [&root](const char *name, Count v) {
        root.members.emplace_back(name, obs::JsonValue::number(v));
    });
    visitSamplingDoubles(result, [&root](const char *name, double v) {
        root.members.emplace_back(name, obs::JsonValue::number(v));
    });
    return root;
}

SimResult
resultFromJson(const obs::JsonValue &v)
{
    if (v.type != obs::JsonValue::Type::Object)
        gaas_error(ErrorCode::StatsIO,
                   "journal result record is not an object");

    SimResult result;

    const obs::JsonValue *config = v.member("config");
    if (!config || config->type != obs::JsonValue::Type::String)
        badField("config", "is missing or not a string");
    result.configName = config->scalar;

    visitCounters(result, [&v](const char *name, Count &out) {
        const obs::JsonValue *m = v.member(name);
        if (!m || m->type != obs::JsonValue::Type::Number)
            badField(name, "is missing or not a number");
        const char *first = m->scalar.data();
        const char *last = first + m->scalar.size();
        const auto res = std::from_chars(first, last, out);
        if (res.ec != std::errc{} || res.ptr != last)
            badField(name, "is not an unsigned integer");
    });

    visitDoubles(result, [&v](const char *name, double &out) {
        const obs::JsonValue *m = v.member(name);
        if (!m)
            badField(name, "is missing");
        if (m->type == obs::JsonValue::Type::Null) {
            // number(double) writes non-finite values as null; the
            // timing fields never feed byte-compared output, so any
            // placeholder that round-trips through null is fine.
            out = 0.0;
            return;
        }
        if (m->type != obs::JsonValue::Type::Number)
            badField(name, "is not a number");
        const char *first = m->scalar.data();
        const char *last = first + m->scalar.size();
        const auto res = std::from_chars(first, last, out);
        if (res.ec != std::errc{} || res.ptr != last)
            badField(name, "is not a double");
    });

    visitSamplingCounters(result, [&v](const char *name, Count &out) {
        const obs::JsonValue *m = v.member(name);
        if (!m) {
            out = 0; // pre-sampling journal record
            return;
        }
        if (m->type != obs::JsonValue::Type::Number)
            badField(name, "is not a number");
        const char *first = m->scalar.data();
        const char *last = first + m->scalar.size();
        const auto res = std::from_chars(first, last, out);
        if (res.ec != std::errc{} || res.ptr != last)
            badField(name, "is not an unsigned integer");
    });

    visitSamplingDoubles(result, [&v](const char *name, double &out) {
        const obs::JsonValue *m = v.member(name);
        if (!m || m->type == obs::JsonValue::Type::Null) {
            out = 0.0; // pre-sampling record, or non-finite → null
            return;
        }
        if (m->type != obs::JsonValue::Type::Number)
            badField(name, "is not a number");
        const char *first = m->scalar.data();
        const char *last = first + m->scalar.size();
        const auto res = std::from_chars(first, last, out);
        if (res.ec != std::errc{} || res.ptr != last)
            badField(name, "is not a double");
    });

    return result;
}

void
accumulateResult(SimResult &acc, const SimResult &part)
{
    const Count occupancy = std::max(acc.sys.wb.maxOccupancy,
                                     part.sys.wb.maxOccupancy);

    std::vector<const Count *> src;
    visitCounters(part, [&src](const char *, const Count &v) {
        src.push_back(&v);
    });
    std::size_t i = 0;
    visitCounters(acc, [&src, &i](const char *, Count &v) {
        v += *src[i++];
    });

    acc.sys.wb.maxOccupancy = occupancy;
    acc.hostSeconds += part.hostSeconds;
    acc.hostStatsSeconds += part.hostStatsSeconds;
}

} // namespace gaas::core
