/**
 * @file
 * Exact (de)serialization of a SimResult, for the sweep journal.
 *
 * Unlike the stats dumps (core/stats_dump.hh), which render a
 * human/machine-readable *view* of a result, this pair round-trips
 * the complete struct bit-exactly: every counter is a decimal u64
 * and every double uses shortest-round-trip formatting, so a result
 * reloaded from a journal is indistinguishable from the original --
 * a resumed figure run re-tabulates CSVs and re-emits per-point JSON
 * dumps byte-identically to an uninterrupted run.
 */

#ifndef GAAS_CORE_RESULT_IO_HH
#define GAAS_CORE_RESULT_IO_HH

#include "core/cpi.hh"
#include "obs/json.hh"

namespace gaas::core
{

/** Serialize every field of @p result (flat object, stable keys). */
obs::JsonValue resultToJson(const SimResult &result);

/**
 * Rebuild a SimResult from resultToJson output.
 *
 * Throws SimError(StatsIO) on a missing or malformed field -- a
 * journal record that does not fully decode must not resume.
 */
SimResult resultFromJson(const obs::JsonValue &v);

/**
 * Fold @p part's measured counters into @p acc: every u64 counter
 * and host-timing double is summed, except wb.max_occupancy which
 * takes the max (it is a high-water mark, not a flow).  Name,
 * derived ratios and sampling summary are left to the caller.  The
 * sampled-simulation controller (core/sampling.hh) uses this to
 * aggregate per-interval results; it walks the same field tables as
 * the (de)serializers, so a new SimResult counter is summed the day
 * it is journaled.
 */
void accumulateResult(SimResult &acc, const SimResult &part);

} // namespace gaas::core

#endif // GAAS_CORE_RESULT_IO_HH
