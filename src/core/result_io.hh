/**
 * @file
 * Exact (de)serialization of a SimResult, for the sweep journal.
 *
 * Unlike the stats dumps (core/stats_dump.hh), which render a
 * human/machine-readable *view* of a result, this pair round-trips
 * the complete struct bit-exactly: every counter is a decimal u64
 * and every double uses shortest-round-trip formatting, so a result
 * reloaded from a journal is indistinguishable from the original --
 * a resumed figure run re-tabulates CSVs and re-emits per-point JSON
 * dumps byte-identically to an uninterrupted run.
 */

#ifndef GAAS_CORE_RESULT_IO_HH
#define GAAS_CORE_RESULT_IO_HH

#include "core/cpi.hh"
#include "obs/json.hh"

namespace gaas::core
{

/** Serialize every field of @p result (flat object, stable keys). */
obs::JsonValue resultToJson(const SimResult &result);

/**
 * Rebuild a SimResult from resultToJson output.
 *
 * Throws SimError(StatsIO) on a missing or malformed field -- a
 * journal record that does not fully decode must not resume.
 */
SimResult resultFromJson(const obs::JsonValue &v);

} // namespace gaas::core

#endif // GAAS_CORE_RESULT_IO_HH
