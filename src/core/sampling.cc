#include "sampling.hh"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/result_io.hh"
#include "core/simulator.hh"
#include "core/workload.hh"
#include "stats/distribution.hh"
#include "synth/suite.hh"
#include "util/logging.hh"

namespace gaas::core
{

namespace
{

/** Sizing rounds before the controller accepts whatever CI the
 *  episode cap yields.  Growth continues the same machine, so a
 *  round only costs the *additional* episodes it schedules. */
constexpr Count kMaxRounds = 3;

constexpr double kConfidence = 0.95;

/**
 * Per-process trace references consumed per *global* skipped
 * instruction.  The round-robin scheduler hands each process an
 * instruction share proportional to its speed (1 / baseCpi, the
 * same model workload.cc's refHint uses); references per
 * instruction are 1 (Inst) + loadFrac + storeFrac.  No slack
 * factor: this converts a gap we want to *land after*, not a
 * buffer we want to oversize.
 */
std::vector<double>
refsPerSkippedInstruction(
    const std::vector<synth::BenchmarkSpec> &specs)
{
    double invSum = 0.0;
    for (const auto &s : specs)
        invSum += 1.0 / s.baseCpi;
    std::vector<double> factors;
    factors.reserve(specs.size());
    for (const auto &s : specs) {
        const double share = (1.0 / s.baseCpi) / invSum;
        factors.push_back(share *
                          (1.0 + s.loadFrac + s.storeFrac));
    }
    return factors;
}

std::vector<Count>
refsForGap(const std::vector<double> &factors, Count gap)
{
    std::vector<Count> refs;
    refs.reserve(factors.size());
    for (const double f : factors)
        refs.push_back(static_cast<Count>(
            std::llround(f * static_cast<double>(gap))));
    return refs;
}

/** Round @p n up to the next multiple of @p p (p > 0). */
Count
roundUpTo(Count n, Count p)
{
    return ((n + p - 1) / p) * p;
}

/** Head and body window means of one process stratum. */
struct Stratum
{
    stats::SampleStat headCpi;
    stats::SampleStat bodyCpi;
};

/**
 * The estimate one pass yields.  Per process p the episode-average
 * CPI recombines the head and body window means over the expected
 * occupancy length E[len_p]: an occupancy spends its first Lh
 * instructions at the head CPI and the rest at the body CPI, so
 *
 *     cpi_p = b_p + (Lh / E[len_p]) * (h_p - b_p)
 *
 * where E[len_p] follows from time-slice expiry (timeSliceCycles
 * cycles at the two-phase rate) truncated by the per-instruction
 * Bernoulli syscall (benchmark.cc), E[min(T, Geom(q))] =
 * (1 - (1-q)^T) / q.  The machine interleaves one occupancy per
 * process per round, so the global CPI is the occupancy-length
 * weighted mean of the per-process CPIs (equal-length occupancies
 * reduce it to the harmonic mean of per-process CPIs in IPC form).
 * The standard error propagates the per-stratum window variances
 * through the same weights.
 */
struct PassEstimate
{
    double cpi = 0.0;
    double stdError = 0.0;
    double halfWidth = 0.0;

    static PassEstimate
    from(const std::vector<Stratum> &strata,
         const std::vector<synth::BenchmarkSpec> &specs,
         Cycles slice_cycles, Count head, Count body, Count n)
    {
        PassEstimate e;
        const std::size_t p = strata.size();
        std::vector<double> cpiOf(p, 0.0), lenOf(p, 0.0),
            varOf(p, 0.0);
        for (std::size_t i = 0; i < p; ++i) {
            const double h = strata[i].headCpi.mean();
            const double b = strata[i].bodyCpi.mean();
            if (h <= 0.0 || b <= 0.0)
                return e; // dead machine; all-zero estimate
            const double lh = static_cast<double>(head);
            // Instructions until slice expiry: Lh at the head rate,
            // the rest at the body rate.
            double expiry =
                lh + (static_cast<double>(slice_cycles) - lh * h) / b;
            expiry = std::max(expiry,
                              lh + static_cast<double>(body));
            const double q =
                specs[i].syscallsPerMInstr * 1e-6;
            double len = expiry;
            if (q > 0.0)
                len = (1.0 - std::pow(1.0 - q, expiry)) / q;
            len = std::max(len, lh + static_cast<double>(body));
            const double kappa = lh / len;
            cpiOf[i] = b + kappa * (h - b);
            lenOf[i] = len;
            varOf[i] =
                (1.0 - kappa) * (1.0 - kappa) *
                    strata[i].bodyCpi.sampleVariance() /
                    static_cast<double>(strata[i].bodyCpi.count()) +
                kappa * kappa *
                    strata[i].headCpi.sampleVariance() /
                    static_cast<double>(strata[i].headCpi.count());
        }
        double lenSum = 0.0;
        for (const double l : lenOf)
            lenSum += l;
        double mean = 0.0, var = 0.0;
        for (std::size_t i = 0; i < p; ++i) {
            const double w = lenOf[i] / lenSum;
            mean += w * cpiOf[i];
            var += w * w * varOf[i];
        }
        e.cpi = mean;
        e.stdError = std::sqrt(var);
        const Count df = n > static_cast<Count>(p)
                             ? n - static_cast<Count>(p)
                             : 1;
        e.halfWidth = studentT95(df) * e.stdError;
        return e;
    }
};

/** Exact full-detail run, marked as a sampled-run fallback. */
SimResult
runFallback(const SystemConfig &config, Count total,
            unsigned mp_level, Count warmup, Cycles watchdog)
{
    Simulator sim(config,
                  Workload::standard(mp_level, warmup + total));
    sim.setWatchdogCycles(watchdog);
    SimResult res = sim.run(total, warmup);
    res.sampling.passes = 1;
    res.sampling.intervals = 0; // the fallback marker
    res.sampling.measuredInstructions = res.instructions;
    res.sampling.cpiMean = res.cpi();
    res.sampling.confidence = kConfidence;
    return res;
}

} // namespace

double
studentT95(Count df)
{
    // Two-sided 95% critical values of Student's t, df 1..30.
    static constexpr double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0)
        return kTable[0];
    if (df <= 30)
        return kTable[df - 1];
    // Bracket rows 40/60/120; the lower bracket's (larger) value
    // keeps the interval conservative between rows.
    if (df < 40)
        return kTable[29];
    if (df < 60)
        return 2.021;
    if (df < 120)
        return 2.000;
    return 1.980;
}

SimResult
runSampled(const SystemConfig &config, const SamplingConfig &plan,
           Count total_instructions, unsigned mp_level,
           Count warmup_instructions, Cycles watchdog_cycles)
{
    const Count body = plan.measureInstructions;
    const Count head = plan.headInstructions;
    const Count warm = plan.warmInstructions;
    if (body == 0 || head == 0)
        gaas_fatal("sampling: measureInstructions and "
                   "headInstructions must be > 0");
    const Count episode = warm + head + body;

    const std::vector<synth::BenchmarkSpec> specs =
        synth::workloadSpecs(mp_level);
    const Count procCount = static_cast<Count>(specs.size());

    // Interval counts are multiples of the process count with at
    // least two episodes per process: the estimator stratifies by
    // process and needs within-stratum variances.
    Count n = roundUpTo(std::max(plan.minIntervals, 2 * procCount),
                        procCount);
    const Count cap = std::max(
        n,
        (std::max(plan.maxIntervals, n) / procCount) * procCount);

    // An episode consumes warm + head + body instructions out of
    // its period; the schedule is feasible only while the period
    // leaves a positive gap to skip.
    const auto feasible = [&](Count k) {
        return k > 0 && total_instructions / k > episode;
    };
    if (!feasible(n))
        return runFallback(config, total_instructions, mp_level,
                           warmup_instructions, watchdog_cycles);

    const std::vector<double> factors =
        refsPerSkippedInstruction(specs);

    SimResult agg;
    PassEstimate est;
    Count passes = 0;
    // The inter-episode gap is fixed by the floor count: growth
    // rounds append episodes at the same stride (the trace sources
    // wrap), so earlier measurements stay valid and a round only
    // costs its additional episodes.  The schedule -- and therefore
    // the result -- is a deterministic function of (config, plan,
    // budget): growth depends only on the measured variances.
    const Count gap = total_instructions / n - episode;

    Simulator sim(config,
                  Workload::standard(mp_level, warmup_instructions +
                                                   total_instructions));
    sim.setWatchdogCycles(watchdog_cycles);
    // The full-detail warmup span is just skipped: every episode
    // brings its own functional warming, and detailed warmup cycles
    // would cost a third of the budget for state the first
    // fast-forward throws away.
    if (warmup_instructions > 0)
        sim.fastForward(refsForGap(factors, warmup_instructions));
    // One warm round at start so the first episodes do not measure
    // a near-empty hierarchy: every process lays down a footprint,
    // twice as deep as a recovery burst.
    for (Count k = 0; k < procCount; ++k) {
        sim.selectProcess(static_cast<std::size_t>(k));
        sim.runWarm(2 * warm);
    }

    // Recover/measure pipeline: episode j fast-forwards every
    // trace EXCEPT the one recovered last episode (so its rebuilt
    // reuse state never goes stale), functionally recovers the
    // next stratum's process, then measures the held-back one --
    // whose L1/TLB lines the recovery bursts in between evicted,
    // the way a real inter-occupancy round does.  Episode 0 only
    // primes the pipeline.
    std::vector<Stratum> strata(static_cast<std::size_t>(procCount));
    const std::vector<Count> gapRefs = refsForGap(factors, gap);
    std::vector<Count> skipRefs(gapRefs.size());
    bool first = true;
    Count j = 0;
    while (true) {
        ++passes;
        for (; j <= n; ++j) {
            const std::size_t rec =
                static_cast<std::size_t>(j % procCount);
            const std::size_t meas = static_cast<std::size_t>(
                (j + procCount - 1) % procCount);
            skipRefs = gapRefs;
            if (j > 0)
                skipRefs[meas] = 0;
            sim.fastForward(skipRefs);
            sim.selectProcess(rec);
            sim.runWarm(warm);
            if (j == 0)
                continue;
            // Head window: pin the recovered process onto a fresh
            // occupancy and measure its switch-in transient.
            sim.selectProcess(meas);
            sim.resetMeasurement();
            SimResult rh = sim.run(head, 0);
            strata[meas].headCpi.add(rh.cpi());
            // Body window: re-pin (a syscall can rotate the
            // process out mid-head) and measure the flat regime.
            sim.selectProcess(meas);
            sim.resetMeasurement();
            SimResult rb = sim.run(body, 0);
            strata[meas].bodyCpi.add(rb.cpi());
            if (first) {
                agg = std::move(rh);
                first = false;
            } else {
                accumulateResult(agg, rh);
            }
            accumulateResult(agg, rb);
        }

        est = PassEstimate::from(strata, specs,
                                 config.timeSliceCycles, head,
                                 body, n);
        const bool met =
            est.cpi > 0.0 &&
            est.halfWidth <= plan.targetRelHalfWidth * est.cpi;
        if (met || n >= cap || passes >= kMaxRounds)
            break;

        // Online sizing: the half-width shrinks as 1/sqrt(n), so
        // n_req = n * (half / target)^2, rounded up to keep the
        // strata balanced.
        const double target = plan.targetRelHalfWidth * est.cpi;
        Count req = cap;
        if (target > 0.0) {
            const double ratio = est.halfWidth / target;
            req = roundUpTo(
                static_cast<Count>(std::ceil(
                    static_cast<double>(n) * ratio * ratio)),
                procCount);
        }
        const Count next = std::min(cap, std::max(req, n + procCount));
        if (next <= n)
            break;
        n = next;
    }

    agg.sampling.passes = passes;
    agg.sampling.intervals = n;
    agg.sampling.measuredInstructions = agg.instructions;
    agg.sampling.warmedInstructions = (2 * procCount + n + 1) * warm;
    agg.sampling.skippedInstructions =
        warmup_instructions + (n + 1) * gap;
    agg.sampling.cpiMean = est.cpi;
    agg.sampling.cpiStdError = est.stdError;
    // Reported half-width = Student-t sampling term + the
    // finite-warming systematic allowance (the sizing loop above
    // compares the sampling term alone against the target).
    agg.sampling.cpiHalfWidth =
        est.halfWidth + plan.warmingBiasRel * est.cpi;
    agg.sampling.confidence = kConfidence;
    // Downstream consumers (figure CSVs, progress lines) read
    // SimResult::cpi(); pin it to the occupancy-weighted estimate.
    // The naive ratio of summed counters would overweight the
    // transient-rich head windows and slow processes, which the
    // scheduler's occupancy mix does not.
    if (agg.instructions > 0 && est.cpi > 0.0)
        agg.cycles = static_cast<Cycles>(std::llround(
            est.cpi * static_cast<double>(agg.instructions)));
    return agg;
}

} // namespace gaas::core
