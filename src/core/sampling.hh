/**
 * @file
 * SMARTS-style sampled simulation [WWFH03-like]: instead of
 * simulating every instruction in detail, systematically visit n
 * measurement intervals spread across the budget.  Between
 * intervals the trace is fast-forwarded (a seek, no simulation);
 * each interval is preceded by a functional-warming burst that
 * updates cache/TLB/write-buffer state without loss accounting, so
 * the detailed measurement starts from a realistically warmed
 * hierarchy.
 *
 * Intervals are stratified by process: a measurement window is far
 * shorter than one 500k-cycle time slice, so each window inevitably
 * measures a single process, and interval j is pinned to process
 * j mod P (Simulator::selectProcess).  Each interval is an
 * *episode* that measures two windows of a fresh scheduling
 * occupancy: the head [0, Lh] -- the expensive switch-in transient
 * where the incoming process finds its L1/TLB state evicted -- and
 * the body [Lh, Lh+Lm], the flat post-transient regime.  A
 * fixed-offset window alone is biased low by the transient's share
 * of every occupancy (~2% here); the estimator recombines head and
 * body with each process's expected occupancy length (time-slice
 * expiry at timeSliceCycles cycles, or earlier Bernoulli-syscall
 * truncation), then averages the per-process CPIs weighted by
 * those occupancy lengths -- the round-robin composition the full
 * machine realizes.  The per-stratum variances feed a confidence
 * interval (Student t at n - P degrees of freedom, 95%); the
 * controller grows n online -- in multiples of P -- until the
 * sampling term meets the relative-precision target.  The reported
 * half-width adds a documented systematic allowance for finite
 * warming depth on top of the sampling term (see
 * SamplingConfig::warmingBiasRel).
 *
 * Accuracy contract: the full-detail CPI of the same (config, mp,
 * budget) point lies within the reported CI with the stated
 * confidence -- the validation suite (test_sampling.cc) checks it
 * point by point.
 */

#ifndef GAAS_CORE_SAMPLING_HH
#define GAAS_CORE_SAMPLING_HH

#include "core/config.hh"
#include "core/cpi.hh"
#include "util/types.hh"

namespace gaas::core
{

/** Knobs of the sampled-simulation controller. */
struct SamplingConfig
{
    /** Master switch; false means full-detail simulation and every
     *  output stays byte-identical to the unsampled build. */
    bool enabled = false;

    /** Detailed instructions of the body window per episode (the
     *  flat post-transient measurement). */
    Count measureInstructions = 14'000;

    /** Detailed instructions of the head window per episode: the
     *  switch-in transient, measured from the pinned process's
     *  first post-switch instruction.  Long enough to span the bulk
     *  of the transient; the body starts where the head ends, so
     *  the pair tiles the occupancy with no unmodelled gap. */
    Count headInstructions = 16'000;

    /** Functionally warmed instructions per recovery burst: after
     *  its trace is fast-forwarded, a process must re-establish its
     *  short-term reuse state (array-segment rescans, hot stack and
     *  heap lines) before a measurement of it means anything.  Each
     *  episode recovers the *next* stratum's process, then measures
     *  the one recovered last episode -- whose own trace was held
     *  back from that episode's fast-forward, so its recovered
     *  state is never stale, while the intervening bursts evict its
     *  L1/TLB lines the way a real inter-occupancy round does.
     *  Also half the per-process length of the one-time start-up
     *  warm round. */
    Count warmInstructions = 32'000;

    /** Episodes in the first sizing round (also the floor).
     *  Rounded up to a multiple of the process count, with at least
     *  two episodes per process: the stratified CI needs a
     *  within-stratum variance.  Three per process keeps the
     *  first-round CI tight enough that the sizing loop almost
     *  always stops immediately. */
    Count minIntervals = 24;

    /** Hard ceiling on episodes (rounded down to a multiple of the
     *  process count). */
    Count maxIntervals = 40;

    /** Stop when t * stdError <= target * mean (the relative 95%
     *  half-width of the *sampling* term); 0.03 = +/-3%.  Tighter
     *  targets grow the episode count online (up to maxIntervals),
     *  each growth round costing only its additional episodes. */
    double targetRelHalfWidth = 0.03;

    /** Relative systematic allowance for finite warming depth,
     *  added to the reported half-width on top of the Student-t
     *  sampling term.  Episodic warming rebuilds short-term reuse
     *  exactly but cannot re-accumulate the deep L2 residency (the
     *  Pareto-tail heap/global lines) a full-detail run builds over
     *  tens of millions of references, so large-L2 points read
     *  slightly high; the fig6 ladder measures the effect at under
     *  +1% below 256KW, growing to about +3% at 1024KW -- the
     *  default covers that worst case.  Continuous functional
     *  warming would remove it but costs detail-speed work over the
     *  whole budget, forfeiting the speedup. */
    double warmingBiasRel = 0.03;
};

/**
 * Two-sided 95% Student-t multiplier for @p df degrees of freedom.
 * Between tabulated rows the multiplier of the *lower* df is used,
 * so the interval is never narrower than the exact value.
 */
double studentT95(Count df);

/**
 * Run one (config, mp level, instruction budget) point under the
 * sampled regime and return the aggregate result: the measured
 * counters of all intervals summed (accumulateResult), plus a
 * filled SimResult::sampling summary.  cycles is rescaled so the
 * headline cpi() equals sampling.cpiMean, the stratified estimate
 * -- figure CSVs and progress lines then report the same number
 * the CI describes.  The full-detail warmup span, like the gaps,
 * is skipped rather than simulated; each interval brings its own
 * functional warming.
 *
 * Falls back to an exact full-detail run (sampling.intervals == 0)
 * when the budget cannot fit minIntervals warm+measure bursts.
 *
 * Deterministic: same inputs, same result, independent of how many
 * sizing passes earlier configurations needed.
 */
SimResult runSampled(const SystemConfig &config,
                     const SamplingConfig &plan,
                     Count total_instructions, unsigned mp_level = 8,
                     Count warmup_instructions = 0,
                     Cycles watchdog_cycles = 0);

} // namespace gaas::core

#endif // GAAS_CORE_SAMPLING_HH
