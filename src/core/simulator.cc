#include "simulator.hh"

#include "obs/metrics.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace gaas::core
{

Simulator::Simulator(const SystemConfig &config, Workload workload)
    : cfg(config), sys(config)
{
    auto processes = workload.take();
    if (processes.empty())
        gaas_fatal("Simulator requires at least one process");
    procs.reserve(processes.size());
    for (auto &p : processes) {
        ProcState state;
        state.stallAcc.setRate(p.baseCpi - 1.0);
        state.proc = std::move(p);
        procs.push_back(std::move(state));
    }
    alive = procs.size();
    sliceEnd = cfg.timeSliceCycles;
}

bool
Simulator::refill(ProcState &p)
{
    p.bufLen = p.proc.source->nextBatch(p.buffer.data(), kRefBatch);
    p.bufPos = 0;
    return p.bufLen > 0;
}

bool
Simulator::takeRef(ProcState &p, trace::MemRef &ref)
{
    if (p.bufPos == p.bufLen && !refill(p))
        return false;
    ref = p.buffer[p.bufPos++];
    return true;
}

const trace::MemRef *
Simulator::peekRef(ProcState &p)
{
    if (p.bufPos == p.bufLen && !refill(p))
        return nullptr;
    return &p.buffer[p.bufPos];
}

bool
Simulator::stepInstruction(ProcState &p, Cycles now, Cycles &cycles,
                           bool &syscall)
{
    trace::MemRef ref;
    if (!takeRef(p, ref))
        return false;
    if (!ref.isInst()) {
        gaas_fatal("malformed trace for process ", p.proc.name,
                   ": data reference without a preceding "
                   "instruction");
    }

    // Base cost: one cycle plus this benchmark's CPU stalls (loads,
    // branch delays, multi-cycle FP).
    const Cycles stall_cycles = p.stallAcc.tick();
    cpuStallCycles += stall_cycles;
    cycles = 1 + stall_cycles;

    cycles += sys.ifetch(now, p.proc.pid, ref.addr);

    // At most one data reference belongs to this instruction.
    if (const trace::MemRef *data = peekRef(p);
        data && data->isData()) {
        trace::MemRef dref;
        takeRef(p, dref);
        if (dref.isLoad()) {
            cycles += sys.load(now + cycles, p.proc.pid, dref.addr);
        } else {
            cycles += sys.store(now + cycles, p.proc.pid, dref.addr,
                                dref.partialWord);
        }
    }

    syscall = ref.syscall;
    ++p.instructions;
    return true;
}

void
Simulator::runLoop(Count n)
{
    auto next_alive = [&](std::size_t from) {
        std::size_t idx = from;
        do {
            idx = (idx + 1) % procs.size();
        } while (!procs[idx].alive);
        return idx;
    };

    if (!procs[current].alive && alive > 0)
        current = next_alive(current);

    Count executed = 0;
    while (executed < n && alive > 0) {
        ProcState &p = procs[current];

        Cycles cycles = 0;
        bool syscall = false;
        if (!stepInstruction(p, now, cycles, syscall)) {
            // Trace exhausted (non-looping workload): retire the
            // process and hand the CPU to the next one.
            p.alive = false;
            --alive;
            if (alive == 0)
                break;
            current = next_alive(current);
            sliceEnd = now + cfg.timeSliceCycles;
            continue;
        }

        if (watchdogCycles != 0 && cycles > watchdogCycles) {
            gaas_error(ErrorCode::Watchdog, "config '", cfg.name,
                       "': one instruction cost ", cycles,
                       " cycles (watchdog budget ", watchdogCycles,
                       ")");
        }

        now += cycles;
        ++executed;
        ++instructions;

        // A voluntary system call switches immediately; otherwise
        // the process runs out its time slice (Section 3).
        if (syscall || now >= sliceEnd) {
            ++contextSwitches;
            if (syscall)
                ++syscallSwitches;
            if (alive > 1)
                current = next_alive(current);
            sliceEnd = now + cfg.timeSliceCycles;
        }
    }
}

void
Simulator::resetMeasurement()
{
    sys.resetStats();
    cpuStallCycles = 0;
    instructions = 0;
    contextSwitches = 0;
    syscallSwitches = 0;
    measureStartCycle = now;
}

SimResult
Simulator::run(Count total_instructions, Count warmup_instructions)
{
    const obs::Stopwatch wall;
    if (warmup_instructions > 0) {
        runLoop(warmup_instructions);
        resetMeasurement();
    }
    runLoop(total_instructions);
    const double loop_seconds = wall.seconds();

    SimResult res;
    {
        // Attribute result assembly (stats gathering) separately from
        // the simulation loop, so sweep telemetry can show where the
        // host time went.
        obs::ScopedTimer stats_timer(res.hostStatsSeconds);
        res.configName = cfg.name;
        res.instructions = instructions;
        res.cycles = now - measureStartCycle;
        res.cpuStallCycles = cpuStallCycles;
        res.contextSwitches = contextSwitches;
        res.syscallSwitches = syscallSwitches;
        res.comp = sys.components();
        res.sys = sys.stats();
    }
    res.hostSeconds = loop_seconds;
    return res;
}

SimResult
runStandard(const SystemConfig &config, Count total_instructions,
            unsigned mp_level, Count warmup_instructions)
{
    Simulator sim(config,
                  Workload::standard(mp_level,
                                     warmup_instructions +
                                         total_instructions));
    return sim.run(total_instructions, warmup_instructions);
}

} // namespace gaas::core
