#include "simulator.hh"

#include <cstdlib>

#include "obs/metrics.hh"
#include "trace/packed.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace gaas::core
{

namespace
{

/** GAAS_SIM_GENERIC=1 forces the generic access path everywhere. */
bool
envForcesGeneric()
{
    const char *v = std::getenv("GAAS_SIM_GENERIC");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

} // namespace

Simulator::Simulator(const SystemConfig &config, Workload workload)
    : cfg(config), sys(config)
{
    auto processes = workload.take();
    if (processes.empty())
        gaas_fatal("Simulator requires at least one process");
    procs.reserve(processes.size());
    for (auto &p : processes) {
        ProcState state;
        state.stallAcc.setRate(p.baseCpi - 1.0);
        state.proc = std::move(p);
        procs.push_back(std::move(state));
    }
    alive = procs.size();
    sliceEnd = cfg.timeSliceCycles;

    forceGeneric = envForcesGeneric();
    const LoopFns fns = pickLoop();
    loopFn = fns.detail;
    warmFn = fns.warm;
    prefetchStoreL2 = isWriteThrough(cfg.writePolicy);
}

void
Simulator::setForceGenericPath(bool force)
{
    forceGeneric = force || envForcesGeneric();
    const LoopFns fns = pickLoop();
    loopFn = fns.detail;
    warmFn = fns.warm;
}

Simulator::LoopFns
Simulator::pickLoop()
{
    genericPath = true;
    if (forceGeneric)
        return loopFnsFor<GenericAccessSpec>();

    // Specialization needs both L1s in one geometry class, so the
    // whole probe-path choice folds at compile time; mixed
    // geometries (never used by the paper's design study) fall back
    // to the generic path.
    const bool dm = cfg.l1i.assoc == 1 && cfg.l1d.assoc == 1;
    const bool sa = cfg.l1i.assoc > 1 && cfg.l1d.assoc > 1;
    if (!dm && !sa)
        return loopFnsFor<GenericAccessSpec>();

    genericPath = false;
    switch (cfg.writePolicy) {
      case WritePolicy::WriteBack:
        return dm ? loopFnsFor<
                        FastAccessSpec<true, WritePolicy::WriteBack>>()
                  : loopFnsFor<FastAccessSpec<
                        false, WritePolicy::WriteBack>>();
      case WritePolicy::WriteMissInvalidate:
        return dm ? loopFnsFor<FastAccessSpec<
                        true, WritePolicy::WriteMissInvalidate>>()
                  : loopFnsFor<FastAccessSpec<
                        false, WritePolicy::WriteMissInvalidate>>();
      case WritePolicy::WriteOnly:
        return dm ? loopFnsFor<
                        FastAccessSpec<true, WritePolicy::WriteOnly>>()
                  : loopFnsFor<FastAccessSpec<
                        false, WritePolicy::WriteOnly>>();
      case WritePolicy::SubblockPlacement:
        return dm ? loopFnsFor<FastAccessSpec<
                        true, WritePolicy::SubblockPlacement>>()
                  : loopFnsFor<FastAccessSpec<
                        false, WritePolicy::SubblockPlacement>>();
    }
    genericPath = true;
    return loopFnsFor<GenericAccessSpec>();
}

bool
Simulator::refill(ProcState &p)
{
    // Packed replay first: arena-backed sources hand over raw
    // 4-byte words (trace/packed.hh) the step loop decodes in
    // registers, skipping the per-record MemRef unpack entirely.
    // The first refill against a source with no packed path latches
    // packedMode off for the process's lifetime.
    if (p.packedMode) {
        const std::size_t got = p.proc.source->nextBatchPacked(
            p.pbuffer.data(), kRefBatch);
        if (got != trace::TraceSource::kNoPacked) {
            p.bufLen = got;
            p.bufPos = 0;
            if (prefetchStoreL2) {
                for (std::size_t i = 0; i < got; ++i) {
                    const std::uint32_t w = p.pbuffer[i];
                    if (trace::packed::isStore(w))
                        sys.prefetchL2Data(trace::packed::addrOf(w));
                }
            }
            return got > 0;
        }
        p.packedMode = false;
    }

    p.bufLen = p.proc.source->nextBatch(p.buffer.data(), kRefBatch);
    p.bufPos = 0;

    // Under write-through policies every store probes the
    // data-side L2, whose multi-megabyte tag arrays dwarf the host
    // cache; prefetch those sets one batch ahead.  The set index
    // comes from address bits the OS page colouring keeps equal
    // between virtual and physical (Section 2), so the untranslated
    // address selects the right set -- and a stale prefetch only
    // costs bandwidth, never correctness.  The L1 stores are small
    // enough to stay host-cache-resident on their own; prefetching
    // them too was measured a net loss (the sweep costs more than
    // the hits it saves).
    if (prefetchStoreL2) {
        for (std::size_t i = 0; i < p.bufLen; ++i) {
            const trace::MemRef &r = p.buffer[i];
            if (r.isStore())
                sys.prefetchL2Data(r.addr);
        }
    }
    return p.bufLen > 0;
}

template <class Spec>
bool
Simulator::stepInstruction(ProcState &p, Cycles now, Cycles &cycles,
                           bool &syscall)
{
    // Work on the refill buffer in place: one bounds check per ref,
    // no 16-byte MemRef copies, and in packed mode the record
    // decodes straight into registers.  The per-ref packedMode
    // branches cost nothing: the flag is constant per process, so
    // the host predicts them perfectly.
    if (p.bufPos == p.bufLen && !refill(p)) [[unlikely]]
        return false;

    const auto malformed = [&]() [[noreturn]] {
        gaas_fatal("malformed trace for process ", p.proc.name,
                   ": data reference without a preceding "
                   "instruction");
    };

    // A refill below would overwrite the buffer slot the
    // instruction record occupies; decode everything needed into
    // locals first.
    Addr iaddr;
    if (p.packedMode) {
        const std::uint32_t w = p.pbuffer[p.bufPos++];
        if (!trace::packed::isInst(w)) [[unlikely]]
            malformed();
        iaddr = trace::packed::addrOf(w);
        syscall = trace::packed::flagOf(w);
    } else {
        const trace::MemRef &ref = p.buffer[p.bufPos++];
        if (!ref.isInst()) [[unlikely]]
            malformed();
        iaddr = ref.addr;
        syscall = ref.syscall;
    }

    // Base cost: one cycle plus this benchmark's CPU stalls (loads,
    // branch delays, multi-cycle FP).
    const Cycles stall_cycles = p.stallAcc.tick();
    cpuStallCycles += stall_cycles;
    cycles = 1 + stall_cycles;

    cycles += sys.ifetchT<Spec>(now, p.proc.pid, iaddr);

    // At most one data reference belongs to this instruction (it may
    // sit in the next batch; a failed refill leaves the buffer empty
    // and the instruction simply has no data ref).
    if (p.bufPos == p.bufLen) [[unlikely]]
        refill(p);
    if (p.bufPos < p.bufLen) [[likely]] {
        if (p.packedMode) {
            const std::uint32_t w = p.pbuffer[p.bufPos];
            const trace::RefKind kind = trace::packed::kindOf(w);
            if (kind != trace::RefKind::Inst) {
                ++p.bufPos;
                const Addr daddr = trace::packed::addrOf(w);
                if (kind == trace::RefKind::Load) {
                    cycles += sys.loadT<Spec>(now + cycles,
                                              p.proc.pid, daddr);
                } else {
                    cycles += sys.storeT<Spec>(
                        now + cycles, p.proc.pid, daddr,
                        trace::packed::flagOf(w));
                }
            }
        } else {
            const trace::MemRef &dref = p.buffer[p.bufPos];
            if (dref.isData()) {
                ++p.bufPos;
                if (dref.isLoad()) {
                    cycles += sys.loadT<Spec>(now + cycles,
                                              p.proc.pid, dref.addr);
                } else {
                    cycles += sys.storeT<Spec>(
                        now + cycles, p.proc.pid, dref.addr,
                        dref.partialWord);
                }
            }
        }
    }

    ++p.instructions;
    return true;
}

void
Simulator::runLoop(Count n)
{
    (this->*loopFn)(n);
}

template <class Spec>
void
Simulator::runLoopT(Count n)
{
    auto next_alive = [&](std::size_t from) {
        std::size_t idx = from;
        do {
            idx = (idx + 1) % procs.size();
        } while (!procs[idx].alive);
        return idx;
    };

    if (!procs[current].alive && alive > 0)
        current = next_alive(current);

    Count executed = 0;
    while (executed < n && alive > 0) {
        ProcState &p = procs[current];

        Cycles cycles = 0;
        bool syscall = false;
        if (!stepInstruction<Spec>(p, now, cycles, syscall)) {
            // Trace exhausted (non-looping workload): retire the
            // process and hand the CPU to the next one.
            p.alive = false;
            --alive;
            if (alive == 0)
                break;
            current = next_alive(current);
            sliceEnd = now + cfg.timeSliceCycles;
            continue;
        }

        if (watchdogCycles != 0 && cycles > watchdogCycles)
            [[unlikely]] {
            gaas_error(ErrorCode::Watchdog, "config '", cfg.name,
                       "': one instruction cost ", cycles,
                       " cycles (watchdog budget ", watchdogCycles,
                       ")");
        }

        now += cycles;
        ++executed;
        ++instructions;

        // A voluntary system call switches immediately; otherwise
        // the process runs out its time slice (Section 3).
        if (syscall || now >= sliceEnd) [[unlikely]] {
            ++contextSwitches;
            if (syscall)
                ++syscallSwitches;
            if (alive > 1)
                current = next_alive(current);
            sliceEnd = now + cfg.timeSliceCycles;
        }
    }
}

template <class Spec>
bool
Simulator::stepWarmInstruction(ProcState &p, Cycles now,
                               Cycles &cycles, bool &syscall)
{
    // Structurally stepInstruction with the detailed access calls
    // swapped for their warm twins: the base cycles still advance
    // the clock (so write-buffer entry completion times and the
    // scheduler stay meaningful), but memory-system stalls are
    // neither computed nor charged.
    if (p.bufPos == p.bufLen && !refill(p)) [[unlikely]]
        return false;

    const auto malformed = [&]() [[noreturn]] {
        gaas_fatal("malformed trace for process ", p.proc.name,
                   ": data reference without a preceding "
                   "instruction");
    };

    Addr iaddr;
    if (p.packedMode) {
        const std::uint32_t w = p.pbuffer[p.bufPos++];
        if (!trace::packed::isInst(w)) [[unlikely]]
            malformed();
        iaddr = trace::packed::addrOf(w);
        syscall = trace::packed::flagOf(w);
    } else {
        const trace::MemRef &ref = p.buffer[p.bufPos++];
        if (!ref.isInst()) [[unlikely]]
            malformed();
        iaddr = ref.addr;
        syscall = ref.syscall;
    }

    cycles = 1 + p.stallAcc.tick();

    sys.warmIfetchT<Spec>(now, p.proc.pid, iaddr);

    if (p.bufPos == p.bufLen) [[unlikely]]
        refill(p);
    if (p.bufPos < p.bufLen) [[likely]] {
        if (p.packedMode) {
            const std::uint32_t w = p.pbuffer[p.bufPos];
            const trace::RefKind kind = trace::packed::kindOf(w);
            if (kind != trace::RefKind::Inst) {
                ++p.bufPos;
                const Addr daddr = trace::packed::addrOf(w);
                if (kind == trace::RefKind::Load) {
                    sys.warmLoadT<Spec>(now + cycles, p.proc.pid,
                                        daddr);
                } else {
                    sys.warmStoreT<Spec>(now + cycles, p.proc.pid,
                                         daddr,
                                         trace::packed::flagOf(w));
                }
            }
        } else {
            const trace::MemRef &dref = p.buffer[p.bufPos];
            if (dref.isData()) {
                ++p.bufPos;
                if (dref.isLoad()) {
                    sys.warmLoadT<Spec>(now + cycles, p.proc.pid,
                                        dref.addr);
                } else {
                    sys.warmStoreT<Spec>(now + cycles, p.proc.pid,
                                         dref.addr, dref.partialWord);
                }
            }
        }
    }

    ++p.instructions;
    return true;
}

template <class Spec>
void
Simulator::warmLoopT(Count n)
{
    // runLoopT's scheduler, minus the watchdog and every measured
    // counter: processes still interleave on slices and syscalls so
    // the warmed hierarchy sees the interleaving the measurement
    // will.
    auto next_alive = [&](std::size_t from) {
        std::size_t idx = from;
        do {
            idx = (idx + 1) % procs.size();
        } while (!procs[idx].alive);
        return idx;
    };

    if (!procs[current].alive && alive > 0)
        current = next_alive(current);

    Count executed = 0;
    while (executed < n && alive > 0) {
        ProcState &p = procs[current];

        Cycles cycles = 0;
        bool syscall = false;
        if (!stepWarmInstruction<Spec>(p, now, cycles, syscall)) {
            p.alive = false;
            --alive;
            if (alive == 0)
                break;
            current = next_alive(current);
            sliceEnd = now + cfg.timeSliceCycles;
            continue;
        }

        now += cycles;
        ++executed;

        if (syscall || now >= sliceEnd) [[unlikely]] {
            if (alive > 1)
                current = next_alive(current);
            sliceEnd = now + cfg.timeSliceCycles;
        }
    }
}

void
Simulator::runWarm(Count instructions_)
{
    (this->*warmFn)(instructions_);
}

void
Simulator::selectProcess(std::size_t index)
{
    if (procs.empty() || alive == 0)
        return;
    index %= procs.size();
    for (std::size_t step = 0; step < procs.size(); ++step) {
        const std::size_t cand = (index + step) % procs.size();
        if (procs[cand].alive) {
            current = cand;
            break;
        }
    }
    sliceEnd = now + cfg.timeSliceCycles;
}

void
Simulator::resyncProcess(ProcState &p)
{
    // A skip can land mid-instruction (between an Inst record and
    // its data record); drop records until the stream stands at the
    // next instruction so the step loop's grammar holds.
    while (true) {
        if (p.bufPos == p.bufLen && !refill(p))
            return; // exhausted; the step loop retires the process
        if (p.packedMode) {
            if (trace::packed::isInst(p.pbuffer[p.bufPos]))
                return;
        } else {
            if (p.buffer[p.bufPos].isInst())
                return;
        }
        ++p.bufPos;
    }
}

void
Simulator::fastForward(const std::vector<Count> &per_process_refs)
{
    if (per_process_refs.size() != procs.size()) {
        gaas_fatal("fastForward wants one ref count per process (",
                   procs.size(), "), got ",
                   per_process_refs.size());
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
        ProcState &p = procs[i];
        Count want = per_process_refs[i];
        if (want == 0 || !p.alive)
            continue;
        // Consume what the refill buffer already holds, then seek
        // the source for the rest.
        const Count buffered =
            static_cast<Count>(p.bufLen - p.bufPos);
        if (want <= buffered) {
            p.bufPos += static_cast<std::size_t>(want);
        } else {
            p.bufPos = 0;
            p.bufLen = 0;
            p.proc.source->skip(
                static_cast<std::size_t>(want - buffered));
        }
        resyncProcess(p);
    }
    // The jump invalidates the running slice; start a fresh one.
    sliceEnd = now + cfg.timeSliceCycles;
}

void
Simulator::resetMeasurement()
{
    sys.resetStats();
    cpuStallCycles = 0;
    instructions = 0;
    contextSwitches = 0;
    syscallSwitches = 0;
    measureStartCycle = now;
}

SimResult
Simulator::run(Count total_instructions, Count warmup_instructions)
{
    const obs::Stopwatch wall;
    if (warmup_instructions > 0) {
        runLoop(warmup_instructions);
        resetMeasurement();
    }
    runLoop(total_instructions);
    const double loop_seconds = wall.seconds();

    SimResult res;
    {
        // Attribute result assembly (stats gathering) separately from
        // the simulation loop, so sweep telemetry can show where the
        // host time went.
        obs::ScopedTimer stats_timer(res.hostStatsSeconds);
        res.configName = cfg.name;
        res.instructions = instructions;
        res.cycles = now - measureStartCycle;
        res.cpuStallCycles = cpuStallCycles;
        res.contextSwitches = contextSwitches;
        res.syscallSwitches = syscallSwitches;
        res.comp = sys.components();
        res.sys = sys.stats();
    }
    res.hostSeconds = loop_seconds;
    return res;
}

SimResult
runStandard(const SystemConfig &config, Count total_instructions,
            unsigned mp_level, Count warmup_instructions)
{
    Simulator sim(config,
                  Workload::standard(mp_level,
                                     warmup_instructions +
                                         total_instructions));
    return sim.run(total_instructions, warmup_instructions);
}

} // namespace gaas::core
