/**
 * @file
 * The trace-driven simulator: multiplexes the workload's processes
 * over one CacheSystem under the round-robin scheduler of Section 3
 * (500k-cycle time slices; every voluntary system call forces a
 * context switch) and produces a SimResult.
 */

#ifndef GAAS_CORE_SIMULATOR_HH
#define GAAS_CORE_SIMULATOR_HH

#include <array>
#include <cstddef>
#include <vector>

#include "core/cache_system.hh"
#include "core/config.hh"
#include "core/cpi.hh"
#include "core/workload.hh"
#include "util/random.hh"

namespace gaas::core
{

/** The trace-driven simulator; see file comment. */
class Simulator
{
  public:
    /**
     * @param config   validated system configuration
     * @param workload processes to schedule (consumed)
     */
    Simulator(const SystemConfig &config, Workload workload);

    /**
     * Run until @p total_instructions have executed (or every
     * process's trace is exhausted, for non-looping workloads).
     *
     * @param warmup_instructions instructions executed before the
     *        statistics are reset, so measurements start from a
     *        warmed cache hierarchy (the long-trace discipline of
     *        [BKW90]); excluded from the reported counts
     */
    SimResult run(Count total_instructions,
                  Count warmup_instructions = 0);

    /** The cache system (for inspection after run()). */
    const CacheSystem &system() const { return sys; }

    /**
     * Arm the zero-progress watchdog: if any single instruction
     * costs more than @p budget_cycles, run() throws
     * SimError(Watchdog) instead of burning the cycle budget on a
     * stuck machine (a livelocked write buffer, a pathological
     * configuration).  0 (the default) disables the check.
     */
    void setWatchdogCycles(Cycles budget_cycles)
    {
        watchdogCycles = budget_cycles;
    }

  private:
    /** References buffered per process per TraceSource::nextBatch
     *  call, so the hot loop pays one virtual call per kRefBatch
     *  references instead of one per reference. */
    static constexpr std::size_t kRefBatch = 64;

    /** Scheduler-side state of one process. */
    struct ProcState
    {
        Process proc;
        FractionAccumulator stallAcc;
        bool alive = true;
        Count instructions = 0;

        /** @name Refill buffer (buffer[bufPos..bufLen) pending) */
        ///@{
        std::array<trace::MemRef, kRefBatch> buffer;
        std::size_t bufPos = 0;
        std::size_t bufLen = 0;
        ///@}
    };

    /** Refill @p p's buffer; @return false if the trace is
     *  exhausted. */
    bool refill(ProcState &p);

    bool takeRef(ProcState &p, trace::MemRef &ref);
    const trace::MemRef *peekRef(ProcState &p);

    /**
     * Execute one instruction of @p p at time @p now.
     *
     * @param cycles   filled with the instruction's total cycles
     * @param syscall  true if the instruction was a system call
     * @retval false   the process's trace is exhausted
     */
    bool stepInstruction(ProcState &p, Cycles now, Cycles &cycles,
                         bool &syscall);

    /** Advance the scheduler/machine by up to @p n instructions. */
    void runLoop(Count n);

    /** Zero the measured statistics (cache state persists). */
    void resetMeasurement();

    SystemConfig cfg;
    CacheSystem sys;
    std::vector<ProcState> procs;

    /** @name Persistent machine/scheduler state */
    ///@{
    Cycles now = 0;
    std::size_t current = 0;
    std::size_t alive = 0;
    Cycles sliceEnd = 0;
    Cycles watchdogCycles = 0; //!< 0 = watchdog off
    ///@}

    /** @name Measured since the last resetMeasurement() */
    ///@{
    Cycles cpuStallCycles = 0;
    Cycles measureStartCycle = 0;
    Count instructions = 0;
    Count contextSwitches = 0;
    Count syscallSwitches = 0;
    ///@}
};

/**
 * One-call convenience: build the standard level-8 workload, run
 * @p total_instructions on @p config, return the result.
 */
SimResult runStandard(const SystemConfig &config,
                      Count total_instructions,
                      unsigned mp_level = 8,
                      Count warmup_instructions = 0);

} // namespace gaas::core

#endif // GAAS_CORE_SIMULATOR_HH
