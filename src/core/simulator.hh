/**
 * @file
 * The trace-driven simulator: multiplexes the workload's processes
 * over one CacheSystem under the round-robin scheduler of Section 3
 * (500k-cycle time slices; every voluntary system call forces a
 * context switch) and produces a SimResult.
 */

#ifndef GAAS_CORE_SIMULATOR_HH
#define GAAS_CORE_SIMULATOR_HH

#include <array>
#include <cstddef>
#include <vector>

#include "core/cache_system.hh"
#include "core/config.hh"
#include "core/cpi.hh"
#include "core/workload.hh"
#include "util/random.hh"

namespace gaas::core
{

/** The trace-driven simulator; see file comment. */
class Simulator
{
  public:
    /**
     * @param config   validated system configuration
     * @param workload processes to schedule (consumed)
     */
    Simulator(const SystemConfig &config, Workload workload);

    /**
     * Run until @p total_instructions have executed (or every
     * process's trace is exhausted, for non-looping workloads).
     *
     * @param warmup_instructions instructions executed before the
     *        statistics are reset, so measurements start from a
     *        warmed cache hierarchy (the long-trace discipline of
     *        [BKW90]); excluded from the reported counts
     */
    SimResult run(Count total_instructions,
                  Count warmup_instructions = 0);

    /**
     * @name Sampled-simulation hooks (core/sampling.hh)
     * The sampling controller drives the machine through its
     * interval schedule with these three: fastForward() seeks each
     * process's trace past a gap without simulating it,
     * runWarm() executes instructions through the functional-warming
     * access paths (hierarchy state evolves, no loss accounting),
     * and resetMeasurement() starts a measurement interval, whose
     * counters the next run(n, 0) call then reports.
     */
    ///@{
    /**
     * Skip @p per_process_refs[i] trace *references* (not
     * instructions) of process i without simulating them, then
     * resynchronize each stream to the next instruction boundary so
     * the step loop never sees a dangling data record.  Time slices
     * restart after the jump.
     */
    void fastForward(const std::vector<Count> &per_process_refs);

    /** Advance the machine by up to @p instructions through the
     *  functional-warming paths (same scheduler, no stats). */
    void runWarm(Count instructions);

    /**
     * Pin the scheduler to process @p index (mod process count;
     * advanced to the next alive process if that one retired) and
     * start a fresh time slice.  The sampling controller uses this
     * to stratify measurement intervals by process: one 500k-cycle
     * slice dwarfs a measurement interval, so without pinning every
     * interval would measure whatever process happened to hold the
     * CPU, not the round-robin mix.
     */
    void selectProcess(std::size_t index);

    /** Zero the measured statistics while keeping all cache, TLB,
     *  write-buffer and scheduler state (the warmed-hierarchy
     *  measurement discipline; run() calls this itself after its
     *  warmup phase). */
    void resetMeasurement();
    ///@}

    /** The cache system (for inspection after run()). */
    const CacheSystem &system() const { return sys; }

    /**
     * Force the generic (runtime-dispatched) access path instead of
     * the compile-time specialized simulate loop the configuration
     * would normally select.  The two paths are bit-identical by
     * construction; the equivalence tests prove it through this
     * switch.  Honoured from the environment too: set
     * GAAS_SIM_GENERIC=1 to force the generic path process-wide.
     */
    void setForceGenericPath(bool force);

    /** True if the generic path is in use (forced or fallback). */
    bool usingGenericPath() const { return genericPath; }

    /**
     * Arm the zero-progress watchdog: if any single instruction
     * costs more than @p budget_cycles, run() throws
     * SimError(Watchdog) instead of burning the cycle budget on a
     * stuck machine (a livelocked write buffer, a pathological
     * configuration).  0 (the default) disables the check.
     */
    void setWatchdogCycles(Cycles budget_cycles)
    {
        watchdogCycles = budget_cycles;
    }

  private:
    /** References buffered per process per TraceSource::nextBatch
     *  call, so the hot loop pays one virtual call per kRefBatch
     *  references instead of one per reference. */
    static constexpr std::size_t kRefBatch = 256;

    /** Scheduler-side state of one process. */
    struct ProcState
    {
        Process proc;
        FractionAccumulator stallAcc;
        bool alive = true;
        Count instructions = 0;

        /**
         * @name Refill buffer ([bufPos..bufLen) pending)
         * Two representations: sources with packed storage (arena
         * replay) fill pbuffer with raw 4-byte words the step loop
         * decodes straight into registers; everything else fills
         * buffer with unpacked MemRefs.  packedMode picks the
         * representation, latched off forever on the first refill
         * where the source reports no packed path.
         */
        ///@{
        std::array<trace::MemRef, kRefBatch> buffer;
        std::array<std::uint32_t, kRefBatch> pbuffer;
        std::size_t bufPos = 0;
        std::size_t bufLen = 0;
        bool packedMode = true;
        ///@}
    };

    /** Refill @p p's buffer; @return false if the trace is
     *  exhausted. */
    bool refill(ProcState &p);

    /**
     * Execute one instruction of @p p at time @p now, through the
     * access path selected by @p Spec.
     *
     * @param cycles   filled with the instruction's total cycles
     * @param syscall  true if the instruction was a system call
     * @retval false   the process's trace is exhausted
     */
    template <class Spec>
    bool stepInstruction(ProcState &p, Cycles now, Cycles &cycles,
                         bool &syscall);

    /** stepInstruction through the functional-warming access paths:
     *  state updates only, base cycles keep the clock moving. */
    template <class Spec>
    bool stepWarmInstruction(ProcState &p, Cycles now, Cycles &cycles,
                             bool &syscall);

    /** Advance the scheduler/machine by up to @p n instructions
     *  (dispatches to the runLoopT selected at construction). */
    void runLoop(Count n);

    /** The simulate loop, specialized per access-path spec. */
    template <class Spec>
    void runLoopT(Count n);

    /** The warming loop: runLoopT's scheduler structure over
     *  stepWarmInstruction, with no measured counters. */
    template <class Spec>
    void warmLoopT(Count n);

    using LoopFn = void (Simulator::*)(Count);

    /** The detail/warm loop pair one access-path spec yields. */
    struct LoopFns
    {
        LoopFn detail = nullptr;
        LoopFn warm = nullptr;
    };

    template <class Spec>
    static constexpr LoopFns
    loopFnsFor()
    {
        return {&Simulator::runLoopT<Spec>,
                &Simulator::warmLoopT<Spec>};
    }

    /** Select the loop instantiations for the configuration
     *  (also records the choice in genericPath). */
    LoopFns pickLoop();

    /** Drop buffered references until the stream stands at an
     *  instruction record (or is exhausted), after a fastForward. */
    void resyncProcess(ProcState &p);

    SystemConfig cfg;
    CacheSystem sys;
    std::vector<ProcState> procs;

    /** @name Persistent machine/scheduler state */
    ///@{
    Cycles now = 0;
    std::size_t current = 0;
    std::size_t alive = 0;
    Cycles sliceEnd = 0;
    Cycles watchdogCycles = 0; //!< 0 = watchdog off
    ///@}

    /** @name Access-path selection (fixed per configuration) */
    ///@{
    LoopFn loopFn = nullptr;
    LoopFn warmFn = nullptr;
    bool forceGeneric = false; //!< setter or GAAS_SIM_GENERIC
    bool genericPath = true;   //!< what pickLoop() last chose
    /** Write-through stores probe L2 every time; prefetch those
     *  sets at batch-refill. */
    bool prefetchStoreL2 = false;
    ///@}

    /** @name Measured since the last resetMeasurement() */
    ///@{
    Cycles cpuStallCycles = 0;
    Cycles measureStartCycle = 0;
    Count instructions = 0;
    Count contextSwitches = 0;
    Count syscallSwitches = 0;
    ///@}
};

/**
 * One-call convenience: build the standard level-8 workload, run
 * @p total_instructions on @p config, return the result.
 */
SimResult runStandard(const SystemConfig &config,
                      Count total_instructions,
                      unsigned mp_level = 8,
                      Count warmup_instructions = 0);

} // namespace gaas::core

#endif // GAAS_CORE_SIMULATOR_HH
