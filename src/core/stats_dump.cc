#include "stats_dump.hh"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "util/logging.hh"

namespace gaas::core
{

namespace
{

class Emitter
{
  public:
    explicit Emitter(std::ostream &os) : os(os) {}

    void
    section(const char *title)
    {
        os << "\n# ---- " << title << " ----\n";
    }

    void
    value(const char *name, double v, const char *desc)
    {
        os << std::left << std::setw(36) << name << ' '
           << std::setw(16) << std::setprecision(8) << v << " # "
           << desc << '\n';
    }

    void
    count(const char *name, Count v, const char *desc)
    {
        os << std::left << std::setw(36) << name << ' '
           << std::setw(16) << v << " # " << desc << '\n';
    }

  private:
    std::ostream &os;
};

} // namespace

void
dumpStats(const SimResult &r, std::ostream &os)
{
    Emitter e(os);
    os << "# gaascache statistics: " << r.configName << '\n';

    e.section("machine");
    e.count("sim.instructions", r.instructions,
            "instructions executed");
    e.count("sim.cycles", r.cycles, "cycles elapsed");
    e.value("sim.cpi", r.cpi(), "cycles per instruction");
    e.value("sim.base_cpi", r.baseCpi(),
            "CPU-only floor (1 + cpu stalls)");
    e.value("sim.mem_cpi", r.memCpi(),
            "memory-system contribution to CPI");
    e.count("sim.context_switches", r.contextSwitches,
            "total context switches");
    e.count("sim.syscall_switches", r.syscallSwitches,
            "switches forced by voluntary syscalls");

    e.section("cpi breakdown (cycles)");
    e.count("cpi.l1i_miss", r.comp.l1iMiss,
            "L1-I misses: L2-I access cycles");
    e.count("cpi.l1d_miss", r.comp.l1dMiss,
            "L1-D misses: L2-D access cycles");
    e.count("cpi.l1_writes", r.comp.l1Writes,
            "extra write hit/miss cycles");
    e.count("cpi.wb_wait", r.comp.wbWait,
            "waiting on the write buffer");
    e.count("cpi.l2i_miss", r.comp.l2iMiss,
            "L2-I misses: memory cycles");
    e.count("cpi.l2d_miss", r.comp.l2dMiss,
            "L2-D misses: memory cycles");
    e.count("cpi.tlb", r.comp.tlb, "TLB miss penalty cycles");

    const auto &s = r.sys;
    e.section("L1");
    e.count("l1i.fetches", s.ifetches, "instruction fetches");
    e.count("l1i.misses", s.l1iMisses, "L1-I misses");
    e.value("l1i.miss_ratio", s.l1iMissRatio(), "misses / fetches");
    e.count("l1d.loads", s.loads, "loads");
    e.count("l1d.read_misses", s.l1dReadMisses, "load misses");
    e.value("l1d.read_miss_ratio", s.l1dReadMissRatio(),
            "read misses / loads");
    e.count("l1d.stores", s.stores, "stores");
    e.count("l1d.write_misses", s.l1dWriteMisses, "store misses");
    e.value("l1d.write_miss_ratio", s.l1dWriteMissRatio(),
            "write misses / stores");
    e.count("l1d.write_only_read_misses", s.writeOnlyReadMisses,
            "reads that hit a write-only tag");

    e.section("L2");
    e.count("l2i.accesses", s.l2iAccesses, "instruction-side refills");
    e.count("l2i.misses", s.l2iMisses, "instruction-side misses");
    e.value("l2i.miss_ratio", s.l2iMissRatio(), "misses / accesses");
    e.count("l2d.accesses", s.l2dAccesses, "data-side refills");
    e.count("l2d.misses", s.l2dMisses, "data-side misses");
    e.value("l2d.miss_ratio", s.l2dMissRatio(), "misses / accesses");
    e.value("l2.miss_ratio", s.l2MissRatio(), "combined local ratio");
    e.count("l2.dirty_misses", s.l2DirtyMisses,
            "misses evicting a dirty line");
    e.count("l2.write_allocates", s.l2WriteAllocates,
            "write-buffer drains that allocated");

    e.section("write buffer");
    e.count("wb.pushes", s.wb.pushes, "entries enqueued");
    e.count("wb.full_stalls", s.wb.fullStalls,
            "pushes that found the buffer full");
    e.count("wb.full_stall_cycles", s.wb.fullStallCycles,
            "cycles stalled on full pushes");
    e.count("wb.drain_waits", s.wb.drainWaits,
            "misses that waited for the drain");
    e.count("wb.drain_wait_cycles", s.wb.drainWaitCycles,
            "cycles spent in drain waits");
    e.count("wb.bypasses", s.wb.bypasses,
            "misses allowed past pending writes");
    e.count("wb.max_occupancy", s.wb.maxOccupancy,
            "deepest the buffer got");

    e.section("memory");
    e.count("mem.reads", s.memory.reads, "line fetches");
    e.count("mem.dirty_writebacks", s.memory.dirtyWritebacks,
            "dirty-line writebacks");
    e.count("mem.bus_waits", s.memory.busWaits,
            "accesses that waited for the bus");
    e.count("mem.bus_wait_cycles", s.memory.busWaitCycles,
            "cycles waiting for the bus");

    e.section("TLB");
    e.count("itlb.accesses", s.itlb.accesses, "ITLB lookups");
    e.count("itlb.misses", s.itlb.misses, "ITLB misses");
    e.value("itlb.miss_ratio", s.itlb.missRatio(),
            "misses / accesses");
    e.count("dtlb.accesses", s.dtlb.accesses, "DTLB lookups");
    e.count("dtlb.misses", s.dtlb.misses, "DTLB misses");
    e.value("dtlb.miss_ratio", s.dtlb.missRatio(),
            "misses / accesses");
    os.flush();
}

bool
dumpStatsFile(const SimResult &result, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot write stats to ", path);
        return false;
    }
    dumpStats(result, out);
    return static_cast<bool>(out);
}

} // namespace gaas::core
