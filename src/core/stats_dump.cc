#include "stats_dump.hh"

#include <filesystem>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.hh"
#include "util/file_io.hh"
#include "util/logging.hh"

namespace gaas::core
{

obs::Registry
collectStats(const SimResult &r)
{
    obs::Registry reg;
    reg.beginSection("machine");
    reg.counter("sim.instructions", r.instructions,
                "instructions executed");
    reg.counter("sim.cycles", r.cycles, "cycles elapsed");
    reg.value("sim.cpi", r.cpi(), "cycles per instruction");
    reg.value("sim.base_cpi", r.baseCpi(),
              "CPU-only floor (1 + cpu stalls)");
    reg.value("sim.mem_cpi", r.memCpi(),
              "memory-system contribution to CPI");
    reg.counter("sim.context_switches", r.contextSwitches,
                "total context switches");
    reg.counter("sim.syscall_switches", r.syscallSwitches,
                "switches forced by voluntary syscalls");
    r.comp.registerInto(reg);
    r.sys.registerInto(reg);
    return reg;
}

namespace
{

/** The flat golden format, one registry entry per line. */
class Emitter
{
  public:
    explicit Emitter(std::ostream &os) : os(os) {}

    void
    section(const std::string &title)
    {
        os << "\n# ---- " << title << " ----\n";
    }

    void
    value(const std::string &name, double v, const std::string &desc)
    {
        os << std::left << std::setw(36) << name << ' '
           << std::setw(16) << std::setprecision(8) << v << " # "
           << desc << '\n';
    }

    void
    count(const std::string &name, Count v, const std::string &desc)
    {
        os << std::left << std::setw(36) << name << ' '
           << std::setw(16) << v << " # " << desc << '\n';
    }

  private:
    std::ostream &os;
};

} // namespace

void
dumpStats(const SimResult &r, std::ostream &os)
{
    const obs::Registry reg = collectStats(r);
    Emitter e(os);
    os << "# gaascache statistics: " << r.configName << '\n';

    const std::string *section = nullptr;
    for (const obs::Entry &entry : reg.entries()) {
        if (!section || *section != entry.section) {
            section = &entry.section;
            e.section(entry.section);
        }
        switch (entry.kind) {
          case obs::Kind::Counter:
            e.count(entry.name, entry.count, entry.desc);
            break;
          case obs::Kind::Value:
            e.value(entry.name, entry.value, entry.desc);
            break;
          case obs::Kind::Buckets:
            // Bucket vectors (histograms) have no flat-format line
            // per bucket; the moments registered alongside them
            // cover the flat dump.  (SimResult registers none.)
            break;
        }
    }
    os.flush();
}

bool
dumpStatsFile(const SimResult &result, const std::string &path)
{
    std::ostringstream out;
    dumpStats(result, out);
    std::string error;
    if (!util::writeFileAtomicRetry(path, out.str(), &error)) {
        warn("stats dump: ", error);
        return false;
    }
    return true;
}

void
dumpStatsJson(const SimResult &result, std::ostream &os)
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc.members.emplace_back(
        "config", obs::JsonValue::string(result.configName));
    obs::JsonValue stats = obs::toJson(collectStats(result));
    for (auto &m : stats.members)
        doc.members.push_back(std::move(m));
    obs::writeJson(doc, os);
}

bool
dumpStatsJsonFile(const SimResult &result, const std::string &path)
{
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ostringstream out;
    dumpStatsJson(result, out);
    std::string error;
    if (!util::writeFileAtomicRetry(path, out.str(), &error)) {
        warn("JSON stats dump: ", error);
        return false;
    }
    return true;
}

} // namespace gaas::core
