#include "stats_dump.hh"

#include <filesystem>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.hh"
#include "util/file_io.hh"
#include "util/logging.hh"

namespace gaas::core
{

obs::Registry
collectStats(const SimResult &r)
{
    obs::Registry reg;
    reg.beginSection("machine");
    reg.counter("sim.instructions", r.instructions,
                "instructions executed");
    reg.counter("sim.cycles", r.cycles, "cycles elapsed");
    reg.value("sim.cpi", r.cpi(), "cycles per instruction");
    reg.value("sim.base_cpi", r.baseCpi(),
              "CPU-only floor (1 + cpu stalls)");
    reg.value("sim.mem_cpi", r.memCpi(),
              "memory-system contribution to CPI");
    reg.counter("sim.context_switches", r.contextSwitches,
                "total context switches");
    reg.counter("sim.syscall_switches", r.syscallSwitches,
                "switches forced by voluntary syscalls");
    r.comp.registerInto(reg);
    r.sys.registerInto(reg);
    if (r.sampling.enabled()) {
        // Only sampled runs carry this section, so every dump of a
        // full-detail run -- the golden corpus included -- is
        // byte-identical to the pre-sampling format.
        reg.beginSection("sampling");
        reg.counter("sampling.passes", r.sampling.passes,
                    "controller sizing passes");
        reg.counter("sampling.intervals", r.sampling.intervals,
                    "measurement intervals (0 = full-detail "
                    "fallback)");
        reg.counter("sampling.measured_instructions",
                    r.sampling.measuredInstructions,
                    "instructions simulated in detail");
        reg.counter("sampling.warmed_instructions",
                    r.sampling.warmedInstructions,
                    "instructions functionally warmed");
        reg.counter("sampling.skipped_instructions",
                    r.sampling.skippedInstructions,
                    "instructions fast-forwarded past");
        reg.value("sampling.cpi_mean", r.sampling.cpiMean,
                  "mean of per-interval CPIs");
        reg.value("sampling.cpi_std_error", r.sampling.cpiStdError,
                  "standard error of the mean CPI");
        reg.value("sampling.cpi_half_width",
                  r.sampling.cpiHalfWidth,
                  "95% confidence half-width on the mean CPI");
        reg.value("sampling.confidence", r.sampling.confidence,
                  "confidence level of the interval");
    }
    return reg;
}

namespace
{

/** The flat golden format, one registry entry per line. */
class Emitter
{
  public:
    explicit Emitter(std::ostream &os) : os(os) {}

    void
    section(const std::string &title)
    {
        os << "\n# ---- " << title << " ----\n";
    }

    void
    value(const std::string &name, double v, const std::string &desc)
    {
        os << std::left << std::setw(36) << name << ' '
           << std::setw(16) << std::setprecision(8) << v << " # "
           << desc << '\n';
    }

    void
    count(const std::string &name, Count v, const std::string &desc)
    {
        os << std::left << std::setw(36) << name << ' '
           << std::setw(16) << v << " # " << desc << '\n';
    }

  private:
    std::ostream &os;
};

} // namespace

void
dumpStats(const SimResult &r, std::ostream &os)
{
    const obs::Registry reg = collectStats(r);
    Emitter e(os);
    os << "# gaascache statistics: " << r.configName << '\n';

    const std::string *section = nullptr;
    for (const obs::Entry &entry : reg.entries()) {
        if (!section || *section != entry.section) {
            section = &entry.section;
            e.section(entry.section);
        }
        switch (entry.kind) {
          case obs::Kind::Counter:
            e.count(entry.name, entry.count, entry.desc);
            break;
          case obs::Kind::Value:
            e.value(entry.name, entry.value, entry.desc);
            break;
          case obs::Kind::Buckets:
            // Bucket vectors (histograms) have no flat-format line
            // per bucket; the moments registered alongside them
            // cover the flat dump.  (SimResult registers none.)
            break;
        }
    }
    os.flush();
}

bool
dumpStatsFile(const SimResult &result, const std::string &path)
{
    std::ostringstream out;
    dumpStats(result, out);
    std::string error;
    if (!util::writeFileAtomicRetry(path, out.str(), &error)) {
        warn("stats dump: ", error);
        return false;
    }
    return true;
}

void
dumpStatsJson(const SimResult &result, std::ostream &os)
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc.members.emplace_back(
        "config", obs::JsonValue::string(result.configName));
    obs::JsonValue stats = obs::toJson(collectStats(result));
    for (auto &m : stats.members)
        doc.members.push_back(std::move(m));
    obs::writeJson(doc, os);
}

bool
dumpStatsJsonFile(const SimResult &result, const std::string &path)
{
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ostringstream out;
    dumpStatsJson(result, out);
    std::string error;
    if (!util::writeFileAtomicRetry(path, out.str(), &error)) {
        warn("JSON stats dump: ", error);
        return false;
    }
    return true;
}

} // namespace gaas::core
