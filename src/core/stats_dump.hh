/**
 * @file
 * Flat name=value statistics dump of a SimResult, in the spirit of
 * gem5's stats.txt: one line per statistic, stable names, suitable
 * for diffing runs and for scripted post-processing.
 */

#ifndef GAAS_CORE_STATS_DUMP_HH
#define GAAS_CORE_STATS_DUMP_HH

#include <iosfwd>
#include <string>

#include "core/cpi.hh"

namespace gaas::core
{

/**
 * Write every statistic of @p result to @p os as
 * `<name> <value> # <description>` lines, grouped by subsystem.
 */
void dumpStats(const SimResult &result, std::ostream &os);

/** dumpStats to a file; @return false (with a warning) on failure. */
bool dumpStatsFile(const SimResult &result, const std::string &path);

} // namespace gaas::core

#endif // GAAS_CORE_STATS_DUMP_HH
