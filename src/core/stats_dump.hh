/**
 * @file
 * Statistics dumps of a SimResult, in two formats sharing one
 * schema:
 *
 *  - the flat `<name> <value> # <description>` format in the spirit
 *    of gem5's stats.txt (stable names, suitable for diffing and the
 *    golden-run harness), and
 *  - a hierarchical JSON sibling (dotted names become nested
 *    objects, keys in schema order, shortest-round-trip numbers) for
 *    machine consumption.
 *
 * Both emitters walk the same obs::Registry built by collectStats(),
 * so they can never disagree about names or values.
 */

#ifndef GAAS_CORE_STATS_DUMP_HH
#define GAAS_CORE_STATS_DUMP_HH

#include <iosfwd>
#include <string>

#include "core/cpi.hh"
#include "obs/metrics.hh"

namespace gaas::core
{

/**
 * Build the observability registry for @p result: every statistic of
 * the flat dump under its stable dotted name, in dump order.  The
 * subsystem stats structs register their own names (see their
 * registerInto methods); this function only adds the machine-level
 * `sim.*` entries and fixes the section order.
 */
obs::Registry collectStats(const SimResult &result);

/**
 * Write every statistic of @p result to @p os as
 * `<name> <value> # <description>` lines, grouped by subsystem.
 */
void dumpStats(const SimResult &result, std::ostream &os);

/** dumpStats to a file; @return false (with a warning) on failure. */
bool dumpStatsFile(const SimResult &result, const std::string &path);

/**
 * Write @p result as a JSON object: a `config` key with the
 * configuration name, then one nested object per name prefix
 * (`sim`, `cpi`, `l1i`, ...), keys in flat-dump order.  Counters are
 * integers; derived ratios are shortest-round-trip doubles.
 */
void dumpStatsJson(const SimResult &result, std::ostream &os);

/** dumpStatsJson to a file (parent directories are created);
 *  @return false (with a warning) on failure. */
bool dumpStatsJsonFile(const SimResult &result,
                       const std::string &path);

} // namespace gaas::core

#endif // GAAS_CORE_STATS_DUMP_HH
