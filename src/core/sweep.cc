#include "sweep.hh"

#include <atomic>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "core/journal.hh"
#include "obs/metrics.hh"
#include "trace/arena.hh"
#include "util/env.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace gaas::core
{

const char *
pointStatusName(PointStatus status)
{
    switch (status) {
      case PointStatus::Ok:
        return "ok";
      case PointStatus::Failed:
        return "failed";
      case PointStatus::Degraded:
        return "degraded";
    }
    return "unknown";
}

bool
parsePointStatus(const std::string &name, PointStatus &out)
{
    for (const PointStatus s :
         {PointStatus::Ok, PointStatus::Failed,
          PointStatus::Degraded}) {
        if (name == pointStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

double
SweepStats::refsPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(references) / wallSeconds
               : 0.0;
}

unsigned
sweepWorkers()
{
    const std::uint64_t parsed = envU64("GAAS_BENCH_JOBS", 0);
    if (parsed > std::numeric_limits<unsigned>::max()) {
        warn("ignoring GAAS_BENCH_JOBS=", parsed,
             " (more workers than fit an unsigned)");
    } else if (parsed > 0) {
        return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SimResult
runSweepJob(const SweepJob &job, SweepJobStats *stats)
{
    SweepJobStats local;
    const obs::Stopwatch total;
    // The arena attributes its work to threads; zeroing this thread's
    // slice here scopes the tally to exactly this job (workload build
    // plus any grow-on-demand during the run).
    trace::TraceArena::resetThreadTally();
    SimResult result;
    if (job.sampling.enabled && !job.traceFiles.empty()) {
        // The sampling controller builds standard workloads
        // internally; wiring trace files through it is future work.
        gaas_error(ErrorCode::Config,
                   "sampled simulation over trace-file workloads "
                   "is not supported yet (config '",
                   job.config.name, "')");
    }
    if (job.sampling.enabled && !job.workload) {
        // Sampled point: the controller owns workload construction
        // (one per sizing pass), so the whole thing is sim time.
        obs::ScopedTimer timer(local.simSeconds);
        result = runSampled(job.config, job.sampling,
                            job.instructions, job.mpLevel,
                            job.warmup, job.watchdogCycles);
    } else {
        // The simulator is built inside the build phase and run in
        // the sim phase; std::optional lets the two RAII timers
        // bracket construction and execution separately.
        std::optional<Simulator> sim;
        {
            obs::ScopedTimer timer(local.buildSeconds);
            Workload workload =
                job.workload ? job.workload()
                : !job.traceFiles.empty()
                    ? Workload::fromTraceFiles(job.traceFiles,
                                               job.traceStreaming)
                    : Workload::standard(
                          job.mpLevel,
                          job.warmup + job.instructions);
            sim.emplace(job.config, std::move(workload));
            sim->setWatchdogCycles(job.watchdogCycles);
        }
        {
            obs::ScopedTimer timer(local.simSeconds);
            result = sim->run(job.instructions, job.warmup);
        }
    }
    const trace::ArenaTally tally = trace::TraceArena::threadTally();
    if (stats) {
        stats->buildSeconds = local.buildSeconds;
        stats->simSeconds = local.simSeconds;
        stats->totalSeconds = total.seconds();
        stats->arenaStreamsGenerated = tally.streamsGenerated;
        stats->arenaStreamsReused = tally.streamsReused;
        stats->arenaRefsGenerated = tally.refsGenerated;
        stats->arenaGenSeconds = tally.genSeconds;
    }
    return result;
}

namespace
{

/** Cooperative cancel flag; see sweep.hh.  Written from signal
 *  handlers, so it must stay a lone lock-free atomic store. */
std::atomic<bool> cancel_requested{false};

} // namespace

void
requestSweepCancel()
{
    cancel_requested.store(true, std::memory_order_relaxed);
}

void
clearSweepCancel()
{
    cancel_requested.store(false, std::memory_order_relaxed);
}

bool
sweepCancelRequested()
{
    return cancel_requested.load(std::memory_order_relaxed);
}

SweepOutcome
cancelledOutcome(const SweepJob &job)
{
    SweepOutcome out;
    out.status = PointStatus::Failed;
    out.errorCode = ErrorCode::Cancelled;
    out.error = "sweep cancelled before this point started (config '" +
                job.config.name + "')";
    out.result = SimResult{};
    out.result.configName = job.config.name;
    return out;
}

SweepOutcome
runSweepJobIsolated(const SweepJob &job, SweepJobStats *stats)
{
    SweepOutcome out;
    try {
        if (fault::shouldFail("sweep-job")) {
            gaas_error(ErrorCode::Internal,
                       "injected fault: sweep-job (config '",
                       job.config.name, "')");
        }
        out.result = runSweepJob(job, stats);
    } catch (const SimError &e) {
        out.status = PointStatus::Failed;
        out.errorCode = e.code();
        out.error = e.what();
        out.result = SimResult{};
        out.result.configName = job.config.name;
    } catch (const std::exception &e) {
        out.status = PointStatus::Failed;
        out.errorCode = ErrorCode::Internal;
        out.error = e.what();
        out.result = SimResult{};
        out.result.configName = job.config.name;
    }
    return out;
}

std::vector<SweepOutcome>
runSweepOutcomes(const std::vector<SweepJob> &jobs, unsigned workers,
                 SweepStats *stats, const SweepProgress &progress,
                 RunJournal *journal)
{
    if (workers == 0)
        workers = sweepWorkers();

    const obs::Stopwatch wall;
    const std::size_t n = jobs.size();

    // Resolve journal reuse up front so the pool only ever sees the
    // points that actually need simulating.
    std::vector<std::string> keys(n);
    std::vector<const JournalRecord *> reuse(n, nullptr);
    std::size_t to_run = n;
    if (journal) {
        for (std::size_t i = 0; i < n; ++i) {
            keys[i] = sweepJobKey(jobs[i]);
            if (keys[i].empty())
                continue;
            const JournalRecord *rec = journal->find(keys[i]);
            if (rec && rec->status != PointStatus::Failed) {
                reuse[i] = rec;
                --to_run;
            }
        }
    }

    std::vector<SweepOutcome> outcomes(n);
    std::vector<SweepJobStats> job_stats(n);

    auto reusedOutcome = [&reuse](std::size_t i) {
        SweepOutcome out;
        out.status = reuse[i]->status;
        out.result = reuse[i]->result;
        out.reused = true;
        return out;
    };

    // Runs on the gathering thread, in submission order: hand the
    // telemetry over, let the caller see (and possibly downgrade)
    // the point, then make it durable.
    auto finalize = [&](std::size_t i, SweepOutcome &out) {
        out.stats = job_stats[i];
        if (progress)
            progress(i, out);
        // Cancelled points are never journaled: they carry no
        // result, and a resumed run must re-simulate them.
        if (journal && !out.reused && !keys[i].empty() &&
            out.errorCode != ErrorCode::Cancelled) {
            JournalRecord rec;
            rec.status = out.status;
            rec.result = out.result;
            rec.errorCode = out.errorCode;
            rec.error = out.error;
            if (!journal->append(keys[i], rec) &&
                out.status == PointStatus::Ok) {
                // The point itself is fine; only its durability is
                // lost.  Never abort a sweep over journal I/O.
                out.status = PointStatus::Degraded;
            }
        }
    };

    if (workers <= 1 || to_run <= 1) {
        // Serial reference path: also the pooled path's ground truth.
        for (std::size_t i = 0; i < n; ++i) {
            outcomes[i] =
                reuse[i] ? reusedOutcome(i)
                : sweepCancelRequested()
                    ? cancelledOutcome(jobs[i])
                    : runSweepJobIsolated(jobs[i], &job_stats[i]);
            finalize(i, outcomes[i]);
        }
    } else {
        ThreadPool pool(workers);
        std::mutex id_mutex;
        std::map<std::thread::id, unsigned> worker_ids;
        std::vector<std::future<SweepOutcome>> futures;
        futures.reserve(to_run);
        for (std::size_t i = 0; i < n; ++i) {
            if (reuse[i])
                continue;
            const SweepJob &job = jobs[i];
            SweepJobStats &slot = job_stats[i];
            const obs::Stopwatch submitted;
            futures.push_back(pool.submit([&job, &slot, &id_mutex,
                                           &worker_ids, submitted] {
                slot.queueWaitSeconds = submitted.seconds();
                {
                    // Dense worker indices, assigned in first-job
                    // order -- stable enough to spot an idle or
                    // overloaded worker in the telemetry.
                    std::lock_guard<std::mutex> lock(id_mutex);
                    slot.worker = static_cast<unsigned>(
                        worker_ids
                            .emplace(std::this_thread::get_id(),
                                     worker_ids.size())
                            .first->second);
                }
                // A cancel drains the queue: jobs already running
                // finish, queued ones return immediately.
                if (sweepCancelRequested())
                    return cancelledOutcome(job);
                return runSweepJobIsolated(job, &slot);
            }));
        }
        // Futures are held in submission order, so gathering them in
        // order restores determinism no matter how the workers
        // interleaved.
        std::size_t next_future = 0;
        for (std::size_t i = 0; i < n; ++i) {
            outcomes[i] = reuse[i] ? reusedOutcome(i)
                                   : futures[next_future++].get();
            finalize(i, outcomes[i]);
        }
    }

    if (stats) {
        stats->jobs = n;
        stats->workers = workers;
        stats->wallSeconds = wall.seconds();
        stats->mproc = false;
        stats->workerRespawns = 0;
        stats->requeuedJobs = 0;
        stats->references = 0;
        stats->okPoints = 0;
        stats->failedPoints = 0;
        stats->degradedPoints = 0;
        stats->reusedPoints = 0;
        for (const auto &out : outcomes) {
            stats->references += out.result.references();
            if (out.status == PointStatus::Failed)
                ++stats->failedPoints;
            else
                ++stats->okPoints;
            if (out.status == PointStatus::Degraded)
                ++stats->degradedPoints;
            if (out.reused)
                ++stats->reusedPoints;
        }
        stats->arenaStreamsGenerated = 0;
        stats->arenaStreamsReused = 0;
        stats->arenaRefsGenerated = 0;
        stats->arenaGenSeconds = 0.0;
        for (const auto &js : job_stats) {
            stats->arenaStreamsGenerated += js.arenaStreamsGenerated;
            stats->arenaStreamsReused += js.arenaStreamsReused;
            stats->arenaRefsGenerated += js.arenaRefsGenerated;
            stats->arenaGenSeconds += js.arenaGenSeconds;
        }
        stats->arenaBytes = trace::TraceArena::global().totalBytes();
        stats->perJob = std::move(job_stats);
    }
    return outcomes;
}

std::vector<SimResult>
runSweep(const std::vector<SweepJob> &jobs, unsigned workers,
         SweepStats *stats, const SweepProgress &progress)
{
    std::vector<SweepOutcome> outcomes =
        runSweepOutcomes(jobs, workers, stats, progress);

    std::vector<SimResult> results;
    results.reserve(outcomes.size());
    const SweepOutcome *first_failed = nullptr;
    for (auto &out : outcomes) {
        if (!first_failed && out.status == PointStatus::Failed)
            first_failed = &out;
        results.push_back(std::move(out.result));
    }
    if (first_failed)
        throw SimError(first_failed->errorCode, first_failed->error);
    return results;
}

} // namespace gaas::core
