#include "sweep.hh"

#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace gaas::core
{

double
SweepStats::refsPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(references) / wallSeconds
               : 0.0;
}

unsigned
sweepWorkers()
{
    if (const char *env = std::getenv("GAAS_BENCH_JOBS");
        env && *env) {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && parsed > 0)
            return static_cast<unsigned>(parsed);
        warn("ignoring bad GAAS_BENCH_JOBS=", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SimResult
runSweepJob(const SweepJob &job)
{
    Workload workload =
        job.workload ? job.workload() : Workload::standard(job.mpLevel);
    Simulator sim(job.config, std::move(workload));
    return sim.run(job.instructions, job.warmup);
}

std::vector<SimResult>
runSweep(const std::vector<SweepJob> &jobs, unsigned workers,
         SweepStats *stats)
{
    if (workers == 0)
        workers = sweepWorkers();

    const auto start = std::chrono::steady_clock::now();
    std::vector<SimResult> results;
    results.reserve(jobs.size());

    if (workers <= 1 || jobs.size() <= 1) {
        // Serial reference path: also the pooled path's ground truth.
        for (const auto &job : jobs)
            results.push_back(runSweepJob(job));
    } else {
        ThreadPool pool(workers);
        std::vector<std::future<SimResult>> futures;
        futures.reserve(jobs.size());
        for (const auto &job : jobs) {
            futures.push_back(
                pool.submit([&job] { return runSweepJob(job); }));
        }
        // Futures are held in submission order, so gathering them in
        // order restores determinism no matter how the workers
        // interleaved.
        for (auto &future : futures)
            results.push_back(future.get());
    }

    if (stats) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        stats->jobs = jobs.size();
        stats->workers = workers;
        stats->wallSeconds = elapsed.count();
        stats->references = 0;
        for (const auto &res : results)
            stats->references += res.references();
    }
    return results;
}

} // namespace gaas::core
