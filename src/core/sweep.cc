#include "sweep.hh"

#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/metrics.hh"
#include "util/env.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace gaas::core
{

double
SweepStats::refsPerSecond() const
{
    return wallSeconds > 0.0
               ? static_cast<double>(references) / wallSeconds
               : 0.0;
}

unsigned
sweepWorkers()
{
    const std::uint64_t parsed = envU64("GAAS_BENCH_JOBS", 0);
    if (parsed > std::numeric_limits<unsigned>::max()) {
        warn("ignoring GAAS_BENCH_JOBS=", parsed,
             " (more workers than fit an unsigned)");
    } else if (parsed > 0) {
        return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

SimResult
runSweepJob(const SweepJob &job, SweepJobStats *stats)
{
    SweepJobStats local;
    const obs::Stopwatch total;
    SimResult result;
    {
        // The simulator is built inside the build phase and run in
        // the sim phase; std::optional lets the two RAII timers
        // bracket construction and execution separately.
        std::optional<Simulator> sim;
        {
            obs::ScopedTimer timer(local.buildSeconds);
            Workload workload = job.workload
                                    ? job.workload()
                                    : Workload::standard(job.mpLevel);
            sim.emplace(job.config, std::move(workload));
        }
        {
            obs::ScopedTimer timer(local.simSeconds);
            result = sim->run(job.instructions, job.warmup);
        }
    }
    if (stats) {
        stats->buildSeconds = local.buildSeconds;
        stats->simSeconds = local.simSeconds;
        stats->totalSeconds = total.seconds();
    }
    return result;
}

std::vector<SimResult>
runSweep(const std::vector<SweepJob> &jobs, unsigned workers,
         SweepStats *stats, const SweepProgress &progress)
{
    if (workers == 0)
        workers = sweepWorkers();

    const obs::Stopwatch wall;
    std::vector<SimResult> results;
    results.reserve(jobs.size());

    // One telemetry slot per job, preallocated so workers write
    // disjoint elements; the future handoff orders each slot's write
    // before the gathering thread reads it.
    std::vector<SweepJobStats> job_stats(jobs.size());

    if (workers <= 1 || jobs.size() <= 1) {
        // Serial reference path: also the pooled path's ground truth.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            results.push_back(runSweepJob(jobs[i], &job_stats[i]));
            if (progress)
                progress(i, results.back(), job_stats[i]);
        }
    } else {
        ThreadPool pool(workers);
        std::mutex id_mutex;
        std::map<std::thread::id, unsigned> worker_ids;
        std::vector<std::future<SimResult>> futures;
        futures.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const SweepJob &job = jobs[i];
            SweepJobStats &slot = job_stats[i];
            const obs::Stopwatch submitted;
            futures.push_back(pool.submit([&job, &slot, &id_mutex,
                                           &worker_ids, submitted] {
                slot.queueWaitSeconds = submitted.seconds();
                {
                    // Dense worker indices, assigned in first-job
                    // order -- stable enough to spot an idle or
                    // overloaded worker in the telemetry.
                    std::lock_guard<std::mutex> lock(id_mutex);
                    slot.worker = static_cast<unsigned>(
                        worker_ids
                            .emplace(std::this_thread::get_id(),
                                     worker_ids.size())
                            .first->second);
                }
                return runSweepJob(job, &slot);
            }));
        }
        // Futures are held in submission order, so gathering them in
        // order restores determinism no matter how the workers
        // interleaved.
        for (std::size_t i = 0; i < futures.size(); ++i) {
            results.push_back(futures[i].get());
            if (progress)
                progress(i, results.back(), job_stats[i]);
        }
    }

    if (stats) {
        stats->jobs = jobs.size();
        stats->workers = workers;
        stats->wallSeconds = wall.seconds();
        stats->references = 0;
        for (const auto &res : results)
            stats->references += res.references();
        stats->perJob = std::move(job_stats);
    }
    return results;
}

} // namespace gaas::core
