/**
 * @file
 * The parallel design-space sweep engine.
 *
 * Every point of the paper's evaluation -- a (configuration,
 * multiprogramming level, instruction budget) triple -- is an
 * independent simulation, so a figure's whole ladder can run across
 * hardware threads: each job builds its own Workload (own trace
 * generators, own RNG state) and its own Simulator, touching no
 * shared mutable state.  Results come back in submission order and
 * are bit-identical to a serial run of the same jobs.
 *
 * Worker count: the @p workers argument, else GAAS_BENCH_JOBS, else
 * hardware_concurrency.
 */

#ifndef GAAS_CORE_SWEEP_HH
#define GAAS_CORE_SWEEP_HH

#include <functional>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/workload.hh"
#include "util/types.hh"

namespace gaas::core
{

/** One independent simulation of a design-space sweep. */
struct SweepJob
{
    SystemConfig config;

    /** Multiprogramming level for the standard workload. */
    unsigned mpLevel = 8;

    /** Measured instruction budget (Simulator::run's first arg). */
    Count instructions = 0;

    /** Warmup instructions before measurement starts. */
    Count warmup = 0;

    /**
     * Optional workload builder, called on the worker that runs the
     * job.  When empty the standard looping workload at mpLevel is
     * built.  Tests use this to inject finite (exhaustible) traces.
     */
    std::function<Workload()> workload;
};

/** Aggregate wall-clock accounting of one runSweep() call. */
struct SweepStats
{
    std::size_t jobs = 0;
    unsigned workers = 0;
    double wallSeconds = 0.0;

    /** Sum of SimResult::references() over the whole sweep. */
    Count references = 0;

    /** End-to-end sweep throughput (all workers combined). */
    double refsPerSecond() const;
};

/**
 * Worker count used when runSweep is called with workers == 0:
 * GAAS_BENCH_JOBS if set and positive, else hardware_concurrency
 * (floor 1).
 */
unsigned sweepWorkers();

/**
 * Run one job (build its workload, simulate, return the result).
 * This is the exact function the pool workers execute, exposed so
 * tests can compare serial against pooled execution.
 */
SimResult runSweepJob(const SweepJob &job);

/**
 * Run @p jobs across @p workers threads (0 = sweepWorkers()).
 *
 * @param stats filled with wall-clock/throughput totals if non-null
 * @return one SimResult per job, in submission order; bit-identical
 *         to running the jobs serially (hostSeconds excepted)
 */
std::vector<SimResult> runSweep(const std::vector<SweepJob> &jobs,
                                unsigned workers = 0,
                                SweepStats *stats = nullptr);

} // namespace gaas::core

#endif // GAAS_CORE_SWEEP_HH
