/**
 * @file
 * The parallel design-space sweep engine.
 *
 * Every point of the paper's evaluation -- a (configuration,
 * multiprogramming level, instruction budget) triple -- is an
 * independent simulation, so a figure's whole ladder can run across
 * hardware threads: each job builds its own Workload (own trace
 * generators, own RNG state) and its own Simulator, touching no
 * shared mutable state.  Results come back in submission order and
 * are bit-identical to a serial run of the same jobs.
 *
 * Worker count: the @p workers argument, else GAAS_BENCH_JOBS, else
 * hardware_concurrency.
 */

#ifndef GAAS_CORE_SWEEP_HH
#define GAAS_CORE_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/sampling.hh"
#include "core/simulator.hh"
#include "core/workload.hh"
#include "util/error.hh"
#include "util/types.hh"

namespace gaas::core
{

class RunJournal;

/** One independent simulation of a design-space sweep. */
struct SweepJob
{
    SystemConfig config;

    /** Multiprogramming level for the standard workload. */
    unsigned mpLevel = 8;

    /** Measured instruction budget (Simulator::run's first arg). */
    Count instructions = 0;

    /** Warmup instructions before measurement starts. */
    Count warmup = 0;

    /** Per-instruction cycle budget for the zero-progress watchdog
     *  (Simulator::setWatchdogCycles); 0 = off. */
    Cycles watchdogCycles = 0;

    /**
     * Sampled-simulation plan (core/sampling.hh).  Disabled by
     * default; when enabled (and the job has no custom workload
     * builder) the point runs through runSampled instead of a
     * full-detail Simulator::run, and the sampling knobs become
     * part of the job's journal key.
     */
    SamplingConfig sampling;

    /**
     * Trace-file workload: when non-empty, each named v3 trace file
     * becomes one process (Workload::fromTraceFiles) instead of the
     * standard synthetic workload, and mpLevel is ignored.  The
     * resume journal keys these points on the files' content
     * digests, so a renamed copy of the same trace still resumes.
     * Mutually exclusive with sampling (Config error) and
     * overridden by a custom workload builder.
     */
    std::vector<std::string> traceFiles;

    /**
     * Replay mode for traceFiles: false materializes each trace
     * in the shared arena (fastest when it fits in RAM), true
     * streams it under the GAAS_TRACE_STREAM_MB ceiling
     * (trace/stream.hh).  Both modes are bit-identical, so the
     * flag is not part of the journal key.
     */
    bool traceStreaming = false;

    /**
     * Optional workload builder, called on the worker that runs the
     * job.  When empty the standard looping workload at mpLevel is
     * built.  Tests use this to inject finite (exhaustible) traces.
     * Jobs with a custom builder are opaque to the resume journal
     * (their key cannot capture the workload), so they are always
     * re-simulated and never journaled.
     */
    std::function<Workload()> workload;
};

/** How one sweep point ended. */
enum class PointStatus
{
    Ok,       //!< simulated (or reused from a journal) successfully
    Failed,   //!< the job threw; result is zeroed, error/code set
    Degraded, //!< result is valid but a side effect (stats dump,
              //!< journal append) was lost; marked by the caller
};

/** Stable wire name of @p status ("ok"/"failed"/"degraded"). */
const char *pointStatusName(PointStatus status);

/** Parse a wire name back; true and set @p out on a known name. */
bool parsePointStatus(const std::string &name, PointStatus &out);

/** Host-time telemetry for one executed sweep job. */
struct SweepJobStats
{
    /** Seconds between submission and a worker picking the job up. */
    double queueWaitSeconds = 0.0;

    /** Workload construction (trace generators, simulator setup). */
    double buildSeconds = 0.0;

    /** The simulation run itself (Simulator::run). */
    double simSeconds = 0.0;

    /** End-to-end on the worker (build + sim + result handoff). */
    double totalSeconds = 0.0;

    /** Which pool worker (or worker-process slot) ran the job (0 on
     *  the serial path).  Worker indices are dense, assigned in
     *  first-job order. */
    unsigned worker = 0;

    /** Times the job was requeued after a worker-process death
     *  before this (successful) run -- always 0 in-process. */
    unsigned requeues = 0;

    /** @name Trace-arena activity attributed to this job
     *  Streams this job materialized first vs. found already cached,
     *  references it generated into the arena (grow-on-demand during
     *  the run included), and the host seconds that generation took.
     *  All zero with GAAS_BENCH_ARENA=0. */
    ///@{
    std::uint64_t arenaStreamsGenerated = 0;
    std::uint64_t arenaStreamsReused = 0;
    std::uint64_t arenaRefsGenerated = 0;
    double arenaGenSeconds = 0.0;
    ///@}
};

/**
 * Everything one sweep point produced: the result (zeroed on
 * failure), the job telemetry, and -- for failed points -- the
 * structured error that killed it.
 */
struct SweepOutcome
{
    PointStatus status = PointStatus::Ok;

    /** Valid for Ok/Degraded; zero-initialized for Failed (every
     *  derived SimResult ratio guards division by zero). */
    SimResult result;

    SweepJobStats stats;

    /** Classification of the failure (Failed points only). */
    ErrorCode errorCode = ErrorCode::Internal;

    /** The failure's what() text (Failed points only). */
    std::string error;

    /** True if the result was reused from a journal, not simulated. */
    bool reused = false;

    bool ok() const { return status != PointStatus::Failed; }
};

/** Aggregate wall-clock accounting of one runSweep() call. */
struct SweepStats
{
    std::size_t jobs = 0;
    unsigned workers = 0;
    double wallSeconds = 0.0;

    /** @name Multi-process executor telemetry (proc/executor.hh)
     *  All zero when the sweep ran in-process.  `workerRespawns`
     *  counts replacement worker processes forked after a death;
     *  `requeuedJobs` counts job redispatches after a worker was
     *  lost mid-job (one job killed twice counts twice). */
    ///@{
    bool mproc = false;
    std::uint64_t workerRespawns = 0;
    std::uint64_t requeuedJobs = 0;
    ///@}

    /** Sum of SimResult::references() over the whole sweep. */
    Count references = 0;

    /** @name Point dispositions (ok + failed == jobs) */
    ///@{
    std::size_t okPoints = 0;
    std::size_t failedPoints = 0;
    std::size_t degradedPoints = 0; //!< subset of okPoints
    std::size_t reusedPoints = 0;   //!< subset of okPoints
    ///@}

    /** @name Trace-arena totals for this sweep
     *  Sums of the per-job arena counters, plus the arena's packed
     *  byte footprint at sweep end (a process-wide snapshot, not a
     *  per-sweep delta).  A healthy sweep shows streamsGenerated ==
     *  the distinct (spec, mp) streams and streamsReused for every
     *  other point. */
    ///@{
    std::uint64_t arenaStreamsGenerated = 0;
    std::uint64_t arenaStreamsReused = 0;
    std::uint64_t arenaRefsGenerated = 0;
    double arenaGenSeconds = 0.0;
    std::size_t arenaBytes = 0;
    ///@}

    /** Per-job telemetry, in submission order. */
    std::vector<SweepJobStats> perJob;

    /** End-to-end sweep throughput (all workers combined). */
    double refsPerSecond() const;
};

/**
 * Per-point completion callback: (submission index, outcome).
 * Always invoked on the calling thread, in submission order, as
 * results are gathered -- so it may write to shared state (progress
 * lines, JSON dumps) without locking.  The outcome is mutable so the
 * callback can downgrade a point to Degraded (e.g. its stats dump
 * could not be written) before the sweep journals it and counts
 * dispositions.
 */
using SweepProgress =
    std::function<void(std::size_t, SweepOutcome &)>;

/**
 * Worker count used when runSweep is called with workers == 0:
 * GAAS_BENCH_JOBS if it parses strictly as a positive integer that
 * fits an unsigned (anything else -- trailing garbage, overflow,
 * zero -- warns and is ignored), else hardware_concurrency (floor 1).
 */
unsigned sweepWorkers();

/**
 * Run one job (build its workload, simulate, return the result).
 * This is the exact function the pool workers execute, exposed so
 * tests can compare serial against pooled execution.
 *
 * @param stats if non-null, filled with the job's build/sim phase
 *        seconds (queueWaitSeconds and worker are left untouched;
 *        the pool owns those)
 */
SimResult runSweepJob(const SweepJob &job,
                      SweepJobStats *stats = nullptr);

/**
 * runSweepJob with the fault fence around it: any throw becomes a
 * Failed outcome (code + message) instead of escaping.  This is the
 * unit of work both the in-process pool and the multi-process
 * worker children (proc/executor.hh) execute.
 */
SweepOutcome runSweepJobIsolated(const SweepJob &job,
                                 SweepJobStats *stats = nullptr);

/**
 * @name Cooperative sweep cancellation
 *
 * requestSweepCancel() is async-signal-safe (a single relaxed
 * atomic store): the bench harness calls it from its SIGTERM/SIGINT
 * handlers.  Once set, every sweep executor -- serial, pooled and
 * multi-process -- stops *starting* jobs: in-flight simulations
 * drain normally, and each not-yet-started point becomes a Failed
 * outcome with ErrorCode::Cancelled (never journaled, so a resumed
 * run re-simulates it).  clearSweepCancel() re-arms; tests use it.
 */
///@{
void requestSweepCancel();
void clearSweepCancel();
bool sweepCancelRequested();
/** The Failed/Cancelled outcome a drained job reports. */
SweepOutcome cancelledOutcome(const SweepJob &job);
///@}

/**
 * Run @p jobs across @p workers threads (0 = sweepWorkers()) with
 * per-job fault isolation: a job that throws becomes a Failed
 * outcome carrying the error's code and message, and every other
 * point still runs to completion.
 *
 * With a @p journal (opened by the caller), points whose key is
 * already journaled as Ok/Degraded are reused without simulating
 * (reused = true, zero sim seconds); Failed and missing points are
 * re-simulated.  Every freshly simulated point is appended to the
 * journal -- after @p progress ran, so a Degraded downgrade is
 * recorded -- and an append failure downgrades the point instead of
 * aborting the sweep.
 *
 * @param stats filled with wall-clock/throughput totals, disposition
 *        counts and per-job telemetry if non-null
 * @param progress invoked once per job, in submission order, on the
 *        calling thread
 * @return one SweepOutcome per job, in submission order;
 *         bit-identical to running the jobs serially (host timing
 *         fields excepted)
 */
std::vector<SweepOutcome>
runSweepOutcomes(const std::vector<SweepJob> &jobs,
                 unsigned workers = 0, SweepStats *stats = nullptr,
                 const SweepProgress &progress = {},
                 RunJournal *journal = nullptr);

/**
 * Compatibility wrapper over runSweepOutcomes: returns the bare
 * results and rethrows the first failure (as SimError) after the
 * whole sweep drained.
 */
std::vector<SimResult> runSweep(const std::vector<SweepJob> &jobs,
                                unsigned workers = 0,
                                SweepStats *stats = nullptr,
                                const SweepProgress &progress = {});

} // namespace gaas::core

#endif // GAAS_CORE_SWEEP_HH
