#include "workload.hh"

#include "trace/compose.hh"
#include "util/logging.hh"

namespace gaas::core
{

Workload
Workload::fromSpecs(const std::vector<synth::BenchmarkSpec> &specs,
                    bool loop)
{
    Workload wl;
    for (const auto &spec : specs) {
        std::unique_ptr<trace::TraceSource> src =
            synth::makeBenchmark(spec);
        if (loop) {
            src = std::make_unique<trace::LoopSource>(std::move(src));
        }
        wl.add(std::move(src), spec.baseCpi, spec.name);
    }
    return wl;
}

Workload
Workload::standard(unsigned mp_level)
{
    return fromSpecs(synth::workloadSpecs(mp_level));
}

void
Workload::add(std::unique_ptr<trace::TraceSource> source,
              double base_cpi, const std::string &name)
{
    if (!source)
        gaas_fatal("Workload::add requires a source");
    if (base_cpi < 1.0)
        gaas_fatal("base CPI must be at least 1.0, got ", base_cpi);
    if (processes.size() >= 256)
        gaas_fatal("PID space exhausted (max 256 processes)");
    Process p;
    p.pid = static_cast<Pid>(processes.size());
    p.name = name;
    p.baseCpi = base_cpi;
    p.source = std::move(source);
    processes.push_back(std::move(p));
}

} // namespace gaas::core
