#include "workload.hh"

#include <string>
#include <thread>

#include "synth/benchmark.hh"
#include "trace/arena.hh"
#include "trace/compose.hh"
#include "trace/stream.hh"
#include "trace/v3.hh"
#include "util/env.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace gaas::core
{

namespace
{

/**
 * Estimate how many references process @p i of @p specs consumes in
 * a run of @p total_instr instructions.  The scheduler is
 * cycle-driven round robin, so a process's instruction share is
 * proportional to its speed, 1/baseCpi; references per instruction
 * are 1 (Inst) + loadFrac + storeFrac.  30% slack covers scheduling
 * skew and cache-stall imbalance; underestimates only cost a second
 * growth step (grow-on-demand), never correctness.
 */
std::size_t
refHint(const std::vector<synth::BenchmarkSpec> &specs,
        std::size_t i, Count total_instr)
{
    if (total_instr == 0)
        return 0;
    double invSum = 0.0;
    for (const auto &s : specs)
        invSum += 1.0 / s.baseCpi;
    const auto &spec = specs[i];
    const double share = (1.0 / spec.baseCpi) / invSum;
    const double instr =
        share * static_cast<double>(total_instr);
    const double refs =
        instr * (1.0 + spec.loadFrac + spec.storeFrac) * 1.3;
    return static_cast<std::size_t>(refs);
}

} // namespace

Workload
Workload::fromSpecs(const std::vector<synth::BenchmarkSpec> &specs,
                    bool loop)
{
    Workload wl;
    for (const auto &spec : specs) {
        std::unique_ptr<trace::TraceSource> src =
            synth::makeBenchmark(spec);
        if (loop) {
            src = std::make_unique<trace::LoopSource>(std::move(src));
        }
        wl.add(std::move(src), spec.baseCpi, spec.name);
    }
    return wl;
}

Workload
Workload::fromTraceFiles(const std::vector<std::string> &paths,
                         bool streaming, double base_cpi)
{
    if (paths.empty())
        gaas_error(ErrorCode::Config,
                   "trace-file workload names no files");

    auto shortName = [](const std::string &path) {
        const std::size_t slash = path.find_last_of("/\\");
        return slash == std::string::npos
                   ? path
                   : path.substr(slash + 1);
    };

    Workload wl;
    if (streaming) {
        // One ceiling for the whole workload: each stream gets an
        // even share, so naming more traces never buys more memory.
        const std::size_t total =
            static_cast<std::size_t>(envU64(
                trace::kStreamBudgetEnv,
                trace::kStreamBudgetDefaultMb)) *
            (std::size_t{1} << 20);
        trace::StreamOptions options;
        options.memoryBudgetBytes = total / paths.size();
        for (const std::string &path : paths) {
            auto src = std::make_unique<trace::StreamSource>(
                path, options);
            wl.add(std::make_unique<trace::LoopSource>(
                       std::move(src)),
                   base_cpi, shortName(path));
        }
        return wl;
    }

    if (!trace::TraceArena::enabledByEnv()) {
        for (const std::string &path : paths) {
            auto src = std::make_unique<trace::TraceV3Reader>(path);
            wl.add(std::make_unique<trace::LoopSource>(
                       std::move(src)),
                   base_cpi, shortName(path));
        }
        return wl;
    }

    // Arena path: decode each file once into the shared arena and
    // replay it zero-copy, keyed by content digest + record count
    // (v3FileInfo validates the header up front, so a bad path
    // fails here, not inside a lazily-invoked factory).
    auto &arena = trace::TraceArena::global();
    for (const std::string &path : paths) {
        const trace::V3FileInfo info = trace::v3FileInfo(path);
        if (!info.packable()) {
            // The arena stores packed u32 words only; a file with
            // unaligned or >2^31-word addresses replays through its
            // own block-at-a-time reader instead.
            wl.add(std::make_unique<trace::LoopSource>(
                       std::make_unique<trace::TraceV3Reader>(path)),
                   base_cpi, shortName(path));
            continue;
        }
        const std::string key =
            "file:" + std::to_string(info.digest) + ":" +
            std::to_string(info.records);
        const auto bound =
            static_cast<std::size_t>(info.records);
        trace::ArenaStream *stream = arena.acquire(
            key, bound, bound,
            [path] {
                return std::make_unique<trace::TraceV3Reader>(path);
            });
        auto view = std::make_unique<trace::ArenaSource>(
            stream, shortName(path) + "[arena]");
        wl.add(std::make_unique<trace::LoopSource>(std::move(view)),
               base_cpi, shortName(path));
    }
    return wl;
}

Workload
Workload::standard(unsigned mp_level, Count instr_hint)
{
    const std::vector<synth::BenchmarkSpec> specs =
        synth::workloadSpecs(mp_level);
    if (!trace::TraceArena::enabledByEnv())
        return fromSpecs(specs);

    // Arena path: each process replays a shared materialized stream
    // instead of running its own generator.  The key includes the mp
    // level and stream index so a stream is exactly "process i of the
    // level-N workload"; LoopSource supplies the same wrap semantics
    // as the per-process generator path.
    Workload wl;
    auto &arena = trace::TraceArena::global();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const synth::BenchmarkSpec &spec = specs[i];
        const std::string key = synth::specDigest(spec) + ":" +
                                std::to_string(mp_level) + ":" +
                                std::to_string(i);
        // One Inst plus at most one data record per instruction.
        const std::size_t bound =
            2 * static_cast<std::size_t>(spec.simInstructions);
        trace::ArenaStream *stream = arena.acquire(
            key, bound, refHint(specs, i, instr_hint),
            [spec] { return synth::makeBenchmark(spec); });
        auto view = std::make_unique<trace::ArenaSource>(
            stream, spec.name + "[arena]");
        wl.add(std::make_unique<trace::LoopSource>(std::move(view)),
               spec.baseCpi, spec.name);
    }
    return wl;
}

void
Workload::prewarmStandardStreams(unsigned mp_level,
                                 Count instr_hint)
{
    if (!trace::TraceArena::enabledByEnv() || instr_hint == 0)
        return;
    const std::vector<synth::BenchmarkSpec> specs =
        synth::workloadSpecs(mp_level);
    auto &arena = trace::TraceArena::global();
    std::vector<std::thread> generators;
    generators.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        // Same key/bound/hint derivation as standard() above, so the
        // prewarmed entries are exactly the ones jobs will acquire.
        const synth::BenchmarkSpec &spec = specs[i];
        const std::string key = synth::specDigest(spec) + ":" +
                                std::to_string(mp_level) + ":" +
                                std::to_string(i);
        const std::size_t bound =
            2 * static_cast<std::size_t>(spec.simInstructions);
        const std::size_t want = refHint(specs, i, instr_hint);
        generators.emplace_back([&arena, key, bound, want, spec] {
            arena
                .acquire(key, bound, 0,
                         [spec] { return synth::makeBenchmark(spec); })
                ->ensure(want);
        });
    }
    for (auto &t : generators)
        t.join();
}

void
Workload::add(std::unique_ptr<trace::TraceSource> source,
              double base_cpi, const std::string &name)
{
    if (!source)
        gaas_fatal("Workload::add requires a source");
    if (base_cpi < 1.0)
        gaas_fatal("base CPI must be at least 1.0, got ", base_cpi);
    if (processes.size() >= 256)
        gaas_fatal("PID space exhausted (max 256 processes)");
    Process p;
    p.pid = static_cast<Pid>(processes.size());
    p.name = name;
    p.baseCpi = base_cpi;
    p.source = std::move(source);
    processes.push_back(std::move(p));
}

} // namespace gaas::core
