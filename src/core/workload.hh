/**
 * @file
 * Workload: the set of processes a simulation multiplexes, i.e. the
 * paper's "file descriptor multiplexor" plus process configuration
 * file (Section 3).
 */

#ifndef GAAS_CORE_WORKLOAD_HH
#define GAAS_CORE_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "synth/suite.hh"
#include "trace/source.hh"
#include "util/types.hh"

namespace gaas::core
{

/** One schedulable process. */
struct Process
{
    Pid pid = 0;
    std::string name;

    /** CPU-stall CPI floor of this process's code (1.238-style). */
    double baseCpi = 1.238;

    std::unique_ptr<trace::TraceSource> source;
};

/**
 * An ordered set of processes.  The order is the round-robin
 * schedule order; PIDs are assigned in order of addition.
 */
class Workload
{
  public:
    Workload() = default;

    /**
     * Build from benchmark specs.
     *
     * @param specs one process per spec, scheduled in spec order
     * @param loop  wrap each trace so it restarts when exhausted
     *              (the usual mode: the simulator runs to an
     *              instruction budget)
     */
    static Workload fromSpecs(
        const std::vector<synth::BenchmarkSpec> &specs,
        bool loop = true);

    /**
     * The standard workload of the paper's experiments: the first
     * @p mp_level suite benchmarks (Section 3 settles on level 8).
     *
     * By default the processes replay shared streams from the global
     * TraceArena, so a sweep materializes each benchmark's reference
     * stream once instead of re-running the generators per point;
     * `GAAS_BENCH_ARENA=0` restores per-process generators.  Either
     * way the streams are bit-identical.
     *
     * @param instr_hint the run's total instruction budget (warmup
     *        included), used to pre-size arena streams so the first
     *        job generates in one pass instead of doubling up to the
     *        high-water mark; 0 defers generation to first read
     */
    static Workload standard(unsigned mp_level = 8,
                             Count instr_hint = 0);

    /**
     * One process per named v3 trace file -- the paper's actual
     * mode of operation, a pixie trace per benchmark, with the
     * trace on disk instead of a synthetic model.
     *
     * Replay mode:
     *  - @p streaming false (default): each file is decoded once
     *    into the shared TraceArena (keyed by its content digest)
     *    and replayed zero-copy, like the synthetic streams.  With
     *    the arena disabled (GAAS_BENCH_ARENA=0) each process gets
     *    its own block-at-a-time TraceV3Reader.
     *  - @p streaming true: each process replays through a
     *    bounded-memory StreamSource; the GAAS_TRACE_STREAM_MB
     *    ceiling is split evenly across the files, so total
     *    buffering stays under one ceiling regardless of how many
     *    traces the workload names.
     *
     * Both modes produce bit-identical reference streams (wrapped
     * in LoopSource, like every other workload source).  Files must
     * be format v3 -- convert v1/v2 with `tracepack pack`.
     *
     * @param base_cpi CPU-stall CPI floor assigned to every trace
     *        process (the paper's 1.238)
     */
    static Workload
    fromTraceFiles(const std::vector<std::string> &paths,
                   bool streaming = false, double base_cpi = 1.238);

    /**
     * Materialize the arena streams standard(@p mp_level, ...)
     * would replay, through @p instr_hint total instructions, one
     * generator thread per stream -- all joined before returning,
     * so the caller may fork() immediately afterwards (the
     * multi-process sweep executor prewarms here so its workers
     * inherit the streams copy-on-write instead of regenerating
     * them per process).  A no-op when the arena is disabled.
     */
    static void prewarmStandardStreams(unsigned mp_level,
                                       Count instr_hint);

    /** Add one process (PID = current process count). */
    void add(std::unique_ptr<trace::TraceSource> source,
             double base_cpi, const std::string &name);

    std::size_t size() const { return processes.size(); }
    bool empty() const { return processes.empty(); }

    /** Move the processes out (the Simulator consumes them). */
    std::vector<Process> take() { return std::move(processes); }

  private:
    std::vector<Process> processes;
};

} // namespace gaas::core

#endif // GAAS_CORE_WORKLOAD_HH
