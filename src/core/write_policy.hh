/**
 * @file
 * The four primary data-cache write policies of Section 6.
 */

#ifndef GAAS_CORE_WRITE_POLICY_HH
#define GAAS_CORE_WRITE_POLICY_HH

#include <cstdint>

namespace gaas::core
{

/**
 * L1-D write policy.
 *
 * - WriteBack: write-allocate; hits take 2 cycles (tag check before
 *   commit), misses fetch the line; victims drain through a 4-deep
 *   4W write buffer.  The base architecture's policy.
 * - WriteMissInvalidate: write-through; hits take 1 cycle (tag check
 *   in parallel with the data write), a miss spends a second cycle
 *   invalidating the corrupted line.
 * - WriteOnly: the paper's new policy.  Like WriteMissInvalidate, but
 *   a write miss updates the tag and marks the line *write-only*, so
 *   subsequent writes to the line hit; reads that map to a write-only
 *   line miss and reallocate it.  Gives most of subblock placement's
 *   benefit without extra valid bits.
 * - SubblockPlacement: write-through with one valid bit per word; a
 *   word write-miss validates just its word, later word writes hit;
 *   partial-word writes do not update valid bits.
 */
enum class WritePolicy : std::uint8_t {
    WriteBack,
    WriteMissInvalidate,
    WriteOnly,
    SubblockPlacement,
};

/** @return true for the three write-through variants. */
constexpr bool
isWriteThrough(WritePolicy policy)
{
    return policy != WritePolicy::WriteBack;
}

/** @return a short display name ("write-back", "write-only", ...). */
const char *writePolicyName(WritePolicy policy);

} // namespace gaas::core

#endif // GAAS_CORE_WRITE_POLICY_HH
