#include "main_memory.hh"

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace gaas::mem
{

void
MainMemoryStats::registerInto(obs::Registry &r) const
{
    r.beginSection("memory");
    r.counter("mem.reads", reads, "line fetches");
    r.counter("mem.dirty_writebacks", dirtyWritebacks,
              "dirty-line writebacks");
    r.counter("mem.bus_waits", busWaits,
              "accesses that waited for the bus");
    r.counter("mem.bus_wait_cycles", busWaitCycles,
              "cycles waiting for the bus");
}

MainMemory::MainMemory(const MainMemoryConfig &config) : cfg(config)
{
    if (cfg.cleanMissPenalty == 0)
        gaas_fatal("main memory clean miss penalty must be nonzero");
    if (cfg.dirtyMissPenalty < cfg.cleanMissPenalty) {
        gaas_fatal("dirty miss penalty (", cfg.dirtyMissPenalty,
                   ") must be at least the clean penalty (",
                   cfg.cleanMissPenalty, ")");
    }
    if (cfg.lineWords == 0)
        gaas_fatal("main memory line size must be nonzero");
}

Cycles
MainMemory::fetchLine(Cycles now, bool dirty_victim)
{
    ++memStats.reads;
    if (dirty_victim)
        ++memStats.dirtyWritebacks;

    // Wait for any access (or background write-back) still holding
    // the bus.
    Cycles wait = 0;
    if (busBusyUntil > now) {
        wait = busBusyUntil - now;
        ++memStats.busWaits;
        memStats.busWaitCycles += wait;
    }
    const Cycles start = now + wait;

    const Cycles writeback_cost =
        cfg.dirtyMissPenalty - cfg.cleanMissPenalty;

    if (!dirty_victim) {
        busBusyUntil = start + cfg.cleanMissPenalty;
        return wait + cfg.cleanMissPenalty;
    }

    if (cfg.dirtyBuffer) {
        // Read first; the write-back drains from the dirty buffer
        // after the requester has its data.
        busBusyUntil = start + cfg.cleanMissPenalty + writeback_cost;
        return wait + cfg.cleanMissPenalty;
    }

    // Write back the dirty line, then read the requested one.
    busBusyUntil = start + cfg.dirtyMissPenalty;
    return wait + cfg.dirtyMissPenalty;
}

} // namespace gaas::mem
