/**
 * @file
 * Main-memory timing model.
 *
 * The miss penalties are those of the R6020 system-bus chip of the
 * ECL MIPS RC6230 used for prototyping: 143 cycles for a clean L2
 * miss and 237 for a dirty one, with 32-word lines (Section 2).
 *
 * The optional *dirty buffer* (Section 9) is a single 32-word victim
 * buffer on the L2-D cache: the requested line is read before the
 * dirty line is written back, so a dirty miss costs the requester
 * only the clean penalty while the write-back occupies the memory
 * bus afterwards.  A following miss that arrives while the bus is
 * still busy waits for it.
 */

#ifndef GAAS_MEM_MAIN_MEMORY_HH
#define GAAS_MEM_MAIN_MEMORY_HH

#include "util/types.hh"

namespace gaas::obs
{
class Registry;
} // namespace gaas::obs

namespace gaas::mem
{

/** Main-memory timing parameters. */
struct MainMemoryConfig
{
    Cycles cleanMissPenalty = 143; //!< read a 32W line
    Cycles dirtyMissPenalty = 237; //!< write back + read
    unsigned lineWords = 32;

    /** Enable the single-line dirty (victim) buffer. */
    bool dirtyBuffer = false;
};

/** Traffic and contention statistics. */
struct MainMemoryStats
{
    Count reads = 0;          //!< line fetches
    Count dirtyWritebacks = 0;
    Cycles busWaitCycles = 0; //!< waiting for an earlier access
    Count busWaits = 0;

    /** Register every counter as `mem.*` (see obs/metrics.hh). */
    void registerInto(obs::Registry &r) const;
};

/** The memory + bus model; see file comment. */
class MainMemory
{
  public:
    explicit MainMemory(const MainMemoryConfig &config);

    /**
     * Fetch a line at time @p now, optionally writing back a dirty
     * victim.
     *
     * @param now          current cycle
     * @param dirty_victim true if the replaced L2 line must be
     *                     written back
     * @return stall cycles charged to the requester (includes any
     *         wait for the bus)
     */
    Cycles fetchLine(Cycles now, bool dirty_victim);

    /** When the bus becomes free (for tests and the dirty-buffer
     *  interaction with the write buffer). */
    Cycles busyUntil() const { return busBusyUntil; }

    const MainMemoryStats &stats() const { return memStats; }
    const MainMemoryConfig &config() const { return cfg; }

    /** Zero the statistics (keeps the bus state; used to end a
     *  cache-warmup phase). */
    void resetStats() { memStats = MainMemoryStats{}; }

  private:
    MainMemoryConfig cfg;
    Cycles busBusyUntil = 0;
    MainMemoryStats memStats;
};

} // namespace gaas::mem

#endif // GAAS_MEM_MAIN_MEMORY_HH
