#include "write_buffer.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::mem
{

void
WriteBufferStats::registerInto(obs::Registry &r) const
{
    r.beginSection("write buffer");
    r.counter("wb.pushes", pushes, "entries enqueued");
    r.counter("wb.full_stalls", fullStalls,
              "pushes that found the buffer full");
    r.counter("wb.full_stall_cycles", fullStallCycles,
              "cycles stalled on full pushes");
    r.counter("wb.drain_waits", drainWaits,
              "misses that waited for the drain");
    r.counter("wb.drain_wait_cycles", drainWaitCycles,
              "cycles spent in drain waits");
    r.counter("wb.bypasses", bypasses,
              "misses allowed past pending writes");
    r.counter("wb.max_occupancy", maxOccupancy,
              "deepest the buffer got");
}

WriteBuffer::WriteBuffer(const WriteBufferConfig &config) : cfg(config)
{
    if (cfg.depth == 0)
        gaas_fatal("write buffer depth must be nonzero");
    if (cfg.entryWords == 0)
        gaas_fatal("write buffer entry width must be nonzero");
    if (cfg.drainCycles == 0)
        gaas_fatal("write buffer drain time must be nonzero");
    if (cfg.streamOverlap >= cfg.drainCycles) {
        gaas_fatal("write buffer stream overlap (", cfg.streamOverlap,
                   ") must be less than the drain time (",
                   cfg.drainCycles, ")");
    }
}

void
WriteBuffer::expire(Cycles now)
{
    while (!entries.empty() && entries.front().completeAt <= now)
        entries.pop_front();
}

Cycles
WriteBuffer::scheduleCompletion(Cycles now)
{
    // An entry that queues behind one still in flight streams into
    // L2 back to back and overlaps the latency cycles; an entry that
    // finds the buffer idle pays the full access time.  After
    // expire(now), a non-empty buffer implies lastComplete > now.
    const bool streamed = !entries.empty();
    const Cycles start = streamed ? lastComplete : now;
    const Cycles cost =
        cfg.drainCycles - (streamed ? cfg.streamOverlap : 0);
    lastComplete = start + cost;
    return lastComplete;
}

Cycles
WriteBuffer::push(Cycles now, Addr addr)
{
    expire(now);
    ++wbStats.pushes;

    Cycles stall = 0;
    if (entries.size() >= cfg.depth) {
        // Producer stalls until the oldest entry retires.
        stall = entries.front().completeAt - now;
        ++wbStats.fullStalls;
        wbStats.fullStallCycles += stall;
        expire(now + stall);
    }

    entries.push_back(Entry{addr, scheduleCompletion(now + stall)});
    wbStats.maxOccupancy = std::max<Count>(wbStats.maxOccupancy,
                                           entries.size());
    return stall;
}

Cycles
WriteBuffer::drainAll(Cycles now)
{
    expire(now);
    if (entries.empty())
        return 0;
    const Cycles stall = entries.back().completeAt - now;
    entries.clear();
    ++wbStats.drainWaits;
    wbStats.drainWaitCycles += stall;
    return stall;
}

Cycles
WriteBuffer::drainLine(Cycles now, Addr line_addr, unsigned line_bytes)
{
    expire(now);
    if (!isPowerOf2(line_bytes))
        gaas_panic("drainLine: line size must be a power of two");
    const Addr line_mask = ~static_cast<Addr>(line_bytes - 1);

    // Find the *youngest* matching entry: all entries ahead of it,
    // inclusive, must be flushed to keep L2 consistent (Section 9).
    std::size_t match = entries.size();
    for (std::size_t i = entries.size(); i-- > 0;) {
        if ((entries[i].addr & line_mask) == (line_addr & line_mask)) {
            match = i;
            break;
        }
    }
    if (match == entries.size()) {
        ++wbStats.bypasses;
        return 0;
    }

    const Cycles stall = entries[match].completeAt - now;
    entries.erase(entries.begin(),
                  entries.begin() + static_cast<std::ptrdiff_t>(match) +
                      1);
    ++wbStats.drainWaits;
    wbStats.drainWaitCycles += stall;
    return stall;
}

bool
WriteBuffer::empty(Cycles now) const
{
    return entries.empty() || entries.back().completeAt <= now;
}

unsigned
WriteBuffer::occupancy(Cycles now) const
{
    unsigned n = 0;
    for (const auto &e : entries) {
        if (e.completeAt > now)
            ++n;
    }
    return n;
}

} // namespace gaas::mem
