#include "write_buffer.hh"

#include <algorithm>

#include "obs/metrics.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::mem
{

void
WriteBufferStats::registerInto(obs::Registry &r) const
{
    r.beginSection("write buffer");
    r.counter("wb.pushes", pushes, "entries enqueued");
    r.counter("wb.full_stalls", fullStalls,
              "pushes that found the buffer full");
    r.counter("wb.full_stall_cycles", fullStallCycles,
              "cycles stalled on full pushes");
    r.counter("wb.drain_waits", drainWaits,
              "misses that waited for the drain");
    r.counter("wb.drain_wait_cycles", drainWaitCycles,
              "cycles spent in drain waits");
    r.counter("wb.bypasses", bypasses,
              "misses allowed past pending writes");
    r.counter("wb.max_occupancy", maxOccupancy,
              "deepest the buffer got");
}

WriteBuffer::WriteBuffer(const WriteBufferConfig &config) : cfg(config)
{
    if (cfg.depth == 0)
        gaas_fatal("write buffer depth must be nonzero");
    if (cfg.entryWords == 0)
        gaas_fatal("write buffer entry width must be nonzero");
    if (cfg.drainCycles == 0)
        gaas_fatal("write buffer drain time must be nonzero");
    if (cfg.streamOverlap >= cfg.drainCycles) {
        gaas_fatal("write buffer stream overlap (", cfg.streamOverlap,
                   ") must be less than the drain time (",
                   cfg.drainCycles, ")");
    }
    std::size_t cap = 1;
    while (cap < cfg.depth + 1)
        cap <<= 1;
    ring.resize(cap);
    ringMask = cap - 1;
}

void
WriteBuffer::expire(Cycles now)
{
    while (!ringEmpty() && front().completeAt <= now)
        popFront();
}

Cycles
WriteBuffer::scheduleCompletion(Cycles now)
{
    // An entry that queues behind one still in flight streams into
    // L2 back to back and overlaps the latency cycles; an entry that
    // finds the buffer idle pays the full access time.  After
    // expire(now), a non-empty buffer implies lastComplete > now.
    const bool streamed = !ringEmpty();
    const Cycles start = streamed ? lastComplete : now;
    const Cycles cost =
        cfg.drainCycles - (streamed ? cfg.streamOverlap : 0);
    lastComplete = start + cost;
    return lastComplete;
}

Cycles
WriteBuffer::push(Cycles now, Addr addr)
{
    expire(now);
    ++wbStats.pushes;

    Cycles stall = 0;
    if (ringSize() >= cfg.depth) {
        // Producer stalls until the oldest entry retires.
        stall = front().completeAt - now;
        ++wbStats.fullStalls;
        wbStats.fullStallCycles += stall;
        expire(now + stall);
    }

    pushBack(Entry{addr, scheduleCompletion(now + stall)});
    wbStats.maxOccupancy = std::max<Count>(wbStats.maxOccupancy,
                                           ringSize());
    return stall;
}

Cycles
WriteBuffer::drainAll(Cycles now)
{
    expire(now);
    if (ringEmpty())
        return 0;
    const Cycles stall = back().completeAt - now;
    head = tail;
    ++wbStats.drainWaits;
    wbStats.drainWaitCycles += stall;
    return stall;
}

Cycles
WriteBuffer::drainLine(Cycles now, Addr line_addr, unsigned line_bytes)
{
    expire(now);
    if (!isPowerOf2(line_bytes))
        gaas_panic("drainLine: line size must be a power of two");
    const Addr line_mask = ~static_cast<Addr>(line_bytes - 1);

    // Find the *youngest* matching entry: all entries ahead of it,
    // inclusive, must be flushed to keep L2 consistent (Section 9).
    std::size_t match = ringSize();
    for (std::size_t i = ringSize(); i-- > 0;) {
        if ((entryAt(i).addr & line_mask) ==
            (line_addr & line_mask)) {
            match = i;
            break;
        }
    }
    if (match == ringSize()) {
        ++wbStats.bypasses;
        return 0;
    }

    const Cycles stall = entryAt(match).completeAt - now;
    head += match + 1;
    ++wbStats.drainWaits;
    wbStats.drainWaitCycles += stall;
    return stall;
}

bool
WriteBuffer::empty(Cycles now) const
{
    return ringEmpty() || back().completeAt <= now;
}

unsigned
WriteBuffer::occupancy(Cycles now) const
{
    unsigned n = 0;
    for (std::size_t i = 0; i < ringSize(); ++i) {
        if (entryAt(i).completeAt > now)
            ++n;
    }
    return n;
}

} // namespace gaas::mem
