/**
 * @file
 * Write-buffer timing model.
 *
 * The base (write-back) architecture uses a 4-deep, 4-word-wide write
 * buffer between L1-D and L2; the write-through policies use an
 * 8-deep, 1-word-wide buffer that fits inside the MMU chip
 * (Section 6).  Entries drain into L2 at the effective L2 access
 * time; a back-to-back stream of writes overlaps the two cycles of
 * L2 latency (tag check + chip crossing), as the paper describes.
 *
 * The model keeps an absolute completion time per entry, so "wait for
 * the write buffer to empty before fetching the data for a primary
 * cache miss" (Section 2) is a simple comparison against the current
 * cycle.
 */

#ifndef GAAS_MEM_WRITE_BUFFER_HH
#define GAAS_MEM_WRITE_BUFFER_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace gaas::obs
{
class Registry;
} // namespace gaas::obs

namespace gaas::mem
{

/** Geometry and drain timing of the write buffer. */
struct WriteBufferConfig
{
    /** Number of entries (4 for write-back, 8 for write-through). */
    unsigned depth = 4;

    /** Words per entry (4 for write-back victims, 1 for writes). */
    unsigned entryWords = 4;

    /** Cycles one isolated entry takes to retire into L2 (the
     *  effective L2 access time). */
    Cycles drainCycles = 6;

    /** Latency cycles a streamed (back-to-back) entry overlaps. */
    Cycles streamOverlap = 2;
};

/** Occupancy and stall statistics of the write buffer. */
struct WriteBufferStats
{
    Count pushes = 0;
    Count fullStalls = 0;        //!< pushes that found the buffer full
    Cycles fullStallCycles = 0;  //!< cycles stalled on full pushes
    Count drainWaits = 0;        //!< misses that had to wait for drain
    Cycles drainWaitCycles = 0;  //!< cycles spent in those waits
    Count bypasses = 0;          //!< misses that did not need to wait
    Count maxOccupancy = 0;

    /** Register every counter as `wb.*` (see obs/metrics.hh). */
    void registerInto(obs::Registry &r) const;
};

/** The write-buffer model; see file comment. */
class WriteBuffer
{
  public:
    explicit WriteBuffer(const WriteBufferConfig &config);

    /**
     * Enqueue one entry at time @p now.
     *
     * If the buffer is full the producer stalls until the oldest
     * entry retires.
     *
     * @param now  current cycle
     * @param addr byte address the entry covers
     * @return stall cycles charged to the producer (0 if not full)
     */
    Cycles push(Cycles now, Addr addr);

    /**
     * Stall until every entry has retired (the base architecture's
     * behaviour on any primary-cache miss).
     *
     * @return stall cycles
     */
    Cycles drainAll(Cycles now);

    /**
     * Associative-match bypass: stall only if an entry matches the
     * missed line, and then only until the matched entry (and all
     * older ones) retire (Section 9).
     *
     * @param line_addr  byte address of the missed line
     * @param line_bytes line size in bytes (power of two)
     * @return stall cycles (0 when no entry matches)
     */
    Cycles drainLine(Cycles now, Addr line_addr, unsigned line_bytes);

    /** Record a miss that was allowed to bypass without waiting. */
    void noteBypass() { ++wbStats.bypasses; }

    /** @return true if no entry is still draining at @p now. */
    bool empty(Cycles now) const;

    /** Entries still in flight at @p now. */
    unsigned occupancy(Cycles now) const;

    /** Remove retired entries; called internally, exposed for tests. */
    void expire(Cycles now);

    const WriteBufferStats &stats() const { return wbStats; }
    const WriteBufferConfig &config() const { return cfg; }

    /** Zero the statistics (keeps in-flight entries; used to end a
     *  cache-warmup phase). */
    void resetStats() { wbStats = WriteBufferStats{}; }

  private:
    struct Entry
    {
        Addr addr;
        Cycles completeAt;
    };

    Cycles scheduleCompletion(Cycles now);

    /** @name Fixed ring storage
     *  The buffer is at most 8 deep, so entries live in a
     *  power-of-two ring indexed by free-running head/tail counters
     *  (size = tail - head); push() runs on every store under the
     *  write-through policies and a deque was measurably slower.
     */
    ///@{
    std::size_t ringSize() const { return tail - head; }
    bool ringEmpty() const { return head == tail; }

    Entry &entryAt(std::size_t i) { return ring[(head + i) & ringMask]; }

    const Entry &
    entryAt(std::size_t i) const
    {
        return ring[(head + i) & ringMask];
    }

    Entry &front() { return ring[head & ringMask]; }
    const Entry &front() const { return ring[head & ringMask]; }
    Entry &back() { return ring[(tail - 1) & ringMask]; }
    const Entry &back() const { return ring[(tail - 1) & ringMask]; }

    void
    pushBack(Entry e)
    {
        ring[tail & ringMask] = e;
        ++tail;
    }

    void popFront() { ++head; }
    ///@}

    WriteBufferConfig cfg;
    std::vector<Entry> ring; //!< power-of-two capacity >= depth + 1
    std::size_t ringMask = 0;
    std::size_t head = 0; //!< free-running; oldest entry
    std::size_t tail = 0; //!< free-running; one past youngest
    /** Completion time of the most recently scheduled entry. */
    Cycles lastComplete = 0;
    WriteBufferStats wbStats;
};

} // namespace gaas::mem

#endif // GAAS_MEM_WRITE_BUFFER_HH
