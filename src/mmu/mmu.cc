#include "mmu.hh"

namespace gaas::mmu
{

Mmu::Mmu(const MmuConfig &config)
    : cfg(config), itlb(config.itlb), dtlb(config.dtlb),
      table(config.pageTable)
{
}

} // namespace gaas::mmu
