#include "mmu.hh"

#include "util/bitops.hh"

namespace gaas::mmu
{

namespace
{

constexpr unsigned kPageShift = floorLog2(kPageBytes);

} // namespace

Mmu::Mmu(const MmuConfig &config)
    : cfg(config), itlb(config.itlb), dtlb(config.dtlb),
      table(config.pageTable)
{
}

TranslateResult
Mmu::translate(Tlb &tlb, Pid pid, Addr vaddr)
{
    TranslateResult res;
    const std::uint64_t vpn = vaddr >> kPageShift;
    res.tlbMiss = !tlb.access(pid, vpn);
    res.paddr = table.translate(pid, vaddr);
    return res;
}

TranslateResult
Mmu::translateInst(Pid pid, Addr vaddr)
{
    return translate(itlb, pid, vaddr);
}

TranslateResult
Mmu::translateData(Pid pid, Addr vaddr)
{
    return translate(dtlb, pid, vaddr);
}

} // namespace gaas::mmu
