/**
 * @file
 * MMU facade: PID-prefixed virtual addressing, split I/D TLBs, and the
 * page-coloured page table, bundled behind the two calls the cache
 * system makes.
 */

#ifndef GAAS_MMU_MMU_HH
#define GAAS_MMU_MMU_HH

#include "mmu/page_table.hh"
#include "mmu/tlb.hh"

namespace gaas::mmu
{

/** Configuration of the whole MMU chip model. */
struct MmuConfig
{
    TlbConfig itlb{32, 2};  //!< Section 2: 2-way, 32 entries
    TlbConfig dtlb{64, 2};  //!< Section 2: 2-way, 64 entries
    PageTableConfig pageTable{};

    /** Extra cycles a TLB miss costs.  The paper folds translation
     *  into the base machine's cycle accounting, so the default is
     *  zero; ablations raise it. */
    Cycles tlbMissPenalty = 0;
};

/** Result of one translation. */
struct TranslateResult
{
    Addr paddr = 0;
    bool tlbMiss = false;
};

/** The MMU chip model; see file comment. */
class Mmu
{
  public:
    explicit Mmu(const MmuConfig &config);

    /** Translate an instruction-fetch address for process @p pid. */
    TranslateResult
    translateInst(Pid pid, Addr vaddr)
    {
        return translate(itlb, pid, vaddr);
    }

    /** Translate a data address for process @p pid. */
    TranslateResult
    translateData(Pid pid, Addr vaddr)
    {
        return translate(dtlb, pid, vaddr);
    }

    const TlbStats &itlbStats() const { return itlb.stats(); }
    const TlbStats &dtlbStats() const { return dtlb.stats(); }

    /** Zero the TLB statistics (ends a warmup phase). */
    void
    resetStats()
    {
        itlb.resetStats();
        dtlb.resetStats();
    }
    const PageTable &pageTable() const { return table; }
    const MmuConfig &config() const { return cfg; }

  private:
    /** One reference's translation work: TLB probe + page table.
     *  A TLB hit serves the translation from the entry's cached
     *  frame number; only misses consult the page table (and
     *  backfill the refilled entry).  Inline for the same reason
     *  Tlb::access is. */
    TranslateResult
    translate(Tlb &tlb, Pid pid, Addr vaddr)
    {
        TranslateResult res;
        std::uint64_t pfn;
        if (tlb.access(pid, vaddr >> kPageShift, pfn)) [[likely]] {
            res.paddr = (pfn << kPageShift) |
                        (vaddr & (kPageBytes - 1));
            return res;
        }
        res.tlbMiss = true;
        res.paddr = table.translate(pid, vaddr);
        tlb.fillPfn(res.paddr >> kPageShift);
        return res;
    }

    MmuConfig cfg;
    Tlb itlb;
    Tlb dtlb;
    PageTable table;
};

} // namespace gaas::mmu

#endif // GAAS_MMU_MMU_HH
