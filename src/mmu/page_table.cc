#include "page_table.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::mmu
{

PageTable::PageTable(const PageTableConfig &config)
    : cfg(config), rng(config.seed)
{
    if (cfg.colors == 0 || !isPowerOf2(cfg.colors))
        gaas_fatal("page colour count must be a power of two");
    nextGroup.assign(cfg.colors, 0);
}

std::uint64_t
PageTable::frameFor(Pid pid, std::uint64_t vpn)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(pid) << 48) | vpn;
    auto it = map.find(key);
    if (it != map.end())
        return it->second;

    // Allocate: under colouring the frame's colour equals the virtual
    // page's colour; otherwise the colour is drawn at random.
    const std::uint64_t color =
        cfg.coloring ? (vpn & (cfg.colors - 1))
                     : rng.nextBounded(cfg.colors);
    const std::uint64_t pfn = nextGroup[color]++ * cfg.colors + color;
    map.emplace(key, pfn);
    ++allocated;
    return pfn;
}

Addr
PageTable::translateSlow(Pid pid, Addr vaddr)
{
    const std::uint64_t vpn = vaddr >> kPageShift;
    const std::uint64_t pfn = frameFor(pid, vpn);

    const std::uint64_t key =
        (static_cast<std::uint64_t>(pid) << 48) | vpn;
    const std::size_t slot = static_cast<std::size_t>(
        (key * 0x9e3779b97f4a7c15ull) >> kMemoShift);
    memo[slot] = MemoEntry{key + 1, pfn};

    return (pfn << kPageShift) | (vaddr & mask(kPageShift));
}

} // namespace gaas::mmu
