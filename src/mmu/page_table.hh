/**
 * @file
 * Virtual-to-physical page mapping with page colouring.
 *
 * The target architecture indexes its primary caches with untranslated
 * address bits and tags them physically; the operating system uses
 * page colouring (Taylor, Davies & Farmwald, ISCA 1990) so that the
 * low bits of the physical page number equal the low bits of the
 * virtual page number.  That keeps virtual and physical cache indices
 * consistent and lets tag lookup proceed in parallel with translation
 * (Section 2 of the paper).
 */

#ifndef GAAS_MMU_PAGE_TABLE_HH
#define GAAS_MMU_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bitops.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace gaas::mmu
{

/** log2 of the page size, shared by the TLB/page-table address
 *  dissection. */
inline constexpr unsigned kPageShift = floorLog2(kPageBytes);

/** Configuration of the page-mapping policy. */
struct PageTableConfig
{
    /** Number of page colours.  64 colours x 16KB pages cover a 1MB
     *  direct-mapped cache exactly. */
    unsigned colors = 64;

    /** If false, physical pages are assigned in a pseudo-random
     *  colour order instead (the ablation baseline). */
    bool coloring = true;

    /** Seed for the random placement mode. */
    std::uint64_t seed = 0xbeef;
};

/**
 * Demand-allocated forward page table for all processes.
 *
 * Physical frames are never reclaimed (the simulated runs touch far
 * less memory than a real machine has), so translation is stable for
 * the lifetime of a simulation, as the paper's page-coloured mapping
 * is.
 */
class PageTable
{
  public:
    explicit PageTable(const PageTableConfig &config);

    /**
     * Translate a (pid, virtual address) pair, allocating a frame on
     * first touch.
     *
     * Hot path: mappings are immutable once allocated (frames are
     * never reclaimed), so a small direct-mapped host-side memo
     * in front of the page map answers almost every lookup without
     * hashing.  The memo is pure host-side caching -- it can never
     * disagree with the map -- so simulated behaviour (frame
     * assignment, pagesAllocated) is bit-identical with or without
     * hits.
     *
     * @return the physical byte address
     */
    Addr
    translate(Pid pid, Addr vaddr)
    {
        const std::uint64_t vpn = vaddr >> kPageShift;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(pid) << 48) | vpn;
        // Fibonacci hash: pids land in the high key bits, so a plain
        // low-bit slice would collide all processes' page 0.
        const std::size_t slot = static_cast<std::size_t>(
            (key * 0x9e3779b97f4a7c15ull) >> kMemoShift);
        const MemoEntry &m = memo[slot];
        if (m.taggedKey == key + 1) [[likely]] {
            return (m.pfn << kPageShift) |
                   (vaddr & (kPageBytes - 1));
        }
        return translateSlow(pid, vaddr);
    }

    /** Number of pages allocated so far. */
    std::uint64_t pagesAllocated() const { return allocated; }

    /** Total physical footprint in bytes. */
    std::uint64_t footprintBytes() const
    {
        return allocated * kPageBytes;
    }

    const PageTableConfig &config() const { return cfg; }

  private:
    /** One memo slot; taggedKey is key + 1 so 0 means empty. */
    struct MemoEntry
    {
        std::uint64_t taggedKey = 0;
        std::uint64_t pfn = 0;
    };

    /** Memo size: 4096 slots (64 KB) covers the working sets the
     *  synthetic workloads touch with a >99% hit rate. */
    static constexpr unsigned kMemoBits = 12;
    static constexpr unsigned kMemoShift = 64 - kMemoBits;
    static constexpr std::size_t kMemoSlots = std::size_t{1}
                                              << kMemoBits;

    std::uint64_t frameFor(Pid pid, std::uint64_t vpn);

    /** Map lookup/allocation + memo refill (the memo-miss path). */
    Addr translateSlow(Pid pid, Addr vaddr);

    PageTableConfig cfg;
    Rng rng;
    /** Key: pid in the top bits, vpn below; value: pfn. */
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    /** Next frame group per colour (pfn = group * colors + color). */
    std::vector<std::uint64_t> nextGroup;
    std::uint64_t allocated = 0;
    std::vector<MemoEntry> memo{kMemoSlots};
};

} // namespace gaas::mmu

#endif // GAAS_MMU_PAGE_TABLE_HH
