/**
 * @file
 * Virtual-to-physical page mapping with page colouring.
 *
 * The target architecture indexes its primary caches with untranslated
 * address bits and tags them physically; the operating system uses
 * page colouring (Taylor, Davies & Farmwald, ISCA 1990) so that the
 * low bits of the physical page number equal the low bits of the
 * virtual page number.  That keeps virtual and physical cache indices
 * consistent and lets tag lookup proceed in parallel with translation
 * (Section 2 of the paper).
 */

#ifndef GAAS_MMU_PAGE_TABLE_HH
#define GAAS_MMU_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/random.hh"
#include "util/types.hh"

namespace gaas::mmu
{

/** Configuration of the page-mapping policy. */
struct PageTableConfig
{
    /** Number of page colours.  64 colours x 16KB pages cover a 1MB
     *  direct-mapped cache exactly. */
    unsigned colors = 64;

    /** If false, physical pages are assigned in a pseudo-random
     *  colour order instead (the ablation baseline). */
    bool coloring = true;

    /** Seed for the random placement mode. */
    std::uint64_t seed = 0xbeef;
};

/**
 * Demand-allocated forward page table for all processes.
 *
 * Physical frames are never reclaimed (the simulated runs touch far
 * less memory than a real machine has), so translation is stable for
 * the lifetime of a simulation, as the paper's page-coloured mapping
 * is.
 */
class PageTable
{
  public:
    explicit PageTable(const PageTableConfig &config);

    /**
     * Translate a (pid, virtual address) pair, allocating a frame on
     * first touch.
     *
     * @return the physical byte address
     */
    Addr translate(Pid pid, Addr vaddr);

    /** Number of pages allocated so far. */
    std::uint64_t pagesAllocated() const { return allocated; }

    /** Total physical footprint in bytes. */
    std::uint64_t footprintBytes() const
    {
        return allocated * kPageBytes;
    }

    const PageTableConfig &config() const { return cfg; }

  private:
    std::uint64_t frameFor(Pid pid, std::uint64_t vpn);

    PageTableConfig cfg;
    Rng rng;
    /** Key: pid in the top bits, vpn below; value: pfn. */
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    /** Next frame group per colour (pfn = group * colors + color). */
    std::vector<std::uint64_t> nextGroup;
    std::uint64_t allocated = 0;
};

} // namespace gaas::mmu

#endif // GAAS_MMU_PAGE_TABLE_HH
