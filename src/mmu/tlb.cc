#include "tlb.hh"

#include <string>

#include "obs/metrics.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::mmu
{

void
TlbStats::registerInto(obs::Registry &r, const char *prefix,
                       const char *label) const
{
    r.beginSection("TLB");
    const std::string p(prefix);
    const std::string l(label);
    r.counter(p + ".accesses", accesses, l + " lookups");
    r.counter(p + ".misses", misses, l + " misses");
    r.value(p + ".miss_ratio", missRatio(), "misses / accesses");
}

Tlb::Tlb(const TlbConfig &config) : cfg(config)
{
    if (cfg.entries == 0 || cfg.assoc == 0)
        gaas_fatal("TLB entries and associativity must be nonzero");
    if (cfg.entries % cfg.assoc != 0)
        gaas_fatal("TLB entries must be a multiple of associativity");
    sets = cfg.entries / cfg.assoc;
    if (!isPowerOf2(sets))
        gaas_fatal("TLB set count must be a power of two");
    entries.assign(cfg.entries, Entry{});
}

bool
Tlb::access(Pid pid, std::uint64_t vpn)
{
    ++tlbStats.accesses;
    const std::uint64_t tag =
        (static_cast<std::uint64_t>(pid) << 52) | vpn;
    const unsigned set = static_cast<unsigned>(vpn & (sets - 1));
    Entry *base = &entries[static_cast<std::size_t>(set) * cfg.assoc];

    Entry *victim = base;
    for (unsigned way = 0; way < cfg.assoc; ++way) {
        Entry &e = base[way];
        if (e.valid && e.tag == tag) {
            e.lru = ++lruClock;
            return true;
        }
        if (!victim->valid)
            continue;
        if (!e.valid || e.lru < victim->lru)
            victim = &e;
    }

    ++tlbStats.misses;
    victim->tag = tag;
    victim->valid = true;
    victim->lru = ++lruClock;
    return false;
}

void
Tlb::flush()
{
    for (auto &e : entries)
        e.valid = false;
}

} // namespace gaas::mmu
