#include "tlb.hh"

#include <string>

#include "obs/metrics.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::mmu
{

void
TlbStats::registerInto(obs::Registry &r, const char *prefix,
                       const char *label) const
{
    r.beginSection("TLB");
    const std::string p(prefix);
    const std::string l(label);
    r.counter(p + ".accesses", accesses, l + " lookups");
    r.counter(p + ".misses", misses, l + " misses");
    r.value(p + ".miss_ratio", missRatio(), "misses / accesses");
}

Tlb::Tlb(const TlbConfig &config) : cfg(config)
{
    if (cfg.entries == 0 || cfg.assoc == 0)
        gaas_fatal("TLB entries and associativity must be nonzero");
    if (cfg.entries % cfg.assoc != 0)
        gaas_fatal("TLB entries must be a multiple of associativity");
    sets = cfg.entries / cfg.assoc;
    if (!isPowerOf2(sets))
        gaas_fatal("TLB set count must be a power of two");
    entries.assign(cfg.entries, Entry{});
}

void
Tlb::flush()
{
    for (auto &e : entries)
        e.tag = kInvalidTag;
    lastTag = kInvalidTag;
}

} // namespace gaas::mmu
