/**
 * @file
 * Translation-lookaside buffer model.
 *
 * The MMU chip holds a 2-way set-associative 32-entry instruction TLB
 * and a 2-way set-associative 64-entry data TLB (Section 2).  Entries
 * are tagged with the 8-bit PID so nothing is flushed on a context
 * switch (Section 3).
 */

#ifndef GAAS_MMU_TLB_HH
#define GAAS_MMU_TLB_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace gaas::obs
{
class Registry;
} // namespace gaas::obs

namespace gaas::mmu
{

/** Geometry of one TLB. */
struct TlbConfig
{
    unsigned entries = 32;
    unsigned assoc = 2;
};

/** Hit/miss counters of one TLB. */
struct TlbStats
{
    Count accesses = 0;
    Count misses = 0;

    double
    missRatio() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    /**
     * Register accesses/misses/miss_ratio under @p prefix (e.g.
     * "itlb"), described as @p label (e.g. "ITLB").
     */
    void registerInto(obs::Registry &r, const char *prefix,
                      const char *label) const;
};

/** A PID-tagged set-associative TLB with LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Probe for (pid, vpn); refills the entry on a miss.
     *
     * @retval true the translation was present
     */
    bool access(Pid pid, std::uint64_t vpn);

    /** Drop every entry (not used on context switches -- PIDs make
     *  that unnecessary -- but exposed for ablations and tests). */
    void flush();

    const TlbStats &stats() const { return tlbStats; }
    const TlbConfig &config() const { return cfg; }

    /** Zero the statistics (keeps entries; ends a warmup phase). */
    void resetStats() { tlbStats = TlbStats{}; }

  private:
    struct Entry
    {
        std::uint64_t tag = 0; //!< (pid << 52) | vpn
        bool valid = false;
        std::uint64_t lru = 0;
    };

    TlbConfig cfg;
    unsigned sets;
    std::vector<Entry> entries; //!< sets * assoc, set-major
    std::uint64_t lruClock = 0;
    TlbStats tlbStats;
};

} // namespace gaas::mmu

#endif // GAAS_MMU_TLB_HH
