/**
 * @file
 * Translation-lookaside buffer model.
 *
 * The MMU chip holds a 2-way set-associative 32-entry instruction TLB
 * and a 2-way set-associative 64-entry data TLB (Section 2).  Entries
 * are tagged with the 8-bit PID so nothing is flushed on a context
 * switch (Section 3).
 */

#ifndef GAAS_MMU_TLB_HH
#define GAAS_MMU_TLB_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace gaas::obs
{
class Registry;
} // namespace gaas::obs

namespace gaas::mmu
{

/** Geometry of one TLB. */
struct TlbConfig
{
    unsigned entries = 32;
    unsigned assoc = 2;
};

/** Hit/miss counters of one TLB. */
struct TlbStats
{
    Count accesses = 0;
    Count misses = 0;

    double
    missRatio() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    /**
     * Register accesses/misses/miss_ratio under @p prefix (e.g.
     * "itlb"), described as @p label (e.g. "ITLB").
     */
    void registerInto(obs::Registry &r, const char *prefix,
                      const char *label) const;
};

/** A PID-tagged set-associative TLB with LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Probe for (pid, vpn); refills the entry's tag on a miss.
     *
     * Entries cache the physical frame number, as the real MMU chip
     * does, so a hit serves the whole translation without touching
     * the page table.  On a miss the victim's tag/LRU are updated
     * here and the caller supplies the frame via fillPfn() once the
     * page table has answered (frames are never reclaimed, so a
     * cached pfn can never go stale).
     *
     * Invalid entries carry the kInvalidTag sentinel (a value no
     * real (pid, vpn) pair can produce: tag bit 63 is always clear),
     * so the hit test is a single tag compare with no valid-bit
     * load, and both TLBs of the study being 2-way gets a fully
     * unrolled probe that skips victim bookkeeping on hits.
     *
     * Inline: this runs once per simulated reference, and the
     * specialized simulate loops want it folded into their body
     * instead of paying a cross-TU call.
     *
     * @param pfn filled with the cached frame number on a hit
     * @retval true the translation was present
     */
    bool
    access(Pid pid, std::uint64_t vpn, std::uint64_t &pfn)
    {
        ++tlbStats.accesses;
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(pid) << 52) | vpn;

        // Last-translation memo: when the tag repeats back to back
        // (sequential code in one page, runs of stack traffic), the
        // entry is necessarily still resident -- any intervening
        // access would have overwritten the memo -- and already MRU
        // in its set, so skipping the probe and the LRU re-stamp
        // leaves every within-set recency ordering, and therefore
        // every future victim choice, exactly as the full probe
        // would (only the clock's absolute values differ, and
        // nothing observes those).
        if (tag == lastTag) [[likely]] {
            pfn = lastPfn;
            return true;
        }

        const unsigned set =
            static_cast<unsigned>(vpn & (sets - 1));
        Entry *base =
            &entries[static_cast<std::size_t>(set) * cfg.assoc];

        if (cfg.assoc == 2) [[likely]] {
            Entry &e0 = base[0];
            Entry &e1 = base[1];
            if (e0.tag == tag) {
                e0.lru = ++lruClock;
                lastTag = tag;
                lastPfn = e0.pfn;
                pfn = e0.pfn;
                return true;
            }
            if (e1.tag == tag) {
                e1.lru = ++lruClock;
                lastTag = tag;
                lastPfn = e1.pfn;
                pfn = e1.pfn;
                return true;
            }
            // Victim choice identical to the generic loop below:
            // first invalid way, else least recently used (ties to
            // way 0).
            Entry *victim;
            if (e0.tag == kInvalidTag)
                victim = &e0;
            else if (e1.tag == kInvalidTag)
                victim = &e1;
            else
                victim = e1.lru < e0.lru ? &e1 : &e0;
            return missFill(*victim, tag);
        }

        Entry *victim = base;
        for (unsigned way = 0; way < cfg.assoc; ++way) {
            Entry &e = base[way];
            if (e.tag == tag) {
                e.lru = ++lruClock;
                lastTag = tag;
                lastPfn = e.pfn;
                pfn = e.pfn;
                return true;
            }
            if (victim->tag == kInvalidTag)
                continue;
            if (e.tag == kInvalidTag || e.lru < victim->lru)
                victim = &e;
        }
        return missFill(*victim, tag);
    }

    /** Backfill the frame number into the entry the last missing
     *  access() refilled; the completed translation becomes the
     *  last-translation memo. */
    void
    fillPfn(std::uint64_t pfn)
    {
        lastFill->pfn = pfn;
        lastTag = lastFill->tag;
        lastPfn = pfn;
    }

    /** Probe without reading the frame (tests, ablations). */
    bool
    access(Pid pid, std::uint64_t vpn)
    {
        std::uint64_t pfn;
        return access(pid, vpn, pfn);
    }

    /** Drop every entry (not used on context switches -- PIDs make
     *  that unnecessary -- but exposed for ablations and tests). */
    void flush();

    const TlbStats &stats() const { return tlbStats; }
    const TlbConfig &config() const { return cfg; }

    /** Zero the statistics (keeps entries; ends a warmup phase). */
    void resetStats() { tlbStats = TlbStats{}; }

  private:
    /**
     * Tag stored in invalid entries.  Real tags are
     * (pid << 52) | vpn with an 8-bit PID and a vpn below 2^52
     * (a 64-bit vaddr shifted right by the page bits), so bit 63 of
     * a real tag is always clear and the all-ones word is
     * unreachable.
     */
    static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

    struct Entry
    {
        std::uint64_t tag = kInvalidTag; //!< (pid << 52) | vpn
        std::uint64_t lru = 0;
        std::uint64_t pfn = 0; //!< cached physical frame number
    };

    /** Shared miss tail: claim @p victim for @p tag.  The memo is
     *  dropped -- the fill may have displaced the memo'd entry, and
     *  the new entry's frame is unknown until fillPfn(). */
    bool
    missFill(Entry &victim, std::uint64_t tag)
    {
        ++tlbStats.misses;
        victim.tag = tag;
        victim.lru = ++lruClock;
        lastFill = &victim;
        lastTag = kInvalidTag;
        return false;
    }

    TlbConfig cfg;
    unsigned sets;
    std::vector<Entry> entries; //!< sets * assoc, set-major
    std::uint64_t lruClock = 0;
    Entry *lastFill = nullptr; //!< victim of the last missing access

    /** @name Last-translation memo (see access()) */
    ///@{
    std::uint64_t lastTag = kInvalidTag;
    std::uint64_t lastPfn = 0;
    ///@}

    TlbStats tlbStats;
};

} // namespace gaas::mmu

#endif // GAAS_MMU_TLB_HH
