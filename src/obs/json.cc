#include "json.hh"

#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace gaas::obs
{

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.type = Type::Object;
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.type = Type::Array;
    return v;
}

JsonValue
JsonValue::string(std::string text)
{
    JsonValue v;
    v.type = Type::String;
    v.scalar = std::move(text);
    return v;
}

JsonValue
JsonValue::number(Count n)
{
    JsonValue v;
    v.type = Type::Number;
    v.scalar = std::to_string(n);
    return v;
}

JsonValue
JsonValue::number(double d)
{
    JsonValue v;
    if (!std::isfinite(d)) {
        v.type = Type::Null;
        return v;
    }
    v.type = Type::Number;
    v.scalar = formatDouble(d);
    return v;
}

const JsonValue *
JsonValue::member(std::string_view key) const
{
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::string
formatDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

JsonValue
toJson(const Registry &reg)
{
    JsonValue root = JsonValue::object();

    // Walk (and create) the object path for one dotted name.
    auto place = [&root](const std::string &name, JsonValue leaf) {
        JsonValue *node = &root;
        std::size_t pos = 0;
        while (true) {
            const std::size_t dot = name.find('.', pos);
            const std::string key =
                name.substr(pos, dot == std::string::npos
                                     ? std::string::npos
                                     : dot - pos);
            if (node->type != JsonValue::Type::Object) {
                gaas_fatal("metric name '", name,
                           "' conflicts with an earlier leaf");
            }
            JsonValue *child = nullptr;
            for (auto &[k, v] : node->members) {
                if (k == key) {
                    child = &v;
                    break;
                }
            }
            if (dot == std::string::npos) {
                if (child)
                    gaas_fatal("metric name '", name,
                               "' registered twice");
                node->members.emplace_back(key, std::move(leaf));
                return;
            }
            if (!child) {
                node->members.emplace_back(key, JsonValue::object());
                child = &node->members.back().second;
            }
            node = child;
            pos = dot + 1;
        }
    };

    for (const auto &e : reg.entries()) {
        switch (e.kind) {
          case Kind::Counter:
            place(e.name, JsonValue::number(e.count));
            break;
          case Kind::Value:
            place(e.name, JsonValue::number(e.value));
            break;
          case Kind::Buckets: {
            JsonValue arr = JsonValue::array();
            arr.items.reserve(e.buckets.size());
            for (Count c : e.buckets)
                arr.items.push_back(JsonValue::number(c));
            place(e.name, std::move(arr));
            break;
          }
        }
    }
    return root;
}

namespace
{

void
writeEscaped(const std::string &text, std::ostream &os)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          case '\r':
            os << "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                constexpr char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
writeValue(const JsonValue &v, std::ostream &os, unsigned indent)
{
    const std::string pad(indent, ' ');
    switch (v.type) {
      case JsonValue::Type::Null:
        os << "null";
        break;
      case JsonValue::Type::Number:
        os << v.scalar;
        break;
      case JsonValue::Type::String:
        writeEscaped(v.scalar, os);
        break;
      case JsonValue::Type::Array:
        os << '[';
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            if (i)
                os << ", ";
            writeValue(v.items[i], os, indent);
        }
        os << ']';
        break;
      case JsonValue::Type::Object:
        if (v.members.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < v.members.size(); ++i) {
            os << pad << "  ";
            writeEscaped(v.members[i].first, os);
            os << ": ";
            writeValue(v.members[i].second, os, indent + 2);
            if (i + 1 < v.members.size())
                os << ',';
            os << '\n';
        }
        os << pad << '}';
        break;
    }
}

void
writeValueCompact(const JsonValue &v, std::ostream &os)
{
    switch (v.type) {
      case JsonValue::Type::Null:
        os << "null";
        break;
      case JsonValue::Type::Number:
        os << v.scalar;
        break;
      case JsonValue::Type::String:
        writeEscaped(v.scalar, os);
        break;
      case JsonValue::Type::Array:
        os << '[';
        for (std::size_t i = 0; i < v.items.size(); ++i) {
            if (i)
                os << ',';
            writeValueCompact(v.items[i], os);
        }
        os << ']';
        break;
      case JsonValue::Type::Object:
        os << '{';
        for (std::size_t i = 0; i < v.members.size(); ++i) {
            if (i)
                os << ',';
            writeEscaped(v.members[i].first, os);
            os << ':';
            writeValueCompact(v.members[i].second, os);
        }
        os << '}';
        break;
    }
}

/** Recursive-descent parser over the emitted subset. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    JsonValue
    document()
    {
        skipSpace();
        JsonValue v = value();
        skipSpace();
        if (pos != text.size())
            fail("trailing content after the document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *what)
    {
        gaas_fatal("JSON parse error at offset ", pos, ": ", what);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    JsonValue
    value()
    {
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return JsonValue::string(string());
          case 'n':
            return null();
          default:
            return number();
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v = JsonValue::object();
        skipSpace();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            skipSpace();
            std::string key = string();
            skipSpace();
            expect(':');
            skipSpace();
            v.members.emplace_back(std::move(key), value());
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v = JsonValue::array();
        skipSpace();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            skipSpace();
            v.items.push_back(value());
            skipSpace();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out.push_back(esc);
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escapes are not supported");
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    null()
    {
        if (text.substr(pos, 4) != "null")
            fail("expected 'null'");
        pos += 4;
        JsonValue v;
        v.type = JsonValue::Type::Null;
        return v;
    }

    JsonValue
    number()
    {
        const std::size_t start = pos;
        auto digits = [&] {
            if (pos >= text.size() || text[pos] < '0' ||
                text[pos] > '9')
                fail("malformed number");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        };
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        digits();
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            digits();
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            digits();
        }
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.scalar = std::string(text.substr(start, pos - start));
        return v;
    }

    std::string_view text;
    std::size_t pos = 0;
};

} // namespace

void
writeJson(const JsonValue &v, std::ostream &os)
{
    writeValue(v, os, 0);
    os << '\n';
}

std::string
writeJsonString(const JsonValue &v)
{
    std::ostringstream os;
    writeJson(v, os);
    return os.str();
}

std::string
writeJsonCompact(const JsonValue &v)
{
    std::ostringstream os;
    writeValueCompact(v, os);
    return os.str();
}

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).document();
}

} // namespace gaas::obs
