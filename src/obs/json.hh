/**
 * @file
 * Minimal JSON document model, writer and parser for statistics
 * dumps.
 *
 * This is deliberately not a general-purpose JSON library: it
 * supports exactly the subset the observability layer emits --
 * objects with ordered members, flat arrays of numbers, strings,
 * numbers and null -- and it preserves both member order and the
 * exact numeric token text, so that parse(write(x)) re-emits
 * byte-identically.  The goldencheck `--json-roundtrip` mode uses
 * that property to lock the dump schema: any emitter change the
 * parser cannot reproduce fails the round-trip byte-compare.
 *
 * Key order is registration order (see obs/metrics.hh) and numbers
 * are written with std::to_chars shortest round-trip formatting, so
 * two dumps of the same run are byte-identical and two dumps of
 * different runs diff minimally.
 */

#ifndef GAAS_OBS_JSON_HH
#define GAAS_OBS_JSON_HH

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "util/types.hh"

namespace gaas::obs
{

/** One JSON value; a tree of these is a document. */
struct JsonValue
{
    enum class Type { Object, Array, String, Number, Null };

    Type type = Type::Object;

    /** Object members, in emission order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Array elements. */
    std::vector<JsonValue> items;

    /** String content (unescaped) or the raw number token. */
    std::string scalar;

    /** @name Construction helpers */
    ///@{
    static JsonValue object();
    static JsonValue array();
    static JsonValue string(std::string text);
    static JsonValue number(Count v);
    static JsonValue number(double v); //!< non-finite becomes null
    ///@}

    /** Member lookup (objects only); nullptr if absent. */
    const JsonValue *member(std::string_view key) const;
};

/** Shortest-round-trip decimal text for @p v (std::to_chars). */
std::string formatDouble(double v);

/**
 * Convert @p reg to a nested object: dotted names become object
 * paths (`l1d.read_misses` -> `{"l1d": {"read_misses": ...}}`),
 * opened in registration order.  A name that is both a leaf and a
 * prefix of another name is a schema error (FatalError).
 */
JsonValue toJson(const Registry &reg);

/**
 * Write @p v to @p os: objects multi-line with two-space indent,
 * arrays inline, trailing newline at top level.
 */
void writeJson(const JsonValue &v, std::ostream &os);

/** writeJson to a string. */
std::string writeJsonString(const JsonValue &v);

/**
 * Single-line, no-whitespace rendering of @p v (no trailing
 * newline): one journal record per line (core/journal.hh) needs the
 * whole document on one line so a torn tail is detectable.
 * parseJson reads it back exactly.
 */
std::string writeJsonCompact(const JsonValue &v);

/**
 * Parse @p text (throws FatalError with an offset on malformed
 * input).  Number tokens are kept verbatim, so re-emitting a parsed
 * document reproduces this library's own output byte-for-byte.
 */
JsonValue parseJson(std::string_view text);

} // namespace gaas::obs

#endif // GAAS_OBS_JSON_HH
