#include "metrics.hh"

#include <utility>

#include "util/logging.hh"

namespace gaas::obs
{

void
Registry::beginSection(std::string title)
{
    section = std::move(title);
}

void
Registry::push(Entry e)
{
    if (find(e.name)) {
        gaas_fatal("duplicate metric name '", e.name,
                   "' registered");
    }
    e.section = section;
    items.push_back(std::move(e));
}

void
Registry::counter(std::string name, Count v, std::string desc)
{
    Entry e;
    e.name = std::move(name);
    e.desc = std::move(desc);
    e.kind = Kind::Counter;
    e.count = v;
    push(std::move(e));
}

void
Registry::value(std::string name, double v, std::string desc)
{
    Entry e;
    e.name = std::move(name);
    e.desc = std::move(desc);
    e.kind = Kind::Value;
    e.value = v;
    push(std::move(e));
}

void
Registry::sampleStat(const std::string &name,
                     const stats::SampleStat &s,
                     const std::string &desc)
{
    counter(name + ".count", s.count(), desc + ": samples");
    value(name + ".mean", s.mean(), desc + ": mean");
    value(name + ".stddev", s.stddev(), desc + ": stddev");
    value(name + ".min", s.min(), desc + ": minimum");
    value(name + ".max", s.max(), desc + ": maximum");
}

void
Registry::histogram(const std::string &name,
                    const stats::Histogram &h,
                    const std::string &desc)
{
    value(name + ".bucket_width", h.bucketWidth(),
          desc + ": bucket width");
    counter(name + ".underflow", h.underflow(),
            desc + ": samples below bucket 0");
    Entry e;
    e.name = name + ".buckets";
    e.desc = desc + ": per-bucket counts";
    e.kind = Kind::Buckets;
    e.buckets.reserve(h.bucketCount());
    for (std::size_t i = 0; i < h.bucketCount(); ++i)
        e.buckets.push_back(h.bucket(i));
    push(std::move(e));
    counter(name + ".overflow", h.overflow(),
            desc + ": samples beyond the last bucket");
    sampleStat(name, h.moments(), desc);
}

const Entry *
Registry::find(std::string_view name) const
{
    for (const auto &e : items) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

} // namespace gaas::obs
