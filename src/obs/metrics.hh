/**
 * @file
 * The observability layer: a named metrics registry and wall-clock
 * phase timers.
 *
 * The simulator's subsystems keep their event counters as plain
 * integer fields (a counter increment stays a single `uint64_t` add
 * on the hot path); a Registry is only built when a dump is
 * requested, by walking those fields and binding each one to a
 * stable hierarchical name (`l1d.read_misses`, `wb.full_stall_cycles`,
 * ...).  Both statistics emitters -- the flat golden `name value
 * # desc` format and the machine-readable JSON sibling (obs/json.hh)
 * -- render the same Registry, so the two dumps can never drift
 * apart.
 *
 * Naming scheme: dotted lower_snake_case paths.  The first segment is
 * the subsystem (`sim`, `cpi`, `l1i`, `l1d`, `l2`, `l2i`, `l2d`,
 * `wb`, `mem`, `itlb`, `dtlb`); the remainder names the statistic.
 * Registration order is the dump order and is part of the schema:
 * the JSON exporter emits keys in exactly this order so dumps are
 * byte-diffable across runs.
 */

#ifndef GAAS_OBS_METRICS_HH
#define GAAS_OBS_METRICS_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stats/distribution.hh"
#include "util/types.hh"

namespace gaas::obs
{

/** What one registry entry holds. */
enum class Kind
{
    Counter, //!< monotonically counted events (uint64)
    Value,   //!< a derived or sampled scalar (double gauge)
    Buckets, //!< an ordered list of counts (histogram buckets)
};

/** One named statistic captured at registration time. */
struct Entry
{
    std::string name;    //!< hierarchical dotted name
    std::string desc;    //!< one-line human description
    std::string section; //!< flat-dump section heading
    Kind kind = Kind::Counter;
    Count count = 0;
    double value = 0.0;
    std::vector<Count> buckets{};
};

/**
 * An ordered collection of named statistics.  Entries keep their
 * registration order (the schema order); duplicate names are a
 * configuration error and throw FatalError.
 */
class Registry
{
  public:
    /** Start a new flat-dump section; subsequent entries belong to
     *  it.  Consecutive identical titles merge into one section. */
    void beginSection(std::string title);

    /** Register an event counter. */
    void counter(std::string name, Count v, std::string desc);

    /** Register a scalar gauge / derived value. */
    void value(std::string name, double v, std::string desc);

    /**
     * Register the moments of a SampleStat as `<name>.count`,
     * `<name>.mean`, `<name>.stddev`, `<name>.min`, `<name>.max`.
     */
    void sampleStat(const std::string &name,
                    const stats::SampleStat &s,
                    const std::string &desc);

    /**
     * Register a Histogram: `<name>.bucket_width`,
     * `<name>.underflow`, `<name>.buckets` (ordered counts),
     * `<name>.overflow`, plus the SampleStat moments.  Both tails are
     * always present so negative and out-of-range samples are visible
     * in every dump.
     */
    void histogram(const std::string &name, const stats::Histogram &h,
                   const std::string &desc);

    const std::vector<Entry> &entries() const { return items; }

    /** Lookup by full dotted name; nullptr if absent. */
    const Entry *find(std::string_view name) const;

    bool empty() const { return items.empty(); }

  private:
    void push(Entry e);

    std::string section;
    std::vector<Entry> items;
};

/** A started steady-clock timer (no stop state; read it anytime). */
class Stopwatch
{
  public:
    Stopwatch() : start(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction. */
    double
    seconds() const
    {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return elapsed.count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * RAII phase timer: adds the scope's wall-clock seconds to an
 * accumulator on destruction.  Used to attribute a sweep point's
 * host time to its phases (workload build vs. simulation vs. stats
 * assembly); the accumulator is a plain double, so instrumented code
 * pays two clock reads per *phase*, never per simulated event.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(double &accumulator) : acc(accumulator) {}

    ~ScopedTimer() { acc += watch.seconds(); }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Seconds elapsed so far (the accumulator is only updated on
     *  destruction). */
    double seconds() const { return watch.seconds(); }

  private:
    double &acc;
    Stopwatch watch;
};

} // namespace gaas::obs

#endif // GAAS_OBS_METRICS_HH
