#include "child.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace gaas::proc
{

#if !defined(_WIN32)

namespace
{

/** Set O_NONBLOCK (supervisor read ends). */
void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
readAll(int fd, char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::read(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

ChildProc
spawnChild(const std::function<void(int, int)> &childMain)
{
    ChildProc child;
    int request[2] = {-1, -1};  // supervisor writes -> child reads
    int response[2] = {-1, -1}; // child writes -> supervisor reads
    if (::pipe(request) != 0)
        return child;
    if (::pipe(response) != 0) {
        ::close(request[0]);
        ::close(request[1]);
        return child;
    }

    // A child that inherited buffered stdio would re-emit it on any
    // flush; empty the buffers while there is still one process.
    std::fflush(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        for (const int fd :
             {request[0], request[1], response[0], response[1]})
            ::close(fd);
        return child;
    }
    if (pid == 0) {
        // Worker: keep only its two pipe ends.
        ::close(request[1]);
        ::close(response[0]);
        childMain(request[0], response[1]);
        ::_exit(0);
    }

    ::close(request[0]);
    ::close(response[1]);
    setNonBlocking(response[0]);
    child.pid = pid;
    child.toChild = request[1];
    child.fromChild = response[0];
    return child;
}

bool
writeFrameBlocking(int fd, std::string_view payload)
{
    char prefix[4];
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        prefix[i] = static_cast<char>((len >> (8 * i)) & 0xff);
    // One combined buffer per frame: frames from the heartbeat
    // thread and the job loop interleave at frame granularity (the
    // caller serializes with a mutex), and a single write() of a
    // sub-PIPE_BUF frame is atomic anyway.
    std::string frame;
    frame.reserve(4 + payload.size());
    frame.append(prefix, 4);
    frame.append(payload);
    return writeAll(fd, frame.data(), frame.size());
}

bool
readFrameBlocking(int fd, std::string &payload)
{
    char prefix[4];
    if (!readAll(fd, prefix, 4))
        return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(prefix[i]))
               << (8 * i);
    payload.resize(len);
    return len == 0 || readAll(fd, payload.data(), len);
}

int
pollChildren(const std::vector<int> &fds,
             std::vector<PollEvent> &events, int timeoutMs)
{
    std::vector<struct pollfd> pfds;
    pfds.reserve(fds.size());
    for (const int fd : fds) {
        struct pollfd p;
        p.fd = fd < 0 ? -1 : fd; // negative fds are ignored by poll
        p.events = POLLIN;
        p.revents = 0;
        pfds.push_back(p);
    }
    int n = ::poll(pfds.data(), pfds.size(), timeoutMs);
    if (n < 0 && errno != EINTR)
        n = 0;
    for (std::size_t i = 0; i < fds.size(); ++i) {
        events[i] = PollEvent{};
        if (fds[i] < 0)
            continue;
        if (pfds[i].revents & POLLIN)
            events[i].readable = true;
        if (pfds[i].revents & (POLLHUP | POLLERR | POLLNVAL))
            events[i].closed = true;
    }
    return n > 0 ? n : 0;
}

bool
drainPipe(int fd, std::string &out)
{
    char buf[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            return false; // EOF: worker closed its end (or died)
        if (errno == EINTR)
            continue;
        return errno == EAGAIN || errno == EWOULDBLOCK;
    }
}

bool
reapChild(std::int64_t pid, bool block, std::string &description)
{
    int status = 0;
    pid_t r;
    do {
        r = ::waitpid(static_cast<pid_t>(pid), &status,
                      block ? 0 : WNOHANG);
    } while (r < 0 && errno == EINTR);
    if (r != static_cast<pid_t>(pid)) {
        description = r < 0 ? "unreapable" : "still running";
        return r < 0; // ECHILD etc.: treat as gone
    }
    if (WIFSIGNALED(status)) {
        const int sig = WTERMSIG(status);
        description = "signal " + std::to_string(sig) + " (" +
                      ::strsignal(sig) + ")";
    } else if (WIFEXITED(status)) {
        description =
            "exit status " + std::to_string(WEXITSTATUS(status));
    } else {
        description = "unknown wait status";
    }
    return true;
}

void
killChild(std::int64_t pid)
{
    if (pid > 0)
        ::kill(static_cast<pid_t>(pid), SIGKILL);
}

void
closeChildPipes(ChildProc &child)
{
    if (child.toChild >= 0) {
        ::close(child.toChild);
        child.toChild = -1;
    }
    if (child.fromChild >= 0) {
        ::close(child.fromChild);
        child.fromChild = -1;
    }
}

bool
mprocSupported()
{
    return true;
}

#else // _WIN32: no fork; the executor falls back in-process.

ChildProc
spawnChild(const std::function<void(int, int)> &)
{
    return ChildProc{};
}

bool
writeFrameBlocking(int, std::string_view)
{
    return false;
}

bool
readFrameBlocking(int, std::string &)
{
    return false;
}

int
pollChildren(const std::vector<int> &, std::vector<PollEvent> &,
             int)
{
    return 0;
}

bool
drainPipe(int, std::string &)
{
    return false;
}

bool
reapChild(std::int64_t, bool, std::string &)
{
    return false;
}

void
killChild(std::int64_t)
{
}

void
closeChildPipes(ChildProc &)
{
}

bool
mprocSupported()
{
    return false;
}

#endif

} // namespace gaas::proc
