/**
 * @file
 * POSIX child-process primitives for the multi-process sweep
 * executor: fork a worker with a request/response pipe pair, frame
 * I/O over those pipes, poll across workers, and reap exits.
 *
 * Workers are forked, not exec'd: the child inherits the job vector
 * (and the trace arena's already-generated streams, copy-on-write)
 * and runs the exact same runSweepJobIsolated the in-process pool
 * runs, so a job's result is bit-identical however many process
 * boundaries it crossed.  Children must leave through _Exit --
 * never exit() -- so inherited stdio buffers and global destructors
 * are not replayed in two processes.
 *
 * Everything here is supervisor-side plumbing except
 * writeFrameBlocking/readFrameBlocking, which the child loop uses
 * too.  Windows has no fork; proc/executor.hh documents the
 * fallback.
 */

#ifndef GAAS_PROC_CHILD_HH
#define GAAS_PROC_CHILD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace gaas::proc
{

/** One live worker child, supervisor's view. */
struct ChildProc
{
    std::int64_t pid = -1; //!< pid_t, widened for portability
    int toChild = -1;      //!< write end: requests
    int fromChild = -1;    //!< read end: heartbeats + results

    bool valid() const { return pid > 0; }
};

/**
 * Fork a worker.  In the child: all inherited descriptors the
 * worker must not touch are closed, stdio is flushed first (so
 * buffered supervisor output is not emitted twice), @p childMain
 * runs with (request read fd, response write fd), and the child
 * _Exit(0)s -- @p childMain never returns to the caller's frame.
 *
 * @return the supervisor-side handle; pid < 0 (with fds -1) if the
 *         fork or pipe creation failed
 */
ChildProc spawnChild(
    const std::function<void(int requestFd, int responseFd)>
        &childMain);

/**
 * Write one length-prefixed frame, blocking, retrying EINTR and
 * short writes.
 *
 * @return false on error (EPIPE: the peer died) -- the caller
 *         treats the worker as lost
 */
bool writeFrameBlocking(int fd, std::string_view payload);

/**
 * Read one length-prefixed frame, blocking.
 *
 * @return false on EOF or error
 */
bool readFrameBlocking(int fd, std::string &payload);

/** What poll() saw on one worker's response pipe. */
struct PollEvent
{
    bool readable = false; //!< bytes available
    bool closed = false;   //!< EOF/error: the worker is gone
};

/**
 * Poll the response pipes in @p fds (entries < 0 are skipped) for
 * up to @p timeoutMs.  @p events must have fds.size() slots.
 *
 * @return number of fds with any event, 0 on timeout
 */
int pollChildren(const std::vector<int> &fds,
                 std::vector<PollEvent> &events, int timeoutMs);

/**
 * Non-blocking drain of @p fd into @p out (appends).
 *
 * @return false once the pipe is at EOF or errored (worker gone);
 *         true while more bytes may come later
 */
bool drainPipe(int fd, std::string &out);

/**
 * waitpid wrapper.  @p block waits for the exit; otherwise returns
 * false immediately if the child is still running.  On reap,
 * @p description gets a human-readable cause ("signal 9 (killed)",
 * "exit status 3").
 */
bool reapChild(std::int64_t pid, bool block,
               std::string &description);

/** Send SIGKILL to @p pid (supervisor hang handling). */
void killChild(std::int64_t pid);

/** Close both pipe ends of @p child (idempotent). */
void closeChildPipes(ChildProc &child);

/**
 * True when this platform can run the multi-process executor
 * (POSIX fork + pipes); false on Windows, where runSweepMproc
 * falls back to the in-process pool.
 */
bool mprocSupported();

} // namespace gaas::proc

#endif // GAAS_PROC_CHILD_HH
