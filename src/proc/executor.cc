#include "executor.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "core/journal.hh"
#include "core/workload.hh"
#include "obs/metrics.hh"
#include "proc/child.hh"
#include "proc/protocol.hh"
#include "trace/arena.hh"
#include "util/env.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace gaas::proc
{

namespace
{

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const std::uint64_t v = envU64(name, fallback);
    if (v > std::numeric_limits<unsigned>::max()) {
        warn("ignoring ", name, "=", v, " (does not fit an unsigned)");
        return fallback;
    }
    return static_cast<unsigned>(v);
}

} // namespace

MprocOptions
MprocOptions::fromEnv()
{
    MprocOptions o;
    o.maxAttempts =
        envUnsigned("GAAS_MPROC_RETRIES", o.maxAttempts);
    o.heartbeatMs =
        envUnsigned("GAAS_MPROC_HEARTBEAT_MS", o.heartbeatMs);
    o.heartbeatMiss =
        envUnsigned("GAAS_MPROC_HEARTBEAT_MISS", o.heartbeatMiss);
    o.backoffMs = envUnsigned("GAAS_MPROC_BACKOFF_MS", o.backoffMs);
    return o;
}

unsigned
mprocWorkers()
{
    return envUnsigned("GAAS_BENCH_MPROC", 0);
}

#if !defined(_WIN32)

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * The worker child's main loop: read requests, run jobs through the
 * exact same runSweepJobIsolated the in-process pool uses, write
 * results back.  A side thread emits heartbeat frames (sharing a
 * write mutex with the result path, so frames never interleave).
 * Returns on Shutdown, pipe EOF, or a supervisor-side write error;
 * the caller (spawnChild's child branch) then _exit(0)s.
 */
void
workerLoop(const std::vector<core::SweepJob> &jobs, int requestFd,
           int responseFd, unsigned heartbeatMs)
{
    std::mutex writeMutex;
    std::atomic<bool> running{true};
    std::thread beater([&writeMutex, &running, responseFd,
                        heartbeatMs] {
        const std::string beat = encodeHeartbeat();
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(writeMutex);
                if (!running.load(std::memory_order_relaxed))
                    return;
                if (!writeFrameBlocking(responseFd, beat))
                    return; // supervisor gone; job loop will see EOF
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(heartbeatMs));
        }
    });

    std::string payload;
    while (readFrameBlocking(requestFd, payload)) {
        Request req;
        try {
            req = decodeRequest(payload);
        } catch (const SimError &) {
            break; // corrupt stream: die loudly, supervisor requeues
        }
        if (req.type != FrameType::Job)
            break; // Shutdown
        if (req.job >= jobs.size())
            break;
        if (req.flags & kFlagHang) {
            // Injected wedge: take the write mutex so even the
            // heartbeat thread falls silent, then sleep forever.
            // The supervisor's heartbeat deadline SIGKILLs us.
            writeMutex.lock();
            running.store(false, std::memory_order_relaxed);
            for (;;)
                std::this_thread::sleep_for(std::chrono::hours(1));
        }
        if (req.flags & kFlagKill)
            ::raise(SIGKILL);

        core::SweepJobStats jobStats;
        core::SweepOutcome out = core::runSweepJobIsolated(
            jobs[req.job], &jobStats);
        out.stats = jobStats;
        const std::string frame = encodeResult(req.job, out);
        std::lock_guard<std::mutex> lock(writeMutex);
        if (!writeFrameBlocking(responseFd, frame))
            break;
    }
    running.store(false, std::memory_order_relaxed);
    // The beater may be mid-sleep; the child is about to _exit,
    // which ends all threads -- detach so ~thread() doesn't abort.
    beater.detach();
}

/** Restore the previous SIGPIPE disposition on scope exit.  The
 *  supervisor writes into pipes whose reader can die at any moment;
 *  it must see EPIPE (handled as a worker loss), not be killed. */
class ScopedSigpipeIgnore
{
  public:
    ScopedSigpipeIgnore()
    {
        struct sigaction ignore = {};
        ignore.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore, &previous);
    }
    ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &previous, nullptr); }

  private:
    struct sigaction previous = {};
};

/** Generate the arena streams the ladder's standard workloads will
 *  replay, before any fork, so workers inherit them copy-on-write.
 *  One prewarm per distinct mp level, sized to the largest budget. */
void
prewarmArena(const std::vector<core::SweepJob> &jobs,
             const std::vector<const core::JournalRecord *> &reuse)
{
    std::vector<std::pair<unsigned, Count>> levels;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (reuse[i] || jobs[i].workload)
            continue;
        const Count hint =
            jobs[i].warmup + jobs[i].instructions;
        auto it = std::find_if(
            levels.begin(), levels.end(),
            [&](const auto &l) { return l.first == jobs[i].mpLevel; });
        if (it == levels.end())
            levels.emplace_back(jobs[i].mpLevel, hint);
        else
            it->second = std::max(it->second, hint);
    }
    for (const auto &[mp, hint] : levels)
        core::Workload::prewarmStandardStreams(mp, hint);
}

} // namespace

std::vector<core::SweepOutcome>
runSweepMproc(const std::vector<core::SweepJob> &jobs,
              const MprocOptions &opts, core::SweepStats *stats,
              const core::SweepProgress &progress,
              core::RunJournal *journal)
{
    MprocOptions o = opts;
    if (o.workers == 0)
        o.workers = core::sweepWorkers();
    o.maxAttempts = std::max(1u, o.maxAttempts);
    o.heartbeatMs = std::max(1u, o.heartbeatMs);
    o.heartbeatMiss = std::max(1u, o.heartbeatMiss);

    if (!mprocSupported() || jobs.empty())
        return core::runSweepOutcomes(jobs, o.workers, stats,
                                      progress, journal);

    const obs::Stopwatch wall;
    const std::size_t n = jobs.size();

    // Journal reuse, resolved up front exactly like the in-process
    // engine, so workers only ever see points that need simulating.
    std::vector<std::string> keys(n);
    std::vector<const core::JournalRecord *> reuse(n, nullptr);
    std::size_t to_run = n;
    if (journal) {
        for (std::size_t i = 0; i < n; ++i) {
            keys[i] = core::sweepJobKey(jobs[i]);
            if (keys[i].empty())
                continue;
            const core::JournalRecord *rec = journal->find(keys[i]);
            if (rec && rec->status != core::PointStatus::Failed) {
                reuse[i] = rec;
                --to_run;
            }
        }
    }

    trace::TraceArena::resetThreadTally();
    prewarmArena(jobs, reuse);
    const trace::ArenaTally prewarm = trace::TraceArena::threadTally();

    ScopedSigpipeIgnore sigpipe;

    struct Slot
    {
        ChildProc child;
        FrameSplitter frames;
        bool alive = false;
        bool hasJob = false;
        std::size_t job = 0;
        Clock::time_point lastBeat;
    };

    const unsigned nworkers = static_cast<unsigned>(std::max<
        std::size_t>(
        1, std::min<std::size_t>(o.workers, to_run ? to_run : 1)));
    std::vector<Slot> slots(nworkers);

    std::vector<core::SweepOutcome> outcomes(n);
    std::vector<core::SweepJobStats> job_stats(n);
    std::vector<char> done(n, 0);
    std::vector<unsigned> attempts(n, 0);
    std::vector<Clock::time_point> eligibleAt(n, Clock::now());
    std::deque<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i)
        if (!reuse[i])
            pending.push_back(i);

    std::size_t completed = 0; //!< non-reused jobs with a result
    std::size_t nextFinal = 0;
    std::uint64_t respawns = 0;
    std::uint64_t requeues = 0;

    auto reusedOutcome = [&reuse](std::size_t i) {
        core::SweepOutcome out;
        out.status = reuse[i]->status;
        out.result = reuse[i]->result;
        out.reused = true;
        return out;
    };

    // Same submission-order finalize as the in-process engine:
    // telemetry, progress (which may downgrade), then the journal.
    auto finalizePrefix = [&] {
        while (nextFinal < n &&
               (reuse[nextFinal] || done[nextFinal])) {
            const std::size_t i = nextFinal++;
            if (reuse[i])
                outcomes[i] = reusedOutcome(i);
            core::SweepOutcome &out = outcomes[i];
            out.stats = job_stats[i];
            if (progress)
                progress(i, out);
            if (journal && !out.reused && !keys[i].empty() &&
                out.errorCode != ErrorCode::Cancelled) {
                core::JournalRecord rec;
                rec.status = out.status;
                rec.result = out.result;
                rec.errorCode = out.errorCode;
                rec.error = out.error;
                if (!journal->append(keys[i], rec) &&
                    out.status == core::PointStatus::Ok) {
                    out.status = core::PointStatus::Degraded;
                }
            }
        }
    };

    auto recordOutcome = [&](std::size_t i, core::SweepOutcome &&out,
                             unsigned workerSlot) {
        if (done[i])
            return;
        // The child's stats frame carries timing and arena tallies;
        // queue wait, worker slot and requeues are supervisor-side.
        const double queueWait = job_stats[i].queueWaitSeconds;
        job_stats[i] = out.stats;
        job_stats[i].queueWaitSeconds = queueWait;
        job_stats[i].worker = workerSlot;
        job_stats[i].requeues =
            attempts[i] > 0 ? attempts[i] - 1 : 0;
        outcomes[i] = std::move(out);
        done[i] = 1;
        ++completed;
    };

    auto spawnWorker = [&](std::size_t s) {
        Slot &slot = slots[s];
        const unsigned hb = o.heartbeatMs;
        slot.child = spawnChild([&jobs, hb, journal](int rfd,
                                                     int wfd) {
            // Drop the inherited journal descriptor: flock lives on
            // the shared open-file description, so a worker that
            // outlives a killed supervisor must not keep the
            // journal locked against the --resume rerun.
            if (journal)
                journal->close();
            workerLoop(jobs, rfd, wfd, hb);
        });
        slot.frames = FrameSplitter{};
        slot.hasJob = false;
        slot.lastBeat = Clock::now();
        slot.alive = slot.child.valid();
        return slot.alive;
    };

    // Pop every complete frame a worker has sent.  Returns false if
    // the stream is malformed (the worker is then treated as lost).
    auto processFrames = [&](std::size_t s) {
        Slot &slot = slots[s];
        std::string payload;
        try {
            while (slot.frames.next(payload)) {
                std::uint64_t jobIndex = 0;
                core::SweepOutcome out;
                const FrameType type =
                    decodeResponse(payload, jobIndex, out);
                slot.lastBeat = Clock::now();
                if (type != FrameType::Result)
                    continue; // heartbeat
                if (jobIndex >= n)
                    return false;
                recordOutcome(jobIndex, std::move(out),
                              static_cast<unsigned>(s));
                if (slot.hasJob && slot.job == jobIndex)
                    slot.hasJob = false;
            }
        } catch (const SimError &) {
            return false;
        }
        return true;
    };

    // A worker is gone (pipe EOF, write error, malformed stream, or
    // missed heartbeats): salvage any result it managed to send,
    // reap it, requeue or poison its in-flight job, respawn.
    auto handleWorkerLoss = [&](std::size_t s) {
        Slot &slot = slots[s];
        if (!slot.alive)
            return;
        std::string tail;
        if (slot.child.fromChild >= 0)
            drainPipe(slot.child.fromChild, tail);
        if (!tail.empty())
            slot.frames.feed(tail.data(), tail.size());
        processFrames(s);
        killChild(slot.child.pid);
        std::string cause;
        reapChild(slot.child.pid, true, cause);
        closeChildPipes(slot.child);
        slot.alive = false;
        if (slot.hasJob && !done[slot.job]) {
            const std::size_t j = slot.job;
            if (core::sweepCancelRequested()) {
                recordOutcome(j, core::cancelledOutcome(jobs[j]),
                              static_cast<unsigned>(s));
            } else if (attempts[j] >= o.maxAttempts) {
                core::SweepOutcome out;
                out.status = core::PointStatus::Failed;
                out.errorCode = ErrorCode::WorkerLost;
                out.error = "worker lost (" + cause +
                            ") on every one of " +
                            std::to_string(attempts[j]) +
                            " dispatches of config '" +
                            jobs[j].config.name +
                            "'; degrading this point";
                out.result.configName = jobs[j].config.name;
                warn("sweep point ", j, " (config '",
                     jobs[j].config.name, "') is poison: ", out.error);
                recordOutcome(j, std::move(out),
                              static_cast<unsigned>(s));
            } else {
                ++requeues;
                const unsigned shift = attempts[j] - 1;
                const std::uint64_t delay = std::min<std::uint64_t>(
                    shift >= 63
                        ? 5000
                        : std::uint64_t{o.backoffMs} << shift,
                    5000);
                eligibleAt[j] =
                    Clock::now() + std::chrono::milliseconds(delay);
                pending.push_front(j);
                warn("sweep worker ", s, " died (", cause,
                     ") running point ", j, " (config '",
                     jobs[j].config.name, "'); requeueing with ",
                     delay, " ms backoff (attempt ", attempts[j],
                     " of ", o.maxAttempts, ")");
            }
        }
        slot.hasJob = false;
        if (!core::sweepCancelRequested() && !pending.empty() &&
            spawnWorker(s))
            ++respawns;
    };

    // Hand the first backoff-eligible pending job to worker slot s.
    auto dispatch = [&](std::size_t s) {
        Slot &slot = slots[s];
        if (!slot.alive || slot.hasJob || pending.empty())
            return;
        const Clock::time_point now = Clock::now();
        const auto it = std::find_if(
            pending.begin(), pending.end(),
            [&](std::size_t j) { return eligibleAt[j] <= now; });
        if (it == pending.end())
            return;
        const std::size_t j = *it;
        pending.erase(it);
        // Fault injection is counted here, on the supervisor, one
        // hit per dispatch -- deterministic no matter which worker
        // process the job lands on.
        std::uint32_t flags = 0;
        if (fault::shouldFail("worker-kill"))
            flags |= kFlagKill;
        if (fault::shouldFail("worker-hang"))
            flags |= kFlagHang;
        if (attempts[j] == 0)
            job_stats[j].queueWaitSeconds = wall.seconds();
        ++attempts[j];
        slot.hasJob = true;
        slot.job = j;
        if (!writeFrameBlocking(slot.child.toChild,
                                encodeJobRequest(j, flags)))
            handleWorkerLoss(s); // EPIPE: died before the request
    };

    // Initial pool (a fully-reused sweep forks nothing).
    if (to_run > 0)
        for (std::size_t s = 0; s < slots.size(); ++s)
            spawnWorker(s);

    const auto heartbeatDeadline = std::chrono::milliseconds(
        std::uint64_t{o.heartbeatMs} * o.heartbeatMiss);
    std::vector<int> fds(slots.size(), -1);
    std::vector<PollEvent> events(slots.size());

    while (completed < to_run) {
        // Cooperative cancellation: in-flight jobs drain, queued
        // ones fail fast with the stable `cancelled` code.
        if (core::sweepCancelRequested() && !pending.empty()) {
            for (const std::size_t j : pending)
                recordOutcome(j, core::cancelledOutcome(jobs[j]), 0);
            pending.clear();
        }
        finalizePrefix();
        if (completed >= to_run)
            break;

        // Never deadlock on a dead pool: with work queued and no
        // live worker, respawn; if even fork fails, run the rest on
        // the supervisor itself -- degraded, but the ladder finishes.
        const bool anyAlive =
            std::any_of(slots.begin(), slots.end(),
                        [](const Slot &s) { return s.alive; });
        if (!anyAlive) {
            if (!pending.empty() && spawnWorker(0)) {
                ++respawns;
            } else if (!pending.empty()) {
                warn("cannot fork sweep workers; finishing ",
                     pending.size(), " point(s) in-process");
                for (const std::size_t j : pending) {
                    ++attempts[j];
                    core::SweepJobStats st;
                    core::SweepOutcome out =
                        core::sweepCancelRequested()
                            ? core::cancelledOutcome(jobs[j])
                            : core::runSweepJobIsolated(jobs[j],
                                                        &st);
                    out.stats = st;
                    recordOutcome(j, std::move(out), 0);
                }
                pending.clear();
                continue;
            }
        }

        for (std::size_t s = 0; s < slots.size(); ++s)
            dispatch(s);

        for (std::size_t s = 0; s < slots.size(); ++s)
            fds[s] = slots[s].alive ? slots[s].child.fromChild : -1;
        pollChildren(fds, events, 10);

        for (std::size_t s = 0; s < slots.size(); ++s) {
            Slot &slot = slots[s];
            if (!slot.alive ||
                !(events[s].readable || events[s].closed))
                continue;
            std::string bytes;
            const bool open =
                drainPipe(slot.child.fromChild, bytes);
            if (!bytes.empty())
                slot.frames.feed(bytes.data(), bytes.size());
            const bool sane = processFrames(s);
            if (!open || !sane || events[s].closed)
                handleWorkerLoss(s);
        }

        const Clock::time_point now = Clock::now();
        for (std::size_t s = 0; s < slots.size(); ++s) {
            Slot &slot = slots[s];
            if (!slot.alive || now - slot.lastBeat < heartbeatDeadline)
                continue;
            warn("sweep worker ", s, " missed ", o.heartbeatMiss,
                 " heartbeats (", o.heartbeatMs,
                 " ms interval); killing it");
            handleWorkerLoss(s);
        }

        finalizePrefix();
    }
    finalizePrefix();

    // Orderly shutdown: every still-live worker is idle by now.
    const std::string bye = encodeShutdown();
    for (Slot &slot : slots) {
        if (!slot.alive)
            continue;
        writeFrameBlocking(slot.child.toChild, bye);
        closeChildPipes(slot.child);
        std::string cause;
        reapChild(slot.child.pid, true, cause);
        slot.alive = false;
    }

    if (stats) {
        stats->jobs = n;
        stats->workers = nworkers;
        stats->wallSeconds = wall.seconds();
        stats->mproc = true;
        stats->workerRespawns = respawns;
        stats->requeuedJobs = requeues;
        stats->references = 0;
        stats->okPoints = 0;
        stats->failedPoints = 0;
        stats->degradedPoints = 0;
        stats->reusedPoints = 0;
        for (const auto &out : outcomes) {
            stats->references += out.result.references();
            if (out.status == core::PointStatus::Failed)
                ++stats->failedPoints;
            else
                ++stats->okPoints;
            if (out.status == core::PointStatus::Degraded)
                ++stats->degradedPoints;
            if (out.reused)
                ++stats->reusedPoints;
        }
        // Generation done in the supervisor's prewarm plus whatever
        // the workers reported back over the pipe.
        stats->arenaStreamsGenerated = prewarm.streamsGenerated;
        stats->arenaStreamsReused = prewarm.streamsReused;
        stats->arenaRefsGenerated = prewarm.refsGenerated;
        stats->arenaGenSeconds = prewarm.genSeconds;
        for (const auto &js : job_stats) {
            stats->arenaStreamsGenerated += js.arenaStreamsGenerated;
            stats->arenaStreamsReused += js.arenaStreamsReused;
            stats->arenaRefsGenerated += js.arenaRefsGenerated;
            stats->arenaGenSeconds += js.arenaGenSeconds;
        }
        stats->arenaBytes = trace::TraceArena::global().totalBytes();
        stats->perJob = std::move(job_stats);
    }
    return outcomes;
}

#else // _WIN32

std::vector<core::SweepOutcome>
runSweepMproc(const std::vector<core::SweepJob> &jobs,
              const MprocOptions &opts, core::SweepStats *stats,
              const core::SweepProgress &progress,
              core::RunJournal *journal)
{
    return core::runSweepOutcomes(jobs, opts.workers, stats,
                                  progress, journal);
}

#endif

} // namespace gaas::proc
