/**
 * @file
 * The multi-process sweep executor: a supervisor that forks worker
 * processes, shards SweepJobs to them over a length-prefixed pipe
 * protocol (proc/protocol.hh), and survives the death of any
 * worker.
 *
 * Fault model, layered on PR-4's in-process isolation:
 *
 *  - A job that *throws* in a worker comes back as a Failed
 *    outcome, exactly as in-process -- the worker survives.
 *  - A worker that *dies* (SIGSEGV, SIGKILL, OOM kill, _Exit) is
 *    detected by pipe EOF + waitpid; its in-flight job is requeued
 *    with exponential backoff and a replacement worker is forked.
 *  - A worker that *hangs* (no heartbeat frame within
 *    heartbeatMs * heartbeatMiss) is SIGKILLed by the supervisor
 *    and handled as a death.  This catches stuck processes the
 *    per-job cycle watchdog cannot (that watchdog lives inside the
 *    simulation loop; a worker wedged outside it never trips it).
 *  - A job whose workers keep dying is poison: after maxAttempts
 *    dispatches it degrades to a Failed outcome with the stable
 *    code `worker-lost` -- the ladder completes, the CSV shows
 *    `failed:worker-lost`, the process exits nonzero after
 *    draining.  One bad point never aborts a campaign.
 *  - A *supervisor* death is recovered the same way a single
 *    process death always was: every finalized point was appended
 *    to the fsynced resume journal, so `--resume` replays it.
 *
 * Results cross the pipe in core/result_io's bit-exact encoding,
 * and the supervisor finalizes points in submission order through
 * the same progress/journal path as the in-process engine -- so
 * CSVs, per-point JSON dumps and journals are byte-identical to a
 * serial run no matter how many workers died along the way.
 *
 * Workers are forked after the supervisor pre-generates the trace
 * arena streams the ladder needs, so children replay shared
 * immutable pages copy-on-write instead of regenerating per
 * process.
 */

#ifndef GAAS_PROC_EXECUTOR_HH
#define GAAS_PROC_EXECUTOR_HH

#include <vector>

#include "core/sweep.hh"

namespace gaas::core
{
class RunJournal;
}

namespace gaas::proc
{

/** Supervision knobs; fromEnv() reads the GAAS_MPROC_* variables
 *  (strict util/env parsing, silently keeping defaults if unset). */
struct MprocOptions
{
    /** Worker processes; 0 = core::sweepWorkers() (GAAS_BENCH_JOBS
     *  else hardware_concurrency). */
    unsigned workers = 0;

    /** Total dispatch attempts per job before it is poison and
     *  degrades to failed:worker-lost (GAAS_MPROC_RETRIES). */
    unsigned maxAttempts = 3;

    /** Worker heartbeat interval, milliseconds
     *  (GAAS_MPROC_HEARTBEAT_MS). */
    unsigned heartbeatMs = 500;

    /** Heartbeat intervals of silence before a worker is declared
     *  hung and SIGKILLed (GAAS_MPROC_HEARTBEAT_MISS). */
    unsigned heartbeatMiss = 20;

    /** Base requeue delay after a worker loss, milliseconds; the
     *  Nth requeue of a job waits backoffMs << (N-1), capped at
     *  5 s (GAAS_MPROC_BACKOFF_MS). */
    unsigned backoffMs = 50;

    static MprocOptions fromEnv();
};

/**
 * Worker-process count requested via GAAS_BENCH_MPROC (strict
 * parse); 0 = multi-process mode off.  The bench harness also
 * accepts `--mproc N`, which overrides this.
 */
unsigned mprocWorkers();

/**
 * Run @p jobs across opts.workers forked worker processes.  Same
 * contract as core::runSweepOutcomes -- submission-order outcomes
 * and progress, journal reuse/append, per-job isolation,
 * cooperative cancellation -- plus the cross-process fault model
 * described in the file comment.  SweepStats gains mproc=true,
 * workerRespawns and requeuedJobs; per-job telemetry carries the
 * worker slot and requeue count.
 *
 * On platforms without fork (Windows), falls back to the
 * in-process pool.
 */
std::vector<core::SweepOutcome>
runSweepMproc(const std::vector<core::SweepJob> &jobs,
              const MprocOptions &opts = {},
              core::SweepStats *stats = nullptr,
              const core::SweepProgress &progress = {},
              core::RunJournal *journal = nullptr);

} // namespace gaas::proc

#endif // GAAS_PROC_EXECUTOR_HH
