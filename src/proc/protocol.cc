#include "protocol.hh"

#include <charconv>
#include <cstring>

#include "core/result_io.hh"
#include "obs/json.hh"
#include "util/error.hh"

namespace gaas::proc
{

namespace
{

/** Sanity cap on one frame: a result JSON is a few KiB; anything
 *  past this is a corrupt length prefix, not a real frame. */
constexpr std::size_t kMaxFramePayload = 16u * 1024 * 1024;

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(std::string_view in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    return v;
}

std::uint64_t
getU64(std::string_view in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    return v;
}

[[noreturn]] void
badFrame(const char *what)
{
    gaas_error(ErrorCode::Internal,
               "mproc protocol: malformed frame (", what, ")");
}

obs::JsonValue
num(double v)
{
    return obs::JsonValue::number(v);
}

double
memberDouble(const obs::JsonValue &v, const char *name)
{
    const obs::JsonValue *m = v.member(name);
    if (!m)
        badFrame(name);
    if (m->type == obs::JsonValue::Type::Null)
        return 0.0; // non-finite host timing -> null; placeholder ok
    if (m->type != obs::JsonValue::Type::Number)
        badFrame(name);
    double out = 0.0;
    const char *first = m->scalar.data();
    const char *last = first + m->scalar.size();
    const auto res = std::from_chars(first, last, out);
    if (res.ec != std::errc{} || res.ptr != last)
        badFrame(name);
    return out;
}

std::uint64_t
memberU64(const obs::JsonValue &v, const char *name)
{
    const obs::JsonValue *m = v.member(name);
    if (!m || m->type != obs::JsonValue::Type::Number)
        badFrame(name);
    std::uint64_t out = 0;
    const char *first = m->scalar.data();
    const char *last = first + m->scalar.size();
    const auto res = std::from_chars(first, last, out);
    if (res.ec != std::errc{} || res.ptr != last)
        badFrame(name);
    return out;
}

} // namespace

std::string
encodeJobRequest(std::uint64_t job, std::uint32_t flags)
{
    std::string out;
    out.reserve(1 + 4 + 8);
    out.push_back(static_cast<char>(FrameType::Job));
    putU32(out, flags);
    putU64(out, job);
    return out;
}

std::string
encodeShutdown()
{
    return std::string(1, static_cast<char>(FrameType::Shutdown));
}

std::string
encodeHeartbeat()
{
    return std::string(1, static_cast<char>(FrameType::Heartbeat));
}

std::string
encodeResult(std::uint64_t job, const core::SweepOutcome &outcome)
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc.members.emplace_back(
        "status", obs::JsonValue::string(
                      core::pointStatusName(outcome.status)));
    if (outcome.status == core::PointStatus::Failed) {
        doc.members.emplace_back(
            "code", obs::JsonValue::string(
                        errorCodeName(outcome.errorCode)));
        doc.members.emplace_back(
            "error", obs::JsonValue::string(outcome.error));
        // The zeroed result still names its configuration; the
        // figure CSVs print it next to the failed cell.
        doc.members.emplace_back(
            "config",
            obs::JsonValue::string(outcome.result.configName));
    } else {
        doc.members.emplace_back(
            "result", core::resultToJson(outcome.result));
    }

    obs::JsonValue st = obs::JsonValue::object();
    st.members.emplace_back("build_seconds",
                            num(outcome.stats.buildSeconds));
    st.members.emplace_back("sim_seconds",
                            num(outcome.stats.simSeconds));
    st.members.emplace_back("total_seconds",
                            num(outcome.stats.totalSeconds));
    st.members.emplace_back(
        "arena_streams_generated",
        obs::JsonValue::number(
            Count(outcome.stats.arenaStreamsGenerated)));
    st.members.emplace_back(
        "arena_streams_reused",
        obs::JsonValue::number(
            Count(outcome.stats.arenaStreamsReused)));
    st.members.emplace_back(
        "arena_refs_generated",
        obs::JsonValue::number(
            Count(outcome.stats.arenaRefsGenerated)));
    st.members.emplace_back("arena_gen_seconds",
                            num(outcome.stats.arenaGenSeconds));
    doc.members.emplace_back("stats", std::move(st));

    std::string out;
    out.push_back(static_cast<char>(FrameType::Result));
    putU64(out, job);
    out += obs::writeJsonCompact(doc);
    return out;
}

Request
decodeRequest(std::string_view payload)
{
    if (payload.empty())
        badFrame("empty request");
    Request req;
    switch (static_cast<FrameType>(
        static_cast<unsigned char>(payload[0]))) {
      case FrameType::Shutdown:
        req.type = FrameType::Shutdown;
        return req;
      case FrameType::Job:
        if (payload.size() != 1 + 4 + 8)
            badFrame("short job request");
        req.type = FrameType::Job;
        req.flags = getU32(payload, 1);
        req.job = getU64(payload, 5);
        return req;
      default:
        badFrame("unknown request type");
    }
}

FrameType
decodeResponse(std::string_view payload, std::uint64_t &job,
               core::SweepOutcome &outcome)
{
    if (payload.empty())
        badFrame("empty response");
    const auto type = static_cast<FrameType>(
        static_cast<unsigned char>(payload[0]));
    if (type == FrameType::Heartbeat)
        return type;
    if (type != FrameType::Result)
        badFrame("unknown response type");
    if (payload.size() < 1 + 8)
        badFrame("short result frame");
    job = getU64(payload, 1);

    const obs::JsonValue doc =
        obs::parseJson(payload.substr(1 + 8));
    const obs::JsonValue *status = doc.member("status");
    if (!status || status->type != obs::JsonValue::Type::String)
        badFrame("status");
    outcome = core::SweepOutcome{};
    if (!core::parsePointStatus(status->scalar, outcome.status))
        badFrame("status name");
    if (outcome.status == core::PointStatus::Failed) {
        const obs::JsonValue *code = doc.member("code");
        if (!code || code->type != obs::JsonValue::Type::String ||
            !parseErrorCode(code->scalar, outcome.errorCode))
            badFrame("code");
        if (const obs::JsonValue *err = doc.member("error"))
            outcome.error = err->scalar;
        if (const obs::JsonValue *cfg = doc.member("config"))
            outcome.result.configName = cfg->scalar;
    } else {
        const obs::JsonValue *result = doc.member("result");
        if (!result)
            badFrame("result");
        outcome.result = core::resultFromJson(*result);
    }

    const obs::JsonValue *st = doc.member("stats");
    if (!st || st->type != obs::JsonValue::Type::Object)
        badFrame("stats");
    outcome.stats.buildSeconds = memberDouble(*st, "build_seconds");
    outcome.stats.simSeconds = memberDouble(*st, "sim_seconds");
    outcome.stats.totalSeconds = memberDouble(*st, "total_seconds");
    outcome.stats.arenaStreamsGenerated =
        memberU64(*st, "arena_streams_generated");
    outcome.stats.arenaStreamsReused =
        memberU64(*st, "arena_streams_reused");
    outcome.stats.arenaRefsGenerated =
        memberU64(*st, "arena_refs_generated");
    outcome.stats.arenaGenSeconds =
        memberDouble(*st, "arena_gen_seconds");
    return type;
}

void
FrameSplitter::feed(const char *data, std::size_t size)
{
    // Compact once the consumed prefix dominates; keeps the buffer
    // O(one frame) over a long sweep.
    if (used > 0 && used >= buffer.size() / 2) {
        buffer.erase(0, used);
        used = 0;
    }
    buffer.append(data, size);
}

bool
FrameSplitter::next(std::string &payload)
{
    if (buffer.size() - used < 4)
        return false;
    const std::size_t len = getU32(buffer, used);
    if (len > kMaxFramePayload)
        badFrame("oversized length prefix");
    if (buffer.size() - used < 4 + len)
        return false;
    payload.assign(buffer, used + 4, len);
    used += 4 + len;
    return true;
}

} // namespace gaas::proc
