/**
 * @file
 * Wire protocol of the multi-process sweep executor.
 *
 * The supervisor and its worker children speak length-prefixed
 * frames over anonymous pipes: a 4-byte little-endian payload
 * length, then the payload, whose first byte is the frame type.
 *
 * Requests (supervisor -> worker):
 *   Job       u8 type, u32le flags, u64le job index.  The index is
 *             into the job vector the child inherited at fork time,
 *             so the job itself -- config, budgets, even a custom
 *             workload builder -- never needs to cross the pipe.
 *   Shutdown  u8 type.  The worker drains and _Exit(0)s.
 *
 * Responses (worker -> supervisor):
 *   Heartbeat u8 type.  Emitted on a timer by a worker-side thread;
 *             the supervisor SIGKILLs a worker whose last frame of
 *             any kind is older than its heartbeat deadline.
 *   Result    u8 type, u64le job index, then a compact-JSON
 *             SweepOutcome.  The embedded SimResult reuses
 *             core/result_io's bit-exact encoding -- the same bytes
 *             the resume journal stores -- so a result that crossed
 *             a process boundary is indistinguishable from one
 *             simulated in-process.
 *
 * Frames are small (a result is a few KiB) relative to the pipe
 * buffer, so worker writes never block against a live supervisor;
 * the supervisor side reads non-blocking through FrameSplitter,
 * which reassembles frames across short reads.
 */

#ifndef GAAS_PROC_PROTOCOL_HH
#define GAAS_PROC_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "core/sweep.hh"

namespace gaas::proc
{

/** Frame type tags (first payload byte). */
enum class FrameType : unsigned char
{
    Job = 1,
    Shutdown = 2,
    Heartbeat = 3,
    Result = 4,
};

/** @name Job-request flags (fault injection, supervisor-counted) */
///@{
inline constexpr std::uint32_t kFlagKill = 1u << 0; //!< raise SIGKILL
inline constexpr std::uint32_t kFlagHang = 1u << 1; //!< mute + sleep
///@}

/** A decoded request frame. */
struct Request
{
    FrameType type = FrameType::Shutdown;
    std::uint32_t flags = 0;
    std::uint64_t job = 0;
};

/** Encode a Job request (payload only, no length prefix). */
std::string encodeJobRequest(std::uint64_t job, std::uint32_t flags);

/** Encode a Shutdown request. */
std::string encodeShutdown();

/** Encode a Heartbeat response. */
std::string encodeHeartbeat();

/**
 * Encode a Result response for @p job: the outcome's disposition,
 * error (if any), telemetry and -- for non-failed points -- the
 * bit-exact SimResult.
 */
std::string encodeResult(std::uint64_t job,
                         const core::SweepOutcome &outcome);

/**
 * Decode a request payload.  Throws SimError(Internal) on a
 * malformed or truncated frame -- a worker that cannot trust its
 * supervisor's bytes must die loudly, not guess.
 */
Request decodeRequest(std::string_view payload);

/**
 * Decode a response payload into @p job / @p outcome.
 *
 * @return the frame type; @p job and @p outcome are only written
 *         for FrameType::Result
 * @throws SimError(Internal) on a malformed frame (the supervisor
 *         treats the worker as lost)
 */
FrameType decodeResponse(std::string_view payload,
                         std::uint64_t &job,
                         core::SweepOutcome &outcome);

/**
 * Reassembles length-prefixed frames from an arbitrarily chunked
 * byte stream (the supervisor's non-blocking pipe reads).
 */
class FrameSplitter
{
  public:
    /** Append @p size raw bytes from the pipe. */
    void feed(const char *data, std::size_t size);

    /**
     * Pop the next complete frame's payload into @p payload.
     *
     * @return true if a full frame was available
     * @throws SimError(Internal) if the stream declares a frame
     *         larger than the sanity cap (a corrupt length prefix)
     */
    bool next(std::string &payload);

    /** Bytes buffered but not yet returned (torn tail). */
    std::size_t pendingBytes() const { return buffer.size() - used; }

  private:
    std::string buffer;
    std::size_t used = 0;
};

} // namespace gaas::proc

#endif // GAAS_PROC_PROTOCOL_HH
