#include "distribution.hh"

#include <cmath>

#include "util/logging.hh"

namespace gaas::stats
{

double
SampleStat::stddev() const
{
    return std::sqrt(variance());
}

double
SampleStat::stdError() const
{
    return n > 1
               ? std::sqrt(sampleVariance() / static_cast<double>(n))
               : 0.0;
}

void
SampleStat::merge(const SampleStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n + other.n);
    const double delta = other.mu - mu;
    const double new_mu =
        mu + delta * static_cast<double>(other.n) / total;
    m2 = m2 + other.m2 +
         delta * delta * static_cast<double>(n) *
             static_cast<double>(other.n) / total;
    mu = new_mu;
    n += other.n;
    if (other.lo < lo)
        lo = other.lo;
    if (other.hi > hi)
        hi = other.hi;
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width(bucket_width), counts(bucket_count, 0)
{
    if (bucket_width <= 0.0)
        gaas_fatal("Histogram bucket width must be positive");
    if (bucket_count == 0)
        gaas_fatal("Histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    sample.add(x);
    if (x < 0.0) {
        ++underflowCount;
        return;
    }
    const auto idx = static_cast<std::size_t>(x / width);
    if (idx >= counts.size())
        ++overflowCount;
    else
        ++counts[idx];
}

double
Histogram::cdf(double x) const
{
    const std::uint64_t n = sample.count();
    if (n == 0)
        return 0.0;
    if (x < 0.0) {
        return static_cast<double>(underflowCount) /
               static_cast<double>(n);
    }
    // Bucket i lies (at least partly) below x iff its lower edge
    // i*width < x, i.e. for the first ceil(x/width) buckets.  Using
    // ceil (not floor with an inclusive bound) keeps the CDF exact at
    // bucket boundaries: cdf(k*width) counts exactly the samples in
    // buckets 0..k-1 plus the underflow tail, which are precisely
    // the samples < k*width.
    const double buckets_below = std::ceil(x / width);
    std::uint64_t below = underflowCount;
    const std::size_t limit =
        buckets_below >= static_cast<double>(counts.size())
            ? counts.size()
            : static_cast<std::size_t>(buckets_below);
    for (std::size_t i = 0; i < limit; ++i)
        below += counts[i];
    if (buckets_below > static_cast<double>(counts.size()))
        below += overflowCount;
    return static_cast<double>(below) / static_cast<double>(n);
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t n = sample.count();
    if (n == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the order statistic the quantile asks for, 1-based.
    // ceil (not truncation) keeps this consistent with cdf(): the
    // q-quantile is the smallest edge x with cdf-mass >= q, so for
    // q*n fractional we must step up to the next whole sample, and
    // q = 0 still asks for the smallest sample (rank 1) rather than
    // an empty prefix (a truncated rank 0 made quantile(0) return
    // 0.0 even when every sample was large).
    const double scaled = q * static_cast<double>(n);
    std::uint64_t target = static_cast<std::uint64_t>(std::ceil(scaled));
    if (target == 0)
        target = 1;
    std::uint64_t cum = underflowCount;
    if (cum >= target)
        return 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= target)
            return width * static_cast<double>(i + 1);
    }
    return width * static_cast<double>(counts.size());
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    underflowCount = 0;
    overflowCount = 0;
    sample.reset();
}

} // namespace gaas::stats
