#include "distribution.hh"

#include <cmath>

#include "util/logging.hh"

namespace gaas::stats
{

double
SampleStat::stddev() const
{
    return std::sqrt(variance());
}

void
SampleStat::merge(const SampleStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n + other.n);
    const double delta = other.mu - mu;
    const double new_mu =
        mu + delta * static_cast<double>(other.n) / total;
    m2 = m2 + other.m2 +
         delta * delta * static_cast<double>(n) *
             static_cast<double>(other.n) / total;
    mu = new_mu;
    n += other.n;
    if (other.lo < lo)
        lo = other.lo;
    if (other.hi > hi)
        hi = other.hi;
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width(bucket_width), counts(bucket_count, 0)
{
    if (bucket_width <= 0.0)
        gaas_fatal("Histogram bucket width must be positive");
    if (bucket_count == 0)
        gaas_fatal("Histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    sample.add(x);
    if (x < 0.0) {
        ++counts[0];
        return;
    }
    const auto idx = static_cast<std::size_t>(x / width);
    if (idx >= counts.size())
        ++overflowCount;
    else
        ++counts[idx];
}

double
Histogram::cdf(double x) const
{
    if (sample.count() == 0)
        return 0.0;
    std::uint64_t below = 0;
    const auto limit = static_cast<std::size_t>(
        x < 0.0 ? 0.0 : std::floor(x / width));
    for (std::size_t i = 0; i < counts.size() && i <= limit; ++i)
        below += counts[i];
    if (limit >= counts.size())
        below += overflowCount;
    return static_cast<double>(below) /
           static_cast<double>(sample.count());
}

double
Histogram::quantile(double q) const
{
    if (sample.count() == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(sample.count()));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        cum += counts[i];
        if (cum >= target)
            return width * static_cast<double>(i + 1);
    }
    return width * static_cast<double>(counts.size());
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    overflowCount = 0;
    sample.reset();
}

} // namespace gaas::stats
