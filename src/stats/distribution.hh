/**
 * @file
 * Scalar sample statistics and bucketed distributions.
 *
 * The simulator uses these to characterise workloads (basic-block
 * lengths, reuse distances, write-buffer occupancy) and the test suite
 * uses them to assert statistical properties of the synthetic trace
 * generator.
 */

#ifndef GAAS_STATS_DISTRIBUTION_HH
#define GAAS_STATS_DISTRIBUTION_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace gaas::stats
{

/**
 * Running mean / variance / extrema of a scalar sample stream
 * (Welford's online algorithm, numerically stable).
 */
class SampleStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        ++n;
        const double delta = x - mu;
        mu += delta / static_cast<double>(n);
        m2 += delta * (x - mu);
        if (x < lo)
            lo = x;
        if (x > hi)
            hi = x;
    }

    std::uint64_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }

    /** Population variance (divides by n).  Feeds the dumped .stddev
     *  metric keys; inference uses sampleVariance()/stdError(). */
    double
    variance() const
    {
        return n ? m2 / static_cast<double>(n) : 0.0;
    }

    /** Unbiased sample variance (divides by n - 1; 0 for n < 2).
     *  This is the estimator confidence-interval math must use. */
    double
    sampleVariance() const
    {
        return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    }

    /** Standard error of the mean, sqrt(sampleVariance / n)
     *  (0 for n < 2). */
    double stdError() const;

    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    /** Merge another sample set into this one. */
    void merge(const SampleStat &other);

    /** Discard all samples. */
    void reset() { *this = SampleStat{}; }

  private:
    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width bucketed histogram over [0, bucketWidth * bucketCount),
 * with underflow and overflow tail buckets; also tracks the
 * SampleStat moments.  Regular bucket @p i covers the half-open range
 * [i * width, (i + 1) * width).
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each bucket (> 0)
     * @param bucket_count number of regular buckets (> 0)
     */
    Histogram(double bucket_width, std::size_t bucket_count);

    /** Add one sample (negative samples count into the underflow
     *  tail, never into bucket 0). */
    void add(double x);

    /** Count in regular bucket @p i. */
    std::uint64_t bucket(std::size_t i) const { return counts.at(i); }

    /** Count of samples below 0 (below the first regular bucket). */
    std::uint64_t underflow() const { return underflowCount; }

    /** Count of samples beyond the last regular bucket. */
    std::uint64_t overflow() const { return overflowCount; }

    std::size_t bucketCount() const { return counts.size(); }
    double bucketWidth() const { return width; }

    const SampleStat &moments() const { return sample; }

    /**
     * Empirical CDF approximated from the buckets: the fraction of
     * samples in the underflow tail plus every bucket whose lower
     * edge lies below @p x (a partially covered bucket counts in
     * full).  Exact for P(sample < x) whenever @p x is a bucket
     * boundary; for @p x < 0 returns only the underflow fraction.
     */
    double cdf(double x) const;

    /** Smallest bucket upper edge whose CDF covers the rank
     *  ceil(q * count) (clamped to at least rank 1, so q = 0 asks for
     *  the smallest sample), consistent with the cdf() boundary
     *  convention.  Returns 0 when the quantile falls in the
     *  underflow tail and the max edge when it falls in the overflow
     *  tail; @p q is clamped to [0, 1]. */
    double quantile(double q) const;

    void reset();

  private:
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t underflowCount = 0;
    std::uint64_t overflowCount = 0;
    SampleStat sample;
};

} // namespace gaas::stats

#endif // GAAS_STATS_DISTRIBUTION_HH
