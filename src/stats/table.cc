#include "table.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/file_io.hh"
#include "util/logging.hh"

namespace gaas::stats
{

Table::Table(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    if (headers.empty())
        gaas_fatal("Table requires at least one column");
}

void
Table::setTitle(std::string title_)
{
    title = std::move(title_);
}

Table &
Table::newRow()
{
    if (!rows.empty() && rows.back().size() != headers.size()) {
        gaas_panic("Table row has ", rows.back().size(),
                   " cells, expected ", headers.size());
    }
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    if (rows.empty())
        gaas_panic("Table::cell called before newRow");
    if (rows.back().size() >= headers.size())
        gaas_panic("Table row overflow: more cells than headers");
    rows.back().push_back(text);
    return *this;
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(int value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    if (!title.empty())
        os << title << '\n';

    auto rule = [&]() {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << std::string(widths[c] + 2, '-');
            if (c + 1 < widths.size())
                os << '+';
        }
        os << '\n';
    };

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << ' ' << std::setw(static_cast<int>(widths[c]))
               << std::right << text << ' ';
            if (c + 1 < headers.size())
                os << '|';
        }
        os << '\n';
    };

    emitRow(headers);
    rule();
    for (const auto &row : rows)
        emitRow(row);
    os.flush();
}

namespace
{

/** Quote a CSV field if it contains separators or quotes. */
std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < headers.size(); ++c) {
        os << csvEscape(headers[c]);
        if (c + 1 < headers.size())
            os << ',';
    }
    os << '\n';
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < headers.size(); ++c) {
            if (c < row.size())
                os << csvEscape(row[c]);
            if (c + 1 < headers.size())
                os << ',';
        }
        os << '\n';
    }
}

bool
Table::writeCsv(const std::string &path) const
{
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);
    // Atomic publication (temp + rename) with bounded retry: a
    // reader never observes a half-written CSV, and a killed bench
    // leaves either the old file or the new one, never a torn mix.
    std::ostringstream out;
    printCsv(out);
    std::string error;
    if (!util::writeFileAtomicRetry(path, out.str(), &error)) {
        warn("CSV write: ", error);
        return false;
    }
    return true;
}

} // namespace gaas::stats
