/**
 * @file
 * ASCII / CSV table formatting used by every bench binary.
 *
 * Each bench target regenerates one table or figure from the paper by
 * printing the same rows/series the paper reports; Table gives them a
 * single, consistent way to do that (aligned text to stdout plus a CSV
 * file for plotting).
 */

#ifndef GAAS_STATS_TABLE_HH
#define GAAS_STATS_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gaas::stats
{

/**
 * A simple column-aligned table.
 *
 * Cells are stored as strings; numeric helpers format with a fixed
 * precision so figures regenerate identically run to run.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Optional caption printed above the table. */
    void setTitle(std::string title);

    /** Start a new (empty) row; subsequent cell() calls fill it. */
    Table &newRow();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &text);

    /** Append an integer cell. */
    Table &cell(std::uint64_t value);
    Table &cell(int value);

    /** Append a floating-point cell with @p precision digits. */
    Table &cell(double value, int precision = 4);

    /** Number of data rows so far. */
    std::size_t rowCount() const { return rows.size(); }

    /** Number of columns (fixed by the headers). */
    std::size_t columnCount() const { return headers.size(); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (headers + rows). */
    void printCsv(std::ostream &os) const;

    /**
     * Write the CSV rendering to @p path, creating parent directories
     * if needed.  @return true on success (a failure is reported with
     * warn() but is not fatal: the stdout rendering already happened).
     */
    bool writeCsv(const std::string &path) const;

  private:
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace gaas::stats

#endif // GAAS_STATS_TABLE_HH
