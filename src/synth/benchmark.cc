#include "benchmark.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gaas::synth
{

const char *
arithClassTag(ArithClass c)
{
    switch (c) {
      case ArithClass::Integer:
        return "(I)";
      case ArithClass::SingleFloat:
        return "(S)";
      case ArithClass::DoubleFloat:
        return "(D)";
    }
    return "(?)";
}

SyntheticBenchmark::SyntheticBenchmark(BenchmarkSpec spec_)
    : benchSpec(std::move(spec_)),
      code(benchSpec.code, benchSpec.seed),
      data(benchSpec.data, benchSpec.seed),
      mixRng(benchSpec.seed ^ 0x5eed)
{
    if (benchSpec.loadFrac + benchSpec.storeFrac > 1.0) {
        gaas_fatal("benchmark ", benchSpec.name,
                   ": loadFrac + storeFrac exceeds 1");
    }
    if (benchSpec.simInstructions == 0)
        gaas_fatal("benchmark ", benchSpec.name,
                   ": simInstructions must be nonzero");
}

bool
SyntheticBenchmark::next(trace::MemRef &ref)
{
    if (havePending) {
        ref = pendingData;
        havePending = false;
        return true;
    }
    if (instructionsEmitted >= benchSpec.simInstructions)
        return false;

    ++instructionsEmitted;
    ref.addr = code.nextPc();
    ref.kind = trace::RefKind::Inst;
    ref.partialWord = false;
    ref.syscall =
        mixRng.nextBernoulli(benchSpec.syscallsPerMInstr * 1e-6);

    // At most one data reference per instruction (load/store
    // architecture).  Stores come in word-sequential bursts (see
    // DataParams::storeBurstMean); the burst-trigger probability is
    // scaled down so the overall store fraction stays at storeFrac.
    if (storeBurstLeft > 0) {
        --storeBurstLeft;
        storeBurstAddr += kWordBytes;
        pendingData = trace::storeRef(storeBurstAddr, false);
        havePending = true;
        return true;
    }

    const double burst_mean =
        std::max(benchSpec.data.storeBurstMean, 1.0);
    const double store_trigger = benchSpec.storeFrac / burst_mean;
    const double r = mixRng.nextDouble();
    if (r < benchSpec.loadFrac) {
        pendingData = trace::loadRef(data.nextLoad());
        havePending = true;
    } else if (r < benchSpec.loadFrac + store_trigger) {
        const Addr addr = data.nextStore();
        pendingData =
            trace::storeRef(addr, data.nextStoreIsPartial());
        havePending = true;
        storeBurstAddr = addr;
        storeBurstLeft = mixRng.nextGeometric(burst_mean) - 1;
    }
    return true;
}

void
SyntheticBenchmark::reset()
{
    code.reset();
    data.reset();
    mixRng = Rng(benchSpec.seed ^ 0x5eed);
    instructionsEmitted = 0;
    havePending = false;
    storeBurstLeft = 0;
    storeBurstAddr = 0;
}

std::string
SyntheticBenchmark::name() const
{
    return benchSpec.name;
}

std::unique_ptr<trace::TraceSource>
makeBenchmark(const BenchmarkSpec &spec)
{
    return std::make_unique<SyntheticBenchmark>(spec);
}

} // namespace gaas::synth
