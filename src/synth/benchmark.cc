#include "benchmark.hh"

#include <algorithm>
#include <cstdio>
#include <type_traits>

#include "util/logging.hh"

namespace gaas::synth
{

const char *
arithClassTag(ArithClass c)
{
    switch (c) {
      case ArithClass::Integer:
        return "(I)";
      case ArithClass::SingleFloat:
        return "(S)";
      case ArithClass::DoubleFloat:
        return "(D)";
    }
    return "(?)";
}

SyntheticBenchmark::SyntheticBenchmark(BenchmarkSpec spec_)
    : benchSpec(std::move(spec_)),
      code(benchSpec.code, benchSpec.seed),
      data(benchSpec.data, benchSpec.seed),
      mixRng(benchSpec.seed ^ 0x5eed)
{
    if (benchSpec.loadFrac + benchSpec.storeFrac > 1.0) {
        gaas_fatal("benchmark ", benchSpec.name,
                   ": loadFrac + storeFrac exceeds 1");
    }
    if (benchSpec.simInstructions == 0)
        gaas_fatal("benchmark ", benchSpec.name,
                   ": simInstructions must be nonzero");

    syscallProb = benchSpec.syscallsPerMInstr * 1e-6;
    burstMean = std::max(benchSpec.data.storeBurstMean, 1.0);
    storeTrigger = benchSpec.storeFrac / burstMean;
    burstLen = GeometricSampler(burstMean);
    syscallThresh = bernoulliThreshold(syscallProb);
    loadThresh = bernoulliThreshold(benchSpec.loadFrac);
    dataThresh = bernoulliThreshold(benchSpec.loadFrac + storeTrigger);
}

bool
SyntheticBenchmark::next(trace::MemRef &ref)
{
    // Degenerate single-reference batch.  One implementation defines
    // the stream, so the per-call and batched paths cannot drift; the
    // price is that every next() call re-pays the loop preamble the
    // batch path amortises, which is exactly why the Simulator
    // consumes this source through nextBatch.
    return nextBatch(&ref, 1) == 1;
}

std::size_t
SyntheticBenchmark::nextBatch(trace::MemRef *out, std::size_t n)
{
    // The generator hot loop.  Per-instruction invariants (the
    // burst-trigger division, the syscall probability) are hoisted
    // into members at construction, the bernoulli tests use their
    // exact integer-threshold forms (see bernoulliThreshold), and
    // data references are written straight into the output buffer --
    // only a reference that would overflow the batch goes through
    // the pendingData hand-off.
    std::size_t produced = 0;
    if (n == 0)
        return 0;
    if (havePending) {
        out[produced++] = pendingData;
        havePending = false;
    }

    // Mutable generator state lives in locals for the loop: the
    // opaque model calls (code.nextPc's slow path, data.nextLoad)
    // could alias *this, so member accesses would otherwise be
    // reloaded around every one of them.
    const Count budget = benchSpec.simInstructions;
    Count emitted = instructionsEmitted;
    Count burstLeft = storeBurstLeft;
    Addr burstAddr = storeBurstAddr;
    Rng rng = mixRng;

    while (produced < n && emitted < budget) {
        ++emitted;
        trace::MemRef &inst = out[produced++];
        inst.addr = code.nextPc();
        inst.kind = trace::RefKind::Inst;
        inst.partialWord = false;
        inst.syscall = (rng.next64() >> 11) < syscallThresh;

        // At most one data reference per instruction (load/store
        // architecture); stores come in word-sequential bursts whose
        // trigger probability is scaled so the overall fraction
        // stays at storeFrac.
        trace::MemRef data_ref;
        if (burstLeft > 0) {
            --burstLeft;
            burstAddr += kWordBytes;
            data_ref = trace::storeRef(burstAddr, false);
        } else {
            const std::uint64_t r = rng.next64() >> 11;
            if (r < loadThresh) {
                data_ref = trace::loadRef(data.nextLoad());
            } else if (r < dataThresh) {
                const Addr addr = data.nextStore();
                data_ref =
                    trace::storeRef(addr, data.nextStoreIsPartial());
                burstAddr = addr;
                burstLeft = burstLen.draw(rng) - 1;
            } else {
                continue; // no data reference this instruction
            }
        }
        if (produced < n) {
            out[produced++] = data_ref;
        } else {
            // Batch full mid-instruction: hand the data reference
            // over to the next call.
            pendingData = data_ref;
            havePending = true;
        }
    }

    instructionsEmitted = emitted;
    storeBurstLeft = burstLeft;
    storeBurstAddr = burstAddr;
    mixRng = rng;
    return produced;
}

void
SyntheticBenchmark::reset()
{
    code.reset();
    data.reset();
    mixRng = Rng(benchSpec.seed ^ 0x5eed);
    instructionsEmitted = 0;
    havePending = false;
    storeBurstLeft = 0;
    storeBurstAddr = 0;
}

std::string
SyntheticBenchmark::name() const
{
    return benchSpec.name;
}

std::unique_ptr<trace::TraceSource>
makeBenchmark(const BenchmarkSpec &spec)
{
    return std::make_unique<SyntheticBenchmark>(spec);
}

namespace
{

/** FNV-1a over every spec field (same idiom as core/journal). */
class SpecHash
{
  public:
    void bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= p[i];
            hash *= 0x0000'0100'0000'01b3ull;
        }
    }

    void str(const std::string &s)
    {
        const std::uint64_t len = s.size();
        bytes(&len, sizeof(len));
        bytes(s.data(), s.size());
    }

    template <typename T> void pod(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        bytes(&v, sizeof(v));
    }

    std::uint64_t value() const { return hash; }

  private:
    std::uint64_t hash = 0xcbf2'9ce4'8422'2325ull;
};

} // namespace

std::string
specDigest(const BenchmarkSpec &spec)
{
    SpecHash h;
    h.str(spec.name);
    h.str(spec.description);
    h.pod(static_cast<std::uint8_t>(spec.lang));
    h.pod(static_cast<std::uint8_t>(spec.arith));
    h.pod(spec.paperInstructionsM);
    h.pod(spec.simInstructions);
    h.pod(spec.loadFrac);
    h.pod(spec.storeFrac);
    h.pod(spec.syscallsPerMInstr);
    h.pod(spec.baseCpi);

    const CodeParams &c = spec.code;
    h.pod(c.codeWords);
    h.pod(c.procCount);
    h.pod(c.meanRunLen);
    h.pod(c.maxLoopDepth);
    h.pod(c.meanLoopIters);
    h.pod(c.loopProb);
    h.pod(c.callProb);
    h.pod(c.callZipfAlpha);
    h.pod(c.jumpProb);
    h.pod(c.jumpZipfAlpha);

    const DataParams &d = spec.data;
    h.pod(d.stackWords);
    h.pod(d.globalWords);
    h.pod(d.heapWords);
    h.pod(d.arrayWords);
    h.pod(d.arrayCount);
    h.pod(d.loadStackFrac);
    h.pod(d.loadGlobalFrac);
    h.pod(d.loadArrayFrac);
    h.pod(d.storeStackFrac);
    h.pod(d.storeGlobalFrac);
    h.pod(d.storeArrayFrac);
    h.pod(d.globalAlpha);
    h.pod(d.heapAlpha);
    h.pod(d.arrayStrideWords);
    h.pod(d.arraySegWords);
    h.pod(d.arraySegRepeats);
    h.pod(d.heapLineWords);
    h.pod(d.partialWordStoreFrac);
    h.pod(d.storeBurstMean);
    h.pod(d.sameLineBurstProb);

    h.pod(spec.seed);

    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h.value()));
    return buf;
}

} // namespace gaas::synth
