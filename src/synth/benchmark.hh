/**
 * @file
 * BenchmarkSpec (the Table-1 row of a workload) and
 * SyntheticBenchmark (the TraceSource that plays it).
 */

#ifndef GAAS_SYNTH_BENCHMARK_HH
#define GAAS_SYNTH_BENCHMARK_HH

#include <memory>
#include <string>

#include "synth/code_model.hh"
#include "synth/data_model.hh"
#include "trace/source.hh"

namespace gaas::synth
{

/** Source-language tag (display only; Table 1 lists C and FORTRAN). */
enum class Lang : std::uint8_t { C, Fortran };

/** Arithmetic class, as annotated in Table 1. */
enum class ArithClass : std::uint8_t {
    Integer,        //!< (I)
    SingleFloat,    //!< (S)
    DoubleFloat,    //!< (D)
};

/** @return the Table-1 suffix for @p c: "(I)", "(S)" or "(D)". */
const char *arithClassTag(ArithClass c);

/**
 * Everything that defines one benchmark of the multiprogramming
 * workload: the Table-1 characteristics it reports, the per-
 * instruction CPU-stall rate that reproduces the paper's 1.238 base
 * CPI, and the synthetic model parameters.
 */
struct BenchmarkSpec
{
    std::string name;
    std::string description;
    Lang lang = Lang::C;
    ArithClass arith = ArithClass::Integer;

    /** Paper-scale instruction count in millions (Table 1 column;
     *  display/bookkeeping only -- simulations run simInstructions). */
    double paperInstructionsM = 0.0;

    /** Instructions per pass of the synthetic trace (scaled down from
     *  the paper's billions so a full study runs on a laptop). */
    Count simInstructions = 4'000'000;

    /** Probability an instruction is a load / a store.  The suite is
     *  tuned so the workload-wide store fraction is about 0.0725, the
     *  figure Section 6 of the paper quotes. */
    double loadFrac = 0.20;
    double storeFrac = 0.07;

    /** Voluntary system calls per million instructions (Table 1's
     *  "# System calls" scaled by instruction count); each one forces
     *  a context switch, pessimistically, as in the paper. */
    double syscallsPerMInstr = 2.0;

    /** CPU-stall component of CPI: loads, branch and FP delays.  The
     *  weighted suite average reproduces the paper's 1.238. */
    double baseCpi = 1.238;

    CodeParams code;
    DataParams data;

    std::uint64_t seed = 1;

    /** Table-1 style "# System calls" for the paper-scale run. */
    double paperSyscalls() const
    {
        return syscallsPerMInstr * paperInstructionsM;
    }
};

/**
 * A TraceSource that plays one BenchmarkSpec: emits an Inst record
 * per instruction (PCs from CodeModel) followed by at most one
 * Load/Store record (addresses from DataModel), until the pass's
 * simInstructions are exhausted.
 */
class SyntheticBenchmark : public trace::TraceSource
{
  public:
    explicit SyntheticBenchmark(BenchmarkSpec spec);

    bool next(trace::MemRef &ref) override;
    std::size_t nextBatch(trace::MemRef *out,
                          std::size_t n) override;
    void reset() override;
    std::string name() const override;

    const BenchmarkSpec &spec() const { return benchSpec; }

    /** The instruction-stream model (exposed for tests). */
    const CodeModel &codeModel() const { return code; }

  private:
    BenchmarkSpec benchSpec;
    CodeModel code;
    DataModel data;
    Rng mixRng;

    // Per-instruction invariants hoisted out of the hot path (the
    // spec is immutable after construction).
    double syscallProb = 0.0;
    double burstMean = 1.0;
    double storeTrigger = 0.0;
    GeometricSampler burstLen;

    // Exact integer forms of the per-instruction bernoulli tests,
    // used by the batched loop (see bernoulliThreshold).
    std::uint64_t syscallThresh = 0;
    std::uint64_t loadThresh = 0;
    std::uint64_t dataThresh = 0;

    Count instructionsEmitted = 0;
    trace::MemRef pendingData;
    bool havePending = false;

    /** Remaining stores of the current word-sequential burst. */
    Count storeBurstLeft = 0;
    Addr storeBurstAddr = 0;
};

/** Deep-copyable factory: build a fresh source for @p spec. */
std::unique_ptr<trace::TraceSource>
makeBenchmark(const BenchmarkSpec &spec);

/**
 * Stable hex digest over every field of @p spec (model parameters,
 * seed, budgets).  Two specs with the same digest produce the same
 * reference stream, which is what makes it a safe cache key for the
 * trace arena.
 */
std::string specDigest(const BenchmarkSpec &spec);

} // namespace gaas::synth

#endif // GAAS_SYNTH_BENCHMARK_HH
