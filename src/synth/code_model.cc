#include "code_model.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::synth
{

namespace
{

/** Maximum structure items per sequence, to bound build recursion. */
constexpr unsigned kMaxSeqItems = 64;

/** Words charged against the budget for call/return glue. */
constexpr std::uint64_t kCallGlueWords = 2;

/** Maximum walker call depth (the call graph is acyclic, but deep
 *  chains still cost stack frames). */
constexpr std::size_t kMaxCallDepth = 64;

} // namespace

CodeModel::CodeModel(const CodeParams &params_, std::uint64_t seed_)
    : params(params_), seed(seed_), buildRng(seed_ ^ 0xc0de),
      walkRng(seed_ ^ 0x3a1c)
{
    if (params.procCount == 0)
        gaas_fatal("CodeModel requires at least one procedure");
    if (params.codeWords < params.procCount * 8) {
        gaas_fatal("CodeModel codeWords (", params.codeWords,
                   ") too small for ", params.procCount,
                   " procedures");
    }
    if (params.meanRunLen < 1.0)
        gaas_fatal("CodeModel meanRunLen must be >= 1");

    procs.resize(params.procCount);

    // Divide the code budget among procedures: random proportions
    // with a floor so every procedure has some body.
    const std::uint64_t floor_words = 8;
    std::vector<double> weights(params.procCount);
    double weight_sum = 0.0;
    for (auto &w : weights) {
        w = 0.25 + buildRng.nextDouble();
        weight_sum += w;
    }
    const std::uint64_t distributable =
        params.codeWords - floor_words * params.procCount;

    // Build bodies from the last procedure backwards so calls can
    // target already-sized higher-id procedures (acyclic call graph:
    // procedure i only calls j > i, so recursion never occurs).
    std::vector<std::uint64_t> budgets(params.procCount);
    for (unsigned i = 0; i < params.procCount; ++i) {
        budgets[i] = floor_words +
                     static_cast<std::uint64_t>(
                         static_cast<double>(distributable) *
                         weights[i] / weight_sum);
    }
    for (unsigned i = 0; i < params.procCount; ++i) {
        std::uint64_t budget = budgets[i];
        procs[i].body = buildSeq(i, 0, budget);
    }

    // Lay out procedure text back to back from the text base, word
    // granular, with a small pad between procedures.  A per-program
    // page-granular offset keeps different benchmarks' hot code from
    // landing on identical page colours (and hence identical
    // physically-indexed cache sets) the way identical layouts
    // would.
    Addr next_base = layout::kTextBase +
                     static_cast<Addr>(buildRng.nextBounded(64)) *
                         kPageBytes;
    for (auto &proc : procs) {
        proc.base = next_base;
        proc.sizeWords = layoutProc(proc, 0, proc.body);
        if (proc.sizeWords == 0)
            proc.sizeWords = 1;
        totalWords += proc.sizeWords;
        next_base += wordsToBytes(proc.sizeWords + 2);
    }

    // Fisher-Yates shuffle of the jump-popularity order.
    jumpOrder.resize(params.procCount);
    for (unsigned i = 0; i < params.procCount; ++i)
        jumpOrder[i] = i;
    for (unsigned i = params.procCount - 1; i > 0; --i) {
        const auto j =
            static_cast<unsigned>(buildRng.nextBounded(i + 1));
        std::swap(jumpOrder[i], jumpOrder[j]);
    }

    jumpPareto = ParetoSampler(params.jumpZipfAlpha, procs.size());

    startWalk();
}

std::vector<std::uint32_t>
CodeModel::buildSeq(std::uint32_t proc_id, unsigned depth,
                    std::uint64_t &budget_words)
{
    std::vector<std::uint32_t> seq;
    const bool can_call = proc_id + 1 < params.procCount;

    while (budget_words > 0 && seq.size() < kMaxSeqItems) {
        const double r = buildRng.nextDouble();
        if (depth < params.maxLoopDepth && r < params.loopProb &&
            budget_words >= 4) {
            // Give the loop a random share of the remaining budget.
            std::uint64_t share =
                2 + buildRng.nextBounded(budget_words / 2 + 1);
            std::uint64_t child_budget = std::min(share, budget_words);
            budget_words -= child_budget;
            Node node;
            node.kind = NodeKind::Loop;
            // Deterministic build: use buildRng, not walkRng (the
            // walk stream must replay identically after reset()).
            node.meanIters = 1.0 + static_cast<double>(
                buildRng.nextGeometric(params.meanLoopIters));
            node.children = buildSeq(proc_id, depth + 1, child_budget);
            budget_words += child_budget; // return unused share
            if (node.children.empty())
                continue;
            nodes.push_back(std::move(node));
            seq.push_back(static_cast<std::uint32_t>(nodes.size() - 1));
        } else if (can_call && r < params.loopProb + params.callProb &&
                   budget_words >= kCallGlueWords) {
            Node node;
            node.kind = NodeKind::Call;
            // Zipf-skewed callee choice among higher-id procedures:
            // nearby (low rank) procedures are the hot ones.
            const std::uint64_t span =
                params.procCount - proc_id - 1;
            const std::uint64_t rank = buildRng.nextParetoIndex(
                params.callZipfAlpha, span);
            node.callee = proc_id + 1 + static_cast<std::uint32_t>(rank);
            nodes.push_back(std::move(node));
            seq.push_back(static_cast<std::uint32_t>(nodes.size() - 1));
            budget_words -= kCallGlueWords;
        } else {
            Node node;
            node.kind = NodeKind::Run;
            std::uint64_t len =
                buildRng.nextGeometric(params.meanRunLen);
            len = std::min<std::uint64_t>(len, budget_words);
            node.runLen = static_cast<std::uint32_t>(std::max<
                std::uint64_t>(len, 1));
            budget_words -= std::min<std::uint64_t>(node.runLen,
                                                    budget_words);
            nodes.push_back(std::move(node));
            seq.push_back(static_cast<std::uint32_t>(nodes.size() - 1));
        }
    }
    return seq;
}

std::uint32_t
CodeModel::layoutProc(Proc &proc, std::uint32_t offset,
                      const std::vector<std::uint32_t> &seq)
{
    for (std::uint32_t id : seq) {
        Node &node = nodes[id];
        switch (node.kind) {
          case NodeKind::Run:
            node.runOffset = offset;
            offset += node.runLen;
            break;
          case NodeKind::Loop:
            offset = layoutProc(proc, offset, node.children);
            // Loop closing branch.
            offset += 1;
            break;
          case NodeKind::Call:
            // Call + (eventual) return delay slot.
            offset += static_cast<std::uint32_t>(kCallGlueWords);
            break;
        }
    }
    return offset;
}

void
CodeModel::startWalk()
{
    stack.clear();
    stack.push_back(Frame{0, &procs[0].body, 0, 1});
    runLen = runPos = 0;
    runBase = 0;
}

void
CodeModel::reset()
{
    walkRng = Rng(seed ^ 0x3a1c);
    startWalk();
}

Addr
CodeModel::walkToNextRun()
{
    while (true) {
        if (runPos < runLen) {
            const Addr pc = runBase + wordsToBytes(runPos);
            ++runPos;
            return pc;
        }

        // Phase change: abandon the call stack and restart in a
        // Zipf-popular procedure (see CodeParams::jumpProb and
        // jumpZipfAlpha).
        if (params.jumpProb > 0.0 &&
            walkRng.nextBernoulli(params.jumpProb)) {
            const auto rank = jumpPareto.draw(walkRng);
            const std::uint32_t target = jumpOrder[rank];
            stack.clear();
            stack.push_back(Frame{target, &procs[target].body, 0, 1});
        }

        // Advance the control stack to find the next run.
        Frame &top = stack.back();
        if (top.idx >= top.seq->size()) {
            if (top.itersLeft > 1) {
                --top.itersLeft;
                top.idx = 0;
            } else if (stack.size() > 1) {
                stack.pop_back();
            } else {
                // Main procedure completed: restart it (the program
                // runs for as long as the benchmark needs).
                top.idx = 0;
            }
            continue;
        }

        const Node &node = nodes[(*top.seq)[top.idx]];
        ++top.idx;
        switch (node.kind) {
          case NodeKind::Run:
            runBase = procs[top.procId].base +
                      wordsToBytes(node.runOffset);
            runLen = node.runLen;
            runPos = 0;
            break;
          case NodeKind::Loop: {
            std::uint64_t iters =
                walkRng.nextGeometric(node.meanIters);
            stack.push_back(Frame{top.procId, &node.children, 0,
                                  std::max<std::uint64_t>(iters, 1)});
            break;
          }
          case NodeKind::Call:
            if (stack.size() < kMaxCallDepth) {
                stack.push_back(Frame{node.callee,
                                      &procs[node.callee].body, 0, 1});
            }
            break;
        }
    }
}

} // namespace gaas::synth
