/**
 * @file
 * Synthetic instruction-stream model.
 *
 * CodeModel builds a random static program (procedures containing
 * nested loops, straight-line runs, and calls into an acyclic call
 * graph) and then walks it, producing one instruction address per
 * step.  The structure gives the stream the locality hierarchy real
 * code has: tight inner loops dominate, outer loops revisit larger
 * regions, and calls make occasional excursions into colder
 * procedures whose popularity is Zipf-skewed.
 */

#ifndef GAAS_SYNTH_CODE_MODEL_HH
#define GAAS_SYNTH_CODE_MODEL_HH

#include <cstdint>
#include <vector>

#include "synth/params.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace gaas::synth
{

/** Synthetic program + walker; see file comment. */
class CodeModel
{
  public:
    /**
     * Build the static program and position the walker at the entry.
     *
     * @param params structure parameters
     * @param seed   PRNG seed; the same seed always builds the same
     *               program and replays the same walk
     */
    CodeModel(const CodeParams &params, std::uint64_t seed);

    /** @return the next instruction address (never exhausts: the
     *  program's main procedure restarts when it completes). */
    Addr
    nextPc()
    {
        // Fast path: still inside the current straight-line run.
        if (runPos < runLen)
            return runBase + wordsToBytes(runPos++);
        return walkToNextRun();
    }

    /** Restart the walk (same program, same draw sequence). */
    void reset();

    /** Static code footprint actually generated, in words. */
    std::uint64_t footprintWords() const { return totalWords; }

    /** Number of procedures generated. */
    std::size_t procedureCount() const { return procs.size(); }

  private:
    /** Structure node kinds. */
    enum class NodeKind : std::uint8_t { Run, Loop, Call };

    struct Node
    {
        NodeKind kind;
        // Run: length in words and offset within the procedure.
        std::uint32_t runLen = 0;
        std::uint32_t runOffset = 0;
        // Loop: children + mean trip count.
        std::vector<std::uint32_t> children;
        double meanIters = 0.0;
        // Call: callee procedure id.
        std::uint32_t callee = 0;
    };

    struct Proc
    {
        std::vector<std::uint32_t> body; //!< top-level node sequence
        Addr base = 0;                   //!< byte address of the text
        std::uint32_t sizeWords = 0;     //!< laid-out size
    };

    /** One level of the walker's control stack. */
    struct Frame
    {
        std::uint32_t procId;      //!< procedure whose text we're in
        const std::vector<std::uint32_t> *seq; //!< node sequence
        std::uint32_t idx;         //!< next item in seq
        std::uint64_t itersLeft;   //!< remaining repeats of seq
    };

    /** Slow path of nextPc(): advance the control stack until a new
     *  run starts and return its first instruction address. */
    Addr walkToNextRun();

    std::vector<std::uint32_t> buildSeq(std::uint32_t proc_id,
                                        unsigned depth,
                                        std::uint64_t &budget_words);
    std::uint32_t layoutProc(Proc &proc, std::uint32_t offset,
                             const std::vector<std::uint32_t> &seq);
    void startWalk();

    CodeParams params;
    std::uint64_t seed;
    Rng buildRng;  //!< consumed at construction only
    Rng walkRng;   //!< consumed by the walker; reseeded by reset()

    std::vector<Node> nodes;
    std::vector<Proc> procs;
    /** Jump-popularity rank -> procedure id (fixed permutation, so
     *  the hot set is scattered through the text image). */
    std::vector<std::uint32_t> jumpOrder;
    /** Precomputed jump-target popularity distribution. */
    ParetoSampler jumpPareto;
    std::uint64_t totalWords = 0;

    std::vector<Frame> stack;
    // Current straight-line run being executed.
    Addr runBase = 0;          //!< byte address of the run
    std::uint32_t runPos = 0;  //!< next word within the run
    std::uint32_t runLen = 0;  //!< words in the run
};

} // namespace gaas::synth

#endif // GAAS_SYNTH_CODE_MODEL_HH
