#include "data_model.hh"

#include <algorithm>
#include <bit>

#include "util/logging.hh"

namespace gaas::synth
{

namespace
{

/**
 * Place a popularity rank in its region: rank r lands about r units
 * from a per-region random head position, shuffled within small
 * blocks.
 *
 * Two properties matter and both mirror real layouts.  Hot data is
 * *compact* (rank ~ distance from the region head), so a big cache
 * holds a region's working set in a proportionate number of sets
 * rather than sprinkling it everywhere; and regions start at
 * arbitrary offsets, so the hot heads of different regions do not
 * all collide on the same low cache indices of a direct-mapped
 * cache.  The within-block shuffle keeps adjacent ranks from
 * trivially sharing one line.
 */
std::uint64_t
placeRank(std::uint64_t rank, std::uint64_t size_pow2,
          std::uint64_t head_offset)
{
    constexpr std::uint64_t block = 64;
    const std::uint64_t base = rank & ~(block - 1);
    const std::uint64_t within =
        (rank * 37 + (base >> 6) * 11) & (block - 1);
    return (head_offset + base + within) & (size_pow2 - 1);
}

} // namespace

DataModel::DataModel(const DataParams &params_, std::uint64_t seed_)
    : params(params_), seed(seed_), rng(seed_ ^ 0xda7a)
{
    auto check_frac = [](double f, const char *what) {
        if (f < 0.0 || f > 1.0)
            gaas_fatal("DataModel fraction out of range: ", what);
    };
    check_frac(params.loadStackFrac, "loadStackFrac");
    check_frac(params.loadGlobalFrac, "loadGlobalFrac");
    check_frac(params.loadArrayFrac, "loadArrayFrac");
    check_frac(params.storeStackFrac, "storeStackFrac");
    check_frac(params.storeGlobalFrac, "storeGlobalFrac");
    check_frac(params.storeArrayFrac, "storeArrayFrac");
    if (params.loadStackFrac + params.loadGlobalFrac +
            params.loadArrayFrac > 1.0 ||
        params.storeStackFrac + params.storeGlobalFrac +
            params.storeArrayFrac > 1.0) {
        gaas_fatal("DataModel region fractions exceed 1.0");
    }
    if (params.stackWords == 0 || params.globalWords == 0 ||
        params.heapWords == 0) {
        gaas_fatal("DataModel regions must be non-empty");
    }
    if (params.arrayCount > 0 && params.arrayWords == 0)
        gaas_fatal("DataModel arrayWords must be nonzero");
    if (params.heapLineWords == 0)
        gaas_fatal("DataModel heapLineWords must be nonzero");

    loadCdf = {params.loadStackFrac,
               params.loadStackFrac + params.loadGlobalFrac,
               params.loadStackFrac + params.loadGlobalFrac +
                   params.loadArrayFrac,
               1.0};
    storeCdf = {params.storeStackFrac,
                params.storeStackFrac + params.storeGlobalFrac,
                params.storeStackFrac + params.storeGlobalFrac +
                    params.storeArrayFrac,
                1.0};

    // Popularity-permuted regions round down to a power of two.
    heapLineCount = std::bit_floor(
        std::max<std::uint64_t>(params.heapWords /
                                    params.heapLineWords, 1));
    globalWordCount =
        std::bit_floor(std::max<std::uint64_t>(params.globalWords, 1));

    // Deliberately misalign array bases: a fixed pseudo-random pad
    // keeps concurrently scanned arrays from mapping onto the same
    // cache indices.
    Rng base_rng(seed ^ 0xba5e);
    arrayBaseWords.resize(params.arrayCount);
    for (unsigned i = 0; i < params.arrayCount; ++i) {
        arrayBaseWords[i] =
            static_cast<std::uint64_t>(i) * (params.arrayWords + 1024) +
            base_rng.nextBounded(2048) * 4;
    }

    // Per-region random head positions for the popularity layouts.
    globalHeadWords = base_rng.nextBounded(globalWordCount);
    heapHeadLines = base_rng.nextBounded(heapLineCount);

    globalPareto = ParetoSampler(params.globalAlpha, globalWordCount);
    heapPareto = ParetoSampler(params.heapAlpha, heapLineCount);
    stackStoreOffset = GeometricSampler(3.0);
    stackLoadOffset = GeometricSampler(10.0);

    sameLineThresh = bernoulliThreshold(params.sameLineBurstProb);
    partialStoreThresh =
        bernoulliThreshold(params.partialWordStoreFrac);
    stackCallThresh = bernoulliThreshold(0.05);
    stackReturnThresh = bernoulliThreshold(0.10);
    for (unsigned i = 0; i < 4; ++i) {
        loadCdfThresh[i] = bernoulliThreshold(loadCdf[i]);
        storeCdfThresh[i] = bernoulliThreshold(storeCdf[i]);
    }

    // Page-granular per-program region offsets (word units): distinct
    // programs must not share page colours for their hot regions, or
    // a physically-indexed direct-mapped L2 sees all processes
    // fighting for the same sets.
    globalBaseOffset = base_rng.nextBounded(64) * kPageWords;
    heapBaseOffset = base_rng.nextBounded(64) * kPageWords;
    stackBaseOffset = base_rng.nextBounded(64) * kPageWords;
    for (auto &base : arrayBaseWords)
        base += base_rng.nextBounded(64) * kPageWords;

    startState();
}

void
DataModel::startState()
{
    stackDepth = params.stackWords / 4;
    arrayWalk.assign(params.arrayCount, ArrayWalk{});
    // Stagger array walks so concurrent scans do not alias.
    const std::uint64_t seg = segmentWords();
    for (unsigned i = 0; i < params.arrayCount; ++i) {
        const std::uint64_t start =
            (params.arrayWords / (params.arrayCount + 1)) * i;
        arrayWalk[i].segStart = (start / seg) * seg;
    }
    nextArray = 0;
    lastLoadAddr = lastStoreAddr = 0;
    haveLastLoad = haveLastStore = false;
}

std::uint64_t
DataModel::segmentWords() const
{
    return std::min<std::uint64_t>(
        std::max<std::uint64_t>(params.arraySegWords, 1),
        params.arrayWords ? params.arrayWords : 1);
}

void
DataModel::reset()
{
    rng = Rng(seed ^ 0xda7a);
    startState();
}

std::uint64_t
DataModel::footprintWords() const
{
    return params.stackWords + globalWordCount +
           heapLineCount * params.heapLineWords +
           static_cast<std::uint64_t>(params.arrayCount) *
               params.arrayWords;
}

Addr
DataModel::stackAddr(bool is_store)
{
    // The frame pointer random-walks within [min, stackWords), and
    // accesses land geometrically close to the top of the current
    // frame -- so most stack traffic hits a few hot lines.
    const std::uint64_t r = rng.next64() >> 11;
    if (r < stackCallThresh) {
        // Call: push a new frame.
        const std::uint64_t frame = 4 + rng.nextBounded(28);
        stackDepth = std::min(stackDepth + frame,
                              params.stackWords - 1);
    } else if (r < stackReturnThresh) {
        // Return: pop.
        const std::uint64_t frame = 4 + rng.nextBounded(28);
        stackDepth = stackDepth > frame ? stackDepth - frame : 4;
    }
    // Register saves land at the frame top; locals and spilled
    // temporaries are read a couple of lines deeper.  The separation
    // keeps read-after-write to freshly written lines modest, as in
    // real code (it decides how much of subblock placement's gain
    // comes from reads; Section 6 puts that under 20%).
    std::uint64_t off =
        (is_store ? stackStoreOffset : stackLoadOffset).draw(rng) - 1;
    if (!is_store)
        off += 8;
    off = std::min(off, stackDepth);
    const std::uint64_t word = stackDepth - off;
    return layout::kStackTop - wordsToBytes(stackBaseOffset + word + 1);
}

Addr
DataModel::globalAddr()
{
    const std::uint64_t rank = globalPareto.draw(rng);
    return layout::kGlobalBase + wordsToBytes(globalBaseOffset) +
           wordsToBytes(placeRank(rank, globalWordCount,
                                  globalHeadWords));
}

Addr
DataModel::arrayAddr()
{
    if (params.arrayCount == 0)
        return heapAddr();
    const unsigned idx = nextArray;
    nextArray = (nextArray + 1) % params.arrayCount;

    ArrayWalk &walk = arrayWalk[idx];
    const std::uint64_t seg = segmentWords();
    const std::uint64_t word = walk.segStart + walk.off;

    // Advance the blocked scan: stride within the segment, re-scan
    // the segment arraySegRepeats times, then move to the next one.
    walk.off += params.arrayStrideWords;
    if (walk.off >= seg) {
        walk.off = 0;
        if (++walk.reps >= std::max(params.arraySegRepeats, 1u)) {
            walk.reps = 0;
            walk.segStart += seg;
            if (walk.segStart + seg > params.arrayWords)
                walk.segStart = 0;
        }
    }

    return layout::kArrayBase + wordsToBytes(arrayBaseWords[idx]) +
           wordsToBytes(word % params.arrayWords);
}

Addr
DataModel::heapAddr()
{
    const std::uint64_t rank = heapPareto.draw(rng);
    const std::uint64_t line =
        placeRank(rank, heapLineCount, heapHeadLines);
    const std::uint64_t word =
        line * params.heapLineWords +
        rng.nextBounded(params.heapLineWords);
    return layout::kHeapBase + wordsToBytes(heapBaseOffset + word);
}

Addr
DataModel::draw(bool is_store)
{
    Addr &last = is_store ? lastStoreAddr : lastLoadAddr;
    bool &have = is_store ? haveLastStore : haveLastLoad;
    if (have && (rng.next64() >> 11) < sameLineThresh) {
        // Re-touch the previous same-kind line at a nearby word.
        const Addr line = last & ~Addr{15};
        return line + wordsToBytes(rng.nextBounded(4));
    }
    // Integer-threshold form of rng.pickCumulative over the region
    // CDF (one draw either way; identical region decisions).
    const auto &cdf = is_store ? storeCdfThresh : loadCdfThresh;
    const std::uint64_t u = rng.next64() >> 11;
    unsigned region = 3;
    for (unsigned i = 0; i < 4; ++i) {
        if (u < cdf[i]) {
            region = i;
            break;
        }
    }
    Addr addr = 0;
    switch (region) {
      case kStack:
        addr = stackAddr(is_store);
        break;
      case kGlobal:
        addr = globalAddr();
        break;
      case kArray:
        addr = arrayAddr();
        break;
      default:
        addr = heapAddr();
        break;
    }
    last = addr;
    have = true;
    return addr;
}

bool
DataModel::nextStoreIsPartial()
{
    return (rng.next64() >> 11) < partialStoreThresh;
}

} // namespace gaas::synth
