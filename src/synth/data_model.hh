/**
 * @file
 * Synthetic data-reference model.
 *
 * DataModel draws load/store addresses from four region models --
 * stack, globals, strided arrays, and a Pareto-popular heap -- whose
 * mix and footprints are set per benchmark (see DataParams).  The
 * model's purpose is to give the cache hierarchy realistic miss-ratio
 * versus size behaviour over the 16KW..1024KW range the paper sweeps.
 */

#ifndef GAAS_SYNTH_DATA_MODEL_HH
#define GAAS_SYNTH_DATA_MODEL_HH

#include <array>
#include <cstdint>
#include <vector>

#include "synth/params.hh"
#include "util/random.hh"
#include "util/types.hh"

namespace gaas::synth
{

/** Synthetic data-address generator; see file comment. */
class DataModel
{
  public:
    /**
     * @param params region parameters
     * @param seed   PRNG seed (same seed -> same address stream)
     */
    DataModel(const DataParams &params, std::uint64_t seed);

    /** @return the next load address. */
    Addr
    nextLoad()
    {
        return draw(false);
    }

    /** @return the next store address. */
    Addr
    nextStore()
    {
        return draw(true);
    }

    /** @return true if the next store should be a partial-word
     *  write (consumes a PRNG draw; call once per store). */
    bool nextStoreIsPartial();

    /** Restart the stream (deterministically). */
    void reset();

    /** Total data footprint in words across all regions. */
    std::uint64_t footprintWords() const;

  private:
    enum Region : unsigned { kStack = 0, kGlobal, kArray, kHeap };

    Addr draw(bool is_store);
    Addr stackAddr(bool is_store);
    Addr globalAddr();
    Addr arrayAddr();
    Addr heapAddr();
    void startState();
    std::uint64_t segmentWords() const;

    // Popularity-rank draws are scattered over their region by a
    // fixed odd-multiplier permutation; without it, hot ranks of
    // every region would pile onto the same low cache indices and
    // thrash a direct-mapped cache in a way no real program does.
    std::uint64_t heapLineCount;   //!< power of two
    std::uint64_t globalWordCount; //!< power of two
    std::uint64_t heapHeadLines = 0;
    std::uint64_t globalHeadWords = 0;
    std::uint64_t globalBaseOffset = 0; //!< words
    std::uint64_t heapBaseOffset = 0;   //!< words
    std::uint64_t stackBaseOffset = 0;  //!< words
    std::vector<std::uint64_t> arrayBaseWords;

    DataParams params;
    std::uint64_t seed;
    Rng rng;

    std::array<double, 4> loadCdf;
    std::array<double, 4> storeCdf;

    // Draw-invariant sampler state hoisted out of the per-reference
    // path (see ParetoSampler/GeometricSampler in util/random.hh).
    ParetoSampler globalPareto;
    ParetoSampler heapPareto;
    GeometricSampler stackStoreOffset;
    GeometricSampler stackLoadOffset;

    // Exact integer-threshold forms of the per-draw double compares
    // (see bernoulliThreshold): same decisions from the same draws.
    std::uint64_t sameLineThresh = 0;
    std::uint64_t partialStoreThresh = 0;
    std::uint64_t stackCallThresh = 0;
    std::uint64_t stackReturnThresh = 0;
    std::array<std::uint64_t, 4> loadCdfThresh{};
    std::array<std::uint64_t, 4> storeCdfThresh{};

    // Stack state: a random-walking frame pointer (word offset below
    // the stack top).
    std::uint64_t stackDepth = 0;

    // Array state: per-array blocked scan (see DataParams).
    struct ArrayWalk
    {
        std::uint64_t segStart = 0; //!< word offset of the segment
        std::uint64_t off = 0;      //!< word offset within segment
        unsigned reps = 0;          //!< re-scans completed
    };
    std::vector<ArrayWalk> arrayWalk;
    unsigned nextArray = 0;

    // Burst state: occasionally re-touch the previous same-kind
    // line.  Loads re-touch recently loaded lines and stores
    // recently stored ones; cross-kind re-touches (read-after-write)
    // are much rarer in real code and would distort the write-only
    // vs subblock comparison (Section 6).
    Addr lastLoadAddr = 0;
    Addr lastStoreAddr = 0;
    bool haveLastLoad = false;
    bool haveLastStore = false;
};

} // namespace gaas::synth

#endif // GAAS_SYNTH_DATA_MODEL_HH
