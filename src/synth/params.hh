/**
 * @file
 * Tunable parameters of the synthetic program models.
 *
 * The paper drove its simulator with pixie traces of real MIPS
 * binaries (about 2.5 billion references).  We do not have those
 * traces, so each benchmark is replaced by a parameterised synthetic
 * program whose *statistical* behaviour -- instruction working-set
 * hierarchy, data reuse-distance tail, reference mix -- is tuned to
 * the same regime (see DESIGN.md, "Substitutions").
 */

#ifndef GAAS_SYNTH_PARAMS_HH
#define GAAS_SYNTH_PARAMS_HH

#include <cstdint>

#include "util/types.hh"

namespace gaas::synth
{

/**
 * Parameters of the synthetic instruction-stream model (CodeModel).
 *
 * A static program is generated once per benchmark: a DAG of
 * procedures, each a nested structure of straight-line runs, loops,
 * and calls.  Walking it yields an instruction-address stream with
 * the usual hierarchy of working sets: hot inner loops, warmer outer
 * loops, cold inter-procedural excursions.
 */
struct CodeParams
{
    /** Total static code footprint in words (controls how the L1-I /
     *  L2-I miss ratio falls with cache size). */
    std::uint64_t codeWords = 64 * 1024;

    /** Number of procedures the code is divided into. */
    unsigned procCount = 32;

    /** Mean straight-line run (basic block) length in words. */
    double meanRunLen = 8.0;

    /** Maximum loop nesting depth inside one procedure. */
    unsigned maxLoopDepth = 2;

    /** Mean loop trip count (geometric). */
    double meanLoopIters = 4.0;

    /** Probability that the next structure item is a loop. */
    double loopProb = 0.20;

    /** Probability that the next structure item is a call. */
    double callProb = 0.18;

    /** Skew of call-target popularity (larger = hotter hot code). */
    double callZipfAlpha = 0.6;

    /**
     * Phase-change probability, checked at each structure-item
     * boundary: the walker abandons its call stack and restarts in a
     * uniformly random procedure (the analogue of indirect calls,
     * table dispatch, and phase shifts).  This is the direct lever
     * on the instruction-stream working set: the nested-loop walk
     * alone revisits code thousands of times before moving on, so
     * without occasional jumps even a 400KB program would sit in one
     * hot loop and never miss a 16KB I-cache.
     */
    double jumpProb = 0.004;

    /**
     * Skew of phase-change targets: jumps pick a procedure by a
     * Pareto-ranked draw over a fixed random permutation of the
     * procedures.  Most jumps land in a modest hot set -- scattered
     * through the text image, so the hot procedures conflict in a
     * direct-mapped I-cache the way real code does -- while the tail
     * occasionally sweeps cold code.  This makes L1-I misses mostly
     * *conflict* misses that a small L2-I absorbs (the paper's
     * Fig. 7 curves are flat beyond 64KW), rather than capacity
     * sweeps that defeat any L2-I size.
     */
    double jumpZipfAlpha = 0.65;
};

/**
 * Parameters of the synthetic data-reference model (DataModel).
 *
 * Data addresses are drawn from four region models:
 *  - stack: a random-walking stack pointer with accesses near the top
 *    (very high locality; most stores of integer codes land here);
 *  - globals: a small region with Zipf-skewed word popularity;
 *  - arrays: strided sequential scans over large arrays (the FORTRAN
 *    codes: matrix300, tomcatv, nasa7);
 *  - heap: Pareto-popular line draws over a large footprint (pointer
 *    chasing in gcc/espresso/lisp); the heavy tail is what keeps the
 *    L2-D miss ratio falling out to 512KW+, as in Fig. 8 / Table 2.
 */
struct DataParams
{
    /** @name Region sizes (words) */
    ///@{
    std::uint64_t stackWords = 4 * 1024;
    std::uint64_t globalWords = 16 * 1024;
    std::uint64_t heapWords = 1024 * 1024;
    std::uint64_t arrayWords = 256 * 1024;  //!< per array
    unsigned arrayCount = 4;
    ///@}

    /** @name Region selection probabilities for loads
     *  (must sum to <= 1; remainder goes to the heap). */
    ///@{
    double loadStackFrac = 0.25;
    double loadGlobalFrac = 0.15;
    double loadArrayFrac = 0.25;
    ///@}

    /** @name Region selection probabilities for stores */
    ///@{
    double storeStackFrac = 0.50;
    double storeGlobalFrac = 0.15;
    double storeArrayFrac = 0.15;
    ///@}

    /** Zipf/Pareto shape of global-word popularity. */
    double globalAlpha = 1.2;

    /** Pareto shape of heap line popularity (smaller = bigger
     *  effective working set). */
    double heapAlpha = 0.9;

    /** Array scan stride in words (1 = unit stride). */
    unsigned arrayStrideWords = 1;

    /**
     * Blocked-reuse scan: each array is walked one *segment* at a
     * time (a row, say), and the segment is re-scanned
     * arraySegRepeats times before the walk advances -- the way a
     * matrix-multiply inner loop reuses one row across the whole
     * j-loop.  Repeats create the L1/L2 reuse real array codes have;
     * plain streaming (repeats = 1) would sweep the caches and
     * swamp L2 with misses.
     */
    unsigned arraySegWords = 512;

    /** Times each segment is re-scanned before advancing. */
    unsigned arraySegRepeats = 8;

    /** Words per heap "line" for popularity draws (spatial locality
     *  granule; typically the L1 line size). */
    unsigned heapLineWords = 4;

    /** Probability a store writes less than a full word. */
    double partialWordStoreFrac = 0.06;

    /**
     * Mean length of a store burst.  Real code writes in
     * word-sequential runs -- register saves at procedure entry,
     * struct initialisation, buffer fills -- so stores are emitted
     * in geometric bursts of consecutive word addresses.  Bursts are
     * what let a write-miss line absorb the following writes (the
     * mechanism behind the write-only policy and subblock placement,
     * Section 6) and what load up the write buffer (the write-policy
     * trade-off of Fig. 5).  The overall store fraction is
     * preserved: bursts trigger at storeFrac / storeBurstMean.
     */
    double storeBurstMean = 3.0;

    /** Probability an access re-touches the previous data address's
     *  line (models register-starved back-to-back accesses). */
    double sameLineBurstProb = 0.15;
};

/** Virtual-address layout constants shared by the models. */
namespace layout
{
/** Text segment base (mirrors the MIPS convention). */
inline constexpr Addr kTextBase = 0x0040'0000;
/** Static data / globals base. */
inline constexpr Addr kGlobalBase = 0x1000'0000;
/** Heap base. */
inline constexpr Addr kHeapBase = 0x2000'0000;
/** Array (large static data) base. */
inline constexpr Addr kArrayBase = 0x4000'0000;
/** Stack top (grows down). */
inline constexpr Addr kStackTop = 0x7fff'0000;
} // namespace layout

} // namespace gaas::synth

#endif // GAAS_SYNTH_PARAMS_HH
