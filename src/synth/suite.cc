#include "suite.hh"

#include <algorithm>

#include "util/logging.hh"

namespace gaas::synth
{

namespace
{

/** Helper to build one spec with the fields every entry sets. */
BenchmarkSpec
makeSpec(const char *name, const char *desc, Lang lang,
         ArithClass arith, double paper_minstr, double load_frac,
         double store_frac, double syscalls_per_minstr,
         double base_cpi, std::uint64_t seed)
{
    BenchmarkSpec s;
    s.name = name;
    s.description = desc;
    s.lang = lang;
    s.arith = arith;
    s.paperInstructionsM = paper_minstr;
    s.loadFrac = load_frac;
    s.storeFrac = store_frac;
    s.syscallsPerMInstr = syscalls_per_minstr;
    s.baseCpi = base_cpi;
    s.seed = seed;
    return s;
}

std::vector<BenchmarkSpec>
buildSuite()
{
    std::vector<BenchmarkSpec> suite;
    suite.reserve(kSuiteSize);

    // ---- The default level-8 workload ------------------------------
    // Store fractions average 0.0725 and base CPIs average 1.238
    // across these eight (see suite.hh).

    {
        // espresso: PLA minimiser; pointer-heavy integer C code.
        auto s = makeSpec("espresso", "boolean function minimizer",
                          Lang::C, ArithClass::Integer, 135, 0.200,
                          0.060, 1.0, 1.10, 101);
        s.code.codeWords = 64 * 1024;
        s.code.procCount = 48;
        s.code.jumpProb = 0.055;
        s.data.heapWords = 256 * 1024;
        s.data.heapAlpha = 0.78;
        s.data.arraySegRepeats = 12;
        s.data.arrayCount = 2;
        s.data.arrayWords = 32 * 1024;
        s.data.loadStackFrac = 0.22;
        s.data.loadGlobalFrac = 0.16;
        s.data.loadArrayFrac = 0.12;
        s.data.storeStackFrac = 0.62;
        s.data.storeGlobalFrac = 0.18;
        s.data.storeArrayFrac = 0.08;
        suite.push_back(std::move(s));
    }
    {
        // doduc: Monte-Carlo nuclear reactor kernel; double FP.
        auto s = makeSpec("doduc", "nuclear reactor simulation",
                          Lang::Fortran, ArithClass::DoubleFloat, 284,
                          0.230, 0.080, 0.5, 1.36, 102);
        s.code.codeWords = 64 * 1024;
        s.code.procCount = 96;
        s.code.jumpProb = 0.065;
        s.code.meanLoopIters = 6.0;
        s.data.heapWords = 192 * 1024;
        s.data.heapAlpha = 0.82;
        s.data.arraySegRepeats = 40;
        s.data.arraySegWords = 256;
        s.data.arrayCount = 6;
        s.data.arrayWords = 48 * 1024;
        s.data.loadArrayFrac = 0.30;
        s.data.loadStackFrac = 0.20;
        s.data.loadGlobalFrac = 0.15;
        s.data.storeStackFrac = 0.55;
        s.data.storeGlobalFrac = 0.15;
        s.data.storeArrayFrac = 0.25;
        suite.push_back(std::move(s));
    }
    {
        // xlisp: lisp interpreter running the 8-queens problem.
        auto s = makeSpec("xlisp", "lisp interpreter (8 queens)",
                          Lang::C, ArithClass::Integer, 141, 0.240,
                          0.095, 4.0, 1.14, 103);
        s.code.codeWords = 48 * 1024;
        s.code.procCount = 40;
        s.code.jumpProb = 0.090;
        s.data.heapWords = 384 * 1024;
        s.data.heapAlpha = 0.75;
        s.data.arrayCount = 0;
        s.data.loadStackFrac = 0.28;
        s.data.loadGlobalFrac = 0.14;
        s.data.loadArrayFrac = 0.0;
        s.data.storeStackFrac = 0.68;
        s.data.storeGlobalFrac = 0.12;
        s.data.storeArrayFrac = 0.0;
        suite.push_back(std::move(s));
    }
    {
        // matrix300: dense 300x300 matrix multiplies; streaming FP.
        auto s = makeSpec("matrix300", "dense matrix multiply",
                          Lang::Fortran, ArithClass::DoubleFloat, 301,
                          0.260, 0.055, 0.2, 1.40, 104);
        s.code.codeWords = 4 * 1024;
        s.code.procCount = 8;
        s.code.jumpProb = 0.0012;
        s.code.meanLoopIters = 64.0;
        s.code.loopProb = 0.40;
        s.data.heapWords = 4 * 1024;
        s.data.arrayCount = 3;
        s.data.arrayWords = 180 * 1024; // three 300x300 doubles
        s.data.arrayStrideWords = 2;    // double-word elements
        s.data.arraySegWords = 304;     // half a 300-double row
        s.data.arraySegRepeats = 150;
        s.data.loadArrayFrac = 0.72;
        s.data.loadStackFrac = 0.10;
        s.data.loadGlobalFrac = 0.08;
        s.data.storeArrayFrac = 0.55;
        s.data.storeStackFrac = 0.36;
        s.data.storeGlobalFrac = 0.08;
        suite.push_back(std::move(s));
    }
    {
        // eqntott: boolean equation to truth table; integer C.
        auto s = makeSpec("eqntott", "truth table generator", Lang::C,
                          ArithClass::Integer, 180, 0.170, 0.050, 1.0,
                          1.08, 105);
        s.code.codeWords = 40 * 1024;
        s.code.procCount = 24;
        s.code.jumpProb = 0.038;
        s.data.heapWords = 256 * 1024;
        s.data.heapAlpha = 0.82;
        s.data.arraySegRepeats = 32;
        s.data.arrayCount = 2;
        s.data.arrayWords = 96 * 1024;
        s.data.loadArrayFrac = 0.30;
        s.data.loadStackFrac = 0.20;
        s.data.loadGlobalFrac = 0.12;
        s.data.storeStackFrac = 0.62;
        s.data.storeGlobalFrac = 0.15;
        s.data.storeArrayFrac = 0.12;
        suite.push_back(std::move(s));
    }
    {
        // tomcatv: vectorised mesh generation; single-precision FP.
        auto s = makeSpec("tomcatv", "vectorized mesh generation",
                          Lang::Fortran, ArithClass::SingleFloat, 259,
                          0.250, 0.075, 0.3, 1.33, 106);
        s.code.codeWords = 3 * 1024;
        s.code.procCount = 6;
        s.code.jumpProb = 0.0012;
        s.code.meanLoopIters = 48.0;
        s.code.loopProb = 0.40;
        s.data.heapWords = 4 * 1024;
        s.data.arraySegWords = 256;     // one 257-single row
        s.data.arraySegRepeats = 80;
        s.data.arrayCount = 7;
        s.data.arrayWords = 66 * 1024; // seven 257x257 singles
        s.data.loadArrayFrac = 0.68;
        s.data.loadStackFrac = 0.10;
        s.data.loadGlobalFrac = 0.10;
        s.data.storeArrayFrac = 0.50;
        s.data.storeStackFrac = 0.40;
        s.data.storeGlobalFrac = 0.10;
        suite.push_back(std::move(s));
    }
    {
        // gcc1: the GNU C compiler compiling its own source.
        auto s = makeSpec("gcc1", "GNU C compiler pass 1", Lang::C,
                          ArithClass::Integer, 122, 0.220, 0.095, 8.0,
                          1.16, 107);
        s.code.codeWords = 128 * 1024;
        s.code.procCount = 160;
        s.code.jumpProb = 0.090;
        s.code.callProb = 0.22;
        s.code.meanLoopIters = 3.0;
        s.code.callZipfAlpha = 0.35;
        s.data.heapWords = 512 * 1024;
        s.data.heapAlpha = 0.82;
        s.data.arrayCount = 0;
        s.data.loadStackFrac = 0.26;
        s.data.loadGlobalFrac = 0.14;
        s.data.loadArrayFrac = 0.0;
        s.data.storeStackFrac = 0.64;
        s.data.storeGlobalFrac = 0.14;
        s.data.storeArrayFrac = 0.0;
        suite.push_back(std::move(s));
    }
    {
        // nasa7: seven NASA Ames FP kernels (FFT, matrix, ...).
        auto s = makeSpec("nasa7", "NASA Ames FP kernels",
                          Lang::Fortran, ArithClass::DoubleFloat, 388,
                          0.240, 0.070, 0.5, 1.33, 108);
        s.code.codeWords = 8 * 1024;
        s.code.procCount = 14;
        s.code.jumpProb = 0.004;
        s.code.meanLoopIters = 32.0;
        s.code.loopProb = 0.35;
        s.data.heapWords = 8 * 1024;
        s.data.arrayCount = 6;
        s.data.arrayWords = 96 * 1024;
        s.data.arrayStrideWords = 2;
        s.data.arraySegWords = 384;
        s.data.arraySegRepeats = 72;
        s.data.loadArrayFrac = 0.62;
        s.data.loadStackFrac = 0.12;
        s.data.loadGlobalFrac = 0.10;
        s.data.storeArrayFrac = 0.48;
        s.data.storeStackFrac = 0.40;
        s.data.storeGlobalFrac = 0.12;
        suite.push_back(std::move(s));
    }

    // ---- Benchmarks 9..16 (used at multiprogramming level 16) ------

    {
        auto s = makeSpec("spice2g6", "analog circuit simulator",
                          Lang::Fortran, ArithClass::DoubleFloat, 233,
                          0.220, 0.065, 1.0, 1.30, 109);
        s.code.codeWords = 64 * 1024;
        s.code.procCount = 72;
        s.code.jumpProb = 0.055;
        s.data.heapWords = 384 * 1024;
        s.data.heapAlpha = 0.78;
        s.data.arraySegWords = 256;
        s.data.arraySegRepeats = 12;
        s.data.arrayCount = 4;
        s.data.arrayWords = 64 * 1024;
        s.data.loadArrayFrac = 0.22;
        s.data.storeArrayFrac = 0.18;
        suite.push_back(std::move(s));
    }
    {
        auto s = makeSpec("fpppp", "quantum chemistry two-electron "
                          "integrals", Lang::Fortran,
                          ArithClass::DoubleFloat, 244, 0.270, 0.090,
                          0.3, 1.45, 110);
        s.code.codeWords = 20 * 1024;
        s.code.procCount = 10;
        s.code.jumpProb = 0.004;
        s.code.meanRunLen = 24.0; // famously huge basic blocks
        s.code.meanLoopIters = 16.0;
        s.data.heapWords = 32 * 1024;
        s.data.arraySegWords = 512;
        s.data.arraySegRepeats = 30;
        s.data.arrayCount = 6;
        s.data.arrayWords = 80 * 1024;
        s.data.arrayStrideWords = 2;
        s.data.loadArrayFrac = 0.55;
        s.data.storeArrayFrac = 0.40;
        s.data.storeStackFrac = 0.40;
        suite.push_back(std::move(s));
    }
    {
        auto s = makeSpec("linpack", "linear algebra (DAXPY loops)",
                          Lang::Fortran, ArithClass::SingleFloat, 72,
                          0.280, 0.085, 0.5, 1.35, 111);
        s.code.codeWords = 2 * 1024;
        s.code.procCount = 4;
        s.code.meanLoopIters = 100.0;
        s.code.loopProb = 0.45;
        s.data.heapWords = 8 * 1024;
        s.data.arraySegWords = 256;
        s.data.arraySegRepeats = 64;
        s.data.arrayCount = 2;
        s.data.arrayWords = 100 * 1024;
        s.data.loadStackFrac = 0.10;
        s.data.loadGlobalFrac = 0.08;
        s.data.loadArrayFrac = 0.75;
        s.data.storeArrayFrac = 0.60;
        s.data.storeStackFrac = 0.25;
        suite.push_back(std::move(s));
    }
    {
        auto s = makeSpec("whetstone", "classic synthetic FP mix",
                          Lang::Fortran, ArithClass::SingleFloat, 39,
                          0.210, 0.070, 0.5, 1.28, 112);
        s.code.codeWords = 3 * 1024;
        s.code.procCount = 12;
        s.data.heapWords = 4 * 1024;
        s.data.arrayCount = 2;
        s.data.arrayWords = 2 * 1024;
        s.data.loadArrayFrac = 0.30;
        s.data.storeArrayFrac = 0.20;
        suite.push_back(std::move(s));
    }
    {
        auto s = makeSpec("livermore", "Livermore FORTRAN kernels",
                          Lang::Fortran, ArithClass::SingleFloat, 58,
                          0.260, 0.080, 0.3, 1.32, 113);
        s.code.codeWords = 4 * 1024;
        s.code.procCount = 24;
        s.code.meanLoopIters = 40.0;
        s.code.loopProb = 0.40;
        s.data.heapWords = 8 * 1024;
        s.data.arraySegWords = 256;
        s.data.arraySegRepeats = 24;
        s.data.arrayCount = 6;
        s.data.arrayWords = 24 * 1024;
        s.data.loadStackFrac = 0.15;
        s.data.loadGlobalFrac = 0.10;
        s.data.loadArrayFrac = 0.65;
        s.data.storeArrayFrac = 0.50;
        s.data.storeStackFrac = 0.30;
        suite.push_back(std::move(s));
    }
    {
        auto s = makeSpec("yacc", "LALR parser generator", Lang::C,
                          ArithClass::Integer, 27, 0.190, 0.075, 6.0,
                          1.12, 114);
        s.code.codeWords = 10 * 1024;
        s.code.procCount = 20;
        s.code.jumpProb = 0.020;
        s.data.heapWords = 256 * 1024;
        s.data.heapAlpha = 1.0;
        s.data.arrayCount = 2;
        s.data.arrayWords = 48 * 1024;
        suite.push_back(std::move(s));
    }
    {
        auto s = makeSpec("nroff", "text formatter", Lang::C,
                          ArithClass::Integer, 14, 0.180, 0.085, 12.0,
                          1.10, 115);
        s.code.codeWords = 14 * 1024;
        s.code.procCount = 28;
        s.code.jumpProb = 0.025;
        s.data.heapWords = 128 * 1024;
        s.data.heapAlpha = 1.1;
        s.data.arrayCount = 1;
        s.data.arrayWords = 16 * 1024;
        suite.push_back(std::move(s));
    }
    {
        auto s = makeSpec("simple", "2-D hydrodynamics kernel",
                          Lang::Fortran, ArithClass::DoubleFloat, 81,
                          0.250, 0.080, 0.3, 1.34, 116);
        s.code.codeWords = 6 * 1024;
        s.code.procCount = 10;
        s.code.meanLoopIters = 32.0;
        s.code.loopProb = 0.38;
        s.data.heapWords = 16 * 1024;
        s.data.arraySegWords = 512;
        s.data.arraySegRepeats = 24;
        s.data.arrayCount = 5;
        s.data.arrayWords = 128 * 1024;
        s.data.arrayStrideWords = 2;
        s.data.loadArrayFrac = 0.60;
        s.data.storeArrayFrac = 0.45;
        s.data.storeStackFrac = 0.35;
        suite.push_back(std::move(s));
    }

    return suite;
}

} // namespace

const std::vector<BenchmarkSpec> &
defaultSuite()
{
    static const std::vector<BenchmarkSpec> suite = buildSuite();
    return suite;
}

std::vector<BenchmarkSpec>
workloadSpecs(unsigned mp_level)
{
    const auto &suite = defaultSuite();
    if (mp_level == 0 || mp_level > suite.size()) {
        gaas_fatal("multiprogramming level must be 1..", suite.size(),
                   ", got ", mp_level);
    }
    return {suite.begin(), suite.begin() + mp_level};
}

void
scaleSuite(std::vector<BenchmarkSpec> &specs, double factor)
{
    if (factor <= 0.0)
        gaas_fatal("suite scale factor must be positive");
    for (auto &spec : specs) {
        const double scaled =
            static_cast<double>(spec.simInstructions) * factor;
        spec.simInstructions =
            std::max<Count>(static_cast<Count>(scaled), 1000);
    }
}

} // namespace gaas::synth
