/**
 * @file
 * The multiprogramming benchmark suite (the paper's Table 1).
 *
 * The paper's workload is the MIPS performance-brief suite: "a variety
 * of C and FORTRAN programs" (integer, single- and double-precision
 * float) totalling ~2.5 billion references.  Table 1's rows in the
 * available scan are unreadable, so this suite recreates a plausible
 * MIPS-era mix with per-benchmark parameters calibrated to the
 * quantities the paper states in its text:
 *
 *  - workload-wide store fraction = 0.0725 of instructions (Sec. 6);
 *  - CPU-stall floor = 1.238 CPI (Sec. 4);
 *  - ~310k cycles between context switches when syscall switches are
 *    included at a 500k time slice (Sec. 3);
 *  - L1 write hit rate ~98% for a 4KW write-allocate D-cache (Sec. 6);
 *  - L2 miss ratios in the Table-2 band across 16KW..1024KW.
 */

#ifndef GAAS_SYNTH_SUITE_HH
#define GAAS_SYNTH_SUITE_HH

#include <vector>

#include "synth/benchmark.hh"

namespace gaas::synth
{

/** Number of benchmarks in the default suite. */
inline constexpr unsigned kSuiteSize = 16;

/**
 * The full 16-benchmark suite in scheduling order.  The first 8, in
 * order, form the default multiprogramming level-8 workload; level-16
 * runs use all of them.
 */
const std::vector<BenchmarkSpec> &defaultSuite();

/**
 * The specs for a multiprogramming level of @p mp_level (1..16):
 * the first @p mp_level entries of the suite.
 */
std::vector<BenchmarkSpec> workloadSpecs(unsigned mp_level);

/**
 * Multiply every benchmark's simInstructions by @p factor (used by
 * quick-look tooling and by tests that want tiny runs).
 */
void scaleSuite(std::vector<BenchmarkSpec> &specs, double factor);

} // namespace gaas::synth

#endif // GAAS_SYNTH_SUITE_HH
