#include "arena.hh"

#include "trace/packed.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "util/error.hh"
#include "util/logging.hh"

namespace gaas::trace
{

namespace
{

/**
 * Pack @p ref for arena storage (see trace/packed.hh for the
 * layout), rejecting records the 4-byte format cannot represent.
 */
std::uint32_t
packRef(const MemRef &ref)
{
    if (!packed::packable(ref)) {
        gaas_error(ErrorCode::Internal,
                   "trace arena cannot pack reference (addr 0x",
                   ref.addr, ", kind ", refKindName(ref.kind),
                   "); only word-aligned sub-2^31 streams are "
                   "arena-able -- set GAAS_BENCH_ARENA=0");
    }
    return packed::pack(ref);
}

constexpr std::size_t kUnknownPassLen =
    std::numeric_limits<std::size_t>::max();

/** Generator pull size per iteration of the growth loop. */
constexpr std::size_t kGenChunk = std::size_t{1} << 16;

/** Global + thread-local tally counters. */
struct GlobalTally
{
    std::atomic<std::uint64_t> streamsGenerated{0};
    std::atomic<std::uint64_t> streamsReused{0};
    std::atomic<std::uint64_t> refsGenerated{0};
    std::atomic<std::uint64_t> genNanos{0};
};

GlobalTally globalTally;

thread_local ArenaTally threadTallySlice;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

ArenaStream::ArenaStream(
    std::string key, std::size_t pass_ref_bound,
    std::function<std::unique_ptr<TraceSource>()> factory_)
    : streamKey(std::move(key)), passRefBound(pass_ref_bound),
      blockCount(pass_ref_bound / kBlockRefs + 1),
      blocks(blockCount), passLen(kUnknownPassLen),
      factory(std::move(factory_))
{
    if (passRefBound == 0)
        gaas_fatal("ArenaStream requires a nonzero pass bound");
    if (!factory)
        gaas_fatal("ArenaStream requires a generator factory");
}

ArenaStream::~ArenaStream()
{
    for (auto &slot : blocks)
        delete[] slot.load(std::memory_order_relaxed);
}

std::size_t
ArenaStream::passRefs() const
{
    const std::size_t len = passLen.load(std::memory_order_acquire);
    return len == kUnknownPassLen ? 0 : len;
}

std::size_t
ArenaStream::bytes() const
{
    return allocatedBytes.load(std::memory_order_relaxed);
}

void
ArenaStream::append(const MemRef *refs, std::size_t n)
{
    std::size_t pos = total;
    for (std::size_t i = 0; i < n; ++i, ++pos) {
        const std::size_t block = pos / kBlockRefs;
        if (block >= blockCount) {
            gaas_error(ErrorCode::Internal, "trace arena stream '",
                       streamKey, "' exceeded its pass bound of ",
                       passRefBound, " references");
        }
        std::uint32_t *data =
            blocks[block].load(std::memory_order_relaxed);
        if (!data) {
            data = new std::uint32_t[kBlockRefs];
            blocks[block].store(data, std::memory_order_relaxed);
            allocatedBytes.fetch_add(
                kBlockRefs * sizeof(std::uint32_t),
                std::memory_order_relaxed);
        }
        data[pos % kBlockRefs] = packRef(refs[i]);
    }
    total += n;
}

void
ArenaStream::ensure(std::size_t want)
{
    want = std::min(want, passRefBound);
    if (published.load(std::memory_order_acquire) >= want)
        return;
    if (passLen.load(std::memory_order_acquire) != kUnknownPassLen)
        return;

    std::lock_guard<std::mutex> lock(growMutex);
    if (done || total >= want)
        return;

    const auto start = std::chrono::steady_clock::now();
    if (!generatorMade) {
        generator = factory();
        generatorMade = true;
        if (!generator)
            gaas_fatal("ArenaStream factory returned null for '",
                       streamKey, "'");
    }

    // Geometric high-water-mark growth: generate at least a doubling
    // (floored at kMinChunk) so a consumer reading batch-by-batch
    // amortizes the mutex and the generator's loop preamble.
    const std::size_t target = std::min(
        std::max({want, total * 2, kMinChunk}), passRefBound);

    const std::size_t before = total;
    std::vector<MemRef> scratch(std::min(kGenChunk, target));
    while (total < target) {
        const std::size_t ask =
            std::min(scratch.size(), target - total);
        const std::size_t got =
            generator->nextBatch(scratch.data(), ask);
        append(scratch.data(), got);
        if (got < ask) {
            // The generator's pass ended: freeze the length and drop
            // the generator (replays come from the blocks).
            passLen.store(total, std::memory_order_release);
            generator.reset();
            done = true;
            break;
        }
    }
    if (!done && total >= passRefBound) {
        // Landed exactly on the bound: probe for the pass end so a
        // reader at the bound cannot spin on an unknown pass length.
        MemRef probe;
        if (generator->nextBatch(&probe, 1) != 0) {
            gaas_error(ErrorCode::Internal, "trace arena stream '",
                       streamKey, "' exceeded its pass bound of ",
                       passRefBound, " references");
        }
        passLen.store(total, std::memory_order_release);
        generator.reset();
        done = true;
    }
    published.store(total, std::memory_order_release);

    const std::uint64_t generated = total - before;
    const double seconds = secondsSince(start);
    globalTally.refsGenerated.fetch_add(generated,
                                        std::memory_order_relaxed);
    globalTally.genNanos.fetch_add(
        static_cast<std::uint64_t>(seconds * 1e9),
        std::memory_order_relaxed);
    threadTallySlice.refsGenerated += generated;
    threadTallySlice.genSeconds += seconds;
}

std::size_t
ArenaStream::read(std::size_t pos, MemRef *out, std::size_t n)
{
    std::size_t produced = 0;
    while (produced < n) {
        const std::size_t pub =
            published.load(std::memory_order_acquire);
        if (pos < pub) {
            std::size_t take = std::min(n - produced, pub - pos);
            while (take > 0) {
                const std::size_t block = pos / kBlockRefs;
                const std::size_t off = pos % kBlockRefs;
                const std::size_t run =
                    std::min(take, kBlockRefs - off);
                const std::uint32_t *data =
                    blocks[block].load(std::memory_order_relaxed);
                for (std::size_t i = 0; i < run; ++i)
                    out[produced + i] = packed::unpack(data[off + i]);
                produced += run;
                pos += run;
                take -= run;
            }
            continue;
        }
        // pos == pub: either the pass is over or the stream must
        // grow.  ensure() guarantees progress: on return either the
        // published length or the pass length has advanced past pos.
        if (passLen.load(std::memory_order_acquire) == pub)
            break;
        ensure(pos + (n - produced));
    }
    return produced;
}

std::size_t
ArenaStream::readPacked(std::size_t pos, std::uint32_t *out,
                        std::size_t n)
{
    std::size_t produced = 0;
    while (produced < n) {
        const std::size_t pub =
            published.load(std::memory_order_acquire);
        if (pos < pub) {
            std::size_t take = std::min(n - produced, pub - pos);
            while (take > 0) {
                const std::size_t block = pos / kBlockRefs;
                const std::size_t off = pos % kBlockRefs;
                const std::size_t run =
                    std::min(take, kBlockRefs - off);
                const std::uint32_t *data =
                    blocks[block].load(std::memory_order_relaxed);
                std::copy_n(data + off, run, out + produced);
                produced += run;
                pos += run;
                take -= run;
            }
            continue;
        }
        // Same growth protocol as read() above.
        if (passLen.load(std::memory_order_acquire) == pub)
            break;
        ensure(pos + (n - produced));
    }
    return produced;
}

TraceArena &
TraceArena::global()
{
    static TraceArena arena;
    return arena;
}

bool
TraceArena::enabledByEnv()
{
    const char *env = std::getenv("GAAS_BENCH_ARENA");
    return !(env && std::string_view(env) == "0");
}

ArenaStream *
TraceArena::acquire(
    const std::string &key, std::size_t pass_ref_bound,
    std::size_t ref_hint,
    std::function<std::unique_ptr<TraceSource>()> factory)
{
    ArenaStream *stream = nullptr;
    bool created = false;
    {
        std::lock_guard<std::mutex> lock(mapMutex);
        auto it = streams.find(key);
        if (it == streams.end()) {
            it = streams
                     .emplace(key, std::make_unique<ArenaStream>(
                                       key, pass_ref_bound,
                                       std::move(factory)))
                     .first;
            created = true;
        }
        stream = it->second.get();
    }
    if (created) {
        globalTally.streamsGenerated.fetch_add(
            1, std::memory_order_relaxed);
        ++threadTallySlice.streamsGenerated;
    } else {
        globalTally.streamsReused.fetch_add(
            1, std::memory_order_relaxed);
        ++threadTallySlice.streamsReused;
    }
    if (ref_hint > 0)
        stream->ensure(ref_hint);
    return stream;
}

std::size_t
TraceArena::streamCount() const
{
    std::lock_guard<std::mutex> lock(mapMutex);
    return streams.size();
}

std::size_t
TraceArena::totalBytes() const
{
    std::lock_guard<std::mutex> lock(mapMutex);
    std::size_t bytes = 0;
    for (const auto &entry : streams)
        bytes += entry.second->bytes();
    return bytes;
}

ArenaTally
TraceArena::totals()
{
    ArenaTally t;
    t.streamsGenerated =
        globalTally.streamsGenerated.load(std::memory_order_relaxed);
    t.streamsReused =
        globalTally.streamsReused.load(std::memory_order_relaxed);
    t.refsGenerated =
        globalTally.refsGenerated.load(std::memory_order_relaxed);
    t.genSeconds = static_cast<double>(globalTally.genNanos.load(
                       std::memory_order_relaxed)) *
                   1e-9;
    return t;
}

ArenaTally
TraceArena::threadTally()
{
    return threadTallySlice;
}

void
TraceArena::resetThreadTally()
{
    threadTallySlice = ArenaTally{};
}

ArenaSource::ArenaSource(ArenaStream *stream_, std::string name_)
    : stream(stream_), label(std::move(name_))
{
    if (!stream)
        gaas_fatal("ArenaSource requires a stream");
}

bool
ArenaSource::next(MemRef &ref)
{
    return nextBatch(&ref, 1) == 1;
}

std::size_t
ArenaSource::nextBatch(MemRef *out, std::size_t n)
{
    const std::size_t got = stream->read(pos, out, n);
    pos += got;
    return got;
}

std::size_t
ArenaSource::nextBatchPacked(std::uint32_t *out, std::size_t n)
{
    const std::size_t got = stream->readPacked(pos, out, n);
    pos += got;
    return got;
}

std::size_t
ArenaSource::skip(std::size_t n)
{
    // One ensure() suffices: on return the stream is published
    // through min(target, pass length), so the clamp below is final.
    const std::size_t max = std::numeric_limits<std::size_t>::max();
    stream->ensure(n > max - pos ? max : pos + n);
    const std::size_t pub = stream->publishedRefs();
    const std::size_t take = pos < pub ? std::min(n, pub - pos) : 0;
    pos += take;
    return take;
}

} // namespace gaas::trace
