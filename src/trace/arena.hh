/**
 * @file
 * TraceArena: a process-wide, immutable, thread-safe cache of
 * materialized reference streams.
 *
 * The paper replays the *same* trace tape against dozens of cache
 * configurations; a design-space sweep here should do the same
 * instead of re-running the synthetic generators inside every job.
 * The arena is that shared tape rack: the first job that needs N
 * references of a stream generates and publishes them once, every
 * other job replays a zero-copy view.
 *
 * Storage is a packed 4-bytes-per-reference layout (see arena.cc) in
 * fixed-size blocks whose pointer table is sized up front from the
 * stream's pass bound, so published data never moves:
 *
 *  - readers are lock-free: they acquire-load the published length
 *    and walk contiguous memory (ArenaStream::read / ArenaSource);
 *  - growth is serialized per stream under a mutex and publishes by
 *    a release-store of the new length after the blocks are written
 *    (grow-on-demand with geometric high-water-mark chunks).
 *
 * Correctness contract: a stream's materialized content is exactly
 * the record sequence its generator would produce, so replay through
 * an ArenaSource is bit-identical to running the generator fresh.
 */

#ifndef GAAS_TRACE_ARENA_HH
#define GAAS_TRACE_ARENA_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/source.hh"

namespace gaas::trace
{

/** Arena activity counters (global totals and per-thread slices). */
struct ArenaTally
{
    /** Streams this scope materialized first (cache misses). */
    std::uint64_t streamsGenerated = 0;

    /** Stream acquisitions that found an existing entry (hits). */
    std::uint64_t streamsReused = 0;

    /** References generated and published. */
    std::uint64_t refsGenerated = 0;

    /** Host seconds spent inside generators (growth included). */
    double genSeconds = 0.0;
};

/**
 * One materialized reference stream: a single generator pass, packed
 * and published incrementally.  Created and owned by TraceArena;
 * consumers hold a raw pointer (entries are never evicted).
 */
class ArenaStream
{
  public:
    /**
     * @param key            the arena key (diagnostics)
     * @param pass_ref_bound exact upper bound on the records one
     *        generator pass can produce (2 * simInstructions for a
     *        SyntheticBenchmark: one Inst plus at most one data
     *        record per instruction); sizes the block table
     * @param factory        builds the generator, deferred to the
     *        first growth so stream creation is cheap under the
     *        arena map lock
     */
    ArenaStream(std::string key, std::size_t pass_ref_bound,
                std::function<std::unique_ptr<TraceSource>()> factory);
    ~ArenaStream();

    ArenaStream(const ArenaStream &) = delete;
    ArenaStream &operator=(const ArenaStream &) = delete;

    /**
     * Materialize at least min(@p want, pass length) references.
     * Returns immediately when they are already published; otherwise
     * takes the growth mutex and generates at least a geometric
     * chunk (so tight read loops do not ping the mutex per batch).
     */
    void ensure(std::size_t want);

    /**
     * Copy up to @p n unpacked records starting at @p pos into
     * @p out, growing the stream on demand.  Returns fewer than
     * @p n only at the true end of the generator's pass.
     */
    std::size_t read(std::size_t pos, MemRef *out, std::size_t n);

    /**
     * read(), but copying the raw packed words (trace/packed.hh)
     * without unpacking: the simulate loop's replay fast path.
     */
    std::size_t readPacked(std::size_t pos, std::uint32_t *out,
                           std::size_t n);

    /** References published so far (high-water mark). */
    std::size_t publishedRefs() const
    {
        return published.load(std::memory_order_acquire);
    }

    /** Pass length once the generator exhausted, else 0. */
    std::size_t passRefs() const;

    /** Bytes of packed block storage allocated so far. */
    std::size_t bytes() const;

    const std::string &key() const { return streamKey; }

  private:
    /** Packed references per block (1 MiB of 4-byte records). */
    static constexpr std::size_t kBlockRefs = std::size_t{1} << 18;

    /** Smallest growth chunk, so short runs do not generate one
     *  simulator batch per mutex acquisition. */
    static constexpr std::size_t kMinChunk = std::size_t{1} << 16;

    /** Append @p n records to the blocks (growth mutex held). */
    void append(const MemRef *refs, std::size_t n);

    const std::string streamKey;
    const std::size_t passRefBound;
    const std::size_t blockCount;

    /** Block pointer table, fixed size; slots are written once under
     *  the growth mutex and read lock-free (the release-store of
     *  `published` orders them for readers). */
    std::vector<std::atomic<std::uint32_t *>> blocks;

    std::atomic<std::size_t> published{0};

    /** Pass length; SIZE_MAX until the generator exhausts. */
    std::atomic<std::size_t> passLen;

    std::atomic<std::size_t> allocatedBytes{0};

    /** @name Writer state (growMutex) */
    ///@{
    std::mutex growMutex;
    std::function<std::unique_ptr<TraceSource>()> factory;
    std::unique_ptr<TraceSource> generator;
    bool generatorMade = false;
    bool done = false;
    std::size_t total = 0; //!< writer's mirror of `published`
    ///@}
};

/**
 * The stream cache itself.  One global instance backs
 * core::Workload::standard; tests may build their own.
 */
class TraceArena
{
  public:
    TraceArena() = default;
    TraceArena(const TraceArena &) = delete;
    TraceArena &operator=(const TraceArena &) = delete;

    /** The process-wide arena. */
    static TraceArena &global();

    /**
     * Default-on enable knob: GAAS_BENCH_ARENA=0 restores per-job
     * generators; unset, empty or any other value leaves the arena
     * on.  Read per call so tests can flip it with setenv.
     */
    static bool enabledByEnv();

    /**
     * Get or create the stream for @p key.  On creation @p ref_hint
     * references are materialized up front (clamped to the pass
     * bound); 0 defers all generation to first read.  The returned
     * pointer stays valid for the arena's lifetime.
     */
    ArenaStream *acquire(
        const std::string &key, std::size_t pass_ref_bound,
        std::size_t ref_hint,
        std::function<std::unique_ptr<TraceSource>()> factory);

    /** Number of cached streams. */
    std::size_t streamCount() const;

    /** Total packed bytes across all streams. */
    std::size_t totalBytes() const;

    /** Process-wide activity totals. */
    static ArenaTally totals();

    /**
     * @name Per-thread tally
     * The arena also accumulates its counters into a thread-local
     * slice, so the sweep engine can attribute generation work to
     * the job that performed it.  resetThreadTally() zeroes the
     * calling thread's slice; threadTally() reads it.
     */
    ///@{
    static ArenaTally threadTally();
    static void resetThreadTally();
    ///@}

  private:
    mutable std::mutex mapMutex;
    std::unordered_map<std::string, std::unique_ptr<ArenaStream>>
        streams;
};

/**
 * A zero-copy replay view of one ArenaStream: a TraceSource that
 * walks the published records, growing the stream on demand, and
 * exhausts exactly where the generator's pass ends (wrap it in a
 * LoopSource for the standard looping workload, like any other
 * finite source).
 */
class ArenaSource : public TraceSource
{
  public:
    ArenaSource(ArenaStream *stream, std::string name);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *out, std::size_t n) override;
    std::size_t nextBatchPacked(std::uint32_t *out,
                                std::size_t n) override;

    /** True seek: materialize through the target position (the block
     *  table is immutable, so no records are copied) and advance the
     *  cursor, clamped to the pass end. */
    std::size_t skip(std::size_t n) override;

    void reset() override { pos = 0; }
    std::string name() const override { return label; }

  private:
    ArenaStream *stream;
    std::string label;
    std::size_t pos = 0;
};

} // namespace gaas::trace

#endif // GAAS_TRACE_ARENA_HH
