#include "compose.hh"

#include "util/logging.hh"

namespace gaas::trace
{

const char *
refKindName(RefKind kind)
{
    switch (kind) {
      case RefKind::Inst:
        return "inst";
      case RefKind::Load:
        return "load";
      case RefKind::Store:
        return "store";
    }
    return "unknown";
}

std::vector<MemRef>
collect(TraceSource &src, std::size_t limit)
{
    std::vector<MemRef> out;
    out.reserve(limit);
    MemRef ref;
    while (out.size() < limit && src.next(ref))
        out.push_back(ref);
    return out;
}

LimitSource::LimitSource(std::unique_ptr<TraceSource> inner_,
                         std::size_t limit_)
    : inner(std::move(inner_)), limit(limit_)
{
    if (!inner)
        gaas_fatal("LimitSource requires an inner source");
}

bool
LimitSource::next(MemRef &ref)
{
    if (produced >= limit)
        return false;
    if (!inner->next(ref))
        return false;
    ++produced;
    return true;
}

std::size_t
LimitSource::nextBatch(MemRef *out, std::size_t n)
{
    const std::size_t take = std::min(n, limit - produced);
    const std::size_t got = inner->nextBatch(out, take);
    produced += got;
    return got;
}

std::size_t
LimitSource::skip(std::size_t n)
{
    const std::size_t take = std::min(n, limit - produced);
    const std::size_t got = inner->skip(take);
    produced += got;
    return got;
}

void
LimitSource::reset()
{
    inner->reset();
    produced = 0;
}

std::string
LimitSource::name() const
{
    return inner->name() + "[:" + std::to_string(limit) + "]";
}

LoopSource::LoopSource(std::unique_ptr<TraceSource> inner_)
    : inner(std::move(inner_))
{
    if (!inner)
        gaas_fatal("LoopSource requires an inner source");
}

void
LoopSource::noteWrap()
{
    // The inner source just reported exhaustion, so the records
    // consumed since its last reset are one full pass: learn the
    // length (skip() needs it for whole-pass arithmetic) and wrap.
    if (innerPos > 0)
        innerLen = innerPos;
    innerPos = 0;
    inner->reset();
    ++wrapCount;
}

bool
LoopSource::next(MemRef &ref)
{
    if (inner->next(ref)) {
        ++innerPos;
        return true;
    }
    noteWrap();
    if (!inner->next(ref))
        return false;
    ++innerPos;
    return true;
}

std::size_t
LoopSource::nextBatch(MemRef *out, std::size_t n)
{
    std::size_t produced = 0;
    while (produced < n) {
        const std::size_t head =
            inner->nextBatch(out + produced, n - produced);
        produced += head;
        innerPos += head;
        if (produced == n)
            break;
        // Inner exhausted mid-batch: wrap, exactly as next() would,
        // then keep filling in batches -- the refill can itself hit
        // the end (short inner trace, large n), so loop.
        noteWrap();
        const std::size_t got =
            inner->nextBatch(out + produced, n - produced);
        if (got == 0)
            break; // empty even after a reset: give up, as next()
        produced += got;
        innerPos += got;
    }
    return produced;
}

std::size_t
LoopSource::nextBatchPacked(std::uint32_t *out, std::size_t n)
{
    std::size_t produced = inner->nextBatchPacked(out, n);
    if (produced == kNoPacked)
        return kNoPacked;
    innerPos += produced;
    // Wrap exactly as nextBatch() does.
    while (produced < n) {
        noteWrap();
        const std::size_t got =
            inner->nextBatchPacked(out + produced, n - produced);
        if (got == 0)
            break; // empty even after a reset: give up, as next()
        produced += got;
        innerPos += got;
    }
    return produced;
}

std::size_t
LoopSource::skip(std::size_t n)
{
    std::size_t remaining = n;
    while (remaining > 0) {
        if (innerLen > 0 && remaining >= innerLen - innerPos) {
            // Known pass length and the skip reaches the pass end:
            // whole passes reduce to modular arithmetic plus one
            // reset -- no records are generated or copied.
            remaining -= innerLen - innerPos;
            wrapCount += 1 + remaining / innerLen;
            remaining %= innerLen;
            inner->reset();
            innerPos = 0;
            if (remaining == 0)
                break;
        }
        const std::size_t got = inner->skip(remaining);
        innerPos += got;
        remaining -= got;
        if (remaining == 0)
            break;
        // Inner exhausted before the length was known (or the inner
        // stream shrank): learn/relearn the pass length and wrap.
        if (innerPos == 0)
            break; // empty even after a reset: give up, as next()
        noteWrap();
    }
    return n - remaining;
}

void
LoopSource::reset()
{
    inner->reset();
    wrapCount = 0;
    innerPos = 0;
    // innerLen survives: the inner stream restarts deterministically,
    // so a learned pass length stays valid across resets.
}

std::string
LoopSource::name() const
{
    return inner->name() + "[loop]";
}

ConcatSource::ConcatSource(
    std::vector<std::unique_ptr<TraceSource>> parts_)
    : parts(std::move(parts_))
{
    for (const auto &p : parts) {
        if (!p)
            gaas_fatal("ConcatSource given a null part");
    }
}

bool
ConcatSource::next(MemRef &ref)
{
    while (current < parts.size()) {
        if (parts[current]->next(ref))
            return true;
        ++current;
    }
    return false;
}

std::size_t
ConcatSource::nextBatch(MemRef *out, std::size_t n)
{
    std::size_t produced = 0;
    while (produced < n && current < parts.size()) {
        produced +=
            parts[current]->nextBatch(out + produced, n - produced);
        if (produced < n)
            ++current; // this part is exhausted
    }
    return produced;
}

std::size_t
ConcatSource::skip(std::size_t n)
{
    std::size_t done = 0;
    while (done < n && current < parts.size()) {
        done += parts[current]->skip(n - done);
        if (done < n)
            ++current; // this part is exhausted
    }
    return done;
}

void
ConcatSource::reset()
{
    for (auto &p : parts)
        p->reset();
    current = 0;
}

std::string
ConcatSource::name() const
{
    std::string out = "concat(";
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += ',';
        out += parts[i]->name();
    }
    out += ')';
    return out;
}

double
RefMix::loadFraction() const
{
    return instructions ? static_cast<double>(loads) /
                              static_cast<double>(instructions)
                        : 0.0;
}

double
RefMix::storeFraction() const
{
    return instructions ? static_cast<double>(stores) /
                              static_cast<double>(instructions)
                        : 0.0;
}

MixSource::MixSource(std::unique_ptr<TraceSource> inner_)
    : inner(std::move(inner_))
{
    if (!inner)
        gaas_fatal("MixSource requires an inner source");
}

namespace
{

void
tallyRef(RefMix &counts, const MemRef &ref)
{
    switch (ref.kind) {
      case RefKind::Inst:
        ++counts.instructions;
        if (ref.syscall)
            ++counts.syscalls;
        break;
      case RefKind::Load:
        ++counts.loads;
        break;
      case RefKind::Store:
        ++counts.stores;
        if (ref.partialWord)
            ++counts.partialWordStores;
        break;
    }
}

} // namespace

bool
MixSource::next(MemRef &ref)
{
    if (!inner->next(ref))
        return false;
    tallyRef(counts, ref);
    return true;
}

std::size_t
MixSource::nextBatch(MemRef *out, std::size_t n)
{
    const std::size_t got = inner->nextBatch(out, n);
    for (std::size_t i = 0; i < got; ++i)
        tallyRef(counts, out[i]);
    return got;
}

void
MixSource::reset()
{
    inner->reset();
    counts = RefMix{};
}

std::string
MixSource::name() const
{
    return inner->name();
}

} // namespace gaas::trace
