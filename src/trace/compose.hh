/**
 * @file
 * Composable adapters over TraceSource: truncation, looping,
 * concatenation, and reference-mix accounting.
 */

#ifndef GAAS_TRACE_COMPOSE_HH
#define GAAS_TRACE_COMPOSE_HH

#include <memory>
#include <vector>

#include "trace/source.hh"

namespace gaas::trace
{

/** Truncate an underlying source after a fixed number of records. */
class LimitSource : public TraceSource
{
  public:
    LimitSource(std::unique_ptr<TraceSource> inner, std::size_t limit);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *out, std::size_t n) override;
    std::size_t skip(std::size_t n) override;
    void reset() override;
    std::string name() const override;

  private:
    std::unique_ptr<TraceSource> inner;
    std::size_t limit;
    std::size_t produced = 0;
};

/**
 * Restart the underlying source whenever it is exhausted, so a finite
 * trace can fill an arbitrarily long simulation (the scaled-down
 * analogue of the paper's restart-the-next-benchmark rule).
 *
 * next() only returns false if the inner source is empty even after a
 * reset, which guards against infinite loops on empty traces.
 */
class LoopSource : public TraceSource
{
  public:
    explicit LoopSource(std::unique_ptr<TraceSource> inner);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *out, std::size_t n) override;
    std::size_t nextBatchPacked(std::uint32_t *out,
                                std::size_t n) override;

    /**
     * Seek forward @p n records, wrapping as needed: a skip past the
     * inner stream's end lands at (position + n) % length, exactly
     * where n discarded next() calls would land.  Once the pass
     * length is known (learned at the first wrap) whole passes cost
     * one reset() instead of a re-generate, so interval seeking over
     * an arena view is O(passes), not O(records).
     *
     * Wrap accounting: a skip that reaches the pass end with a known
     * length wraps eagerly (lands at offset 0, wraps() already
     * bumped), while the read paths wrap lazily on the next record;
     * the produced stream is identical either way and wraps() agrees
     * again after the next read.
     */
    std::size_t skip(std::size_t n) override;

    void reset() override;
    std::string name() const override;

    /** How many times the inner trace has been restarted. */
    std::uint64_t wraps() const { return wrapCount; }

  private:
    /** Learn the pass length, reset the inner source and count the
     *  wrap (called when the inner source reports exhaustion). */
    void noteWrap();

    std::unique_ptr<TraceSource> inner;
    std::uint64_t wrapCount = 0;
    /** Records consumed from the inner source since its last reset. */
    std::size_t innerPos = 0;
    /** Inner pass length, learned at the first wrap (0 = unknown). */
    std::size_t innerLen = 0;
};

/** Play several sources back to back. */
class ConcatSource : public TraceSource
{
  public:
    explicit ConcatSource(
        std::vector<std::unique_ptr<TraceSource>> parts);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *out, std::size_t n) override;
    std::size_t skip(std::size_t n) override;
    void reset() override;
    std::string name() const override;

  private:
    std::vector<std::unique_ptr<TraceSource>> parts;
    std::size_t current = 0;
};

/** Reference-mix counters gathered by MixSource (Table 1 columns). */
struct RefMix
{
    Count instructions = 0;
    Count loads = 0;
    Count stores = 0;
    Count syscalls = 0;
    Count partialWordStores = 0;

    Count total() const { return instructions + loads + stores; }

    /** Loads as a fraction of instructions (Table 1 "% of inst."). */
    double loadFraction() const;

    /** Stores as a fraction of instructions. */
    double storeFraction() const;
};

/** Pass-through adapter that tallies the reference mix. */
class MixSource : public TraceSource
{
  public:
    explicit MixSource(std::unique_ptr<TraceSource> inner);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *out, std::size_t n) override;
    void reset() override;
    std::string name() const override;

    const RefMix &mix() const { return counts; }

  private:
    std::unique_ptr<TraceSource> inner;
    RefMix counts;
};

} // namespace gaas::trace

#endif // GAAS_TRACE_COMPOSE_HH
