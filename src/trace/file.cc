#include "file.hh"

#include <cstring>

#include "util/error.hh"
#include "util/fault.hh"
#include "util/file_io.hh"
#include "util/logging.hh"

namespace gaas::trace
{

namespace
{

constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kBufferRecords = 64 * 1024;

void
putU32(unsigned char *dst, std::uint32_t v)
{
    dst[0] = static_cast<unsigned char>(v);
    dst[1] = static_cast<unsigned char>(v >> 8);
    dst[2] = static_cast<unsigned char>(v >> 16);
    dst[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64(unsigned char *dst, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *src)
{
    return static_cast<std::uint32_t>(src[0]) |
           static_cast<std::uint32_t>(src[1]) << 8 |
           static_cast<std::uint32_t>(src[2]) << 16 |
           static_cast<std::uint32_t>(src[3]) << 24;
}

std::uint64_t
getU64(const unsigned char *src)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | src[i];
    return v;
}

unsigned char
packMeta(const MemRef &ref)
{
    auto meta = static_cast<unsigned char>(ref.kind);
    if (ref.syscall)
        meta |= 0x04;
    if (ref.partialWord)
        meta |= 0x08;
    return meta;
}

MemRef
unpackRecord(const unsigned char *bytes)
{
    MemRef ref;
    ref.addr = getU64(bytes);
    const unsigned char meta = bytes[8];
    const unsigned kind = meta & 0x03;
    if (kind > 2)
        gaas_error(ErrorCode::TraceIO, "trace record has invalid kind ", kind);
    ref.kind = static_cast<RefKind>(kind);
    ref.syscall = (meta & 0x04) != 0;
    ref.partialWord = (meta & 0x08) != 0;
    return ref;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path_)
    : path(path_)
{
    if (fault::shouldFail("trace-open")) {
        gaas_error(ErrorCode::TraceIO,
                   "injected fault: trace-open (writing ", path,
                   ")");
    }
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        gaas_error(ErrorCode::TraceIO,
                   "cannot open trace file for writing: ", path);
    buffer.reserve(kBufferRecords * kTraceRecordBytes);
    // Placeholder header; the count is patched on close().
    unsigned char header[kHeaderBytes];
    putU32(header, kTraceMagic);
    putU32(header + 4, kTraceVersion);
    putU64(header + 8, 0);
    if (!util::writeBytes(file, header, kHeaderBytes))
        gaas_error(ErrorCode::TraceIO,
                   "short write on trace header: ", path);
}

TraceFileWriter::~TraceFileWriter()
{
    try {
        close();
    } catch (const FatalError &err) {
        warn("trace writer close failed: ", err.what());
    }
}

void
TraceFileWriter::write(const MemRef &ref)
{
    if (!file)
        gaas_panic("write on closed TraceFileWriter");
    unsigned char rec[kTraceRecordBytes];
    putU64(rec, ref.addr);
    rec[8] = packMeta(ref);
    buffer.insert(buffer.end(), rec, rec + kTraceRecordBytes);
    ++count;
    if (buffer.size() >= kBufferRecords * kTraceRecordBytes)
        flushBuffer();
}

std::uint64_t
TraceFileWriter::writeAll(TraceSource &src)
{
    MemRef ref;
    std::uint64_t n = 0;
    while (src.next(ref)) {
        write(ref);
        ++n;
    }
    return n;
}

void
TraceFileWriter::flushBuffer()
{
    if (buffer.empty())
        return;
    if (!util::writeBytes(file, buffer.data(), buffer.size())) {
        gaas_error(ErrorCode::TraceIO, "short write on trace file: ",
                   path);
    }
    buffer.clear();
}

void
TraceFileWriter::close()
{
    if (!file)
        return;
    flushBuffer();
    // Patch the record count into the header (64-bit seek: the
    // write position can be anywhere past 2 GiB by now).
    unsigned char countBytes[8];
    putU64(countBytes, count);
    bool ok = util::seekTo(file, 8) &&
              util::writeBytes(file, countBytes, 8) &&
              util::flushAndSync(file);
    ok = std::fclose(file) == 0 && ok;
    file = nullptr;
    if (!ok)
        gaas_error(ErrorCode::TraceIO, "error finalising trace file: ", path);
}

TraceFileReader::TraceFileReader(const std::string &path_)
    : path(path_)
{
    if (fault::shouldFail("trace-open")) {
        gaas_error(ErrorCode::TraceIO,
                   "injected fault: trace-open (reading ", path,
                   ")");
    }
    file = std::fopen(path.c_str(), "rb");
    if (!file)
        gaas_error(ErrorCode::TraceIO, "cannot open trace file: ", path);
    buffer.resize(kBufferRecords * kTraceRecordBytes);
    readHeader();
    validateSize();
}

TraceFileReader::~TraceFileReader()
{
    if (file)
        std::fclose(file);
}

void
TraceFileReader::readHeader()
{
    unsigned char header[kHeaderBytes];
    if (std::fread(header, 1, kHeaderBytes, file) != kHeaderBytes)
        gaas_error(ErrorCode::TraceIO, "trace file too short: ", path);
    if (getU32(header) != kTraceMagic)
        gaas_error(ErrorCode::TraceIO, "bad magic in trace file: ", path);
    version = getU32(header + 4);
    if (version < kTraceMinVersion || version > kTraceVersion) {
        // Version 3 is the block-compressed format (trace/v3.hh);
        // this reader only speaks the flat record layout.
        if (version == 3) {
            gaas_error(ErrorCode::TraceIO, "trace file ", path,
                       " is format v3; open it with TraceV3Reader /"
                       " openTraceFile (trace/v3.hh), or convert it"
                       " with `tracepack unpack`");
        }
        gaas_error(ErrorCode::TraceIO, "unsupported trace version ",
                   version, " in ", path,
                   " (this build reads versions ", kTraceMinVersion,
                   "..", kTraceVersion, ")");
    }
    total = getU64(header + 8);
}

void
TraceFileReader::validateSize()
{
    // Catch truncation and trailing garbage here, at open, instead
    // of letting a long simulation die mid-run (or silently ignore
    // bytes past the promised record count).  Both the v1 and v2
    // writers emit exactly header + count * record bytes, so any
    // mismatch is corruption whatever the version says.
    const std::int64_t actual = util::fileSizeBytes(file);
    if (actual < 0)
        gaas_error(ErrorCode::TraceIO,
                   "cannot determine size of trace file: ", path);
    const std::uint64_t expected =
        kHeaderBytes + total * kTraceRecordBytes;
    const auto bytes = static_cast<std::uint64_t>(actual);
    if (bytes < expected) {
        const std::uint64_t body = bytes - kHeaderBytes;
        gaas_error(ErrorCode::TraceIO, "trace file truncated: ",
                   path, " header promises ",
                   total, " records (", expected, " bytes) but the "
                   "file is ", bytes, " bytes -- it ends ",
                   expected - bytes, " bytes short, inside record ",
                   body / kTraceRecordBytes, " at byte offset ",
                   bytes);
    }
    if (bytes > expected) {
        gaas_error(ErrorCode::TraceIO,
                   "trace file has trailing garbage: ", path,
                   " header promises ", total, " records (", expected,
                   " bytes) but the file is ", bytes, " bytes -- ",
                   bytes - expected,
                   " unexpected bytes start at byte offset ",
                   expected);
    }
}

bool
TraceFileReader::fillBuffer()
{
    bufLen = std::fread(buffer.data(), 1, buffer.size(), file);
    bufPos = 0;
    if (bufLen % kTraceRecordBytes != 0)
        gaas_error(ErrorCode::TraceIO,
                   "truncated record in trace file: ", path);
    return bufLen > 0;
}

bool
TraceFileReader::next(MemRef &ref)
{
    if (consumed >= total)
        return false;
    if (bufPos >= bufLen && !fillBuffer()) {
        gaas_error(ErrorCode::TraceIO, "trace file ", path,
                   " ended after ", consumed,
                   " of ", total, " records");
    }
    ref = unpackRecord(buffer.data() + bufPos);
    bufPos += kTraceRecordBytes;
    ++consumed;
    return true;
}

void
TraceFileReader::reset()
{
    if (!util::seekTo(file, kHeaderBytes))
        gaas_error(ErrorCode::TraceIO, "cannot rewind trace file: ", path);
    bufPos = bufLen = 0;
    consumed = 0;
}

std::string
TraceFileReader::name() const
{
    return path;
}

} // namespace gaas::trace
