/**
 * @file
 * Binary trace file reader/writer -- the on-disk analogue of a pixie
 * address trace.
 *
 * Format (little endian):
 *   header: magic "GTRC" (4 bytes), version u32, record count u64
 *   records: addr u64, meta u8
 *     meta bits [1:0] = RefKind, bit 2 = syscall, bit 3 = partialWord
 *
 * The record count in the header is written on close.  Version 2
 * (current) has the same layout as version 1 but guarantees the file
 * holds exactly `header + count * record` bytes; the reader enforces
 * that at open time for both versions (the v1 writer also wrote
 * exact sizes, so any mismatch is truncation or trailing garbage)
 * and reports the discrepancy byte-accurately.  All file positioning
 * is 64-bit (util/file_io.hh), so traces past 2 GiB work on LP32 and
 * Windows hosts.
 */

#ifndef GAAS_TRACE_FILE_HH
#define GAAS_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hh"

namespace gaas::trace
{

/** Magic bytes at the start of every trace file. */
inline constexpr std::uint32_t kTraceMagic = 0x43525447; // "GTRC"

/** Current trace file format version (written by TraceFileWriter). */
inline constexpr std::uint32_t kTraceVersion = 2;

/** Oldest version TraceFileReader still accepts. */
inline constexpr std::uint32_t kTraceMinVersion = 1;

/** Bytes per on-disk record (u64 addr + u8 meta). */
inline constexpr std::size_t kTraceRecordBytes = 9;

/** Streaming writer; flushes and finalises the header on close. */
class TraceFileWriter
{
  public:
    /** Open @p path for writing; throws FatalError on failure. */
    explicit TraceFileWriter(const std::string &path);

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    ~TraceFileWriter();

    /** Append one record. */
    void write(const MemRef &ref);

    /** Drain @p src into the file; @return records written. */
    std::uint64_t writeAll(TraceSource &src);

    /** Finalise the header and close; implied by the destructor. */
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    void flushBuffer();

    std::string path;
    std::FILE *file = nullptr;
    std::vector<unsigned char> buffer;
    std::uint64_t count = 0;
};

/** Streaming reader implementing TraceSource (resettable). */
class TraceFileReader : public TraceSource
{
  public:
    /** Open @p path; throws FatalError if missing or malformed. */
    explicit TraceFileReader(const std::string &path);

    TraceFileReader(const TraceFileReader &) = delete;
    TraceFileReader &operator=(const TraceFileReader &) = delete;

    ~TraceFileReader() override;

    bool next(MemRef &ref) override;
    void reset() override;
    std::string name() const override;

    /** Total records the header promises. */
    std::uint64_t recordCount() const { return total; }

    /** Format version of the file being read (1 or 2). */
    std::uint32_t formatVersion() const { return version; }

  private:
    void readHeader();
    void validateSize();
    bool fillBuffer();

    std::string path;
    std::FILE *file = nullptr;
    std::vector<unsigned char> buffer;
    std::size_t bufPos = 0;
    std::size_t bufLen = 0;
    std::uint64_t total = 0;
    std::uint64_t consumed = 0;
    std::uint32_t version = kTraceVersion;
};

} // namespace gaas::trace

#endif // GAAS_TRACE_FILE_HH
