/**
 * @file
 * The memory-reference record produced by trace sources and consumed
 * by the cache simulator.
 *
 * This is the analogue of one line of a `pixie` address trace: either
 * an instruction-fetch address or a data load/store address.  In the
 * stream, an Inst record begins a new instruction; any Load/Store
 * records that follow (before the next Inst) belong to it.
 */

#ifndef GAAS_TRACE_MEMREF_HH
#define GAAS_TRACE_MEMREF_HH

#include <cstdint>

#include "util/types.hh"

namespace gaas::trace
{

/** What kind of memory reference a record describes. */
enum class RefKind : std::uint8_t {
    Inst = 0,  //!< instruction fetch
    Load = 1,  //!< data read
    Store = 2, //!< data write
};

/** @return a short human-readable name for @p kind. */
const char *refKindName(RefKind kind);

/** One traced memory reference. */
struct MemRef
{
    /** Virtual byte address (word aligned; no PID prefix -- the
     *  workload layer assigns PIDs when processes are created). */
    Addr addr = 0;

    RefKind kind = RefKind::Inst;

    /** True on an Inst record that is a voluntary system call; the
     *  scheduler forces a context switch after it (the paper's
     *  "system call file" mechanism, Section 3). */
    bool syscall = false;

    /** True on a Store that writes less than a full 32-bit word.
     *  Partial-word writes do not set valid bits under subblock
     *  placement (Section 6). */
    bool partialWord = false;

    bool isInst() const { return kind == RefKind::Inst; }
    bool isLoad() const { return kind == RefKind::Load; }
    bool isStore() const { return kind == RefKind::Store; }
    bool isData() const { return kind != RefKind::Inst; }

    bool
    operator==(const MemRef &other) const
    {
        return addr == other.addr && kind == other.kind &&
               syscall == other.syscall &&
               partialWord == other.partialWord;
    }
};

/** Convenience factories used throughout the tests. */
inline MemRef
instRef(Addr addr, bool syscall = false)
{
    return MemRef{addr, RefKind::Inst, syscall, false};
}

inline MemRef
loadRef(Addr addr)
{
    return MemRef{addr, RefKind::Load, false, false};
}

inline MemRef
storeRef(Addr addr, bool partial_word = false)
{
    return MemRef{addr, RefKind::Store, false, partial_word};
}

} // namespace gaas::trace

#endif // GAAS_TRACE_MEMREF_HH
