/**
 * @file
 * The packed 4-byte reference word: the storage format of the trace
 * arena (trace/arena.hh) and the wire format of the packed replay
 * fast path (TraceSource::nextBatchPacked).
 *
 * Layout, 4 bytes per record:
 *
 *   bits [31:3]  word index (byte address >> 2)
 *   bits [2:1]   RefKind
 *   bit  [0]     syscall (Inst) / partialWord (Store)
 *
 * Every address the synthetic models emit is word aligned and below
 * 2^31 (layout::kStackTop = 0x7fff'0000 is the ceiling), so the
 * word index fits the 29 bits exactly.  The flag bit is shared:
 * syscall is only meaningful on Inst records and partialWord only on
 * Store records, which packable() checks.
 *
 * The field extractors exist so the hot simulate loop can decode a
 * packed word straight into registers instead of round-tripping
 * through a 16-byte MemRef in memory.
 */

#ifndef GAAS_TRACE_PACKED_HH
#define GAAS_TRACE_PACKED_HH

#include <cstdint>

#include "trace/memref.hh"

namespace gaas::trace::packed
{

/** @return true if @p ref fits the packed layout losslessly. */
inline bool
packable(const MemRef &ref)
{
    return (ref.addr & 3) == 0 && (ref.addr >> 31) == 0 &&
           (!ref.syscall || ref.isInst()) &&
           (!ref.partialWord || ref.isStore());
}

/** Pack @p ref (the caller has checked packable()). */
inline std::uint32_t
pack(const MemRef &ref)
{
    const bool flag = ref.syscall || ref.partialWord;
    return static_cast<std::uint32_t>(ref.addr >> 2) << 3 |
           static_cast<std::uint32_t>(ref.kind) << 1 |
           static_cast<std::uint32_t>(flag);
}

/** @name Field extractors */
///@{
inline Addr
addrOf(std::uint32_t word)
{
    return static_cast<Addr>(word >> 3) << 2;
}

inline RefKind
kindOf(std::uint32_t word)
{
    return static_cast<RefKind>((word >> 1) & 3u);
}

inline bool flagOf(std::uint32_t word) { return (word & 1u) != 0; }

inline bool isInst(std::uint32_t word)
{
    return kindOf(word) == RefKind::Inst;
}

inline bool isLoad(std::uint32_t word)
{
    return kindOf(word) == RefKind::Load;
}

inline bool isStore(std::uint32_t word)
{
    return kindOf(word) == RefKind::Store;
}
///@}

/** Unpack @p word into a full MemRef. */
inline MemRef
unpack(std::uint32_t word)
{
    MemRef ref;
    ref.addr = addrOf(word);
    ref.kind = kindOf(word);
    const bool flag = flagOf(word);
    ref.syscall = flag && ref.kind == RefKind::Inst;
    ref.partialWord = flag && ref.kind == RefKind::Store;
    return ref;
}

} // namespace gaas::trace::packed

#endif // GAAS_TRACE_PACKED_HH
