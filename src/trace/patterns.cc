#include "patterns.hh"

#include "util/logging.hh"

namespace gaas::trace
{

SequentialPattern::SequentialPattern(const Params &params_)
    : params(params_)
{
    if (params.instFootprintWords == 0)
        gaas_fatal("SequentialPattern needs a code footprint");
    if (params.instructions == 0)
        gaas_fatal("SequentialPattern needs instructions");
}

bool
SequentialPattern::next(MemRef &ref)
{
    if (pendingData) {
        pendingData = false;
        const Addr addr =
            params.dataBase + wordsToBytes(dataCursor);
        dataCursor = (dataCursor + 1) % params.dataFootprintWords;
        ++dataCount;
        const bool store = params.storeEvery &&
                           (dataCount % params.storeEvery == 0);
        ref = store ? storeRef(addr) : loadRef(addr);
        return true;
    }
    if (emitted >= params.instructions)
        return false;
    ++emitted;
    ref = instRef(params.instBase + wordsToBytes(instCursor));
    instCursor = (instCursor + 1) % params.instFootprintWords;
    pendingData = params.dataFootprintWords > 0;
    return true;
}

void
SequentialPattern::reset()
{
    emitted = 0;
    instCursor = dataCursor = 0;
    dataCount = 0;
    pendingData = false;
}

std::string
SequentialPattern::name() const
{
    return "sequential";
}

ConflictPattern::ConflictPattern(const Params &params_)
    : params(params_)
{
    if (params.ways == 0)
        gaas_fatal("ConflictPattern needs at least one way");
}

bool
ConflictPattern::next(MemRef &ref)
{
    if (pendingData) {
        pendingData = false;
        const Addr addr =
            params.base + params.strideBytes * cursor;
        cursor = (cursor + 1) % params.ways;
        ref = params.stores ? storeRef(addr) : loadRef(addr);
        return true;
    }
    if (emitted >= params.instructions)
        return false;
    ++emitted;
    // A fixed single-line instruction stream keeps the I-side quiet.
    ref = instRef(0x0040'0000);
    pendingData = true;
    return true;
}

void
ConflictPattern::reset()
{
    emitted = 0;
    cursor = 0;
    pendingData = false;
}

std::string
ConflictPattern::name() const
{
    return "conflict";
}

RandomPattern::RandomPattern(const Params &params_)
    : params(params_), rng(params_.seed)
{
    if (params.footprintWords == 0)
        gaas_fatal("RandomPattern needs a footprint");
}

bool
RandomPattern::next(MemRef &ref)
{
    if (pendingData) {
        pendingData = false;
        ref = pending;
        return true;
    }
    if (emitted >= params.instructions)
        return false;
    ++emitted;
    ref = instRef(0x0040'0000);
    const Addr addr =
        params.dataBase +
        wordsToBytes(rng.nextBounded(params.footprintWords));
    pending = rng.nextBernoulli(params.storeFrac) ? storeRef(addr)
                                                  : loadRef(addr);
    pendingData = true;
    return true;
}

void
RandomPattern::reset()
{
    rng = Rng(params.seed);
    emitted = 0;
    pendingData = false;
}

std::string
RandomPattern::name() const
{
    return "random";
}

} // namespace gaas::trace
