/**
 * @file
 * Directed-test trace patterns with closed-form cache behaviour.
 *
 * In the spirit of gem5's directed testers, these sources generate
 * reference streams whose miss ratios can be computed by hand, so
 * the test suite can pin the simulator's timing and replacement
 * logic against exact expectations (a sequential sweep larger than
 * the cache misses once per line; a ping-pong across one set misses
 * every time in a direct-mapped cache; uniform random traffic over a
 * resident footprint converges to zero misses; ...).
 */

#ifndef GAAS_TRACE_PATTERNS_HH
#define GAAS_TRACE_PATTERNS_HH

#include <string>

#include "trace/source.hh"
#include "util/random.hh"

namespace gaas::trace
{

/**
 * Instructions sweeping [base, base + footprint) word by word,
 * wrapping around, for a fixed number of instructions.  Optionally
 * each instruction carries a load walking a second region the same
 * way.
 */
class SequentialPattern : public TraceSource
{
  public:
    struct Params
    {
        Addr instBase = 0x0040'0000;
        std::uint64_t instFootprintWords = 16 * 1024;
        /** 0 = no data references. */
        std::uint64_t dataFootprintWords = 0;
        Addr dataBase = 0x1000'0000;
        /** Emit a store instead of a load every Nth data reference
         *  (0 = loads only). */
        unsigned storeEvery = 0;
        Count instructions = 100'000;
    };

    explicit SequentialPattern(const Params &params);

    bool next(MemRef &ref) override;
    void reset() override;
    std::string name() const override;

  private:
    Params params;
    Count emitted = 0;
    std::uint64_t instCursor = 0;
    std::uint64_t dataCursor = 0;
    Count dataCount = 0;
    bool pendingData = false;
};

/**
 * A ping-pong between N addresses that map to the same set of a
 * direct-mapped cache of the given size: every access misses once
 * N exceeds the associativity.
 */
class ConflictPattern : public TraceSource
{
  public:
    struct Params
    {
        Addr base = 0x1000'0000;
        /** The conflicting addresses are spaced this many bytes
         *  apart (use the cache's size in bytes for a direct-mapped
         *  conflict set). */
        std::uint64_t strideBytes = 16 * 1024;
        unsigned ways = 2;         //!< how many conflicting lines
        Count instructions = 10'000;
        bool stores = false;       //!< emit stores instead of loads
    };

    explicit ConflictPattern(const Params &params);

    bool next(MemRef &ref) override;
    void reset() override;
    std::string name() const override;

  private:
    Params params;
    Count emitted = 0;
    unsigned cursor = 0;
    bool pendingData = false;
};

/**
 * Uniform random word accesses over a fixed footprint: once the
 * footprint is cache-resident the miss ratio converges to zero; for
 * footprints beyond the cache it converges to the capacity ratio.
 */
class RandomPattern : public TraceSource
{
  public:
    struct Params
    {
        Addr dataBase = 0x1000'0000;
        std::uint64_t footprintWords = 64 * 1024;
        Count instructions = 100'000;
        double storeFrac = 0.0;
        std::uint64_t seed = 1;
    };

    explicit RandomPattern(const Params &params);

    bool next(MemRef &ref) override;
    void reset() override;
    std::string name() const override;

  private:
    Params params;
    Rng rng;
    Count emitted = 0;
    bool pendingData = false;
    MemRef pending;
};

} // namespace gaas::trace

#endif // GAAS_TRACE_PATTERNS_HH
