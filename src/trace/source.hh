/**
 * @file
 * The TraceSource interface: a resettable stream of MemRef records.
 *
 * The paper's "file descriptor multiplexor" mapped each benchmark's
 * pixie output to one input descriptor of the cache simulator; here
 * each benchmark (synthetic model or trace file) is one TraceSource
 * and the workload layer multiplexes among them.
 */

#ifndef GAAS_TRACE_SOURCE_HH
#define GAAS_TRACE_SOURCE_HH

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "trace/memref.hh"

namespace gaas::trace
{

/** An abstract, resettable stream of memory references. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     *
     * @param ref filled in on success
     * @retval true a record was produced
     * @retval false the trace is exhausted (ref is unchanged)
     */
    virtual bool next(MemRef &ref) = 0;

    /**
     * Produce up to @p n references into @p out.
     *
     * Exists so hot consumers (the Simulator's per-process refill
     * buffer) pay one virtual call per batch instead of one per
     * reference.  The records produced must be exactly the records n
     * calls to next() would have produced; overriders (the synthetic
     * generator, the compose adapters) only change the dispatch cost,
     * never the stream.
     *
     * @return the number of records produced; less than @p n only
     *         when the trace is exhausted
     */
    virtual std::size_t
    nextBatch(MemRef *out, std::size_t n)
    {
        std::size_t produced = 0;
        while (produced < n && next(out[produced]))
            ++produced;
        return produced;
    }

    /** nextBatchPacked() result of a source with no packed path. */
    static constexpr std::size_t kNoPacked = ~std::size_t{0};

    /**
     * Packed replay fast path: produce up to @p n records as packed
     * 4-byte words (trace/packed.hh) -- the same records nextBatch()
     * would produce, minus the per-record unpack.  Only sources that
     * already hold packed storage (the arena view, and wrappers
     * around it) implement this; everything else reports kNoPacked
     * and the consumer falls back to nextBatch() for good.
     */
    virtual std::size_t
    nextBatchPacked(std::uint32_t *out, std::size_t n)
    {
        (void)out, (void)n;
        return kNoPacked;
    }

    /**
     * Discard the next @p n records, as if next() were called @p n
     * times and the results thrown away.  Sources with random-access
     * storage (the arena view, the compose adapters over it)
     * override this to seek instead of generate, which is what makes
     * sampled simulation's fast-forward between measurement
     * intervals cheap.
     *
     * @return the number of records skipped; less than @p n only
     *         when the trace is exhausted
     */
    virtual std::size_t
    skip(std::size_t n)
    {
        MemRef scratch[64];
        std::size_t done = 0;
        while (done < n) {
            const std::size_t want = std::min(n - done, std::size_t{64});
            const std::size_t got = nextBatch(scratch, want);
            done += got;
            if (got < want)
                break;
        }
        return done;
    }

    /** Restart the stream from its beginning (deterministically). */
    virtual void reset() = 0;

    /** A short name for diagnostics and reports. */
    virtual std::string name() const = 0;
};

/**
 * An in-memory trace, mainly for unit tests and for capturing short
 * generator outputs for inspection.
 */
class VectorSource : public TraceSource
{
  public:
    VectorSource(std::string name, std::vector<MemRef> refs)
        : label(std::move(name)), records(std::move(refs))
    {}

    bool
    next(MemRef &ref) override
    {
        if (pos >= records.size())
            return false;
        ref = records[pos++];
        return true;
    }

    std::size_t
    nextBatch(MemRef *out, std::size_t n) override
    {
        const std::size_t take = std::min(n, records.size() - pos);
        std::copy_n(records.begin() + static_cast<std::ptrdiff_t>(pos),
                    take, out);
        pos += take;
        return take;
    }

    std::size_t
    skip(std::size_t n) override
    {
        const std::size_t take = std::min(n, records.size() - pos);
        pos += take;
        return take;
    }

    void reset() override { pos = 0; }

    std::string name() const override { return label; }

    const std::vector<MemRef> &refs() const { return records; }

  private:
    std::string label;
    std::vector<MemRef> records;
    std::size_t pos = 0;
};

/** Drain up to @p limit records from @p src into a vector. */
std::vector<MemRef> collect(TraceSource &src, std::size_t limit);

} // namespace gaas::trace

#endif // GAAS_TRACE_SOURCE_HH
