#include "stream.hh"

#include <algorithm>

#include "trace/packed.hh"
#include "util/env.hh"

namespace gaas::trace
{

StreamSource::StreamSource(const std::string &path,
                           StreamOptions options)
    : file(path)
{
    packed = file.packable();

    std::size_t budget = options.memoryBudgetBytes;
    if (budget == 0) {
        budget = static_cast<std::size_t>(envU64(
                     kStreamBudgetEnv, kStreamBudgetDefaultMb)) *
                 (1u << 20);
    }

    // One slot holds one compressed payload plus one decoded block.
    // The payload capacity comes from the seek table (largest block
    // in this file), the decoded side from the fixed per-block
    // record population.
    const std::size_t decodedBytes =
        static_cast<std::size_t>(file.blockRefs()) *
        (packed ? sizeof(std::uint32_t) : sizeof(MemRef));
    const std::size_t slotBytes =
        file.maxPayloadBytes() + decodedBytes;
    const std::size_t minBytes = 2 * slotBytes;
    if (budget < minBytes) {
        gaas_error(ErrorCode::TraceIO, "streaming ", path,
                   " needs at least ", (minBytes >> 20) + 1,
                   " MiB (2 slots of ", slotBytes,
                   " bytes) but the ceiling (", kStreamBudgetEnv,
                   " or the workload's per-stream share) allows "
                   "only ", budget, " bytes");
    }
    const std::size_t count = std::clamp<std::size_t>(
        slotBytes ? budget / slotBytes : 2, 2, 16);
    slots.resize(count);
    ringBytes = count * slotBytes;
    for (Slot &slot : slots) {
        slot.payload.reserve(file.maxPayloadBytes());
        if (packed)
            slot.packedRefs.reserve(file.blockRefs());
        else
            slot.refs.reserve(file.blockRefs());
    }

    reader = std::thread([this] { readerLoop(); });
}

StreamSource::~StreamSource()
{
    {
        std::lock_guard<std::mutex> lock(m);
        stopping = true;
    }
    cv.notify_all();
    if (reader.joinable())
        reader.join();
}

void
StreamSource::readerLoop()
{
    const std::uint64_t blockCount = file.blockCount();
    const std::size_t count = slots.size();
    std::unique_lock<std::mutex> lock(m);
    for (;;) {
        cv.wait(lock, [&] {
            return stopping || failed ||
                   (produceBlock < blockCount &&
                    !slots[produceBlock % count].full);
        });
        if (stopping || failed)
            return;
        const std::uint64_t b = produceBlock;
        const std::uint64_t g = generation;
        Slot &slot = slots[b % count];
        lock.unlock();
        // The slot is free (full == false): the producer owns its
        // buffers until it republishes them under the lock below.
        try {
            file.readBlock(b, slot.payload);
            const std::uint32_t records = file.blockRecords(b);
            const v3::BlockContext ctx{&file.path(), b,
                                       file.payloadOffset(b)};
            if (packed) {
                slot.packedRefs.resize(records);
                v3::decodeBlockPacked(slot.payload.data(),
                                      slot.payload.size(), records,
                                      slot.packedRefs.data(), ctx);
            } else {
                slot.refs.resize(records);
                v3::decodeBlock(slot.payload.data(),
                                slot.payload.size(), records,
                                slot.refs.data(), ctx);
            }
            slot.records = records;
        } catch (const SimError &err) {
            lock.lock();
            failed = true;
            errorCode = err.code();
            errorText = err.what();
            cv.notify_all();
            continue;
        } catch (const FatalError &err) {
            lock.lock();
            failed = true;
            errorCode = ErrorCode::TraceIO;
            errorText = err.what();
            cv.notify_all();
            continue;
        }
        lock.lock();
        if (generation == g) {
            slot.block = b;
            slot.full = true;
            produceBlock = b + 1;
            ++decoded;
            cv.notify_all();
        }
        // On a generation change the decode raced a seek: drop it
        // and let the loop re-read the new production cursor.
    }
}

void
StreamSource::reseek(std::uint64_t block)
{
    {
        std::lock_guard<std::mutex> lock(m);
        ++generation;
        for (Slot &slot : slots)
            slot.full = false;
        produceBlock = block;
    }
    cv.notify_all();
    nextSeq = block;
    holding = false;
    held = nullptr;
}

StreamSource::Slot &
StreamSource::acquire(std::uint64_t block)
{
    const std::size_t count = slots.size();
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] {
        return failed || (slots[block % count].full &&
                          slots[block % count].block == block);
    });
    if (failed)
        throw SimError(errorCode, errorText);
    return slots[block % count];
}

void
StreamSource::release()
{
    if (!holding)
        return;
    {
        std::lock_guard<std::mutex> lock(m);
        held->full = false;
    }
    cv.notify_all();
    holding = false;
    held = nullptr;
    nextSeq = heldBlock + 1;
}

void
StreamSource::ensureHeld()
{
    const std::uint64_t b = pos / file.blockRefs();
    if (holding) {
        if (heldBlock == b)
            return;
        release();
    }
    if (b != nextSeq)
        reseek(b);
    held = &acquire(b);
    heldBlock = b;
    holding = true;
}

bool
StreamSource::next(MemRef &ref)
{
    return nextBatch(&ref, 1) == 1;
}

std::size_t
StreamSource::nextBatch(MemRef *out, std::size_t n)
{
    std::size_t produced = 0;
    const std::uint64_t total = file.recordCount();
    while (produced < n && pos < total) {
        ensureHeld();
        const auto offset = static_cast<std::size_t>(
            pos - file.firstRecordOf(heldBlock));
        const std::size_t take =
            std::min(n - produced, held->records - offset);
        if (packed) {
            const std::uint32_t *words =
                held->packedRefs.data() + offset;
            for (std::size_t i = 0; i < take; ++i)
                out[produced + i] = packed::unpack(words[i]);
        } else {
            std::copy_n(held->refs.begin() +
                            static_cast<std::ptrdiff_t>(offset),
                        take, out + produced);
        }
        pos += take;
        produced += take;
        if (offset + take == held->records)
            release();
    }
    return produced;
}

std::size_t
StreamSource::nextBatchPacked(std::uint32_t *out, std::size_t n)
{
    if (!packed)
        return kNoPacked;
    std::size_t produced = 0;
    const std::uint64_t total = file.recordCount();
    while (produced < n && pos < total) {
        ensureHeld();
        const auto offset = static_cast<std::size_t>(
            pos - file.firstRecordOf(heldBlock));
        const std::size_t take =
            std::min(n - produced, held->records - offset);
        std::copy_n(held->packedRefs.begin() +
                        static_cast<std::ptrdiff_t>(offset),
                    take, out + produced);
        pos += take;
        produced += take;
        if (offset + take == held->records)
            release();
    }
    return produced;
}

std::size_t
StreamSource::skip(std::size_t n)
{
    const std::uint64_t total = file.recordCount();
    const auto take = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, total - pos));
    pos += take;
    if (holding &&
        pos / file.blockRefs() != heldBlock)
        release();
    return take;
}

void
StreamSource::reset()
{
    pos = 0;
    if (holding && heldBlock != 0)
        release();
}

std::string
StreamSource::name() const
{
    return file.path() + "[stream]";
}

std::uint64_t
StreamSource::blocksDecoded() const
{
    std::lock_guard<std::mutex> lock(m);
    return decoded;
}

} // namespace gaas::trace
