/**
 * @file
 * StreamSource: bounded-memory streaming replay of a v3 trace file.
 *
 * A dedicated reader thread prefetches and decodes the *next* blocks
 * of the file into a small ring of slots while the simulator's hot
 * loop consumes the current one, so multi-billion-reference traces
 * -- the paper's 2.5 G-ref pixie regime -- replay without ever
 * materializing in RAM.  Decoded blocks are handed over through the
 * packed-batch interface (nextBatchPacked) when the file's records
 * all fit the packed u32 layout, which is the same fast path the
 * in-memory arena uses; otherwise the MemRef batch path serves.
 *
 * Memory model: the slot ring is sized from a hard byte ceiling --
 * StreamOptions::memoryBudgetBytes, defaulting to the
 * GAAS_TRACE_STREAM_MB environment knob (64 MiB when unset):
 * ring bytes = slots x (one decoded block + one compressed
 * payload), clamped to [2, 16] slots.  A ceiling too small for even
 * two slots is a TraceIO error naming the minimum, never a silent
 * overrun.  Peak RSS is therefore independent of trace length.
 *
 * Ordering/consistency: production runs strictly ahead of
 * consumption in block order; skip()/reset() move the cursor in
 * O(1) (seek table) and re-aim the producer, discarding any
 * prefetched blocks the jump invalidated.  All slot handoffs are
 * mutex+condvar protected (TSan-clean); the consumer copies out of
 * a slot only while it is marked full, and the producer writes one
 * only while it is free.
 *
 * The stream is bit-identical to TraceV3Reader over the same file,
 * and -- for a file written from a synth generator -- to the arena
 * replay of that generator, which the stream-vs-arena golden tests
 * pin.
 */

#ifndef GAAS_TRACE_STREAM_HH
#define GAAS_TRACE_STREAM_HH

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/v3.hh"
#include "util/error.hh"

namespace gaas::trace
{

/** Environment knob: streaming memory ceiling in MiB. */
inline constexpr const char *kStreamBudgetEnv =
    "GAAS_TRACE_STREAM_MB";

/** Default streaming memory ceiling when the env is unset (MiB). */
inline constexpr std::uint64_t kStreamBudgetDefaultMb = 64;

struct StreamOptions
{
    /**
     * Hard ceiling on the stream's buffer bytes; 0 means
     * GAAS_TRACE_STREAM_MB MiB (default 64).  Workloads with
     * several streams split one ceiling across them
     * (Workload::fromTraceFiles).
     */
    std::size_t memoryBudgetBytes = 0;
};

class StreamSource : public TraceSource
{
  public:
    explicit StreamSource(const std::string &path,
                          StreamOptions options = {});

    StreamSource(const StreamSource &) = delete;
    StreamSource &operator=(const StreamSource &) = delete;

    ~StreamSource() override;

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *out, std::size_t n) override;
    std::size_t nextBatchPacked(std::uint32_t *out,
                                std::size_t n) override;
    std::size_t skip(std::size_t n) override;
    void reset() override;
    std::string name() const override;

    std::uint64_t recordCount() const { return file.recordCount(); }

    /** True if replay runs through the packed u32 fast path. */
    bool packedCapable() const { return packed; }

    /** Total buffer bytes the slot ring may hold (<= the ceiling). */
    std::size_t bufferBytes() const { return ringBytes; }

    /** Slots in the ring (prefetch depth). */
    std::size_t slotCount() const { return slots.size(); }

    /** Blocks the reader thread decoded so far (telemetry). */
    std::uint64_t blocksDecoded() const;

  private:
    struct Slot
    {
        std::vector<unsigned char> payload;
        std::vector<std::uint32_t> packedRefs;
        std::vector<MemRef> refs;
        std::uint64_t block = 0;
        std::uint32_t records = 0;
        bool full = false;
    };

    void readerLoop();

    /** Re-aim the producer at @p block, discarding prefetches. */
    void reseek(std::uint64_t block);

    /** Block until slot for @p block is full (or the reader died). */
    Slot &acquire(std::uint64_t block);

    /** Hand the held slot back to the producer. */
    void release();

    /** Make the slot holding pos's block held; false at EOF. */
    void ensureHeld();

    V3File file;
    bool packed = false;
    std::size_t ringBytes = 0;

    // Consumer-thread-only state.
    std::uint64_t pos = 0;       //!< global record cursor
    bool holding = false;        //!< a slot is held for heldBlock
    std::uint64_t heldBlock = 0;
    std::uint64_t nextSeq = 0;   //!< next block in production order
    Slot *held = nullptr;

    // Shared state, guarded by m.
    mutable std::mutex m;
    std::condition_variable cv;
    std::vector<Slot> slots;
    std::uint64_t produceBlock = 0;
    std::uint64_t generation = 0;
    std::uint64_t decoded = 0;
    bool stopping = false;
    bool failed = false;
    ErrorCode errorCode = ErrorCode::TraceIO;
    std::string errorText;

    std::thread reader;
};

} // namespace gaas::trace

#endif // GAAS_TRACE_STREAM_HH
