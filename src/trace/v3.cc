#include "v3.hh"

#include <algorithm>
#include <cstring>

#include "trace/file.hh"
#include "trace/packed.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "util/file_io.hh"
#include "util/logging.hh"

namespace gaas::trace
{

namespace
{

void
putU32(unsigned char *dst, std::uint32_t v)
{
    dst[0] = static_cast<unsigned char>(v);
    dst[1] = static_cast<unsigned char>(v >> 8);
    dst[2] = static_cast<unsigned char>(v >> 16);
    dst[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64(unsigned char *dst, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        dst[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *src)
{
    return static_cast<std::uint32_t>(src[0]) |
           static_cast<std::uint32_t>(src[1]) << 8 |
           static_cast<std::uint32_t>(src[2]) << 16 |
           static_cast<std::uint32_t>(src[3]) << 24;
}

std::uint64_t
getU64(const unsigned char *src)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | src[i];
    return v;
}

/** Zig-zag map a signed delta into the non-negative varint domain. */
inline std::uint64_t
zigzag(std::int64_t d)
{
    return (static_cast<std::uint64_t>(d) << 1) ^
           static_cast<std::uint64_t>(d >> 63);
}

inline std::int64_t
unzigzag(std::uint64_t u)
{
    return static_cast<std::int64_t>((u >> 1) ^
                                     (~(u & 1) + 1));
}

/** Append @p v as LEB128; @return bytes written. */
inline std::size_t
putVarint(unsigned char *dst, std::uint64_t v)
{
    std::size_t n = 0;
    while (v >= 0x80) {
        dst[n++] = static_cast<unsigned char>(v) | 0x80;
        v >>= 7;
    }
    dst[n++] = static_cast<unsigned char>(v);
    return n;
}

/** The raw meta byte shared with the v1/v2 record format. */
inline unsigned
metaOf(const MemRef &ref)
{
    unsigned meta = static_cast<unsigned>(ref.kind);
    if (ref.syscall)
        meta |= 0x04;
    if (ref.partialWord)
        meta |= 0x08;
    return meta;
}

[[noreturn]] void
decodeFail(const v3::BlockContext &ctx, std::size_t record,
           std::size_t payload_pos, const char *what)
{
    gaas_error(ErrorCode::TraceIO, "trace block ", ctx.block,
               (ctx.path ? " of " : ""),
               (ctx.path ? ctx.path->c_str() : ""), " is corrupt: ",
               what, " decoding record ", record,
               " at payload byte ", payload_pos,
               " (file byte offset ",
               ctx.payloadOffset + payload_pos, ")");
}

/**
 * Decode one varint at @p p; advances @p p, fails byte-accurately
 * past @p end or beyond 64 bits.
 */
inline std::uint64_t
getVarint(const unsigned char *&p, const unsigned char *end,
          const unsigned char *base, std::size_t record,
          const v3::BlockContext &ctx)
{
    if (p >= end)
        decodeFail(ctx, record,
                   static_cast<std::size_t>(p - base),
                   "payload ends mid-record");
    std::uint64_t v = *p++;
    if (v < 0x80)
        return v;
    v &= 0x7f;
    unsigned shift = 7;
    unsigned char b;
    do {
        if (p >= end)
            decodeFail(ctx, record,
                       static_cast<std::size_t>(p - base),
                       "payload ends inside a varint");
        if (shift > 63)
            decodeFail(ctx, record,
                       static_cast<std::size_t>(p - base),
                       "varint longer than 64 bits");
        b = *p++;
        if (shift == 63 && (b & 0x7e))
            decodeFail(ctx, record,
                       static_cast<std::size_t>(p - base) - 1,
                       "varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        shift += 7;
    } while (b & 0x80);
    return v;
}

} // namespace

namespace v3
{

std::size_t
encodeBlock(const MemRef *refs, std::size_t n, unsigned char *out)
{
    unsigned char *p = out;
    std::uint64_t prevWord = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const MemRef &ref = refs[i];
        const std::uint64_t word = ref.addr >> 2;
        const std::uint64_t zz = zigzag(
            static_cast<std::int64_t>(word - prevWord));
        if ((ref.addr & 3) != 0 || (zz >> 60) != 0) {
            // Raw escape: unaligned address, or a delta too wide to
            // share a 64-bit varint with the meta nibble.
            *p++ = 0x0f;
            putU64(p, ref.addr);
            p += 8;
            *p++ = static_cast<unsigned char>(metaOf(ref));
        } else {
            p += putVarint(p, zz << 4 | metaOf(ref));
        }
        prevWord = word;
    }
    return static_cast<std::size_t>(p - out);
}

void
decodeBlock(const unsigned char *payload, std::size_t bytes,
            std::size_t records, MemRef *out,
            const BlockContext &ctx)
{
    const unsigned char *p = payload;
    const unsigned char *const end = payload + bytes;
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < records; ++i) {
        const std::uint64_t v =
            getVarint(p, end, payload, i, ctx);
        const unsigned meta = static_cast<unsigned>(v) & 0xf;
        MemRef &ref = out[i];
        if (meta == 0xf) {
            if (v != 0xf)
                decodeFail(ctx, i,
                           static_cast<std::size_t>(p - payload),
                           "invalid escape token");
            if (end - p < 9)
                decodeFail(ctx, i,
                           static_cast<std::size_t>(p - payload),
                           "payload ends inside a raw record");
            const unsigned raw = p[8];
            if ((raw & 0x03) > 2)
                decodeFail(ctx, i,
                           static_cast<std::size_t>(p - payload) + 8,
                           "invalid record kind");
            ref.addr = getU64(p);
            ref.kind = static_cast<RefKind>(raw & 0x03);
            ref.syscall = (raw & 0x04) != 0;
            ref.partialWord = (raw & 0x08) != 0;
            word = ref.addr >> 2;
            p += 9;
        } else {
            if ((meta & 0x03) > 2)
                decodeFail(ctx, i,
                           static_cast<std::size_t>(p - payload),
                           "invalid record kind");
            word += static_cast<std::uint64_t>(unzigzag(v >> 4));
            ref.addr = word << 2;
            ref.kind = static_cast<RefKind>(meta & 0x03);
            ref.syscall = (meta & 0x04) != 0;
            ref.partialWord = (meta & 0x08) != 0;
        }
    }
    if (p != end)
        decodeFail(ctx, records,
                   static_cast<std::size_t>(p - payload),
                   "trailing bytes after the last record");
}

void
decodeBlockPacked(const unsigned char *payload, std::size_t bytes,
                  std::size_t records, std::uint32_t *out,
                  const BlockContext &ctx)
{
    const unsigned char *p = payload;
    const unsigned char *const end = payload + bytes;
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < records; ++i) {
        const std::uint64_t v =
            getVarint(p, end, payload, i, ctx);
        const unsigned meta = static_cast<unsigned>(v) & 0xf;
        // A packable record is aligned (never escaped), has kind
        // 0..2, and only carries syscall on Inst / partialWord on
        // Store -- which leaves exactly these meta nibbles.
        constexpr std::uint16_t kPackableMeta =
            1u << 0x0 | 1u << 0x1 | 1u << 0x2 | // plain records
            1u << 0x4 |                         // Inst + syscall
            1u << 0xa;                          // Store + partial
        if (!((kPackableMeta >> meta) & 1u))
            decodeFail(ctx, i,
                       static_cast<std::size_t>(p - payload),
                       "record does not fit the packed layout "
                       "though the file's packable flag is set");
        word += static_cast<std::uint64_t>(unzigzag(v >> 4));
        if (word >> 29)
            decodeFail(ctx, i,
                       static_cast<std::size_t>(p - payload),
                       "address exceeds the packed layout though "
                       "the file's packable flag is set");
        out[i] = static_cast<std::uint32_t>(word) << 3 |
                 (meta & 0x03) << 1 |
                 static_cast<std::uint32_t>((meta & 0x0c) != 0);
    }
    if (p != end)
        decodeFail(ctx, records,
                   static_cast<std::size_t>(p - payload),
                   "trailing bytes after the last record");
}

} // namespace v3

V3FileInfo
v3FileInfo(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        gaas_error(ErrorCode::TraceIO, "cannot open trace file: ",
                   path);
    unsigned char header[kV3HeaderBytes];
    const bool got = std::fread(header, 1, kV3HeaderBytes, file) ==
                     kV3HeaderBytes;
    std::fclose(file);
    if (!got)
        gaas_error(ErrorCode::TraceIO, "trace file too short: ",
                   path);
    if (getU32(header) != kTraceMagic)
        gaas_error(ErrorCode::TraceIO, "bad magic in trace file: ",
                   path);
    const std::uint32_t version = getU32(header + 4);
    if (version != kV3Version)
        gaas_error(ErrorCode::TraceIO, "trace file ", path,
                   " is format v", version, ", not v3");
    V3FileInfo info;
    info.records = getU64(header + 8);
    info.blockRefs = getU32(header + 16);
    info.flags = getU32(header + 20);
    info.digest = getU64(header + 24);
    return info;
}

TraceV3Writer::TraceV3Writer(const std::string &path_,
                             std::uint32_t block_refs)
    : path(path_), blockRefs(block_refs)
{
    if (blockRefs == 0 || blockRefs > kV3MaxBlockRefs)
        gaas_error(ErrorCode::Config, "v3 block size ", blockRefs,
                   " out of range 1..", kV3MaxBlockRefs);
    if (fault::shouldFail("trace-open")) {
        gaas_error(ErrorCode::TraceIO,
                   "injected fault: trace-open (writing ", path,
                   ")");
    }
    file = std::fopen(path.c_str(), "wb");
    if (!file)
        gaas_error(ErrorCode::TraceIO,
                   "cannot open trace file for writing: ", path);
    block.reserve(blockRefs);
    payload.resize(static_cast<std::size_t>(blockRefs) *
                   kV3MaxRecordBytes);
    // Placeholder header; count, flags and digest are patched on
    // close().
    unsigned char header[kV3HeaderBytes] = {};
    putU32(header, kTraceMagic);
    putU32(header + 4, kV3Version);
    putU32(header + 16, blockRefs);
    if (!util::writeBytes(file, header, kV3HeaderBytes))
        gaas_error(ErrorCode::TraceIO,
                   "short write on trace header: ", path);
}

TraceV3Writer::~TraceV3Writer()
{
    try {
        close();
    } catch (const FatalError &err) {
        warn("trace v3 writer close failed: ", err.what());
    }
}

void
TraceV3Writer::write(const MemRef &ref)
{
    if (!file)
        gaas_panic("write on closed TraceV3Writer");
    block.push_back(ref);
    ++count;
    if (block.size() >= blockRefs)
        flushBlock();
}

std::uint64_t
TraceV3Writer::writeAll(TraceSource &src)
{
    std::uint64_t n = 0;
    for (;;) {
        // Fill the pending block with one batched call per gap, so
        // conversion runs at generator speed, not virtual-call speed.
        const std::size_t want = blockRefs - block.size();
        block.resize(blockRefs);
        const std::size_t got =
            src.nextBatch(block.data() + (blockRefs - want), want);
        block.resize(blockRefs - want + got);
        count += got;
        n += got;
        if (block.size() >= blockRefs)
            flushBlock();
        if (got < want)
            return n;
    }
}

void
TraceV3Writer::flushBlock()
{
    if (block.empty())
        return;
    for (const MemRef &ref : block)
        packableAll = packableAll && packed::packable(ref);
    const std::size_t bytes =
        v3::encodeBlock(block.data(), block.size(), payload.data());
    const std::uint32_t checksum =
        util::fnv1a32(payload.data(), bytes);
    unsigned char frame[kV3FrameBytes];
    putU32(frame, static_cast<std::uint32_t>(bytes));
    putU32(frame + 4, static_cast<std::uint32_t>(block.size()));
    putU32(frame + 8, checksum);
    if (!util::writeBytes(file, frame, kV3FrameBytes) ||
        !util::writeBytes(file, payload.data(), bytes))
        gaas_error(ErrorCode::TraceIO,
                   "short write on trace file: ", path);
    offsets.push_back(writeOffset);
    writeOffset += kV3FrameBytes + bytes;
    digest.feedNumber(block.size());
    digest.feedNumber(checksum);
    block.clear();
}

void
TraceV3Writer::close()
{
    if (!file)
        return;
    flushBlock();
    // Seek table + tail.
    std::vector<unsigned char> table(offsets.size() * 8);
    for (std::size_t i = 0; i < offsets.size(); ++i)
        putU64(table.data() + i * 8, offsets[i]);
    unsigned char tail[kV3TailBytes];
    putU64(tail, offsets.size());
    putU32(tail + 8, util::fnv1a32(table.data(), table.size()));
    putU32(tail + 12, kV3FooterMagic);
    bool ok = util::writeBytes(file, table.data(), table.size()) &&
              util::writeBytes(file, tail, kV3TailBytes);
    // Patch the finalised header.
    unsigned char header[kV3HeaderBytes];
    putU32(header, kTraceMagic);
    putU32(header + 4, kV3Version);
    putU64(header + 8, count);
    putU32(header + 16, blockRefs);
    putU32(header + 20, packableAll ? kV3FlagPackable : 0);
    putU64(header + 24, digest.value());
    ok = ok && util::seekTo(file, 0) &&
         util::writeBytes(file, header, kV3HeaderBytes) &&
         util::flushAndSync(file);
    ok = std::fclose(file) == 0 && ok;
    file = nullptr;
    if (!ok)
        gaas_error(ErrorCode::TraceIO,
                   "error finalising trace file: ", path);
}

V3File::V3File(const std::string &path_) : path_(path_)
{
    if (fault::shouldFail("trace-open")) {
        gaas_error(ErrorCode::TraceIO,
                   "injected fault: trace-open (reading ", path_,
                   ")");
    }
    file = std::fopen(path_.c_str(), "rb");
    if (!file)
        gaas_error(ErrorCode::TraceIO, "cannot open trace file: ",
                   path_);
    try {
        openAndValidate();
    } catch (...) {
        std::fclose(file);
        file = nullptr;
        throw;
    }
}

V3File::~V3File()
{
    if (file)
        std::fclose(file);
}

void
V3File::openAndValidate()
{
    const std::int64_t size64 = util::fileSizeBytes(file);
    if (size64 < 0)
        gaas_error(ErrorCode::TraceIO,
                   "cannot determine size of trace file: ", path_);
    const auto size = static_cast<std::uint64_t>(size64);
    if (size < kV3HeaderBytes + kV3TailBytes)
        gaas_error(ErrorCode::TraceIO, "trace file too short: ",
                   path_, " (", size, " bytes; a v3 file is at "
                   "least ", kV3HeaderBytes + kV3TailBytes,
                   " bytes)");

    unsigned char header[kV3HeaderBytes];
    if (std::fread(header, 1, kV3HeaderBytes, file) !=
        kV3HeaderBytes)
        gaas_error(ErrorCode::TraceIO, "trace file too short: ",
                   path_);
    if (getU32(header) != kTraceMagic)
        gaas_error(ErrorCode::TraceIO, "bad magic in trace file: ",
                   path_);
    const std::uint32_t version = getU32(header + 4);
    if (version != kV3Version)
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " is format v", version,
                   "; the v3 reader only reads v3 (open v1/v2 "
                   "files with TraceFileReader, or convert with "
                   "`tracepack pack`)");
    records_ = getU64(header + 8);
    blockRefs_ = getU32(header + 16);
    flags_ = getU32(header + 20);
    digest_ = getU64(header + 24);
    if (blockRefs_ == 0 || blockRefs_ > kV3MaxBlockRefs)
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " declares ", blockRefs_,
                   " records per block (valid: 1..", kV3MaxBlockRefs,
                   ")");

    // Tail: the last 16 bytes locate and checksum the seek table.
    unsigned char tail[kV3TailBytes];
    if (!util::seekTo(file, size - kV3TailBytes) ||
        std::fread(tail, 1, kV3TailBytes, file) != kV3TailBytes)
        gaas_error(ErrorCode::TraceIO,
                   "cannot read trace footer of ", path_);
    if (getU32(tail + 12) != kV3FooterMagic)
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " has a bad footer magic at byte offset ",
                   size - 4,
                   " -- truncated or not finalised");
    const std::uint64_t blocks = getU64(tail);
    const std::uint64_t expectBlocks =
        (records_ + blockRefs_ - 1) / blockRefs_;
    if (blocks != expectBlocks)
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " footer declares ", blocks, " blocks but ",
                   records_, " records at ", blockRefs_,
                   " per block need ", expectBlocks);
    const std::uint64_t bodyBytes =
        size - kV3HeaderBytes - kV3TailBytes;
    if (blocks > bodyBytes / 8 ||
        blocks * (kV3FrameBytes + 8) > bodyBytes)
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " footer declares ", blocks,
                   " blocks, more than its ", bodyBytes,
                   " body bytes can hold");
    tableStart = size - kV3TailBytes - blocks * 8;

    // Seek table: checksummed, strictly monotonic, in bounds.
    std::vector<unsigned char> table(blocks * 8);
    if (!util::seekTo(file, tableStart) ||
        std::fread(table.data(), 1, table.size(), file) !=
            table.size())
        gaas_error(ErrorCode::TraceIO,
                   "cannot read seek table of ", path_);
    const std::uint32_t tableSum =
        util::fnv1a32(table.data(), table.size());
    if (tableSum != getU32(tail + 8))
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " seek table checksum mismatch at byte offset ",
                   tableStart, " (stored ", getU32(tail + 8),
                   ", computed ", tableSum, ")");
    offsets.resize(blocks);
    std::uint64_t prevEnd = kV3HeaderBytes;
    for (std::uint64_t i = 0; i < blocks; ++i) {
        const std::uint64_t off = getU64(table.data() + i * 8);
        if (off != prevEnd && i == 0)
            gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                       " seek table entry 0 is ", off,
                       ", expected ", kV3HeaderBytes,
                       " (at table byte offset ", tableStart, ")");
        if (off < prevEnd + (i == 0 ? 0 : kV3FrameBytes) ||
            off + kV3FrameBytes > tableStart)
            gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                       " seek table entry ", i, " (", off,
                       ") is out of bounds at table byte offset ",
                       tableStart + i * 8);
        offsets[i] = off;
        if (i > 0) {
            const std::size_t prevPayload = static_cast<std::size_t>(
                off - offsets[i - 1] - kV3FrameBytes);
            maxPayload_ = std::max(maxPayload_, prevPayload);
        }
        prevEnd = off;
    }
    if (blocks > 0) {
        const std::uint64_t lastEnd = tableStart;
        if (lastEnd < offsets[blocks - 1] + kV3FrameBytes)
            gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                       " last block overlaps the seek table");
        maxPayload_ = std::max(
            maxPayload_, static_cast<std::size_t>(
                             lastEnd - offsets[blocks - 1] -
                             kV3FrameBytes));
    } else if (tableStart != kV3HeaderBytes) {
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " has ", tableStart - kV3HeaderBytes,
                   " unexpected bytes before its (empty) seek "
                   "table at byte offset ", kV3HeaderBytes);
    }
}

std::uint32_t
V3File::blockRecords(std::uint64_t b) const
{
    if (b + 1 < offsets.size())
        return blockRefs_;
    return static_cast<std::uint32_t>(
        records_ - (offsets.size() - 1) * blockRefs_);
}

void
V3File::readBlock(std::uint64_t b,
                  std::vector<unsigned char> &out)
{
    const std::uint64_t off = offsets[b];
    const std::uint64_t next =
        b + 1 < offsets.size() ? offsets[b + 1] : tableStart;
    const auto expectBytes = static_cast<std::uint32_t>(
        next - off - kV3FrameBytes);
    unsigned char frame[kV3FrameBytes];
    if (!util::seekTo(file, off) ||
        std::fread(frame, 1, kV3FrameBytes, file) != kV3FrameBytes)
        gaas_error(ErrorCode::TraceIO, "cannot read block ", b,
                   " frame of ", path_, " at byte offset ", off);
    const std::uint32_t payloadBytes = getU32(frame);
    const std::uint32_t frameRecords = getU32(frame + 4);
    const std::uint32_t storedSum = getU32(frame + 8);
    if (payloadBytes != expectBytes)
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " block ", b, " frame at byte offset ", off,
                   " declares ", payloadBytes,
                   " payload bytes but the seek table allots ",
                   expectBytes, " -- the seek table lies");
    if (frameRecords != blockRecords(b))
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " block ", b, " frame at byte offset ", off,
                   " declares ", frameRecords, " records, expected ",
                   blockRecords(b));
    out.resize(payloadBytes);
    if (std::fread(out.data(), 1, payloadBytes, file) !=
        payloadBytes)
        gaas_error(ErrorCode::TraceIO, "cannot read block ", b,
                   " payload of ", path_, " at byte offset ",
                   off + kV3FrameBytes);
    const std::uint32_t computed =
        util::fnv1a32(out.data(), payloadBytes);
    if (computed != storedSum)
        gaas_error(ErrorCode::TraceIO, "trace file ", path_,
                   " block ", b, " payload checksum mismatch at "
                   "byte offset ", off + kV3FrameBytes,
                   " (stored ", storedSum, ", computed ", computed,
                   ")");
}

TraceV3Reader::TraceV3Reader(const std::string &path) : src(path) {}

void
TraceV3Reader::loadBlock(std::uint64_t b)
{
    src.readBlock(b, payload);
    const std::uint32_t records = src.blockRecords(b);
    refs.resize(records);
    const v3::BlockContext ctx{&src.path(), b,
                               src.payloadOffset(b)};
    v3::decodeBlock(payload.data(), payload.size(), records,
                    refs.data(), ctx);
    curBlock = b;
}

bool
TraceV3Reader::next(MemRef &ref)
{
    return nextBatch(&ref, 1) == 1;
}

std::size_t
TraceV3Reader::nextBatch(MemRef *out, std::size_t n)
{
    std::size_t produced = 0;
    const std::uint64_t total = src.recordCount();
    while (produced < n && pos < total) {
        const std::uint64_t b = pos / src.blockRefs();
        if (b != curBlock)
            loadBlock(b);
        const auto offset =
            static_cast<std::size_t>(pos - src.firstRecordOf(b));
        const std::size_t take = std::min(
            n - produced, refs.size() - offset);
        std::copy_n(refs.begin() +
                        static_cast<std::ptrdiff_t>(offset),
                    take, out + produced);
        pos += take;
        produced += take;
    }
    return produced;
}

std::size_t
TraceV3Reader::skip(std::size_t n)
{
    const std::uint64_t total = src.recordCount();
    const auto take = static_cast<std::size_t>(
        std::min<std::uint64_t>(n, total - pos));
    pos += take;
    return take;
}

void
TraceV3Reader::reset()
{
    pos = 0;
}

std::string
TraceV3Reader::name() const
{
    return src.path();
}

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path)
{
    // Peek the version (the magic check is repeated, and deepened,
    // by whichever reader we hand off to).
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        gaas_error(ErrorCode::TraceIO, "cannot open trace file: ",
                   path);
    unsigned char header[8];
    const bool got = std::fread(header, 1, 8, file) == 8;
    std::fclose(file);
    if (!got)
        gaas_error(ErrorCode::TraceIO, "trace file too short: ",
                   path);
    if (getU32(header) != kTraceMagic)
        gaas_error(ErrorCode::TraceIO, "bad magic in trace file: ",
                   path);
    if (getU32(header + 4) == kV3Version)
        return std::make_unique<TraceV3Reader>(path);
    return std::make_unique<TraceFileReader>(path);
}

} // namespace gaas::trace
