/**
 * @file
 * Trace file format v3: block-compressed address traces.
 *
 * v1/v2 (trace/file.hh) spend 9 bytes per record; at the paper's
 * 2.5-billion-reference regime that is ~21 GiB per workload and the
 * whole file must be decoded serially.  v3 delta-encodes word
 * addresses inside fixed-population blocks that are independently
 * decodable, checksummed and seekable:
 *
 *   header (32 bytes, little endian):
 *     magic "GTRC" u32, version u32 = 3, record count u64,
 *     records per block u32, flags u32 (bit 0: every record fits
 *     the packed u32 layout of trace/packed.hh), content digest u64
 *   blocks (count / blockRefs, last one short):
 *     frame: payload bytes u32, record count u32,
 *            FNV-1a-32 of the payload u32
 *     payload: one varint token per record (see below)
 *   footer:
 *     seek table: one u64 file offset per block (of its frame)
 *     tail (16 bytes): block count u64,
 *           FNV-1a-32 of the seek table u32, magic "GSK3" u32
 *
 * Token encoding: addresses are word indices (addr >> 2) and each
 * record stores the signed delta from the previous record's word
 * index, zig-zag mapped and packed together with the 4 meta bits
 * into one LEB128 varint:
 *
 *   token = zigzag(wordDelta) << 4 | meta
 *   meta  = kind (2 bits) | syscall << 2 | partialWord << 3
 *
 * meta == 0xF would need kind == 3, which no record has, so the
 * single byte 0x0F escapes to a raw record (u64 address + meta
 * byte) for unaligned addresses or deltas too large for 60 bits.
 * Sequential instruction fetches (delta +1, meta 0) cost one byte.
 * Every block restarts the delta chain at word 0, so blocks decode
 * independently -- which is what lets the streaming reader
 * (trace/stream.hh) prefetch ahead and lets skip() land on any
 * block in O(1) via the seek table.
 *
 * The content digest folds each block's (record count, payload
 * checksum) pair into a 64-bit FNV-1a, so two files with the same
 * digest, record count and block size carry byte-identical payloads
 * without anyone reading them end to end; the resume journal keys
 * trace-file sweep points on it.
 *
 * Every malformed-file rejection is a SimError with
 * ErrorCode::TraceIO and a byte-accurate offset, like the v2
 * reader's.
 */

#ifndef GAAS_TRACE_V3_HH
#define GAAS_TRACE_V3_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/source.hh"
#include "util/hash.hh"

namespace gaas::trace
{

/** v3 format version number (shares kTraceMagic with v1/v2). */
inline constexpr std::uint32_t kV3Version = 3;

/** Magic at the very end of the file, after the seek table. */
inline constexpr std::uint32_t kV3FooterMagic = 0x334b5347; // "GSK3"

/** Fixed-size header at the start of the file. */
inline constexpr std::size_t kV3HeaderBytes = 32;

/** Per-block frame: payload bytes u32, records u32, checksum u32. */
inline constexpr std::size_t kV3FrameBytes = 12;

/** Fixed-size tail after the seek table. */
inline constexpr std::size_t kV3TailBytes = 16;

/** Records per block written by default (64 Ki). */
inline constexpr std::uint32_t kV3DefaultBlockRefs = 1u << 16;

/** Largest records-per-block a writer accepts (4 Mi). */
inline constexpr std::uint32_t kV3MaxBlockRefs = 1u << 22;

/**
 * Worst-case encoded bytes per record: a 10-byte varint for the
 * delta path, or the 10-byte escape (token + u64 + meta).  Sizing
 * payload buffers at records * this bound makes encode overflow
 * impossible and caps a decoder's read size.
 */
inline constexpr std::size_t kV3MaxRecordBytes = 10;

/** Header flag bit 0: every record passes packed::packable(). */
inline constexpr std::uint32_t kV3FlagPackable = 1u;

/** Cheap metadata peek (header only; no payload is read). */
struct V3FileInfo
{
    std::uint64_t records = 0;
    std::uint32_t blockRefs = 0;
    std::uint32_t flags = 0;
    std::uint64_t digest = 0;

    bool packable() const { return (flags & kV3FlagPackable) != 0; }
};

/**
 * Read and validate the 32-byte v3 header of @p path.  Throws
 * SimError(TraceIO) if the file is missing, too short, has the wrong
 * magic or is not version 3.
 */
V3FileInfo v3FileInfo(const std::string &path);

namespace v3
{

/** Error context for byte-accurate decode diagnostics. */
struct BlockContext
{
    /** File path (for messages); may be null for in-memory blocks. */
    const std::string *path = nullptr;

    /** Block index within the file. */
    std::uint64_t block = 0;

    /** Absolute file offset of the payload's first byte. */
    std::uint64_t payloadOffset = 0;
};

/**
 * Encode @p n records into @p out (sized >= n * kV3MaxRecordBytes).
 * The delta chain starts at word 0.  @return payload bytes written.
 */
std::size_t encodeBlock(const MemRef *refs, std::size_t n,
                        unsigned char *out);

/**
 * Decode exactly @p records records from a @p bytes -byte payload
 * into @p out.  Throws SimError(TraceIO) -- naming the record, block
 * and absolute byte offset from @p ctx -- on truncated or overlong
 * varints, invalid escapes, bad record kinds, or trailing payload
 * bytes.
 */
void decodeBlock(const unsigned char *payload, std::size_t bytes,
                 std::size_t records, MemRef *out,
                 const BlockContext &ctx);

/**
 * decodeBlock straight into packed u32 words (trace/packed.hh),
 * skipping the 16-byte MemRef round trip -- the streaming hot path.
 * Only valid for blocks of a file whose kV3FlagPackable flag is set;
 * a record that does not fit the packed layout is a TraceIO error
 * (the flag lied), never a silent truncation.
 */
void decodeBlockPacked(const unsigned char *payload,
                       std::size_t bytes, std::size_t records,
                       std::uint32_t *out, const BlockContext &ctx);

} // namespace v3

/**
 * Streaming v3 writer; buffers one block of records, encodes and
 * frames it when full, and finalises header + seek table on close.
 */
class TraceV3Writer
{
  public:
    explicit TraceV3Writer(const std::string &path,
                           std::uint32_t block_refs =
                               kV3DefaultBlockRefs);

    TraceV3Writer(const TraceV3Writer &) = delete;
    TraceV3Writer &operator=(const TraceV3Writer &) = delete;

    ~TraceV3Writer();

    /** Append one record. */
    void write(const MemRef &ref);

    /** Drain @p src into the file; @return records written. */
    std::uint64_t writeAll(TraceSource &src);

    /** Flush, write footer, patch header; implied by destructor. */
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    void flushBlock();

    std::string path;
    std::FILE *file = nullptr;
    std::uint32_t blockRefs;
    std::vector<MemRef> block;            // pending records
    std::vector<unsigned char> payload;   // encode scratch
    std::vector<std::uint64_t> offsets;   // seek table
    util::Fnv1a digest;                   // content digest
    std::uint64_t count = 0;
    std::uint64_t writeOffset = kV3HeaderBytes;
    bool packableAll = true;
};

/**
 * An open, fully validated v3 file with random block access: the
 * shared substrate of the sequential reader (TraceV3Reader) and the
 * prefetching streamer (StreamSource).  Open-time validation covers
 * header, tail, seek-table checksum, offset monotonicity/bounds and
 * block-count/record-count consistency; per-block validation
 * (frame/table agreement, payload checksum) happens in readBlock.
 *
 * Not thread-safe: each instance is owned by exactly one thread.
 */
class V3File
{
  public:
    explicit V3File(const std::string &path);

    V3File(const V3File &) = delete;
    V3File &operator=(const V3File &) = delete;

    ~V3File();

    const std::string &path() const { return path_; }
    std::uint64_t recordCount() const { return records_; }
    std::uint32_t blockRefs() const { return blockRefs_; }
    std::uint64_t blockCount() const { return offsets.size(); }
    std::uint32_t flags() const { return flags_; }
    std::uint64_t digest() const { return digest_; }

    bool
    packable() const
    {
        return (flags_ & kV3FlagPackable) != 0;
    }

    /** Largest payload in the file (from seek-table adjacency). */
    std::size_t maxPayloadBytes() const { return maxPayload_; }

    /** Global index of block @p b's first record. */
    std::uint64_t
    firstRecordOf(std::uint64_t b) const
    {
        return b * blockRefs_;
    }

    /** Record population of block @p b (blockRefs, last one short). */
    std::uint32_t blockRecords(std::uint64_t b) const;

    /** Absolute file offset of block @p b's payload. */
    std::uint64_t
    payloadOffset(std::uint64_t b) const
    {
        return offsets[b] + kV3FrameBytes;
    }

    /**
     * Read block @p b's payload into @p payload (resized), after
     * validating its frame against the seek table and its checksum
     * against the bytes.  Throws SimError(TraceIO) on any mismatch.
     */
    void readBlock(std::uint64_t b,
                   std::vector<unsigned char> &payload);

  private:
    void openAndValidate();

    std::string path_;
    std::FILE *file = nullptr;
    std::uint64_t records_ = 0;
    std::uint32_t blockRefs_ = kV3DefaultBlockRefs;
    std::uint32_t flags_ = 0;
    std::uint64_t digest_ = 0;
    std::vector<std::uint64_t> offsets; // seek table
    std::uint64_t tableStart = 0;
    std::size_t maxPayload_ = 0;
};

/**
 * Sequential TraceSource over a v3 file: decodes one block at a
 * time into an in-memory buffer (so peak memory is one block, not
 * the trace), with O(1) skip()/reset() via the seek table.  Block
 * loading is lazy -- skip() only moves the cursor, and the block it
 * lands in is decoded on the next read.
 */
class TraceV3Reader : public TraceSource
{
  public:
    explicit TraceV3Reader(const std::string &path);

    bool next(MemRef &ref) override;
    std::size_t nextBatch(MemRef *out, std::size_t n) override;
    std::size_t skip(std::size_t n) override;
    void reset() override;
    std::string name() const override;

    std::uint64_t recordCount() const { return src.recordCount(); }
    const V3File &file() const { return src; }

  private:
    void loadBlock(std::uint64_t b);

    V3File src;
    std::vector<unsigned char> payload;
    std::vector<MemRef> refs; // decoded current block
    std::uint64_t curBlock = ~std::uint64_t{0};
    std::uint64_t pos = 0; // global record cursor
};

/**
 * Open @p path as whatever trace version it is: v1/v2 get a
 * TraceFileReader, v3 a TraceV3Reader.  Throws SimError(TraceIO) on
 * anything else.
 */
std::unique_ptr<TraceSource> openTraceFile(const std::string &path);

} // namespace gaas::trace

#endif // GAAS_TRACE_V3_HH
