/**
 * @file
 * Minimal aligned allocator, for hot arrays that want to start on a
 * host cache line (e.g. the tag store's packed tag words, so one
 * set's tags never straddle two lines).
 */

#ifndef GAAS_UTIL_ALIGNED_HH
#define GAAS_UTIL_ALIGNED_HH

#include <cstddef>
#include <new>

namespace gaas::util
{

/** Host cache-line size assumed by the aligned hot arrays. */
inline constexpr std::size_t kCacheLineBytes = 64;

/** std::allocator drop-in that over-aligns every allocation. */
template <class T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two >= alignof(T)");

    using value_type = T;

    /** Explicit rebind: allocator_traits cannot synthesize one
     *  across the non-type Align parameter. */
    template <class U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() = default;

    template <class U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t)
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    template <class U>
    bool
    operator==(const AlignedAllocator<U, Align> &) const
    {
        return true;
    }
};

} // namespace gaas::util

#endif // GAAS_UTIL_ALIGNED_HH
