/**
 * @file
 * Bit-manipulation helpers used by the cache index/tag logic, the
 * page-colouring allocator, and the TLB.
 */

#ifndef GAAS_UTIL_BITOPS_HH
#define GAAS_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace gaas
{

/** @return true if @p v is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** @return ceil(log2(v)); v must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** @return a mask with the low @p nbits bits set. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << nbits) - 1;
}

/** Extract bits [first, first + nbits) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned first, unsigned nbits)
{
    return (v >> first) & mask(nbits);
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace gaas

#endif // GAAS_UTIL_BITOPS_HH
