#include "env.hh"

#include <charconv>
#include <cmath>
#include <cstdlib>

#include "util/logging.hh"

namespace gaas
{

std::optional<std::uint64_t>
parseU64(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    std::uint64_t value = 0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto res = std::from_chars(begin, end, value, 10);
    if (res.ec != std::errc{} || res.ptr != end)
        return std::nullopt;
    return value;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    if (const auto parsed = parseU64(value); parsed && *parsed > 0)
        return *parsed;
    warn("ignoring bad ", name, "=", value,
         " (want a positive decimal integer)");
    return fallback;
}

std::optional<double>
parseDouble(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    double value = 0.0;
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto res = std::from_chars(begin, end, value);
    if (res.ec != std::errc{} || res.ptr != end ||
        !std::isfinite(value))
        return std::nullopt;
    return value;
}

double
envDouble(const char *name, double fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    if (const auto parsed = parseDouble(value); parsed && *parsed > 0)
        return *parsed;
    warn("ignoring bad ", name, "=", value,
         " (want a positive decimal number)");
    return fallback;
}

} // namespace gaas
