/**
 * @file
 * Strict environment-variable parsing shared by the sweep engine and
 * the bench harness.
 *
 * Every numeric knob (GAAS_BENCH_JOBS, GAAS_BENCH_INSTRUCTIONS, ...)
 * goes through the same rules: the whole value must parse as a
 * positive decimal integer -- trailing garbage ("4x"), overflow,
 * signs, whitespace and zero are all rejected with a loud warn() and
 * fall back to the caller's default.  A silently half-parsed knob
 * (e.g. "4x" read as 4) is worse than an ignored one.
 */

#ifndef GAAS_UTIL_ENV_HH
#define GAAS_UTIL_ENV_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace gaas
{

/**
 * Parse the whole of @p text as an unsigned decimal integer.
 *
 * @return nullopt if @p text is empty, has any non-digit character
 *         (including leading/trailing whitespace or a sign), or
 *         overflows uint64
 */
std::optional<std::uint64_t> parseU64(std::string_view text);

/**
 * Read environment variable @p name as a positive integer.
 *
 * Unset or empty returns @p fallback silently; a present but
 * malformed, zero or overflowing value warns and returns
 * @p fallback.
 */
std::uint64_t envU64(const char *name, std::uint64_t fallback);

/**
 * Parse the whole of @p text as a finite decimal double
 * (std::from_chars, fixed or scientific; no leading whitespace or
 * trailing garbage tolerated, same strictness as parseU64).
 */
std::optional<double> parseDouble(std::string_view text);

/**
 * Read environment variable @p name as a positive finite double.
 * Unset or empty returns @p fallback silently; a present but
 * malformed or non-positive value warns and returns @p fallback.
 */
double envDouble(const char *name, double fallback);

} // namespace gaas

#endif // GAAS_UTIL_ENV_HH
