#include "error.hh"

#include <sstream>

namespace gaas
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Config:
        return "config";
      case ErrorCode::TraceIO:
        return "trace-io";
      case ErrorCode::StatsIO:
        return "stats-io";
      case ErrorCode::Watchdog:
        return "watchdog";
      case ErrorCode::Internal:
        return "internal";
      case ErrorCode::WorkerLost:
        return "worker-lost";
      case ErrorCode::Cancelled:
        return "cancelled";
      case ErrorCode::Locked:
        return "locked";
    }
    return "internal";
}

bool
parseErrorCode(const std::string &name, ErrorCode &out)
{
    for (ErrorCode code :
         {ErrorCode::Config, ErrorCode::TraceIO, ErrorCode::StatsIO,
          ErrorCode::Watchdog, ErrorCode::Internal,
          ErrorCode::WorkerLost, ErrorCode::Cancelled,
          ErrorCode::Locked}) {
        if (name == errorCodeName(code)) {
            out = code;
            return true;
        }
    }
    return false;
}

namespace detail
{

void
simErrorImpl(ErrorCode code, const char *file, int line,
             const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << "\n  at " << file << ':' << line;
    throw SimError(code, os.str());
}

} // namespace detail

} // namespace gaas
