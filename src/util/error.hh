/**
 * @file
 * The structured error model: every recoverable failure the library
 * reports carries a stable, machine-readable error code.
 *
 * SimError extends FatalError (so every existing `catch (const
 * FatalError &)` keeps working) with an ErrorCode that classifies the
 * failure: a bad configuration, trace-file I/O, stats/result-file
 * I/O, a watchdog trip, or an internal invariant.  The codes are
 * part of the public contract -- the sweep engine journals them, the
 * figure CSVs print them (`failed:<code>`), and the fuzz tests
 * assert that every rejection path produces one -- so their names
 * must stay stable across releases.
 *
 * Use `gaas_error(ErrorCode::X, ...)` where gaas_fatal was used
 * before; it formats the same way and additionally records the code.
 */

#ifndef GAAS_UTIL_ERROR_HH
#define GAAS_UTIL_ERROR_HH

#include <string>

#include "util/logging.hh"

namespace gaas
{

/** Stable failure classification; see file comment. */
enum class ErrorCode
{
    Config,   //!< bad configuration text/values ("config")
    TraceIO,  //!< trace file open/read/write/format ("trace-io")
    StatsIO,  //!< stats/CSV/journal persistence ("stats-io")
    Watchdog, //!< zero-progress cycle budget exceeded ("watchdog")
    Internal, //!< unclassified or invariant failure ("internal")

    /** A multi-process sweep worker died (signal, crash, hang
     *  SIGKILLed by the supervisor) more times than the requeue
     *  budget allows; the point degrades to `failed:worker-lost`
     *  instead of aborting the ladder ("worker-lost"). */
    WorkerLost,

    /** The point was cancelled before it ran -- a SIGTERM/SIGINT
     *  drain marks every not-yet-started job with this code
     *  ("cancelled"). */
    Cancelled,

    /** A resource (the resume journal) is exclusively held by
     *  another live process ("locked"). */
    Locked,
};

/** The stable wire name of @p code (e.g. "trace-io"). */
const char *errorCodeName(ErrorCode code);

/**
 * Parse a wire name back to its code.
 *
 * @return true and set @p out on a known name, false otherwise
 */
bool parseErrorCode(const std::string &name, ErrorCode &out);

/** A FatalError carrying a stable ErrorCode; see file comment. */
class SimError : public FatalError
{
  public:
    SimError(ErrorCode code, std::string msg)
        : FatalError(std::move(msg)), errorCode(code)
    {
    }

    ErrorCode code() const noexcept { return errorCode; }

    /** The stable wire name of code(). */
    const char *codeName() const noexcept
    {
        return errorCodeName(errorCode);
    }

  private:
    ErrorCode errorCode;
};

namespace detail
{

[[noreturn]] void simErrorImpl(ErrorCode code, const char *file,
                               int line, const std::string &msg);

} // namespace detail

/** Throw a SimError with @p code, formatted like gaas_fatal. */
#define gaas_error(code, ...)                                            \
    ::gaas::detail::simErrorImpl(                                        \
        code, __FILE__, __LINE__,                                        \
        ::gaas::detail::formatParts(__VA_ARGS__))

} // namespace gaas

#endif // GAAS_UTIL_ERROR_HH
