#include "fault.hh"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/env.hh"
#include "util/error.hh"

namespace gaas::fault
{

namespace
{

/** One armed injection: the hit numbers that fail (or all). */
struct Injection
{
    bool always = false;           //!< `point:*`
    std::vector<std::uint64_t> at; //!< `point:N` hit numbers
};

struct State
{
    std::mutex mutex;
    std::map<std::string, Injection> armed;
    std::map<std::string, std::uint64_t> hits;
    bool envRead = false;
};

State &
state()
{
    static State s;
    return s;
}

/**
 * Fast-path gates: once env_checked is set and nothing is armed,
 * shouldFail returns in two relaxed loads without the mutex.  Both
 * are written only under state().mutex.
 */
std::atomic<bool> any_armed{false};
std::atomic<bool> env_checked{false};

/** Parse and arm @p spec; caller holds the lock.  All-or-nothing:
 *  a malformed spec throws without disturbing the armed set. */
void
configureLocked(State &s, std::string_view spec)
{
    std::map<std::string, Injection> parsed;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        auto comma = spec.find(',', pos);
        if (comma == std::string_view::npos)
            comma = spec.size();
        const std::string_view item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const auto colon = item.rfind(':');
        if (colon == std::string_view::npos || colon == 0 ||
            colon + 1 == item.size()) {
            gaas_error(ErrorCode::Config,
                       "bad fault spec item '", std::string(item),
                       "' (want point:N or point:*)");
        }
        const std::string point(item.substr(0, colon));
        const std::string_view count = item.substr(colon + 1);
        Injection &inj = parsed[point];
        if (count == "*") {
            inj.always = true;
        } else if (const auto n = parseU64(count); n && *n > 0) {
            inj.at.push_back(*n);
        } else {
            gaas_error(ErrorCode::Config,
                       "bad fault spec count '", std::string(count),
                       "' for point '", point,
                       "' (want a positive integer or *)");
        }
    }
    s.armed = std::move(parsed);
    s.hits.clear();
    any_armed.store(!s.armed.empty(), std::memory_order_relaxed);
}

/** Lazily fold GAAS_FAULT into the armed set; caller holds lock. */
void
readEnvLocked(State &s)
{
    if (s.envRead)
        return;
    s.envRead = true;
    if (const char *env = std::getenv("GAAS_FAULT");
        env && *env && s.armed.empty()) {
        configureLocked(s, env);
    }
    env_checked.store(true, std::memory_order_release);
}

} // namespace

void
configure(std::string_view spec)
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.envRead = true; // an explicit spec overrides GAAS_FAULT
    env_checked.store(true, std::memory_order_release);
    configureLocked(s, spec);
}

void
reset()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.armed.clear();
    s.hits.clear();
    s.envRead = true;
    env_checked.store(true, std::memory_order_release);
    any_armed.store(false, std::memory_order_relaxed);
}

bool
enabled()
{
    State &s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    readEnvLocked(s);
    return !s.armed.empty();
}

bool
shouldFail(const char *point)
{
    // Golden path: nothing armed and GAAS_FAULT already consumed (or
    // never set) -- two relaxed loads, no lock, no counter.
    State &s = state();
    if (!any_armed.load(std::memory_order_relaxed)) {
        if (env_checked.load(std::memory_order_acquire))
            return false;
        std::lock_guard<std::mutex> lock(s.mutex);
        readEnvLocked(s);
        if (s.armed.empty())
            return false;
    }
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.armed.find(point);
    if (it == s.armed.end())
        return false;
    const std::uint64_t hit = ++s.hits[point];
    if (it->second.always)
        return true;
    for (const std::uint64_t n : it->second.at) {
        if (n == hit)
            return true;
    }
    return false;
}

} // namespace gaas::fault
