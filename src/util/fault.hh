/**
 * @file
 * Deterministic fault injection for robustness tests.
 *
 * Code on a fallible path declares a named injection point:
 *
 *     if (gaas::fault::shouldFail("file-write"))
 *         return false;   // behave exactly like the real failure
 *
 * Nothing fires unless an injection spec is armed, either
 * programmatically (fault::configure) or via the GAAS_FAULT
 * environment variable.  A spec is a comma-separated list of
 * `point:N` (fail exactly the Nth hit of that point, 1-based,
 * repeatable) or `point:*` (fail every hit).  Hits are counted
 * per point across the whole process, so "fail the 3rd stats
 * write" is reproducible run to run.
 *
 * With no spec armed, shouldFail() is a single relaxed atomic load
 * -- the golden path pays (and changes) nothing.
 *
 * Known injection points (grep for the literals):
 *   file-write   util::writeBytes -- one buffered write fails
 *   file-flush   util::flushAndSync -- flush/fsync fails
 *   trace-open   TraceFileReader/Writer open
 *   journal-write  RunJournal::append persistence
 *   sweep-job    runSweepJob -- the whole simulation job throws
 *   bench-kill   bench notePoint -- hard process exit (std::_Exit),
 *                simulating a mid-run kill for resume tests
 *   worker-kill  multi-process sweep dispatch (proc/executor) -- the
 *                worker the job is sent to raises SIGKILL mid-job.
 *                Counted on the *supervisor* side, one hit per job
 *                dispatch (requeues count again), so `worker-kill:N`
 *                deterministically kills the Nth dispatch no matter
 *                which worker process receives it.
 *   worker-hang  like worker-kill, but the worker stops heartbeating
 *                and sleeps forever -- the supervisor must detect
 *                the missed heartbeats, SIGKILL it and requeue.
 */

#ifndef GAAS_UTIL_FAULT_HH
#define GAAS_UTIL_FAULT_HH

#include <cstdint>
#include <string_view>

namespace gaas::fault
{

/**
 * Arm the injections described by @p spec (see file comment),
 * replacing any previous spec and zeroing all hit counters.  An
 * empty spec disarms everything.  Throws SimError(Config) on a
 * malformed spec.
 */
void configure(std::string_view spec);

/** Disarm all injections, zero counters, forget GAAS_FAULT. */
void reset();

/**
 * @return true when any injection is armed (after lazily reading
 * GAAS_FAULT on first use)
 */
bool enabled();

/**
 * Count one hit of @p point; @return true if an armed injection
 * says this hit must fail.  The caller then behaves exactly as if
 * the real failure happened.
 */
bool shouldFail(const char *point);

} // namespace gaas::fault

#endif // GAAS_UTIL_FAULT_HH
