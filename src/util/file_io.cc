#include "file_io.hh"

namespace gaas::util
{

namespace
{

int
seek64(std::FILE *file, std::int64_t offset, int whence)
{
#if defined(_WIN32)
    return ::_fseeki64(file, offset, whence);
#else
    // off_t is 64-bit on every modern POSIX libc (glibc/musl/BSD
    // default to 64-bit file offsets on LP64, and LP32 builds get it
    // via _FILE_OFFSET_BITS=64).
    static_assert(sizeof(off_t) >= 8,
                  "off_t must be 64-bit; compile with "
                  "_FILE_OFFSET_BITS=64");
    return ::fseeko(file, static_cast<off_t>(offset), whence);
#endif
}

std::int64_t
tell64(std::FILE *file)
{
#if defined(_WIN32)
    return ::_ftelli64(file);
#else
    return static_cast<std::int64_t>(::ftello(file));
#endif
}

} // namespace

bool
seekTo(std::FILE *file, std::uint64_t offset)
{
    return seek64(file, static_cast<std::int64_t>(offset),
                  SEEK_SET) == 0;
}

std::int64_t
tellPos(std::FILE *file)
{
    return tell64(file);
}

std::int64_t
fileSizeBytes(std::FILE *file)
{
    const std::int64_t here = tell64(file);
    if (here < 0)
        return -1;
    if (seek64(file, 0, SEEK_END) != 0)
        return -1;
    const std::int64_t size = tell64(file);
    // Restore the caller's position even if the end-seek told us
    // nothing useful.
    if (seek64(file, here, SEEK_SET) != 0)
        return -1;
    return size;
}

} // namespace gaas::util
