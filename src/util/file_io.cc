#include "file_io.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

#include "util/fault.hh"

namespace gaas::util
{

namespace
{

int
seek64(std::FILE *file, std::int64_t offset, int whence)
{
#if defined(_WIN32)
    return ::_fseeki64(file, offset, whence);
#else
    // off_t is 64-bit on every modern POSIX libc (glibc/musl/BSD
    // default to 64-bit file offsets on LP64, and LP32 builds get it
    // via _FILE_OFFSET_BITS=64).
    static_assert(sizeof(off_t) >= 8,
                  "off_t must be 64-bit; compile with "
                  "_FILE_OFFSET_BITS=64");
    return ::fseeko(file, static_cast<off_t>(offset), whence);
#endif
}

std::int64_t
tell64(std::FILE *file)
{
#if defined(_WIN32)
    return ::_ftelli64(file);
#else
    return static_cast<std::int64_t>(::ftello(file));
#endif
}

} // namespace

bool
seekTo(std::FILE *file, std::uint64_t offset)
{
    return seek64(file, static_cast<std::int64_t>(offset),
                  SEEK_SET) == 0;
}

std::int64_t
tellPos(std::FILE *file)
{
    return tell64(file);
}

std::int64_t
fileSizeBytes(std::FILE *file)
{
    const std::int64_t here = tell64(file);
    if (here < 0)
        return -1;
    if (seek64(file, 0, SEEK_END) != 0)
        return -1;
    const std::int64_t size = tell64(file);
    // Restore the caller's position even if the end-seek told us
    // nothing useful.
    if (seek64(file, here, SEEK_SET) != 0)
        return -1;
    return size;
}

bool
writeBytes(std::FILE *file, const void *data, std::size_t size)
{
    if (fault::shouldFail("file-write"))
        return false;
    return std::fwrite(data, 1, size, file) == size;
}

bool
flushAndSync(std::FILE *file)
{
    if (fault::shouldFail("file-flush"))
        return false;
    if (std::fflush(file) != 0)
        return false;
#if defined(_WIN32)
    return ::_commit(::_fileno(file)) == 0;
#else
    return ::fsync(::fileno(file)) == 0;
#endif
}

bool
writeFileAtomic(const std::string &path, std::string_view content,
                std::string *error)
{
    auto fail = [&](const char *step) {
        if (error) {
            *error = std::string(step) + " failed for " + path +
                     " (" + std::strerror(errno) + ")";
        }
        return false;
    };

    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return fail("open");
    const bool written =
        writeBytes(file, content.data(), content.size()) &&
        flushAndSync(file);
    const bool closed = std::fclose(file) == 0;
    if (!written || !closed) {
        std::remove(tmp.c_str());
        return fail(written ? "close" : "write");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return fail("rename");
    }
    return true;
}

bool
writeFileAtomicRetry(const std::string &path,
                     std::string_view content, std::string *error,
                     unsigned attempts)
{
    for (unsigned attempt = 1;; ++attempt) {
        if (writeFileAtomic(path, content, error))
            return true;
        if (attempt >= attempts)
            return false;
        // Bounded backoff: 1 ms, 2 ms, 3 ms...; a handful of
        // milliseconds total even at the attempt cap, so a sweep
        // point can never hang on a dead filesystem.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(attempt));
    }
}

} // namespace gaas::util
