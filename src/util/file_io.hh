/**
 * @file
 * Portable 64-bit file positioning and hardened file writes over
 * std::FILE.
 *
 * std::fseek/std::ftell take a `long` offset, which is 32 bits on
 * LP32 targets and on Windows (LLP64), so any stdio seek breaks past
 * 2 GiB there -- exactly the regime long trace files live in.  These
 * wrappers route to fseeko/ftello (POSIX, with 64-bit off_t) or
 * _fseeki64/_ftelli64 (Windows) so callers never touch `long`.
 *
 * The write-side helpers carry the robustness contract of the result
 * files: writeBytes/flushAndSync are the fallible primitives (with
 * `file-write` / `file-flush` fault-injection points, see
 * util/fault.hh), writeFileAtomic publishes a whole file via
 * temp-file + rename so a crash can never leave a torn result, and
 * writeFileAtomicRetry adds bounded-backoff retries for transient
 * failures.
 */

#ifndef GAAS_UTIL_FILE_IO_HH
#define GAAS_UTIL_FILE_IO_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace gaas::util
{

/** Seek to absolute byte @p offset; @return true on success. */
bool seekTo(std::FILE *file, std::uint64_t offset);

/** @return current byte position, or -1 on error. */
std::int64_t tellPos(std::FILE *file);

/**
 * @return total file size in bytes (by seeking to the end), or -1 on
 * error.  The current position is restored before returning.
 */
std::int64_t fileSizeBytes(std::FILE *file);

/**
 * Write @p size bytes from @p data to @p file.
 *
 * Fault-injection point `file-write`.  @return true on a complete
 * write.
 */
bool writeBytes(std::FILE *file, const void *data, std::size_t size);

/**
 * Flush stdio buffers and fsync the underlying descriptor, so the
 * bytes survive a process kill (journal records rely on this).
 *
 * Fault-injection point `file-flush`.  @return true on success.
 */
bool flushAndSync(std::FILE *file);

/**
 * Atomically publish @p content as @p path: write to `path.tmp`,
 * flush + fsync, then rename over @p path.  Readers never observe a
 * torn file -- they see the old content or the new, nothing between.
 * The temp file is removed on failure.
 *
 * @param error if non-null, receives a description of the first
 *        failing step
 * @return true on success
 */
bool writeFileAtomic(const std::string &path,
                     std::string_view content,
                     std::string *error = nullptr);

/**
 * writeFileAtomic with up to @p attempts tries, sleeping briefly
 * (1 ms, 2 ms, ... -- bounded) between them; transient failures
 * (a momentarily full or contended filesystem, an injected fault)
 * are retried, persistent ones give up loudly via @p error.
 */
bool writeFileAtomicRetry(const std::string &path,
                          std::string_view content,
                          std::string *error = nullptr,
                          unsigned attempts = 3);

} // namespace gaas::util

#endif // GAAS_UTIL_FILE_IO_HH
