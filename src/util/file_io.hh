/**
 * @file
 * Portable 64-bit file positioning over std::FILE.
 *
 * std::fseek/std::ftell take a `long` offset, which is 32 bits on
 * LP32 targets and on Windows (LLP64), so any stdio seek breaks past
 * 2 GiB there -- exactly the regime long trace files live in.  These
 * wrappers route to fseeko/ftello (POSIX, with 64-bit off_t) or
 * _fseeki64/_ftelli64 (Windows) so callers never touch `long`.
 */

#ifndef GAAS_UTIL_FILE_IO_HH
#define GAAS_UTIL_FILE_IO_HH

#include <cstdint>
#include <cstdio>

namespace gaas::util
{

/** Seek to absolute byte @p offset; @return true on success. */
bool seekTo(std::FILE *file, std::uint64_t offset);

/** @return current byte position, or -1 on error. */
std::int64_t tellPos(std::FILE *file);

/**
 * @return total file size in bytes (by seeking to the end), or -1 on
 * error.  The current position is restored before returning.
 */
std::int64_t fileSizeBytes(std::FILE *file);

} // namespace gaas::util

#endif // GAAS_UTIL_FILE_IO_HH
