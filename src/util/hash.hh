/**
 * @file
 * Streaming FNV-1a hashes, shared by the resume journal (64-bit job
 * keys) and the trace v3 format (32-bit block checksums, 64-bit
 * content digests).
 *
 * FNV-1a is not cryptographic; it is a fast, dependency-free
 * integrity check against torn writes and bit rot, with a stable
 * definition we can pin in golden tests.  Both widths use the
 * standard offset basis and prime.
 */

#ifndef GAAS_UTIL_HASH_HH
#define GAAS_UTIL_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gaas::util
{

/** 64-bit FNV-1a, the streaming flavour. */
class Fnv1a
{
  public:
    void
    feed(std::string_view text)
    {
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 0x100000001b3ull;
        }
    }

    void
    feedBytes(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash ^= bytes[i];
            hash *= 0x100000001b3ull;
        }
    }

    void
    feedNumber(std::uint64_t v)
    {
        feed(std::to_string(v));
        feed("|");
    }

    std::uint64_t value() const { return hash; }

    std::string
    hex() const
    {
        constexpr char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        for (int i = 0; i < 16; ++i)
            out[i] = digits[(hash >> (60 - 4 * i)) & 0xf];
        return out;
    }

  private:
    std::uint64_t hash = 0xcbf29ce484222325ull;
};

/** One-shot 32-bit FNV-1a over @p size bytes at @p data. */
inline std::uint32_t
fnv1a32(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t hash = 0x811c9dc5u;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x01000193u;
    }
    return hash;
}

} // namespace gaas::util

#endif // GAAS_UTIL_HASH_HH
