#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace gaas
{

namespace
{

std::atomic<bool> quiet_flag{false};

} // namespace

void
setLogQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ':' << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << "\n  at " << file << ':' << line;
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    if (!logQuiet())
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!logQuiet())
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace gaas
