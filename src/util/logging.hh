/**
 * @file
 * Error-reporting helpers in the gem5 idiom.
 *
 * panic()  -- an internal invariant was violated (a bug in this
 *             library); aborts so a debugger or core dump can catch it.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments); exits cleanly.
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- status messages with no connotation of a problem.
 */

#ifndef GAAS_UTIL_LOGGING_HH
#define GAAS_UTIL_LOGGING_HH

#include <sstream>
#include <string>
#include <string_view>

namespace gaas
{

namespace detail
{

/** Append the tail of a message built from stream-formattable parts. */
template <typename... Args>
std::string
formatParts(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Quiet all warn()/inform() output (used by tests and benches). */
void setLogQuiet(bool quiet);

/** @return true if warn()/inform() output is suppressed. */
bool logQuiet();

#define gaas_panic(...)                                                  \
    ::gaas::detail::panicImpl(__FILE__, __LINE__,                        \
                              ::gaas::detail::formatParts(__VA_ARGS__))

#define gaas_fatal(...)                                                  \
    ::gaas::detail::fatalImpl(__FILE__, __LINE__,                        \
                              ::gaas::detail::formatParts(__VA_ARGS__))

/** Report a recoverable anomaly to stderr (suppressed when quiet). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatParts(std::forward<Args>(args)...));
}

/** Report simulation status to stderr (suppressed when quiet). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::formatParts(std::forward<Args>(args)...));
}

/**
 * Exception carrying a fatal configuration error.
 *
 * fatal() throws this (rather than calling std::exit) so that library
 * users and the test suite can observe and recover from bad
 * configurations; the bench/example binaries let it propagate to
 * main() where it terminates the process with an error message.
 */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string msg) : message(std::move(msg)) {}

    const char *
    what() const noexcept override
    {
        return message.c_str();
    }

  private:
    std::string message;
};

} // namespace gaas

#endif // GAAS_UTIL_LOGGING_HH
