#include "random.hh"

#include "logging.hh"

namespace gaas
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitmix64(s);
    // xoshiro must not be seeded with the all-zero state.
    if (state[0] == 0 && state[1] == 0 && state[2] == 0 && state[3] == 0)
        state[0] = 1;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    if (bound == 0)
        gaas_panic("Rng::nextBounded called with bound 0");
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next64();
    unsigned __int128 m =
        static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next64();
            m = static_cast<unsigned __int128>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // P(X = k) = (1-p)^(k-1) p with p = 1/mean; inverse transform.
    const double p = 1.0 / mean;
    double u = nextDouble();
    // Guard against log(0).
    if (u >= 1.0)
        u = 0x1.fffffffffffffp-1;
    double k = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    if (k < 1.0)
        k = 1.0;
    // Clamp to a sane upper bound so pathological draws cannot wedge
    // a trace generator loop.
    if (k > 1e12)
        k = 1e12;
    return static_cast<std::uint64_t>(k);
}

std::uint64_t
Rng::nextParetoIndex(double alpha, std::uint64_t bound)
{
    if (bound == 0)
        gaas_panic("Rng::nextParetoIndex called with bound 0");
    if (bound == 1)
        return 0;
    if (alpha <= 0.0)
        return nextBounded(bound);
    // Inverse-transform a truncated Pareto over [1, bound + 1):
    //   x = (1 - u (1 - B^-alpha))^(-1/alpha), index = floor(x) - 1.
    const double b = static_cast<double>(bound);
    const double tail = std::pow(b, -alpha);
    double u = nextDouble();
    double x = std::pow(1.0 - u * (1.0 - tail), -1.0 / alpha);
    auto idx = static_cast<std::uint64_t>(x) - 1;
    if (idx >= bound)
        idx = bound - 1;
    return idx;
}

std::uint64_t
ParetoSampler::draw(Rng &rng) const
{
    // Mirrors Rng::nextParetoIndex case for case; the cached tail
    // and negInvAlpha replace the per-draw std::pow / division.
    if (bound == 0)
        gaas_panic("ParetoSampler::draw with bound 0");
    if (bound == 1)
        return 0;
    if (alpha <= 0.0)
        return rng.nextBounded(bound);
    double u = rng.nextDouble();
    double x = std::pow(1.0 - u * (1.0 - tail), negInvAlpha);
    auto idx = static_cast<std::uint64_t>(x) - 1;
    if (idx >= bound)
        idx = bound - 1;
    return idx;
}

unsigned
Rng::pickCumulative(std::span<const double> cumulative)
{
    const double u = nextDouble();
    for (unsigned i = 0; i < cumulative.size(); ++i) {
        if (u < cumulative[i])
            return i;
    }
    return static_cast<unsigned>(cumulative.size()) - 1;
}

} // namespace gaas
