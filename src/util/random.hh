/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload generator.
 *
 * Reproducibility is a hard requirement: every figure in
 * EXPERIMENTS.md must regenerate bit-identically from a fixed seed, so
 * the generator is a self-contained xoshiro256** implementation (we do
 * not rely on std::mt19937 distribution objects, whose outputs are not
 * pinned down by the standard).
 */

#ifndef GAAS_UTIL_RANDOM_HH
#define GAAS_UTIL_RANDOM_HH

#include <array>
#include <cmath>
#include <cstdint>
#include <span>

namespace gaas
{

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Passes BigCrush; period 2^256 - 1; each instance is seeded from a
 * single 64-bit value so benchmark specs can carry one seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit draw. */
    std::uint64_t
    next64()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;

        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);

        return result;
    }

    /** @return a uniform draw in [0, bound); bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        nextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** @return a uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool
    nextBernoulli(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Geometric draw with mean @p mean (support {1, 2, ...}).
     *
     * Used for basic-block lengths and loop trip counts, which the
     * code model treats as geometrically distributed around the
     * per-benchmark average.
     */
    std::uint64_t nextGeometric(double mean);

    /**
     * Bounded Pareto-tail draw over [0, bound): returns an index whose
     * probability decays as a power law with shape @p alpha.
     *
     * This is the workhorse of the data-reference model: drawing a
     * "line popularity rank" from a heavy-tailed distribution gives
     * address streams whose miss ratio keeps improving with cache size
     * over several orders of magnitude -- the behaviour Table 2 of the
     * paper shows for the L2 sweep.  Smaller alpha = heavier tail =
     * a larger working set.
     */
    std::uint64_t nextParetoIndex(double alpha, std::uint64_t bound);

    /**
     * Pick an index from a small table of cumulative weights
     * (cumulative[i] is the inclusive upper edge of class i, with
     * cumulative.back() == 1.0).
     */
    unsigned pickCumulative(std::span<const double> cumulative);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state;
};

/**
 * Integer threshold t such that, for k = next64() >> 11,
 * (k < t) == (nextDouble() < p) for every possible draw.
 *
 * nextDouble() returns k * 2^-53 with k < 2^53, both exact, so
 * u < p iff k < p * 2^53 (as reals).  p * 2^53 is an exact double
 * (power-of-two scaling), and comparing the integer k against its
 * ceiling is equivalent whether or not it is itself an integer.
 * Lets a hot loop replace a bernoulli draw's int-to-double
 * conversion and double compare with one integer compare while
 * consuming identical PRNG state.
 */
inline std::uint64_t
bernoulliThreshold(double p)
{
    if (p <= 0.0)
        return 0;
    const double scaled = p * 0x1.0p53;
    if (scaled >= 0x1.0p53)
        return 1ull << 53; // always true: every k is below 2^53
    return static_cast<std::uint64_t>(std::ceil(scaled));
}

/**
 * Precomputed bounded-Pareto sampler over [0, bound).
 *
 * Rng::nextParetoIndex recomputes the bound^-alpha tail term (a
 * std::pow) and the -1/alpha exponent on every draw even though both
 * depend only on the distribution, not the draw.  The synthetic data
 * model draws from a handful of fixed (alpha, bound) pairs millions
 * of times per simulation, so hoisting them is one of the largest
 * single wins in the trace-generation hot path.  draw() is
 * bit-identical to nextParetoIndex(alpha, bound) for the same Rng
 * state: the cached terms are computed by the same expressions.
 */
class ParetoSampler
{
  public:
    ParetoSampler() = default;

    ParetoSampler(double alpha_, std::uint64_t bound_)
        : alpha(alpha_), bound(bound_)
    {
        if (alpha > 0.0 && bound > 1) {
            tail = std::pow(static_cast<double>(bound), -alpha);
            negInvAlpha = -1.0 / alpha;
        }
    }

    /** One draw; consumes exactly the PRNG state
     *  nextParetoIndex(alpha, bound) would. */
    std::uint64_t draw(Rng &rng) const;

  private:
    double alpha = 0.0;
    std::uint64_t bound = 0;
    double tail = 0.0;
    double negInvAlpha = 0.0;
};

/**
 * Precomputed geometric sampler with a fixed mean (support {1, 2,
 * ...}).  Caches the log1p(-1/mean) denominator that
 * Rng::nextGeometric recomputes per draw; draw() is bit-identical to
 * nextGeometric(mean) for the same Rng state.
 */
class GeometricSampler
{
  public:
    GeometricSampler() = default;

    explicit GeometricSampler(double mean_) : mean(mean_)
    {
        if (mean > 1.0)
            denom = std::log1p(-(1.0 / mean));
    }

    /** One draw; consumes exactly the PRNG state
     *  nextGeometric(mean) would. */
    std::uint64_t
    draw(Rng &rng) const
    {
        if (mean <= 1.0)
            return 1;
        double u = rng.nextDouble();
        if (u >= 1.0)
            u = 0x1.fffffffffffffp-1;
        double k = std::floor(std::log1p(-u) / denom) + 1.0;
        if (k < 1.0)
            k = 1.0;
        if (k > 1e12)
            k = 1e12;
        return static_cast<std::uint64_t>(k);
    }

  private:
    double mean = 0.0;
    double denom = -1.0;
};

/**
 * Bresenham-style accumulator that converts a fractional per-event
 * cost into a deterministic integer sequence.
 *
 * The CPU-stall component of CPI (loads, branch delays, multi-cycle
 * FP ops) averages 0.238 cycles per instruction in the paper's base
 * machine.  Instead of accumulating a float (whose rounding would make
 * cycle counts depend on summation order) each instruction charges
 * either floor(rate) or floor(rate)+1 cycles such that the long-run
 * average is exactly @p rate.
 */
class FractionAccumulator
{
  public:
    /** @param rate average cycles per event; must be >= 0. */
    explicit FractionAccumulator(double rate = 0.0) { setRate(rate); }

    /** Change the per-event rate (resets the residue). */
    void
    setRate(double rate)
    {
        whole = static_cast<std::uint64_t>(rate);
        // Fixed-point residue in units of 2^-32.
        frac = static_cast<std::uint64_t>(
            (rate - static_cast<double>(whole)) * 4294967296.0);
        residue = 0;
    }

    /** Charge one event; @return the integer cycles for this event. */
    std::uint64_t
    tick()
    {
        residue += frac;
        std::uint64_t carry = residue >> 32;
        residue &= 0xffffffffull;
        return whole + carry;
    }

    /** Reset the fractional residue (e.g. at a measurement boundary). */
    void
    reset()
    {
        residue = 0;
    }

  private:
    std::uint64_t whole = 0;
    std::uint64_t frac = 0;     //!< fractional part, Q32
    std::uint64_t residue = 0;  //!< running residue, Q32
};

} // namespace gaas

#endif // GAAS_UTIL_RANDOM_HH
