/**
 * @file
 * Deterministic pseudo-random number generation for the synthetic
 * workload generator.
 *
 * Reproducibility is a hard requirement: every figure in
 * EXPERIMENTS.md must regenerate bit-identically from a fixed seed, so
 * the generator is a self-contained xoshiro256** implementation (we do
 * not rely on std::mt19937 distribution objects, whose outputs are not
 * pinned down by the standard).
 */

#ifndef GAAS_UTIL_RANDOM_HH
#define GAAS_UTIL_RANDOM_HH

#include <array>
#include <cmath>
#include <cstdint>
#include <span>

namespace gaas
{

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Passes BigCrush; period 2^256 - 1; each instance is seeded from a
 * single 64-bit value so benchmark specs can carry one seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit draw. */
    std::uint64_t next64();

    /** @return a uniform draw in [0, bound); bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        nextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** @return a uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool
    nextBernoulli(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Geometric draw with mean @p mean (support {1, 2, ...}).
     *
     * Used for basic-block lengths and loop trip counts, which the
     * code model treats as geometrically distributed around the
     * per-benchmark average.
     */
    std::uint64_t nextGeometric(double mean);

    /**
     * Bounded Pareto-tail draw over [0, bound): returns an index whose
     * probability decays as a power law with shape @p alpha.
     *
     * This is the workhorse of the data-reference model: drawing a
     * "line popularity rank" from a heavy-tailed distribution gives
     * address streams whose miss ratio keeps improving with cache size
     * over several orders of magnitude -- the behaviour Table 2 of the
     * paper shows for the L2 sweep.  Smaller alpha = heavier tail =
     * a larger working set.
     */
    std::uint64_t nextParetoIndex(double alpha, std::uint64_t bound);

    /**
     * Pick an index from a small table of cumulative weights
     * (cumulative[i] is the inclusive upper edge of class i, with
     * cumulative.back() == 1.0).
     */
    unsigned pickCumulative(std::span<const double> cumulative);

  private:
    std::array<std::uint64_t, 4> state;
};

/**
 * Bresenham-style accumulator that converts a fractional per-event
 * cost into a deterministic integer sequence.
 *
 * The CPU-stall component of CPI (loads, branch delays, multi-cycle
 * FP ops) averages 0.238 cycles per instruction in the paper's base
 * machine.  Instead of accumulating a float (whose rounding would make
 * cycle counts depend on summation order) each instruction charges
 * either floor(rate) or floor(rate)+1 cycles such that the long-run
 * average is exactly @p rate.
 */
class FractionAccumulator
{
  public:
    /** @param rate average cycles per event; must be >= 0. */
    explicit FractionAccumulator(double rate = 0.0) { setRate(rate); }

    /** Change the per-event rate (resets the residue). */
    void
    setRate(double rate)
    {
        whole = static_cast<std::uint64_t>(rate);
        // Fixed-point residue in units of 2^-32.
        frac = static_cast<std::uint64_t>(
            (rate - static_cast<double>(whole)) * 4294967296.0);
        residue = 0;
    }

    /** Charge one event; @return the integer cycles for this event. */
    std::uint64_t
    tick()
    {
        residue += frac;
        std::uint64_t carry = residue >> 32;
        residue &= 0xffffffffull;
        return whole + carry;
    }

    /** Reset the fractional residue (e.g. at a measurement boundary). */
    void
    reset()
    {
        residue = 0;
    }

  private:
    std::uint64_t whole = 0;
    std::uint64_t frac = 0;     //!< fractional part, Q32
    std::uint64_t residue = 0;  //!< running residue, Q32
};

} // namespace gaas

#endif // GAAS_UTIL_RANDOM_HH
