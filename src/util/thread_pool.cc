#include "thread_pool.hh"

namespace gaas
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    available.notify_all();
    for (auto &thread : threads)
        thread.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            available.wait(lock,
                           [this] { return stopping || !tasks.empty(); });
            if (tasks.empty())
                return; // stopping, queue drained
            task = std::move(tasks.front());
            tasks.pop_front();
        }
        task();
    }
}

} // namespace gaas
