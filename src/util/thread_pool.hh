/**
 * @file
 * A fixed-size worker thread pool with futures-based job submission.
 *
 * The design-space sweeps of the paper's evaluation are embarrassingly
 * parallel -- every (configuration, workload) point is an independent
 * simulation -- so the sweep engine (core/sweep.hh) only needs the
 * simplest possible pool: submit() hands a callable to one of N
 * workers and returns a std::future for its result.  Tasks run in
 * submission order (single FIFO queue) but complete in any order;
 * callers that need ordered results keep the futures in submission
 * order and wait on each in turn.
 *
 * Exception safety: a throwing task can never kill a worker or wedge
 * the pool.  Each task runs inside a std::packaged_task, which
 * captures any exception into the task's future (rethrown from
 * future::get() on the caller's thread); the worker loop itself
 * never sees it.  The destructor still drains every queued task --
 * including ones queued behind a thrower -- before joining, so no
 * future is ever abandoned (a dropped packaged_task would surface as
 * std::future_error(broken_promise) at get()).  test_thread_pool.cc
 * pins both properties under TSan.
 */

#ifndef GAAS_UTIL_THREAD_POOL_HH
#define GAAS_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gaas
{

/** The fixed worker pool; see file comment. */
class ThreadPool
{
  public:
    /**
     * Start @p workers threads.
     *
     * @param workers pool size; 0 means hardware_concurrency
     *        (with a floor of 1 if that reports 0)
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins the workers after the queued tasks have drained. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned
    workerCount() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /**
     * Queue @p fn for execution on a worker.
     *
     * @return a future for fn's return value; an exception thrown by
     *         fn is captured and rethrown from future::get()
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        // packaged_task is move-only but std::function requires a
        // copyable callable, hence the shared_ptr wrapper.
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex);
            tasks.emplace_back([task] { (*task)(); });
        }
        available.notify_one();
        return result;
    }

  private:
    void workerLoop();

    std::vector<std::thread> threads;
    std::deque<std::function<void()>> tasks;
    std::mutex mutex;
    std::condition_variable available;
    bool stopping = false;
};

} // namespace gaas

#endif // GAAS_UTIL_THREAD_POOL_HH
