/**
 * @file
 * Fundamental scalar types and machine constants for the GaAs
 * microprocessor cache study.
 *
 * The paper (Olukotun, Mudge & Brown, ISCA 1991) quotes all capacities
 * in 32-bit *words* (e.g. "4KW (16KB)"); this header provides the
 * conversion helpers so the rest of the code can mirror the paper's
 * units while operating on byte addresses internally.
 */

#ifndef GAAS_UTIL_TYPES_HH
#define GAAS_UTIL_TYPES_HH

#include <cstdint>

namespace gaas
{

/** A byte address. Virtual addresses carry an 8-bit PID prefix in the
 *  bits above kVaddrBits (see mmu/AddressSpace). */
using Addr = std::uint64_t;

/** A count of CPU clock cycles (the machine runs at 250 MHz, so one
 *  cycle is 4 ns; the simulator never needs wall-clock time). */
using Cycles = std::uint64_t;

/** A count of instructions, references, or other events. */
using Count = std::uint64_t;

/** Process identifier. The architecture prefixes virtual addresses
 *  with an 8-bit PID so caches and TLBs need not be flushed on a
 *  context switch (Section 3 of the paper). */
using Pid = std::uint8_t;

/** Bytes per 32-bit machine word. */
inline constexpr unsigned kWordBytes = 4;

/** log2(kWordBytes), for shifting between word and byte addresses. */
inline constexpr unsigned kWordShift = 2;

/** The target machine's page size: 4 K words = 16 KB (Section 2). */
inline constexpr unsigned kPageWords = 4 * 1024;

/** Page size in bytes. */
inline constexpr unsigned kPageBytes = kPageWords * kWordBytes;

/** Number of virtual-address bits below the PID prefix. */
inline constexpr unsigned kVaddrBits = 32;

/** Number of PID bits prefixed to virtual addresses (Section 2). */
inline constexpr unsigned kPidBits = 8;

/** Convert a capacity in words to bytes. */
constexpr std::uint64_t
wordsToBytes(std::uint64_t words)
{
    return words * kWordBytes;
}

/** Convert a capacity in bytes to words (truncating). */
constexpr std::uint64_t
bytesToWords(std::uint64_t bytes)
{
    return bytes / kWordBytes;
}

/** Shorthand for capacities quoted in kilowords, e.g. kw(4) == 4KW. */
constexpr std::uint64_t
kw(std::uint64_t kilo_words)
{
    return kilo_words * 1024;
}

} // namespace gaas

#endif // GAAS_UTIL_TYPES_HH
