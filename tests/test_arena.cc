/**
 * @file
 * Tests for the shared trace arena: packed replay is bit-identical
 * to running the generators fresh (per stream and end-to-end across
 * mp levels), concurrent first-touch growth is safe (exercised under
 * TSan), the high-water mark makes second jobs generation-free, and
 * GAAS_BENCH_ARENA=0 restores the per-job generator path.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/stats_dump.hh"
#include "core/sweep.hh"
#include "core/workload.hh"
#include "synth/benchmark.hh"
#include "synth/suite.hh"
#include "trace/arena.hh"
#include "trace/compose.hh"
#include "trace/source.hh"

namespace gaas::trace
{
namespace
{

/** RAII GAAS_BENCH_ARENA override (restores "unset" on exit). */
class ArenaEnv
{
  public:
    explicit ArenaEnv(const char *value)
    {
        if (value)
            ::setenv("GAAS_BENCH_ARENA", value, 1);
        else
            ::unsetenv("GAAS_BENCH_ARENA");
    }
    ~ArenaEnv() { ::unsetenv("GAAS_BENCH_ARENA"); }
};

/** A small suite benchmark with a test-sized pass. */
synth::BenchmarkSpec
smallSpec(std::uint64_t sim_instructions = 50'000)
{
    synth::BenchmarkSpec spec = synth::workloadSpecs(1).front();
    spec.simInstructions = sim_instructions;
    return spec;
}

std::vector<MemRef>
drain(TraceSource &src)
{
    std::vector<MemRef> out;
    MemRef buf[257];
    std::size_t got;
    while ((got = src.nextBatch(buf, 257)) > 0)
        out.insert(out.end(), buf, buf + got);
    return out;
}

std::string
statsText(const core::SimResult &result)
{
    std::ostringstream os;
    core::dumpStats(result, os);
    return os.str();
}

TEST(ArenaStream, ReplayMatchesGeneratorBitExactly)
{
    const synth::BenchmarkSpec spec = smallSpec();
    auto fresh = synth::makeBenchmark(spec);
    const std::vector<MemRef> expected = drain(*fresh);
    ASSERT_FALSE(expected.empty());

    TraceArena arena;
    ArenaStream *stream = arena.acquire(
        "test-stream", 2 * spec.simInstructions, /*ref_hint=*/0,
        [spec] { return synth::makeBenchmark(spec); });
    ArenaSource view(stream, "view");
    EXPECT_EQ(drain(view), expected);
    EXPECT_EQ(stream->passRefs(), expected.size());

    // reset() replays the pass identically (zero regeneration: the
    // second drain starts with everything already published).
    view.reset();
    EXPECT_EQ(drain(view), expected);
}

TEST(ArenaStream, PacksEveryFlagCombination)
{
    // syscall Inst and partial-word Store exercise the shared flag
    // bit of the packed layout; a pass bound equal to the record
    // count also exercises the bound-exact completion probe.
    const std::vector<MemRef> records = {
        instRef(0x0040'0000),
        instRef(0x0040'0004, /*syscall=*/true),
        loadRef(0x1000'0000),
        storeRef(0x7ffe'ff00),
        storeRef(0x7ffe'ff04, /*partial_word=*/true),
        instRef(0x7fff'fffc),
    };
    TraceArena arena;
    ArenaStream *stream = arena.acquire(
        "flags", records.size(), records.size(), [&records] {
            return std::make_unique<VectorSource>("flags", records);
        });
    ArenaSource view(stream, "view");
    EXPECT_EQ(drain(view), records);
    EXPECT_EQ(stream->passRefs(), records.size());
    EXPECT_GT(stream->bytes(), 0u);
}

TEST(ArenaSource, SkipMatchesDiscardedReadsOnColdAndWarmStream)
{
    // skip() on a cold stream triggers generation up to the target
    // (interval seeking must not change what is generated); on a
    // warm stream it is pure pointer arithmetic.  Either way the
    // tail after a skip must equal the tail after that many reads.
    const synth::BenchmarkSpec spec = smallSpec(20'000);
    auto fresh = synth::makeBenchmark(spec);
    const std::vector<MemRef> expected = drain(*fresh);
    ASSERT_GT(expected.size(), 1000u);

    TraceArena arena;
    ArenaStream *stream = arena.acquire(
        "skip", 2 * spec.simInstructions, 0,
        [spec] { return synth::makeBenchmark(spec); });

    for (std::size_t skip : {std::size_t{0}, std::size_t{997},
                             expected.size() - 1}) {
        ArenaSource view(stream, "view");
        ASSERT_EQ(view.skip(skip), skip);
        MemRef ref;
        ASSERT_TRUE(view.next(ref)) << "skip " << skip;
        EXPECT_EQ(ref, expected[skip]) << "skip " << skip;
    }
}

TEST(ArenaSource, SkipClampsAtPassEnd)
{
    const synth::BenchmarkSpec spec = smallSpec(10'000);
    auto fresh = synth::makeBenchmark(spec);
    const std::size_t passLen = drain(*fresh).size();

    TraceArena arena;
    ArenaStream *stream = arena.acquire(
        "skip-end", 2 * spec.simInstructions, 0,
        [spec] { return synth::makeBenchmark(spec); });

    // A skip past the pass end consumes only what exists ...
    ArenaSource view(stream, "view");
    EXPECT_EQ(view.skip(passLen + 12345), passLen);
    MemRef ref;
    EXPECT_FALSE(view.next(ref));

    // ... which is exactly what LoopSource needs to learn the pass
    // length and wrap: a looped view lands at (position + n) mod
    // pass length, however large the skip.
    LoopSource looped(
        std::make_unique<ArenaSource>(stream, "looped"));
    const std::size_t skip = 3 * passLen + 17;
    EXPECT_EQ(looped.skip(skip), skip);
    ArenaSource probe(stream, "probe");
    ASSERT_EQ(probe.skip(17u), 17u);
    MemRef fromLoop, fromProbe;
    ASSERT_TRUE(looped.next(fromLoop));
    ASSERT_TRUE(probe.next(fromProbe));
    EXPECT_EQ(fromLoop, fromProbe);
}

TEST(ArenaStream, ConcurrentFirstTouchGrowth)
{
    // Several readers race to grow one cold stream with mutually
    // prime batch sizes; every one must observe the full generator
    // pass.  Run under TSan this is the publication-ordering proof.
    const synth::BenchmarkSpec spec = smallSpec(30'000);
    auto fresh = synth::makeBenchmark(spec);
    const std::vector<MemRef> expected = drain(*fresh);

    TraceArena arena;
    ArenaStream *stream = arena.acquire(
        "race", 2 * spec.simInstructions, 0,
        [spec] { return synth::makeBenchmark(spec); });

    constexpr std::size_t kReaders = 4;
    const std::size_t batch[kReaders] = {61, 127, 509, 1021};
    std::vector<std::vector<MemRef>> seen(kReaders);
    std::vector<std::thread> readers;
    for (std::size_t r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
            ArenaSource view(stream, "view");
            std::vector<MemRef> buf(batch[r]);
            std::size_t got;
            while ((got = view.nextBatch(buf.data(), batch[r])) > 0)
                seen[r].insert(seen[r].end(), buf.begin(),
                               buf.begin() + got);
        });
    }
    for (auto &t : readers)
        t.join();
    for (std::size_t r = 0; r < kReaders; ++r)
        EXPECT_EQ(seen[r], expected) << "reader " << r;
}

TEST(ArenaStream, HighWaterMarkMakesSecondReaderFree)
{
    const synth::BenchmarkSpec spec = smallSpec(20'000);
    TraceArena arena;
    const auto factory = [spec] { return synth::makeBenchmark(spec); };

    TraceArena::resetThreadTally();
    ArenaStream *stream =
        arena.acquire("hwm", 2 * spec.simInstructions, 0, factory);
    ArenaSource first(stream, "first");
    const std::vector<MemRef> pass = drain(first);
    ArenaTally tally = TraceArena::threadTally();
    EXPECT_EQ(tally.streamsGenerated, 1u);
    EXPECT_EQ(tally.streamsReused, 0u);
    EXPECT_EQ(tally.refsGenerated, pass.size());

    // The second acquisition replays the published pass: a cache hit
    // and not one reference of new generation.
    TraceArena::resetThreadTally();
    ArenaStream *again =
        arena.acquire("hwm", 2 * spec.simInstructions, 0, factory);
    EXPECT_EQ(again, stream);
    ArenaSource second(again, "second");
    EXPECT_EQ(drain(second).size(), pass.size());
    tally = TraceArena::threadTally();
    EXPECT_EQ(tally.streamsGenerated, 0u);
    EXPECT_EQ(tally.streamsReused, 1u);
    EXPECT_EQ(tally.refsGenerated, 0u);
    EXPECT_EQ(tally.genSeconds, 0.0);
}

TEST(TraceArena, EnvKnobParsing)
{
    {
        ArenaEnv off("0");
        EXPECT_FALSE(TraceArena::enabledByEnv());
    }
    {
        ArenaEnv on("1");
        EXPECT_TRUE(TraceArena::enabledByEnv());
    }
    {
        ArenaEnv unset(nullptr);
        EXPECT_TRUE(TraceArena::enabledByEnv());
    }
}

TEST(ArenaEndToEnd, SimResultsMatchFreshGeneratorsAcrossMpLevels)
{
    // The acceptance property in miniature: identical stats dumps
    // (every counter, byte for byte) with the arena on and off.
    const core::SystemConfig config = core::baseline();
    for (const unsigned mp : {1u, 2u, 4u}) {
        std::string fresh, arena;
        {
            ArenaEnv off("0");
            fresh = statsText(
                core::runStandard(config, 20'000, mp, 5'000));
        }
        {
            ArenaEnv on(nullptr);
            arena = statsText(
                core::runStandard(config, 20'000, mp, 5'000));
        }
        EXPECT_EQ(fresh, arena) << "mp level " << mp;
    }
}

TEST(ArenaEndToEnd, SweepJobTelemetryShowsReuse)
{
    // Two identical jobs, serially: the first pays all generation,
    // the second reuses every stream and generates nothing.
    ArenaEnv on(nullptr);
    core::SweepJob job;
    job.config = core::baseline();
    job.mpLevel = 3;
    job.instructions = 15'000;
    job.warmup = 5'000;

    core::SweepStats stats;
    const auto outcomes =
        core::runSweepOutcomes({job, job}, 1, &stats);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(statsText(outcomes[0].result),
              statsText(outcomes[1].result));

    ASSERT_EQ(stats.perJob.size(), 2u);
    EXPECT_EQ(stats.perJob[0].arenaStreamsReused, 0u);
    EXPECT_EQ(stats.perJob[0].arenaStreamsGenerated, 3u);
    EXPECT_GT(stats.perJob[0].arenaRefsGenerated, 0u);
    EXPECT_EQ(stats.perJob[1].arenaStreamsGenerated, 0u);
    EXPECT_EQ(stats.perJob[1].arenaStreamsReused, 3u);
    EXPECT_EQ(stats.perJob[1].arenaRefsGenerated, 0u);

    EXPECT_EQ(stats.arenaStreamsGenerated, 3u);
    EXPECT_EQ(stats.arenaStreamsReused, 3u);
    EXPECT_GT(stats.arenaBytes, 0u);
}

TEST(ArenaEndToEnd, OptOutBypassesArena)
{
    ArenaEnv off("0");
    core::SweepJob job;
    job.config = core::baseline();
    job.mpLevel = 2;
    job.instructions = 10'000;
    job.warmup = 2'000;

    const std::size_t streamsBefore =
        TraceArena::global().streamCount();
    core::SweepStats stats;
    const auto outcomes = core::runSweepOutcomes({job}, 1, &stats);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, core::PointStatus::Ok);
    EXPECT_EQ(stats.perJob[0].arenaStreamsGenerated, 0u);
    EXPECT_EQ(stats.perJob[0].arenaStreamsReused, 0u);
    EXPECT_EQ(stats.perJob[0].arenaRefsGenerated, 0u);
    EXPECT_EQ(TraceArena::global().streamCount(), streamsBefore);
}

} // namespace
} // namespace gaas::trace
