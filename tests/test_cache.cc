/**
 * @file
 * Unit tests for the cache substrate: CacheConfig validation and
 * TagStore lookup/replacement/state behaviour, including
 * parameterized sweeps over geometries.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/config.hh"
#include "cache/tag_store.hh"
#include "util/logging.hh"

namespace gaas::cache
{
namespace
{

TEST(CacheConfig, BaselineGeometry)
{
    const CacheConfig l1{4 * 1024, 1, 4, 4};
    l1.validate("L1");
    EXPECT_EQ(l1.lines(), 1024u);
    EXPECT_EQ(l1.sets(), 1024u);
    EXPECT_EQ(l1.lineBytes(), 16u);
    EXPECT_EQ(l1.sizeBytes(), 16u * 1024);
}

TEST(CacheConfig, DescribeFormatsUnits)
{
    EXPECT_EQ(directMapped(4 * 1024).describe(),
              "4KW 1-way 4W lines");
    EXPECT_EQ(setAssoc(256 * 1024, 2, 32).describe(),
              "256KW 2-way 32W lines");
    EXPECT_EQ(directMapped(512).describe(), "512W 1-way 4W lines");
}

TEST(CacheConfig, RejectsBadGeometry)
{
    CacheConfig bad = directMapped(4 * 1024);
    bad.sizeWords = 3000; // not a power of two
    EXPECT_THROW(bad.validate("x"), FatalError);

    bad = directMapped(4 * 1024);
    bad.lineWords = 3;
    EXPECT_THROW(bad.validate("x"), FatalError);

    bad = directMapped(4 * 1024);
    bad.fetchWords = 8; // fetch != line
    EXPECT_THROW(bad.validate("x"), FatalError);

    bad = directMapped(4 * 1024);
    bad.assoc = 0;
    EXPECT_THROW(bad.validate("x"), FatalError);

    bad = directMapped(4 * 1024, 4);
    bad.lineWords = 64; // beyond the 32W subblock mask
    bad.fetchWords = 64;
    EXPECT_THROW(bad.validate("x"), FatalError);

    // Size smaller than one set.
    bad = CacheConfig{16, 8, 4, 4};
    EXPECT_THROW(bad.validate("x"), FatalError);
}

TEST(TagStore, AddressDissection)
{
    TagStore store(directMapped(4 * 1024), "test");
    // 4KW direct mapped, 4W (16B) lines -> 1024 sets, 4-bit offset.
    EXPECT_EQ(store.lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(store.setIndex(0x0), 0u);
    EXPECT_EQ(store.setIndex(0x10), 1u);
    EXPECT_EQ(store.setIndex(16 * 1024), 0u); // wraps at cache size
    EXPECT_EQ(store.tagOf(16 * 1024), 1u);
    EXPECT_EQ(store.wordInLine(0x0), 0u);
    EXPECT_EQ(store.wordInLine(0x4), 1u);
    EXPECT_EQ(store.wordInLine(0xc), 3u);
    EXPECT_EQ(store.wordBit(0xc), 0x8u);
    EXPECT_EQ(store.fullMask(), 0xfu);
}

TEST(TagStore, MissThenHit)
{
    TagStore store(directMapped(4 * 1024), "test");
    EXPECT_FALSE(store.find(0x1000));
    Eviction ev;
    TagStore::Ref line = store.allocate(0x1000, ev);
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(line.valid());
    EXPECT_FALSE(line.dirty());
    EXPECT_FALSE(line.writeOnly());
    EXPECT_EQ(line.validMask(), store.fullMask());
    // Any word of the line hits.
    EXPECT_EQ(store.find(0x1000), line);
    EXPECT_EQ(store.find(0x100c), line);
    // The next line does not.
    EXPECT_FALSE(store.find(0x1010));
}

TEST(TagStore, EvictionReportsAddressAndDirty)
{
    TagStore store(directMapped(4 * 1024), "test");
    Eviction ev;
    store.allocate(0x1000, ev).setDirty(true);

    // Same set, different tag: 16KB away.
    store.allocate(0x1000 + 16 * 1024, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.lineAddr, 0x1000u);
}

TEST(TagStore, LruVictimSelection)
{
    TagStore store(setAssoc(32, 2, 4), "test");
    // 4 sets x 2 ways; set 0 repeats every 64 bytes.
    Eviction ev;
    const Addr a = 0x000, b = 0x040, c = 0x080;
    store.allocate(a, ev);
    store.allocate(b, ev);
    // Touch A so B is LRU.
    store.touch(store.find(a));
    store.allocate(c, ev);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, b);
    EXPECT_TRUE(store.find(a));
    EXPECT_FALSE(store.find(b));
    EXPECT_TRUE(store.find(c));
}

TEST(TagStore, VictimPrefersInvalidWay)
{
    TagStore store(setAssoc(32, 2, 4), "test");
    Eviction ev;
    store.allocate(0x000, ev);
    // Second way of set 0 is still invalid; victim must be it.
    TagStore::Ref victim = store.victim(0x040);
    ASSERT_TRUE(victim);
    EXPECT_FALSE(victim.valid());
}

TEST(TagStore, InvalidateAll)
{
    TagStore store(directMapped(1024), "test");
    Eviction ev;
    store.allocate(0x0, ev);
    store.allocate(0x100, ev);
    EXPECT_EQ(store.validCount(), 2u);
    store.invalidateAll();
    EXPECT_EQ(store.validCount(), 0u);
    EXPECT_FALSE(store.find(0x0));
}

TEST(TagStore, DirtyCount)
{
    TagStore store(directMapped(1024), "test");
    Eviction ev;
    store.allocate(0x0, ev).setDirty(true);
    store.allocate(0x100, ev);
    EXPECT_EQ(store.dirtyCount(), 1u);
}

TEST(TagStore, WriteOnlyAndSubblockStateSurvivesFind)
{
    TagStore store(directMapped(4 * 1024), "test");
    Eviction ev;
    TagStore::Ref line = store.allocate(0x2000, ev);
    line.setWriteOnly(true);
    line.setValidMask(0x2);
    // find() is a pure tag probe: state is unchanged.
    TagStore::Ref found = store.find(0x2004);
    ASSERT_TRUE(found);
    EXPECT_TRUE(found.writeOnly());
    EXPECT_EQ(found.validMask(), 0x2u);
}

TEST(TagStore, DmAndAssocProbesAgree)
{
    // The direct-mapped and way-loop probe kernels must agree on
    // every assoc == 1 store (the specialized loops pick one at
    // compile time).
    TagStore store(directMapped(4 * 1024), "test");
    Eviction ev;
    for (Addr addr = 0; addr < 128 * 1024; addr += 977 * 4) {
        EXPECT_EQ(store.lookupDm(addr), store.lookupAssoc(addr));
        store.allocate(addr, ev);
        EXPECT_EQ(store.lookupDm(addr), store.lookupAssoc(addr));
        EXPECT_NE(store.lookupDm(addr), TagStore::npos);
    }
}

TEST(TagStore, InvalidateRestoresSentinel)
{
    TagStore store(directMapped(1024), "test");
    Eviction ev;
    store.allocate(0x40, ev).setDirty(true);
    store.find(0x40).invalidate();
    EXPECT_FALSE(store.find(0x40));
    EXPECT_EQ(store.validCount(), 0u);
    EXPECT_EQ(store.dirtyCount(), 0u);
}

/** Geometry sweep: allocate-then-find must hold for any shape. */
class TagStoreGeometry
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, unsigned, unsigned>>
{
};

TEST_P(TagStoreGeometry, AllocateFindRoundTrip)
{
    const auto [size, assoc, line_words] = GetParam();
    TagStore store(setAssoc(size, assoc, line_words), "sweep");

    // Touch a spread of addresses; each must be findable right after
    // allocation, and the store never exceeds its capacity.
    Eviction ev;
    for (Addr addr = 0; addr < 64 * 1024; addr += 1003 * 4) {
        if (!store.find(addr))
            store.allocate(addr, ev);
        TagStore::Ref line = store.find(addr);
        ASSERT_TRUE(line);
        EXPECT_EQ(store.lineAddr(addr) % (line_words * 4), 0u);
    }
    EXPECT_LE(store.validCount(), store.config().lines());
}

TEST_P(TagStoreGeometry, EvictionAddressMapsBackToSameSet)
{
    const auto [size, assoc, line_words] = GetParam();
    TagStore store(setAssoc(size, assoc, line_words), "sweep");
    Eviction ev;
    for (Addr addr = 0; addr < 256 * 1024; addr += 4093 * 4) {
        store.allocate(addr, ev);
        if (ev.valid) {
            // A victim's reconstructed address must index the same
            // set it was evicted from.
            EXPECT_EQ(store.setIndex(ev.lineAddr),
                      store.setIndex(addr));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TagStoreGeometry,
    ::testing::Values(
        std::make_tuple(1024, 1u, 4u),
        std::make_tuple(4 * 1024, 1u, 4u),
        std::make_tuple(4 * 1024, 1u, 8u),
        std::make_tuple(4 * 1024, 2u, 4u),
        std::make_tuple(32 * 1024, 1u, 32u),
        std::make_tuple(256 * 1024, 1u, 32u),
        std::make_tuple(256 * 1024, 2u, 32u),
        std::make_tuple(1024 * 1024, 2u, 32u)));

} // namespace
} // namespace gaas::cache
