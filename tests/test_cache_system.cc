/**
 * @file
 * Timing-contract tests for core::CacheSystem: every rule of
 * Sections 2 and 6-9 of the paper, checked with hand-computed cycle
 * counts on crafted address sequences.
 *
 * Address notes: pages are 16KB, so two virtual addresses one page
 * apart share their L1 index (the L1s are exactly one page) but have
 * different tags -- a guaranteed direct-mapped conflict.  Test
 * operations are spaced far apart in time so the memory bus is idle
 * unless a test wants contention.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "core/cache_system.hh"
#include "core/config.hh"
#include "util/logging.hh"

namespace gaas::core
{
namespace
{

constexpr Addr kText = 0x0040'0000;
constexpr Addr kData = 0x1000'0000;
constexpr Addr kPage = 16 * 1024;

/** Baseline penalties: L2 access 6, clean 143, dirty 237. */
constexpr Cycles kL2 = 6;
constexpr Cycles kClean = 143;

class CacheSystemTest : public ::testing::Test
{
  protected:
    /** Fresh system; advance t between ops to keep the bus idle. */
    void
    makeSystem(const SystemConfig &cfg)
    {
        sys = std::make_unique<CacheSystem>(cfg);
    }

    Cycles
    step(Cycles stall)
    {
        t += 10'000 + stall;
        return stall;
    }

    std::unique_ptr<CacheSystem> sys;
    Cycles t = 0;
};

TEST_F(CacheSystemTest, IfetchColdMissCostsL2PlusMemory)
{
    makeSystem(baseline());
    const Cycles stall = sys->ifetch(t, 0, kText);
    EXPECT_EQ(stall, kL2 + kClean);
    const auto s = sys->stats();
    EXPECT_EQ(s.ifetches, 1u);
    EXPECT_EQ(s.l1iMisses, 1u);
    EXPECT_EQ(s.l2iAccesses, 1u);
    EXPECT_EQ(s.l2iMisses, 1u);
    EXPECT_EQ(sys->components().l1iMiss, kL2);
    EXPECT_EQ(sys->components().l2iMiss, kClean);
}

TEST_F(CacheSystemTest, IfetchHitsAreFree)
{
    makeSystem(baseline());
    step(sys->ifetch(t, 0, kText));
    EXPECT_EQ(sys->ifetch(t, 0, kText), 0u);
    // Any word of the same 4W line hits.
    EXPECT_EQ(sys->ifetch(t, 0, kText + 4), 0u);
    EXPECT_EQ(sys->ifetch(t, 0, kText + 12), 0u);
    EXPECT_EQ(sys->stats().l1iMisses, 1u);
}

TEST_F(CacheSystemTest, IfetchL2HitCostsAccessTimeOnly)
{
    makeSystem(baseline());
    step(sys->ifetch(t, 0, kText));         // cold: into L1 + L2
    step(sys->ifetch(t, 0, kText + kPage)); // conflicts in L1
    // Refetching the first line: L1 conflict miss, L2 hit.
    EXPECT_EQ(sys->ifetch(t, 0, kText), kL2);
    const auto s = sys->stats();
    EXPECT_EQ(s.l2iAccesses, 3u);
    EXPECT_EQ(s.l2iMisses, 2u);
}

TEST_F(CacheSystemTest, LoadColdMissAndHit)
{
    makeSystem(baseline());
    EXPECT_EQ(step(sys->load(t, 0, kData)), kL2 + kClean);
    EXPECT_EQ(sys->load(t, 0, kData + 8), 0u);
    const auto s = sys->stats();
    EXPECT_EQ(s.loads, 2u);
    EXPECT_EQ(s.l1dReadMisses, 1u);
    EXPECT_EQ(s.l2dAccesses, 1u);
}

TEST_F(CacheSystemTest, WriteBackStoreHitTakesTwoCycles)
{
    makeSystem(baseline());
    step(sys->load(t, 0, kData));
    // Hit: one extra cycle for the tag check before commit.
    EXPECT_EQ(sys->store(t, 0, kData, false), 1u);
    EXPECT_EQ(sys->components().l1Writes, 1u);
    EXPECT_EQ(sys->stats().l1dWriteMisses, 0u);
}

TEST_F(CacheSystemTest, WriteBackStoreMissAllocates)
{
    makeSystem(baseline());
    // Write-allocate: fetch the line; no extra write cycle.
    EXPECT_EQ(step(sys->store(t, 0, kData, false)), kL2 + kClean);
    EXPECT_EQ(sys->stats().l1dWriteMisses, 1u);
    // The allocated line absorbs both reads and writes.
    EXPECT_EQ(sys->load(t, 0, kData + 4), 0u);
    EXPECT_EQ(sys->store(t, 0, kData + 4, false), 1u);
}

TEST_F(CacheSystemTest, WriteBackDirtyVictimEntersWriteBuffer)
{
    makeSystem(baseline());
    step(sys->load(t, 0, kData));
    step(sys->store(t, 0, kData, false)); // dirty
    // Conflict-evict the dirty line.
    step(sys->load(t, 0, kData + kPage));
    const auto s = sys->stats();
    EXPECT_EQ(s.wb.pushes, 1u);
    // The write-back marked the victim's L2 line dirty.
    EXPECT_EQ(sys->l2DataStore().dirtyCount(), 1u);
}

TEST_F(CacheSystemTest, MissWaitsForWriteBufferDrain)
{
    makeSystem(baseline());
    step(sys->load(t, 0, kData));
    step(sys->store(t, 0, kData, false));
    // Evict the dirty line; the victim enters the write buffer at
    // the *end* of this miss...
    sys->load(t, 0, kData + kPage);
    // ...so an immediately following miss (no time elapsed) must
    // wait for the buffer to empty (Section 2).
    const Cycles before_wait = sys->components().wbWait;
    sys->load(t, 0, kData + 2 * kPage);
    EXPECT_GT(sys->components().wbWait, before_wait);
    EXPECT_GE(sys->stats().wb.drainWaits, 1u);
}

TEST_F(CacheSystemTest, WriteMissInvalidateCorruptsVictimLine)
{
    makeSystem(
        withWritePolicy(baseline(), WritePolicy::WriteMissInvalidate));
    step(sys->load(t, 0, kData)); // line resident
    // A write hit costs nothing extra (tag checked in parallel).
    EXPECT_EQ(sys->store(t, 0, kData, false), 0u);
    step(0);
    // A write miss to the same set takes the extra invalidate cycle
    // and corrupts the resident line.
    EXPECT_EQ(sys->store(t, 0, kData + kPage, false), 1u);
    step(0);
    // The original line was invalidated: the next load misses.
    EXPECT_GT(sys->load(t, 0, kData), 0u);
    EXPECT_EQ(sys->stats().l1dWriteMisses, 1u);
}

TEST_F(CacheSystemTest, WriteOnlyMissMakesSubsequentWritesHit)
{
    makeSystem(withWritePolicy(baseline(), WritePolicy::WriteOnly));
    // Write miss: one extra cycle, tag updated, marked write-only.
    EXPECT_EQ(step(sys->store(t, 0, kData, false)), 1u);
    EXPECT_EQ(sys->stats().l1dWriteMisses, 1u);
    // Subsequent writes to the line complete in one cycle.
    EXPECT_EQ(step(sys->store(t, 0, kData + 4, false)), 0u);
    EXPECT_EQ(step(sys->store(t, 0, kData + 8, false)), 0u);
    EXPECT_EQ(sys->stats().l1dWriteMisses, 1u);
}

TEST_F(CacheSystemTest, WriteOnlyLineMissesOnRead)
{
    makeSystem(withWritePolicy(baseline(), WritePolicy::WriteOnly));
    step(sys->store(t, 0, kData, false));
    // Reads that map to a write-only line miss and reallocate it.
    const Cycles stall = sys->load(t, 0, kData);
    EXPECT_GE(stall, kL2);
    EXPECT_EQ(sys->stats().writeOnlyReadMisses, 1u);
    step(stall);
    // After reallocation the line is readable.
    EXPECT_EQ(sys->load(t, 0, kData + 4), 0u);
}

TEST_F(CacheSystemTest, WriteThroughStoresEnterWriteBuffer)
{
    makeSystem(withWritePolicy(baseline(), WritePolicy::WriteOnly));
    step(sys->store(t, 0, kData, false));
    step(sys->store(t, 0, kData + 4, false));
    EXPECT_EQ(sys->stats().wb.pushes, 2u);
    // The drained writes allocated (and dirtied) the L2 line.
    EXPECT_GE(sys->stats().l2WriteAllocates, 1u);
    EXPECT_EQ(sys->l2DataStore().dirtyCount(), 1u);
}

TEST_F(CacheSystemTest, SubblockValidatesWrittenWordsOnly)
{
    makeSystem(
        withWritePolicy(baseline(), WritePolicy::SubblockPlacement));
    // Word write-miss: tag updated, only this word valid.
    EXPECT_EQ(step(sys->store(t, 0, kData + 4, false)), 1u);
    // Reading the written word hits...
    EXPECT_EQ(step(sys->load(t, 0, kData + 4)), 0u);
    // ...but another word of the line misses.
    EXPECT_GT(sys->load(t, 0, kData + 8), 0u);
}

TEST_F(CacheSystemTest, SubblockWriteHitValidatesItsWord)
{
    makeSystem(
        withWritePolicy(baseline(), WritePolicy::SubblockPlacement));
    step(sys->store(t, 0, kData, false));     // word 0 valid
    step(sys->store(t, 0, kData + 4, false)); // hit; word 1 valid
    EXPECT_EQ(sys->load(t, 0, kData + 4), 0u);
}

TEST_F(CacheSystemTest, SubblockPartialWordWritesDoNotValidate)
{
    makeSystem(
        withWritePolicy(baseline(), WritePolicy::SubblockPlacement));
    // Partial-word write miss: tag updated, no word validated.
    EXPECT_EQ(step(sys->store(t, 0, kData, true)), 1u);
    EXPECT_GT(sys->load(t, 0, kData), 0u);
}

TEST_F(CacheSystemTest, AssociativeBypassSkipsUnrelatedLines)
{
    auto cfg = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    cfg.loadBypass = LoadBypass::Associative;
    makeSystem(cfg);
    sys->store(t, 0, kData, false);
    // A read miss to an unrelated line need not wait (Section 9).
    // (Same page, different L1 set and L2 set: no aliasing.)
    const Cycles stall = sys->load(t, 0, kData + 8192);
    EXPECT_EQ(stall, kL2 + kClean);
    EXPECT_GE(sys->stats().wb.bypasses, 1u);
    EXPECT_EQ(sys->components().wbWait, 0u);
}

TEST_F(CacheSystemTest, AssociativeBypassWaitsOnMatch)
{
    auto cfg = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    cfg.loadBypass = LoadBypass::Associative;
    makeSystem(cfg);
    sys->store(t, 0, kData, false);
    // Reading the just-written (write-only) line must flush the
    // matching entry first.
    sys->load(t, 0, kData);
    EXPECT_GT(sys->components().wbWait, 0u);
}

TEST_F(CacheSystemTest, DirtyBitBypassChecksVictimOnly)
{
    auto cfg = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    cfg.loadBypass = LoadBypass::DirtyBit;
    makeSystem(cfg);
    sys->store(t, 0, kData, false);
    // Miss replacing an *invalid* slot (different L1 set): no
    // flush needed.
    const Cycles before = sys->components().wbWait;
    sys->load(t, 0, kData + 8192);
    EXPECT_EQ(sys->components().wbWait, before);
    // Miss on the dirty (write-only) line itself: flush.
    sys->load(t, 0, kData);
    EXPECT_GT(sys->components().wbWait, before);
}

TEST_F(CacheSystemTest, ConcurrentIRefillSkipsWriteBufferWait)
{
    auto cfg = afterSplitL2();
    cfg.concurrentIRefill = true;
    makeSystem(cfg);
    // Queue a store, then immediately miss in L1-I: the I-refill
    // proceeds from L2-I concurrently with the drain into L2-D.
    sys->store(t, 0, kData, false);
    sys->ifetch(t, 0, kText);
    EXPECT_EQ(sys->components().wbWait, 0u);
}

TEST_F(CacheSystemTest, FetchSizeAddsTransferBeats)
{
    // 8W fetch at 4 words/cycle adds one beat beyond the first 4W.
    auto cfg = afterFetchSize();
    makeSystem(cfg);
    const Cycles stall = sys->ifetch(t, 0, kText);
    // L2-I access time 2 (+1 beat) + memory.
    EXPECT_EQ(stall, 2u + 1u + kClean);
    EXPECT_EQ(sys->components().l1iMiss, 3u);
}

TEST_F(CacheSystemTest, TlbMissPenaltyCharged)
{
    auto cfg = baseline();
    cfg.mmu.tlbMissPenalty = 20;
    makeSystem(cfg);
    const Cycles stall = sys->ifetch(t, 0, kText);
    EXPECT_EQ(stall, 20u + kL2 + kClean);
    EXPECT_EQ(sys->components().tlb, 20u);
    step(stall);
    // Second access to the same line and page: all hits.
    EXPECT_EQ(sys->ifetch(t, 0, kText + 4), 0u);
}

TEST_F(CacheSystemTest, PidsKeepAddressSpacesDistinct)
{
    makeSystem(baseline());
    step(sys->ifetch(t, 0, kText));
    // The same virtual address in another process is a different
    // physical line: it must miss.
    EXPECT_GT(sys->ifetch(t, 1, kText), 0u);
    EXPECT_EQ(sys->stats().l1iMisses, 2u);
}

TEST_F(CacheSystemTest, LogicalSplitSeparatesInstAndData)
{
    auto cfg = afterWritePolicy();
    cfg.l2Org = L2Org::LogicalSplit;
    makeSystem(cfg);
    EXPECT_NE(&sys->l2InstStore(), &sys->l2DataStore());
    // Each half is half the unified capacity.
    EXPECT_EQ(sys->l2InstStore().config().sizeWords,
              cfg.l2.cache.sizeWords / 2);
}

TEST_F(CacheSystemTest, UnifiedL2SharesOneStore)
{
    makeSystem(baseline());
    EXPECT_EQ(&sys->l2InstStore(), &sys->l2DataStore());
}

TEST_F(CacheSystemTest, DirtyL2MissPaysDirtyPenalty)
{
    // Force an L2 eviction of a dirty line with a tiny L2.
    auto cfg = baseline();
    cfg.l2.cache.sizeWords = 1024; // 32 lines of 32W
    makeSystem(cfg);
    step(sys->load(t, 0, kData));
    step(sys->store(t, 0, kData, false));
    // Evict the dirty L1 line so its write-back dirties L2.
    step(sys->load(t, 0, kData + kPage));
    // Now push the dirty L2 line out: its set repeats every
    // 1024 words = 4KB of physical address space; page colouring
    // keeps low page bits, so +4KB within the same page conflicts.
    const Cycles stall = sys->load(t, 0, kData + 4096);
    (void)stall;
    // Somewhere in this sequence a dirty L2 miss occurred.
    Cycles total_dirty = sys->stats().l2DirtyMisses;
    if (total_dirty == 0) {
        // One more conflicting line settles it regardless of layout.
        step(0);
        sys->load(t, 0, kData + 8192);
        total_dirty = sys->stats().l2DirtyMisses;
    }
    EXPECT_GE(total_dirty, 1u);
}

TEST_F(CacheSystemTest, ResetStatsPreservesCacheContents)
{
    makeSystem(baseline());
    step(sys->ifetch(t, 0, kText));
    sys->resetStats();
    EXPECT_EQ(sys->stats().ifetches, 0u);
    // Still a hit: the line survived the reset.
    EXPECT_EQ(sys->ifetch(t, 0, kText), 0u);
}

TEST_F(CacheSystemTest, StatsAggregateSubsystems)
{
    makeSystem(baseline());
    step(sys->ifetch(t, 0, kText));
    step(sys->load(t, 0, kData));
    const auto s = sys->stats();
    EXPECT_EQ(s.itlb.accesses, 1u);
    EXPECT_EQ(s.dtlb.accesses, 1u);
    EXPECT_EQ(s.memory.reads, 2u);
}

/** Config validation failures the system must reject. */
TEST(CacheSystemConfig, RejectsInconsistentConfigs)
{
    // Concurrent I-refill needs a split L2.
    auto cfg = baseline();
    cfg.concurrentIRefill = true;
    EXPECT_THROW(CacheSystem{cfg}, FatalError);

    // Dirty-bit bypass needs the write-only policy.
    cfg = withWritePolicy(baseline(), WritePolicy::SubblockPlacement);
    cfg.loadBypass = LoadBypass::DirtyBit;
    EXPECT_THROW(CacheSystem{cfg}, FatalError);

    // Load bypass does not apply to the write-back buffer.
    cfg = baseline();
    cfg.loadBypass = LoadBypass::Associative;
    EXPECT_THROW(CacheSystem{cfg}, FatalError);

    // Write-back victims need line-sized WB entries.
    cfg = baseline();
    cfg.wbEntryWords = 1;
    EXPECT_THROW(CacheSystem{cfg}, FatalError);

    // L2 lines must cover L1 lines.
    cfg = baseline();
    cfg.l2.cache.lineWords = 2;
    cfg.l2.cache.fetchWords = 2;
    EXPECT_THROW(CacheSystem{cfg}, FatalError);
}

/** All presets must construct and describe themselves. */
class PresetTest : public ::testing::TestWithParam<SystemConfig>
{
};

TEST_P(PresetTest, ConstructsAndDescribes)
{
    const SystemConfig &cfg = GetParam();
    EXPECT_NO_THROW(cfg.validate());
    CacheSystem sys(cfg);
    EXPECT_FALSE(cfg.describe().empty());
    EXPECT_EQ(&sys.config().l1i, &sys.config().l1i);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, PresetTest,
    ::testing::Values(baseline(), afterWritePolicy(), afterSplitL2(),
                      afterFetchSize(), afterConcurrentIRefill(),
                      afterLoadBypass(), optimized(),
                      splitL2Exchanged()),
    [](const auto &info) {
        std::string name = info.param.name;
        for (char &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

} // namespace
} // namespace gaas::core
