/**
 * @file
 * Tests for SystemConfig text (de)serialization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/config_io.hh"
#include "core/simulator.hh"
#include "util/logging.hh"

namespace gaas::core
{
namespace
{

/** Field-by-field equality over everything config_io round-trips. */
void
expectEqualConfigs(const SystemConfig &a, const SystemConfig &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.l1i, b.l1i);
    EXPECT_EQ(a.l1d, b.l1d);
    EXPECT_EQ(a.writePolicy, b.writePolicy);
    EXPECT_EQ(a.l2Org, b.l2Org);
    EXPECT_EQ(a.l2.cache, b.l2.cache);
    EXPECT_EQ(a.l2.accessTime, b.l2.accessTime);
    EXPECT_EQ(a.l2i.cache, b.l2i.cache);
    EXPECT_EQ(a.l2i.accessTime, b.l2i.accessTime);
    EXPECT_EQ(a.l2d.cache, b.l2d.cache);
    EXPECT_EQ(a.l2d.accessTime, b.l2d.accessTime);
    EXPECT_EQ(a.transferWordsPerCycle, b.transferWordsPerCycle);
    EXPECT_EQ(a.wbDepth, b.wbDepth);
    EXPECT_EQ(a.wbEntryWords, b.wbEntryWords);
    EXPECT_EQ(a.wbStreamOverlap, b.wbStreamOverlap);
    EXPECT_EQ(a.concurrentIRefill, b.concurrentIRefill);
    EXPECT_EQ(a.loadBypass, b.loadBypass);
    EXPECT_EQ(a.l2DirtyBuffer, b.l2DirtyBuffer);
    EXPECT_EQ(a.memory.cleanMissPenalty, b.memory.cleanMissPenalty);
    EXPECT_EQ(a.memory.dirtyMissPenalty, b.memory.dirtyMissPenalty);
    EXPECT_EQ(a.mmu.tlbMissPenalty, b.mmu.tlbMissPenalty);
    EXPECT_EQ(a.mmu.pageTable.colors, b.mmu.pageTable.colors);
    EXPECT_EQ(a.mmu.pageTable.coloring, b.mmu.pageTable.coloring);
    EXPECT_EQ(a.timeSliceCycles, b.timeSliceCycles);
}

SystemConfig
roundTrip(const SystemConfig &cfg)
{
    std::ostringstream os;
    saveConfig(cfg, os);
    std::istringstream is(os.str());
    return loadConfig(is);
}

/** The preset ladder every property test walks. */
std::vector<SystemConfig>
presetLadder()
{
    return {baseline(),       afterWritePolicy(),
            afterSplitL2(),   afterFetchSize(),
            afterConcurrentIRefill(), afterLoadBypass(),
            optimized(),      splitL2Exchanged()};
}

TEST(ConfigIo, RoundTripsEveryPreset)
{
    for (const auto &cfg : presetLadder()) {
        SCOPED_TRACE(cfg.name);
        expectEqualConfigs(roundTrip(cfg), cfg);
    }
}

TEST(ConfigIo, WbOverridesSurviveAnyKeyOrder)
{
    // Regression: the old one-pass parser ran applyPolicyDefaults()
    // the moment it saw write_policy, silently clobbering any
    // wb.depth / wb.entry_words line that appeared EARLIER in the
    // file.  Both orders must now produce the same config, with the
    // explicit override winning.
    std::istringstream before(
        "wb.depth = 16\n"
        "wb.entry_words = 2\n"
        "write_policy = writeonly\n");
    std::istringstream after(
        "write_policy = writeonly\n"
        "wb.depth = 16\n"
        "wb.entry_words = 2\n");
    const auto a = loadConfig(before);
    const auto b = loadConfig(after);
    EXPECT_EQ(a.wbDepth, 16u);
    EXPECT_EQ(a.wbEntryWords, 2u);
    EXPECT_EQ(a.writePolicy, WritePolicy::WriteOnly);
    expectEqualConfigs(a, b);
}

TEST(ConfigIo, LineOrderNeverMatters)
{
    // Strongest form of order independence: feeding every preset's
    // save output to the parser in REVERSED line order yields the
    // identical configuration.
    for (const auto &cfg : presetLadder()) {
        SCOPED_TRACE(cfg.name);
        std::ostringstream os;
        saveConfig(cfg, os);
        std::vector<std::string> lines;
        std::istringstream split(os.str());
        for (std::string line; std::getline(split, line);)
            lines.push_back(line);
        std::reverse(lines.begin(), lines.end());
        std::string reversed;
        for (const auto &line : lines)
            reversed += line + '\n';
        std::istringstream is(reversed);
        expectEqualConfigs(loadConfig(is), cfg);
    }
}

TEST(ConfigIo, DuplicateKeyIsFatal)
{
    std::istringstream is("wb.depth = 4\nwb.depth = 8\n");
    EXPECT_THROW(loadConfig(is), FatalError);
    // The error names both the duplicate and the original line.
    std::istringstream again("wb.depth = 4\nwb.depth = 8\n");
    try {
        loadConfig(again);
        FAIL() << "duplicate key must be fatal";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("duplicate key"), std::string::npos)
            << what;
        EXPECT_NE(what.find("line 2"), std::string::npos) << what;
        EXPECT_NE(what.find("line 1"), std::string::npos) << what;
    }
}

TEST(ConfigIo, ValueErrorsCarryLineNumbers)
{
    std::istringstream is(
        "# comment\n"
        "l2.access_time = 8\n"
        "wb.depth = many\n");
    try {
        loadConfig(is);
        FAIL() << "bad value must be fatal";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 3"),
                  std::string::npos)
            << err.what();
    }
}

TEST(ConfigIo, SaveLoadSaveIsIdentity)
{
    // save -> load -> save must reproduce the text byte-for-byte:
    // the parser reads everything the writer emits and invents
    // nothing (the golden harness leans on this fixed point).
    for (const auto &cfg : presetLadder()) {
        SCOPED_TRACE(cfg.name);
        std::ostringstream first;
        saveConfig(cfg, first);
        std::istringstream is(first.str());
        const auto reloaded = loadConfig(is);
        std::ostringstream second;
        saveConfig(reloaded, second);
        EXPECT_EQ(first.str(), second.str());
    }
}

TEST(ConfigIo, ReloadedConfigSimulatesIdentically)
{
    // A reloaded config is the same design point, not merely a
    // field-equal struct: a short pinned-seed run produces the
    // identical SimResult (everything but wall-clock hostSeconds).
    for (const auto &cfg : presetLadder()) {
        SCOPED_TRACE(cfg.name);
        const auto reloaded = roundTrip(cfg);
        const auto a = runStandard(cfg, 20'000, 2, 5'000);
        const auto b = runStandard(reloaded, 20'000, 2, 5'000);
        EXPECT_EQ(a.configName, b.configName);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_EQ(a.cpuStallCycles, b.cpuStallCycles);
        EXPECT_EQ(a.contextSwitches, b.contextSwitches);
        EXPECT_EQ(a.syscallSwitches, b.syscallSwitches);
        EXPECT_EQ(a.comp.total(), b.comp.total());
        EXPECT_EQ(a.sys.ifetches, b.sys.ifetches);
        EXPECT_EQ(a.sys.l1iMisses, b.sys.l1iMisses);
        EXPECT_EQ(a.sys.loads, b.sys.loads);
        EXPECT_EQ(a.sys.l1dReadMisses, b.sys.l1dReadMisses);
        EXPECT_EQ(a.sys.stores, b.sys.stores);
        EXPECT_EQ(a.sys.l1dWriteMisses, b.sys.l1dWriteMisses);
        EXPECT_EQ(a.sys.l2iMisses, b.sys.l2iMisses);
        EXPECT_EQ(a.sys.l2dMisses, b.sys.l2dMisses);
        EXPECT_EQ(a.sys.wb.pushes, b.sys.wb.pushes);
        EXPECT_EQ(a.sys.memory.reads, b.sys.memory.reads);
    }
}

TEST(ConfigIo, DefaultsApplyForMissingKeys)
{
    std::istringstream is("write_policy = writeonly\n");
    const auto cfg = loadConfig(is);
    EXPECT_EQ(cfg.writePolicy, WritePolicy::WriteOnly);
    // Policy defaults reshaped the write buffer.
    EXPECT_EQ(cfg.wbDepth, 8u);
    EXPECT_EQ(cfg.wbEntryWords, 1u);
    // Everything else stays at baseline.
    EXPECT_EQ(cfg.l2.cache.sizeWords, 256u * 1024);
}

TEST(ConfigIo, CommentsAndBlanksIgnored)
{
    std::istringstream is(
        "# a comment\n\n  \t\nl2.access_time = 8\n");
    EXPECT_EQ(loadConfig(is).l2.accessTime, 8u);
}

TEST(ConfigIo, UnknownKeyIsFatal)
{
    std::istringstream is("l3.size_words = 1024\n");
    EXPECT_THROW(loadConfig(is), FatalError);
}

TEST(ConfigIo, MalformedLineIsFatal)
{
    std::istringstream is("this is not a key value pair\n");
    EXPECT_THROW(loadConfig(is), FatalError);
}

TEST(ConfigIo, BadNumberIsFatal)
{
    std::istringstream is("l2.access_time = six\n");
    EXPECT_THROW(loadConfig(is), FatalError);
}

TEST(ConfigIo, BadEnumIsFatal)
{
    std::istringstream is("write_policy = copyback\n");
    EXPECT_THROW(loadConfig(is), FatalError);
    std::istringstream is2("l2.org = banked\n");
    EXPECT_THROW(loadConfig(is2), FatalError);
}

TEST(ConfigIo, LoadedConfigIsValidated)
{
    // Inconsistent combination must be rejected at load time.
    std::istringstream is("concurrent_i_refill = true\n");
    EXPECT_THROW(loadConfig(is), FatalError); // unified L2
}

TEST(ConfigIo, FileRoundTrip)
{
    const auto path = (std::filesystem::temp_directory_path() /
                       "gaas_config_io.cfg")
                          .string();
    const auto cfg = optimized();
    saveConfigFile(cfg, path);
    expectEqualConfigs(loadConfigFile(path), cfg);
    std::filesystem::remove(path);
}

TEST(ConfigIo, MissingFileIsFatal)
{
    EXPECT_THROW(loadConfigFile("/nonexistent/nope.cfg"),
                 FatalError);
}

} // namespace
} // namespace gaas::core
