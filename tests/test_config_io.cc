/**
 * @file
 * Tests for SystemConfig text (de)serialization.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/config.hh"
#include "core/config_io.hh"
#include "util/logging.hh"

namespace gaas::core
{
namespace
{

/** Field-by-field equality over everything config_io round-trips. */
void
expectEqualConfigs(const SystemConfig &a, const SystemConfig &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.l1i, b.l1i);
    EXPECT_EQ(a.l1d, b.l1d);
    EXPECT_EQ(a.writePolicy, b.writePolicy);
    EXPECT_EQ(a.l2Org, b.l2Org);
    EXPECT_EQ(a.l2.cache, b.l2.cache);
    EXPECT_EQ(a.l2.accessTime, b.l2.accessTime);
    EXPECT_EQ(a.l2i.cache, b.l2i.cache);
    EXPECT_EQ(a.l2i.accessTime, b.l2i.accessTime);
    EXPECT_EQ(a.l2d.cache, b.l2d.cache);
    EXPECT_EQ(a.l2d.accessTime, b.l2d.accessTime);
    EXPECT_EQ(a.transferWordsPerCycle, b.transferWordsPerCycle);
    EXPECT_EQ(a.wbDepth, b.wbDepth);
    EXPECT_EQ(a.wbEntryWords, b.wbEntryWords);
    EXPECT_EQ(a.wbStreamOverlap, b.wbStreamOverlap);
    EXPECT_EQ(a.concurrentIRefill, b.concurrentIRefill);
    EXPECT_EQ(a.loadBypass, b.loadBypass);
    EXPECT_EQ(a.l2DirtyBuffer, b.l2DirtyBuffer);
    EXPECT_EQ(a.memory.cleanMissPenalty, b.memory.cleanMissPenalty);
    EXPECT_EQ(a.memory.dirtyMissPenalty, b.memory.dirtyMissPenalty);
    EXPECT_EQ(a.mmu.tlbMissPenalty, b.mmu.tlbMissPenalty);
    EXPECT_EQ(a.mmu.pageTable.colors, b.mmu.pageTable.colors);
    EXPECT_EQ(a.mmu.pageTable.coloring, b.mmu.pageTable.coloring);
    EXPECT_EQ(a.timeSliceCycles, b.timeSliceCycles);
}

SystemConfig
roundTrip(const SystemConfig &cfg)
{
    std::ostringstream os;
    saveConfig(cfg, os);
    std::istringstream is(os.str());
    return loadConfig(is);
}

TEST(ConfigIo, RoundTripsEveryPreset)
{
    for (const auto &cfg :
         {baseline(), afterWritePolicy(), afterSplitL2(),
          afterFetchSize(), afterConcurrentIRefill(),
          afterLoadBypass(), optimized(), splitL2Exchanged()}) {
        SCOPED_TRACE(cfg.name);
        expectEqualConfigs(roundTrip(cfg), cfg);
    }
}

TEST(ConfigIo, DefaultsApplyForMissingKeys)
{
    std::istringstream is("write_policy = writeonly\n");
    const auto cfg = loadConfig(is);
    EXPECT_EQ(cfg.writePolicy, WritePolicy::WriteOnly);
    // Policy defaults reshaped the write buffer.
    EXPECT_EQ(cfg.wbDepth, 8u);
    EXPECT_EQ(cfg.wbEntryWords, 1u);
    // Everything else stays at baseline.
    EXPECT_EQ(cfg.l2.cache.sizeWords, 256u * 1024);
}

TEST(ConfigIo, CommentsAndBlanksIgnored)
{
    std::istringstream is(
        "# a comment\n\n  \t\nl2.access_time = 8\n");
    EXPECT_EQ(loadConfig(is).l2.accessTime, 8u);
}

TEST(ConfigIo, UnknownKeyIsFatal)
{
    std::istringstream is("l3.size_words = 1024\n");
    EXPECT_THROW(loadConfig(is), FatalError);
}

TEST(ConfigIo, MalformedLineIsFatal)
{
    std::istringstream is("this is not a key value pair\n");
    EXPECT_THROW(loadConfig(is), FatalError);
}

TEST(ConfigIo, BadNumberIsFatal)
{
    std::istringstream is("l2.access_time = six\n");
    EXPECT_THROW(loadConfig(is), FatalError);
}

TEST(ConfigIo, BadEnumIsFatal)
{
    std::istringstream is("write_policy = copyback\n");
    EXPECT_THROW(loadConfig(is), FatalError);
    std::istringstream is2("l2.org = banked\n");
    EXPECT_THROW(loadConfig(is2), FatalError);
}

TEST(ConfigIo, LoadedConfigIsValidated)
{
    // Inconsistent combination must be rejected at load time.
    std::istringstream is("concurrent_i_refill = true\n");
    EXPECT_THROW(loadConfig(is), FatalError); // unified L2
}

TEST(ConfigIo, FileRoundTrip)
{
    const auto path = (std::filesystem::temp_directory_path() /
                       "gaas_config_io.cfg")
                          .string();
    const auto cfg = optimized();
    saveConfigFile(cfg, path);
    expectEqualConfigs(loadConfigFile(path), cfg);
    std::filesystem::remove(path);
}

TEST(ConfigIo, MissingFileIsFatal)
{
    EXPECT_THROW(loadConfigFile("/nonexistent/nope.cfg"),
                 FatalError);
}

} // namespace
} // namespace gaas::core
