/**
 * @file
 * Directed tests: trace patterns with hand-computable cache
 * behaviour drive the full simulator, and the measured cycle counts
 * must match the closed forms exactly.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/simulator.hh"
#include "trace/compose.hh"
#include "trace/patterns.hh"

namespace gaas::core
{
namespace
{

/** Wrap a pattern in a looping single-process workload. */
template <typename Pattern>
Workload
patternWorkload(const typename Pattern::Params &params)
{
    Workload wl;
    wl.add(std::make_unique<trace::LoopSource>(
               std::make_unique<Pattern>(params)),
           /*base_cpi=*/1.0, "pattern");
    return wl;
}

TEST(Directed, SequentialSweepMissesOncePerLine)
{
    // 32KW of code swept sequentially: twice the 4KW L1-I, well
    // inside the 256KW L2.  Steady state: every 4W line misses L1-I
    // once per pass and hits L2 (6 cycles).
    trace::SequentialPattern::Params p;
    p.instFootprintWords = 32 * 1024;
    p.instructions = 32 * 1024; // one full pass
    Simulator sim(baseline(),
                  patternWorkload<trace::SequentialPattern>(p));
    // Warm up with exactly one pass, measure the next.
    const auto res = sim.run(p.instructions, p.instructions);

    const Count lines = p.instFootprintWords / 4;
    EXPECT_EQ(res.sys.l1iMisses, lines);
    EXPECT_EQ(res.sys.l2iMisses, 0u);
    EXPECT_EQ(res.cycles, res.instructions + 6 * lines);
}

TEST(Directed, ResidentSequentialNeverMisses)
{
    // 2KW of code fits the 4KW L1-I: after one warmup pass the CPI
    // is exactly 1.
    trace::SequentialPattern::Params p;
    p.instFootprintWords = 2 * 1024;
    p.instructions = 2 * 1024;
    Simulator sim(baseline(),
                  patternWorkload<trace::SequentialPattern>(p));
    const auto res = sim.run(4 * p.instructions, p.instructions);
    EXPECT_EQ(res.sys.l1iMisses, 0u);
    EXPECT_DOUBLE_EQ(res.cpi(), 1.0);
}

TEST(Directed, DirectMappedPingPongAlwaysMisses)
{
    // Two lines 16KB apart collide in the direct-mapped 4KW L1-D;
    // alternating loads miss every time and hit L2: 6 cycles each.
    trace::ConflictPattern::Params p;
    p.ways = 2;
    p.instructions = 4'000;
    Simulator sim(baseline(),
                  patternWorkload<trace::ConflictPattern>(p));
    const auto res = sim.run(p.instructions, p.instructions);
    EXPECT_EQ(res.sys.l1dReadMisses, res.instructions);
    EXPECT_EQ(res.sys.l2dMisses, 0u);
    EXPECT_EQ(res.cycles, res.instructions * (1 + 6));
}

TEST(Directed, TwoWayL1DAbsorbsThePingPong)
{
    // The same pattern with a 2-way L1-D: both lines coexist and
    // every access hits.
    trace::ConflictPattern::Params p;
    p.ways = 2;
    p.instructions = 4'000;
    auto cfg = baseline();
    cfg.l1d.assoc = 2;
    Simulator sim(cfg, patternWorkload<trace::ConflictPattern>(p));
    const auto res = sim.run(p.instructions, p.instructions);
    EXPECT_EQ(res.sys.l1dReadMisses, 0u);
    EXPECT_DOUBLE_EQ(res.cpi(), 1.0);
}

TEST(Directed, ThreeWayConflictDefeatsTwoWayCache)
{
    // Three conflicting lines overwhelm a 2-way set under LRU:
    // the classic worst case -- every access misses again.
    trace::ConflictPattern::Params p;
    p.ways = 3;
    p.instructions = 4'000;
    auto cfg = baseline();
    cfg.l1d.assoc = 2;
    Simulator sim(cfg, patternWorkload<trace::ConflictPattern>(p));
    const auto res = sim.run(p.instructions, p.instructions);
    // One access at the warmup boundary may hit (4000 % 3 != 0
    // leaves the LRU phase off by one); all others must miss.
    EXPECT_GE(res.sys.l1dReadMisses, res.instructions - 1);
}

TEST(Directed, RandomResidentFootprintConvergesToHits)
{
    trace::RandomPattern::Params p;
    p.footprintWords = 2 * 1024; // 8KB, resident in the 16KB L1-D
    p.instructions = 20'000;
    Simulator sim(baseline(),
                  patternWorkload<trace::RandomPattern>(p));
    const auto res = sim.run(p.instructions, 3 * p.instructions);
    EXPECT_LT(res.sys.l1dReadMissRatio(), 0.01);
}

TEST(Directed, RandomOversizedFootprintKeepsMissing)
{
    // 64KW = 256KB over a 16KB L1-D: at most 1/16 of the footprint
    // is resident, so the miss ratio stays near 1 - 1/16.
    trace::RandomPattern::Params p;
    p.footprintWords = 64 * 1024;
    p.instructions = 20'000;
    Simulator sim(baseline(),
                  patternWorkload<trace::RandomPattern>(p));
    const auto res = sim.run(p.instructions, p.instructions);
    EXPECT_GT(res.sys.l1dReadMissRatio(), 0.85);
}

TEST(Directed, WriteOnlySequentialStoresMissOncePerLine)
{
    // Word-sequential stores under write-only: the first store of
    // each 4W line misses (one extra cycle, tag update), the next
    // three hit.
    trace::SequentialPattern::Params p;
    p.instFootprintWords = 256; // resident code
    p.dataFootprintWords = 32 * 1024; // 128KB, 2x the L1-D
    p.storeEvery = 1;           // all stores
    p.instructions = 32 * 1024; // one data pass
    auto cfg = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    Simulator sim(cfg, patternWorkload<trace::SequentialPattern>(p));
    const auto res = sim.run(p.instructions, p.instructions);

    const Count lines = p.dataFootprintWords / 4;
    EXPECT_EQ(res.sys.l1dWriteMisses, lines);
    EXPECT_EQ(res.comp.l1Writes, lines);
    EXPECT_EQ(res.sys.wb.pushes, res.sys.stores);
}

TEST(Directed, WriteBackSequentialStoresFetchOncePerLine)
{
    // The same stream under write-back: one write-allocate fetch per
    // line (6 cycles from L2 once warm), then three 2-cycle hits.
    trace::SequentialPattern::Params p;
    p.instFootprintWords = 256;
    p.dataFootprintWords = 32 * 1024;
    p.storeEvery = 1;
    p.instructions = 32 * 1024;
    Simulator sim(baseline(),
                  patternWorkload<trace::SequentialPattern>(p));
    const auto res = sim.run(p.instructions, p.instructions);

    const Count lines = p.dataFootprintWords / 4;
    EXPECT_EQ(res.sys.l1dWriteMisses, lines);
    // Three write hits per line at one extra cycle each.
    EXPECT_EQ(res.comp.l1Writes, 3 * lines);
    // Every evicted line is dirty: one write-back per line.
    EXPECT_EQ(res.sys.wb.pushes, lines);
}

TEST(Directed, SubblockSequentialWordStoresNeverRefetch)
{
    // Subblock placement on an all-store word-sequential stream:
    // like write-only, one 1-cycle tag update per line, and the
    // line's words become valid as they are written.
    trace::SequentialPattern::Params p;
    p.instFootprintWords = 256;
    p.dataFootprintWords = 32 * 1024;
    p.storeEvery = 1;
    p.instructions = 32 * 1024;
    auto cfg =
        withWritePolicy(baseline(), WritePolicy::SubblockPlacement);
    Simulator sim(cfg, patternWorkload<trace::SequentialPattern>(p));
    const auto res = sim.run(p.instructions, p.instructions);
    EXPECT_EQ(res.sys.l1dWriteMisses, p.dataFootprintWords / 4);
    EXPECT_EQ(res.sys.l2dAccesses, 0u); // no fetches at all
}

TEST(Directed, MixedLoadStoreSequentialMatchesWritePolicyCosts)
{
    // Every 4th data reference is a store; compare write-back and
    // write-only end to end on an oversized sequential stream.
    trace::SequentialPattern::Params p;
    p.instFootprintWords = 256;
    p.dataFootprintWords = 64 * 1024;
    p.storeEvery = 4;
    p.instructions = 64 * 1024;

    Simulator wb(baseline(),
                 patternWorkload<trace::SequentialPattern>(p));
    const auto wb_res = wb.run(p.instructions, p.instructions);

    auto cfg = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    Simulator wo(cfg, patternWorkload<trace::SequentialPattern>(p));
    const auto wo_res = wo.run(p.instructions, p.instructions);

    // Both see the same reference stream.
    EXPECT_EQ(wb_res.sys.stores, wo_res.sys.stores);
    // Loads touch each line before its store, so every store hits
    // in both policies; the write-through stream still pays for
    // read misses waiting on the write buffer (LoadBypass::None),
    // which is exactly the Fig. 5 trade-off mechanism.
    EXPECT_EQ(wb_res.sys.l1dWriteMisses, 0u);
    EXPECT_EQ(wo_res.sys.l1dWriteMisses, 0u);
    EXPECT_GT(wo_res.comp.wbWait, wb_res.comp.wbWait);
    EXPECT_GT(wo_res.cpi(), wb_res.cpi());
    EXPECT_NEAR(wb_res.cpi(), wo_res.cpi(), 1.0);
}

} // namespace
} // namespace gaas::core
