/**
 * @file
 * Configuration-space fuzzing: seeded random (but valid)
 * SystemConfigs drive short simulations, and the accounting
 * invariants must hold for every one of them.  This is the guard
 * against corner-case interactions the hand-written timing tests
 * do not enumerate (odd line sizes x policies x bypass modes x
 * split organisations).
 *
 * The second half fuzzes the *rejection* paths: mutated config text
 * and corrupted trace-file headers must either load cleanly or throw
 * a SimError with the right stable code (config / trace-io) -- never
 * an unclassified exception, never a crash.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/config_io.hh"
#include "core/simulator.hh"
#include "trace/file.hh"
#include "trace/v3.hh"
#include "util/error.hh"
#include "util/hash.hh"
#include "util/random.hh"

namespace gaas::core
{
namespace
{

/** Draw a random valid configuration. */
SystemConfig
randomConfig(Rng &rng)
{
    SystemConfig cfg = baseline();
    cfg.name = "fuzz";

    const std::uint64_t l1_sizes[] = {1024, 2048, 4096, 8192};
    const unsigned line_sizes[] = {4, 8, 16};
    const unsigned assocs[] = {1, 1, 2}; // bias to direct mapped

    cfg.l1i.sizeWords = l1_sizes[rng.nextBounded(4)];
    cfg.l1i.assoc = assocs[rng.nextBounded(3)];
    const unsigned line = line_sizes[rng.nextBounded(3)];
    cfg.l1i.lineWords = cfg.l1i.fetchWords = line;
    cfg.l1d = cfg.l1i;
    cfg.l1d.sizeWords = l1_sizes[rng.nextBounded(4)];

    const WritePolicy policies[] = {
        WritePolicy::WriteBack, WritePolicy::WriteMissInvalidate,
        WritePolicy::WriteOnly, WritePolicy::SubblockPlacement};
    cfg.writePolicy = policies[rng.nextBounded(4)];
    cfg.applyPolicyDefaults();
    if (cfg.writePolicy == WritePolicy::WriteBack) {
        // Victim entries must cover a full L1-D line.
        cfg.wbEntryWords = std::max(cfg.wbEntryWords,
                                    cfg.l1d.lineWords);
    } else {
        cfg.wbDepth = 1u << rng.nextBounded(5); // 1..16
    }

    const L2Org orgs[] = {L2Org::Unified, L2Org::LogicalSplit,
                          L2Org::PhysicalSplit};
    cfg.l2Org = orgs[rng.nextBounded(3)];
    cfg.l2.cache.sizeWords = 16384ull
                             << rng.nextBounded(5); // 16K..256K
    cfg.l2.cache.assoc = assocs[rng.nextBounded(3)];
    cfg.l2.accessTime = 2 + rng.nextBounded(9);
    cfg.l2i = cfg.l2d = cfg.l2;
    cfg.l2d.cache.sizeWords = 16384ull << rng.nextBounded(5);
    cfg.l2d.accessTime = 2 + rng.nextBounded(9);

    if (cfg.l2IsSplit() && rng.nextBernoulli(0.5))
        cfg.concurrentIRefill = true;
    if (isWriteThrough(cfg.writePolicy)) {
        if (cfg.writePolicy == WritePolicy::WriteOnly &&
            rng.nextBernoulli(0.3)) {
            cfg.loadBypass = LoadBypass::DirtyBit;
        } else if (rng.nextBernoulli(0.3)) {
            cfg.loadBypass = LoadBypass::Associative;
        }
    }
    if (rng.nextBernoulli(0.3)) {
        cfg.l2DirtyBuffer = true;
        cfg.memory.dirtyBuffer = true;
    }
    cfg.timeSliceCycles = 10'000u << rng.nextBounded(4);
    return cfg;
}

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConfigFuzz, InvariantsHoldOnRandomConfigs)
{
    Rng rng(GetParam());
    const SystemConfig cfg = randomConfig(rng);
    SCOPED_TRACE(cfg.describe());
    ASSERT_NO_THROW(cfg.validate());

    const auto res = runStandard(cfg, 30'000, 4, 10'000);

    // Exact cycle decomposition.
    EXPECT_EQ(res.cycles, res.instructions + res.cpuStallCycles +
                              res.comp.total());
    // The memory system never creates negative time.
    EXPECT_GE(res.cpi(), res.baseCpi());
    // Accounting consistency.
    EXPECT_EQ(res.sys.l2iAccesses, res.sys.l1iMisses);
    EXPECT_LE(res.sys.l2iMisses, res.sys.l2iAccesses);
    EXPECT_LE(res.sys.l2dMisses, res.sys.l2dAccesses);
    EXPECT_LE(res.sys.l1iMisses, res.sys.ifetches);
    EXPECT_LE(res.sys.l1dReadMisses, res.sys.loads);
    EXPECT_LE(res.sys.l1dWriteMisses, res.sys.stores);
    // Memory traffic only comes from L2 misses.
    EXPECT_EQ(res.sys.memory.reads,
              res.sys.l2iMisses + res.sys.l2dMisses);
    // Dirty writebacks cannot exceed misses.
    EXPECT_LE(res.sys.memory.dirtyWritebacks, res.sys.memory.reads);
    // The run is deterministic.
    const auto res2 = runStandard(cfg, 30'000, 4, 10'000);
    EXPECT_EQ(res.cycles, res2.cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

/**
 * Load @p text, requiring either a clean parse or a structured
 * rejection: any escape that is not SimError(Config) is a bug in the
 * parser's error discipline.
 */
void
expectStructuredConfigParse(const std::string &text)
{
    std::istringstream in(text);
    try {
        const SystemConfig cfg = loadConfig(in);
        cfg.validate(); // a parse that succeeds is fully valid
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Config)
            << e.what() << "\ninput:\n"
            << text;
    }
    // Any other exception type propagates and fails the test.
}

TEST(ConfigTextFuzz, DirectedRejectionsCarryTheConfigCode)
{
    // A corpus of known-bad inputs covering every rejection branch
    // of loadConfig: malformed lines, unknown keys, duplicates, bad
    // enum/number/boolean values, and semantic validation failures.
    const char *corpus[] = {
        "garbage",
        "key value",
        "= 4",
        "unknown.key = 3",
        "l1i.assoc = x",
        "l1i.size_words = 99999999999999999999999999",
        "l1i.size_words = -1",
        "write_policy = bogus",
        "l2.org = sideways",
        "load_bypass = sometimes",
        "concurrent_i_refill = maybe",
        "mmu.page_coloring = 2",
        "l1d.size_words = 1000",       // not a power of two
        "l1i.line_words = 64",         // beyond the subblock mask
        "l2.access_time = 0",
        "time_slice_cycles = 0",
        "wb.depth = 0",
        "l1i.assoc = 3",               // lines not divisible
        "name = a\nname = b",          // duplicate key
        "l1i.size_words = 4096\nl1i.size_words = 4096",
    };
    for (const char *text : corpus) {
        SCOPED_TRACE(text);
        std::istringstream in(text);
        try {
            loadConfig(in);
            FAIL() << "input was accepted";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), ErrorCode::Config) << e.what();
        }
    }
}

class ConfigTextFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConfigTextFuzz, MutatedTextParsesOrRejectsStructurally)
{
    Rng rng(GetParam() * 7919);

    // Start from a valid saved config (itself randomized) and apply
    // a handful of text-level mutations; whatever comes out must hit
    // the parse-or-structured-reject contract.
    std::ostringstream os;
    saveConfig(randomConfig(rng), os);
    std::string text = os.str();

    const unsigned mutations = 1 + rng.nextBounded(4);
    for (unsigned m = 0; m < mutations; ++m) {
        if (text.empty())
            break;
        switch (rng.nextBounded(5)) {
          case 0: { // flip one byte to a random printable char
            const std::size_t at = rng.nextBounded(text.size());
            text[at] =
                static_cast<char>(' ' + rng.nextBounded(95));
            break;
          }
          case 1: { // truncate at a random point
            text.resize(rng.nextBounded(text.size()));
            break;
          }
          case 2: { // duplicate a random line
            std::vector<std::string> lines;
            std::istringstream in(text);
            for (std::string l; std::getline(in, l);)
                lines.push_back(l);
            if (lines.empty())
                break;
            const std::size_t at = rng.nextBounded(lines.size());
            lines.insert(lines.begin() + at, lines[at]);
            std::string joined;
            for (const auto &l : lines)
                joined += l + '\n';
            text = joined;
            break;
          }
          case 3: // insert a garbage line up front
            text = "fuzz.noise = " +
                   std::to_string(rng.nextBounded(1000)) + "\n" +
                   text;
            break;
          case 4: { // delete one character (often an '=' or digit)
            const std::size_t at = rng.nextBounded(text.size());
            text.erase(at, 1);
            break;
          }
        }
    }
    SCOPED_TRACE(text);
    expectStructuredConfigParse(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigTextFuzz,
                         ::testing::Range<std::uint64_t>(1, 65));

/** A fresh scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "fuzz-" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Write a small valid trace file and return its bytes. */
std::string
validTraceBytes(const std::string &dir)
{
    const std::string path = dir + "/valid.gtrc";
    {
        trace::TraceFileWriter writer(path);
        for (int i = 0; i < 16; ++i) {
            trace::MemRef ref;
            ref.addr = 0x1000u + 4u * static_cast<Addr>(i);
            ref.kind = i % 3 == 0 ? trace::RefKind::Load
                                  : trace::RefKind::Inst;
            writer.write(ref);
        }
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Open (and fully read) @p bytes as a trace file, requiring either
 * success or SimError(TraceIO).
 */
void
expectStructuredTraceOpen(const std::string &dir,
                          const std::string &bytes)
{
    const std::string path = dir + "/mutant.gtrc";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    try {
        trace::TraceFileReader reader(path);
        trace::MemRef ref;
        while (reader.next(ref)) {
        }
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::TraceIO) << e.what();
    }
}

TEST(TraceHeaderFuzz, DirectedHeaderCorruptions)
{
    const std::string dir = scratchDir("trace-directed");
    const std::string valid = validTraceBytes(dir);

    auto expectTraceIo = [&](std::string bytes) {
        const std::string path = dir + "/bad.gtrc";
        {
            std::ofstream out(path, std::ios::binary);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
        try {
            trace::TraceFileReader reader(path);
            trace::MemRef ref;
            while (reader.next(ref)) {
            }
            FAIL() << "corrupt trace was accepted";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), ErrorCode::TraceIO) << e.what();
        }
    };

    {
        std::string bytes = valid; // bad magic
        bytes[0] = 'X';
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // version 0 (below minimum)
        bytes[4] = 0;
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // version 3 (from the future)
        bytes[4] = 3;
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // header promises one extra
        bytes[8] = static_cast<char>(bytes[8] + 1);
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // truncated mid-record
        bytes.resize(bytes.size() - 3);
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // trailing garbage
        bytes += "zzz";
        expectTraceIo(bytes);
    }
    expectTraceIo(valid.substr(0, 10)); // truncated header
    expectTraceIo("");                  // empty file
    {
        // Invalid record meta (kind bits = 3) past a valid header:
        // rejected at next(), still as trace-io.
        std::string bytes = valid;
        bytes[16 + 8] = 0x03; // first record's meta byte
        expectTraceIo(bytes);
    }

    // A version-1 byte with the same exact-size layout is accepted
    // and reported as v1 -- the compatibility window stays open.
    {
        std::string bytes = valid;
        bytes[4] = 1;
        const std::string path = dir + "/v1.gtrc";
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        trace::TraceFileReader reader(path);
        EXPECT_EQ(reader.formatVersion(), 1u);
        EXPECT_EQ(reader.recordCount(), 16u);
    }
}

class TraceHeaderFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceHeaderFuzz, MutatedFilesOpenOrRejectStructurally)
{
    Rng rng(GetParam() * 104729);
    const std::string dir =
        scratchDir("trace-" + std::to_string(GetParam()));
    std::string bytes = validTraceBytes(dir);

    const unsigned mutations = 1 + rng.nextBounded(3);
    for (unsigned m = 0; m < mutations; ++m) {
        if (bytes.empty())
            break;
        switch (rng.nextBounded(4)) {
          case 0: { // flip a random byte anywhere
            const std::size_t at = rng.nextBounded(bytes.size());
            bytes[at] = static_cast<char>(rng.nextBounded(256));
            break;
          }
          case 1: // truncate
            bytes.resize(rng.nextBounded(bytes.size()));
            break;
          case 2: { // append garbage
            const unsigned extra = 1 + rng.nextBounded(16);
            for (unsigned i = 0; i < extra; ++i)
                bytes += static_cast<char>(rng.nextBounded(256));
            break;
          }
          case 3: { // corrupt a header byte specifically
            const std::size_t at = rng.nextBounded(16);
            if (at < bytes.size())
                bytes[at] =
                    static_cast<char>(rng.nextBounded(256));
            break;
          }
        }
    }
    expectStructuredTraceOpen(dir, bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceHeaderFuzz,
                         ::testing::Range<std::uint64_t>(1, 49));

/**
 * Write a small valid v3 trace (4 blocks: 64+64+64+8 records) and
 * return its bytes.  The fixed shape lets the directed corruptions
 * below compute exact frame / seek-table / tail offsets.
 */
std::string
validV3Bytes(const std::string &dir)
{
    const std::string path = dir + "/valid.v3";
    {
        trace::TraceV3Writer writer(path, 64);
        for (int i = 0; i < 200; ++i) {
            trace::MemRef ref;
            ref.addr = 0x0040'0000u + 4u * static_cast<Addr>(i % 90);
            ref.kind = i % 5 == 0 ? trace::RefKind::Load
                                  : trace::RefKind::Inst;
            writer.write(ref);
        }
        writer.close();
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(TraceV3Fuzz, DirectedCorruptionsCarryTraceIoAndOffsets)
{
    const std::string dir = scratchDir("v3-directed");
    const std::string valid = validV3Bytes(dir);
    constexpr std::size_t kBlocks = 4;
    const std::size_t tailStart =
        valid.size() - trace::kV3TailBytes;
    const std::size_t tableStart = tailStart - kBlocks * 8;

    auto expectTraceIo = [&](std::string bytes,
                             const char *needle) {
        const std::string path = dir + "/bad.v3";
        {
            std::ofstream out(path, std::ios::binary);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
        try {
            trace::TraceV3Reader reader(path);
            trace::MemRef ref;
            while (reader.next(ref)) {
            }
            FAIL() << "corrupt v3 trace was accepted (needle '"
                   << (needle ? needle : "") << "')";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), ErrorCode::TraceIO) << e.what();
            if (needle) {
                EXPECT_NE(std::string(e.what()).find(needle),
                          std::string::npos)
                    << e.what();
            }
        }
    };
    // Rewriting the seek table must keep its checksum consistent,
    // or the checksum test would shadow the one being targeted.
    auto fixTableChecksum = [&](std::string &bytes) {
        const std::uint32_t sum = util::fnv1a32(
            bytes.data() + tableStart, tailStart - tableStart);
        for (int i = 0; i < 4; ++i)
            bytes[tailStart + 8 + static_cast<std::size_t>(i)] =
                static_cast<char>((sum >> (8 * i)) & 0xff);
    };

    expectTraceIo("", nullptr);                 // empty file
    expectTraceIo(valid.substr(0, 10), "short"); // truncated header
    {
        std::string bytes = valid; // bad magic
        bytes[0] = 'X';
        expectTraceIo(bytes, "magic");
    }
    {
        std::string bytes = valid; // version from the future
        bytes[4] = 9;
        expectTraceIo(bytes, nullptr);
    }
    {
        std::string bytes = valid; // truncated mid-file: no footer
        bytes.resize(bytes.size() / 2);
        expectTraceIo(bytes, nullptr);
    }
    {
        std::string bytes = valid; // bad footer magic
        bytes[bytes.size() - 1] =
            static_cast<char>(bytes[bytes.size() - 1] + 1);
        expectTraceIo(bytes, "footer magic");
    }
    {
        std::string bytes = valid; // seek-table checksum mismatch
        bytes[tableStart + 3] =
            static_cast<char>(bytes[tableStart + 3] ^ 0x5a);
        expectTraceIo(bytes, "seek table checksum");
    }
    {
        // Header promises one extra record: the block count still
        // adds up, so the lie surfaces at the last block's frame.
        std::string bytes = valid;
        bytes[8] = static_cast<char>(bytes[8] + 1);
        expectTraceIo(bytes, "records, expected");
    }
    {
        // Corrupt payload byte inside block 0: the frame checksum
        // catches it, byte-accurately.
        std::string bytes = valid;
        const std::size_t at =
            trace::kV3HeaderBytes + trace::kV3FrameBytes + 2;
        bytes[at] = static_cast<char>(bytes[at] ^ 0x5a);
        expectTraceIo(bytes, "payload checksum mismatch");
    }
    {
        // Frame declares one payload byte too many: frame vs seek
        // table disagreement.
        std::string bytes = valid;
        bytes[trace::kV3HeaderBytes] = static_cast<char>(
            bytes[trace::kV3HeaderBytes] + 1);
        expectTraceIo(bytes, "seek table lies");
    }
    {
        // Lying seek table (checksum made consistent): swapping two
        // interior entries breaks monotonicity.  (Entry 0 has its
        // own stricter must-be-first-block check.)
        std::string bytes = valid;
        for (std::size_t i = 0; i < 8; ++i)
            std::swap(bytes[tableStart + 8 + i],
                      bytes[tableStart + 16 + i]);
        fixTableChecksum(bytes);
        expectTraceIo(bytes, "out of bounds");
    }
    {
        // Lying seek table: an entry pointing past the file.
        std::string bytes = valid;
        for (std::size_t i = 0; i < 8; ++i)
            bytes[tableStart + 8 + i] =
                static_cast<char>(i < 4 ? 0xff : 0x00);
        fixTableChecksum(bytes);
        expectTraceIo(bytes, "out of bounds");
    }
}

TEST(TraceV3Fuzz, DirectedPayloadDecodeRejections)
{
    // Payload-level corruptions that a (correct) checksum cannot
    // rule out -- bad varints, bad escapes, bad kinds, trailing
    // bytes -- exercised through the decoder directly.  Every
    // rejection is TraceIO and names the payload byte.
    const trace::v3::BlockContext ctx{nullptr, 0, 0};
    auto expectDecodeFail =
        [&](std::vector<unsigned char> payload, std::size_t records,
            const char *needle) {
            std::vector<trace::MemRef> out(records);
            try {
                trace::v3::decodeBlock(payload.data(),
                                       payload.size(), records,
                                       out.data(), ctx);
                FAIL() << "bad payload decoded (needle '" << needle
                       << "')";
            } catch (const SimError &e) {
                EXPECT_EQ(e.code(), ErrorCode::TraceIO) << e.what();
                const std::string what = e.what();
                EXPECT_NE(what.find("payload byte"),
                          std::string::npos)
                    << what;
                EXPECT_NE(what.find(needle), std::string::npos)
                    << what;
            }
        };

    expectDecodeFail({}, 1, "payload ends mid-record");
    expectDecodeFail({0x80}, 1, "payload ends inside a varint");
    expectDecodeFail({0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                      0x80, 0x80, 0x7f},
                     1, "varint overflows 64 bits");
    expectDecodeFail({0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                      0x80, 0x80, 0x80, 0x01},
                     1, "varint longer than 64 bits");
    expectDecodeFail({0x0f}, 1, "payload ends inside a raw record");
    expectDecodeFail({0x1f}, 1, "invalid escape token");
    expectDecodeFail({0x03}, 1, "invalid record kind");
    expectDecodeFail({0x0f, 0, 0, 0, 0, 0, 0, 0, 0, 0x03}, 1,
                     "invalid record kind");
    expectDecodeFail({0x00, 0x00}, 1,
                     "trailing bytes after the last record");
}

TEST(TraceV3Fuzz, PackedDecodeRejectsALyingPackableFlag)
{
    // decodeBlockPacked trusts the header's packable flag; a record
    // that does not fit the packed u32 layout is a TraceIO error,
    // never a silent truncation.
    const trace::v3::BlockContext ctx{nullptr, 0, 0};
    auto expectPackedFail = [&](const trace::MemRef &ref,
                                const char *needle) {
        unsigned char payload[trace::kV3MaxRecordBytes];
        const std::size_t bytes =
            trace::v3::encodeBlock(&ref, 1, payload);
        std::uint32_t word = 0;
        try {
            trace::v3::decodeBlockPacked(payload, bytes, 1, &word,
                                         ctx);
            FAIL() << "unpackable record packed (needle '" << needle
                   << "')";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), ErrorCode::TraceIO) << e.what();
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };

    expectPackedFail(trace::loadRef(0x1001), // unaligned -> escape
                     "does not fit the packed layout");
    expectPackedFail(trace::loadRef(Addr{1} << 33), // word >= 2^29
                     "exceeds the packed layout");
}

/**
 * Open (and fully read) @p bytes via the version-dispatching
 * opener, requiring either success or SimError(TraceIO) -- random
 * mutation may turn a v3 file into anything.
 */
void
expectStructuredV3Open(const std::string &dir,
                       const std::string &bytes)
{
    const std::string path = dir + "/mutant.v3";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    try {
        auto reader = trace::openTraceFile(path);
        trace::MemRef ref;
        while (reader->next(ref)) {
        }
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::TraceIO) << e.what();
    }
}

class TraceV3Fuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceV3Fuzz, MutatedFilesOpenOrRejectStructurally)
{
    Rng rng(GetParam() * 15485863);
    const std::string dir =
        scratchDir("v3-" + std::to_string(GetParam()));
    std::string bytes = validV3Bytes(dir);

    const unsigned mutations = 1 + rng.nextBounded(3);
    for (unsigned m = 0; m < mutations; ++m) {
        if (bytes.empty())
            break;
        switch (rng.nextBounded(5)) {
          case 0: { // flip a random byte anywhere
            const std::size_t at = rng.nextBounded(bytes.size());
            bytes[at] = static_cast<char>(rng.nextBounded(256));
            break;
          }
          case 1: // truncate
            bytes.resize(rng.nextBounded(bytes.size()));
            break;
          case 2: { // append garbage
            const unsigned extra = 1 + rng.nextBounded(16);
            for (unsigned i = 0; i < extra; ++i)
                bytes += static_cast<char>(rng.nextBounded(256));
            break;
          }
          case 3: { // corrupt a header byte specifically
            const std::size_t at =
                rng.nextBounded(trace::kV3HeaderBytes);
            if (at < bytes.size())
                bytes[at] =
                    static_cast<char>(rng.nextBounded(256));
            break;
          }
          case 4: { // corrupt the footer region specifically
            const std::size_t span =
                std::min(bytes.size(),
                         trace::kV3TailBytes + 4 * 8);
            const std::size_t at = bytes.size() - span +
                                   rng.nextBounded(span);
            bytes[at] = static_cast<char>(rng.nextBounded(256));
            break;
          }
        }
    }
    expectStructuredV3Open(dir, bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceV3Fuzz,
                         ::testing::Range<std::uint64_t>(1, 49));

} // namespace
} // namespace gaas::core
