/**
 * @file
 * Configuration-space fuzzing: seeded random (but valid)
 * SystemConfigs drive short simulations, and the accounting
 * invariants must hold for every one of them.  This is the guard
 * against corner-case interactions the hand-written timing tests
 * do not enumerate (odd line sizes x policies x bypass modes x
 * split organisations).
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/simulator.hh"
#include "util/random.hh"

namespace gaas::core
{
namespace
{

/** Draw a random valid configuration. */
SystemConfig
randomConfig(Rng &rng)
{
    SystemConfig cfg = baseline();
    cfg.name = "fuzz";

    const std::uint64_t l1_sizes[] = {1024, 2048, 4096, 8192};
    const unsigned line_sizes[] = {4, 8, 16};
    const unsigned assocs[] = {1, 1, 2}; // bias to direct mapped

    cfg.l1i.sizeWords = l1_sizes[rng.nextBounded(4)];
    cfg.l1i.assoc = assocs[rng.nextBounded(3)];
    const unsigned line = line_sizes[rng.nextBounded(3)];
    cfg.l1i.lineWords = cfg.l1i.fetchWords = line;
    cfg.l1d = cfg.l1i;
    cfg.l1d.sizeWords = l1_sizes[rng.nextBounded(4)];

    const WritePolicy policies[] = {
        WritePolicy::WriteBack, WritePolicy::WriteMissInvalidate,
        WritePolicy::WriteOnly, WritePolicy::SubblockPlacement};
    cfg.writePolicy = policies[rng.nextBounded(4)];
    cfg.applyPolicyDefaults();
    if (cfg.writePolicy == WritePolicy::WriteBack) {
        // Victim entries must cover a full L1-D line.
        cfg.wbEntryWords = std::max(cfg.wbEntryWords,
                                    cfg.l1d.lineWords);
    } else {
        cfg.wbDepth = 1u << rng.nextBounded(5); // 1..16
    }

    const L2Org orgs[] = {L2Org::Unified, L2Org::LogicalSplit,
                          L2Org::PhysicalSplit};
    cfg.l2Org = orgs[rng.nextBounded(3)];
    cfg.l2.cache.sizeWords = 16384ull
                             << rng.nextBounded(5); // 16K..256K
    cfg.l2.cache.assoc = assocs[rng.nextBounded(3)];
    cfg.l2.accessTime = 2 + rng.nextBounded(9);
    cfg.l2i = cfg.l2d = cfg.l2;
    cfg.l2d.cache.sizeWords = 16384ull << rng.nextBounded(5);
    cfg.l2d.accessTime = 2 + rng.nextBounded(9);

    if (cfg.l2IsSplit() && rng.nextBernoulli(0.5))
        cfg.concurrentIRefill = true;
    if (isWriteThrough(cfg.writePolicy)) {
        if (cfg.writePolicy == WritePolicy::WriteOnly &&
            rng.nextBernoulli(0.3)) {
            cfg.loadBypass = LoadBypass::DirtyBit;
        } else if (rng.nextBernoulli(0.3)) {
            cfg.loadBypass = LoadBypass::Associative;
        }
    }
    if (rng.nextBernoulli(0.3)) {
        cfg.l2DirtyBuffer = true;
        cfg.memory.dirtyBuffer = true;
    }
    cfg.timeSliceCycles = 10'000u << rng.nextBounded(4);
    return cfg;
}

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConfigFuzz, InvariantsHoldOnRandomConfigs)
{
    Rng rng(GetParam());
    const SystemConfig cfg = randomConfig(rng);
    SCOPED_TRACE(cfg.describe());
    ASSERT_NO_THROW(cfg.validate());

    const auto res = runStandard(cfg, 30'000, 4, 10'000);

    // Exact cycle decomposition.
    EXPECT_EQ(res.cycles, res.instructions + res.cpuStallCycles +
                              res.comp.total());
    // The memory system never creates negative time.
    EXPECT_GE(res.cpi(), res.baseCpi());
    // Accounting consistency.
    EXPECT_EQ(res.sys.l2iAccesses, res.sys.l1iMisses);
    EXPECT_LE(res.sys.l2iMisses, res.sys.l2iAccesses);
    EXPECT_LE(res.sys.l2dMisses, res.sys.l2dAccesses);
    EXPECT_LE(res.sys.l1iMisses, res.sys.ifetches);
    EXPECT_LE(res.sys.l1dReadMisses, res.sys.loads);
    EXPECT_LE(res.sys.l1dWriteMisses, res.sys.stores);
    // Memory traffic only comes from L2 misses.
    EXPECT_EQ(res.sys.memory.reads,
              res.sys.l2iMisses + res.sys.l2dMisses);
    // Dirty writebacks cannot exceed misses.
    EXPECT_LE(res.sys.memory.dirtyWritebacks, res.sys.memory.reads);
    // The run is deterministic.
    const auto res2 = runStandard(cfg, 30'000, 4, 10'000);
    EXPECT_EQ(res.cycles, res2.cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

} // namespace
} // namespace gaas::core
