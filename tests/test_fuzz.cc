/**
 * @file
 * Configuration-space fuzzing: seeded random (but valid)
 * SystemConfigs drive short simulations, and the accounting
 * invariants must hold for every one of them.  This is the guard
 * against corner-case interactions the hand-written timing tests
 * do not enumerate (odd line sizes x policies x bypass modes x
 * split organisations).
 *
 * The second half fuzzes the *rejection* paths: mutated config text
 * and corrupted trace-file headers must either load cleanly or throw
 * a SimError with the right stable code (config / trace-io) -- never
 * an unclassified exception, never a crash.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/config_io.hh"
#include "core/simulator.hh"
#include "trace/file.hh"
#include "util/error.hh"
#include "util/random.hh"

namespace gaas::core
{
namespace
{

/** Draw a random valid configuration. */
SystemConfig
randomConfig(Rng &rng)
{
    SystemConfig cfg = baseline();
    cfg.name = "fuzz";

    const std::uint64_t l1_sizes[] = {1024, 2048, 4096, 8192};
    const unsigned line_sizes[] = {4, 8, 16};
    const unsigned assocs[] = {1, 1, 2}; // bias to direct mapped

    cfg.l1i.sizeWords = l1_sizes[rng.nextBounded(4)];
    cfg.l1i.assoc = assocs[rng.nextBounded(3)];
    const unsigned line = line_sizes[rng.nextBounded(3)];
    cfg.l1i.lineWords = cfg.l1i.fetchWords = line;
    cfg.l1d = cfg.l1i;
    cfg.l1d.sizeWords = l1_sizes[rng.nextBounded(4)];

    const WritePolicy policies[] = {
        WritePolicy::WriteBack, WritePolicy::WriteMissInvalidate,
        WritePolicy::WriteOnly, WritePolicy::SubblockPlacement};
    cfg.writePolicy = policies[rng.nextBounded(4)];
    cfg.applyPolicyDefaults();
    if (cfg.writePolicy == WritePolicy::WriteBack) {
        // Victim entries must cover a full L1-D line.
        cfg.wbEntryWords = std::max(cfg.wbEntryWords,
                                    cfg.l1d.lineWords);
    } else {
        cfg.wbDepth = 1u << rng.nextBounded(5); // 1..16
    }

    const L2Org orgs[] = {L2Org::Unified, L2Org::LogicalSplit,
                          L2Org::PhysicalSplit};
    cfg.l2Org = orgs[rng.nextBounded(3)];
    cfg.l2.cache.sizeWords = 16384ull
                             << rng.nextBounded(5); // 16K..256K
    cfg.l2.cache.assoc = assocs[rng.nextBounded(3)];
    cfg.l2.accessTime = 2 + rng.nextBounded(9);
    cfg.l2i = cfg.l2d = cfg.l2;
    cfg.l2d.cache.sizeWords = 16384ull << rng.nextBounded(5);
    cfg.l2d.accessTime = 2 + rng.nextBounded(9);

    if (cfg.l2IsSplit() && rng.nextBernoulli(0.5))
        cfg.concurrentIRefill = true;
    if (isWriteThrough(cfg.writePolicy)) {
        if (cfg.writePolicy == WritePolicy::WriteOnly &&
            rng.nextBernoulli(0.3)) {
            cfg.loadBypass = LoadBypass::DirtyBit;
        } else if (rng.nextBernoulli(0.3)) {
            cfg.loadBypass = LoadBypass::Associative;
        }
    }
    if (rng.nextBernoulli(0.3)) {
        cfg.l2DirtyBuffer = true;
        cfg.memory.dirtyBuffer = true;
    }
    cfg.timeSliceCycles = 10'000u << rng.nextBounded(4);
    return cfg;
}

class ConfigFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConfigFuzz, InvariantsHoldOnRandomConfigs)
{
    Rng rng(GetParam());
    const SystemConfig cfg = randomConfig(rng);
    SCOPED_TRACE(cfg.describe());
    ASSERT_NO_THROW(cfg.validate());

    const auto res = runStandard(cfg, 30'000, 4, 10'000);

    // Exact cycle decomposition.
    EXPECT_EQ(res.cycles, res.instructions + res.cpuStallCycles +
                              res.comp.total());
    // The memory system never creates negative time.
    EXPECT_GE(res.cpi(), res.baseCpi());
    // Accounting consistency.
    EXPECT_EQ(res.sys.l2iAccesses, res.sys.l1iMisses);
    EXPECT_LE(res.sys.l2iMisses, res.sys.l2iAccesses);
    EXPECT_LE(res.sys.l2dMisses, res.sys.l2dAccesses);
    EXPECT_LE(res.sys.l1iMisses, res.sys.ifetches);
    EXPECT_LE(res.sys.l1dReadMisses, res.sys.loads);
    EXPECT_LE(res.sys.l1dWriteMisses, res.sys.stores);
    // Memory traffic only comes from L2 misses.
    EXPECT_EQ(res.sys.memory.reads,
              res.sys.l2iMisses + res.sys.l2dMisses);
    // Dirty writebacks cannot exceed misses.
    EXPECT_LE(res.sys.memory.dirtyWritebacks, res.sys.memory.reads);
    // The run is deterministic.
    const auto res2 = runStandard(cfg, 30'000, 4, 10'000);
    EXPECT_EQ(res.cycles, res2.cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigFuzz,
                         ::testing::Range<std::uint64_t>(1, 33));

/**
 * Load @p text, requiring either a clean parse or a structured
 * rejection: any escape that is not SimError(Config) is a bug in the
 * parser's error discipline.
 */
void
expectStructuredConfigParse(const std::string &text)
{
    std::istringstream in(text);
    try {
        const SystemConfig cfg = loadConfig(in);
        cfg.validate(); // a parse that succeeds is fully valid
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Config)
            << e.what() << "\ninput:\n"
            << text;
    }
    // Any other exception type propagates and fails the test.
}

TEST(ConfigTextFuzz, DirectedRejectionsCarryTheConfigCode)
{
    // A corpus of known-bad inputs covering every rejection branch
    // of loadConfig: malformed lines, unknown keys, duplicates, bad
    // enum/number/boolean values, and semantic validation failures.
    const char *corpus[] = {
        "garbage",
        "key value",
        "= 4",
        "unknown.key = 3",
        "l1i.assoc = x",
        "l1i.size_words = 99999999999999999999999999",
        "l1i.size_words = -1",
        "write_policy = bogus",
        "l2.org = sideways",
        "load_bypass = sometimes",
        "concurrent_i_refill = maybe",
        "mmu.page_coloring = 2",
        "l1d.size_words = 1000",       // not a power of two
        "l1i.line_words = 64",         // beyond the subblock mask
        "l2.access_time = 0",
        "time_slice_cycles = 0",
        "wb.depth = 0",
        "l1i.assoc = 3",               // lines not divisible
        "name = a\nname = b",          // duplicate key
        "l1i.size_words = 4096\nl1i.size_words = 4096",
    };
    for (const char *text : corpus) {
        SCOPED_TRACE(text);
        std::istringstream in(text);
        try {
            loadConfig(in);
            FAIL() << "input was accepted";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), ErrorCode::Config) << e.what();
        }
    }
}

class ConfigTextFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ConfigTextFuzz, MutatedTextParsesOrRejectsStructurally)
{
    Rng rng(GetParam() * 7919);

    // Start from a valid saved config (itself randomized) and apply
    // a handful of text-level mutations; whatever comes out must hit
    // the parse-or-structured-reject contract.
    std::ostringstream os;
    saveConfig(randomConfig(rng), os);
    std::string text = os.str();

    const unsigned mutations = 1 + rng.nextBounded(4);
    for (unsigned m = 0; m < mutations; ++m) {
        if (text.empty())
            break;
        switch (rng.nextBounded(5)) {
          case 0: { // flip one byte to a random printable char
            const std::size_t at = rng.nextBounded(text.size());
            text[at] =
                static_cast<char>(' ' + rng.nextBounded(95));
            break;
          }
          case 1: { // truncate at a random point
            text.resize(rng.nextBounded(text.size()));
            break;
          }
          case 2: { // duplicate a random line
            std::vector<std::string> lines;
            std::istringstream in(text);
            for (std::string l; std::getline(in, l);)
                lines.push_back(l);
            if (lines.empty())
                break;
            const std::size_t at = rng.nextBounded(lines.size());
            lines.insert(lines.begin() + at, lines[at]);
            std::string joined;
            for (const auto &l : lines)
                joined += l + '\n';
            text = joined;
            break;
          }
          case 3: // insert a garbage line up front
            text = "fuzz.noise = " +
                   std::to_string(rng.nextBounded(1000)) + "\n" +
                   text;
            break;
          case 4: { // delete one character (often an '=' or digit)
            const std::size_t at = rng.nextBounded(text.size());
            text.erase(at, 1);
            break;
          }
        }
    }
    SCOPED_TRACE(text);
    expectStructuredConfigParse(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigTextFuzz,
                         ::testing::Range<std::uint64_t>(1, 65));

/** A fresh scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "fuzz-" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Write a small valid trace file and return its bytes. */
std::string
validTraceBytes(const std::string &dir)
{
    const std::string path = dir + "/valid.gtrc";
    {
        trace::TraceFileWriter writer(path);
        for (int i = 0; i < 16; ++i) {
            trace::MemRef ref;
            ref.addr = 0x1000u + 4u * static_cast<Addr>(i);
            ref.kind = i % 3 == 0 ? trace::RefKind::Load
                                  : trace::RefKind::Inst;
            writer.write(ref);
        }
    }
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Open (and fully read) @p bytes as a trace file, requiring either
 * success or SimError(TraceIO).
 */
void
expectStructuredTraceOpen(const std::string &dir,
                          const std::string &bytes)
{
    const std::string path = dir + "/mutant.gtrc";
    {
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    try {
        trace::TraceFileReader reader(path);
        trace::MemRef ref;
        while (reader.next(ref)) {
        }
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::TraceIO) << e.what();
    }
}

TEST(TraceHeaderFuzz, DirectedHeaderCorruptions)
{
    const std::string dir = scratchDir("trace-directed");
    const std::string valid = validTraceBytes(dir);

    auto expectTraceIo = [&](std::string bytes) {
        const std::string path = dir + "/bad.gtrc";
        {
            std::ofstream out(path, std::ios::binary);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
        try {
            trace::TraceFileReader reader(path);
            trace::MemRef ref;
            while (reader.next(ref)) {
            }
            FAIL() << "corrupt trace was accepted";
        } catch (const SimError &e) {
            EXPECT_EQ(e.code(), ErrorCode::TraceIO) << e.what();
        }
    };

    {
        std::string bytes = valid; // bad magic
        bytes[0] = 'X';
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // version 0 (below minimum)
        bytes[4] = 0;
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // version 3 (from the future)
        bytes[4] = 3;
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // header promises one extra
        bytes[8] = static_cast<char>(bytes[8] + 1);
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // truncated mid-record
        bytes.resize(bytes.size() - 3);
        expectTraceIo(bytes);
    }
    {
        std::string bytes = valid; // trailing garbage
        bytes += "zzz";
        expectTraceIo(bytes);
    }
    expectTraceIo(valid.substr(0, 10)); // truncated header
    expectTraceIo("");                  // empty file
    {
        // Invalid record meta (kind bits = 3) past a valid header:
        // rejected at next(), still as trace-io.
        std::string bytes = valid;
        bytes[16 + 8] = 0x03; // first record's meta byte
        expectTraceIo(bytes);
    }

    // A version-1 byte with the same exact-size layout is accepted
    // and reported as v1 -- the compatibility window stays open.
    {
        std::string bytes = valid;
        bytes[4] = 1;
        const std::string path = dir + "/v1.gtrc";
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.close();
        trace::TraceFileReader reader(path);
        EXPECT_EQ(reader.formatVersion(), 1u);
        EXPECT_EQ(reader.recordCount(), 16u);
    }
}

class TraceHeaderFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceHeaderFuzz, MutatedFilesOpenOrRejectStructurally)
{
    Rng rng(GetParam() * 104729);
    const std::string dir =
        scratchDir("trace-" + std::to_string(GetParam()));
    std::string bytes = validTraceBytes(dir);

    const unsigned mutations = 1 + rng.nextBounded(3);
    for (unsigned m = 0; m < mutations; ++m) {
        if (bytes.empty())
            break;
        switch (rng.nextBounded(4)) {
          case 0: { // flip a random byte anywhere
            const std::size_t at = rng.nextBounded(bytes.size());
            bytes[at] = static_cast<char>(rng.nextBounded(256));
            break;
          }
          case 1: // truncate
            bytes.resize(rng.nextBounded(bytes.size()));
            break;
          case 2: { // append garbage
            const unsigned extra = 1 + rng.nextBounded(16);
            for (unsigned i = 0; i < extra; ++i)
                bytes += static_cast<char>(rng.nextBounded(256));
            break;
          }
          case 3: { // corrupt a header byte specifically
            const std::size_t at = rng.nextBounded(16);
            if (at < bytes.size())
                bytes[at] =
                    static_cast<char>(rng.nextBounded(256));
            break;
          }
        }
    }
    expectStructuredTraceOpen(dir, bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceHeaderFuzz,
                         ::testing::Range<std::uint64_t>(1, 49));

} // namespace
} // namespace gaas::core
