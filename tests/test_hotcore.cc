/**
 * @file
 * Hot-core equivalence tests: the compile-time specialized simulate
 * loops (FastAccessSpec, picked by Simulator::pickLoop) must be
 * bit-identical to the generic runtime-dispatched path for every
 * configuration class they cover.  Randomized reference streams are
 * driven through both paths across direct-mapped / set-associative
 * L1s and all four write policies, and the full stats dumps are
 * compared byte for byte -- the same contract the golden harness
 * enforces across releases, applied here across code paths.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/stats_dump.hh"
#include "core/workload.hh"
#include "trace/memref.hh"
#include "trace/source.hh"
#include "util/random.hh"

namespace gaas::core
{
namespace
{

/**
 * A well-formed random reference stream: every record group is one
 * instruction followed by at most one data reference, addresses are
 * word-aligned, and the address pattern mixes sequential runs with
 * random jumps so both cache levels see hits, misses, writebacks
 * and (at assoc > 1) LRU churn.
 */
std::vector<trace::MemRef>
randomStream(std::uint64_t seed, std::size_t instructions)
{
    Rng rng(seed);
    std::vector<trace::MemRef> refs;
    refs.reserve(instructions * 2);

    Addr iaddr = 0x40'0000;
    for (std::size_t i = 0; i < instructions; ++i) {
        // Mostly straight-line code, occasional jump to a new page.
        if (rng.nextDouble() < 0.02)
            iaddr = (rng.nextBounded(1u << 22) & ~Addr{3});
        refs.push_back(
            trace::instRef(iaddr, rng.nextDouble() < 0.001));
        iaddr += 4;

        const double roll = rng.nextDouble();
        if (roll < 0.25) {
            refs.push_back(trace::loadRef(
                rng.nextBounded(1u << 20) & ~Addr{3}));
        } else if (roll < 0.40) {
            refs.push_back(trace::storeRef(
                rng.nextBounded(1u << 20) & ~Addr{3},
                rng.nextDouble() < 0.2));
        }
    }
    return refs;
}

/** Two-process workload over independent random streams. */
Workload
randomWorkload(std::uint64_t seed, std::size_t instructions)
{
    Workload wl;
    wl.add(std::make_unique<trace::VectorSource>(
               "rnd-a", randomStream(seed, instructions)),
           1.4, "rnd-a");
    wl.add(std::make_unique<trace::VectorSource>(
               "rnd-b", randomStream(seed ^ 0xabcdef, instructions)),
           1.7, "rnd-b");
    return wl;
}

/** Baseline reshaped to @p assoc L1s under @p policy. */
SystemConfig
configFor(unsigned assoc, WritePolicy policy)
{
    SystemConfig cfg = withWritePolicy(baseline(), policy);
    cfg.l1i.assoc = assoc;
    cfg.l1d.assoc = assoc;
    cfg.name = "hotcore-a" + std::to_string(assoc);
    return cfg;
}

std::string
dumpText(const SimResult &res)
{
    std::ostringstream os;
    dumpStats(res, os);
    return os.str();
}

constexpr WritePolicy kPolicies[] = {
    WritePolicy::WriteBack,
    WritePolicy::WriteMissInvalidate,
    WritePolicy::WriteOnly,
    WritePolicy::SubblockPlacement,
};

TEST(HotCore, SpecializedMatchesGenericOnRandomStreams)
{
    constexpr std::size_t kInstructions = 8'000;
    for (const unsigned assoc : {1u, 2u}) {
        for (const WritePolicy policy : kPolicies) {
            for (const std::uint64_t seed : {1ull, 42ull, 9001ull}) {
                const SystemConfig cfg = configFor(assoc, policy);

                Simulator fast(cfg,
                               randomWorkload(seed, kInstructions));
                ASSERT_FALSE(fast.usingGenericPath())
                    << "policy " << writePolicyName(policy)
                    << " assoc " << assoc
                    << " should have a specialized loop";

                Simulator generic(
                    cfg, randomWorkload(seed, kInstructions));
                generic.setForceGenericPath(true);
                ASSERT_TRUE(generic.usingGenericPath());

                const auto fastRes = fast.run(10'000, 2'000);
                const auto genRes = generic.run(10'000, 2'000);
                EXPECT_EQ(dumpText(fastRes), dumpText(genRes))
                    << "policy " << writePolicyName(policy)
                    << " assoc " << assoc << " seed " << seed;
            }
        }
    }
}

TEST(HotCore, SpecializedMatchesGenericOnStandardWorkload)
{
    // The standard synthetic workload goes through the trace arena's
    // packed replay path (when enabled), so this covers the packed
    // decode under both access paths too.
    for (const unsigned assoc : {1u, 2u}) {
        const SystemConfig cfg =
            configFor(assoc, WritePolicy::WriteBack);

        Simulator fast(cfg, Workload::standard(4, 30'000));
        ASSERT_FALSE(fast.usingGenericPath());
        Simulator generic(cfg, Workload::standard(4, 30'000));
        generic.setForceGenericPath(true);

        const auto fastRes = fast.run(25'000, 5'000);
        const auto genRes = generic.run(25'000, 5'000);
        EXPECT_EQ(dumpText(fastRes), dumpText(genRes))
            << "assoc " << assoc;
    }
}

TEST(HotCore, MixedGeometryFallsBackToGeneric)
{
    SystemConfig cfg = configFor(1, WritePolicy::WriteBack);
    cfg.l1d.assoc = 2; // mixed: dm I-side, 2-way D-side
    Simulator sim(cfg, randomWorkload(7, 1'000));
    EXPECT_TRUE(sim.usingGenericPath());
}

TEST(HotCore, EnvKnobForcesGenericPath)
{
    ::setenv("GAAS_SIM_GENERIC", "1", 1);
    {
        Simulator sim(configFor(1, WritePolicy::WriteBack),
                      randomWorkload(3, 1'000));
        EXPECT_TRUE(sim.usingGenericPath());
    }
    ::unsetenv("GAAS_SIM_GENERIC");
    {
        Simulator sim(configFor(1, WritePolicy::WriteBack),
                      randomWorkload(3, 1'000));
        EXPECT_FALSE(sim.usingGenericPath());
    }
}

} // namespace
} // namespace gaas::core
