#!/bin/sh
# Injected-failure acceptance test for per-job fault isolation.
#
# Arms GAAS_FAULT=sweep-job:5 so the 5th Fig. 6 point throws inside
# the sweep, then requires: every other point completes, the failure
# is reported once with its stable error code, the CSVs carry an
# explicit failed:<code> cell in both tables, the stats-json dir has
# a failure record alongside the 27 good dumps, and the binary exits
# nonzero only after the whole ladder drained.
#
# Usage: test_inject_fig6.sh <path-to-fig6_l2_orgs>
set -u

FIG6="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

export GAAS_BENCH_INSTRUCTIONS=10000
export GAAS_BENCH_MP=2
export GAAS_BENCH_JOBS=1
unset GAAS_BENCH_RESUME GAAS_BENCH_WATCHDOG GAAS_BENCH_PROGRESS \
      GAAS_BENCH_STATS_DIR 2>/dev/null || true

GAAS_BENCH_CSV_DIR="$WORK/csv" GAAS_FAULT=sweep-job:5 \
    "$FIG6" --stats-json "$WORK/json" \
    > "$WORK/run.out" 2>"$WORK/run.err"
status=$?
[ "$status" -eq 1 ] || fail "expected exit 1, got $status"

# The failure is reported once, with its code and config name.
grep -q "failed \[internal\]" "$WORK/run.err" \
    || fail "stderr does not report the failed point with its code"
grep -q "injected fault: sweep-job" "$WORK/run.err" \
    || fail "stderr does not carry the failure message"

# The sweep drained: 28 points, 27 ok, 1 failed.
grep -q "27 ok, 1 failed" "$WORK/run.out" \
    || fail "sweep summary does not show 27 ok / 1 failed"

for csv in fig6_l2_cpi.csv table2_l2_miss_ratios.csv; do
    [ -f "$WORK/csv/$csv" ] || fail "$csv was not written"
    # Header + 7 size rows: the ladder finished despite the failure.
    lines=$(wc -l < "$WORK/csv/$csv")
    [ "$lines" -eq 8 ] || fail "$csv has $lines lines, expected 8"
    n=$(grep -c "failed:internal" "$WORK/csv/$csv")
    [ "$n" -eq 1 ] || fail "$csv has $n failed cells, expected 1"
done

# The stats-json dir reports the failure too: 27 regular dumps plus
# exactly one failure record carrying the stable code (and the
# sweep-level telemetry dump, which is neither).
ok_dumps=$(ls "$WORK/json"/*.json \
    | grep -v '\.failed\.json$' | grep -cv '/sweep-')
[ "$ok_dumps" -eq 27 ] || fail "expected 27 stats dumps, got $ok_dumps"
failed_dumps=$(ls "$WORK/json"/*.failed.json | wc -l)
[ "$failed_dumps" -eq 1 ] \
    || fail "expected 1 failure record, got $failed_dumps"
grep -q '"code": "internal"' "$WORK/json"/*.failed.json \
    || fail "failure record does not carry the internal code"
grep -q '"status": "failed"' "$WORK/json"/*.failed.json \
    || fail "failure record does not carry the failed status"

echo "ok: injected failure isolated, reported, and exit code is 1"
exit 0
