/**
 * @file
 * Integration tests: the paper's qualitative findings, checked
 * end-to-end on scaled-down runs.  These use modest instruction
 * budgets so ctest stays fast; the bench binaries regenerate the
 * full figures.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/config.hh"
#include "core/simulator.hh"
#include "synth/suite.hh"
#include "trace/file.hh"
#include "util/logging.hh"

namespace gaas::core
{
namespace
{

constexpr Count kBudget = 1'200'000;
constexpr Count kWarmup = 600'000;

/**
 * Qualitative runs use a 50k-cycle slice so a budget of ~1M
 * instructions covers many full rotations of the 8-process round
 * robin (the paper's 500k-cycle slice needs several million
 * instructions per rotation; the bench binaries use it).
 */
SimResult
run(SystemConfig cfg, unsigned mp = 8)
{
    cfg.timeSliceCycles = 50'000;
    return runStandard(cfg, kBudget, mp, kWarmup);
}

TEST(Reproduction, BaseArchitectureLandsNearPaperCpi)
{
    const auto res = run(baseline());
    // Paper: 1.238 CPU floor, ~1.65 total.  Synthetic-workload
    // tolerance: the floor must be tight, the total in band.
    EXPECT_NEAR(res.baseCpi(), 1.238, 0.02);
    EXPECT_GT(res.cpi(), 1.40);
    EXPECT_LT(res.cpi(), 1.95);
}

TEST(Reproduction, StoreFractionMatchesPaper)
{
    const auto res = run(baseline());
    const double frac =
        static_cast<double>(res.sys.stores) /
        static_cast<double>(res.instructions);
    EXPECT_NEAR(frac, 0.0725, 0.008);
}

TEST(Reproduction, WriteBackWriteHitRateIsHigh)
{
    // Section 6: ~98% of writes hit a 4KW write-allocate D-cache.
    const auto res = run(baseline());
    EXPECT_LT(res.sys.l1dWriteMissRatio(), 0.08);
}

TEST(Reproduction, WriteThroughBeatsWriteBackAtFastL2)
{
    // Fig. 5: at 4-6 cycle L2 access times write-through wins.
    auto wb = baseline();
    wb.l2.accessTime = 4;
    auto wo = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    wo.l2.accessTime = 4;
    EXPECT_LT(run(wo).cpi(), run(wb).cpi());
}

TEST(Reproduction, WriteBackWinsAtSlowL2)
{
    // Fig. 5: beyond ~8 cycles the write-back policy wins.
    auto wb = baseline();
    wb.l2.accessTime = 12;
    auto wo = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    wo.l2.accessTime = 12;
    EXPECT_LT(run(wb).cpi(), run(wo).cpi());
}

TEST(Reproduction, WriteOnlyCloseToSubblockPlacement)
{
    // Fig. 5: in the fast-L2 region write-only performs almost as
    // well as subblock placement (within a few hundredths of CPI).
    auto wo = withWritePolicy(baseline(), WritePolicy::WriteOnly);
    auto sb =
        withWritePolicy(baseline(), WritePolicy::SubblockPlacement);
    const double gap = run(wo).cpi() - run(sb).cpi();
    EXPECT_GE(gap, -0.01); // subblock is never meaningfully worse
    EXPECT_LT(gap, 0.03);
}

TEST(Reproduction, WritePoliciesOrderedAtSixCycles)
{
    // Fig. 5 at 6 cycles: wb > wmi >= wo >= sb.
    const double wb = run(baseline()).cpi();
    const double wmi =
        run(withWritePolicy(baseline(),
                            WritePolicy::WriteMissInvalidate))
            .cpi();
    const double wo =
        run(withWritePolicy(baseline(), WritePolicy::WriteOnly))
            .cpi();
    const double sb =
        run(withWritePolicy(baseline(),
                            WritePolicy::SubblockPlacement))
            .cpi();
    EXPECT_GT(wb, wmi);
    EXPECT_GE(wmi + 0.002, wo); // wo at or below wmi (tolerance)
    EXPECT_GE(wo + 0.005, sb);  // sb at or below wo (tolerance)
}

TEST(Reproduction, OptimizedBeatsBaseline)
{
    const auto base = run(baseline());
    const auto opt = run(optimized());
    EXPECT_LT(opt.cpi(), base.cpi());
    EXPECT_LT(opt.memCpi(), base.memCpi());
    // The paper reports 54.5% memory / 13.7% total improvement; the
    // synthetic workload must land in the same direction with at
    // least half the effect.
    EXPECT_GT(1.0 - opt.memCpi() / base.memCpi(), 0.15);
}

TEST(Reproduction, PresetLadderMonotonicallyImproves)
{
    const SystemConfig steps[] = {afterWritePolicy(), afterSplitL2(),
                                  afterFetchSize(), optimized()};
    double prev = run(baseline()).cpi();
    for (const auto &cfg : steps) {
        const double cpi = run(cfg).cpi();
        EXPECT_LT(cpi, prev + 0.01) << cfg.name;
        prev = cpi;
    }
}

TEST(Reproduction, ExchangedSplitIsWorse)
{
    // Fig. 9: swapping the L2-I and L2-D sizes/speeds loses: the
    // small fast cache belongs on the instruction side.
    EXPECT_GT(run(splitL2Exchanged()).memCpi(),
              run(afterSplitL2()).memCpi());
}

TEST(Reproduction, BiggerL2ReducesMisses)
{
    auto small = afterWritePolicy();
    small.l2.cache.sizeWords = 16 * 1024;
    auto large = afterWritePolicy();
    large.l2.cache.sizeWords = 512 * 1024;
    EXPECT_GT(run(small).sys.l2MissRatio(),
              run(large).sys.l2MissRatio());
}

TEST(Reproduction, TwoWayL2HasFewerMissesThanDirectMapped)
{
    auto direct = afterWritePolicy();
    auto two_way = afterWritePolicy();
    two_way.l2.cache.assoc = 2;
    two_way.l2.accessTime = 7;
    EXPECT_GE(run(direct).sys.l2MissRatio(),
              run(two_way).sys.l2MissRatio());
}

TEST(Reproduction, MultiprogrammingBarelyMovesL1)
{
    // Fig. 2: the L1-I miss ratio is essentially flat in the
    // multiprogramming level.
    const auto mp1 = run(baseline(), 1);
    const auto mp8 = run(baseline(), 8);
    const double r1 =
        static_cast<double>(mp1.sys.l1iMisses) /
        static_cast<double>(mp1.instructions);
    const double r8 =
        static_cast<double>(mp8.sys.l1iMisses) /
        static_cast<double>(mp8.instructions);
    // Different benchmark mixes make exact equality meaningless;
    // both must sit in the same small band.
    EXPECT_LT(r1, 0.05);
    EXPECT_LT(r8, 0.05);
}

TEST(Reproduction, LongerTimeSliceImprovesCpi)
{
    // Fig. 3: more reuse with longer slices.  (Bypasses the run()
    // helper, which pins the slice.)
    auto short_slice = baseline();
    short_slice.timeSliceCycles = 10'000;
    auto long_slice = baseline();
    long_slice.timeSliceCycles = 5'000'000;
    EXPECT_GT(runStandard(short_slice, kBudget, 8, kWarmup).cpi(),
              runStandard(long_slice, kBudget, 8, kWarmup).cpi());
}

TEST(Reproduction, ConcurrencyFeaturesNeverHurt)
{
    // Fig. 10: small but nonnegative gains.
    const double before = run(afterFetchSize()).cpi();
    const double after = run(optimized()).cpi();
    EXPECT_LE(after, before + 0.002);
}

TEST(Reproduction, DirtyBufferReducesDirtyMissCost)
{
    auto without = afterLoadBypass();
    auto with = optimized();
    // Identical except the dirty buffer; CPI must not increase.
    EXPECT_LE(run(with).cpi(), run(without).cpi() + 0.002);
}

TEST(Integration, TraceFileRoundTripDrivesSimulator)
{
    // Write a short synthetic trace to disk, then simulate from the
    // file: the pixie-style flow end to end.
    const auto path = (std::filesystem::temp_directory_path() /
                       "gaas_integration.gtrc")
                          .string();
    auto spec = synth::defaultSuite()[0];
    spec.simInstructions = 20'000;
    {
        trace::TraceFileWriter writer(path);
        auto bench = synth::makeBenchmark(spec);
        writer.writeAll(*bench);
    }

    Workload wl;
    wl.add(std::make_unique<trace::TraceFileReader>(path),
           spec.baseCpi, spec.name);
    Simulator sim(baseline(), std::move(wl));
    const auto res = sim.run(20'000);
    EXPECT_EQ(res.instructions, 20'000u);

    // The file-driven run matches the generator-driven run exactly.
    Workload wl2;
    wl2.add(synth::makeBenchmark(spec), spec.baseCpi, spec.name);
    Simulator sim2(baseline(), std::move(wl2));
    const auto res2 = sim2.run(20'000);
    EXPECT_EQ(res.cycles, res2.cycles);
    EXPECT_EQ(res.sys.l1dReadMisses, res2.sys.l1dReadMisses);

    std::filesystem::remove(path);
}

TEST(Integration, SixteenProcessWorkloadRuns)
{
    const auto res = run(baseline(), 16);
    EXPECT_EQ(res.instructions, kBudget);
    EXPECT_GT(res.contextSwitches, 0u);
}

} // namespace
} // namespace gaas::core
