/**
 * @file
 * Tests for the resume journal stack: core/result_io must round-trip
 * a SimResult bit-exactly (that is what makes resumed CSVs
 * byte-identical), core/journal must survive torn trailing lines and
 * reject corrupt ones, keys must track everything that determines a
 * result, an injected journal-write fault must degrade (not abort),
 * and a journaled sweep re-run must reuse every point with results
 * indistinguishable from the first run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/journal.hh"
#include "core/result_io.hh"
#include "core/sweep.hh"
#include "obs/json.hh"
#include "util/error.hh"
#include "util/fault.hh"

namespace gaas::core
{
namespace
{

/** A fresh per-test scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "journal-" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** One small but real simulation result (nonzero counters/doubles). */
SimResult
sampleResult()
{
    SweepJob job;
    job.config = baseline();
    job.config.name = "journal-sample";
    job.mpLevel = 2;
    job.instructions = 10'000;
    job.warmup = 2'000;
    return runSweepJob(job);
}

/** The exact-serialization fingerprint of @p r (every field). */
std::string
fingerprint(const SimResult &r)
{
    return obs::writeJsonCompact(resultToJson(r));
}

/** A small two-config ladder for resume tests. */
std::vector<SweepJob>
smallLadder()
{
    std::vector<SweepJob> jobs;
    for (std::uint64_t words : {1024u, 4096u}) {
        SweepJob job;
        job.config = baseline();
        job.config.name = "jl-" + std::to_string(words) + "w";
        job.config.l1d.sizeWords = words;
        job.mpLevel = 2;
        job.instructions = 10'000;
        job.warmup = 2'000;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

TEST(ResultIo, RoundTripIsExact)
{
    const SimResult original = sampleResult();
    ASSERT_GT(original.cycles, 0u);
    ASSERT_GT(original.hostSeconds, 0.0);

    const SimResult reloaded = resultFromJson(resultToJson(original));
    // Bit-exactness of every field, host-timing doubles included --
    // the shortest-round-trip formatting must reproduce them.
    EXPECT_EQ(fingerprint(reloaded), fingerprint(original));
    EXPECT_EQ(reloaded.configName, original.configName);
    EXPECT_EQ(reloaded.cycles, original.cycles);
    EXPECT_EQ(reloaded.hostSeconds, original.hostSeconds);
    EXPECT_EQ(reloaded.hostStatsSeconds, original.hostStatsSeconds);
}

TEST(ResultIo, MissingFieldIsAStatsIoError)
{
    obs::JsonValue v = resultToJson(sampleResult());
    const std::string text = obs::writeJsonCompact(v);
    // Drop one counter by re-parsing a surgically edited dump.
    const std::string needle = "\"cycles\":";
    const auto pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos);
    const auto comma = text.find(',', pos);
    ASSERT_NE(comma, std::string::npos);
    const std::string edited =
        text.substr(0, pos) + text.substr(comma + 1);

    try {
        resultFromJson(obs::parseJson(edited));
        FAIL() << "missing field did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::StatsIO);
    }
}

TEST(ResultIo, MalformedCounterIsAStatsIoError)
{
    const std::string text =
        obs::writeJsonCompact(resultToJson(sampleResult()));
    const std::string needle = "\"instructions\":";
    const auto pos = text.find(needle);
    ASSERT_NE(pos, std::string::npos);
    std::string edited = text;
    edited.replace(pos + needle.size(), 1, "-"); // negative number
    try {
        resultFromJson(obs::parseJson(edited));
        FAIL() << "malformed field did not throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::StatsIO);
    }
}

TEST(Journal, AppendLoadRoundTrip)
{
    const std::string dir = scratchDir("roundtrip");
    const std::string path = dir + "/j.jsonl";
    const SimResult result = sampleResult();

    {
        RunJournal j;
        ASSERT_TRUE(j.open(path));
        EXPECT_EQ(j.loadedRecords(), 0u);

        JournalRecord ok;
        ok.status = PointStatus::Ok;
        ok.result = result;
        EXPECT_TRUE(j.append("aaaa", ok));

        JournalRecord failed;
        failed.status = PointStatus::Failed;
        failed.errorCode = ErrorCode::Watchdog;
        failed.error = "fatal: budget exceeded";
        EXPECT_TRUE(j.append("bbbb", failed));
    }

    RunJournal j;
    std::string error;
    ASSERT_TRUE(j.open(path, &error)) << error;
    EXPECT_EQ(j.loadedRecords(), 2u);

    const JournalRecord *ok = j.find("aaaa");
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->status, PointStatus::Ok);
    EXPECT_EQ(fingerprint(ok->result), fingerprint(result));

    const JournalRecord *failed = j.find("bbbb");
    ASSERT_NE(failed, nullptr);
    EXPECT_EQ(failed->status, PointStatus::Failed);
    EXPECT_EQ(failed->errorCode, ErrorCode::Watchdog);
    EXPECT_EQ(failed->error, "fatal: budget exceeded");

    EXPECT_EQ(j.find("cccc"), nullptr);
}

TEST(Journal, SecondLiveOpenOfTheSameJournalIsRefused)
{
    const std::string dir = scratchDir("flock");
    const std::string path = dir + "/j.jsonl";

    RunJournal holder;
    ASSERT_TRUE(holder.open(path));

    // flock is per open-file-description, so a second RunJournal in
    // the same process conflicts exactly like a second process
    // racing for the same resume directory would.
    RunJournal intruder;
    try {
        intruder.open(path);
        FAIL() << "second open of a locked journal must throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::Locked);
    }

    // The holder's lock dies with its file handle; reopening then
    // works and sees the (empty) journal.
    holder.close();
    RunJournal successor;
    std::string error;
    EXPECT_TRUE(successor.open(path, &error)) << error;
}

TEST(Journal, TornTrailingLineIsTolerated)
{
    const std::string dir = scratchDir("torn");
    const std::string path = dir + "/j.jsonl";
    {
        RunJournal j;
        ASSERT_TRUE(j.open(path));
        JournalRecord rec;
        rec.result = sampleResult();
        ASSERT_TRUE(j.append("aaaa", rec));
    }
    // Simulate a kill mid-append: a record fragment without its
    // terminating newline.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"key\":\"bbbb\",\"status\":\"o";
    }
    RunJournal j;
    std::string error;
    ASSERT_TRUE(j.open(path, &error)) << error;
    EXPECT_EQ(j.loadedRecords(), 1u);
    EXPECT_NE(j.find("aaaa"), nullptr);
    EXPECT_EQ(j.find("bbbb"), nullptr);
}

TEST(Journal, CorruptInteriorLineFailsOpen)
{
    const std::string dir = scratchDir("corrupt");
    const std::string path = dir + "/j.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a journal record\n";
    }
    RunJournal j;
    std::string error;
    EXPECT_FALSE(j.open(path, &error));
    EXPECT_NE(error.find("corrupt"), std::string::npos) << error;
    EXPECT_FALSE(j.isOpen());
}

TEST(Journal, LastRecordPerKeyWins)
{
    const std::string dir = scratchDir("lastwins");
    const std::string path = dir + "/j.jsonl";
    {
        RunJournal j;
        ASSERT_TRUE(j.open(path));
        JournalRecord failed;
        failed.status = PointStatus::Failed;
        failed.errorCode = ErrorCode::TraceIO;
        failed.error = "fatal: first try";
        ASSERT_TRUE(j.append("aaaa", failed));
        JournalRecord ok;
        ok.result = sampleResult();
        ASSERT_TRUE(j.append("aaaa", ok));
    }
    RunJournal j;
    ASSERT_TRUE(j.open(path));
    EXPECT_EQ(j.loadedRecords(), 1u);
    const JournalRecord *rec = j.find("aaaa");
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->status, PointStatus::Ok);
}

TEST(Journal, KeyTracksEverythingThatDeterminesTheResult)
{
    SweepJob job;
    job.config = baseline();
    job.mpLevel = 4;
    job.instructions = 10'000;
    job.warmup = 2'000;

    const std::string key = sweepJobKey(job);
    EXPECT_EQ(key.size(), 16u);
    EXPECT_EQ(key, sweepJobKey(job)); // stable

    auto differs = [&](SweepJob changed) {
        EXPECT_NE(sweepJobKey(changed), key);
    };
    {
        SweepJob j2 = job;
        j2.config.l1d.sizeWords *= 2;
        differs(j2);
    }
    {
        SweepJob j2 = job;
        j2.mpLevel = 8;
        differs(j2);
    }
    {
        SweepJob j2 = job;
        j2.instructions += 1;
        differs(j2);
    }
    {
        SweepJob j2 = job;
        j2.warmup += 1;
        differs(j2);
    }

    // A custom workload builder cannot be digested: no key, never
    // journaled, never reused.
    SweepJob custom = job;
    custom.workload = [] { return Workload{}; };
    EXPECT_EQ(sweepJobKey(custom), "");
}

TEST(Journal, InjectedWriteFaultDegradesButJournalStaysUsable)
{
    const std::string dir = scratchDir("fault");
    const std::string path = dir + "/j.jsonl";
    RunJournal j;
    ASSERT_TRUE(j.open(path));

    JournalRecord rec;
    rec.result = sampleResult();

    fault::configure("journal-write:1");
    EXPECT_FALSE(j.append("aaaa", rec));
    // The failed append must leave the file append-able and clean.
    EXPECT_TRUE(j.isOpen());
    EXPECT_TRUE(j.append("bbbb", rec));
    fault::reset();

    j.close();
    RunJournal reloaded;
    ASSERT_TRUE(reloaded.open(path));
    EXPECT_EQ(reloaded.loadedRecords(), 1u);
    EXPECT_EQ(reloaded.find("aaaa"), nullptr);
    EXPECT_NE(reloaded.find("bbbb"), nullptr);
}

TEST(Journal, SweepReusesJournaledPointsExactly)
{
    const std::string dir = scratchDir("resume");
    const std::string path = dir + "/j.jsonl";
    const auto jobs = smallLadder();

    std::vector<std::string> first_run;
    {
        RunJournal j;
        ASSERT_TRUE(j.open(path));
        SweepStats stats;
        const auto outcomes =
            runSweepOutcomes(jobs, 1, &stats, {}, &j);
        ASSERT_EQ(outcomes.size(), jobs.size());
        EXPECT_EQ(stats.okPoints, jobs.size());
        EXPECT_EQ(stats.reusedPoints, 0u);
        for (const auto &out : outcomes) {
            EXPECT_FALSE(out.reused);
            first_run.push_back(fingerprint(out.result));
        }
    }
    {
        RunJournal j;
        ASSERT_TRUE(j.open(path));
        EXPECT_EQ(j.loadedRecords(), jobs.size());
        SweepStats stats;
        const auto outcomes =
            runSweepOutcomes(jobs, 1, &stats, {}, &j);
        ASSERT_EQ(outcomes.size(), jobs.size());
        EXPECT_EQ(stats.reusedPoints, jobs.size());
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            EXPECT_TRUE(outcomes[i].reused);
            EXPECT_EQ(outcomes[i].status, PointStatus::Ok);
            // Exact, host-timing doubles included: the journal
            // carried the complete result.
            EXPECT_EQ(fingerprint(outcomes[i].result),
                      first_run[i]);
        }
    }
}

TEST(Journal, FailedRecordsAreReSimulatedOnResume)
{
    const std::string dir = scratchDir("refail");
    const std::string path = dir + "/j.jsonl";
    const auto jobs = smallLadder();

    {
        RunJournal j;
        ASSERT_TRUE(j.open(path));
        JournalRecord failed;
        failed.status = PointStatus::Failed;
        failed.errorCode = ErrorCode::Internal;
        failed.error = "fatal: injected earlier";
        ASSERT_TRUE(j.append(sweepJobKey(jobs[0]), failed));
    }

    RunJournal j;
    ASSERT_TRUE(j.open(path));
    SweepStats stats;
    const auto outcomes = runSweepOutcomes(jobs, 1, &stats, {}, &j);
    ASSERT_EQ(outcomes.size(), jobs.size());
    // The Failed record does not satisfy the point: it runs again
    // and succeeds this time.
    EXPECT_EQ(stats.reusedPoints, 0u);
    EXPECT_EQ(stats.okPoints, jobs.size());
    EXPECT_FALSE(outcomes[0].reused);
    EXPECT_EQ(outcomes[0].status, PointStatus::Ok);
}

} // namespace
} // namespace gaas::core
