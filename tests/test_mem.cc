/**
 * @file
 * Unit tests for the memory substrate: write-buffer timing (drain
 * scheduling, streamed overlap, full stalls, bypass variants) and
 * main-memory miss penalties with and without the dirty buffer.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "mem/write_buffer.hh"
#include "util/logging.hh"

namespace gaas::mem
{
namespace
{

WriteBufferConfig
wtBuffer(Cycles drain = 6)
{
    // The write-through shape: 8 deep, 1W entries.
    return WriteBufferConfig{8, 1, drain, 2};
}

TEST(WriteBuffer, RejectsBadConfig)
{
    EXPECT_THROW(WriteBuffer(WriteBufferConfig{0, 1, 6, 2}),
                 FatalError);
    EXPECT_THROW(WriteBuffer(WriteBufferConfig{4, 0, 6, 2}),
                 FatalError);
    EXPECT_THROW(WriteBuffer(WriteBufferConfig{4, 1, 0, 2}),
                 FatalError);
    // Overlap must be less than the drain time.
    EXPECT_THROW(WriteBuffer(WriteBufferConfig{4, 1, 2, 2}),
                 FatalError);
}

TEST(WriteBuffer, SingleEntryDrainsAtFullCost)
{
    WriteBuffer wb(wtBuffer(6));
    EXPECT_EQ(wb.push(100, 0x1000), 0u);
    EXPECT_FALSE(wb.empty(100));
    EXPECT_FALSE(wb.empty(105));
    EXPECT_TRUE(wb.empty(106)); // completes at 100 + 6
}

TEST(WriteBuffer, StreamedEntriesOverlapLatency)
{
    WriteBuffer wb(wtBuffer(6));
    wb.push(100, 0x1000); // completes at 106
    wb.push(101, 0x1004); // streams: 106 + (6 - 2) = 110
    EXPECT_FALSE(wb.empty(109));
    EXPECT_TRUE(wb.empty(110));
}

TEST(WriteBuffer, IsolatedEntriesPayFullCost)
{
    WriteBuffer wb(wtBuffer(6));
    wb.push(100, 0x1000); // completes at 106
    // Pushed after the buffer went idle: no streaming.
    wb.push(200, 0x1004); // completes at 206
    EXPECT_FALSE(wb.empty(205));
    EXPECT_TRUE(wb.empty(206));
}

TEST(WriteBuffer, FullBufferStallsProducer)
{
    WriteBuffer wb(WriteBufferConfig{2, 1, 6, 2});
    EXPECT_EQ(wb.push(100, 0x0), 0u); // completes 106
    EXPECT_EQ(wb.push(100, 0x4), 0u); // streams, completes 110
    // Third push at 100 must wait for the front entry (106).
    const Cycles stall = wb.push(100, 0x8);
    EXPECT_EQ(stall, 6u);
    EXPECT_EQ(wb.stats().fullStalls, 1u);
    EXPECT_EQ(wb.stats().fullStallCycles, 6u);
}

TEST(WriteBuffer, DrainAllWaitsForLastEntry)
{
    WriteBuffer wb(wtBuffer(6));
    wb.push(100, 0x0); // 106
    wb.push(101, 0x4); // 110
    EXPECT_EQ(wb.drainAll(104), 6u);
    EXPECT_TRUE(wb.empty(104));
    EXPECT_EQ(wb.stats().drainWaits, 1u);
    EXPECT_EQ(wb.stats().drainWaitCycles, 6u);
}

TEST(WriteBuffer, DrainAllOnEmptyIsFree)
{
    WriteBuffer wb(wtBuffer(6));
    EXPECT_EQ(wb.drainAll(100), 0u);
    wb.push(100, 0x0);
    EXPECT_EQ(wb.drainAll(500), 0u); // long since retired
}

TEST(WriteBuffer, DrainLineMatchesYoungestAndFlushesPrefix)
{
    WriteBuffer wb(wtBuffer(6));
    wb.push(100, 0x1000); // 106
    wb.push(100, 0x2000); // 110
    wb.push(100, 0x1004); // 114 (same 16B line as 0x1000)
    wb.push(100, 0x3000); // 118

    // Matching line 0x1000 must wait until the *youngest* matching
    // entry (0x1004, completes 114) retires.
    EXPECT_EQ(wb.drainLine(100, 0x1000, 16), 14u);
    // The younger non-matching entry (0x3000) is still in flight.
    EXPECT_FALSE(wb.empty(100));
    EXPECT_EQ(wb.occupancy(100), 1u);
}

TEST(WriteBuffer, DrainLineNoMatchIsBypass)
{
    WriteBuffer wb(wtBuffer(6));
    wb.push(100, 0x1000);
    EXPECT_EQ(wb.drainLine(100, 0x8000, 16), 0u);
    EXPECT_EQ(wb.stats().bypasses, 1u);
}

TEST(WriteBuffer, OccupancyAndMaxOccupancy)
{
    WriteBuffer wb(wtBuffer(6));
    wb.push(100, 0x0);
    wb.push(100, 0x4);
    wb.push(100, 0x8);
    EXPECT_EQ(wb.occupancy(100), 3u);
    EXPECT_EQ(wb.stats().maxOccupancy, 3u);
    EXPECT_EQ(wb.stats().pushes, 3u);
    // After everything retires, occupancy returns to zero.
    EXPECT_EQ(wb.occupancy(1000), 0u);
}

TEST(WriteBuffer, ResetStatsKeepsEntries)
{
    WriteBuffer wb(wtBuffer(6));
    wb.push(100, 0x0);
    wb.resetStats();
    EXPECT_EQ(wb.stats().pushes, 0u);
    EXPECT_FALSE(wb.empty(100)); // entry still draining
}

TEST(MainMemory, CleanAndDirtyPenalties)
{
    MainMemory mem(MainMemoryConfig{});
    EXPECT_EQ(mem.fetchLine(1000, false), 143u);
    EXPECT_EQ(mem.fetchLine(10000, true), 237u);
    EXPECT_EQ(mem.stats().reads, 2u);
    EXPECT_EQ(mem.stats().dirtyWritebacks, 1u);
}

TEST(MainMemory, BusContentionDelaysBackToBackMisses)
{
    MainMemory mem(MainMemoryConfig{});
    EXPECT_EQ(mem.fetchLine(1000, false), 143u); // bus busy to 1143
    // A miss 43 cycles later waits out the bus.
    EXPECT_EQ(mem.fetchLine(1043, false), 100u + 143u);
    EXPECT_EQ(mem.stats().busWaits, 1u);
    EXPECT_EQ(mem.stats().busWaitCycles, 100u);
}

TEST(MainMemory, DirtyBufferHidesWritebackFromRequester)
{
    MainMemoryConfig cfg;
    cfg.dirtyBuffer = true;
    MainMemory mem(cfg);
    // The requester sees only the clean penalty...
    EXPECT_EQ(mem.fetchLine(1000, true), 143u);
    // ...but the write-back occupies the bus afterwards: busy until
    // 1000 + 143 + (237 - 143) = 1237.
    EXPECT_EQ(mem.busyUntil(), 1237u);
    // A following miss inside that window pays the wait.
    EXPECT_EQ(mem.fetchLine(1143, false), 94u + 143u);
}

TEST(MainMemory, RejectsBadConfig)
{
    MainMemoryConfig cfg;
    cfg.cleanMissPenalty = 0;
    EXPECT_THROW(MainMemory{cfg}, FatalError);

    cfg = MainMemoryConfig{};
    cfg.dirtyMissPenalty = 100; // less than clean
    EXPECT_THROW(MainMemory{cfg}, FatalError);

    cfg = MainMemoryConfig{};
    cfg.lineWords = 0;
    EXPECT_THROW(MainMemory{cfg}, FatalError);
}

/** The write-back buffer shape from the base architecture. */
TEST(WriteBuffer, WriteBackShapeHoldsFourLineEntries)
{
    WriteBuffer wb(WriteBufferConfig{4, 4, 6, 2});
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(wb.push(100, static_cast<Addr>(i) * 16), 0u);
    EXPECT_EQ(wb.occupancy(100), 4u);
    // Fifth push stalls for the front entry.
    EXPECT_GT(wb.push(100, 0x100), 0u);
}

/** Parameterized: completion times are monotone for any drain. */
class WriteBufferDrain : public ::testing::TestWithParam<Cycles>
{
};

TEST_P(WriteBufferDrain, BackToBackStreamRetiresInOrder)
{
    const Cycles drain = GetParam();
    WriteBuffer wb(WriteBufferConfig{8, 1, drain,
                                     std::min<Cycles>(2, drain - 1)});
    Cycles now = 0;
    for (int i = 0; i < 20; ++i)
        now += wb.push(now, static_cast<Addr>(i) * 4);
    // Everything retires within depth * drain of the last push.
    EXPECT_TRUE(wb.empty(now + 8 * drain));
    // Nothing is lost: all 20 pushes were accepted.
    EXPECT_EQ(wb.stats().pushes, 20u);
}

INSTANTIATE_TEST_SUITE_P(Drains, WriteBufferDrain,
                         ::testing::Values(2, 4, 6, 8, 10));

} // namespace
} // namespace gaas::mem
