/**
 * @file
 * Unit tests for the MMU substrate: page colouring, PID-tagged
 * TLBs, and the facade.
 */

#include <gtest/gtest.h>

#include <set>

#include "mmu/mmu.hh"
#include "mmu/page_table.hh"
#include "mmu/tlb.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace gaas::mmu
{
namespace
{

constexpr unsigned kPageShift = floorLog2(kPageBytes);

TEST(PageTable, PreservesPageOffset)
{
    PageTable pt(PageTableConfig{});
    const Addr vaddr = 0x1234'5678;
    const Addr paddr = pt.translate(3, vaddr);
    EXPECT_EQ(paddr & mask(kPageShift), vaddr & mask(kPageShift));
}

TEST(PageTable, StableMapping)
{
    PageTable pt(PageTableConfig{});
    const Addr first = pt.translate(1, 0x40'0000);
    EXPECT_EQ(pt.translate(1, 0x40'0000), first);
    EXPECT_EQ(pt.translate(1, 0x40'0004), first + 4);
    EXPECT_EQ(pt.pagesAllocated(), 1u);
}

TEST(PageTable, ColoringPreservesColorBits)
{
    PageTableConfig cfg;
    cfg.colors = 64;
    cfg.coloring = true;
    PageTable pt(cfg);
    for (Addr vaddr = 0; vaddr < 256 * kPageBytes;
         vaddr += kPageBytes) {
        const Addr paddr = pt.translate(0, vaddr);
        const std::uint64_t vcolor =
            (vaddr >> kPageShift) & (cfg.colors - 1);
        const std::uint64_t pcolor =
            (paddr >> kPageShift) & (cfg.colors - 1);
        EXPECT_EQ(vcolor, pcolor) << "vaddr " << vaddr;
    }
}

TEST(PageTable, DistinctProcessesGetDistinctFrames)
{
    PageTable pt(PageTableConfig{});
    std::set<Addr> frames;
    for (Pid pid = 0; pid < 16; ++pid)
        frames.insert(pt.translate(pid, 0x40'0000) >> kPageShift);
    EXPECT_EQ(frames.size(), 16u);
    EXPECT_EQ(pt.pagesAllocated(), 16u);
}

TEST(PageTable, DistinctPagesGetDistinctFrames)
{
    PageTableConfig cfg;
    for (bool coloring : {true, false}) {
        cfg.coloring = coloring;
        PageTable pt(cfg);
        std::set<Addr> frames;
        const unsigned pages = 512;
        for (unsigned i = 0; i < pages; ++i) {
            frames.insert(
                pt.translate(1, static_cast<Addr>(i) * kPageBytes) >>
                kPageShift);
        }
        EXPECT_EQ(frames.size(), pages)
            << "coloring=" << coloring;
    }
}

TEST(PageTable, FootprintAccounting)
{
    PageTable pt(PageTableConfig{});
    pt.translate(0, 0);
    pt.translate(0, kPageBytes);
    EXPECT_EQ(pt.footprintBytes(), 2u * kPageBytes);
}

TEST(PageTable, RejectsBadColorCount)
{
    PageTableConfig cfg;
    cfg.colors = 48;
    EXPECT_THROW(PageTable{cfg}, FatalError);
    cfg.colors = 0;
    EXPECT_THROW(PageTable{cfg}, FatalError);
}

TEST(Tlb, HitAfterRefill)
{
    Tlb tlb(TlbConfig{32, 2});
    EXPECT_FALSE(tlb.access(1, 100)); // cold miss, refilled
    EXPECT_TRUE(tlb.access(1, 100));
    EXPECT_EQ(tlb.stats().accesses, 2u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, PidTagDistinguishesProcesses)
{
    Tlb tlb(TlbConfig{32, 2});
    EXPECT_FALSE(tlb.access(1, 100));
    // Same vpn, different pid: a different translation.
    EXPECT_FALSE(tlb.access(2, 100));
    EXPECT_TRUE(tlb.access(1, 100));
    EXPECT_TRUE(tlb.access(2, 100));
}

TEST(Tlb, LruReplacementWithinSet)
{
    Tlb tlb(TlbConfig{32, 2}); // 16 sets
    // Three vpns in set 0: 0, 16, 32.
    tlb.access(0, 0);
    tlb.access(0, 16);
    tlb.access(0, 0);  // touch 0: 16 becomes LRU
    tlb.access(0, 32); // evicts 16
    EXPECT_TRUE(tlb.access(0, 0));
    EXPECT_TRUE(tlb.access(0, 32));
    EXPECT_FALSE(tlb.access(0, 16));
}

TEST(Tlb, FlushEmptiesEverything)
{
    Tlb tlb(TlbConfig{32, 2});
    tlb.access(0, 5);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0, 5));
}

TEST(Tlb, RejectsBadGeometry)
{
    EXPECT_THROW(Tlb(TlbConfig{0, 2}), FatalError);
    EXPECT_THROW(Tlb(TlbConfig{32, 0}), FatalError);
    EXPECT_THROW(Tlb(TlbConfig{33, 2}), FatalError);
    EXPECT_THROW(Tlb(TlbConfig{24, 2}), FatalError); // 12 sets
}

TEST(Mmu, SplitTlbsAreIndependent)
{
    Mmu mmu(MmuConfig{});
    const Addr vaddr = 0x40'0000;
    auto r1 = mmu.translateInst(1, vaddr);
    EXPECT_TRUE(r1.tlbMiss);
    // The data TLB has not seen this page.
    auto r2 = mmu.translateData(1, vaddr);
    EXPECT_TRUE(r2.tlbMiss);
    EXPECT_EQ(r1.paddr, r2.paddr);
    EXPECT_FALSE(mmu.translateInst(1, vaddr).tlbMiss);
    EXPECT_FALSE(mmu.translateData(1, vaddr).tlbMiss);
    EXPECT_EQ(mmu.itlbStats().misses, 1u);
    EXPECT_EQ(mmu.dtlbStats().misses, 1u);
}

TEST(Mmu, NoFlushAcrossContextSwitches)
{
    // PID tagging means process 1's entries survive process 2's
    // activity (Section 3 of the paper).
    Mmu mmu(MmuConfig{});
    mmu.translateInst(1, 0x40'0000);
    for (Addr a = 0; a < 8 * kPageBytes; a += kPageBytes)
        mmu.translateInst(2, 0x80'0000 + a);
    EXPECT_FALSE(mmu.translateInst(1, 0x40'0000).tlbMiss);
}

TEST(Mmu, StatsResetKeepsTranslations)
{
    Mmu mmu(MmuConfig{});
    mmu.translateInst(1, 0x40'0000);
    mmu.resetStats();
    EXPECT_EQ(mmu.itlbStats().accesses, 0u);
    EXPECT_FALSE(mmu.translateInst(1, 0x40'0000).tlbMiss);
}

/** Parameterized: colouring property holds for any colour count. */
class PageColorSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PageColorSweep, ColorsMatch)
{
    PageTableConfig cfg;
    cfg.colors = GetParam();
    PageTable pt(cfg);
    for (Addr v = 0; v < 128 * kPageBytes; v += 3 * kPageBytes) {
        const Addr p = pt.translate(7, v);
        EXPECT_EQ((v >> kPageShift) & (cfg.colors - 1),
                  (p >> kPageShift) & (cfg.colors - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(Colors, PageColorSweep,
                         ::testing::Values(1, 2, 16, 64, 256));

} // namespace
} // namespace gaas::mmu
