/**
 * @file
 * Tests for the multi-process sweep executor (proc/executor.hh):
 * sharding across forked workers must be bit-identical to the
 * serial engine at any worker count; an injected worker SIGKILL or
 * hang costs a requeue (and a respawn), never the run; a job whose
 * workers keep dying degrades to failed:worker-lost after the
 * attempt budget; journal reuse and cooperative cancellation behave
 * exactly as in-process; and the supervision knobs parse from the
 * environment strictly.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/journal.hh"
#include "core/stats_dump.hh"
#include "core/sweep.hh"
#include "proc/executor.hh"
#include "util/error.hh"
#include "util/fault.hh"

namespace gaas::proc
{
namespace
{

using core::PointStatus;
using core::SweepJob;
using core::SweepOutcome;
using core::SweepStats;

/** A fresh per-test scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "mproc-" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/**
 * The deterministic full-stats dump: the same text goldencheck and
 * benchspeed byte-compare, so "equal dumps" is the executor's
 * bit-identity contract, not an approximation.
 */
std::string
dump(const core::SimResult &result)
{
    std::ostringstream os;
    core::dumpStats(result, os);
    return os.str();
}

/** A small L1-D ladder, TSan-sized (same shape as test_sweep's). */
std::vector<SweepJob>
ladder(std::size_t points = 6)
{
    std::vector<SweepJob> jobs;
    std::uint64_t words = 1024;
    for (std::size_t i = 0; i < points; ++i, words *= 2) {
        SweepJob job;
        job.config = core::baseline();
        job.config.name = "l1d-" + std::to_string(words) + "w";
        job.config.l1d.sizeWords = words;
        job.mpLevel = 2;
        job.instructions = 20'000;
        job.warmup = 5'000;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** Fast-failure supervision knobs so fault tests stay quick. */
MprocOptions
fastOptions(unsigned workers)
{
    MprocOptions o;
    o.workers = workers;
    o.backoffMs = 1;
    o.heartbeatMs = 20;
    o.heartbeatMiss = 5;
    return o;
}

TEST(Mproc, ShardingIsBitIdenticalToSerialAtAnyWorkerCount)
{
    const auto jobs = ladder();
    const auto serial = core::runSweepOutcomes(jobs, 1);

    for (unsigned workers : {1u, 2u, 4u}) {
        MprocOptions o;
        o.workers = workers;
        SweepStats stats;
        const auto sharded = runSweepMproc(jobs, o, &stats);
        ASSERT_EQ(sharded.size(), jobs.size()) << workers;
        EXPECT_TRUE(stats.mproc);
        EXPECT_EQ(stats.workers, workers);
        EXPECT_EQ(stats.workerRespawns, 0u);
        EXPECT_EQ(stats.requeuedJobs, 0u);
        ASSERT_EQ(stats.perJob.size(), jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " job=" + std::to_string(i));
            EXPECT_EQ(sharded[i].status, PointStatus::Ok);
            EXPECT_EQ(dump(sharded[i].result),
                      dump(serial[i].result));
            EXPECT_LT(stats.perJob[i].worker, workers);
        }
    }
}

TEST(Mproc, ThrowingJobFailsThePointNotTheWorker)
{
    fault::configure("sweep-job:2");
    auto jobs = ladder(3);
    SweepStats stats;
    const auto outcomes = runSweepMproc(jobs, fastOptions(1), &stats);
    fault::reset();

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].status, PointStatus::Ok);
    EXPECT_EQ(outcomes[1].status, PointStatus::Failed);
    EXPECT_EQ(outcomes[1].errorCode, ErrorCode::Internal);
    EXPECT_EQ(outcomes[2].status, PointStatus::Ok);
    // The worker survived the throw: no deaths, no respawns.
    EXPECT_EQ(stats.workerRespawns, 0u);
    EXPECT_EQ(stats.requeuedJobs, 0u);
}

TEST(Mproc, KilledWorkerIsRequeuedAndResultsAreIdentical)
{
    const auto jobs = ladder();
    const auto serial = core::runSweepOutcomes(jobs, 1);

    fault::configure("worker-kill:1");
    SweepStats stats;
    const auto outcomes = runSweepMproc(jobs, fastOptions(2), &stats);
    fault::reset();

    ASSERT_EQ(outcomes.size(), jobs.size());
    EXPECT_GE(stats.requeuedJobs, 1u);
    EXPECT_GE(stats.workerRespawns, 1u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(outcomes[i].status, PointStatus::Ok);
        EXPECT_EQ(dump(outcomes[i].result), dump(serial[i].result));
    }
    // Exactly one job carries the requeue in its telemetry.
    unsigned requeued = 0;
    for (const auto &js : stats.perJob)
        requeued += js.requeues;
    EXPECT_EQ(requeued, 1u);
}

TEST(Mproc, HungWorkerIsDetectedByHeartbeatAndRequeued)
{
    const auto jobs = ladder(3);
    const auto serial = core::runSweepOutcomes(jobs, 1);

    fault::configure("worker-hang:1");
    SweepStats stats;
    const auto outcomes = runSweepMproc(jobs, fastOptions(2), &stats);
    fault::reset();

    ASSERT_EQ(outcomes.size(), jobs.size());
    EXPECT_GE(stats.requeuedJobs, 1u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(outcomes[i].status, PointStatus::Ok);
        EXPECT_EQ(dump(outcomes[i].result), dump(serial[i].result));
    }
}

TEST(Mproc, PoisonJobDegradesToWorkerLostAfterAttemptBudget)
{
    // One job whose worker dies on every dispatch: after
    // maxAttempts the supervisor stops burning processes on it.
    fault::configure(
        "worker-kill:1,worker-kill:2,worker-kill:3,worker-kill:4");
    auto jobs = ladder(1);
    MprocOptions o = fastOptions(1);
    o.maxAttempts = 3;
    SweepStats stats;
    const auto outcomes = runSweepMproc(jobs, o, &stats);
    fault::reset();

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, PointStatus::Failed);
    EXPECT_EQ(outcomes[0].errorCode, ErrorCode::WorkerLost);
    EXPECT_EQ(outcomes[0].result.configName, jobs[0].config.name);
    EXPECT_EQ(stats.failedPoints, 1u);
    EXPECT_EQ(stats.requeuedJobs, 2u); // 3 attempts = 2 requeues
    ASSERT_EQ(stats.perJob.size(), 1u);
    EXPECT_EQ(stats.perJob[0].requeues, 2u);
}

TEST(Mproc, JournaledPointsAreReusedAcrossProcessModes)
{
    const std::string dir = scratchDir("journal-reuse");
    const std::string path = dir + "/journal.jsonl";
    const auto jobs = ladder(3);

    // First pass: multi-process, journaling as it goes.
    std::vector<std::string> first;
    {
        core::RunJournal journal;
        ASSERT_TRUE(journal.open(path));
        SweepStats stats;
        const auto outcomes = runSweepMproc(
            jobs, fastOptions(2), &stats, {}, &journal);
        for (const auto &out : outcomes) {
            EXPECT_EQ(out.status, PointStatus::Ok);
            EXPECT_FALSE(out.reused);
            first.push_back(dump(out.result));
        }
    }

    // Second pass reuses every point -- and the in-process engine
    // reads the same journal the process pool wrote, proving the
    // record format is shared, not parallel.
    {
        core::RunJournal journal;
        ASSERT_TRUE(journal.open(path));
        EXPECT_EQ(journal.loadedRecords(), jobs.size());
        SweepStats stats;
        const auto outcomes = runSweepMproc(
            jobs, fastOptions(2), &stats, {}, &journal);
        ASSERT_EQ(outcomes.size(), jobs.size());
        EXPECT_EQ(stats.reusedPoints, jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            EXPECT_TRUE(outcomes[i].reused);
            EXPECT_EQ(dump(outcomes[i].result), first[i]);
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(Mproc, CancelFailsQueuedPointsWithoutJournalingThem)
{
    const std::string dir = scratchDir("cancel");
    const std::string path = dir + "/journal.jsonl";
    const auto jobs = ladder(4);

    {
        core::RunJournal journal;
        ASSERT_TRUE(journal.open(path));
        core::requestSweepCancel();
        const auto outcomes = runSweepMproc(
            jobs, fastOptions(2), nullptr, {}, &journal);
        core::clearSweepCancel();
        ASSERT_EQ(outcomes.size(), jobs.size());
        for (const auto &out : outcomes) {
            EXPECT_EQ(out.status, PointStatus::Failed);
            EXPECT_EQ(out.errorCode, ErrorCode::Cancelled);
        }
    }
    // Nothing was journaled: a resumed run must re-simulate.
    core::RunJournal journal;
    ASSERT_TRUE(journal.open(path));
    EXPECT_EQ(journal.loadedRecords(), 0u);
    std::filesystem::remove_all(dir);
}

TEST(Mproc, OptionsParseFromEnvironmentStrictly)
{
    ::setenv("GAAS_MPROC_RETRIES", "7", 1);
    ::setenv("GAAS_MPROC_HEARTBEAT_MS", "123", 1);
    ::setenv("GAAS_MPROC_HEARTBEAT_MISS", "9", 1);
    ::setenv("GAAS_MPROC_BACKOFF_MS", "11", 1);
    MprocOptions o = MprocOptions::fromEnv();
    EXPECT_EQ(o.maxAttempts, 7u);
    EXPECT_EQ(o.heartbeatMs, 123u);
    EXPECT_EQ(o.heartbeatMiss, 9u);
    EXPECT_EQ(o.backoffMs, 11u);

    // Malformed values warn and keep the defaults (strict util/env).
    ::setenv("GAAS_MPROC_RETRIES", "3x", 1);
    EXPECT_EQ(MprocOptions::fromEnv().maxAttempts,
              MprocOptions{}.maxAttempts);
    for (const char *name :
         {"GAAS_MPROC_RETRIES", "GAAS_MPROC_HEARTBEAT_MS",
          "GAAS_MPROC_HEARTBEAT_MISS", "GAAS_MPROC_BACKOFF_MS"})
        ::unsetenv(name);

    ::setenv("GAAS_BENCH_MPROC", "5", 1);
    EXPECT_EQ(mprocWorkers(), 5u);
    ::unsetenv("GAAS_BENCH_MPROC");
    EXPECT_EQ(mprocWorkers(), 0u);
}

TEST(Mproc, EmptyJobListIsANoOp)
{
    SweepStats stats;
    const auto outcomes =
        runSweepMproc({}, fastOptions(4), &stats);
    EXPECT_TRUE(outcomes.empty());
    EXPECT_EQ(stats.jobs, 0u);
}

} // namespace
} // namespace gaas::proc
