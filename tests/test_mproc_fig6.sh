#!/bin/sh
# Crash-contract acceptance test for the multi-process sweep
# executor, driven through the real Fig. 6 binary.
#
# Against one uninterrupted single-threaded reference run, requires:
#   1. a multi-process run with two injected worker SIGKILLs
#      (GAAS_FAULT=worker-kill:2,worker-kill:9) completes with exit
#      0 and byte-identical CSVs and per-point JSON dumps -- the
#      requeued points are indistinguishable from never-killed ones;
#   2. an *external* `kill -9` of a live worker process mid-sweep
#      changes nothing either;
#   3. a supervisor hard-kill (bench-kill) mid-sweep under --mproc
#      is recovered by --resume, byte-identical again -- worker
#      results crossed the pipe into the same fsynced journal.
#
# Usage: test_mproc_fig6.sh <path-to-fig6_l2_orgs>
set -u

FIG6="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

export GAAS_BENCH_INSTRUCTIONS=10000
export GAAS_BENCH_MP=2
export GAAS_BENCH_JOBS=1
unset GAAS_FAULT GAAS_BENCH_RESUME GAAS_BENCH_WATCHDOG \
      GAAS_BENCH_PROGRESS GAAS_BENCH_STATS_DIR GAAS_BENCH_MPROC \
      2>/dev/null || true

CSVS="fig6_l2_cpi.csv table2_l2_miss_ratios.csv"

# The uninterrupted in-process reference.
GAAS_BENCH_CSV_DIR="$WORK/ref_csv" \
    "$FIG6" --stats-json "$WORK/ref_json" \
    > "$WORK/ref.out" 2>"$WORK/ref.err" \
    || fail "reference run exited nonzero"

# 1. Two injected worker kills: the 2nd and 9th job dispatches land
#    on workers that SIGKILL themselves mid-job.
GAAS_BENCH_CSV_DIR="$WORK/kill_csv" \
    GAAS_FAULT=worker-kill:2,worker-kill:9 \
    "$FIG6" --mproc 2 --stats-json "$WORK/kill_json" \
    > "$WORK/kill.out" 2>"$WORK/kill.err" \
    || fail "worker-kill run exited nonzero"
grep -q "worker process(es)" "$WORK/kill.out" \
    || fail "worker-kill run did not use the process executor"
grep -q "2 requeue(s)" "$WORK/kill.out" \
    || fail "worker-kill run did not report 2 requeues"
for csv in $CSVS; do
    cmp -s "$WORK/ref_csv/$csv" "$WORK/kill_csv/$csv" \
        || fail "$csv differs after injected worker kills"
done
diff -r -x 'sweep-*.json' "$WORK/ref_json" "$WORK/kill_json" \
    >/dev/null \
    || fail "per-point JSON dumps differ after injected worker kills"

# 2. An external kill -9 of a real worker process mid-sweep.  The
#    kill races the sweep; if the ladder finished before we found a
#    worker, the run still proves the no-fault path.
GAAS_BENCH_CSV_DIR="$WORK/ext_csv" \
    "$FIG6" --mproc 2 --stats-json "$WORK/ext_json" \
    > "$WORK/ext.out" 2>"$WORK/ext.err" &
PID=$!
WORKER=""
tries=0
while [ $tries -lt 50 ] && [ -z "$WORKER" ]; do
    WORKER=$(pgrep -P "$PID" 2>/dev/null | head -n 1) || WORKER=""
    [ -n "$WORKER" ] || sleep 0.1
    tries=$((tries + 1))
done
if [ -n "$WORKER" ]; then
    kill -9 "$WORKER" 2>/dev/null || true
fi
wait "$PID"
status=$?
[ "$status" -eq 0 ] || fail "external-kill run exited $status"
for csv in $CSVS; do
    cmp -s "$WORK/ref_csv/$csv" "$WORK/ext_csv/$csv" \
        || fail "$csv differs after external worker kill"
done
diff -r -x 'sweep-*.json' "$WORK/ref_json" "$WORK/ext_json" \
    >/dev/null \
    || fail "per-point JSON dumps differ after external worker kill"

# 3. Supervisor hard-kill at the 10th finalized point, resumed.
GAAS_BENCH_CSV_DIR="$WORK/sup_csv" GAAS_FAULT=bench-kill:10 \
    "$FIG6" --mproc 2 --stats-json "$WORK/sup_json" \
    --resume "$WORK/journal" \
    > "$WORK/sup_killed.out" 2>"$WORK/sup_killed.err"
status=$?
[ "$status" -eq 9 ] || fail "expected supervisor kill exit 9, got $status"
[ -f "$WORK/journal/sweep_journal.jsonl" ] \
    || fail "killed supervisor left no journal"
GAAS_BENCH_CSV_DIR="$WORK/sup_csv" \
    "$FIG6" --mproc 2 --stats-json "$WORK/sup_json" \
    --resume "$WORK/journal" \
    > "$WORK/sup_resumed.out" 2>"$WORK/sup_resumed.err" \
    || fail "resumed supervisor run exited nonzero"
grep -q "resume: 9 journaled" "$WORK/sup_resumed.out" \
    || fail "resumed run did not load 9 journaled points"
for csv in $CSVS; do
    cmp -s "$WORK/ref_csv/$csv" "$WORK/sup_csv/$csv" \
        || fail "$csv differs after supervisor kill + resume"
done
diff -r -x 'sweep-*.json' "$WORK/ref_json" "$WORK/sup_json" \
    >/dev/null \
    || fail "per-point JSON dumps differ after supervisor kill + resume"

echo "ok: worker kills, external kills and a supervisor crash all" \
     "leave the fig6 products byte-identical"
exit 0
