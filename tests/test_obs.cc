/**
 * @file
 * Tests for the observability layer: registry ordering and expansion,
 * the JSON exporter's exact byte format, parse/re-emit round-trips,
 * the SimResult stats schema, serial-vs-parallel dump identity, and
 * the wall-clock timers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/stats_dump.hh"
#include "core/sweep.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "stats/distribution.hh"
#include "util/logging.hh"

namespace gaas
{
namespace
{

TEST(Registry, KeepsRegistrationOrderAndSections)
{
    obs::Registry r;
    EXPECT_TRUE(r.empty());
    r.beginSection("alpha");
    r.counter("a.events", 3, "events");
    r.beginSection("beta");
    r.value("b.ratio", 0.5, "ratio");
    r.beginSection("beta"); // consecutive identical titles merge
    r.counter("b.total", 7, "total");

    ASSERT_EQ(r.entries().size(), 3u);
    EXPECT_EQ(r.entries()[0].name, "a.events");
    EXPECT_EQ(r.entries()[0].section, "alpha");
    EXPECT_EQ(r.entries()[1].name, "b.ratio");
    EXPECT_EQ(r.entries()[1].section, "beta");
    EXPECT_EQ(r.entries()[2].section, "beta");

    const obs::Entry *found = r.find("b.ratio");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->kind, obs::Kind::Value);
    EXPECT_DOUBLE_EQ(found->value, 0.5);
    EXPECT_EQ(r.find("missing"), nullptr);
}

TEST(Registry, DuplicateNameIsFatal)
{
    obs::Registry r;
    r.counter("dup", 1, "first");
    EXPECT_THROW(r.counter("dup", 2, "second"), FatalError);
}

TEST(Registry, SampleStatExpandsToMoments)
{
    stats::SampleStat s;
    s.add(2.0);
    s.add(4.0);

    obs::Registry r;
    r.sampleStat("occ", s, "occupancy");
    ASSERT_EQ(r.entries().size(), 5u);
    EXPECT_EQ(r.entries()[0].name, "occ.count");
    EXPECT_EQ(r.entries()[0].count, 2u);
    EXPECT_EQ(r.entries()[1].name, "occ.mean");
    EXPECT_DOUBLE_EQ(r.entries()[1].value, 3.0);
    EXPECT_EQ(r.entries()[2].name, "occ.stddev");
    EXPECT_EQ(r.entries()[3].name, "occ.min");
    EXPECT_EQ(r.entries()[4].name, "occ.max");
    EXPECT_DOUBLE_EQ(r.entries()[4].value, 4.0);
}

TEST(Registry, HistogramRegistersBothTails)
{
    stats::Histogram h(1.0, 4);
    for (double x : {-2.0, 0.5, 3.5, 9.0})
        h.add(x);

    obs::Registry r;
    r.histogram("dist", h, "a distribution");

    const obs::Entry *under = r.find("dist.underflow");
    ASSERT_NE(under, nullptr);
    EXPECT_EQ(under->count, 1u);
    const obs::Entry *over = r.find("dist.overflow");
    ASSERT_NE(over, nullptr);
    EXPECT_EQ(over->count, 1u);
    const obs::Entry *buckets = r.find("dist.buckets");
    ASSERT_NE(buckets, nullptr);
    EXPECT_EQ(buckets->kind, obs::Kind::Buckets);
    const std::vector<Count> want{1, 0, 0, 1};
    EXPECT_EQ(buckets->buckets, want);
    EXPECT_NE(r.find("dist.mean"), nullptr);
}

TEST(Json, ExporterGoldenSnapshot)
{
    obs::Registry r;
    r.counter("sim.instructions", 42, "instructions");
    r.value("sim.cpi", 1.5, "cpi");
    r.counter("l1d.loads", 7, "loads");

    EXPECT_EQ(obs::writeJsonString(obs::toJson(r)),
              "{\n"
              "  \"sim\": {\n"
              "    \"instructions\": 42,\n"
              "    \"cpi\": 1.5\n"
              "  },\n"
              "  \"l1d\": {\n"
              "    \"loads\": 7\n"
              "  }\n"
              "}\n");
}

TEST(Json, HistogramBecomesInlineArray)
{
    stats::Histogram h(2.0, 3);
    h.add(1.0);
    h.add(5.0);

    obs::Registry r;
    r.histogram("d", h, "demo");
    const std::string text = obs::writeJsonString(obs::toJson(r));
    EXPECT_NE(text.find("\"buckets\": [1, 0, 1]"), std::string::npos)
        << text;
    EXPECT_NE(text.find("\"bucket_width\": 2"), std::string::npos);
}

TEST(Json, NonFiniteValuesBecomeNull)
{
    obs::Registry r;
    r.value("x.nan", std::nan(""), "not a number");
    const std::string text = obs::writeJsonString(obs::toJson(r));
    EXPECT_NE(text.find("\"nan\": null"), std::string::npos) << text;
    // ... and null survives the round trip.
    EXPECT_EQ(obs::writeJsonString(obs::parseJson(text)), text);
}

TEST(Json, LeafPrefixConflictIsFatal)
{
    obs::Registry r;
    r.counter("a.b", 1, "leaf");
    r.counter("a.b.c", 2, "needs a.b to be an object");
    EXPECT_THROW(obs::toJson(r), FatalError);
}

TEST(Json, ParserRejectsMalformedInput)
{
    EXPECT_THROW(obs::parseJson(""), FatalError);
    EXPECT_THROW(obs::parseJson("{"), FatalError);
    EXPECT_THROW(obs::parseJson("{} trailing"), FatalError);
    EXPECT_THROW(obs::parseJson("{\"a\": 01x}"), FatalError);
}

TEST(Json, RoundTripPreservesNumberTokens)
{
    const std::string text = "{\n"
                             "  \"a\": 0.30000000000000004,\n"
                             "  \"b\": [1, 2.5, -3e-7],\n"
                             "  \"c\": \"quote \\\" slash \\\\\"\n"
                             "}\n";
    EXPECT_EQ(obs::writeJsonString(obs::parseJson(text)), text);
}

/** A fully hand-built, deterministic SimResult. */
core::SimResult
sampleResult()
{
    core::SimResult res;
    res.configName = "unit";
    res.instructions = 1000;
    res.cycles = 1650;
    res.cpuStallCycles = 238;
    res.contextSwitches = 4;
    res.syscallSwitches = 1;
    res.comp.l1iMiss = 100;
    res.comp.l1dMiss = 90;
    res.comp.l1Writes = 80;
    res.comp.wbWait = 70;
    res.comp.l2iMiss = 40;
    res.comp.l2dMiss = 30;
    res.comp.tlb = 2;
    res.sys.ifetches = 1000;
    res.sys.l1iMisses = 50;
    res.sys.loads = 250;
    res.sys.l1dReadMisses = 25;
    res.sys.stores = 120;
    res.sys.l1dWriteMisses = 12;
    res.sys.writeOnlyReadMisses = 3;
    res.sys.l2iAccesses = 50;
    res.sys.l2iMisses = 5;
    res.sys.l2dAccesses = 37;
    res.sys.l2dMisses = 4;
    res.sys.l2DirtyMisses = 2;
    res.sys.l2WriteAllocates = 6;
    res.sys.wb.pushes = 120;
    res.sys.wb.maxOccupancy = 3;
    res.sys.memory.reads = 9;
    res.sys.itlb.accesses = 1000;
    res.sys.dtlb.accesses = 370;
    res.sys.dtlb.misses = 7;
    return res;
}

TEST(StatsJson, SchemaMatchesFlatDump)
{
    const core::SimResult res = sampleResult();
    const obs::Registry reg = core::collectStats(res);

    // Every flat-dump statistic is present under its dotted name.
    const obs::Entry *instructions = reg.find("sim.instructions");
    ASSERT_NE(instructions, nullptr);
    EXPECT_EQ(instructions->count, 1000u);
    const obs::Entry *cpi = reg.find("sim.cpi");
    ASSERT_NE(cpi, nullptr);
    EXPECT_DOUBLE_EQ(cpi->value, 1.65);
    EXPECT_NE(reg.find("cpi.wb_wait"), nullptr);
    EXPECT_NE(reg.find("l1d.write_only_read_misses"), nullptr);
    EXPECT_NE(reg.find("l2.write_allocates"), nullptr);
    EXPECT_NE(reg.find("wb.max_occupancy"), nullptr);
    EXPECT_NE(reg.find("mem.bus_wait_cycles"), nullptr);
    EXPECT_NE(reg.find("itlb.miss_ratio"), nullptr);
    EXPECT_NE(reg.find("dtlb.misses"), nullptr);
}

TEST(StatsJson, ConfigNameLeadsAndValuesNest)
{
    std::ostringstream os;
    core::dumpStatsJson(sampleResult(), os);
    const obs::JsonValue doc = obs::parseJson(os.str());

    ASSERT_FALSE(doc.members.empty());
    EXPECT_EQ(doc.members[0].first, "config");
    EXPECT_EQ(doc.members[0].second.scalar, "unit");

    const obs::JsonValue *sim = doc.member("sim");
    ASSERT_NE(sim, nullptr);
    const obs::JsonValue *insts = sim->member("instructions");
    ASSERT_NE(insts, nullptr);
    EXPECT_EQ(insts->scalar, "1000");

    const obs::JsonValue *dtlb = doc.member("dtlb");
    ASSERT_NE(dtlb, nullptr);
    ASSERT_NE(dtlb->member("misses"), nullptr);
    EXPECT_EQ(dtlb->member("misses")->scalar, "7");
}

TEST(StatsJson, DumpRoundTripsByteIdentically)
{
    std::ostringstream os;
    core::dumpStatsJson(sampleResult(), os);
    const std::string emitted = os.str();
    EXPECT_EQ(obs::writeJsonString(obs::parseJson(emitted)), emitted);
}

TEST(StatsJson, SerialAndParallelSweepsDumpIdentically)
{
    std::vector<core::SweepJob> jobs(3);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].config = core::baseline();
        jobs[i].config.name = "par-" + std::to_string(i);
        jobs[i].config.l1d.sizeWords = 1024u << i;
        jobs[i].mpLevel = 2;
        jobs[i].instructions = 10'000;
        jobs[i].warmup = 2'000;
    }

    const auto serial = core::runSweep(jobs, 1);
    const auto pooled = core::runSweep(jobs, 4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        std::ostringstream a, b;
        core::dumpStatsJson(serial[i], a);
        core::dumpStatsJson(pooled[i], b);
        EXPECT_EQ(a.str(), b.str()) << "job " << i;
    }
}

TEST(Timers, StopwatchIsMonotonic)
{
    const obs::Stopwatch w;
    const double first = w.seconds();
    const double second = w.seconds();
    EXPECT_GE(first, 0.0);
    EXPECT_GE(second, first);
}

TEST(Timers, ScopedTimerAccumulates)
{
    double acc = 0.0;
    {
        obs::ScopedTimer t(acc);
        EXPECT_GE(t.seconds(), 0.0);
        EXPECT_DOUBLE_EQ(acc, 0.0); // only added on destruction
    }
    const double once = acc;
    EXPECT_GE(once, 0.0);
    {
        obs::ScopedTimer t(acc);
    }
    EXPECT_GE(acc, once);
}

} // namespace
} // namespace gaas
