/**
 * @file
 * Unit tests for the directed-test trace patterns themselves (their
 * cache-level consequences are covered in test_directed.cc).
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/compose.hh"
#include "trace/patterns.hh"
#include "util/logging.hh"

namespace gaas::trace
{
namespace
{

TEST(SequentialPattern, EmitsExactInstructionCount)
{
    SequentialPattern::Params p;
    p.instructions = 1000;
    SequentialPattern src(p);
    MemRef ref;
    Count inst = 0;
    while (src.next(ref)) {
        if (ref.isInst())
            ++inst;
    }
    EXPECT_EQ(inst, 1000u);
}

TEST(SequentialPattern, InstructionAddressesWrap)
{
    SequentialPattern::Params p;
    p.instFootprintWords = 16;
    p.instructions = 40;
    SequentialPattern src(p);
    MemRef ref;
    std::set<Addr> unique;
    while (src.next(ref))
        unique.insert(ref.addr);
    EXPECT_EQ(unique.size(), 16u);
}

TEST(SequentialPattern, DataRefsInterleaveAndMark)
{
    SequentialPattern::Params p;
    p.instructions = 100;
    p.dataFootprintWords = 64;
    p.storeEvery = 4;
    SequentialPattern src(p);
    MemRef ref;
    Count loads = 0, stores = 0;
    while (src.next(ref)) {
        if (ref.isLoad())
            ++loads;
        if (ref.isStore())
            ++stores;
    }
    EXPECT_EQ(loads + stores, 100u);
    EXPECT_EQ(stores, 25u);
}

TEST(SequentialPattern, ResetReplays)
{
    SequentialPattern::Params p;
    p.instructions = 50;
    p.dataFootprintWords = 32;
    SequentialPattern src(p);
    const auto first = collect(src, 1000);
    src.reset();
    EXPECT_EQ(collect(src, 1000), first);
}

TEST(SequentialPattern, RejectsBadParams)
{
    SequentialPattern::Params p;
    p.instFootprintWords = 0;
    EXPECT_THROW(SequentialPattern{p}, FatalError);
    p = SequentialPattern::Params{};
    p.instructions = 0;
    EXPECT_THROW(SequentialPattern{p}, FatalError);
}

TEST(ConflictPattern, CyclesThroughWays)
{
    ConflictPattern::Params p;
    p.ways = 3;
    p.instructions = 9;
    ConflictPattern src(p);
    MemRef ref;
    std::vector<Addr> data;
    while (src.next(ref)) {
        if (ref.isData())
            data.push_back(ref.addr);
    }
    ASSERT_EQ(data.size(), 9u);
    EXPECT_EQ(data[0], data[3]);
    EXPECT_EQ(data[1], data[4]);
    EXPECT_NE(data[0], data[1]);
    // Spacing equals the configured stride.
    EXPECT_EQ(data[1] - data[0], p.strideBytes);
}

TEST(ConflictPattern, StoresModeEmitsStores)
{
    ConflictPattern::Params p;
    p.stores = true;
    p.instructions = 10;
    ConflictPattern src(p);
    MemRef ref;
    while (src.next(ref)) {
        if (ref.isData()) {
            EXPECT_TRUE(ref.isStore());
        }
    }
}

TEST(ConflictPattern, RejectsZeroWays)
{
    ConflictPattern::Params p;
    p.ways = 0;
    EXPECT_THROW(ConflictPattern{p}, FatalError);
}

TEST(RandomPattern, StaysInFootprintAndIsDeterministic)
{
    RandomPattern::Params p;
    p.footprintWords = 128;
    p.instructions = 500;
    RandomPattern a(p), b(p);
    MemRef ra, rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra, rb);
        if (ra.isData()) {
            EXPECT_GE(ra.addr, p.dataBase);
            EXPECT_LT(ra.addr,
                      p.dataBase + wordsToBytes(p.footprintWords));
        }
    }
}

TEST(RandomPattern, StoreFractionApproximate)
{
    RandomPattern::Params p;
    p.instructions = 20000;
    p.storeFrac = 0.25;
    RandomPattern src(p);
    MemRef ref;
    Count stores = 0, data = 0;
    while (src.next(ref)) {
        if (ref.isData()) {
            ++data;
            if (ref.isStore())
                ++stores;
        }
    }
    EXPECT_NEAR(static_cast<double>(stores) /
                    static_cast<double>(data),
                0.25, 0.02);
}

TEST(RandomPattern, ResetReplays)
{
    RandomPattern::Params p;
    p.instructions = 200;
    RandomPattern src(p);
    const auto first = collect(src, 1000);
    src.reset();
    EXPECT_EQ(collect(src, 1000), first);
}

} // namespace
} // namespace gaas::trace
