#!/bin/sh
# Kill-and-resume acceptance test for the sweep journal.
#
# Runs the Fig. 6 ladder three ways with a reduced budget:
#   1. uninterrupted (the reference),
#   2. with an injected hard kill (std::_Exit) at the 10th point,
#   3. resumed from the journal the killed run left behind,
# then requires the resumed CSVs and per-point JSON dumps to be
# byte-identical to the reference -- the journal carried complete,
# bit-exact results through the kill.
#
# Usage: test_resume_fig6.sh <path-to-fig6_l2_orgs>
set -u

FIG6="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# Small deterministic budget; one worker so the injected fault hit
# count is deterministic across the process.
export GAAS_BENCH_INSTRUCTIONS=10000
export GAAS_BENCH_MP=2
export GAAS_BENCH_JOBS=1
unset GAAS_FAULT GAAS_BENCH_RESUME GAAS_BENCH_WATCHDOG \
      GAAS_BENCH_PROGRESS GAAS_BENCH_STATS_DIR 2>/dev/null || true

# 1. The uninterrupted reference run.
GAAS_BENCH_CSV_DIR="$WORK/ref_csv" \
    "$FIG6" --stats-json "$WORK/ref_json" \
    > "$WORK/ref.out" 2>"$WORK/ref.err" \
    || fail "reference run exited nonzero"

# 2. The killed run: bench-kill fires on the 10th completed point,
#    exiting 9 with no flushes -- only fsynced journal records and
#    atomically published files may survive.
GAAS_BENCH_CSV_DIR="$WORK/res_csv" GAAS_FAULT=bench-kill:10 \
    "$FIG6" --stats-json "$WORK/res_json" --resume "$WORK/journal" \
    > "$WORK/killed.out" 2>"$WORK/killed.err"
status=$?
[ "$status" -eq 9 ] || fail "expected kill exit 9, got $status"
[ -f "$WORK/journal/sweep_journal.jsonl" ] \
    || fail "killed run left no journal"

# 3. The resumed run: must report exactly the 9 points journaled
#    before the kill and finish the rest.
GAAS_BENCH_CSV_DIR="$WORK/res_csv" \
    "$FIG6" --stats-json "$WORK/res_json" --resume "$WORK/journal" \
    > "$WORK/resumed.out" 2>"$WORK/resumed.err" \
    || fail "resumed run exited nonzero"
grep -q "resume: 9 journaled" "$WORK/resumed.out" \
    || fail "resumed run did not load 9 journaled points"
grep -q "9 reused" "$WORK/resumed.out" \
    || fail "resumed run did not reuse 9 points"

# Byte-identical products.
for csv in fig6_l2_cpi.csv table2_l2_miss_ratios.csv; do
    cmp -s "$WORK/ref_csv/$csv" "$WORK/res_csv/$csv" \
        || fail "$csv differs between reference and resumed run"
done
# sweep-*.json holds host timings and arena hit counts, which
# legitimately differ between the reference and the resumed run.
diff -r -x 'sweep-*.json' "$WORK/ref_json" "$WORK/res_json" \
    >/dev/null \
    || fail "per-point JSON dumps differ"

echo "ok: kill-and-resume is byte-identical to the reference run"
exit 0
