/**
 * @file
 * Sampled-simulation suite (ctest label: sampling): the Student-t
 * table, the infeasible-budget fallback's byte-identity with a
 * full-detail run, run-to-run determinism, and the headline
 * accuracy contract -- on seeded Fig. 6 points the full-detail CPI
 * lies within the sampled run's reported 95% confidence interval.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/sampling.hh"
#include "core/simulator.hh"
#include "core/workload.hh"

namespace gaas::core
{
namespace
{

/** One Fig. 6 ladder configuration (see tools/benchspeed.cc). */
SystemConfig
fig6Point(std::uint64_t size_words, L2Org org, unsigned assoc,
          Cycles access_time)
{
    SystemConfig cfg = afterWritePolicy();
    cfg.l2Org = org;
    cfg.l2.cache.sizeWords = size_words;
    cfg.l2.cache.assoc = assoc;
    cfg.l2.accessTime = access_time;
    return cfg;
}

TEST(StudentT, TabulatedAndBracketedValues)
{
    EXPECT_DOUBLE_EQ(studentT95(1), 12.706);
    EXPECT_DOUBLE_EQ(studentT95(8), 2.306);
    EXPECT_DOUBLE_EQ(studentT95(16), 2.120);
    EXPECT_DOUBLE_EQ(studentT95(30), 2.042);
    // Between tabulated rows the lower row's (larger) multiplier
    // applies, so intervals stay conservative.
    EXPECT_DOUBLE_EQ(studentT95(35), 2.042);
    EXPECT_DOUBLE_EQ(studentT95(40), 2.021);
    EXPECT_DOUBLE_EQ(studentT95(60), 2.000);
    EXPECT_DOUBLE_EQ(studentT95(120), 1.980);
    EXPECT_DOUBLE_EQ(studentT95(100000), 1.980);
    // df 0 cannot occur (the controller floors it at 1) but must
    // not index out of the table.
    EXPECT_DOUBLE_EQ(studentT95(0), 12.706);
    // The multiplier never increases with df.
    double prev = studentT95(1);
    for (Count df = 2; df <= 200; ++df) {
        EXPECT_LE(studentT95(df), prev) << "df " << df;
        prev = studentT95(df);
    }
}

TEST(Sampling, InfeasibleBudgetFallsBackToExactFullDetail)
{
    const SystemConfig cfg = afterWritePolicy();
    SamplingConfig plan;
    plan.enabled = true;
    // minIntervals episodes cannot fit: the period is smaller than
    // one warm+head+body burst, so the controller must run the
    // point in full detail.
    const Count total = 500'000;
    const Count warmup = 100'000;

    SimResult sampled = runSampled(cfg, plan, total, 2, warmup);
    EXPECT_EQ(sampled.sampling.intervals, 0u)
        << "expected the full-detail fallback";
    EXPECT_EQ(sampled.sampling.passes, 1u);

    Simulator sim(cfg, Workload::standard(2, warmup + total));
    const SimResult full = sim.run(total, warmup);
    EXPECT_EQ(sampled.instructions, full.instructions);
    EXPECT_EQ(sampled.cycles, full.cycles);
    EXPECT_EQ(sampled.references(), full.references());
    EXPECT_DOUBLE_EQ(sampled.sampling.cpiMean, full.cpi());
}

TEST(Sampling, DeterministicAcrossRuns)
{
    const SystemConfig cfg =
        fig6Point(64 * 1024, L2Org::Unified, 2, 7);
    SamplingConfig plan;
    plan.enabled = true;
    const SimResult a = runSampled(cfg, plan, 2'000'000, 8, 500'000);
    const SimResult b = runSampled(cfg, plan, 2'000'000, 8, 500'000);
    EXPECT_EQ(a.sampling.intervals, b.sampling.intervals);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.sampling.cpiMean, b.sampling.cpiMean);
    EXPECT_DOUBLE_EQ(a.sampling.cpiHalfWidth,
                     b.sampling.cpiHalfWidth);
}

/**
 * The accuracy contract on three seeded Fig. 6 points spanning the
 * L2 size axis: the full-detail CPI of the identical (config, mp,
 * budget) point must lie within the sampled run's reported CI, and
 * the sampled run must measure a small fraction of the budget.
 * Both runs are deterministic, so this is a regression gate, not a
 * statistical coin flip.
 */
TEST(Sampling, FullDetailCpiWithinReportedCiOnFig6Points)
{
    const SystemConfig points[] = {
        fig6Point(32 * 1024, L2Org::Unified, 1, 6),
        fig6Point(128 * 1024, L2Org::LogicalSplit, 2, 7),
        fig6Point(512 * 1024, L2Org::Unified, 2, 7),
    };
    const Count total = 4'000'000;
    const Count warmup = 2'000'000;
    SamplingConfig plan;
    plan.enabled = true;

    for (const SystemConfig &cfg : points) {
        SCOPED_TRACE(std::to_string(cfg.l2.cache.sizeWords / 1024) +
                     "KW L2");
        const SimResult full = runStandard(cfg, total, 8, warmup);
        const SimResult s = runSampled(cfg, plan, total, 8, warmup);

        ASSERT_GT(s.sampling.intervals, 0u);
        EXPECT_GE(s.sampling.intervals, plan.minIntervals);
        EXPECT_NEAR(s.sampling.cpiMean, full.cpi(),
                    s.sampling.cpiHalfWidth);
        // The headline cpi() is pinned to the stratified estimate.
        EXPECT_NEAR(s.cpi(), s.sampling.cpiMean, 1e-6);
        // The CI never collapses below the documented systematic
        // allowance for finite warming depth.
        EXPECT_GE(s.sampling.cpiHalfWidth,
                  plan.warmingBiasRel * s.sampling.cpiMean);
        // Detail work is the point of sampling: the measured span
        // must be a small fraction of the budget.
        EXPECT_LT(s.sampling.measuredInstructions, total / 4);
        EXPECT_GT(s.sampling.skippedInstructions, total / 2);
    }
}

} // namespace
} // namespace gaas::core
