#!/bin/sh
# Graceful-shutdown test for the figure binaries: SIGTERM mid-sweep
# must drain in-flight points, flush the journal, still emit the
# partial CSVs (cancelled cells spelled failed:cancelled) and exit
# with the distinct drain code 3 -- and a --resume rerun must then
# finish the ladder byte-identically to an uninterrupted run.
#
# The signal races the sweep: if the ladder finishes before SIGTERM
# lands, the interrupted phase degenerates to a clean run (exit 0)
# and the test only checks final byte-identity.
#
# Usage: test_sigterm_fig6.sh <path-to-fig6_l2_orgs>
set -u

FIG6="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

export GAAS_BENCH_INSTRUCTIONS=25000
export GAAS_BENCH_MP=2
export GAAS_BENCH_JOBS=1
unset GAAS_FAULT GAAS_BENCH_RESUME GAAS_BENCH_WATCHDOG \
      GAAS_BENCH_PROGRESS GAAS_BENCH_STATS_DIR GAAS_BENCH_MPROC \
      2>/dev/null || true

CSVS="fig6_l2_cpi.csv table2_l2_miss_ratios.csv"

# The uninterrupted in-process reference.
GAAS_BENCH_CSV_DIR="$WORK/ref_csv" "$FIG6" \
    > "$WORK/ref.out" 2>"$WORK/ref.err" \
    || fail "reference run exited nonzero"

# Interrupted run: wait for the first finished point, then SIGTERM.
GAAS_BENCH_CSV_DIR="$WORK/cut_csv" \
    "$FIG6" --mproc 2 --progress --resume "$WORK/journal" \
    > "$WORK/cut.out" 2>"$WORK/cut.err" &
PID=$!
tries=0
while [ $tries -lt 200 ]; do
    grep -q '\[point ' "$WORK/cut.err" 2>/dev/null && break
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
    tries=$((tries + 1))
done
kill -TERM "$PID" 2>/dev/null || true
wait "$PID"
status=$?

if [ "$status" -eq 3 ]; then
    # Drained mid-sweep: the partial CSVs must exist, and unless
    # every point had already finished simulating, carry cancelled
    # cells.
    for csv in $CSVS; do
        [ -f "$WORK/cut_csv/$csv" ] \
            || fail "interrupted run left no $csv"
    done
    grep -q 'cancelled' "$WORK/cut.out" \
        || grep -q 'failed:cancelled' "$WORK/cut_csv/fig6_l2_cpi.csv" \
        || fail "drain exit 3 but no cancelled points anywhere"
elif [ "$status" -eq 0 ]; then
    echo "note: sweep finished before SIGTERM landed;" \
         "only checking byte-identity" >&2
else
    fail "interrupted run exited $status (want 3, or 0 on race)"
fi

# Resume and finish the ladder; products must match the reference.
GAAS_BENCH_CSV_DIR="$WORK/cut_csv" \
    "$FIG6" --mproc 2 --resume "$WORK/journal" \
    > "$WORK/res.out" 2>"$WORK/res.err" \
    || fail "resumed run exited nonzero"
for csv in $CSVS; do
    cmp -s "$WORK/ref_csv/$csv" "$WORK/cut_csv/$csv" \
        || fail "$csv differs after SIGTERM drain + resume"
done

echo "ok: SIGTERM drains, exits 3 and the resumed ladder is" \
     "byte-identical"
exit 0
