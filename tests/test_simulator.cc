/**
 * @file
 * Tests for the Workload and Simulator layers: scheduling, CPI
 * accounting, warmup, determinism, and trace-driven operation.
 */

#include <gtest/gtest.h>

#include <cctype>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/config.hh"
#include "core/simulator.hh"
#include "core/stats_dump.hh"
#include "core/workload.hh"
#include "trace/source.hh"
#include "util/logging.hh"

namespace gaas::core
{
namespace
{

/** A workload of one in-memory trace. */
Workload
vectorWorkload(std::vector<trace::MemRef> refs, double base_cpi = 1.0)
{
    Workload wl;
    wl.add(std::make_unique<trace::VectorSource>("vec",
                                                 std::move(refs)),
           base_cpi, "vec");
    return wl;
}

TEST(Workload, FromSpecsAssignsPidsInOrder)
{
    Workload wl = Workload::standard(4);
    EXPECT_EQ(wl.size(), 4u);
    auto procs = wl.take();
    for (std::size_t i = 0; i < procs.size(); ++i)
        EXPECT_EQ(procs[i].pid, static_cast<Pid>(i));
}

TEST(Workload, RejectsBadInput)
{
    Workload wl;
    EXPECT_THROW(wl.add(nullptr, 1.2, "x"), FatalError);
    EXPECT_THROW(wl.add(std::make_unique<trace::VectorSource>(
                            "x", std::vector<trace::MemRef>{}),
                        0.9, "x"),
                 FatalError);
}

TEST(Simulator, RequiresAProcess)
{
    EXPECT_THROW(Simulator(baseline(), Workload{}), FatalError);
}

TEST(Simulator, CountsInstructionsAndCycles)
{
    // Three plain instructions, base CPI 1.0, all L1 hits after the
    // first fetch: cycles = 3 + first-miss penalty.
    std::vector<trace::MemRef> refs = {
        trace::instRef(0x40'0000),
        trace::instRef(0x40'0004),
        trace::instRef(0x40'0008),
    };
    Simulator sim(baseline(), vectorWorkload(refs));
    const auto res = sim.run(100);
    EXPECT_EQ(res.instructions, 3u);
    // One cold L1-I miss: 6 (L2) + 143 (memory).
    EXPECT_EQ(res.cycles, 3u + 6u + 143u);
    EXPECT_DOUBLE_EQ(res.baseCpi(), 1.0);
}

TEST(Simulator, BaseCpiAccumulatesFractionally)
{
    // 1000 identical instructions at base CPI 1.25: the Bresenham
    // accumulator must land exactly.
    std::vector<trace::MemRef> refs;
    for (int i = 0; i < 1000; ++i)
        refs.push_back(trace::instRef(0x40'0000));
    Simulator sim(baseline(), vectorWorkload(refs, 1.25));
    const auto res = sim.run(1000);
    EXPECT_EQ(res.cpuStallCycles, 250u);
    EXPECT_NEAR(res.baseCpi(), 1.25, 1e-9);
}

TEST(Simulator, DataRefsBelongToPrecedingInstruction)
{
    std::vector<trace::MemRef> refs = {
        trace::instRef(0x40'0000),
        trace::loadRef(0x1000'0000),
        trace::instRef(0x40'0004),
        trace::storeRef(0x1000'0100),
    };
    Simulator sim(baseline(), vectorWorkload(refs));
    const auto res = sim.run(100);
    EXPECT_EQ(res.instructions, 2u);
    EXPECT_EQ(res.sys.loads, 1u);
    EXPECT_EQ(res.sys.stores, 1u);
}

TEST(Simulator, MalformedTraceIsFatal)
{
    // A data reference with no preceding instruction.
    std::vector<trace::MemRef> refs = {trace::loadRef(0x1000)};
    Simulator sim(baseline(), vectorWorkload(refs));
    EXPECT_THROW(sim.run(10), FatalError);
}

TEST(Simulator, StopsWhenNonLoopingTraceEnds)
{
    std::vector<trace::MemRef> refs = {
        trace::instRef(0x40'0000),
        trace::instRef(0x40'0004),
    };
    Simulator sim(baseline(), vectorWorkload(refs));
    const auto res = sim.run(1'000'000);
    EXPECT_EQ(res.instructions, 2u);
}

TEST(Simulator, SyscallForcesContextSwitch)
{
    // Two processes; process 0's second instruction is a syscall.
    std::vector<trace::MemRef> a = {
        trace::instRef(0x40'0000),
        trace::instRef(0x40'0004, /*syscall=*/true),
        trace::instRef(0x40'0008),
    };
    std::vector<trace::MemRef> b = {
        trace::instRef(0x80'0000),
        trace::instRef(0x80'0004),
        trace::instRef(0x80'0008),
    };
    Workload wl;
    wl.add(std::make_unique<trace::VectorSource>("a", a), 1.0, "a");
    wl.add(std::make_unique<trace::VectorSource>("b", b), 1.0, "b");
    Simulator sim(baseline(), std::move(wl));
    const auto res = sim.run(6);
    EXPECT_EQ(res.instructions, 6u);
    EXPECT_GE(res.syscallSwitches, 1u);
    EXPECT_GE(res.contextSwitches, res.syscallSwitches);
}

TEST(Simulator, TimeSliceRotatesProcesses)
{
    // A tiny slice forces many switches even without syscalls.
    auto cfg = baseline();
    cfg.timeSliceCycles = 50;
    auto specs = synth::workloadSpecs(2);
    for (auto &spec : specs)
        spec.syscallsPerMInstr = 0.0;
    Simulator sim(cfg, Workload::fromSpecs(specs));
    const auto res = sim.run(10'000);
    EXPECT_GT(res.contextSwitches, 50u);
    EXPECT_EQ(res.syscallSwitches, 0u);
}

TEST(Simulator, WarmupExcludedFromMeasurement)
{
    auto specs = synth::workloadSpecs(1);
    Simulator cold(baseline(), Workload::fromSpecs(specs));
    const auto cold_res = cold.run(50'000);

    Simulator warm(baseline(), Workload::fromSpecs(specs));
    const auto warm_res = warm.run(50'000, 50'000);

    EXPECT_EQ(warm_res.instructions, 50'000u);
    // The warmed run must show a lower CPI: cold caches inflate the
    // early misses.
    EXPECT_LT(warm_res.cpi(), cold_res.cpi());
}

TEST(Simulator, DeterministicAcrossRuns)
{
    const auto a = runStandard(baseline(), 50'000, 4);
    const auto b = runStandard(baseline(), 50'000, 4);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.sys.l1iMisses, b.sys.l1iMisses);
    EXPECT_EQ(a.sys.l2dMisses, b.sys.l2dMisses);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
}

TEST(Simulator, CpiDecomposesExactly)
{
    // total cycles = instructions + cpu stalls + memory stalls.
    const auto res = runStandard(baseline(), 100'000, 4);
    EXPECT_EQ(res.cycles, res.instructions + res.cpuStallCycles +
                              res.comp.total());
    EXPECT_NEAR(res.cpi(),
                res.baseCpi() + res.memCpi(), 1e-9);
}

TEST(Simulator, ProcessesAreIsolatedByPid)
{
    // Two processes running the *same* trace must not share cache
    // lines: the second process's fetches miss on their own.
    std::vector<trace::MemRef> refs = {
        trace::instRef(0x40'0000),
        trace::instRef(0x40'0000),
    };
    Workload wl;
    wl.add(std::make_unique<trace::VectorSource>("p0", refs), 1.0,
           "p0");
    wl.add(std::make_unique<trace::VectorSource>("p1", refs), 1.0,
           "p1");
    auto cfg = baseline();
    cfg.timeSliceCycles = 1'000'000; // p0 runs to completion first
    Simulator sim(cfg, std::move(wl));
    const auto res = sim.run(4);
    EXPECT_EQ(res.sys.l1iMisses, 2u);
}

TEST(Simulator, ResultCarriesConfigName)
{
    const auto res = runStandard(optimized(), 10'000, 2);
    EXPECT_EQ(res.configName, "optimized");
    EXPECT_FALSE(res.formatBreakdown().empty());
}

TEST(SimResult, RatiosAndBreakdownFormat)
{
    const auto res = runStandard(baseline(), 50'000, 2);
    EXPECT_GE(res.sys.l1iMissRatio(), 0.0);
    EXPECT_LE(res.sys.l1iMissRatio(), 1.0);
    EXPECT_GE(res.sys.l2MissRatio(), 0.0);
    EXPECT_LE(res.sys.l2MissRatio(), 1.0);
    const std::string text = res.formatBreakdown();
    EXPECT_NE(text.find("L1-I miss"), std::string::npos);
    EXPECT_NE(text.find("total"), std::string::npos);
}

/**
 * Property sweep: the CPI decomposition identity and stats sanity
 * hold under every write policy and L2 organisation.
 */
struct PolicyOrgCase
{
    WritePolicy policy;
    L2Org org;
};

class PolicyOrgSweep
    : public ::testing::TestWithParam<PolicyOrgCase>
{
};

TEST_P(PolicyOrgSweep, InvariantsHold)
{
    auto cfg = withWritePolicy(baseline(), GetParam().policy);
    cfg.l2Org = GetParam().org;
    const auto res = runStandard(cfg, 60'000, 4);

    // Decomposition identity.
    EXPECT_EQ(res.cycles, res.instructions + res.cpuStallCycles +
                              res.comp.total());
    // The memory system only adds cycles.
    EXPECT_GE(res.cpi(), res.baseCpi());
    // L2 sees exactly the L1 misses (refills; write-buffer drains
    // update state without counting as timed accesses).
    EXPECT_EQ(res.sys.l2iAccesses, res.sys.l1iMisses);
    EXPECT_EQ(res.sys.l2dAccesses,
              res.sys.l1dReadMisses +
                  (GetParam().policy == WritePolicy::WriteBack
                       ? res.sys.l1dWriteMisses
                       : 0u));
    // Miss counts never exceed accesses.
    EXPECT_LE(res.sys.l2iMisses, res.sys.l2iAccesses);
    EXPECT_LE(res.sys.l2dMisses, res.sys.l2dAccesses);
    EXPECT_LE(res.sys.l1iMisses, res.sys.ifetches);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PolicyOrgSweep,
    ::testing::Values(
        PolicyOrgCase{WritePolicy::WriteBack, L2Org::Unified},
        PolicyOrgCase{WritePolicy::WriteBack, L2Org::LogicalSplit},
        PolicyOrgCase{WritePolicy::WriteMissInvalidate,
                      L2Org::Unified},
        PolicyOrgCase{WritePolicy::WriteMissInvalidate,
                      L2Org::LogicalSplit},
        PolicyOrgCase{WritePolicy::WriteOnly, L2Org::Unified},
        PolicyOrgCase{WritePolicy::WriteOnly, L2Org::LogicalSplit},
        PolicyOrgCase{WritePolicy::SubblockPlacement,
                      L2Org::Unified},
        PolicyOrgCase{WritePolicy::SubblockPlacement,
                      L2Org::LogicalSplit}),
    [](const auto &info) {
        std::string name =
            std::string(writePolicyName(info.param.policy)) + "_" +
            l2OrgName(info.param.org);
        for (char &ch : name) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

TEST(StatsDump, EmitsEverySection)
{
    const auto res = runStandard(baseline(), 20'000, 2);
    std::ostringstream os;
    dumpStats(res, os);
    const std::string text = os.str();
    for (const char *needle :
         {"sim.cpi", "cpi.l1i_miss", "l1d.write_miss_ratio",
          "l2.dirty_misses", "wb.max_occupancy", "mem.reads",
          "dtlb.miss_ratio"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST(StatsDump, FileRoundTrip)
{
    const auto res = runStandard(baseline(), 10'000, 1);
    const auto path = (std::filesystem::temp_directory_path() /
                       "gaas_stats_dump.txt")
                          .string();
    ASSERT_TRUE(dumpStatsFile(res, path));
    std::ifstream in(path);
    std::string first;
    std::getline(in, first);
    EXPECT_NE(first.find("gaascache statistics"), std::string::npos);
    std::filesystem::remove(path);
}

TEST(StatsDump, UnwritablePathReturnsFalse)
{
    const auto res = runStandard(baseline(), 5'000, 1);
    setLogQuiet(true);
    EXPECT_FALSE(dumpStatsFile(res, "/nonexistent/dir/stats.txt"));
    setLogQuiet(false);
}

} // namespace
} // namespace gaas::core
