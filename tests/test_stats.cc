/**
 * @file
 * Unit tests for the stats package: tables and distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "stats/distribution.hh"
#include "stats/table.hh"
#include "util/logging.hh"

namespace gaas::stats
{
namespace
{

TEST(SampleStat, EmptyIsZero)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleStat, MeanAndVariance)
{
    SampleStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleStat, MergeMatchesCombinedStream)
{
    SampleStat a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double x = i * 0.37;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleStat, MergeWithEmpty)
{
    SampleStat a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    SampleStat b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleStat, MergeEmptyIntoEmpty)
{
    SampleStat a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(SampleStat, MergeSingleSamples)
{
    SampleStat lo, hi;
    lo.add(2.0);
    hi.add(4.0);
    lo.merge(hi);
    EXPECT_EQ(lo.count(), 2u);
    EXPECT_DOUBLE_EQ(lo.mean(), 3.0);
    EXPECT_DOUBLE_EQ(lo.variance(), 1.0);
    EXPECT_DOUBLE_EQ(lo.min(), 2.0);
    EXPECT_DOUBLE_EQ(lo.max(), 4.0);
}

TEST(SampleStat, UnbiasedSampleVarianceAndStdError)
{
    SampleStat s;
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stdError(), 0.0);
    s.add(3.0);
    // A single sample has no spread information.
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stdError(), 0.0);
    s.add(5.0);
    // {3, 5}: population variance 1, unbiased sample variance 2,
    // standard error sqrt(2 / 2) = 1.
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 2.0);
    EXPECT_DOUBLE_EQ(s.stdError(), 1.0);
}

TEST(SampleStat, RandomizedAddAndMergeMatchTwoPassReference)
{
    // Deterministic xorshift stream spanning several orders of
    // magnitude, to stress the streaming (Welford/Chan) update
    // against a plain two-pass computation.
    std::uint64_t x = 0x243F6A8885A308D3ull;
    auto nextU = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    std::vector<double> values;
    for (int i = 0; i < 2000; ++i) {
        const double u =
            static_cast<double>(nextU() >> 11) * 0x1p-53;
        values.push_back((u - 0.5) * std::pow(10.0, i % 5));
    }

    // Two-pass reference moments.
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    const double mean = sum / static_cast<double>(values.size());
    double ss = 0.0;
    for (const double v : values)
        ss += (v - mean) * (v - mean);
    const double sampleVar =
        ss / static_cast<double>(values.size() - 1);
    const double stdErr =
        std::sqrt(sampleVar / static_cast<double>(values.size()));

    // Stream the values into a randomly-cut sequence of shards and
    // merge them back together, as the sweep engine does.
    std::vector<SampleStat> shards(1);
    for (const double v : values) {
        if (nextU() % 7 == 0)
            shards.emplace_back();
        shards.back().add(v);
    }
    SampleStat merged;
    for (const SampleStat &s : shards)
        merged.merge(s);

    EXPECT_EQ(merged.count(), values.size());
    EXPECT_NEAR(merged.mean(), mean, 1e-9 * std::fabs(mean) + 1e-12);
    EXPECT_NEAR(merged.sampleVariance(), sampleVar,
                1e-9 * sampleVar);
    EXPECT_NEAR(merged.stdError(), stdErr, 1e-9 * stdErr);
}

TEST(Histogram, BucketsAndBothTails)
{
    Histogram h(1.0, 10);
    for (int i = 0; i < 5; ++i)
        h.add(static_cast<double>(i));
    h.add(100.0);
    h.add(-1.0); // counts into the underflow tail, not bucket 0
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.moments().count(), 7u);
    EXPECT_DOUBLE_EQ(h.moments().min(), -1.0);

    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.moments().count(), 0u);
}

TEST(Histogram, CdfAndQuantile)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    // Samples sit on bucket lower edges, so the CDF is exact at
    // bucket boundaries: P(x < 49) is exactly 49/100.
    EXPECT_DOUBLE_EQ(h.cdf(49.0), 0.49);
    EXPECT_DOUBLE_EQ(h.cdf(49.5), 0.50);
    EXPECT_DOUBLE_EQ(h.cdf(100.0), 1.0);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, CdfCountsBothTailsExactly)
{
    Histogram h(1.0, 10);
    for (double x : {-3.0, -0.5, 0.0, 9.0, 10.0, 100.0})
        h.add(x);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.overflow(), 2u);

    // Below zero only the underflow tail counts.
    EXPECT_DOUBLE_EQ(h.cdf(-1.0), 2.0 / 6.0);
    // x == 0 is a bucket boundary: bucket 0 is NOT below it.
    EXPECT_DOUBLE_EQ(h.cdf(0.0), 2.0 / 6.0);
    // The top boundary excludes the overflow tail ...
    EXPECT_DOUBLE_EQ(h.cdf(10.0), 4.0 / 6.0);
    // ... which only enters past the covered range.
    EXPECT_DOUBLE_EQ(h.cdf(11.0), 1.0);

    // A quantile that lands in the underflow tail pins to 0.
    EXPECT_DOUBLE_EQ(h.quantile(0.1), 0.0);
}

TEST(Histogram, QuantileUsesCeilRank)
{
    // A single sample far from zero: every quantile -- including
    // q = 0, whose rank must floor at 1, not truncate to an empty
    // prefix -- names that sample's bucket upper edge.
    Histogram h(1.0, 100);
    h.add(41.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

TEST(Histogram, QuantileStepsAtExactRankBoundaries)
{
    Histogram h(1.0, 10);
    for (double v : {0.5, 1.5, 2.5, 3.5})
        h.add(v);
    // rank = ceil(q * 4): q in (0, 1/4] names the 1st order
    // statistic, (1/4, 2/4] the 2nd, and so on -- the boundary
    // itself must NOT step up.
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.26), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.75), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.76), 4.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, RejectsBadConfig)
{
    EXPECT_THROW(Histogram(0.0, 10), FatalError);
    EXPECT_THROW(Histogram(1.0, 0), FatalError);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"config", "cpi"});
    t.setTitle("demo");
    t.newRow().cell("base").cell(1.6531, 4);
    t.newRow().cell("optimized").cell(1.4270, 4);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("config"), std::string::npos);
    EXPECT_NE(out.find("1.6531"), std::string::npos);
    EXPECT_NE(out.find("optimized"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"name", "note"});
    t.newRow().cell("a,b").cell("say \"hi\"");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, WriteCsvRoundTrip)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "gaas_table_test.csv";
    Table t({"x", "y"});
    t.newRow().cell(std::uint64_t{1}).cell(2.5, 1);
    ASSERT_TRUE(t.writeCsv(path.string()));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2.5");
    std::filesystem::remove(path);
}

TEST(Table, RequiresColumns)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(Table, RowCounting)
{
    Table t({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.newRow().cell(1);
    t.newRow().cell(2);
    EXPECT_EQ(t.rowCount(), 2u);
    EXPECT_EQ(t.columnCount(), 1u);
}

} // namespace
} // namespace gaas::stats
