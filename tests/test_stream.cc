/**
 * @file
 * Tests for the v3 block-compressed trace format (trace/v3.hh) and
 * the bounded-memory streaming reader (trace/stream.hh): encode /
 * decode round trips across every token shape, O(1) skip semantics
 * mirroring the ArenaSource/LoopSource contracts, the memory-ceiling
 * error path, journal keying by content digest, and -- the one that
 * matters -- bit-identical simulation results between in-memory
 * arena replay and streaming replay on pinned design points.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hh"
#include "core/stats_dump.hh"
#include "core/sweep.hh"
#include "synth/benchmark.hh"
#include "synth/suite.hh"
#include "trace/compose.hh"
#include "trace/packed.hh"
#include "trace/stream.hh"
#include "trace/v3.hh"
#include "util/error.hh"

namespace gaas::trace
{
namespace
{

/**
 * Deterministic multi-block trace hitting every packable token
 * shape: +1 instruction deltas (the one-byte fast path), small and
 * large positive/negative data deltas, syscall and partial-word
 * meta bits.  All addresses are word aligned and below 2^31, so the
 * whole trace fits the packed u32 layout.
 */
std::vector<MemRef>
packableTrace(std::size_t n)
{
    std::vector<MemRef> refs;
    refs.reserve(n);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    Addr pc = 0x0040'0000;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        switch (x & 7u) {
          case 0:
            refs.push_back(
                loadRef(((x >> 8) & 0x1fff'ffffu) << 2));
            break;
          case 1:
            refs.push_back(
                storeRef(((x >> 8) & 0x1fff'ffffu) << 2,
                         /*partial_word=*/(x & 0x100) != 0));
            break;
          case 2:
            refs.push_back(loadRef(0x1000'0000 + ((x >> 8) & 0xfcu)));
            break;
          default:
            refs.push_back(instRef(pc, /*syscall=*/(x & 0x700) == 0));
            pc += 4;
            break;
        }
    }
    return refs;
}

/** packableTrace plus escape-token records: unaligned addresses and
 *  addresses past the 2^31 packed-layout ceiling. */
std::vector<MemRef>
escapeTrace(std::size_t n)
{
    std::vector<MemRef> refs = packableTrace(n);
    for (std::size_t i = 7; i < refs.size(); i += 13)
        refs[i] = loadRef(0x1000'0001 + 9 * static_cast<Addr>(i));
    for (std::size_t i = 11; i < refs.size(); i += 29)
        refs[i] = storeRef((Addr{1} << 40) + 4 * static_cast<Addr>(i));
    return refs;
}

std::vector<MemRef>
drainAll(TraceSource &src)
{
    // Large enough for every trace in this file; collect() reserves
    // its limit up front, so "unbounded" must stay modest.
    return collect(src, 1u << 20);
}

class StreamTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test case AND per process: ctest -j runs each
        // case as its own concurrent process (see test_trace.cc).
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir = std::filesystem::temp_directory_path() /
              ("gaas_stream_test_" + std::string(info->name()) +
               "_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::string
    writeV3(const std::string &name, const std::vector<MemRef> &refs,
            std::uint32_t block_refs = kV3DefaultBlockRefs)
    {
        const std::string path = (dir / name).string();
        TraceV3Writer writer(path, block_refs);
        for (const MemRef &ref : refs)
            writer.write(ref);
        writer.close();
        return path;
    }

    std::filesystem::path dir;
};

TEST_F(StreamTest, RoundTripMultiBlockPackable)
{
    const auto refs = packableTrace(1000);
    const std::string path = writeV3("t.v3", refs, 64);

    const V3FileInfo info = v3FileInfo(path);
    EXPECT_EQ(info.records, refs.size());
    EXPECT_EQ(info.blockRefs, 64u);
    EXPECT_TRUE(info.packable());

    TraceV3Reader reader(path);
    EXPECT_EQ(drainAll(reader), refs);

    // reset() replays from the top, bit-identically.
    reader.reset();
    EXPECT_EQ(drainAll(reader), refs);
}

TEST_F(StreamTest, RoundTripEscapeTokens)
{
    // Unaligned and >2^31 addresses force the 0x0F escape token;
    // they must survive the round trip and clear the packable flag.
    const auto refs = escapeTrace(500);
    const std::string path = writeV3("esc.v3", refs, 32);

    EXPECT_FALSE(v3FileInfo(path).packable());
    TraceV3Reader reader(path);
    EXPECT_EQ(drainAll(reader), refs);
}

TEST_F(StreamTest, DigestIsContentNotName)
{
    const auto refs = packableTrace(300);
    const std::string a = writeV3("a.v3", refs, 64);
    const std::string b = writeV3("renamed-copy.v3", refs, 64);
    EXPECT_EQ(v3FileInfo(a).digest, v3FileInfo(b).digest);

    auto more = refs;
    more.push_back(instRef(0x123'4560));
    const std::string c = writeV3("c.v3", more, 64);
    EXPECT_NE(v3FileInfo(a).digest, v3FileInfo(c).digest);
}

TEST_F(StreamTest, ReaderSkipMatchesDiscardedReads)
{
    // Mirror of LoopSource.SkipMatchesDiscardedReads: skip(n) must
    // land exactly where n discarded reads would -- inside the
    // current block, on a block boundary, across several blocks --
    // from a cold reader and mid-stream.
    const auto refs = packableTrace(200);
    const std::string path = writeV3("skip.v3", refs, 32);

    for (std::size_t pre : {std::size_t{0}, std::size_t{3},
                            std::size_t{50}}) {
        for (std::size_t skip :
             {std::size_t{0}, std::size_t{1}, std::size_t{31},
              std::size_t{32}, std::size_t{33}, std::size_t{95},
              std::size_t{149}}) {
            TraceV3Reader skipped(path);
            TraceV3Reader read(path);
            (void)collect(skipped, pre);
            (void)collect(read, pre);
            ASSERT_EQ(skipped.skip(skip), skip)
                << "pre " << pre << " skip " << skip;
            (void)collect(read, skip);
            EXPECT_EQ(drainAll(skipped), drainAll(read))
                << "pre " << pre << " skip " << skip;
        }
    }
}

TEST_F(StreamTest, ReaderSkipClampsAtEof)
{
    const auto refs = packableTrace(100);
    const std::string path = writeV3("clamp.v3", refs, 32);

    TraceV3Reader reader(path);
    EXPECT_EQ(reader.skip(refs.size() + 12345), refs.size());
    MemRef ref;
    EXPECT_FALSE(reader.next(ref));

    // ... which is exactly what LoopSource needs to learn the pass
    // length and wrap (same contract as ArenaSource).
    LoopSource looped(std::make_unique<TraceV3Reader>(path));
    const std::size_t skip = 3 * refs.size() + 17;
    EXPECT_EQ(looped.skip(skip), skip);
    ASSERT_TRUE(looped.next(ref));
    EXPECT_EQ(ref, refs[17]);
}

TEST_F(StreamTest, StreamMatchesReaderForEveryBatchSize)
{
    const auto refs = packableTrace(400);
    const std::string path = writeV3("batch.v3", refs, 64);

    for (std::size_t batch :
         {std::size_t{1}, std::size_t{3}, std::size_t{63},
          std::size_t{64}, std::size_t{65}, std::size_t{200},
          std::size_t{1000}}) {
        StreamSource stream(path);
        std::vector<MemRef> got;
        std::vector<MemRef> buf(batch);
        for (;;) {
            const std::size_t n =
                stream.nextBatch(buf.data(), batch);
            got.insert(got.end(), buf.begin(), buf.begin() + n);
            if (n < batch)
                break;
        }
        EXPECT_EQ(got, refs) << "batch " << batch;
    }
}

TEST_F(StreamTest, StreamPackedPathUnpacksIdentically)
{
    const auto refs = packableTrace(500);
    const std::string path = writeV3("packed.v3", refs, 64);

    StreamSource stream(path);
    ASSERT_TRUE(stream.packedCapable());
    std::vector<std::uint32_t> words(37);
    std::vector<MemRef> got;
    for (;;) {
        const std::size_t n =
            stream.nextBatchPacked(words.data(), words.size());
        ASSERT_NE(n, TraceSource::kNoPacked);
        for (std::size_t i = 0; i < n; ++i)
            got.push_back(packed::unpack(words[i]));
        if (n < words.size())
            break;
    }
    EXPECT_EQ(got, refs);
    EXPECT_GT(stream.blocksDecoded(), 0u);
}

TEST_F(StreamTest, NonPackableStreamUsesMemRefPath)
{
    const auto refs = escapeTrace(300);
    const std::string path = writeV3("np.v3", refs, 64);

    StreamSource stream(path);
    EXPECT_FALSE(stream.packedCapable());
    std::uint32_t word;
    EXPECT_EQ(stream.nextBatchPacked(&word, 1),
              TraceSource::kNoPacked);
    EXPECT_EQ(drainAll(stream), refs);
}

TEST_F(StreamTest, StreamSkipMatchesDiscardedReads)
{
    // The StreamSource mirror of the reader test above: skips that
    // stay in the held block, land on block boundaries, and jump
    // past the prefetch window (forcing a producer reseek).
    const auto refs = packableTrace(300);
    const std::string path = writeV3("sskip.v3", refs, 16);

    for (std::size_t pre : {std::size_t{0}, std::size_t{5}}) {
        for (std::size_t skip :
             {std::size_t{0}, std::size_t{1}, std::size_t{15},
              std::size_t{16}, std::size_t{17}, std::size_t{160},
              std::size_t{250}}) {
            StreamSource skipped(path);
            StreamSource read(path);
            (void)collect(skipped, pre);
            (void)collect(read, pre);
            ASSERT_EQ(skipped.skip(skip), skip)
                << "pre " << pre << " skip " << skip;
            (void)collect(read, skip);
            EXPECT_EQ(drainAll(skipped), drainAll(read))
                << "pre " << pre << " skip " << skip;
        }
    }
}

TEST_F(StreamTest, StreamSkipClampsAndResetReplays)
{
    const auto refs = packableTrace(200);
    const std::string path = writeV3("sclamp.v3", refs, 32);

    StreamSource stream(path);
    EXPECT_EQ(stream.skip(refs.size() + 999), refs.size());
    MemRef ref;
    EXPECT_FALSE(stream.next(ref));

    // reset() re-aims the producer backwards (generation bump) and
    // the replay is bit-identical, repeatedly.
    for (int lap = 0; lap < 3; ++lap) {
        stream.reset();
        EXPECT_EQ(drainAll(stream), refs) << "lap " << lap;
    }
}

TEST_F(StreamTest, LoopedStreamWrapsLikeLoopedReader)
{
    const auto refs = packableTrace(150);
    const std::string path = writeV3("loop.v3", refs, 32);

    LoopSource stream(std::make_unique<StreamSource>(path));
    LoopSource reader(std::make_unique<TraceV3Reader>(path));
    const std::size_t skip = 3 * refs.size() + 17;
    EXPECT_EQ(stream.skip(skip), skip);
    EXPECT_EQ(reader.skip(skip), skip);
    EXPECT_EQ(collect(stream, 2 * refs.size()),
              collect(reader, 2 * refs.size()));
}

TEST_F(StreamTest, CeilingTooSmallIsATraceIoError)
{
    const std::string path =
        writeV3("tiny.v3", packableTrace(100), 32);
    StreamOptions options;
    options.memoryBudgetBytes = 1;
    try {
        StreamSource stream(path, options);
        FAIL() << "a 1-byte ceiling was accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.code(), ErrorCode::TraceIO);
        EXPECT_NE(std::string(e.what()).find("at least"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(StreamTest, MinimalCeilingStillDrainsWithTwoSlots)
{
    const auto refs = packableTrace(1000);
    const std::string path = writeV3("min.v3", refs, 64);

    // Derive one slot's byte size from a default-budget stream,
    // then rebuild with exactly two slots' worth of ceiling.
    std::size_t slotBytes = 0;
    {
        StreamSource probe(path);
        slotBytes = probe.bufferBytes() / probe.slotCount();
    }
    StreamOptions options;
    options.memoryBudgetBytes = 2 * slotBytes;
    StreamSource stream(path, options);
    EXPECT_EQ(stream.slotCount(), 2u);
    EXPECT_LE(stream.bufferBytes(), options.memoryBudgetBytes);
    EXPECT_EQ(drainAll(stream), refs);
}

TEST_F(StreamTest, JournalKeysTrackContentNotPathOrMode)
{
    const auto refs = packableTrace(400);
    const std::string a = writeV3("job-a.v3", refs, 64);
    const std::string b = writeV3("job-renamed.v3", refs, 64);

    core::SweepJob job;
    job.config = core::afterWritePolicy();
    job.instructions = 10'000;
    job.traceFiles = {a};
    const std::string keyA = core::sweepJobKey(job);
    ASSERT_FALSE(keyA.empty());

    // A renamed byte-identical copy resumes under the same key ...
    job.traceFiles = {b};
    EXPECT_EQ(core::sweepJobKey(job), keyA);

    // ... the replay mode is not part of the key (the modes are
    // bit-identical by contract) ...
    job.traceStreaming = true;
    EXPECT_EQ(core::sweepJobKey(job), keyA);
    job.traceStreaming = false;

    // ... different content is a different key ...
    auto more = refs;
    more.push_back(instRef(0x77'7000));
    job.traceFiles = {writeV3("job-c.v3", more, 64)};
    EXPECT_NE(core::sweepJobKey(job), keyA);

    // ... and an unreadable file yields the empty (never-journaled)
    // key instead of throwing on the sweep planning path.
    job.traceFiles = {(dir / "no-such-file.v3").string()};
    EXPECT_EQ(core::sweepJobKey(job), "");
}

/** RAII arena-mode env guard (mirrors tests/test_arena.cc). */
class ArenaEnv
{
  public:
    explicit ArenaEnv(const char *value)
    {
        if (value)
            ::setenv("GAAS_BENCH_ARENA", value, 1);
        else
            ::unsetenv("GAAS_BENCH_ARENA");
    }
    ~ArenaEnv() { ::unsetenv("GAAS_BENCH_ARENA"); }
};

TEST_F(StreamTest, GoldenPointsBitIdenticalAcrossReplayModes)
{
    // Three pinned design points simulated three ways over the same
    // trace files -- per-block reader (arena off), in-memory arena,
    // and bounded StreamSource -- must dump byte-identical stats.
    // This is the contract that lets traceStreaming stay out of the
    // resume-journal key.
    std::vector<std::string> paths;
    auto specs = synth::workloadSpecs(2);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        specs[i].simInstructions = 30'000;
        auto src = synth::makeBenchmark(specs[i]);
        const std::string path =
            (dir / ("wl-" + std::to_string(i) + ".v3")).string();
        TraceV3Writer writer(path, 1u << 12);
        writer.writeAll(*src);
        writer.close();
        paths.push_back(path);
    }

    std::vector<core::SweepJob> points;
    for (int p = 0; p < 3; ++p) {
        core::SweepJob job;
        job.config = core::afterWritePolicy();
        job.config.l2Org = p == 1 ? core::L2Org::LogicalSplit
                                  : core::L2Org::Unified;
        job.config.l2.cache.assoc = p == 2 ? 2 : 1;
        job.config.l2i = job.config.l2d = job.config.l2;
        job.config.name = "point-" + std::to_string(p);
        job.instructions = 40'000;
        job.traceFiles = paths;
        points.push_back(std::move(job));
    }

    auto dump = [](const core::SweepJob &job) {
        const core::SimResult result = core::runSweepJob(job);
        std::ostringstream os;
        core::dumpStats(result, os);
        return os.str();
    };

    for (core::SweepJob &job : points) {
        SCOPED_TRACE(job.config.name);
        std::string viaReader;
        std::string viaArena;
        {
            ArenaEnv off(nullptr);
            job.traceStreaming = false;
            viaReader = dump(job);
        }
        {
            ArenaEnv on("1");
            job.traceStreaming = false;
            viaArena = dump(job);
        }
        ArenaEnv off(nullptr);
        job.traceStreaming = true;
        const std::string viaStream = dump(job);
        ASSERT_FALSE(viaReader.empty());
        EXPECT_EQ(viaArena, viaReader);
        EXPECT_EQ(viaStream, viaReader);
    }
}

} // namespace
} // namespace gaas::trace
