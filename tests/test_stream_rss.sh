# Streaming memory ceiling test.
#
# Usage: test_stream_rss.sh <path-to-tracepack>
#
# Synthesizes a v3 trace whose decoded form is ~100 MB (25M packed
# u32 records) and drains it in a fresh process through StreamSource
# with an 8 MiB ceiling.  The drain's peak RSS (VmHWM, which also
# counts the binary and libc) must stay under 64 MiB -- far below
# what materializing the trace would need, proving the streaming
# pipeline's memory is bounded by the ceiling, not the trace length.

set -eu

TRACEPACK=$1
dir=$(mktemp -d "${TMPDIR:-/tmp}/gaas_stream_rss.XXXXXX")
trap 'rm -rf "$dir"' EXIT INT TERM

"$TRACEPACK" synth "$dir/big.v3" --instructions 20000000 --seed 11

out=$("$TRACEPACK" drain "$dir/big.v3" --stream-mb 8)
echo "$out"

records=$(echo "$out" | sed -n 's/^drained \([0-9]*\) records.*/\1/p')
rss=$(echo "$out" | sed -n 's/^peak_rss_kb: \([0-9]*\)$/\1/p')

if [ -z "$records" ] || [ -z "$rss" ]; then
    echo "FAIL: could not parse tracepack drain output" >&2
    exit 1
fi
if [ "$records" -lt 20000000 ]; then
    echo "FAIL: drained only $records records" >&2
    exit 1
fi
if [ "$rss" -eq 0 ]; then
    echo "skip: VmHWM unavailable on this kernel"
    exit 0
fi
if [ "$rss" -gt 65536 ]; then
    echo "FAIL: peak RSS ${rss} KiB exceeds the 64 MiB bound" \
         "(ceiling was 8 MiB; decoded trace is ~100 MB)" >&2
    exit 1
fi
echo "ok: peak RSS ${rss} KiB under an 8 MiB streaming ceiling"
